// E19 — simulator core throughput: events/sec and ns/event across
// protocol x n x fault-mix.
//
// Every other experiment in this repo is bottlenecked by how fast the
// discrete-event scheduler in src/sim/ can execute protocol runs (the
// checker's restart grid alone replays 1510 configurations), so this bench
// measures the scheduler itself through the same scenario runners the
// checker and the other benches use. Each cell runs a fixed scenario over a
// set of seeds, times the complete runs with a monotonic clock, and divides
// by Simulator::eventsProcessed().
//
// Unlike the other benches, the metric values here are wall-clock timings:
// the JSON (run_id, tables' event counts, verdict) is deterministic but the
// events/sec and ns/event numbers are machine-dependent by design. The
// trajectory entry appended by scripts/bench.sh tracks them across commits;
// its compare mode flags >10% regressions.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "harness/scenarios.hpp"
#include "obs/metrics.hpp"

using namespace ooc;
using namespace ooc::bench;
using harness::BenOrConfig;
using harness::PhaseKingConfig;
using harness::RaftScenarioConfig;

namespace {

struct CellResult {
  std::uint64_t events = 0;
  std::uint64_t decided = 0;  // runs where all correct processes decided
};

using RunFn = std::function<CellResult(std::uint64_t seed)>;

struct Scenario {
  std::string key;       // stable id: protocol_n<N>[_mix]
  std::string describe;  // one-line cell description for the table
  /// Multiplies the base trial count so event-sparse cells (Raft is
  /// timeout-driven) still accumulate enough wall time to measure.
  int runsScale = 1;
  RunFn run;
};

BenOrConfig benOr(std::size_t n, Tick minDelay, Tick maxDelay) {
  BenOrConfig config;
  config.n = n;
  config.inputs.resize(n);
  for (std::size_t i = 0; i < n; ++i) config.inputs[i] = Value(i % 2);
  config.mode = BenOrConfig::Mode::kDecomposed;
  // The local coin needs 2^Theta(n) rounds on split inputs, so the n=25
  // cells use the common coin: convergence in O(1) rounds keeps the cell a
  // pure fan-out workload instead of a coin-flip lottery.
  config.reconciliator = n > 8 ? BenOrConfig::Reconciliator::kCommonCoin
                               : BenOrConfig::Reconciliator::kLocalCoin;
  config.minDelay = minDelay;
  config.maxDelay = maxDelay;
  return config;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> all;
  all.push_back({"benor_n5_async", "Ben-Or n=5, delay 1..10", 20,
                 [](std::uint64_t seed) {
                   auto config = benOr(5, 1, 10);
                   config.seed = seed;
                   const auto r = runBenOr(config);
                   return CellResult{r.eventsProcessed, r.allDecided ? 1u : 0u};
                 }});
  // The ISSUE's headline cell: unit delays make every exchange a synchronous
  // wave, so the run is one broadcast fan-out after another — the pure
  // fan-out + queue hot path.
  all.push_back({"benor_n25_lockstep", "Ben-Or n=25, unit delay (lockstep)", 2,
                 [](std::uint64_t seed) {
                   auto config = benOr(25, 1, 1);
                   config.seed = seed;
                   const auto r = runBenOr(config);
                   return CellResult{r.eventsProcessed, r.allDecided ? 1u : 0u};
                 }});
  all.push_back({"benor_n25_async", "Ben-Or n=25, delay 1..10", 2,
                 [](std::uint64_t seed) {
                   auto config = benOr(25, 1, 10);
                   config.seed = seed;
                   const auto r = runBenOr(config);
                   return CellResult{r.eventsProcessed, r.allDecided ? 1u : 0u};
                 }});
  all.push_back({"phaseking_n25", "Phase-King n=25, f=t=8 equivocators", 2,
                 [](std::uint64_t seed) {
                   PhaseKingConfig config;
                   config.n = 25;
                   config.byzantineCount = 8;
                   config.seed = seed;
                   const auto r = runPhaseKing(config);
                   return CellResult{r.eventsProcessed, r.allDecided ? 1u : 0u};
                 }});
  all.push_back({"raft_n5", "Raft n=5, delay 1..5, no faults", 40,
                 [](std::uint64_t seed) {
                   RaftScenarioConfig config;
                   config.n = 5;
                   config.seed = seed;
                   const auto r = runRaft(config);
                   return CellResult{r.eventsProcessed, r.allDecided ? 1u : 0u};
                 }});
  all.push_back({"raft_n9_faultmix", "Raft n=9, 5% drop + 5% duplicate", 25,
                 [](std::uint64_t seed) {
                   RaftScenarioConfig config;
                   config.n = 9;
                   config.dropProbability = 0.05;
                   config.duplicateProbability = 0.05;
                   config.seed = seed;
                   const auto r = runRaft(config);
                   return CellResult{r.eventsProcessed, r.allDecided ? 1u : 0u};
                 }});
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  Bench bench(argc, argv, "simcore");
  const int kRuns = bench.trials(40);

  bench.banner(
      "E19: simulator core throughput (events/sec, ns/event)",
      "The scheduler hot path — refcounted payload fan-out, type-tag "
      "dispatch, calendar event queue — measured end to end through the "
      "scenario runners. Timings are wall-clock (machine-dependent); the "
      "trajectory in BENCH_simcore.json tracks them across commits.");
  {
    Table table({"scenario", "runs", "events", "ms total", "events/sec",
                 "ns/event"});
    for (const Scenario& scenario : scenarios()) {
      const int cellRuns = kRuns * scenario.runsScale;
      std::uint64_t events = 0;
      std::uint64_t decided = 0;
      std::chrono::nanoseconds elapsed{0};
      for (int run = 0; run < cellRuns; ++run) {
        const std::uint64_t seed = 19'000 + static_cast<std::uint64_t>(run);
        const auto start = std::chrono::steady_clock::now();
        const CellResult cell = scenario.run(seed);
        elapsed += std::chrono::steady_clock::now() - start;
        events += cell.events;
        decided += cell.decided;
      }
      bench.require(decided == static_cast<std::uint64_t>(cellRuns),
                    scenario.key + " all runs decide");
      const double ns = static_cast<double>(elapsed.count());
      const double eventsPerSec =
          ns > 0 ? static_cast<double>(events) * 1e9 / ns : 0.0;
      const double nsPerEvent =
          events > 0 ? ns / static_cast<double>(events) : 0.0;
      obs::metrics().setGauge("simcore_events_per_sec", eventsPerSec,
                              {{"scenario", scenario.key}});
      obs::metrics().setGauge("simcore_ns_per_event", nsPerEvent,
                              {{"scenario", scenario.key}});
      table.addRow({scenario.describe, Table::cell(std::uint64_t(cellRuns)),
                    Table::cell(events), Table::cell(ns / 1e6, 1),
                    Table::cell(eventsPerSec, 0), Table::cell(nsPerEvent, 1)});
    }
    bench.emit(table);
    bench.note("scenario keys (trajectory/gauge labels): benor_n5_async, "
               "benor_n25_lockstep, benor_n25_async, phaseking_n25, raft_n5, "
               "raft_n9_faultmix");
  }

  // E23 — whole-machine aggregate throughput and scaling efficiency. The
  // full E19 workload (every scenario x its seeds) is fanned across the
  // experiment scheduler at 1, 2, half, and all hardware threads; each
  // pass measures machine-wide events/sec over the whole sweep. Event
  // totals must be identical across thread counts (the scheduler only
  // re-shards indices, never changes what an index computes) — asserted
  // as a correctness property. Efficiency = speedup / threads.
  bench.banner(
      "E23: whole-machine aggregate throughput + scaling efficiency",
      "The E19 workload through sweep::parallelFor at increasing thread "
      "counts. aggregate_events_per_sec and scaling_efficiency gauges feed "
      "the BENCH_simcore.json trajectory; the >=0.6-at-half-the-cores bar "
      "is the scheduler's scaling acceptance line.");
  {
    struct WorkItem {
      const RunFn* run;
      std::uint64_t seed;
    };
    const std::vector<Scenario> all = scenarios();
    std::vector<WorkItem> items;
    for (const Scenario& scenario : all) {
      const int cellRuns = kRuns * scenario.runsScale;
      for (int run = 0; run < cellRuns; ++run)
        items.push_back(
            {&scenario.run, 19'000 + static_cast<std::uint64_t>(run)});
    }

    const std::size_t hw = sweep::hardwareThreads();
    std::vector<std::size_t> threadCounts{1, 2, hw / 2, hw};
    std::sort(threadCounts.begin(), threadCounts.end());
    threadCounts.erase(
        std::remove(threadCounts.begin(), threadCounts.end(), std::size_t{0}),
        threadCounts.end());
    threadCounts.erase(
        std::unique(threadCounts.begin(), threadCounts.end()),
        threadCounts.end());

    Table table({"threads", "runs", "events", "ms total", "agg events/sec",
                 "speedup", "efficiency"});
    std::uint64_t baseEvents = 0;
    double basePerSec = 0.0;
    for (const std::size_t threads : threadCounts) {
      std::vector<std::uint64_t> events(items.size());
      std::vector<std::uint64_t> decided(items.size());
      sweep::Options pool;
      pool.threads = threads;
      const auto start = std::chrono::steady_clock::now();
      const sweep::SweepStats stats = sweep::parallelFor(
          items.size(),
          [&](std::size_t index, sweep::Control&) {
            const CellResult cell = (*items[index].run)(items[index].seed);
            events[index] = cell.events;
            decided[index] = cell.decided;
          },
          pool);
      const std::chrono::nanoseconds elapsed =
          std::chrono::steady_clock::now() - start;
      bench::detail::sweepTelemetryRef().add(stats);

      std::uint64_t totalEvents = 0;
      std::uint64_t totalDecided = 0;
      for (std::size_t i = 0; i < items.size(); ++i) {
        totalEvents += events[i];
        totalDecided += decided[i];
      }
      const std::string label = std::to_string(threads) + " threads";
      bench.require(totalDecided == items.size(), label + ": all runs decide");
      if (baseEvents == 0)
        baseEvents = totalEvents;
      else
        bench.require(totalEvents == baseEvents,
                      label + ": aggregate events identical across thread "
                              "counts");

      const double ns = static_cast<double>(elapsed.count());
      const double perSec =
          ns > 0 ? static_cast<double>(totalEvents) * 1e9 / ns : 0.0;
      if (basePerSec == 0.0) basePerSec = perSec;
      const double speedup = basePerSec > 0 ? perSec / basePerSec : 0.0;
      const double efficiency = speedup / static_cast<double>(threads);
      const obs::Labels labels{{"threads", std::to_string(threads)}};
      obs::metrics().setGauge("simcore_aggregate_events_per_sec", perSec,
                              labels);
      obs::metrics().setGauge("simcore_scaling_efficiency", efficiency,
                              labels);
      table.addRow({Table::cell(std::uint64_t(threads)),
                    Table::cell(std::uint64_t(items.size())),
                    Table::cell(totalEvents), Table::cell(ns / 1e6, 1),
                    Table::cell(perSec, 0), Table::cell(speedup, 2),
                    Table::cell(efficiency, 2)});
    }
    bench.emit(table);
    bench.note("hardware threads: " + std::to_string(hw) +
               "; gauges simcore_aggregate_events_per_sec and "
               "simcore_scaling_efficiency are labeled by threads");
  }
  return bench.finish();
}

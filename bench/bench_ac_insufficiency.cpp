// E9 — "Adopt-Commit is Not Enough" (paper §5), empirically.
//
// The paper's argument: in Ben-Or, a processor can reach adopt-level
// knowledge of a value u while the eventual agreement lands on u' != u.
// Under Aspnes' framework the corresponding state (commit of the second
// AC in the two-AC reading) forces an immediate decision — which would
// break agreement. We count concrete witnesses: completed (adopt, u)
// outcomes in runs whose final decision differs from u. Every witness is a
// schedule on which decide-on-adopt is wrong.
//
// Expected shape: witnesses appear at every n, more often under heavier
// delay skew (mixed rounds become likelier), while the VAC template itself
// never errs — the third confidence level is exactly what absorbs these
// states safely.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "harness/scenarios.hpp"

using namespace ooc;
using namespace ooc::bench;
using harness::BenOrConfig;

int main(int argc, char** argv) {
  Bench bench(argc, argv, "ac_insufficiency");
  const int kRuns = bench.trials(300);

  bench.banner("E9: decide-on-adopt counterexample census (Ben-Or, local coin)",
         "witness := completed (adopt, u) outcome with final decision != u. "
         "Each row aggregates 300 seeded runs; 'runs w/ witness' is the "
         "fraction of executions on which the AC framework's decide rule "
         "would have violated agreement.");
  Table table({"n", "max delay", "adopt outcomes", "witnesses",
               "witness rate %", "runs w/ witness %"});
  struct Case {
    std::size_t n;
    Tick maxDelay;
  };
  for (const Case c : {Case{4, 10}, Case{4, 25}, Case{8, 10}, Case{8, 25},
                       Case{16, 10}, Case{16, 25}}) {
    std::size_t adoptTotal = 0, witnesses = 0;
    int runsWithWitness = 0;
    for (int run = 0; run < kRuns; ++run) {
      BenOrConfig config;
      config.n = c.n;
      config.inputs.resize(c.n);
      for (std::size_t i = 0; i < c.n; ++i)
        config.inputs[i] = static_cast<Value>(i % 2);
      config.seed = 130'000 + static_cast<std::uint64_t>(run);
      config.t = std::max<std::size_t>(1, c.n / 4);
      config.maxDelay = c.maxDelay;
      const auto result = runBenOr(config);
      bench.require(result.allDecided && !result.agreementViolated,
                      "VAC template stays correct");
      bench.require(result.allAuditsOk, "object contracts");
      adoptTotal += result.adoptOutcomesTotal;
      witnesses += result.adoptMismatchWitnesses;
      runsWithWitness += result.adoptMismatchWitnesses > 0 ? 1 : 0;
    }
    table.addRow(
        {Table::cell(std::uint64_t{c.n}), Table::cell(std::uint64_t{c.maxDelay}),
         Table::cell(std::uint64_t{adoptTotal}),
         Table::cell(std::uint64_t{witnesses}),
         adoptTotal == 0
             ? "-"
             : Table::cell(100.0 * static_cast<double>(witnesses) /
                               static_cast<double>(adoptTotal),
                           2),
         Table::cell(100.0 * runsWithWitness / kRuns, 1)});
  }
  bench.emit(table);
  std::printf(
      "reading: the VAC template treats these adopt states as tentative and "
      "never mis-decides (0 agreement violations above); a decide-on-commit "
      "AC pipeline would have failed on every witness run.\n");
  return bench.finish();
}

// E1 + E2 — Ben-Or decomposition faithfulness and input-bias sensitivity.
//
// E1: rounds-to-decide and message cost vs n, decomposed (VAC+reconciliator
//     under the template) against the monolithic classic implementation.
//     Claim (paper §4.2): the decomposition is behaviour-preserving, so the
//     two columns must match in shape (same growth, same order).
// E2: rounds vs the fraction of processes proposing 1. Convergence (§2)
//     pins the endpoints at exactly one round; the worst case must sit at
//     the balanced midpoint.
#include <vector>

#include <algorithm>

#include "bench/bench_common.hpp"
#include "harness/scenarios.hpp"

using namespace ooc;
using namespace ooc::bench;
using harness::BenOrConfig;

namespace {

std::vector<Value> biasedInputs(std::size_t n, double fractionOnes) {
  std::vector<Value> inputs(n, 0);
  const auto ones = static_cast<std::size_t>(fractionOnes *
                                             static_cast<double>(n) + 0.5);
  for (std::size_t i = 0; i < ones && i < n; ++i) inputs[i] = 1;
  // Interleave so that ids and values are uncorrelated.
  std::vector<Value> spread(n);
  for (std::size_t i = 0; i < n; ++i) spread[i] = inputs[(i * 7) % n];
  return spread;
}

}  // namespace

int main(int argc, char** argv) {
  Bench bench(argc, argv, "benor_rounds");
  bench.banner("E1: Ben-Or decomposed vs monolithic",
         "Paper §4.2 claim: Algorithms 5+6 in the template ARE Ben-Or. "
         "Expect matching round distributions and message growth.");
  const int kRuns = bench.trials(120);

  {
    Table table({"n", "mode", "mean rounds", "p50", "p95", "max",
                 "mean msgs/proc", "runs"});
    for (std::size_t n : {4, 8, 16, 32, 64}) {
      for (const bool monolithic : {false, true}) {
        Summary rounds, messages;
        for (int run = 0; run < kRuns; ++run) {
          BenOrConfig config;
          config.n = n;
          config.inputs = biasedInputs(n, 0.5);
          config.seed = 10'000 + static_cast<std::uint64_t>(run);
          config.t = std::max<std::size_t>(1, n / 8);
          config.mode = monolithic ? BenOrConfig::Mode::kMonolithic
                                   : BenOrConfig::Mode::kDecomposed;
          const auto result = runBenOr(config);
          bench.require(result.allDecided && !result.agreementViolated &&
                              !result.validityViolated,
                          "benor consensus n=" + std::to_string(n));
          if (!monolithic)
            bench.require(result.allAuditsOk, "object contracts");
          rounds.add(result.meanDecisionRound);
          messages.add(static_cast<double>(result.messagesByCorrect) /
                       static_cast<double>(n));
        }
        table.addRow({Table::cell(std::uint64_t{n}),
                      monolithic ? "monolithic" : "decomposed",
                      Table::cell(rounds.mean()), Table::cell(rounds.median()),
                      Table::cell(rounds.p95()), Table::cell(rounds.max()),
                      Table::cell(messages.mean(), 0), Table::cell(kRuns)});
      }
    }
    bench.emit(table);
  }

  bench.banner("E2: rounds vs input bias",
         "Convergence (§2): unanimity decides in exactly 1 round; the "
         "balanced midpoint is the hard case.");
  {
    Table table({"fraction proposing 1", "mean rounds", "p95", "max"});
    for (const double fraction :
         {0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0}) {
      Summary rounds;
      for (int run = 0; run < kRuns; ++run) {
        BenOrConfig config;
        config.n = 16;
        config.inputs = biasedInputs(16, fraction);
        config.seed = 20'000 + static_cast<std::uint64_t>(run);
        config.t = 2;
        const auto result = runBenOr(config);
        bench.require(result.allDecided && !result.agreementViolated,
                        "benor consensus (bias sweep)");
        rounds.add(result.meanDecisionRound);
      }
      table.addRow({Table::cell(fraction, 3), Table::cell(rounds.mean()),
                    Table::cell(rounds.p95()), Table::cell(rounds.max())});
    }
    bench.emit(table);
  }
  return bench.finish();
}

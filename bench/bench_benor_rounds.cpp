// E1 + E2 — Ben-Or decomposition faithfulness and input-bias sensitivity.
//
// E1: rounds-to-decide and message cost vs n, decomposed (VAC+reconciliator
//     under the template, run as the "benor-vac+local-coin" composition)
//     against the monolithic classic implementation (the one mode with no
//     composition spelling). Claim (paper §4.2): the decomposition is
//     behaviour-preserving, so the two columns must match in shape (same
//     growth, same order).
// E2: rounds vs the fraction of processes proposing 1. Convergence (§2)
//     pins the endpoints at exactly one round; the worst case must sit at
//     the balanced midpoint.
#include <vector>

#include <algorithm>

#include "bench/bench_common.hpp"
#include "compose/composition.hpp"
#include "harness/scenarios.hpp"

using namespace ooc;
using namespace ooc::bench;
using harness::BenOrConfig;

namespace {

std::vector<Value> biasedInputs(std::size_t n, double fractionOnes) {
  std::vector<Value> inputs(n, 0);
  const auto ones = static_cast<std::size_t>(fractionOnes *
                                             static_cast<double>(n) + 0.5);
  for (std::size_t i = 0; i < ones && i < n; ++i) inputs[i] = 1;
  // Interleave so that ids and values are uncorrelated.
  std::vector<Value> spread(n);
  for (std::size_t i = 0; i < n; ++i) spread[i] = inputs[(i * 7) % n];
  return spread;
}

/// The monolithic baseline predates the registry, so its cell still runs
/// through the legacy config path.
CellStats runMonolithicTrials(std::size_t n, int runs,
                              std::uint64_t seedBase) {
  CellStats stats;
  stats.runs = runs;
  for (int run = 0; run < runs; ++run) {
    BenOrConfig config;
    config.n = n;
    config.inputs = biasedInputs(n, 0.5);
    config.seed = seedBase + static_cast<std::uint64_t>(run);
    config.t = std::max<std::size_t>(1, n / 8);
    config.mode = BenOrConfig::Mode::kMonolithic;
    const auto result = runBenOr(config);
    stats.agreementOk = stats.agreementOk && !result.agreementViolated;
    stats.validityOk = stats.validityOk && !result.validityViolated;
    if (result.allDecided) {
      ++stats.decided;
      stats.rounds.add(result.meanDecisionRound);
    }
    stats.messages.add(static_cast<double>(result.messagesByCorrect) /
                       static_cast<double>(n));
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  Bench bench(argc, argv, "benor_rounds");
  bench.banner("E1: Ben-Or decomposed vs monolithic",
         "Paper §4.2 claim: Algorithms 5+6 in the template ARE Ben-Or. "
         "Expect matching round distributions and message growth.");
  const int kRuns = bench.trials(120);

  {
    Table table({"n", "mode", "mean rounds", "p50", "p95", "max",
                 "mean msgs/proc", "runs"});
    for (std::size_t n : {4, 8, 16, 32, 64}) {
      for (const bool monolithic : {false, true}) {
        CellStats stats;
        if (monolithic) {
          stats = runMonolithicTrials(n, kRuns, 10'000);
        } else {
          compose::Composition composition;
          composition.detector = "benor-vac";
          composition.driver = "local-coin";
          composition.n = n;
          composition.inputs = biasedInputs(n, 0.5);
          composition.t = std::max<std::size_t>(1, n / 8);
          stats = runCompositionTrials(composition, kRuns, 10'000);
          bench.require(stats.auditsOk, "object contracts");
        }
        bench.require(stats.decided == kRuns && stats.agreementOk &&
                          stats.validityOk,
                        "benor consensus n=" + std::to_string(n));
        table.addRow({Table::cell(std::uint64_t{n}),
                      monolithic ? "monolithic" : "decomposed",
                      Table::cell(stats.rounds.mean()),
                      Table::cell(stats.rounds.median()),
                      Table::cell(stats.rounds.p95()),
                      Table::cell(stats.rounds.max()),
                      Table::cell(stats.messages.mean(), 0),
                      Table::cell(kRuns)});
      }
    }
    bench.emit(table);
  }

  bench.banner("E2: rounds vs input bias",
         "Convergence (§2): unanimity decides in exactly 1 round; the "
         "balanced midpoint is the hard case.");
  {
    Table table({"fraction proposing 1", "mean rounds", "p95", "max"});
    for (const double fraction :
         {0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0}) {
      compose::Composition composition;
      composition.detector = "benor-vac";
      composition.driver = "local-coin";
      composition.n = 16;
      composition.inputs = biasedInputs(16, fraction);
      composition.t = 2;
      const CellStats stats =
          runCompositionTrials(composition, kRuns, 20'000);
      bench.require(stats.decided == kRuns && stats.agreementOk,
                      "benor consensus (bias sweep)");
      table.addRow({Table::cell(fraction, 3),
                    Table::cell(stats.rounds.mean()),
                    Table::cell(stats.rounds.p95()),
                    Table::cell(stats.rounds.max())});
    }
    bench.emit(table);
  }
  return bench.finish();
}

// E14 — Byzantine Ben-Or (extension): the framework's VAC slot accepts a
// hardened detector and the template carries over unchanged.
//
// Sweeps: (a) adversary strategies at maximal f = t (n > 5t), (b) the
// resilience boundary, (c) scale. Expected shape: all clean at f <= t;
// round counts comparable to crash Ben-Or; beyond t the adversary can stall
// or corrupt runs.
#include "bench/bench_common.hpp"
#include "benor/async_byzantine.hpp"
#include "harness/scenarios.hpp"

using namespace ooc;
using namespace ooc::bench;
using benor::AsyncByzantineStrategy;
using harness::ByzantineBenOrConfig;

int main(int argc, char** argv) {
  Bench bench(argc, argv, "byzantine_benor");
  const int kRuns = bench.trials(60);

  bench.banner("E14a: strategy sweep (n = 11, f = t = 2)",
         "Asynchronous Byzantine consensus through the unchanged template: "
         "every attack must fail.");
  {
    Table table({"strategy", "success %", "mean rounds", "p95 rounds",
                 "mean msgs/correct"});
    for (auto strategy :
         {AsyncByzantineStrategy::kSilent, AsyncByzantineStrategy::kEquivocate,
          AsyncByzantineStrategy::kRandom,
          AsyncByzantineStrategy::kContrarian}) {
      Summary rounds, messages;
      int clean = 0;
      for (int run = 0; run < kRuns; ++run) {
        ByzantineBenOrConfig config;
        config.n = 11;
        config.byzantineCount = 2;
        config.strategy = static_cast<int>(strategy);
        config.seed = 200'000 + static_cast<std::uint64_t>(run);
        const auto result = runByzantineBenOr(config);
        const bool ok = result.allDecided && !result.agreementViolated &&
                        !result.validityViolated && result.allAuditsOk;
        clean += ok ? 1 : 0;
        bench.require(ok, std::string("byz-benor ") + toString(strategy));
        rounds.add(result.meanDecisionRound);
        messages.add(static_cast<double>(result.messagesByCorrect) / 9.0);
      }
      table.addRow({toString(strategy), Table::cell(100.0 * clean / kRuns, 1),
                    Table::cell(rounds.mean()), Table::cell(rounds.p95()),
                    Table::cell(messages.mean(), 0)});
    }
    bench.emit(table);
  }

  bench.banner("E14b: resilience boundary (n = 11, t = 2)",
         "f <= t: clean. f > t: the adversary may stall or corrupt "
         "(failures beyond the bound are the bound, not bugs).");
  {
    Table table({"attackers f", "clean %", "decided %",
                 "agreement broken %"});
    for (std::size_t f = 0; f <= 4; ++f) {
      int clean = 0, decided = 0, broken = 0;
      for (int run = 0; run < kRuns; ++run) {
        ByzantineBenOrConfig config;
        config.n = 11;
        config.byzantineCount = f;
        config.strategy =
            static_cast<int>(AsyncByzantineStrategy::kEquivocate);
        config.seed = 210'000 + static_cast<std::uint64_t>(run);
        config.maxRounds = 80;
        config.maxTicks = 600'000;
        const auto result = runByzantineBenOr(config);
        const bool ok = result.allDecided && !result.agreementViolated &&
                        !result.validityViolated;
        clean += ok ? 1 : 0;
        decided += result.allDecided ? 1 : 0;
        broken += result.agreementViolated ? 1 : 0;
        if (f <= 2) bench.require(ok, "f<=t must be clean");
      }
      table.addRow({Table::cell(std::uint64_t{f}),
                    Table::cell(100.0 * clean / kRuns, 1),
                    Table::cell(100.0 * decided / kRuns, 1),
                    Table::cell(100.0 * broken / kRuns, 1)});
    }
    bench.emit(table);
  }

  bench.banner("E14c: scale at maximal tolerance",
         "Rounds stay flat; messages grow ~n^2 per round.");
  {
    Table table({"n", "t", "mean rounds", "mean msgs/correct"});
    for (std::size_t n : {6, 11, 16, 26, 36}) {
      const std::size_t t = (n - 1) / 5;
      Summary rounds, messages;
      for (int run = 0; run < kRuns; ++run) {
        ByzantineBenOrConfig config;
        config.n = n;
        config.byzantineCount = t;
        config.strategy =
            static_cast<int>(AsyncByzantineStrategy::kEquivocate);
        config.seed = 220'000 + static_cast<std::uint64_t>(run);
        const auto result = runByzantineBenOr(config);
        bench.require(result.allDecided && !result.agreementViolated,
                        "byz-benor scale");
        rounds.add(result.meanDecisionRound);
        messages.add(static_cast<double>(result.messagesByCorrect) /
                     static_cast<double>(n - t));
      }
      table.addRow({Table::cell(std::uint64_t{n}),
                    Table::cell(std::uint64_t{t}), Table::cell(rounds.mean()),
                    Table::cell(messages.mean(), 0)});
    }
    bench.emit(table);
  }
  return bench.finish();
}

// E10 — the reconciliator as a swappable object (paper §3, §6).
//
// Same template, same Ben-Or VAC, four reconciliators:
//   local coin  (Algorithm 6)      — expected rounds grow with n,
//   common coin (idealized shared) — expected O(1) rounds at every n,
//   biased coin (p = 0.8)          — between the two,
//   keep-value  (negative control) — no reconciliation: balanced inputs
//                                    stall forever.
// The paper's conclusion that the reconciliator "in some cases is only a
// procedure that flips a coin" is made concrete by how much the choice of
// that procedure alone moves the numbers.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "harness/scenarios.hpp"

using namespace ooc;
using namespace ooc::bench;
using harness::BenOrConfig;

int main(int argc, char** argv) {
  Bench bench(argc, argv, "reconciliators");
  const int kRuns = bench.trials(100);

  bench.banner("E10: reconciliator sweep (Ben-Or VAC, split inputs)",
         "Swapping only the drive-step object changes expected rounds from "
         "growing-in-n (local coin) to O(1) (common coin); removing it "
         "(keep-value) removes termination.");
  Table table({"n", "reconciliator", "decided %", "mean rounds",
               "p95 rounds", "max rounds"});
  struct Choice {
    const char* name;
    BenOrConfig::Reconciliator reconciliator;
  };
  for (std::size_t n : {4, 8, 16, 32}) {
    for (const Choice choice :
         {Choice{"local-coin", BenOrConfig::Reconciliator::kLocalCoin},
          Choice{"common-coin", BenOrConfig::Reconciliator::kCommonCoin},
          Choice{"biased-0.8", BenOrConfig::Reconciliator::kBiasedCoin},
          Choice{"keep-value", BenOrConfig::Reconciliator::kKeepValue}}) {
      Summary rounds;
      int decided = 0;
      const bool isControl =
          choice.reconciliator == BenOrConfig::Reconciliator::kKeepValue;
      for (int run = 0; run < kRuns; ++run) {
        BenOrConfig config;
        config.n = n;
        config.inputs.resize(n);
        for (std::size_t i = 0; i < n; ++i)
          config.inputs[i] = static_cast<Value>(i % 2);
        config.seed = 140'000 + static_cast<std::uint64_t>(run);
        config.t = std::max<std::size_t>(1, n / 8);
        config.reconciliator = choice.reconciliator;
        config.bias = 0.8;
        if (isControl) {
          config.maxRounds = 40;  // it will spin; cap the work
          config.maxTicks = 300'000;
        }
        const auto result = runBenOr(config);
        bench.require(!result.agreementViolated && !result.validityViolated,
                        "safety");
        if (!isControl) {
          bench.require(result.allDecided, "liveness with reconciliation");
          bench.require(result.allAuditsOk, "contracts");
        }
        if (result.allDecided) {
          ++decided;
          rounds.add(result.meanDecisionRound);
        }
      }
      if (isControl) {
        // Balanced inputs with an even split can never produce a majority:
        // keep-value must stall in every run (that is the point).
        bench.require(decided == 0, "keep-value control must stall");
      }
      table.addRow({Table::cell(std::uint64_t{n}), choice.name,
                    Table::cell(100.0 * decided / kRuns, 1),
                    rounds.empty() ? "-" : Table::cell(rounds.mean()),
                    rounds.empty() ? "-" : Table::cell(rounds.p95()),
                    rounds.empty() ? "-" : Table::cell(rounds.max(), 0)});
    }
  }
  bench.emit(table);
  return bench.finish();
}

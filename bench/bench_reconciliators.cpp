// E10 — the reconciliator as a swappable object (paper §3, §6).
//
// Same template, same Ben-Or VAC, four reconciliators:
//   local coin  (Algorithm 6)      — expected rounds grow with n,
//   common coin (idealized shared) — expected O(1) rounds at every n,
//   biased coin (p = 0.8)          — between the two,
//   keep-value  (negative control) — no reconciliation: balanced inputs
//                                    stall forever.
// The paper's conclusion that the reconciliator "in some cases is only a
// procedure that flips a coin" is made concrete by how much the choice of
// that procedure alone moves the numbers. Each cell is literally the same
// Composition spec with a different driver name.
#include <algorithm>
#include <string>

#include "bench/bench_common.hpp"
#include "compose/composition.hpp"

using namespace ooc;
using namespace ooc::bench;

int main(int argc, char** argv) {
  Bench bench(argc, argv, "reconciliators");
  const int kRuns = bench.trials(100);

  bench.banner("E10: reconciliator sweep (Ben-Or VAC, split inputs)",
         "Swapping only the drive-step object changes expected rounds from "
         "growing-in-n (local coin) to O(1) (common coin); removing it "
         "(keep-value) removes termination.");
  Table table({"n", "reconciliator", "decided %", "mean rounds",
               "p95 rounds", "max rounds"});
  for (std::size_t n : {4, 8, 16, 32}) {
    for (const std::string driver :
         {"local-coin", "common-coin", "biased-coin", "keep-value"}) {
      const bool isControl = driver == "keep-value";
      compose::Composition composition;
      composition.detector = "benor-vac";
      composition.driver = driver;
      composition.n = n;
      composition.inputs = alternatingInputs(n);
      composition.t = std::max<std::size_t>(1, n / 8);
      composition.bias = 0.8;
      if (isControl) {
        composition.maxRounds = 40;  // it will spin; cap the work
        composition.maxTicks = 300'000;
      }
      const CellStats stats =
          runCompositionTrials(composition, kRuns, 140'000);
      bench.require(stats.agreementOk && stats.validityOk, "safety");
      if (!isControl) {
        bench.require(stats.decided == kRuns,
                        "liveness with reconciliation");
        bench.require(stats.auditsOk, "contracts");
      } else {
        // Balanced inputs with an even split can never produce a majority:
        // keep-value must stall in every run (that is the point).
        bench.require(stats.decided == 0, "keep-value control must stall");
      }
      const std::string label =
          driver == "biased-coin" ? "biased-0.8" : driver;
      table.addRow({Table::cell(std::uint64_t{n}), label,
                    Table::cell(100.0 * stats.decided / kRuns, 1),
                    stats.rounds.empty() ? "-"
                                         : Table::cell(stats.rounds.mean()),
                    stats.rounds.empty() ? "-"
                                         : Table::cell(stats.rounds.p95()),
                    stats.rounds.empty()
                        ? "-"
                        : Table::cell(stats.rounds.max(), 0)});
    }
  }
  bench.emit(table);
  return bench.finish();
}

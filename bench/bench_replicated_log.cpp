// E16 — state-machine replication from template instances (extension).
//
// Every log slot is one run of the generic template (Ben-Or VAC + lottery
// reconciliator). Reported: slots needed vs commands committed (no-op
// overhead), ticks per committed command, and scaling in n — the shape to
// compare against Raft's purpose-built log (bench_raft): generic
// objects cost more rounds per slot but need no leader, no terms and no
// log-repair machinery.
#include <memory>
#include <set>
#include <vector>

#include "bench/bench_common.hpp"
#include "benor/reconciliators.hpp"
#include "benor/vac.hpp"
#include "log/replicated_log.hpp"
#include "sim/simulator.hpp"

using namespace ooc;
using namespace ooc::bench;

namespace {

struct LogOutcome {
  bool consistent = true;
  bool complete = true;
  double slots = 0;
  double ticks = 0;
  double messages = 0;
};

LogOutcome runLog(std::size_t n, std::size_t commandsPerNode,
                  std::uint64_t seed) {
  SimConfig simConfig;
  simConfig.seed = seed;
  simConfig.maxTicks = 5'000'000;
  UniformDelayNetwork::Options net;
  net.minDelay = 1;
  net.maxDelay = 8;
  Simulator sim(simConfig, std::make_unique<UniformDelayNetwork>(net));

  const std::size_t t = (n - 1) / 2;
  std::vector<ooc::log::ReplicatedLogNode*> nodes;
  std::size_t total = 0;
  for (ProcessId id = 0; id < n; ++id) {
    std::vector<Value> commands;
    for (std::uint32_t k = 0; k < commandsPerNode; ++k)
      commands.push_back(ooc::log::makeCommand(id, k));
    total += commands.size();
    auto node = std::make_unique<ooc::log::ReplicatedLogNode>(
        std::move(commands),
        [t](std::uint64_t) { return benor::BenOrVac::factory(t); },
        [t, seed](std::uint64_t slot) {
          return benor::LotteryReconciliator::factory(
              t, seed ^ (slot * 0x9E3779B97F4A7C15ull));
        },
        ooc::log::ReplicatedLogNode::Options{});
    nodes.push_back(node.get());
    sim.addProcess(std::move(node));
  }
  sim.setStopPredicate([&nodes](const Simulator&) {
    std::size_t length = nodes[0]->log().size();
    for (const auto* node : nodes) {
      if (!node->drained() || node->log().size() != length) return false;
    }
    return length > 0;
  });
  sim.run();

  LogOutcome outcome;
  outcome.ticks = static_cast<double>(sim.now());
  outcome.messages = static_cast<double>(sim.messagesSent());
  outcome.slots = static_cast<double>(nodes[0]->log().size());
  const auto committed = nodes[0]->committedCommands();
  outcome.complete = committed.size() == total && !sim.hitCap();
  for (const auto* node : nodes)
    outcome.consistent =
        outcome.consistent && node->log() == nodes[0]->log();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Bench bench(argc, argv, "replicated_log");
  const int kRuns = bench.trials(15);

  bench.banner("E16: replicated log from template instances (Ben-Or VAC + "
         "lottery, one consensus per slot)",
         "All logs identical, every command committed exactly once; "
         "'slot overhead' counts no-op slots won by drained proposers.");
  Table table({"n", "cmds total", "mean slots", "slot overhead %",
               "ticks/cmd", "msgs/cmd", "all consistent"});
  struct Case {
    std::size_t n, commandsPerNode;
  };
  for (const Case c : {Case{3, 4}, Case{5, 4}, Case{5, 10}, Case{9, 4}}) {
    Summary slots, ticksPer, messagesPer;
    bool consistent = true;
    const double total = static_cast<double>(c.n * c.commandsPerNode);
    for (int run = 0; run < kRuns; ++run) {
      const auto outcome =
          runLog(c.n, c.commandsPerNode,
                 250'000 + static_cast<std::uint64_t>(run));
      bench.require(outcome.complete, "log completeness");
      bench.require(outcome.consistent, "log consistency");
      consistent = consistent && outcome.consistent;
      slots.add(outcome.slots);
      ticksPer.add(outcome.ticks / total);
      messagesPer.add(outcome.messages / total);
    }
    table.addRow({Table::cell(std::uint64_t{c.n}), Table::cell(total, 0),
                  Table::cell(slots.mean(), 1),
                  Table::cell(100.0 * (slots.mean() - total) / slots.mean(),
                              1),
                  Table::cell(ticksPer.mean(), 1),
                  Table::cell(messagesPer.mean(), 0),
                  consistent ? "yes" : "NO"});
  }
  bench.emit(table);
  std::printf("comparison point: bench_raft's purpose-built log commits a "
              "command in ~1 round trip once a leader exists; the generic "
              "object log pays per-slot consensus instead of electing — no "
              "leader, no terms, no repair machinery.\n");
  return bench.finish();
}

// E13 — engineering cost of the decomposition (google-benchmark).
//
// The paper's framework trades a monolithic loop for objects, factories,
// envelopes and routing. This microbenchmark quantifies the wall-clock
// price on identical workloads: full simulated consensus runs, decomposed
// vs monolithic, for Ben-Or and Phase-King, plus the synthesized VAC.
// Expected shape: the template costs a modest constant factor (envelope
// allocation + virtual dispatch), not an asymptotic change.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/scenarios.hpp"

namespace {

using ooc::harness::BenOrConfig;
using ooc::harness::PhaseKingConfig;
using ooc::harness::runBenOr;
using ooc::harness::runPhaseKing;

void benchBenOr(benchmark::State& state, BenOrConfig::Mode mode) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  std::uint64_t rounds = 0, runs = 0;
  for (auto _ : state) {
    BenOrConfig config;
    config.n = n;
    config.inputs.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      config.inputs[i] = static_cast<ooc::Value>(i % 2);
    config.seed = seed++;
    config.t = std::max<std::size_t>(1, n / 8);
    config.mode = mode;
    const auto result = runBenOr(config);
    if (!result.allDecided || result.agreementViolated)
      state.SkipWithError("consensus failure");
    rounds += result.maxDecisionRound;
    ++runs;
    benchmark::DoNotOptimize(result.decidedValue);
  }
  state.counters["rounds/run"] =
      benchmark::Counter(static_cast<double>(rounds) /
                         static_cast<double>(runs ? runs : 1));
}

void BM_BenOrDecomposed(benchmark::State& state) {
  benchBenOr(state, BenOrConfig::Mode::kDecomposed);
}
void BM_BenOrMonolithic(benchmark::State& state) {
  benchBenOr(state, BenOrConfig::Mode::kMonolithic);
}
void BM_BenOrVacFromTwoAc(benchmark::State& state) {
  benchBenOr(state, BenOrConfig::Mode::kVacFromTwoAc);
}

void benchPhaseKing(benchmark::State& state, bool monolithic) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    PhaseKingConfig config;
    config.n = n;
    config.byzantineCount = (n - 1) / 3;
    config.strategy = ooc::phaseking::ByzantineStrategy::kEquivocate;
    config.monolithic = monolithic;
    config.seed = seed++;
    const auto result = runPhaseKing(config);
    if (!result.allDecided || result.agreementViolated)
      state.SkipWithError("consensus failure");
    benchmark::DoNotOptimize(result.decidedValue);
  }
}

void BM_PhaseKingDecomposed(benchmark::State& state) {
  benchPhaseKing(state, false);
}
void BM_PhaseKingMonolithic(benchmark::State& state) {
  benchPhaseKing(state, true);
}

}  // namespace

BENCHMARK(BM_BenOrDecomposed)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BenOrMonolithic)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BenOrVacFromTwoAc)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PhaseKingDecomposed)->Arg(7)->Arg(13)->Arg(25)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PhaseKingMonolithic)->Arg(7)->Arg(13)->Arg(25)->Unit(benchmark::kMicrosecond);

// Custom main: accept the uniform bench flags (--quick, --json PATH) by
// translating them to google-benchmark's own flags, so scripts/bench.sh can
// drive every binary identically. Note the JSON here is google-benchmark's
// schema (wall-clock timings), not ooc.bench.v1 — timings are inherently
// non-reproducible byte-for-byte, and EXPERIMENTS.md documents the split.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 2);
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      storage.push_back("--benchmark_min_time=0.01");
    } else if (arg == "--json" && i + 1 < argc) {
      storage.push_back(std::string("--benchmark_out=") + argv[++i]);
      storage.push_back("--benchmark_out_format=json");
    } else {
      args.push_back(argv[i]);
      continue;
    }
  }
  for (std::string& s : storage) args.push_back(s.data());
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// E8 — VAC synthesized from two adopt-commit objects (paper §5).
//
// The paper states VAC is implementable from two ACs (and that AC alone is
// slightly weaker). We run the construction — AC := downgraded Ben-Or VAC,
// VAC' := VacFromTwoAc(AC, AC) — against the native Ben-Or VAC in the same
// template and measure the price: message cost roughly doubles per round
// while correctness and round counts stay in the same regime.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "harness/scenarios.hpp"

using namespace ooc;
using namespace ooc::bench;
using harness::BenOrConfig;

int main(int argc, char** argv) {
  Bench bench(argc, argv, "vac_from_ac");
  const int kRuns = bench.trials(100);

  bench.banner("E8: native VAC vs VAC-from-2xAC (same template, local coin)",
         "Construction is correct (all contracts hold) and costs ~2x "
         "messages per round — the quantified version of '[AC] is slightly "
         "weaker' (paper §5).");
  Table table({"n", "detector", "mean rounds", "p95 rounds",
               "mean msgs/proc", "msg ratio vs native"});
  for (std::size_t n : {4, 8, 16, 32}) {
    double nativeMsgs = 0;
    for (const bool synthesized : {false, true}) {
      Summary rounds, messages;
      for (int run = 0; run < kRuns; ++run) {
        BenOrConfig config;
        config.n = n;
        config.inputs.resize(n);
        for (std::size_t i = 0; i < n; ++i)
          config.inputs[i] = static_cast<Value>(i % 2);
        config.seed = 120'000 + static_cast<std::uint64_t>(run);
        config.t = std::max<std::size_t>(1, n / 8);
        config.mode = synthesized ? BenOrConfig::Mode::kVacFromTwoAc
                                  : BenOrConfig::Mode::kDecomposed;
        const auto result = runBenOr(config);
        bench.require(result.allDecided && !result.agreementViolated &&
                            !result.validityViolated && result.allAuditsOk,
                        "consensus + contracts");
        rounds.add(result.meanDecisionRound);
        messages.add(static_cast<double>(result.messagesByCorrect) /
                     static_cast<double>(n));
      }
      if (!synthesized) nativeMsgs = messages.mean();
      table.addRow(
          {Table::cell(std::uint64_t{n}),
           synthesized ? "vac-from-2ac" : "native benor-vac",
           Table::cell(rounds.mean()), Table::cell(rounds.p95()),
           Table::cell(messages.mean(), 0),
           synthesized ? Table::cell(messages.mean() / nativeMsgs, 2) : "1.00"});
    }
  }
  bench.emit(table);
  std::printf("reading: per round the synthesized VAC spends two full AC "
              "invocations (4 message waves vs 2), hence the ~2x column.\n");
  return bench.finish();
}

// E8 — VAC synthesized from two adopt-commit objects (paper §5).
//
// The paper states VAC is implementable from two ACs (and that AC alone is
// slightly weaker). We run the construction — AC := downgraded Ben-Or VAC,
// VAC' := VacFromTwoAc(AC, AC) — against the native Ben-Or VAC in the same
// template and measure the price: message cost roughly doubles per round
// while correctness and round counts stay in the same regime. Both arms
// are registry names ("vac-from-two-ac" vs "benor-vac") under the same
// driver.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "compose/composition.hpp"

using namespace ooc;
using namespace ooc::bench;

int main(int argc, char** argv) {
  Bench bench(argc, argv, "vac_from_ac");
  const int kRuns = bench.trials(100);

  bench.banner("E8: native VAC vs VAC-from-2xAC (same template, local coin)",
         "Construction is correct (all contracts hold) and costs ~2x "
         "messages per round — the quantified version of '[AC] is slightly "
         "weaker' (paper §5).");
  Table table({"n", "detector", "mean rounds", "p95 rounds",
               "mean msgs/proc", "msg ratio vs native"});
  for (std::size_t n : {4, 8, 16, 32}) {
    double nativeMsgs = 0;
    for (const bool synthesized : {false, true}) {
      compose::Composition composition;
      composition.detector = synthesized ? "vac-from-two-ac" : "benor-vac";
      composition.driver = "local-coin";
      composition.n = n;
      composition.inputs = alternatingInputs(n);
      composition.t = std::max<std::size_t>(1, n / 8);
      const CellStats stats =
          runCompositionTrials(composition, kRuns, 120'000);
      bench.require(stats.decided == kRuns && stats.agreementOk &&
                        stats.validityOk && stats.auditsOk,
                      "consensus + contracts");
      if (!synthesized) nativeMsgs = stats.messages.mean();
      table.addRow(
          {Table::cell(std::uint64_t{n}),
           synthesized ? "vac-from-2ac" : "native benor-vac",
           Table::cell(stats.rounds.mean()), Table::cell(stats.rounds.p95()),
           Table::cell(stats.messages.mean(), 0),
           synthesized ? Table::cell(stats.messages.mean() / nativeMsgs, 2)
                       : "1.00"});
    }
  }
  bench.emit(table);
  std::printf("reading: per round the synthesized VAC spends two full AC "
              "invocations (4 message waves vs 2), hence the ~2x column.\n");
  return bench.finish();
}

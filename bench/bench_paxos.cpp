// E17 — Paxos vs Raft (extension): the two canonical leader-driven
// consensus substrates, instrumented through the same framework lens.
//
// Both decompose identically in the paper's terms (timer = reconciliator,
// accepted/replicated = adopt, learned/committed = commit), and both obey
// the same timing-property shape: aggressive timers cause duels, relaxed
// timers cost latency. The crossover point and message profiles differ —
// Paxos pays two phases per ballot but needs no heartbeats for a one-shot
// decision; Raft amortizes its election over a log.
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "harness/scenarios.hpp"
#include "obs/metrics.hpp"
#include "paxos/paxos_node.hpp"
#include "sim/simulator.hpp"

using namespace ooc;
using namespace ooc::bench;

namespace {

struct PaxosOutcome {
  bool clean = false;
  Tick lastDecision = 0;
  std::uint64_t messages = 0;
  std::uint64_t ballots = 0;
};

PaxosOutcome runPaxosOnce(std::size_t n, std::uint64_t seed,
                          paxos::PaxosConfig config, double drop) {
  SimConfig simConfig;
  simConfig.seed = seed;
  simConfig.maxTicks = 2'000'000;
  UniformDelayNetwork::Options net;
  net.minDelay = 1;
  net.maxDelay = 5;
  net.dropProbability = drop;
  Simulator sim(simConfig, std::make_unique<UniformDelayNetwork>(net));
  std::vector<paxos::PaxosNode*> nodes;
  std::vector<Value> inputs;
  for (ProcessId id = 0; id < n; ++id) {
    inputs.push_back(static_cast<Value>(id));
    auto node = std::make_unique<paxos::PaxosNode>(inputs.back(), config);
    nodes.push_back(node.get());
    sim.addProcess(std::move(node));
  }
  sim.setValidValues(inputs);
  sim.stopWhenAllCorrectDecided();
  sim.run();

  PaxosOutcome outcome;
  outcome.clean = sim.allCorrectDecided() && !sim.agreementViolated() &&
                  !sim.validityViolated();
  outcome.messages = sim.messagesSent();
  for (ProcessId id = 0; id < n; ++id) {
    outcome.lastDecision =
        std::max(outcome.lastDecision, sim.decision(id).at);
    outcome.ballots += nodes[id]->ballotsStarted();
  }

  // Paxos runs its simulations directly (no harness runner), so the bench
  // publishes the family telemetry itself.
  if (obs::enabled()) {
    auto& reg = obs::metrics();
    const obs::Labels base = {{"family", "paxos"}};
    reg.addCounter("runs", 1, base);
    reg.addCounter("messages_sent", sim.messagesSent(), base);
    reg.addCounter("messages_delivered", sim.messagesDelivered(), base);
    reg.addCounter("messages_dropped", sim.messagesDropped(), base);
    reg.addCounter("events_executed", sim.eventsProcessed(), base);
    reg.addCounter("ballots_started", outcome.ballots, base);
    for (ProcessId id = 0; id < n; ++id) {
      reg.addCounter("driver_invocations",
                     nodes[id]->reconciliatorInvocations(), base);
      for (const auto& change : nodes[id]->confidenceLog()) {
        reg.addCounter("confidence_transitions", 1,
                       {{"family", "paxos"},
                        {"confidence", toString(change.confidence)}});
      }
      if (sim.decision(id).decided)
        reg.observe("ticks_to_decide",
                    static_cast<double>(sim.decision(id).at), base);
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Bench bench(argc, argv, "paxos");
  const int kRuns = bench.trials(30);

  bench.banner("E17a: Paxos retry window sweep (n = 5, delays 1-5)",
         "The reconciliator-timing shape again: tight windows duel "
         "(ballot churn), relaxed windows idle. Safety holds throughout.");
  {
    Table table({"retry window", "clean %", "mean ticks to decide",
                 "mean ballots", "mean msgs"});
    struct Case {
      Tick lo, hi;
    };
    for (const Case c : {Case{10, 16}, Case{25, 45}, Case{50, 100},
                         Case{100, 200}, Case{250, 500}}) {
      Summary ticks, ballots, messages;
      int clean = 0;
      for (int run = 0; run < kRuns; ++run) {
        paxos::PaxosConfig config;
        config.retryMin = c.lo;
        config.retryMax = c.hi;
        const auto outcome = runPaxosOnce(
            5, 260'000 + static_cast<std::uint64_t>(run), config, 0.0);
        bench.require(outcome.clean, "paxos consensus");
        clean += outcome.clean ? 1 : 0;
        ticks.add(static_cast<double>(outcome.lastDecision));
        ballots.add(static_cast<double>(outcome.ballots));
        messages.add(static_cast<double>(outcome.messages));
      }
      table.addRow({Table::cell(std::uint64_t{c.lo}) + "-" +
                        Table::cell(std::uint64_t{c.hi}),
                    Table::cell(100.0 * clean / kRuns, 1),
                    Table::cell(ticks.mean(), 0),
                    Table::cell(ballots.mean(), 1),
                    Table::cell(messages.mean(), 0)});
    }
    bench.emit(table);
  }

  bench.banner("E17b: Paxos vs Raft, one decision, same network (n = 5)",
         "Default timers each. Expected shape: comparable decision "
         "latency (one leader emergence + one replication round each); "
         "Paxos spends more messages because its learner path is an "
         "all-to-all Accepted broadcast (n^2 per ballot) where Raft "
         "replicates linearly through the leader.");
  {
    Table table({"substrate", "mean ticks to decide", "p95", "mean msgs",
                 "mean leader attempts"});
    {
      Summary ticks, messages, attempts;
      for (int run = 0; run < kRuns; ++run) {
        const auto outcome = runPaxosOnce(
            5, 270'000 + static_cast<std::uint64_t>(run),
            paxos::PaxosConfig{}, 0.0);
        bench.require(outcome.clean, "paxos consensus");
        ticks.add(static_cast<double>(outcome.lastDecision));
        messages.add(static_cast<double>(outcome.messages));
        attempts.add(static_cast<double>(outcome.ballots));
      }
      table.addRow({"paxos", Table::cell(ticks.mean(), 0),
                    Table::cell(ticks.p95(), 0),
                    Table::cell(messages.mean(), 0),
                    Table::cell(attempts.mean(), 1)});
    }
    {
      Summary ticks, messages, attempts;
      for (int run = 0; run < kRuns; ++run) {
        harness::RaftScenarioConfig config;
        config.n = 5;
        config.seed = 270'000 + static_cast<std::uint64_t>(run);
        const auto result = runRaft(config);
        bench.require(result.allDecided && !result.agreementViolated,
                        "raft consensus");
        ticks.add(static_cast<double>(result.lastDecisionTick));
        messages.add(static_cast<double>(result.messages));
        attempts.add(static_cast<double>(result.electionsStarted));
      }
      table.addRow({"raft", Table::cell(ticks.mean(), 0),
                    Table::cell(ticks.p95(), 0),
                    Table::cell(messages.mean(), 0),
                    Table::cell(attempts.mean(), 1)});
    }
    bench.emit(table);
  }

  bench.banner("E17c: loss tolerance (n = 5, default timers)",
         "Retry-based recovery: liveness degrades gracefully, safety "
         "never breaks.");
  {
    Table table({"drop prob", "clean %", "mean ticks", "mean ballots"});
    for (const double drop : {0.0, 0.1, 0.2, 0.3}) {
      Summary ticks, ballots;
      int clean = 0;
      for (int run = 0; run < kRuns; ++run) {
        const auto outcome = runPaxosOnce(
            5, 280'000 + static_cast<std::uint64_t>(run),
            paxos::PaxosConfig{}, drop);
        clean += outcome.clean ? 1 : 0;
        bench.require(outcome.clean, "paxos under loss");
        ticks.add(static_cast<double>(outcome.lastDecision));
        ballots.add(static_cast<double>(outcome.ballots));
      }
      table.addRow({Table::cell(drop, 2), Table::cell(100.0 * clean / kRuns, 1),
                    Table::cell(ticks.mean(), 0),
                    Table::cell(ballots.mean(), 1)});
    }
    bench.emit(table);
  }
  return bench.finish();
}

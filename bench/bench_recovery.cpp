// E18 — Crash-recovery durability: restart faults against the simulated
// stable-storage subsystem (src/store/).
//
// Claims: (a) with a journal and the sync-before-reply discipline, Raft and
// Paxos survive crash-restart faults with no vote amnesia, no
// committed-entry regression and no agreement violation; (b) dropping the
// sync discipline (crash-before-sync) or the journal entirely makes both
// durability violations observable, at a rate that grows with the restart
// count; (c) the write-ahead log's recovery path detects torn tails and
// CRC-corrupted records deterministically and truncates to the clean
// prefix. The checker's restart strategy hunts (b) systematically; this
// bench measures the rates.
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "harness/scenarios.hpp"
#include "obs/metrics.hpp"
#include "paxos/paxos_node.hpp"
#include "sim/simulator.hpp"
#include "store/wal.hpp"
#include "util/rng.hpp"

using namespace ooc;
using namespace ooc::bench;
using harness::RaftScenarioConfig;

namespace {

// The three durability disciplines the sweep contrasts.
struct Discipline {
  const char* label;
  bool durable;
  bool syncBeforeReply;
  bool sound;  // violations are a bench failure only for sound disciplines
};

constexpr Discipline kDisciplines[] = {
    {"durable+sync", true, true, true},
    {"durable+nosync", true, false, false},
    {"volatile", false, true, false},
};

RaftScenarioConfig recoveryConfig(std::size_t restarts, std::uint64_t seed,
                                  const Discipline& d) {
  RaftScenarioConfig config;
  config.n = 5;
  config.seed = seed;
  // Loss keeps elections contested, so restarts land in live terms.
  config.dropProbability = 0.1;
  config.raft.durable = d.durable;
  config.raft.syncBeforeReply = d.syncBeforeReply;
  // Restarts are packed into the first-election window (timeouts fire in
  // [150, 300]) with short downtimes, so recovery races live vote grants —
  // the regime where a stale journal can act before the term moves on.
  for (std::size_t i = 0; i < restarts; ++i) {
    RaftScenarioConfig::RestartEvent event;
    event.id = static_cast<ProcessId>(i % config.n);
    event.at = 155 + 35 * static_cast<Tick>(i);
    event.downtime = 5;
    config.restarts.push_back(event);
  }
  config.maxTicks = 400'000;
  return config;
}

struct PaxosRecoveryOutcome {
  bool decided = false;
  bool agreementOk = true;
  std::uint64_t recoveries = 0;
  Tick lastDecision = 0;
};

PaxosRecoveryOutcome runPaxosRecovery(std::size_t n, std::uint64_t seed,
                                      std::size_t restarts,
                                      const Discipline& d) {
  SimConfig simConfig;
  simConfig.seed = seed;
  simConfig.maxTicks = 2'000'000;
  UniformDelayNetwork::Options net;
  net.minDelay = 1;
  net.maxDelay = 5;
  net.dropProbability = 0.1;
  Simulator sim(simConfig, std::make_unique<UniformDelayNetwork>(net));
  paxos::PaxosConfig config;
  config.durable = d.durable;
  config.syncBeforeReply = d.syncBeforeReply;
  std::vector<paxos::PaxosNode*> nodes;
  std::vector<Value> inputs;
  for (ProcessId id = 0; id < n; ++id) {
    inputs.push_back(static_cast<Value>(id));
    auto node = std::make_unique<paxos::PaxosNode>(inputs.back(), config);
    nodes.push_back(node.get());
    sim.addProcess(std::move(node));
  }
  sim.setValidValues(inputs);
  // Paxos decides fast (first ballots land within ~150 ticks), so the
  // restarts must hit the opening Prepare/Accept exchanges to matter.
  for (std::size_t i = 0; i < restarts; ++i)
    sim.restartAt(static_cast<ProcessId>(i % n), 40 + 35 * i, 15);
  sim.stopWhenAllCorrectDecided();
  sim.run();

  PaxosRecoveryOutcome outcome;
  outcome.decided = sim.allCorrectDecided();
  outcome.agreementOk = !sim.agreementViolated();
  for (ProcessId id = 0; id < n; ++id) {
    outcome.recoveries += nodes[id]->recoveries();
    outcome.lastDecision = std::max(outcome.lastDecision,
                                    sim.decision(id).at);
    // Committed-value regression across incarnations (the simulator's
    // online monitor only sees one incarnation's first decision).
    const auto& history = nodes[id]->decisionHistory();
    for (const Value v : history)
      if (v != history.front()) outcome.agreementOk = false;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Bench bench(argc, argv, "recovery");
  const int kRuns = bench.trials(40);

  bench.banner(
      "E18a: Raft restart count x sync discipline (n = 5, drop 0.1)",
      "sync-before-reply journaling survives restarts cleanly; dropping the "
      "sync (or the journal) makes vote amnesia observable at a rate "
      "growing with restart count (committed-entry regression needs deeper "
      "schedules than this sweep; the checker's restart strategy hunts "
      "both).");
  {
    Table table({"discipline", "restarts", "decided %", "agreement ok %",
                 "amnesia %", "regression %", "mean recoveries",
                 "mean records recovered"});
    for (const Discipline& d : kDisciplines) {
      for (const std::size_t restarts : {0u, 1u, 2u, 4u}) {
        int decided = 0, agreementOk = 0, amnesia = 0, regression = 0;
        Summary recoveries, recovered;
        for (int run = 0; run < kRuns; ++run) {
          const auto config = recoveryConfig(
              restarts, 180'000 + static_cast<std::uint64_t>(run), d);
          const auto result = runRaft(config);
          if (result.allDecided) ++decided;
          if (!result.agreementViolated) ++agreementOk;
          if (result.voteAmnesia) ++amnesia;
          if (result.commitRegression) ++regression;
          recoveries.add(static_cast<double>(result.recoveries));
          recovered.add(static_cast<double>(result.recoveredRecords));
          if (d.sound) {
            bench.require(!result.voteAmnesia,
                          "no vote amnesia under sync-before-reply");
            bench.require(!result.commitRegression,
                          "no commit regression under sync-before-reply");
            bench.require(!result.agreementViolated,
                          "raft agreement under restarts");
          }
        }
        table.addRow({d.label, Table::cell(std::uint64_t{restarts}),
                      Table::cell(100.0 * decided / kRuns, 1),
                      Table::cell(100.0 * agreementOk / kRuns, 1),
                      Table::cell(100.0 * amnesia / kRuns, 1),
                      Table::cell(100.0 * regression / kRuns, 1),
                      Table::cell(recoveries.mean(), 2),
                      Table::cell(recovered.mean(), 1)});
      }
    }
    bench.emit(table);
    bench.note(
        "The unsound rows are the experiment, not a failure: they quantify "
        "how often crash-before-sync resurrects a stale journal. The "
        "checker finds and shrinks individual schedules: "
        "check --family raft --strategy restart --crash-before-sync.");
  }

  bench.banner(
      "E18b: write-ahead log fault injection (direct, no simulator)",
      "recover() truncates at the first torn or corrupt record: everything "
      "synced before the crash and not hit by corruption survives; nothing "
      "past the damage is ever returned.");
  {
    const int kWalTrials = bench.trials(400);
    // A torn tail may flush complete unsynced records, so "recovered" can
    // legitimately exceed the 8 synced ones — the sync() barrier is a
    // durability floor, not a ceiling.
    Table table({"torn prob", "corrupt prob", "mean recovered (8 synced)",
                 "torn tails %", "corrupt %", "mean bytes discarded"});
    struct FaultCase {
      double torn, corrupt;
    };
    for (const FaultCase fc :
         {FaultCase{0.0, 0.0}, FaultCase{1.0, 0.0}, FaultCase{0.0, 1.0},
          FaultCase{0.5, 0.2}}) {
      Summary recoveredRecords, discarded;
      int tornSeen = 0, corruptSeen = 0;
      for (int trial = 0; trial < kWalTrials; ++trial) {
        store::FaultConfig faults;
        faults.tornTailProbability = fc.torn;
        faults.corruptProbability = fc.corrupt;
        store::WriteAheadLog wal(faults);
        Rng rng(9'000 + static_cast<std::uint64_t>(trial));
        // Eight synced records, then four unsynced ones that the crash
        // must discard (modulo a torn prefix).
        for (std::uint64_t i = 0; i < 8; ++i) {
          wal.append({i, i * i, 42});
          wal.sync();
        }
        for (std::uint64_t i = 0; i < 4; ++i) wal.append({100 + i});
        wal.crash(rng);
        store::RecoveryReport report;
        const auto records = wal.recover(&report);
        bench.require(records.size() == report.recordsRecovered,
                      "recovery report counts the returned records");
        bench.require(report.recordsRecovered <= 12,
                      "recovery never invents records");
        if (fc.torn == 0.0 && fc.corrupt == 0.0) {
          bench.require(report.recordsRecovered == 8,
                        "fault-free recovery returns exactly the synced "
                        "prefix");
        }
        for (std::size_t i = 0;
             i < records.size() && i < 8; ++i) {
          bench.require(records[i].size() == 3 && records[i][2] == 42,
                        "recovered records are bit-exact");
        }
        recoveredRecords.add(static_cast<double>(report.recordsRecovered));
        discarded.add(static_cast<double>(report.bytesDiscarded));
        if (report.tornTail) ++tornSeen;
        if (report.corruptRecords > 0) ++corruptSeen;
      }
      table.addRow({Table::cell(fc.torn, 1), Table::cell(fc.corrupt, 1),
                    Table::cell(recoveredRecords.mean(), 2),
                    Table::cell(100.0 * tornSeen / kWalTrials, 1),
                    Table::cell(100.0 * corruptSeen / kWalTrials, 1),
                    Table::cell(discarded.mean(), 1)});
    }
    bench.emit(table);
  }

  bench.banner(
      "E18c: Paxos acceptor durability under restarts (n = 5, drop 0.1)",
      "Paxos' safety argument assumes stable acceptor state: with the "
      "journal and sync discipline, restarted acceptors keep their "
      "promises and agreement holds across every restart schedule.");
  {
    Table table({"discipline", "restarts", "decided %", "agreement ok %",
                 "mean recoveries", "mean ticks to decide"});
    for (const Discipline& d : kDisciplines) {
      for (const std::size_t restarts : {0u, 2u, 4u}) {
        int decided = 0, agreementOk = 0;
        Summary recoveries, ticks;
        for (int run = 0; run < kRuns; ++run) {
          const auto outcome = runPaxosRecovery(
              5, 190'000 + static_cast<std::uint64_t>(run), restarts, d);
          if (outcome.decided) {
            ++decided;
            ticks.add(static_cast<double>(outcome.lastDecision));
          }
          if (outcome.agreementOk) ++agreementOk;
          recoveries.add(static_cast<double>(outcome.recoveries));
          if (d.sound) {
            bench.require(outcome.agreementOk,
                          "paxos agreement with durable acceptors");
          }
        }
        table.addRow({d.label, Table::cell(std::uint64_t{restarts}),
                      Table::cell(100.0 * decided / kRuns, 1),
                      Table::cell(100.0 * agreementOk / kRuns, 1),
                      Table::cell(recoveries.mean(), 2),
                      ticks.empty() ? "-" : Table::cell(ticks.mean(), 0)});
      }
    }
    bench.emit(table);
  }
  return bench.finish();
}

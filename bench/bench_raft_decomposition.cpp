// E7 — Raft through the VAC/reconciliator lens (paper Algorithms 10-11).
//
// The paper maps Raft's per-term knowledge states onto VAC confidences:
//   vacillate — no evidence of a leader (term start / election timeout),
//   adopt     — tentative AppendEntries accepted, or leadership won,
//   commit    — commit index advanced over the decided entry.
// This bench instruments real Raft runs and reports (a) the confidence
// transition mix, (b) validation of the coherence-style invariants the
// mapping implies, and (c) the reconciliator (election-timeout) count as a
// function of contention — the paper's claim that the timer IS the
// reconciliator predicts churn rises exactly when decisions stall.
#include <cmath>

#include "bench/bench_common.hpp"
#include "harness/scenarios.hpp"

using namespace ooc;
using namespace ooc::bench;
using harness::RaftScenarioConfig;

int main(int argc, char** argv) {
  Bench bench(argc, argv, "raft_decomposition");
  const int kRuns = bench.trials(40);

  bench.banner("E7a: VAC confidence-transition census (n = 5)",
         "Every process history must respect the VAC ordering (no commit "
         "before adopt-level evidence) and all commit values must agree — "
         "the instrumented form of coherence over adopt & commit.");
  {
    Table table({"scenario", "runs", "transitions/run", "reconciliator "
                 "invocations/run", "order ok", "commits agree"});
    struct Scenario {
      const char* name;
      double drop;
      Tick timeoutLo, timeoutHi;
    };
    for (const Scenario s :
         {Scenario{"quiet", 0.0, 150, 300},
          Scenario{"lossy (10%)", 0.1, 150, 300},
          Scenario{"contended (tight timers)", 0.0, 12, 20},
          Scenario{"hostile (loss + tight)", 0.15, 12, 20}}) {
      Summary transitions, reconciliations;
      bool orderOk = true, commitsAgree = true;
      for (int run = 0; run < kRuns; ++run) {
        RaftScenarioConfig config;
        config.n = 5;
        config.seed = 100'000 + static_cast<std::uint64_t>(run);
        config.dropProbability = s.drop;
        config.raft.electionTimeoutMin = s.timeoutLo;
        config.raft.electionTimeoutMax = s.timeoutHi;
        config.raft.heartbeatInterval = std::max<Tick>(2, s.timeoutLo / 3);
        config.maxTicks = 3'000'000;
        const auto result = runRaft(config);
        bench.require(result.allDecided && !result.agreementViolated,
                        std::string("raft consensus: ") + s.name);
        orderOk = orderOk && result.confidenceOrderOk;
        commitsAgree = commitsAgree && result.commitValuesAgree;
        transitions.add(static_cast<double>(result.confidenceTransitions));
        reconciliations.add(
            static_cast<double>(result.reconciliatorInvocations));
      }
      bench.require(orderOk, "VAC confidence ordering");
      bench.require(commitsAgree, "commit coherence");
      table.addRow({s.name, Table::cell(kRuns),
                    Table::cell(transitions.mean(), 1),
                    Table::cell(reconciliations.mean(), 1),
                    orderOk ? "yes" : "NO", commitsAgree ? "yes" : "NO"});
    }
    bench.emit(table);
  }

  bench.banner("E7b: reconciliator churn vs decision latency",
         "Algorithm 11 says the election timeout IS Raft's reconciliator: "
         "runs that reconcile more must be the runs that decide later "
         "(positive correlation across seeds).");
  {
    Summary lat, rec;
    double sumXY = 0, sumX = 0, sumY = 0, sumX2 = 0, sumY2 = 0;
    constexpr int kCorrRuns = 120;
    for (int run = 0; run < kCorrRuns; ++run) {
      RaftScenarioConfig config;
      config.n = 5;
      config.seed = 110'000 + static_cast<std::uint64_t>(run);
      config.raft.electionTimeoutMin = 20;
      config.raft.electionTimeoutMax = 40;
      config.raft.heartbeatInterval = 7;
      config.dropProbability = 0.1;
      config.maxTicks = 3'000'000;
      const auto result = runRaft(config);
      bench.require(result.allDecided, "raft correlation run");
      const double x = static_cast<double>(result.reconciliatorInvocations);
      const double y = static_cast<double>(result.lastDecisionTick);
      lat.add(y);
      rec.add(x);
      sumXY += x * y;
      sumX += x;
      sumY += y;
      sumX2 += x * x;
      sumY2 += y * y;
    }
    const double n = kCorrRuns;
    const double denom = std::sqrt((n * sumX2 - sumX * sumX) *
                                   (n * sumY2 - sumY * sumY));
    const double r = denom == 0 ? 0 : (n * sumXY - sumX * sumY) / denom;
    Table table({"metric", "value"});
    table.addRow({"runs", Table::cell(kCorrRuns)});
    table.addRow({"mean reconciliations", Table::cell(rec.mean(), 1)});
    table.addRow({"mean decision tick", Table::cell(lat.mean(), 0)});
    table.addRow({"Pearson r (reconciliations, latency)",
                  Table::cell(r, 3)});
    bench.emit(table);
    bench.require(r > 0.3, "positive churn/latency correlation");
  }
  return bench.finish();
}

// E12 — decentralized Raft "highly resembles Ben-Or's" (paper §4.3).
//
// The paper observes that removing the leader from Raft's consensus usage
// (broadcast proposals; commit-message on seeing a majority) yields an
// algorithm whose only difference from Ben-Or is the reconciliator. We run
// both VACs under the identical template and reconciliator across a seed
// batch and compare the full distribution of rounds-to-decide, message
// cost, and outcome mix. Expected shape: statistically indistinguishable
// columns.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "harness/scenarios.hpp"

using namespace ooc;
using namespace ooc::bench;
using harness::BenOrConfig;

int main(int argc, char** argv) {
  Bench bench(argc, argv, "decentralized");
  const int kRuns = bench.trials(200);

  bench.banner("E12: Ben-Or VAC vs decentralized-Raft VAC (same template, same "
         "local coin, same seeds)",
         "Paper §4.3 remark quantified: the two detectors should be "
         "behaviourally identical up to message naming.");
  Table table({"n", "detector", "mean rounds", "p50", "p95", "max",
               "mean msgs/proc", "commit-in-1 %"});
  for (std::size_t n : {4, 8, 16}) {
    for (const bool decentralized : {false, true}) {
      Summary rounds, messages;
      int firstRoundCommits = 0;
      for (int run = 0; run < kRuns; ++run) {
        BenOrConfig config;
        config.n = n;
        config.inputs.resize(n);
        for (std::size_t i = 0; i < n; ++i)
          config.inputs[i] = static_cast<Value>(i % 2);
        config.seed = 170'000 + static_cast<std::uint64_t>(run);
        config.t = std::max<std::size_t>(1, n / 4);
        config.mode = decentralized ? BenOrConfig::Mode::kDecentralizedVac
                                    : BenOrConfig::Mode::kDecomposed;
        const auto result = runBenOr(config);
        bench.require(result.allDecided && !result.agreementViolated &&
                            result.allAuditsOk,
                        "consensus + contracts");
        rounds.add(result.meanDecisionRound);
        messages.add(static_cast<double>(result.messagesByCorrect) /
                     static_cast<double>(n));
        firstRoundCommits += result.maxDecisionRound == 1 ? 1 : 0;
      }
      table.addRow({Table::cell(std::uint64_t{n}),
                    decentralized ? "decentralized-raft" : "benor-vac",
                    Table::cell(rounds.mean()), Table::cell(rounds.median()),
                    Table::cell(rounds.p95()), Table::cell(rounds.max()),
                    Table::cell(messages.mean(), 0),
                    Table::cell(100.0 * firstRoundCommits / kRuns, 1)});
    }
  }
  bench.emit(table);
  std::printf("reading: identical rows (bit-for-bit with the same seeds) — "
              "the decentralized variant IS Ben-Or with renamed messages, "
              "which is precisely the paper's point.\n");
  return bench.finish();
}

// E12 — decentralized Raft "highly resembles Ben-Or's" (paper §4.3).
//
// The paper observes that removing the leader from Raft's consensus usage
// (broadcast proposals; commit-message on seeing a majority) yields an
// algorithm whose only difference from Ben-Or is the reconciliator. We run
// both VACs under the identical template and reconciliator across a seed
// batch and compare the full distribution of rounds-to-decide, message
// cost, and outcome mix. Expected shape: statistically indistinguishable
// columns. The two arms differ only in the Composition's detector name.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "compose/composition.hpp"

using namespace ooc;
using namespace ooc::bench;

int main(int argc, char** argv) {
  Bench bench(argc, argv, "decentralized");
  const int kRuns = bench.trials(200);

  bench.banner("E12: Ben-Or VAC vs decentralized-Raft VAC (same template, same "
         "local coin, same seeds)",
         "Paper §4.3 remark quantified: the two detectors should be "
         "behaviourally identical up to message naming.");
  Table table({"n", "detector", "mean rounds", "p50", "p95", "max",
               "mean msgs/proc", "commit-in-1 %"});
  for (std::size_t n : {4, 8, 16}) {
    for (const bool decentralized : {false, true}) {
      compose::Composition composition;
      composition.detector =
          decentralized ? "decentralized-vac" : "benor-vac";
      composition.driver = "local-coin";
      composition.n = n;
      composition.inputs = alternatingInputs(n);
      composition.t = std::max<std::size_t>(1, n / 4);
      const CellStats stats =
          runCompositionTrials(composition, kRuns, 170'000);
      bench.require(stats.decided == kRuns && stats.agreementOk &&
                        stats.auditsOk,
                      "consensus + contracts");
      table.addRow({Table::cell(std::uint64_t{n}),
                    decentralized ? "decentralized-raft" : "benor-vac",
                    Table::cell(stats.rounds.mean()),
                    Table::cell(stats.rounds.median()),
                    Table::cell(stats.rounds.p95()),
                    Table::cell(stats.rounds.max()),
                    Table::cell(stats.messages.mean(), 0),
                    Table::cell(100.0 * stats.decidedInFirstRound / kRuns,
                                1)});
    }
  }
  bench.emit(table);
  std::printf("reading: identical rows (bit-for-bit with the same seeds) — "
              "the decentralized variant IS Ben-Or with renamed messages, "
              "which is precisely the paper's point.\n");
  return bench.finish();
}

// Shared helpers for the experiment binaries. Every bench prints one or
// more labelled ASCII tables (the "paper tables" of EXPERIMENTS.md) and
// exits non-zero if any run violated a correctness property, so the bench
// suite doubles as a large randomized soak test.
#pragma once

#include <cstdio>
#include <string>

#include "util/stats.hpp"

namespace ooc::bench {

inline void banner(const std::string& experiment, const std::string& claim) {
  std::printf("=== %s ===\n%s\n\n", experiment.c_str(), claim.c_str());
}

inline void section(const std::string& title) {
  std::printf("--- %s ---\n", title.c_str());
}

inline void emit(const Table& table) {
  std::printf("%s\n", table.render().c_str());
}

/// Tracks whether any correctness property failed anywhere in the bench.
class Verdict {
 public:
  void require(bool ok, const std::string& what) {
    if (!ok) {
      ++failures_;
      std::printf("!! property violation: %s\n", what.c_str());
    }
  }
  int exitCode() const {
    if (failures_ > 0)
      std::printf("\n%d correctness violations — INVESTIGATE\n", failures_);
    return failures_ > 0 ? 1 : 0;
  }

 private:
  int failures_ = 0;
};

}  // namespace ooc::bench

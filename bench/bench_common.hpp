// Shared harness for the experiment binaries. Every bench prints one or
// more labelled ASCII tables (the "paper tables" of EXPERIMENTS.md) and
// exits non-zero if any run violated a correctness property, so the bench
// suite doubles as a large randomized soak test.
//
// A `Bench` instance owns the binary's command line and output:
//
//   int main(int argc, char** argv) {
//     ooc::bench::Bench bench(argc, argv, "benor_rounds");
//     bench.banner("E1: ...", "claim...");
//     ...
//     bench.require(ok, "what");
//     bench.emit(table);
//     return bench.finish();
//   }
//
// Flags (uniform across all benches):
//   --quick        scale trial counts down (CI smoke mode); see trials()
//   --threads N    worker threads for trial sweeps (default: hardware)
//   --json PATH    additionally write the whole bench result as JSON
//   --help         print usage
//
// The JSON output ("ooc.bench.v1", documented in EXPERIMENTS.md) captures
// the banner/section/table/note stream, the verdict, and a snapshot of the
// telemetry registry (the constructor enables ooc::obs metrics, so the
// instrumented scenario runners publish per-family counters and
// distributions). Everything in the file is a pure function of
// (bench, flags) — byte-identical across repeated runs and across
// --threads values — except the quarantined `sweep` scheduler-telemetry
// block, which carries wall-clock fields (like ooc.check.v1's).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "compose/run.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_id.hpp"
#include "sweep/scheduler.hpp"
#include "util/stats.hpp"

namespace ooc::bench {

namespace detail {
/// Worker threads for trial sweeps; 0 = hardware (set by Bench's --threads).
inline std::size_t& trialThreadsRef() noexcept {
  static std::size_t threads = 0;
  return threads;
}
/// Scheduler telemetry accumulated across every trial sweep of the
/// process, emitted as the bench JSON's quarantined `sweep` block.
inline sweep::SweepAccumulator& sweepTelemetryRef() noexcept {
  static sweep::SweepAccumulator acc;
  return acc;
}
}  // namespace detail

/// Worker threads trial sweeps use (0 = hardware). Test hook + Bench flag.
inline void setTrialThreads(std::size_t threads) noexcept {
  detail::trialThreadsRef() = threads;
}
inline std::size_t trialThreads() noexcept {
  return detail::trialThreadsRef();
}

/// Runs `fn(0) ... fn(runs-1)` across the experiment scheduler and returns
/// the results **in index order** — the determinism backbone of every
/// parallel bench: each trial writes a pre-sized slot, and the caller's
/// fold over the returned vector sees one canonical order regardless of
/// thread count. `fn` must be safe to call concurrently for distinct runs
/// (trials are independent seeded simulations; registry updates are
/// commutative).
template <typename Fn>
auto runTrialsParallel(int runs, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(0))>> {
  std::vector<std::decay_t<decltype(fn(0))>> results(
      static_cast<std::size_t>(runs > 0 ? runs : 0));
  sweep::Options options;
  options.threads = trialThreads();
  const sweep::SweepStats stats = sweep::parallelFor(
      results.size(),
      [&](std::size_t index, sweep::Control&) {
        results[index] = fn(static_cast<int>(index));
      },
      options);
  detail::sweepTelemetryRef().add(stats);
  return results;
}

/// The balanced-split input pattern every sweep uses: 0,1,0,1,...
inline std::vector<Value> alternatingInputs(std::size_t n) {
  std::vector<Value> inputs(n);
  for (std::size_t i = 0; i < n; ++i)
    inputs[i] = static_cast<Value>(i % 2);
  return inputs;
}

/// Aggregate of one experiment cell: `runs` seeded executions of a single
/// composition. Round/message statistics plus the property flags the
/// benches assert via Bench::require.
struct CellStats {
  int runs = 0;
  int decided = 0;  ///< runs where every correct process decided
  int decidedInFirstRound = 0;  ///< decided runs with max round 1
  bool agreementOk = true;
  bool validityOk = true;
  bool auditsOk = true;
  Summary rounds;    ///< mean decision round, decided runs only
  Summary messages;  ///< messages by correct processes, per process
};

/// Runs `composition` under seeds seedBase, seedBase+1, ... — the
/// scenario-setup loop every experiment binary used to hand-roll. The
/// composition names the detector × driver pairing; everything else
/// (inputs, t, crash schedule) rides along on the spec. Trials fan out
/// across the scheduler; the fold below runs sequentially in seed order,
/// so CellStats (and the JSON downstream) is byte-identical at any
/// --threads value.
inline CellStats runCompositionTrials(compose::Composition composition,
                                      int runs, std::uint64_t seedBase) {
  const auto results =
      runTrialsParallel(runs, [&composition, seedBase](int run) {
        compose::Composition trial = composition;
        trial.seed = seedBase + static_cast<std::uint64_t>(run);
        return compose::runComposition(trial);
      });
  CellStats stats;
  stats.runs = runs;
  for (const compose::CompositionResult& result : results) {
    stats.agreementOk = stats.agreementOk && !result.agreementViolated;
    stats.validityOk = stats.validityOk && !result.validityViolated;
    stats.auditsOk = stats.auditsOk && result.allAuditsOk;
    if (result.allDecided) {
      ++stats.decided;
      if (result.maxDecisionRound == 1) ++stats.decidedInFirstRound;
      stats.rounds.add(result.meanDecisionRound);
    }
    stats.messages.add(static_cast<double>(result.messagesByCorrect) /
                       static_cast<double>(composition.n));
  }
  return stats;
}

class Bench {
 public:
  Bench(int argc, char** argv, std::string name) : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        quick_ = true;
      } else if (arg == "--json" && i + 1 < argc) {
        jsonPath_ = argv[++i];
      } else if (arg == "--threads" && i + 1 < argc) {
        setTrialThreads(static_cast<std::size_t>(
            std::strtoull(argv[++i], nullptr, 10)));
      } else if (arg == "--help" || arg == "-h") {
        std::printf("usage: bench_%s [--quick] [--threads N] [--json PATH]\n"
                    "  --quick      reduced trial counts (CI smoke mode)\n"
                    "  --threads N  worker threads for trial sweeps\n"
                    "               (default 0 = hardware; results are\n"
                    "               byte-identical at any value)\n"
                    "  --json PATH  write machine-readable results "
                    "(schema ooc.bench.v1)\n",
                    name_.c_str());
        std::exit(0);
      } else {
        std::fprintf(stderr, "bench_%s: unknown argument '%s'\n",
                     name_.c_str(), arg.c_str());
        std::exit(2);
      }
    }
    obs::metrics().reset();
    obs::metrics().enable(true);
  }

  bool quick() const noexcept { return quick_; }

  /// Trial count for one experiment cell: `full` normally, scaled down by
  /// 10x (floor 4) under --quick so the CI smoke job finishes in seconds.
  int trials(int full) const noexcept {
    return quick_ ? std::max(4, full / 10) : full;
  }

  /// Starts a new experiment: prints the banner and opens a JSON section.
  void banner(const std::string& experiment, const std::string& claim) {
    std::printf("=== %s ===\n%s\n\n", experiment.c_str(), claim.c_str());
    sections_.push_back(Section{experiment, claim, {}, {}});
  }

  /// Starts a sub-section within the current experiment.
  void section(const std::string& title) {
    std::printf("--- %s ---\n", title.c_str());
    current().subsections.push_back(title);
  }

  /// Prints a table and records it in the current section.
  void emit(const Table& table) {
    std::printf("%s\n", table.render().c_str());
    current().tables.push_back(table);
  }

  /// Prints a free-form remark and records it in the current section.
  void note(const std::string& text) {
    std::printf("%s\n", text.c_str());
    current().notes.push_back(text);
  }

  /// Correctness check: a failure is printed, counted, and recorded in the
  /// JSON verdict (violations are aggregated by `what`).
  void require(bool ok, const std::string& what) {
    if (ok) return;
    ++failures_;
    ++violations_[what];
    std::printf("!! property violation: %s\n", what.c_str());
  }

  int failures() const noexcept { return failures_; }

  /// Prints the verdict, writes the JSON file if requested, and returns the
  /// process exit code (0 iff no property was violated).
  int finish() {
    if (failures_ > 0)
      std::printf("\n%d correctness violations — INVESTIGATE\n", failures_);
    if (!jsonPath_.empty()) writeJson();
    return failures_ > 0 ? 1 : 0;
  }

 private:
  struct Section {
    std::string title;
    std::string claim;
    std::vector<Table> tables;
    std::vector<std::string> notes;
    std::vector<std::string> subsections;
  };

  Section& current() {
    if (sections_.empty()) sections_.push_back(Section{name_, "", {}, {}});
    return sections_.back();
  }

  void writeJson() {
    obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value("ooc.bench.v1");
    w.key("bench").value(name_);
    // Deterministic identity: the bench's configuration is its name plus
    // the trial-scaling flag (seeds are hard-coded per bench).
    w.key("run_id").value(
        obs::runId(name_ + (quick_ ? "\x1f/quick" : "\x1f/full")));
    w.key("quick").value(quick_);

    w.key("verdict").beginObject();
    w.key("failures").value(failures_);
    w.key("violations").beginArray();
    for (const auto& [what, count] : violations_) {  // std::map: sorted
      w.beginObject();
      w.key("what").value(what);
      w.key("count").value(static_cast<std::uint64_t>(count));
      w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("sections").beginArray();
    for (const Section& s : sections_) {
      w.beginObject();
      w.key("title").value(s.title);
      w.key("claim").value(s.claim);
      w.key("tables").beginArray();
      for (const Table& t : s.tables) {
        w.beginObject();
        w.key("header").beginArray();
        for (const std::string& h : t.header()) w.value(h);
        w.endArray();
        w.key("rows").beginArray();
        for (const auto& row : t.rows()) {
          w.beginArray();
          for (const std::string& cell : row) w.value(cell);
          w.endArray();
        }
        w.endArray();
        w.endObject();
      }
      w.endArray();
      w.key("notes").beginArray();
      for (const std::string& n : s.notes) w.value(n);
      w.endArray();
      w.endObject();
    }
    w.endArray();

    w.key("metrics").raw(obs::metrics().toJson());
    // Scheduler telemetry accumulated over every trial sweep. Like
    // ooc.check.v1's, this is the ONLY non-reproducible (wall-clock)
    // block of the file — byte-diff consumers strip `sweep` first.
    if (!detail::sweepTelemetryRef().empty())
      w.key("sweep").raw(sweep::toJson(detail::sweepTelemetryRef()));
    w.endObject();

    std::ofstream out(jsonPath_, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench_%s: cannot write '%s'\n", name_.c_str(),
                   jsonPath_.c_str());
      std::exit(2);
    }
    out << w.str() << '\n';
  }

  std::string name_;
  bool quick_ = false;
  std::string jsonPath_;
  int failures_ = 0;
  std::map<std::string, int> violations_;
  std::vector<Section> sections_;
};

}  // namespace ooc::bench

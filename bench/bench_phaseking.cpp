// E4 + E5 — Phase-King: decomposition faithfulness, attack resilience, and
// the 3t < n boundary.
//
// E4 (paper §4.1): the AC + conciliator decomposition behaves like classic
//     Phase-King — agreement under every strategy at f = t, decision within
//     t+2 rounds once a correct king reigns, message cost O(n^2) per round.
// E5: sweep the actual attacker count f across the n/3 bound. For f <= t
//     every run is clean; for f > t the adversary can and does break runs.
#include "bench/bench_common.hpp"
#include "harness/scenarios.hpp"

using namespace ooc;
using namespace ooc::bench;
using harness::PhaseKingConfig;
using phaseking::ByzantineStrategy;

int main(int argc, char** argv) {
  Bench bench(argc, argv, "phaseking");
  const int kRuns = bench.trials(40);

  bench.banner("E4a: decomposed vs monolithic Phase-King (f = t, equivocators "
         "seated as first kings)",
         "Paper §4.1: Algorithms 3+4 under the AC/conciliator template "
         "reproduce Phase-King (classic t+1-round decision rule). Both "
         "columns must be clean with matching costs.");
  {
    Table table({"n", "t", "mode", "success %", "mean rounds",
                 "mean msgs/correct", "ticks to done"});
    for (std::size_t n : {4, 7, 13, 25, 40}) {
      const std::size_t t = (n - 1) / 3;
      for (const bool monolithic : {false, true}) {
        Summary rounds, messages, ticks;
        int clean = 0;
        for (int run = 0; run < kRuns; ++run) {
          PhaseKingConfig config;
          config.n = n;
          config.byzantineCount = t;
          config.strategy = ByzantineStrategy::kEquivocate;
          config.placement = PhaseKingConfig::Placement::kFront;
          config.monolithic = monolithic;
          config.seed = 40'000 + static_cast<std::uint64_t>(run);
          const auto result = runPhaseKing(config);
          const bool ok = result.allDecided && !result.agreementViolated &&
                          !result.validityViolated;
          clean += ok ? 1 : 0;
          bench.require(ok, "phase-king f=t run");
          if (!monolithic) {
            bench.require(result.allAuditsOk, "AC contracts");
            rounds.add(static_cast<double>(result.maxDecisionRound));
          } else {
            rounds.add(static_cast<double>(t + 1));
          }
          messages.add(static_cast<double>(result.messagesByCorrect) /
                       static_cast<double>(n - t));
          ticks.add(static_cast<double>(result.lastDecisionTick));
        }
        table.addRow({Table::cell(std::uint64_t{n}),
                      Table::cell(std::uint64_t{t}),
                      monolithic ? "monolithic" : "decomposed",
                      Table::cell(100.0 * clean / kRuns, 1),
                      Table::cell(rounds.mean()),
                      Table::cell(messages.mean(), 0),
                      Table::cell(ticks.mean(), 1)});
      }
    }
    bench.emit(table);
  }

  bench.banner("E4b: strategy sweep at n = 13, f = t = 4",
         "Every attack in the repertoire must fail (agreement + validity + "
         "contracts hold).");
  {
    Table table({"strategy", "success %", "mean rounds", "worst rounds"});
    for (auto strategy :
         {ByzantineStrategy::kSilent, ByzantineStrategy::kRandom,
          ByzantineStrategy::kEquivocate, ByzantineStrategy::kLyingKing,
          ByzantineStrategy::kAntiKing}) {
      Summary rounds;
      int clean = 0;
      for (int run = 0; run < kRuns; ++run) {
        PhaseKingConfig config;
        config.n = 13;
        config.byzantineCount = 4;
        config.strategy = strategy;
        config.placement = PhaseKingConfig::Placement::kFront;
        config.seed = 50'000 + static_cast<std::uint64_t>(run);
        const auto result = runPhaseKing(config);
        const bool ok = result.allDecided && !result.agreementViolated &&
                        !result.validityViolated && result.allAuditsOk;
        clean += ok ? 1 : 0;
        bench.require(ok, std::string("strategy ") + toString(strategy));
        rounds.add(static_cast<double>(result.maxDecisionRound));
      }
      table.addRow({toString(strategy), Table::cell(100.0 * clean / kRuns, 1),
                    Table::cell(rounds.mean()), Table::cell(rounds.max(), 0)});
    }
    bench.emit(table);
  }

  bench.banner("E5: resilience boundary (n = 10, t = 3)",
         "f <= t: 100% clean. f > t: the equivocating adversary can break "
         "runs (3t < n is tight). Safety failures beyond the bound are "
         "EXPECTED and demonstrate the boundary, not a bug.");
  {
    Table table({"attackers f", "clean %", "agreement broken %",
                 "validity broken %", "no decision %"});
    for (std::size_t f = 0; f <= 5; ++f) {
      int clean = 0, agreement = 0, validity = 0, stuck = 0;
      for (int run = 0; run < kRuns; ++run) {
        PhaseKingConfig config;
        config.n = 10;
        config.byzantineCount = f;
        config.strategy = ByzantineStrategy::kAntiKing;
        config.placement = PhaseKingConfig::Placement::kFront;
        config.seed = 60'000 + static_cast<std::uint64_t>(run);
        config.maxRounds = 60;
        const auto result = runPhaseKing(config);
        const bool ok = result.allDecided && !result.agreementViolated &&
                        !result.validityViolated;
        clean += ok ? 1 : 0;
        agreement += result.agreementViolated ? 1 : 0;
        validity += result.validityViolated ? 1 : 0;
        stuck += result.allDecided ? 0 : 1;
        if (f <= 3) bench.require(ok, "f<=t must be clean");
      }
      table.addRow({Table::cell(std::uint64_t{f}),
                    Table::cell(100.0 * clean / kRuns, 1),
                    Table::cell(100.0 * agreement / kRuns, 1),
                    Table::cell(100.0 * validity / kRuns, 1),
                    Table::cell(100.0 * stuck / kRuns, 1)});
    }
    bench.emit(table);
  }

  bench.banner("E4c: the early-decision gap (n = 13, f = t = 4, random "
         "adversary)",
         "The paper's template decides on commit (Algorithm 2). For "
         "Phase-King that rule is UNSOUND: a Byzantine king reigning in an "
         "early-commit round hands adopters a different value (conciliator "
         "validity, Lemma 3, silently assumes an honest king). The table "
         "quantifies the gap; agreement violations in the early-commit row "
         "reproduce the paper's flaw, they are not implementation bugs.");
  {
    Table table({"decision rule", "clean %", "agreement broken %",
                 "mean decision round"});
    for (const bool early : {false, true}) {
      int clean = 0, broken = 0;
      Summary rounds;
      constexpr int kGapRuns = 120;
      for (int run = 0; run < kGapRuns; ++run) {
        PhaseKingConfig config;
        config.n = 13;
        config.byzantineCount = 4;
        config.strategy = ByzantineStrategy::kRandom;
        config.placement = PhaseKingConfig::Placement::kFront;
        config.seed = 65'000 + static_cast<std::uint64_t>(run);
        config.earlyCommitDecision = early;
        const auto result = runPhaseKing(config);
        const bool ok = result.allDecided && !result.agreementViolated &&
                        !result.validityViolated;
        clean += ok ? 1 : 0;
        broken += result.agreementViolated ? 1 : 0;
        rounds.add(static_cast<double>(result.maxDecisionRound));
        if (!early) bench.require(ok, "classic rule must stay clean");
      }
      table.addRow({early ? "early commit (paper)" : "classic t+1 (sound)",
                    Table::cell(100.0 * clean / kGapRuns, 1),
                    Table::cell(100.0 * broken / kGapRuns, 1),
                    Table::cell(rounds.mean())});
    }
    bench.emit(table);
  }
  return bench.finish();
}

// E3 — Ben-Or fault tolerance across the t < n/2 boundary.
//
// Claim (paper §4.2): the algorithm tolerates any t < n/2 crash failures.
// We sweep the actual crash count f at n = 9 (t = 4): every f <= t run must
// decide and agree; at f > t the protocol may (and does) lose liveness —
// safety (agreement among deciders) must still never break.
#include "bench/bench_common.hpp"
#include "harness/scenarios.hpp"

using namespace ooc;
using namespace ooc::bench;
using harness::BenOrConfig;

int main(int argc, char** argv) {
  Bench bench(argc, argv, "benor_faults");
  bench.banner("E3: Ben-Or vs crash count (n = 9, t = 4)",
         "f <= t: always decides. f > t: liveness may fail (quorums "
         "unreachable), agreement still never violated.");
  constexpr std::size_t kN = 9;
  const int kRuns = bench.trials(80);

  Table table({"crashes f", "decided %", "mean rounds (deciders)",
               "agreement violations", "mean msgs"});
  for (std::size_t f = 0; f <= 6; ++f) {
    int decidedRuns = 0;
    int agreementViolations = 0;
    Summary rounds, messages;
    for (int run = 0; run < kRuns; ++run) {
      BenOrConfig config;
      config.n = kN;
      config.inputs.resize(kN);
      for (std::size_t i = 0; i < kN; ++i)
        config.inputs[i] = static_cast<Value>(i % 2);
      config.seed = 30'000 + static_cast<std::uint64_t>(run);
      // Beyond-t runs stall: cap the work so the sweep stays fast.
      config.maxRounds = f > 4 ? 60 : 3000;
      config.maxTicks = 400'000;
      // Stagger crashes pseudo-randomly across the first few rounds (early
      // enough that beyond-t runs actually lose their quorum before the
      // typical decision point).
      for (std::size_t k = 0; k < f; ++k) {
        config.crashes.emplace_back(
            static_cast<ProcessId>((run * 5 + k * 2) % kN),
            static_cast<Tick>(1 + (run * 13 + k * 37) % 60));
      }
      const auto result = runBenOr(config);
      if (result.agreementViolated) ++agreementViolations;
      if (result.allDecided) {
        ++decidedRuns;
        rounds.add(result.meanDecisionRound);
      }
      messages.add(static_cast<double>(result.messagesByCorrect));
      if (f <= 4) {
        bench.require(result.allDecided,
                        "liveness at f=" + std::to_string(f));
        bench.require(result.allAuditsOk, "object contracts");
      }
      bench.require(!result.agreementViolated, "agreement (safety)");
      bench.require(!result.validityViolated, "validity");
    }
    table.addRow(
        {Table::cell(std::uint64_t{f}),
         Table::cell(100.0 * decidedRuns / kRuns, 1),
         rounds.empty() ? "-" : Table::cell(rounds.mean()),
         Table::cell(agreementViolations), Table::cell(messages.mean(), 0)});
  }
  bench.emit(table);
  return bench.finish();
}

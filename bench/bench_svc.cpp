// E21: the multi-decree replicated-log service under client traffic.
//
// Claim: a registry-admissible composed engine (benor-vac x lottery) can
// power a pipelined, batching replicated log end to end, and the harness
// can put a NUMBER on what that costs relative to per-decree Paxos and
// native multi-decree Raft — same deterministic zipfian closed-loop
// workload, same cluster, same safety audits (prefix agreement,
// exactly-once commit) on every run.
//
// Two passes per engine:
//
//  * throughput pass (fault-free): committed commands per kilotick, p50/p99
//    decide latency, mean batch size, messages per committed command, and
//    the no-op overhead ratio;
//  * blackout pass: crash-restart the coordinator mid-run (the first
//    elected leader for Raft — found from the throughput pass's election
//    record — node 0 otherwise) and report the largest commit gap at a
//    never-faulted node: the service-level failover blackout.
//
// Unlike the single-shot benches this one writes its own JSON schema
// ("ooc.svc.v1", documented in EXPERIMENTS.md): the unit of result is an
// engine's service profile, not a consensus cell.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_id.hpp"
#include "svc/run.hpp"
#include "sweep/scheduler.hpp"
#include "util/stats.hpp"

namespace {

using ooc::Table;
using ooc::Tick;

struct EngineSpec {
  std::string label;     // row / JSON / metric label
  std::string engine;    // SvcConfig::engine
  std::string detector;  // compose only
  std::string driver;    // compose only
};

/// One engine's aggregated service profile across the trial seeds.
struct EngineProfile {
  int trials = 0;
  std::uint64_t committedCmds = 0;
  std::uint64_t emittedCmds = 0;
  std::uint64_t noopDecrees = 0;
  std::uint64_t decrees = 0;
  std::uint64_t messages = 0;
  ooc::Summary cmdsPerKtick;
  std::vector<Tick> latencies;  // pooled across trials and nodes
  ooc::Summary batchSize;
  ooc::Summary blackout;  // faulted pass: max commit gap (ticks)
};

ooc::svc::SvcConfig baseConfig(const EngineSpec& spec, bool quick) {
  ooc::svc::SvcConfig config;
  config.engine = spec.engine;
  config.detector = spec.detector;
  config.driver = spec.driver;
  config.n = 5;
  config.minDelay = 1;
  config.maxDelay = 6;
  config.service.window = 4;
  config.service.batchMax = 4;
  config.service.durable = true;
  config.workload.clients = 100000;
  config.workload.commandsPerNode = quick ? 16 : 48;
  config.workload.closedLoop = true;
  config.workload.thinkMin = 5;
  config.workload.thinkMax = 40;
  config.workload.startSpread = 32;
  config.workload.zipfTheta = 0.99;
  return config;
}

double percentileTicks(std::vector<Tick>& pooled, double q) {
  if (pooled.empty()) return 0.0;
  std::sort(pooled.begin(), pooled.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(pooled.size() - 1) + 0.5);
  return static_cast<double>(pooled[std::min(rank, pooled.size() - 1)]);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string jsonPath;
  std::size_t threads = 0;  // sweep workers for the trial fan-out; 0 = hw
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: bench_svc [--quick] [--threads N] [--json PATH]\n"
                  "  --quick      reduced trial counts (CI smoke mode)\n"
                  "  --threads N  worker threads for the trial sweep "
                  "(0 = hardware);\n"
                  "               results are byte-identical at any value\n"
                  "  --json PATH  write machine-readable results "
                  "(schema ooc.svc.v1)\n");
      return 0;
    } else {
      std::fprintf(stderr, "bench_svc: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  ooc::obs::metrics().reset();
  ooc::obs::metrics().enable(true);

  // Trial fan-out: each pass builds its configs up front, runs them through
  // the experiment scheduler into a trial-indexed vector, and folds the
  // results sequentially in trial order — so every number below (and the
  // ooc.svc.v1 JSON, quarantined `sweep` block aside) is byte-identical at
  // any --threads value.
  ooc::sweep::SweepAccumulator sweepTelemetry;
  const auto runTrials = [&](int trials, const auto& makeConfig) {
    std::vector<ooc::svc::SvcResult> results(
        static_cast<std::size_t>(trials));
    ooc::sweep::Options pool;
    pool.threads = threads;
    sweepTelemetry.add(ooc::sweep::parallelFor(
        results.size(),
        [&](std::size_t index, ooc::sweep::Control&) {
          results[index] =
              ooc::svc::runSvc(makeConfig(static_cast<int>(index)));
        },
        pool));
    return results;
  };

  int failures = 0;
  std::map<std::string, int> violations;
  const auto require = [&](bool ok, const std::string& what) {
    if (ok) return;
    ++failures;
    ++violations[what];
    std::printf("!! property violation: %s\n", what.c_str());
  };

  const std::vector<EngineSpec> specs = {
      {"raft", "raft", "", ""},
      {"paxos", "paxos", "", ""},
      {"benor-vac+lottery", "compose", "benor-vac", "lottery"},
  };
  const int throughputTrials = quick ? 3 : 10;
  const int blackoutTrials = quick ? 2 : 5;

  std::printf(
      "=== E21: replicated-log service — composed engine vs Paxos vs Raft "
      "===\n"
      "Same zipfian closed-loop workload (theta=0.99, %d clients), same\n"
      "n=5 cluster, window=4, batch<=4, durable journals. Every run is\n"
      "audited for prefix agreement and exactly-once commit.\n\n",
      100000);

  std::vector<EngineProfile> profiles(specs.size());
  for (std::size_t e = 0; e < specs.size(); ++e) {
    const EngineSpec& spec = specs[e];
    EngineProfile& profile = profiles[e];
    profile.trials = throughputTrials;

    // --- throughput pass (fault-free) ---
    // The first trial's election record seeds the blackout pass victim.
    ooc::ProcessId raftLeader = 0;
    Tick leaderAt = 0;
    const std::vector<ooc::svc::SvcResult> throughputResults =
        runTrials(throughputTrials, [&](int trial) {
          ooc::svc::SvcConfig config = baseConfig(spec, quick);
          config.seed = 350000 + static_cast<std::uint64_t>(trial);
          return config;
        });
    for (int trial = 0; trial < throughputTrials; ++trial) {
      const ooc::svc::SvcResult& result =
          throughputResults[static_cast<std::size_t>(trial)];
      require(result.prefixOk, spec.label + ": prefix agreement");
      require(result.exactlyOnce, spec.label + ": exactly-once commit");
      require(result.allApplied, spec.label + ": full delivery (no faults)");
      require(!result.hitCap, spec.label + ": run terminated");
      profile.committedCmds += result.commandsCommitted;
      profile.emittedCmds += result.commandsEmitted;
      profile.noopDecrees += result.noopDecrees;
      profile.decrees += result.decreesCommitted;
      profile.messages += result.messagesByCorrect;
      profile.cmdsPerKtick.add(result.commandsPerKtick);
      profile.latencies.insert(profile.latencies.end(),
                               result.latencies.begin(),
                               result.latencies.end());
      for (std::uint32_t b : result.batchSizes)
        profile.batchSize.add(static_cast<double>(b));
      if (trial == 0 && !result.leaderEvents.empty()) {
        leaderAt = result.leaderEvents.front().first;
        raftLeader = result.leaderEvents.front().second;
      }
    }

    // --- blackout pass (coordinator crash-restart mid-run) ---
    // Raft loses its elected leader; the leaderless engines lose node 0
    // (every node coordinates its own batches, so any victim works).
    const std::vector<ooc::svc::SvcResult> blackoutResults =
        runTrials(blackoutTrials, [&](int trial) {
          ooc::svc::SvcConfig config = baseConfig(spec, quick);
          config.seed = 360000 + static_cast<std::uint64_t>(trial);
          ooc::svc::RestartEvent restart;
          restart.id = spec.engine == "raft" ? raftLeader : 0;
          restart.at = spec.engine == "raft" ? leaderAt + 120 : 120;
          restart.downtime = 150;
          config.restarts.push_back(restart);
          return config;
        });
    for (int trial = 0; trial < blackoutTrials; ++trial) {
      const ooc::svc::SvcResult& result =
          blackoutResults[static_cast<std::size_t>(trial)];
      require(result.prefixOk, spec.label + ": prefix agreement (blackout)");
      require(result.exactlyOnce,
              spec.label + ": exactly-once commit (blackout)");
      require(!result.hitCap, spec.label + ": run terminated (blackout)");
      profile.blackout.add(static_cast<double>(result.maxCommitGap));
    }

    ooc::obs::metrics().setGauge("svc_mean_commands_per_ktick",
                                 profile.cmdsPerKtick.mean(),
                                 {{"engine", spec.label}});
    ooc::obs::metrics().setGauge("svc_blackout_ticks",
                                 profile.blackout.mean(),
                                 {{"engine", spec.label}});
  }

  Table table({"engine", "cmds", "cmds/ktick", "p50(ticks)", "p99(ticks)",
               "batch", "msgs/cmd", "noop%", "blackout(ticks)"});
  for (std::size_t e = 0; e < specs.size(); ++e) {
    EngineProfile& p = profiles[e];
    const double msgsPerCmd =
        p.committedCmds == 0
            ? 0.0
            : static_cast<double>(p.messages) /
                  static_cast<double>(p.committedCmds);
    const double noopPct =
        p.decrees + p.noopDecrees == 0
            ? 0.0
            : 100.0 * static_cast<double>(p.noopDecrees) /
                  static_cast<double>(p.decrees + p.noopDecrees);
    table.addRow({specs[e].label, Table::cell(p.committedCmds),
                  Table::cell(p.cmdsPerKtick.mean()),
                  Table::cell(percentileTicks(p.latencies, 0.50)),
                  Table::cell(percentileTicks(p.latencies, 0.99)),
                  Table::cell(p.batchSize.mean()), Table::cell(msgsPerCmd),
                  Table::cell(noopPct, 1), Table::cell(p.blackout.mean())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "blackout = largest commit gap at a never-faulted node while the\n"
      "coordinator is down; the closed loop stalls with it, so it bounds\n"
      "client-visible unavailability.\n\n");

  if (failures > 0)
    std::printf("\n%d correctness violations — INVESTIGATE\n", failures);

  if (!jsonPath.empty()) {
    ooc::obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value("ooc.svc.v1");
    w.key("bench").value("svc");
    w.key("run_id").value(
        ooc::obs::runId(std::string("svc") + (quick ? "\x1f/quick"
                                                    : "\x1f/full")));
    w.key("quick").value(quick);

    w.key("verdict").beginObject();
    w.key("failures").value(failures);
    w.key("violations").beginArray();
    for (const auto& [what, count] : violations) {
      w.beginObject();
      w.key("what").value(what);
      w.key("count").value(static_cast<std::uint64_t>(count));
      w.endObject();
    }
    w.endArray();
    w.endObject();

    const ooc::svc::SvcConfig shape = baseConfig(specs.front(), quick);
    w.key("workload").beginObject();
    w.key("clients").value(shape.workload.clients);
    w.key("commands_per_node").value(shape.workload.commandsPerNode);
    w.key("zipf_theta").value(shape.workload.zipfTheta);
    w.key("closed_loop").value(shape.workload.closedLoop);
    w.key("think_min").value(static_cast<std::uint64_t>(
        shape.workload.thinkMin));
    w.key("think_max").value(static_cast<std::uint64_t>(
        shape.workload.thinkMax));
    w.key("n").value(static_cast<std::uint64_t>(shape.n));
    w.key("window").value(shape.service.window);
    w.key("batch_max").value(static_cast<std::uint64_t>(
        shape.service.batchMax));
    w.endObject();

    w.key("engines").beginArray();
    for (std::size_t e = 0; e < specs.size(); ++e) {
      EngineProfile& p = profiles[e];
      w.beginObject();
      w.key("engine").value(specs[e].label);
      w.key("detector").value(specs[e].detector);
      w.key("driver").value(specs[e].driver);
      w.key("trials").value(static_cast<std::uint64_t>(p.trials));
      w.key("committed_cmds").value(p.committedCmds);
      w.key("committed_cmds_per_ktick").value(p.cmdsPerKtick.mean());
      w.key("noop_ratio").value(
          p.decrees + p.noopDecrees == 0
              ? 0.0
              : static_cast<double>(p.noopDecrees) /
                    static_cast<double>(p.decrees + p.noopDecrees));
      w.key("p50_decide_ticks").value(percentileTicks(p.latencies, 0.50));
      w.key("p99_decide_ticks").value(percentileTicks(p.latencies, 0.99));
      w.key("mean_batch_size").value(p.batchSize.mean());
      w.key("msgs_per_cmd").value(
          p.committedCmds == 0
              ? 0.0
              : static_cast<double>(p.messages) /
                    static_cast<double>(p.committedCmds));
      w.key("blackout_ticks").value(p.blackout.mean());
      w.endObject();
    }
    w.endArray();

    w.key("metrics").raw(ooc::obs::metrics().toJson());
    // Scheduler telemetry (wall-clock + thread-dependent shape): the one
    // non-reproducible block of ooc.svc.v1 — byte-diff consumers strip
    // `sweep` first.
    if (!sweepTelemetry.empty())
      w.key("sweep").raw(ooc::sweep::toJson(sweepTelemetry));
    w.endObject();

    std::ofstream out(jsonPath, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench_svc: cannot write '%s'\n",
                   jsonPath.c_str());
      return 2;
    }
    out << w.str() << '\n';
  }

  return failures > 0 ? 1 : 0;
}

// E6 — Raft consensus: election dynamics and the timing property.
//
// Claims (paper §4.3): Raft achieves consensus via the two-step
// leader-then-replicate mechanism; termination rests on the timing property
// (broadcast time << election timeout). We sweep (a) the election-timeout
// spread against the fixed broadcast time and (b) message loss, reporting
// time-to-decision and election churn. Expected shape: tight timeouts cause
// split votes (more elections, slower decisions); loss slows everything;
// safety never breaks.
#include "bench/bench_common.hpp"
#include "harness/scenarios.hpp"

using namespace ooc;
using namespace ooc::bench;
using harness::RaftScenarioConfig;

int main(int argc, char** argv) {
  Bench bench(argc, argv, "raft");
  const int kRuns = bench.trials(30);

  bench.banner("E6a: election timeout vs broadcast time (n = 5, delay 1-5 ticks)",
         "Timing property ablation: the timeout/broadcast ratio drives "
         "election churn and decision latency. Safety holds throughout.");
  {
    Table table({"timeout range", "ratio vs bcast", "decided %",
                 "mean ticks to decide", "p95 ticks", "mean elections",
                 "mean msgs"});
    struct Case {
      Tick lo, hi;
      // Below roughly 2x the round-trip time, elections fire before votes
      // return: the timing property FAILS and liveness is expected to fail
      // with it — that is the ablation's point, not a bug.
      bool timingPropertyHolds;
    };
    for (const Case c :
         {Case{8, 12, false}, Case{15, 25, false}, Case{30, 60, true},
          Case{75, 150, true}, Case{150, 300, true}, Case{400, 800, true}}) {
      Summary ticks, elections, messages;
      int decided = 0;
      for (int run = 0; run < kRuns; ++run) {
        RaftScenarioConfig config;
        config.n = 5;
        config.seed = 70'000 + static_cast<std::uint64_t>(run);
        config.raft.electionTimeoutMin = c.lo;
        config.raft.electionTimeoutMax = c.hi;
        config.raft.heartbeatInterval = std::max<Tick>(2, c.lo / 3);
        config.maxTicks = 400'000;
        const auto result = runRaft(config);
        if (c.timingPropertyHolds) {
          bench.require(result.allDecided,
                          "raft liveness (timing property holds)");
        }
        bench.require(!result.agreementViolated && !result.validityViolated,
                        "raft safety");
        bench.require(result.commitValuesAgree, "commit values agree");
        if (result.allDecided) {
          ++decided;
          ticks.add(static_cast<double>(result.lastDecisionTick));
        }
        elections.add(static_cast<double>(result.electionsStarted));
        messages.add(static_cast<double>(result.messages));
      }
      const double mid = (static_cast<double>(c.lo) + c.hi) / 2.0;
      table.addRow({Table::cell(std::uint64_t{c.lo}) + "-" +
                        Table::cell(std::uint64_t{c.hi}),
                    Table::cell(mid / 3.0, 1),
                    Table::cell(100.0 * decided / kRuns, 1),
                    ticks.empty() ? "-" : Table::cell(ticks.mean(), 0),
                    ticks.empty() ? "-" : Table::cell(ticks.p95(), 0),
                    Table::cell(elections.mean(), 1),
                    Table::cell(messages.mean(), 0)});
    }
    bench.emit(table);
  }

  bench.banner("E6b: message loss sweep (n = 5, timeouts 150-300)",
         "Loss delays elections and commits but never violates agreement.");
  {
    Table table({"drop prob", "decided %", "mean ticks to decide",
                 "mean elections", "mean msgs"});
    for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4}) {
      Summary ticks, elections, messages;
      int decided = 0;
      for (int run = 0; run < kRuns; ++run) {
        RaftScenarioConfig config;
        config.n = 5;
        config.seed = 80'000 + static_cast<std::uint64_t>(run);
        config.dropProbability = drop;
        config.maxTicks = 2'000'000;
        const auto result = runRaft(config);
        bench.require(!result.agreementViolated, "raft safety under loss");
        if (result.allDecided) {
          ++decided;
          ticks.add(static_cast<double>(result.lastDecisionTick));
        }
        elections.add(static_cast<double>(result.electionsStarted));
        messages.add(static_cast<double>(result.messages));
      }
      table.addRow({Table::cell(drop, 2),
                    Table::cell(100.0 * decided / kRuns, 1),
                    ticks.empty() ? "-" : Table::cell(ticks.mean(), 0),
                    Table::cell(elections.mean(), 1),
                    Table::cell(messages.mean(), 0)});
    }
    bench.emit(table);
  }

  bench.banner("E6c: cluster size sweep (quiet network)",
         "Message cost grows ~n per appended entry + n^2 in vote traffic; "
         "decision latency stays near one election + one replication round "
         "trip.");
  {
    Table table({"n", "mean ticks to decide", "mean elections", "mean msgs"});
    for (std::size_t n : {3, 5, 7, 9, 13}) {
      Summary ticks, elections, messages;
      for (int run = 0; run < kRuns; ++run) {
        RaftScenarioConfig config;
        config.n = n;
        config.seed = 90'000 + static_cast<std::uint64_t>(run);
        const auto result = runRaft(config);
        bench.require(result.allDecided && !result.agreementViolated,
                        "raft size sweep");
        ticks.add(static_cast<double>(result.lastDecisionTick));
        elections.add(static_cast<double>(result.electionsStarted));
        messages.add(static_cast<double>(result.messages));
      }
      table.addRow({Table::cell(std::uint64_t{n}),
                    Table::cell(ticks.mean(), 0),
                    Table::cell(elections.mean(), 1),
                    Table::cell(messages.mean(), 0)});
    }
    bench.emit(table);
  }
  return bench.finish();
}

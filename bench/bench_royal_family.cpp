// E15 — Phase-Queen vs Phase-King (extension): two synchronous Byzantine
// algorithms, one template. The queen trades resilience (4t < n vs 3t < n)
// for round length (2 ticks vs 3) and per-round traffic (n^2 + n vs
// 2n^2 + n messages).
#include "bench/bench_common.hpp"
#include "harness/scenarios.hpp"

using namespace ooc;
using namespace ooc::bench;
using harness::PhaseKingConfig;
using phaseking::ByzantineStrategy;

int main(int argc, char** argv) {
  Bench bench(argc, argv, "royal_family");
  const int kRuns = bench.trials(40);

  bench.banner("E15a: queen vs king at the same (n, f) within both bounds",
         "Classic t+1-round rule for both. The queen finishes in fewer "
         "ticks and messages; both stay clean.");
  {
    Table table({"n", "f=t", "royal", "success %", "ticks to decide",
                 "mean msgs/correct"});
    struct Case {
      std::size_t n, t;
    };
    for (const Case c : {Case{9, 2}, Case{13, 3}, Case{21, 5}, Case{29, 7}}) {
      for (const bool queenRun : {false, true}) {
        Summary ticks, messages;
        int clean = 0;
        for (int run = 0; run < kRuns; ++run) {
          PhaseKingConfig config;
          config.algorithm = queenRun ? PhaseKingConfig::Algorithm::kQueen
                                      : PhaseKingConfig::Algorithm::kKing;
          config.n = c.n;
          config.t = c.t;
          config.byzantineCount = c.t;
          config.strategy = ByzantineStrategy::kEquivocate;
          config.placement = PhaseKingConfig::Placement::kFront;
          config.seed = 230'000 + static_cast<std::uint64_t>(run);
          const auto result = runPhaseKing(config);
          const bool ok = result.allDecided && !result.agreementViolated &&
                          !result.validityViolated && result.allAuditsOk;
          clean += ok ? 1 : 0;
          bench.require(ok, queenRun ? "queen run" : "king run");
          ticks.add(static_cast<double>(result.lastDecisionTick));
          messages.add(static_cast<double>(result.messagesByCorrect) /
                       static_cast<double>(c.n - c.t));
        }
        table.addRow({Table::cell(std::uint64_t{c.n}),
                      Table::cell(std::uint64_t{c.t}),
                      queenRun ? "queen" : "king",
                      Table::cell(100.0 * clean / kRuns, 1),
                      Table::cell(ticks.mean(), 1),
                      Table::cell(messages.mean(), 0)});
      }
    }
    bench.emit(table);
  }

  bench.banner("E15b: the resilience price (n = 13)",
         "The king survives f = 4 (3t < n allows t = 4); the queen's bound "
         "is t = 3 — at f = 4 her guarantees are void and the equivocating "
         "adversary can break her runs.");
  {
    Table table({"f", "king clean %", "queen clean %"});
    for (std::size_t f = 2; f <= 4; ++f) {
      int kingClean = 0, queenClean = 0;
      for (int run = 0; run < kRuns; ++run) {
        PhaseKingConfig config;
        config.n = 13;
        config.byzantineCount = f;
        config.strategy = ByzantineStrategy::kAntiKing;
        config.placement = PhaseKingConfig::Placement::kFront;
        config.seed = 240'000 + static_cast<std::uint64_t>(run);
        config.maxRounds = 40;

        config.algorithm = PhaseKingConfig::Algorithm::kKing;
        const auto king = runPhaseKing(config);
        kingClean += king.allDecided && !king.agreementViolated &&
                             !king.validityViolated
                         ? 1
                         : 0;
        bench.require(!king.agreementViolated || f > 4,
                        "king agreement inside bound");

        config.algorithm = PhaseKingConfig::Algorithm::kQueen;
        const auto queen = runPhaseKing(config);
        queenClean += queen.allDecided && !queen.agreementViolated &&
                              !queen.validityViolated
                          ? 1
                          : 0;
        if (f <= 3) {
          bench.require(!queen.agreementViolated,
                          "queen agreement inside bound");
        }
      }
      table.addRow({Table::cell(std::uint64_t{f}),
                    Table::cell(100.0 * kingClean / kRuns, 1),
                    Table::cell(100.0 * queenClean / kRuns, 1)});
    }
    bench.emit(table);
  }
  return bench.finish();
}

// E22 — oracle quality vs. rounds-to-decide (failure-detector family).
//
// The Chandra–Toueg rotating coordinator decides through whatever Ω the
// registry hands it; this experiment measures how the oracle's distance
// from the ideal — accuracy stabilization time, false-suspicion noise,
// completeness lag — shows up in the driver's decision round. The claim
// under test: quality degrades liveness (later decisions, more rotation),
// never safety. Agreement, validity, the object audits, and the three FD
// axioms hold in every cell; only the round count moves.
//
// The cross-product over the full oracle × driver registry (including the
// rejected incoherent cells) is the separate `compose --fd-matrix` report
// (schema ooc.fd-matrix.v1); this bench is the depth pass over the knobs.
#include "bench/bench_common.hpp"
#include "compose/composition.hpp"

using namespace ooc;
using namespace ooc::bench;

namespace {

/// CellStats plus the FD-axiom verdict, which the generic trial loop does
/// not track (the oracle audit is an optional attachment on the result).
struct FdCellStats {
  CellStats base;
  bool fdAxiomsOk = true;
};

// Trials fan across the experiment scheduler; the fold runs sequentially
// in seed order, so the stats (and the JSON) are byte-identical at any
// --threads value.
FdCellStats runOracleTrials(const compose::Composition& composition, int runs,
                            std::uint64_t seedBase) {
  const auto results =
      runTrialsParallel(runs, [&composition, seedBase](int run) {
        compose::Composition trial = composition;
        trial.seed = seedBase + static_cast<std::uint64_t>(run);
        return compose::runComposition(trial);
      });
  FdCellStats stats;
  stats.base.runs = runs;
  for (const compose::CompositionResult& result : results) {
    stats.base.agreementOk &= !result.agreementViolated;
    stats.base.validityOk &= !result.validityViolated;
    stats.base.auditsOk &= result.allAuditsOk;
    stats.fdAxiomsOk &= result.oracleAudit && result.oracleAudit->ok();
    if (result.allDecided) {
      ++stats.base.decided;
      stats.base.rounds.add(result.meanDecisionRound);
    }
  }
  return stats;
}

compose::Composition baseComposition(const std::string& driver,
                                     const std::string& oracle) {
  compose::Composition composition;
  composition.detector = "benor-vac";
  composition.driver = driver;
  composition.oracle = oracle;
  composition.n = 5;
  composition.inputs = alternatingInputs(5);
  composition.crashes = {{4, 40}};
  return composition;
}

}  // namespace

int main(int argc, char** argv) {
  Bench bench(argc, argv, "fd");
  const int kRuns = bench.trials(200);

  bench.banner(
      "E22: oracle quality vs rounds-to-decide (ct-coordinator + Ω)",
      "Sweep the Ω quality knobs — accuracy stabilization tick and "
      "false-suspicion noise — under a crash at tick 40 (n=5). Worse "
      "oracles rotate longer before settling on a coordinator; safety and "
      "the FD axioms must hold in every cell regardless.");
  Table sweep({"stabilize", "noise", "decided %", "mean round", "max round"});
  for (const Tick stabilizeAt : {Tick{0}, Tick{50}, Tick{200}, Tick{800}}) {
    for (const double noise : {0.0, 0.2, 0.5}) {
      auto composition = baseComposition("ct-coordinator", "omega");
      composition.oracleKnobs.stabilizeAt = stabilizeAt;
      composition.oracleKnobs.noise = noise;
      const auto stats =
          runOracleTrials(composition, kRuns, 220'000 + stabilizeAt);
      bench.require(stats.base.decided == stats.base.runs,
                    "every correct process decides");
      bench.require(stats.base.agreementOk && stats.base.validityOk,
                    "agreement + validity under oracle degradation");
      bench.require(stats.base.auditsOk, "object contracts");
      bench.require(stats.fdAxiomsOk, "FD axioms (completeness, accuracy, "
                                      "convergence)");
      sweep.addRow({Table::cell(std::uint64_t{stabilizeAt}),
                    Table::cell(noise, 1),
                    Table::cell(100.0 * stats.base.decided / stats.base.runs, 1),
                    Table::cell(stats.base.rounds.mean(), 2),
                    Table::cell(stats.base.rounds.max(), 2)});
    }
  }
  bench.emit(sweep);

  bench.banner(
      "E22b: oracle class comparison at matched knobs",
      "The hierarchy P > ◇S > Ω read off the driver: the perfect "
      "oracle's coordinator (p-coordinator) never probes a live "
      "coordinator in vain, the eventual oracles pay for their pre-"
      "stabilization noise in extra rounds.");
  struct ClassCase {
    const char* driver;
    const char* oracle;
    Tick stabilizeAt;
    double noise;
  };
  Table classes({"driver", "oracle", "decided %", "mean round", "max round"});
  for (const ClassCase c :
       {ClassCase{"p-coordinator", "perfect-p", 0, 0.0},
        ClassCase{"ct-coordinator", "diamond-s", 120, 0.3},
        ClassCase{"ct-coordinator", "omega", 120, 0.3}}) {
    auto composition = baseComposition(c.driver, c.oracle);
    composition.oracleKnobs.stabilizeAt = c.stabilizeAt;
    composition.oracleKnobs.noise = c.noise;
    const auto stats = runOracleTrials(composition, kRuns, 221'000);
    bench.require(stats.base.decided == stats.base.runs,
                  "every correct process decides");
    bench.require(stats.base.agreementOk && stats.base.validityOk,
                  "agreement + validity across oracle classes");
    bench.require(stats.fdAxiomsOk, "FD axioms across oracle classes");
    classes.addRow({c.driver, c.oracle,
                    Table::cell(100.0 * stats.base.decided / stats.base.runs, 1),
                    Table::cell(stats.base.rounds.mean(), 2),
                    Table::cell(stats.base.rounds.max(), 2)});
  }
  bench.emit(classes);
  std::printf(
      "reading: every cell above is safe — oracle quality buys liveness "
      "(decision round), never correctness; the incoherent pairings the "
      "registry refuses to run are in the fd-matrix report's rejected "
      "cells.\n");
  return bench.finish();
}

// E11 — the source framework (Aspnes [2]) in its native shared-memory
// model: register-based adopt-commit + probabilistic-write conciliator.
//
// Reported: total steps and rounds to consensus vs n under three
// interleaving policies, and a sweep of the conciliator's write
// probability (Aspnes suggests Theta(1/n); too eager means racing writers,
// too shy means idle spinning — a U-shaped cost curve).
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "shmem/consensus.hpp"
#include "shmem/executor.hpp"
#include "shmem/vac_consensus.hpp"

using namespace ooc;
using namespace ooc::bench;
using shmem::SchedulePolicy;

namespace {

struct ShmemOutcome {
  bool allDecided = true;
  bool agreed = true;
  double steps = 0;
  double maxRound = 0;
};

ShmemOutcome runOnce(std::size_t n, SchedulePolicy policy,
                     std::uint64_t seed, double writeProb) {
  shmem::SharedArena arena;
  std::vector<std::unique_ptr<shmem::ShmemConsensus>> processes;
  shmem::StepScheduler scheduler(policy, seed);
  for (std::size_t i = 0; i < n; ++i) {
    processes.push_back(std::make_unique<shmem::ShmemConsensus>(
        arena, static_cast<Value>(i % 2), writeProb, seed * 977 + i));
    scheduler.add(*processes.back());
  }
  ShmemOutcome outcome;
  outcome.steps = static_cast<double>(scheduler.run(20'000'000));
  Value decision = kNoValue;
  for (const auto& p : processes) {
    if (!p->decided()) {
      outcome.allDecided = false;
      continue;
    }
    if (decision == kNoValue) decision = p->decisionValue();
    if (p->decisionValue() != decision) outcome.agreed = false;
    outcome.maxRound =
        std::max(outcome.maxRound, static_cast<double>(p->currentRound()));
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Bench bench(argc, argv, "shmem");
  const int kRuns = bench.trials(60);

  bench.banner("E11a: shared-memory AC + conciliator consensus vs n",
         "Aspnes' framework in its own model: steps per process stay "
         "modest and grow mildly with n; the skewed (semi-adversarial) "
         "schedule is the costliest.");
  {
    Table table({"n", "schedule", "mean steps/proc", "p95 steps/proc",
                 "mean rounds", "decided %"});
    for (std::size_t n : {2, 4, 8, 16, 32}) {
      for (const SchedulePolicy policy :
           {SchedulePolicy::kRoundRobin, SchedulePolicy::kRandom,
            SchedulePolicy::kSkewed}) {
        Summary steps, rounds;
        int decided = 0;
        for (int run = 0; run < kRuns; ++run) {
          const auto outcome =
              runOnce(n, policy, 150'000 + static_cast<std::uint64_t>(run),
                      1.0 / static_cast<double>(n));
          bench.require(outcome.agreed, "shmem agreement");
          if (outcome.allDecided) ++decided;
          steps.add(outcome.steps / static_cast<double>(n));
          rounds.add(outcome.maxRound);
        }
        bench.require(decided == kRuns, "shmem termination");
        table.addRow({Table::cell(std::uint64_t{n}), toString(policy),
                      Table::cell(steps.mean(), 1),
                      Table::cell(steps.p95(), 1),
                      Table::cell(rounds.mean(), 2),
                      Table::cell(100.0 * decided / kRuns, 1)});
      }
    }
    bench.emit(table);
  }

  bench.banner("E11b: conciliator write-probability sweep (n = 16, random "
         "schedule)",
         "Theta(1/n) is the sweet spot: eager writers race (more rounds), "
         "shy writers spin (more steps).");
  {
    Table table({"write prob", "mean steps/proc", "mean rounds"});
    for (const double p : {0.9, 0.5, 0.25, 0.0625, 0.015625, 0.004}) {
      Summary steps, rounds;
      for (int run = 0; run < kRuns; ++run) {
        const auto outcome = runOnce(
            16, SchedulePolicy::kRandom,
            160'000 + static_cast<std::uint64_t>(run), p);
        bench.require(outcome.agreed && outcome.allDecided,
                        "shmem write-prob sweep");
        steps.add(outcome.steps / 16.0);
        rounds.add(outcome.maxRound);
      }
      table.addRow({Table::cell(p, 4), Table::cell(steps.mean(), 1),
                    Table::cell(rounds.mean(), 2)});
    }
    bench.emit(table);
  }

  bench.banner("E11c: AC+conciliator loop (Algorithm 2) vs VAC+reconciliator "
         "loop (Algorithm 1, two-AC construction) — both in shared memory",
         "The shared-memory price of the paper's richer object: the VAC "
         "round costs two AC executions, so ~2x the register operations "
         "for the same round counts.");
  {
    Table table({"n", "loop", "mean steps/proc", "mean rounds"});
    for (std::size_t n : {4, 8, 16}) {
      for (const bool vac : {false, true}) {
        Summary steps, rounds;
        for (int run = 0; run < kRuns; ++run) {
          const std::uint64_t seed =
              170'500 + static_cast<std::uint64_t>(run);
          shmem::SharedArena arena;
          shmem::StepScheduler scheduler(SchedulePolicy::kRandom, seed);
          std::vector<std::unique_ptr<shmem::ShmemConsensus>> acs;
          std::vector<std::unique_ptr<shmem::ShmemVacConsensus>> vacs;
          for (std::size_t i = 0; i < n; ++i) {
            if (vac) {
              vacs.push_back(std::make_unique<shmem::ShmemVacConsensus>(
                  arena, static_cast<Value>(i % 2),
                  1.0 / static_cast<double>(n), seed * 31 + i));
              scheduler.add(*vacs.back());
            } else {
              acs.push_back(std::make_unique<shmem::ShmemConsensus>(
                  arena, static_cast<Value>(i % 2),
                  1.0 / static_cast<double>(n), seed * 31 + i));
              scheduler.add(*acs.back());
            }
          }
          const auto total = scheduler.run(20'000'000);
          bench.require(scheduler.allDone(), "E11c termination");
          Value decision = kNoValue;
          Round highest = 0;
          for (std::size_t i = 0; i < n; ++i) {
            const Value v = vac ? vacs[i]->decisionValue()
                                : acs[i]->decisionValue();
            if (decision == kNoValue) decision = v;
            bench.require(v == decision, "E11c agreement");
            highest = std::max(highest, vac ? vacs[i]->currentRound()
                                            : acs[i]->currentRound());
          }
          steps.add(static_cast<double>(total) / static_cast<double>(n));
          rounds.add(static_cast<double>(highest));
        }
        table.addRow({Table::cell(std::uint64_t{n}),
                      vac ? "VAC+reconciliator" : "AC+conciliator",
                      Table::cell(steps.mean(), 1),
                      Table::cell(rounds.mean(), 2)});
      }
    }
    bench.emit(table);
  }
  return bench.finish();
}

// Surgical unit tests of the Raft message handlers: a ManualContext drives
// one RaftProcess directly (no simulator), asserting on exactly which
// replies and state transitions each RPC produces.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "raft/kv_store.hpp"
#include "raft/messages.hpp"
#include "raft/raft_process.hpp"
#include "sim/process.hpp"

namespace ooc {
namespace {

class ManualContext final : public Context {
 public:
  explicit ManualContext(std::size_t n, ProcessId self = 0)
      : n_(n), self_(self) {}

  ProcessId self() const noexcept override { return self_; }
  std::size_t processCount() const noexcept override { return n_; }
  Tick now() const noexcept override { return now_; }
  Rng& rng() noexcept override { return rng_; }

  void send(ProcessId to, std::unique_ptr<Message> msg) override {
    sent.emplace_back(to, std::move(msg));
  }
  void broadcast(const Message& msg) override {
    for (ProcessId to = 0; to < n_; ++to) sent.emplace_back(to, msg.clone());
  }
  TimerId setTimer(Tick delay) override {
    lastTimerDelay = delay;
    return ++timerCounter;
  }
  void cancelTimer(TimerId id) noexcept override { cancelled.push_back(id); }
  void decide(Value v) override {
    decided = true;
    decision = v;
  }

  /// Last message of type T sent to `to`, or nullptr.
  template <typename T>
  const T* lastTo(ProcessId to) const {
    for (auto it = sent.rbegin(); it != sent.rend(); ++it) {
      if (it->first != to) continue;
      if (const T* typed = it->second->template as<T>()) return typed;
    }
    return nullptr;
  }
  template <typename T>
  std::size_t countOf() const {
    std::size_t count = 0;
    for (const auto& [to, msg] : sent)
      count += msg->template as<T>() != nullptr ? 1 : 0;
    return count;
  }
  void clear() { sent.clear(); }

  std::vector<std::pair<ProcessId, std::unique_ptr<Message>>> sent;
  std::vector<TimerId> cancelled;
  TimerId timerCounter = 0;
  Tick lastTimerDelay = 0;
  Tick now_ = 0;
  bool decided = false;
  Value decision = kNoValue;

 private:
  std::size_t n_;
  ProcessId self_;
  Rng rng_{7};
};

/// A 5-node view of one node under test (id 0 unless stated otherwise).
struct Bench {
  explicit Bench(std::size_t n = 5) : ctx(n), node(raft::RaftConfig{}) {
    node.bind(ctx);
    node.onStart();
    electionTimer = ctx.timerCounter;  // armed in onStart
  }

  /// Fires the election timer: follower -> candidate (term+1). The most
  /// recently armed timer is the election timer for any non-leader (every
  /// handler that resets it arms a fresh one).
  void timeout() { node.onTimer(ctx.timerCounter); }

  /// Promotes the node to leader of its current term via granted votes.
  void elect() {
    timeout();
    const raft::Term term = node.currentTerm();
    node.onMessage(1, raft::RequestVoteReply(term, true));
    node.onMessage(2, raft::RequestVoteReply(term, true));
    ASSERT_EQ(node.role(), raft::Role::kLeader);
    ctx.clear();
  }

  ManualContext ctx;
  raft::RaftProcess node;
  TimerId electionTimer = 0;
};

TEST(RaftUnit, StartsAsFollowerWithElectionTimer) {
  Bench bench;
  EXPECT_EQ(bench.node.role(), raft::Role::kFollower);
  EXPECT_EQ(bench.node.currentTerm(), 0u);
  EXPECT_GT(bench.ctx.timerCounter, 0u);
  EXPECT_GE(bench.ctx.lastTimerDelay, raft::RaftConfig{}.electionTimeoutMin);
  EXPECT_LE(bench.ctx.lastTimerDelay, raft::RaftConfig{}.electionTimeoutMax);
}

TEST(RaftUnit, TimeoutStartsElection) {
  Bench bench;
  bench.timeout();
  EXPECT_EQ(bench.node.role(), raft::Role::kCandidate);
  EXPECT_EQ(bench.node.currentTerm(), 1u);
  // RequestVote to each of the 4 peers, none to self.
  EXPECT_EQ(bench.ctx.countOf<raft::RequestVote>(), 4u);
  EXPECT_EQ(bench.ctx.lastTo<raft::RequestVote>(0), nullptr);
}

TEST(RaftUnit, GrantsOneVotePerTerm) {
  Bench bench;
  bench.node.onMessage(1, raft::RequestVote(1, 1, 0, 0));
  const auto* first = bench.ctx.lastTo<raft::RequestVoteReply>(1);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(first->granted);

  bench.node.onMessage(2, raft::RequestVote(1, 2, 0, 0));
  const auto* second = bench.ctx.lastTo<raft::RequestVoteReply>(2);
  ASSERT_NE(second, nullptr);
  EXPECT_FALSE(second->granted) << "double vote in one term";

  // Same candidate again (duplicate request): re-grant is allowed.
  bench.node.onMessage(1, raft::RequestVote(1, 1, 0, 0));
  const auto* repeat = bench.ctx.lastTo<raft::RequestVoteReply>(1);
  ASSERT_NE(repeat, nullptr);
  EXPECT_TRUE(repeat->granted);
}

TEST(RaftUnit, DeniesStaleTermVote) {
  Bench bench;
  bench.timeout();  // term 1
  bench.node.onMessage(1, raft::RequestVote(0, 1, 5, 0));
  const auto* reply = bench.ctx.lastTo<raft::RequestVoteReply>(1);
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->granted);
  EXPECT_EQ(reply->term, 1u);
}

TEST(RaftUnit, DeniesVoteToStaleLog) {
  // Give the node one entry of term 1, then a term-2 candidate with an
  // empty log asks for a vote: election restriction must deny.
  Bench bench;
  bench.node.onMessage(
      3, raft::AppendEntries(1, 3, 0, 0, {raft::LogEntry{1, 42}}, 0));
  ASSERT_EQ(bench.node.lastLogIndex(), 1u);
  bench.ctx.clear();

  bench.node.onMessage(1, raft::RequestVote(2, 1, 0, 0));
  const auto* reply = bench.ctx.lastTo<raft::RequestVoteReply>(1);
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->granted);
  // But term still adopted (higher term always adopted).
  EXPECT_EQ(bench.node.currentTerm(), 2u);
}

TEST(RaftUnit, CandidateWinsWithMajority) {
  Bench bench;
  bench.timeout();
  bench.node.onMessage(1, raft::RequestVoteReply(1, true));
  EXPECT_EQ(bench.node.role(), raft::Role::kCandidate);  // 2 of 5
  bench.node.onMessage(1, raft::RequestVoteReply(1, true));  // duplicate
  EXPECT_EQ(bench.node.role(), raft::Role::kCandidate);
  bench.node.onMessage(2, raft::RequestVoteReply(1, true));
  EXPECT_EQ(bench.node.role(), raft::Role::kLeader);  // 3 of 5
}

TEST(RaftUnit, StaleOrDeniedVotesIgnored) {
  Bench bench;
  bench.timeout();
  bench.node.onMessage(1, raft::RequestVoteReply(0, true));   // stale term
  bench.node.onMessage(2, raft::RequestVoteReply(1, false));  // denied
  EXPECT_EQ(bench.node.role(), raft::Role::kCandidate);
}

TEST(RaftUnit, LeaderAppendsAndCommitsWithQuorum) {
  Bench bench;
  bench.elect();
  EXPECT_TRUE(bench.node.submit(77));
  EXPECT_EQ(bench.node.lastLogIndex(), 1u);
  EXPECT_EQ(bench.node.commitIndex(), 0u);

  const raft::Term term = bench.node.currentTerm();
  bench.node.onMessage(1, raft::AppendEntriesReply(term, true, 1));
  EXPECT_EQ(bench.node.commitIndex(), 0u) << "2 of 5 is not a quorum";
  bench.node.onMessage(2, raft::AppendEntriesReply(term, true, 1));
  EXPECT_EQ(bench.node.commitIndex(), 1u) << "leader + 2 replicas = quorum";
}

TEST(RaftUnit, FollowerCannotSubmit) {
  Bench bench;
  EXPECT_FALSE(bench.node.submit(5));
  EXPECT_EQ(bench.node.lastLogIndex(), 0u);
}

TEST(RaftUnit, LeaderStepsDownOnHigherTerm) {
  Bench bench;
  bench.elect();
  bench.node.onMessage(
      2, raft::AppendEntriesReply(bench.node.currentTerm() + 5, false, 0));
  EXPECT_EQ(bench.node.role(), raft::Role::kFollower);
  EXPECT_EQ(bench.node.currentTerm(), 6u);
}

TEST(RaftUnit, AppendEntriesRejectsStaleTerm) {
  Bench bench;
  bench.timeout();  // term 1
  bench.node.onMessage(3, raft::AppendEntries(0, 3, 0, 0, {}, 0));
  const auto* reply = bench.ctx.lastTo<raft::AppendEntriesReply>(3);
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->success);
  EXPECT_EQ(bench.node.role(), raft::Role::kCandidate) << "must not yield";
}

TEST(RaftUnit, AppendEntriesRejectsMissingPrefix) {
  Bench bench;
  bench.node.onMessage(
      3, raft::AppendEntries(1, 3, /*prevLogIndex=*/4, /*prevLogTerm=*/1,
                             {raft::LogEntry{1, 9}}, 0));
  const auto* reply = bench.ctx.lastTo<raft::AppendEntriesReply>(3);
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->success);
  EXPECT_EQ(bench.node.lastLogIndex(), 0u);
}

TEST(RaftUnit, AppendEntriesTruncatesConflictingSuffix) {
  Bench bench;
  // Three entries of term 1.
  bench.node.onMessage(
      3, raft::AppendEntries(1, 3, 0, 0,
                             {raft::LogEntry{1, 10}, raft::LogEntry{1, 11},
                              raft::LogEntry{1, 12}},
                             0));
  ASSERT_EQ(bench.node.lastLogIndex(), 3u);
  // New leader (term 2) overwrites from index 2.
  bench.node.onMessage(
      4, raft::AppendEntries(2, 4, 1, 1, {raft::LogEntry{2, 99}}, 0));
  ASSERT_EQ(bench.node.lastLogIndex(), 2u) << "conflict suffix kept";
  EXPECT_EQ(bench.node.log()[1], (raft::LogEntry{2, 99}));
  EXPECT_EQ(bench.node.log()[0], (raft::LogEntry{1, 10}));
}

TEST(RaftUnit, AppendEntriesIdempotentOnDuplicates) {
  Bench bench;
  const raft::AppendEntries msg(1, 3, 0, 0, {raft::LogEntry{1, 10}}, 0);
  bench.node.onMessage(3, msg);
  bench.node.onMessage(3, *msg.clone()->as<raft::AppendEntries>());
  EXPECT_EQ(bench.node.lastLogIndex(), 1u);
}

TEST(RaftUnit, CommitFollowsLeaderCommitBound) {
  Bench bench;
  bench.node.onMessage(
      3, raft::AppendEntries(1, 3, 0, 0,
                             {raft::LogEntry{1, 10}, raft::LogEntry{1, 11}},
                             /*leaderCommit=*/5));
  // leaderCommit beyond our log is clamped to lastLogIndex.
  EXPECT_EQ(bench.node.commitIndex(), 2u);
}

TEST(RaftUnit, LeaderNeverCommitsOldTermEntriesDirectly) {
  // Figure 8 scenario guard: a new leader must not count replicas of an
  // old-term entry toward commitment until one of its own entries covers
  // it.
  Bench bench;
  // Follower receives one term-1 entry.
  bench.node.onMessage(
      3, raft::AppendEntries(1, 3, 0, 0, {raft::LogEntry{1, 10}}, 0));
  // It then wins an election at term 2.
  bench.timeout();
  const raft::Term term = bench.node.currentTerm();
  ASSERT_EQ(term, 2u);
  bench.node.onMessage(1, raft::RequestVoteReply(term, true));
  bench.node.onMessage(2, raft::RequestVoteReply(term, true));
  ASSERT_EQ(bench.node.role(), raft::Role::kLeader);

  // Followers acknowledge replication of the old entry: still no commit.
  bench.node.onMessage(1, raft::AppendEntriesReply(term, true, 1));
  bench.node.onMessage(2, raft::AppendEntriesReply(term, true, 1));
  EXPECT_EQ(bench.node.commitIndex(), 0u) << "committed an old-term entry";

  // A current-term entry commits, carrying the prefix with it.
  ASSERT_TRUE(bench.node.submit(20));
  bench.node.onMessage(1, raft::AppendEntriesReply(term, true, 2));
  bench.node.onMessage(2, raft::AppendEntriesReply(term, true, 2));
  EXPECT_EQ(bench.node.commitIndex(), 2u);
}

TEST(RaftUnit, BacktracksNextIndexOnRejection) {
  Bench bench;
  bench.elect();
  ASSERT_TRUE(bench.node.submit(1));
  ASSERT_TRUE(bench.node.submit(2));
  bench.ctx.clear();

  const raft::Term term = bench.node.currentTerm();
  // Follower 1 rejects: the leader must retry with an earlier prevLogIndex.
  bench.node.onMessage(1, raft::AppendEntriesReply(term, false, 0));
  const auto* retry = bench.ctx.lastTo<raft::AppendEntries>(1);
  ASSERT_NE(retry, nullptr);
  EXPECT_LT(retry->prevLogIndex, 2u);
  EXPECT_FALSE(retry->entries.empty());
}

TEST(RaftUnit, SnapshotInstallAndStaleSnapshotIgnored) {
  ManualContext ctx(5);
  raft::KvStoreNode node{raft::RaftConfig{}};
  node.bind(ctx);
  node.onStart();

  // Install a snapshot covering 3 entries.
  std::vector<Value> state = {raft::packKv(1, 100), raft::packKv(2, 200)};
  node.onMessage(3, raft::InstallSnapshot(1, 3, 3, 1, state));
  EXPECT_EQ(node.snapshotIndex(), 3u);
  EXPECT_EQ(node.commitIndex(), 3u);
  EXPECT_EQ(node.data().at(1), 100u);
  const auto* ack = ctx.lastTo<raft::AppendEntriesReply>(3);
  ASSERT_NE(ack, nullptr);
  EXPECT_TRUE(ack->success);
  EXPECT_EQ(ack->matchIndex, 3u);

  // A stale snapshot (lower boundary) must not regress anything.
  ctx.clear();
  node.onMessage(3, raft::InstallSnapshot(1, 3, 2, 1, {}));
  EXPECT_EQ(node.snapshotIndex(), 3u);
  EXPECT_EQ(node.data().at(1), 100u);

  // Appends continue from the snapshot boundary.
  node.onMessage(3, raft::AppendEntries(1, 3, 3, 1,
                                        {raft::LogEntry{1, raft::packKv(7, 700)}},
                                        4));
  EXPECT_EQ(node.lastLogIndex(), 4u);
  EXPECT_EQ(node.data().at(7), 700u);
}

TEST(RaftUnit, CompactToRejectsUnappliedPrefix) {
  Bench bench;
  class Exposed : public raft::RaftProcess {
   public:
    using raft::RaftProcess::compactTo;
    using raft::RaftProcess::RaftProcess;
  };
  ManualContext ctx(3);
  Exposed node{raft::RaftConfig{}};
  node.bind(ctx);
  node.onStart();
  node.onMessage(1, raft::AppendEntries(1, 1, 0, 0,
                                        {raft::LogEntry{1, 5}}, 0));
  EXPECT_THROW(node.compactTo(1), std::logic_error)  // not yet applied
      << "compacted past the applied prefix";
}

}  // namespace
}  // namespace ooc

// The composition engine: registry semantics (lookup, open registration,
// duplicate rejection), capability validation with the paper's §5
// diagnostics, the three Composition interchange forms (spec string,
// key=value, JSON), and the guarantee the whole refactor rests on — the
// legacy per-protocol entry points lower onto runComposition() without
// moving a single scheduler event.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>

#include "benor/reconciliators.hpp"
#include "check/replay.hpp"
#include "check/scenario.hpp"
#include "compose/composition.hpp"
#include "compose/matrix.hpp"
#include "compose/registry.hpp"
#include "compose/run.hpp"
#include "fd/oracle.hpp"
#include "harness/scenarios.hpp"
#include "sim/trace.hpp"

namespace ooc {
namespace {

using compose::Composition;
using compose::registry;

std::string throwText(const std::function<void()>& f) {
  try {
    f();
  } catch (const std::exception& error) {
    return error.what();
  }
  return "";
}

// ---------------------------------------------------------------------------
// Registry

TEST(ComposeRegistry, BuiltinsAreRegistered) {
  auto& reg = registry();
  for (const char* name :
       {"benor-vac", "byzantine-benor-vac", "vac-from-two-ac",
        "decentralized-vac", "phaseking-ac", "phasequeen-ac"}) {
    EXPECT_TRUE(reg.hasDetector(name)) << name;
    EXPECT_EQ(reg.detector(name).name, name);
  }
  for (const char* name :
       {"local-coin", "common-coin", "biased-coin", "keep-value", "lottery",
        "timer", "king-conciliator", "queen-conciliator"}) {
    EXPECT_TRUE(reg.hasDriver(name)) << name;
    EXPECT_EQ(reg.driver(name).name, name);
  }
}

TEST(ComposeRegistry, UnknownNamesThrowListingKnownOnes) {
  const std::string detectorError =
      throwText([] { registry().detector("no-such-detector"); });
  EXPECT_NE(detectorError.find("unknown detector 'no-such-detector'"),
            std::string::npos)
      << detectorError;
  EXPECT_NE(detectorError.find("benor-vac"), std::string::npos)
      << "diagnostic should list the known names: " << detectorError;

  const std::string driverError =
      throwText([] { registry().driver("no-such-driver"); });
  EXPECT_NE(driverError.find("unknown driver 'no-such-driver'"),
            std::string::npos)
      << driverError;
  EXPECT_NE(driverError.find("local-coin"), std::string::npos)
      << driverError;
}

TEST(ComposeRegistry, DuplicateRegistrationIsRejected) {
  compose::DetectorEntry detector;
  detector.name = "benor-vac";  // collides with the builtin
  EXPECT_THROW(registry().registerDetector(std::move(detector)),
               std::invalid_argument);

  compose::DriverEntry driver;
  driver.name = "local-coin";
  EXPECT_THROW(registry().registerDriver(std::move(driver)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Capability validation (the paper's §5 asymmetry)

TEST(ComposeCapability, AcUnderReconciliatorCitesTheInsufficiencyArgument) {
  const auto diagnostic =
      registry().validatePairing("phaseking-ac", "local-coin");
  ASSERT_TRUE(diagnostic.has_value());
  EXPECT_NE(diagnostic->find("§5"), std::string::npos) << *diagnostic;
  EXPECT_NE(diagnostic->find("break agreement"), std::string::npos)
      << *diagnostic;
  // resolve(), parseSpec() and every file-parse path surface the identical
  // text — the same gate, not a re-implementation.
  Composition composition;
  composition.detector = "phaseking-ac";
  composition.driver = "local-coin";
  EXPECT_EQ(throwText([&] { compose::resolve(composition); }), *diagnostic);
  EXPECT_EQ(throwText([] { compose::parseSpec("phaseking-ac+local-coin"); }),
            *diagnostic);
}

TEST(ComposeCapability, VacUnderConciliatorSuggestsTheDowngrade) {
  const auto diagnostic =
      registry().validatePairing("benor-vac", "king-conciliator");
  ASSERT_TRUE(diagnostic.has_value());
  EXPECT_NE(diagnostic->find("vacillate"), std::string::npos) << *diagnostic;
  EXPECT_NE(diagnostic->find("AcFromVac"), std::string::npos) << *diagnostic;
}

TEST(ComposeCapability, ByzantineDetectorRejectsCrashOnlyDrivers) {
  for (const char* driver : {"lottery", "timer"}) {
    const auto diagnostic =
        registry().validatePairing("byzantine-benor-vac", driver);
    ASSERT_TRUE(diagnostic.has_value()) << driver;
    EXPECT_NE(diagnostic->find("crash-only"), std::string::npos)
        << *diagnostic;
  }
}

TEST(ComposeCapability, ValidPairingsResolve) {
  EXPECT_FALSE(registry().validatePairing("benor-vac", "local-coin"));
  EXPECT_FALSE(registry().validatePairing("phaseking-ac", "king-conciliator"));
  EXPECT_FALSE(registry().validatePairing("byzantine-benor-vac",
                                          "common-coin"));
  const auto resolved = compose::resolve(Composition{});  // the defaults
  EXPECT_EQ(resolved.t, 2u);  // (5-1)/2
  EXPECT_FALSE(resolved.lockstep);
}

TEST(ComposeCapability, ResolveChecksRunParameters) {
  Composition crashWithPlants;  // crash-model detector, planted Byzantines
  crashWithPlants.byzantineCount = 1;
  EXPECT_NE(throwText([&] { compose::resolve(crashWithPlants); })
                .find("crash-model"),
            std::string::npos);

  Composition lockstepWithCrashes;
  lockstepWithCrashes.detector = "phaseking-ac";
  lockstepWithCrashes.driver = "king-conciliator";
  lockstepWithCrashes.n = 7;
  lockstepWithCrashes.crashes = {{1, 10}};
  EXPECT_NE(throwText([&] { compose::resolve(lockstepWithCrashes); })
                .find("lockstep"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Interchange forms

TEST(ComposeSpec, ParsesAndTrims) {
  const Composition composition =
      compose::parseSpec("  benor-vac +  timer ");
  EXPECT_EQ(composition.detector, "benor-vac");
  EXPECT_EQ(composition.driver, "timer");
  EXPECT_THROW(compose::parseSpec("benor-vac"), std::invalid_argument);
  EXPECT_THROW(compose::parseSpec("+local-coin"), std::invalid_argument);
}

Composition sampleComposition() {
  Composition composition;
  composition.detector = "benor-vac";
  composition.driver = "biased-coin";
  composition.n = 9;
  composition.t = 3;
  composition.inputs = {1, 0, 1};
  composition.seed = 42;
  composition.bias = 0.75;
  composition.crashes = {{0, 50}, {3, 120}};
  composition.minDelay = 2;
  composition.maxDelay = 7;
  composition.adversary.extraDelayMax = 4;
  composition.adversary.perturbProbability = 0.5;
  composition.adversary.seed = 9;
  composition.maxRounds = 80;
  composition.maxTicks = 60'000;
  return composition;
}

TEST(ComposeSerialize, KeyValueRoundTrips) {
  const Composition original = sampleComposition();
  const std::string text = compose::serialize(original);
  const Composition parsed = compose::parseComposition(text);
  EXPECT_EQ(compose::serialize(parsed), text);
  EXPECT_EQ(parsed.detector, original.detector);
  EXPECT_EQ(parsed.driver, original.driver);
  EXPECT_EQ(parsed.n, original.n);
  EXPECT_EQ(parsed.t, original.t);
  EXPECT_EQ(parsed.inputs, original.inputs);
  EXPECT_EQ(parsed.crashes, original.crashes);
  EXPECT_EQ(parsed.adversary.extraDelayMax, original.adversary.extraDelayMax);
  EXPECT_EQ(parsed.bias, original.bias);
}

TEST(ComposeSerialize, JsonRoundTrips) {
  const Composition original = sampleComposition();
  const std::string json = compose::toJson(original);
  const Composition parsed = compose::fromJson(json);
  EXPECT_EQ(compose::toJson(parsed), json);
  EXPECT_EQ(compose::serialize(parsed), compose::serialize(original));
}

TEST(ComposeSerialize, ParsePathsRejectInvalidPairingsWithTheSameText) {
  Composition invalid;
  invalid.detector = "phasequeen-ac";
  invalid.driver = "keep-value";
  const std::string expected =
      *registry().validatePairing("phasequeen-ac", "keep-value");
  // serialize() itself does not validate (it never runs anything), so the
  // invalid pairing reaches the wire — and every reader rejects it there.
  EXPECT_EQ(throwText([&] {
              compose::parseComposition(compose::serialize(invalid));
            }),
            expected);
  EXPECT_EQ(throwText([&] { compose::fromJson(compose::toJson(invalid)); }),
            expected);
}

// ---------------------------------------------------------------------------
// The oracle role (PR 6): rejection gates, interchange, the E22 matrix

TEST(ComposeOracle, BuiltinOraclesAreRegistered) {
  auto& reg = registry();
  for (const char* name : {"perfect-p", "diamond-s", "omega"}) {
    EXPECT_TRUE(reg.hasOracle(name)) << name;
    EXPECT_EQ(reg.oracle(name).name, name);
  }
  const std::string error =
      throwText([] { registry().oracle("no-such-oracle"); });
  EXPECT_NE(error.find("unknown oracle 'no-such-oracle'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("omega"), std::string::npos)
      << "diagnostic should list the known names: " << error;
}

TEST(ComposeOracle, MissingOracleDiagnosticIsIdenticalAcrossParsePaths) {
  // ct-coordinator consumes Ω; with no oracle attached, resolve() and every
  // file-parse path must reject with the same registry text.
  const auto diagnostic =
      registry().validateOracle("ct-coordinator", "", fd::OracleKnobs{});
  ASSERT_TRUE(diagnostic.has_value());
  EXPECT_NE(diagnostic->find("consumes a failure-detector oracle"),
            std::string::npos)
      << *diagnostic;
  Composition composition;
  composition.detector = "benor-vac";
  composition.driver = "ct-coordinator";
  EXPECT_EQ(throwText([&] { compose::resolve(composition); }), *diagnostic);
  EXPECT_EQ(
      throwText([] { compose::parseSpec("benor-vac+ct-coordinator"); }),
      *diagnostic);
  EXPECT_EQ(throwText([&] {
              compose::parseComposition(compose::serialize(composition));
            }),
            *diagnostic);
  EXPECT_EQ(throwText([&] { compose::fromJson(compose::toJson(composition)); }),
            *diagnostic);
}

TEST(ComposeOracle, TooWeakAnOracleCitesTheClassGap) {
  // p-coordinator demands P; ◇S only promises eventual accuracy.
  const auto diagnostic =
      registry().validateOracle("p-coordinator", "diamond-s",
                                fd::OracleKnobs{});
  ASSERT_TRUE(diagnostic.has_value());
  EXPECT_NE(diagnostic->find("perfect"), std::string::npos) << *diagnostic;
  Composition composition;
  composition.detector = "benor-vac";
  composition.driver = "p-coordinator";
  composition.oracle = "diamond-s";
  EXPECT_EQ(throwText([&] { compose::resolve(composition); }), *diagnostic);
}

TEST(ComposeOracle, NoisyPerfectOracleIsIncoherent) {
  // Strong accuracy forbids false suspicion: perfect-p with noise (or an
  // accuracy stabilization delay) is a contradiction in terms.
  fd::OracleKnobs noisy;
  noisy.noise = 0.25;
  const auto diagnostic =
      registry().validateOracle("p-coordinator", "perfect-p", noisy);
  ASSERT_TRUE(diagnostic.has_value());
  EXPECT_NE(diagnostic->find("strong accuracy"), std::string::npos)
      << *diagnostic;
  Composition composition;
  composition.detector = "benor-vac";
  composition.driver = "p-coordinator";
  composition.oracle = "perfect-p";
  composition.oracleKnobs.noise = 0.25;
  EXPECT_EQ(throwText([&] { compose::resolve(composition); }), *diagnostic);
  EXPECT_EQ(throwText([&] { compose::fromJson(compose::toJson(composition)); }),
            *diagnostic);
}

TEST(ComposeOracle, OracleOnAnOracleFreeDriverIsRejected) {
  const auto diagnostic =
      registry().validateOracle("timer", "omega", fd::OracleKnobs{});
  ASSERT_TRUE(diagnostic.has_value());
  Composition composition;
  composition.detector = "benor-vac";
  composition.driver = "timer";
  composition.oracle = "omega";
  EXPECT_EQ(throwText([&] { compose::resolve(composition); }), *diagnostic);
}

TEST(ComposeOracle, SerializationRoundTripsTheOracleAndItsKnobs) {
  Composition original = sampleComposition();
  original.driver = "ct-coordinator";
  original.oracle = "omega";
  original.oracleKnobs.completenessLag = 6;
  original.oracleKnobs.stabilizeAt = 90;
  original.oracleKnobs.noise = 0.375;
  original.oracleKnobs.noiseEpoch = 12;

  const std::string text = compose::serialize(original);
  const Composition parsed = compose::parseComposition(text);
  EXPECT_EQ(compose::serialize(parsed), text);
  EXPECT_EQ(parsed.oracle, "omega");
  EXPECT_EQ(parsed.oracleKnobs.completenessLag, Tick{6});
  EXPECT_EQ(parsed.oracleKnobs.stabilizeAt, Tick{90});
  EXPECT_EQ(parsed.oracleKnobs.noise, 0.375);
  EXPECT_EQ(parsed.oracleKnobs.noiseEpoch, Tick{12});

  const std::string json = compose::toJson(original);
  const Composition fromJson = compose::fromJson(json);
  EXPECT_EQ(compose::toJson(fromJson), json);
  EXPECT_EQ(compose::serialize(fromJson), text);
}

TEST(ComposeOracle, OracleFreeCompositionsSerializeWithoutOracleKeys) {
  // Satellite guarantee: the oracle role is zero-cost for existing
  // pairings — their wire forms gain no keys, so pre-PR-6 files and
  // goldens stay byte-identical.
  const Composition original = sampleComposition();
  EXPECT_EQ(compose::serialize(original).find("oracle"), std::string::npos);
  EXPECT_EQ(compose::toJson(original).find("oracle"), std::string::npos);
}

TEST(ComposeOracle, E22MatrixReportsRejectedCellsWithDiagnostics) {
  compose::OracleMatrixOptions options;
  options.runsPerCell = 1;  // quick=false: quick mode would force 3
  const auto report = compose::runOracleMatrix(options);
  EXPECT_TRUE(report.safetyOk);
  EXPECT_GT(report.validCells, 0u);
  EXPECT_GT(report.rejectedCells, 0u);
  EXPECT_EQ(report.validCells + report.rejectedCells, report.cells.size());

  bool sawMissingOracle = false, sawWeakOracle = false, sawNoisyPerfect = false;
  for (const auto& cell : report.cells) {
    if (cell.valid) {
      EXPECT_TRUE(cell.diagnostic.empty());
      EXPECT_EQ(cell.runs, 1);
      EXPECT_TRUE(cell.fdAxiomsOk) << cell.driver << "+" << cell.oracle;
      EXPECT_TRUE(cell.agreementOk && cell.validityOk && cell.auditsOk);
    } else {
      EXPECT_FALSE(cell.diagnostic.empty()) << cell.driver << "+" << cell.oracle;
      EXPECT_EQ(cell.runs, 0);
      if (cell.oracle.empty()) sawMissingOracle = true;
      if (cell.driver == "p-coordinator" && cell.oracle == "diamond-s")
        sawWeakOracle = true;
      if (cell.oracle == "perfect-p" && cell.noise > 0) sawNoisyPerfect = true;
    }
  }
  EXPECT_TRUE(sawMissingOracle);
  EXPECT_TRUE(sawWeakOracle);
  EXPECT_TRUE(sawNoisyPerfect);

  // The JSON form carries the rejected cells too, diagnostic included.
  const std::string json = compose::oracleMatrixToJson(report, options);
  EXPECT_NE(json.find("\"schema\":\"ooc.fd-matrix.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"valid\":false"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostic\""), std::string::npos);
  EXPECT_NE(json.find("\"fd_axioms_ok\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Legacy adapters: byte-identical lowering

TEST(ComposeAdapters, BenOrTraceIsByteIdenticalThroughTheAdapter) {
  check::Scenario legacy;
  legacy.family = check::Family::kBenOr;
  legacy.benOr.n = 5;
  legacy.benOr.inputs = {0, 1, 0, 1, 1};
  legacy.benOr.seed = 33;
  legacy.benOr.mode = harness::BenOrConfig::Mode::kDecomposed;

  check::Scenario direct;
  direct.family = check::Family::kCompose;
  direct.compose = harness::toComposition(legacy.benOr);

  const auto legacyRun = check::recordRun(legacy);
  const auto directRun = check::recordRun(direct);
  EXPECT_TRUE(legacyRun.trace == directRun.trace)
      << "adapter lowering moved a scheduler event";
  EXPECT_EQ(legacyRun.report.decidedValue, directRun.report.decidedValue);
}

TEST(ComposeAdapters, PhaseKingTraceIsByteIdenticalThroughTheAdapter) {
  check::Scenario legacy;
  legacy.family = check::Family::kPhaseKing;
  legacy.phaseKing.n = 7;
  legacy.phaseKing.byzantineCount = 2;
  legacy.phaseKing.seed = 11;

  check::Scenario direct;
  direct.family = check::Family::kCompose;
  direct.compose = harness::toComposition(legacy.phaseKing);

  const auto legacyRun = check::recordRun(legacy);
  const auto directRun = check::recordRun(direct);
  EXPECT_TRUE(legacyRun.trace == directRun.trace)
      << "adapter lowering moved a scheduler event";
  EXPECT_EQ(legacyRun.report.allDecided, directRun.report.allDecided);
}

TEST(ComposeAdapters, ByzantineBenOrMatchesItsComposition) {
  // runByzantineBenOr takes no hooks, so equivalence is asserted on the
  // full result instead of the trace: same deterministic engine, same
  // numbers, down to the event count.
  harness::ByzantineBenOrConfig config;
  config.seed = 77;
  const auto legacy = harness::runByzantineBenOr(config);
  const auto direct = compose::runComposition(harness::toComposition(config));
  EXPECT_EQ(legacy.allDecided, direct.allDecided);
  EXPECT_EQ(legacy.decidedValue, direct.decidedValue);
  EXPECT_EQ(legacy.maxDecisionRound, direct.maxDecisionRound);
  EXPECT_EQ(legacy.lastDecisionTick, direct.lastDecisionTick);
  EXPECT_EQ(legacy.messagesByCorrect, direct.messagesByCorrect);
  EXPECT_EQ(legacy.eventsProcessed, direct.eventsProcessed);
}

TEST(ComposeAdapters, MonolithicModesHaveNoComposition) {
  harness::BenOrConfig benOr;
  benOr.n = 5;
  benOr.inputs = {0, 1, 0, 1, 1};
  benOr.mode = harness::BenOrConfig::Mode::kMonolithic;
  EXPECT_THROW(harness::toComposition(benOr), std::logic_error);

  harness::PhaseKingConfig phaseKing;
  phaseKing.monolithic = true;
  EXPECT_THROW(harness::toComposition(phaseKing), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Open registration (extensions can add objects at startup)

TEST(ComposeRegistry, OpenRegistrationComposesWithBuiltins) {
  auto& reg = registry();
  if (!reg.hasDriver("test-always-one")) {
    compose::DriverEntry driver;
    driver.name = "test-always-one";
    driver.capability = {compose::DriverClass::kReconciliator,
                         compose::InvocationMode::kAny,
                         /*toleratesByzantine=*/true,
                         /*requiresEveryProcess=*/false};
    driver.make = [](const compose::ObjectParams&) {
      return benor::KeepValueReconciliator::factory();
    };
    reg.registerDriver(std::move(driver));
  }
  ASSERT_TRUE(reg.hasDriver("test-always-one"));
  EXPECT_FALSE(reg.validatePairing("benor-vac", "test-always-one"));

  Composition composition;
  composition.driver = "test-always-one";
  composition.inputs = {1, 1, 1, 1, 1};  // unanimous: decides in round 1
  const auto result = compose::runComposition(composition);
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
}

}  // namespace
}  // namespace ooc

// Trace record/replay: a recorded run re-executes bit-identically (every
// scheduler event, decision, tick and message count), configs and traces
// round-trip through their text serializations, and tampered traces are
// diagnosed with a divergence.
#include <gtest/gtest.h>

#include <sstream>

#include "check/replay.hpp"
#include "check/scenario.hpp"
#include "harness/serialize.hpp"

namespace ooc::check {
namespace {

Scenario benOrScenario() {
  Scenario scenario;
  scenario.family = Family::kBenOr;
  auto& config = scenario.benOr;
  config.n = 5;
  config.inputs = {0, 1, 0, 1, 1};
  config.seed = 42;
  config.maxDelay = 7;
  config.crashes = {{2, 30}};
  return scenario;
}

Scenario phaseKingScenario() {
  Scenario scenario;
  scenario.family = Family::kPhaseKing;
  scenario.phaseKing.seed = 7;
  return scenario;
}

Scenario raftScenario() {
  Scenario scenario;
  scenario.family = Family::kRaft;
  auto& config = scenario.raft;
  config.n = 5;
  config.seed = 11;
  config.crashes = {{0, 500}};
  config.partitions.push_back({200, {0, 0, 0, 1, 1}});
  config.partitions.push_back({800, {}});
  return scenario;
}

void expectBitIdenticalReplay(const Scenario& scenario) {
  const RecordedRun recorded = recordRun(scenario);
  ASSERT_FALSE(recorded.trace.events.empty());

  const ReplayResult replay = replayRun(scenario, recorded.trace);
  EXPECT_TRUE(replay.identical)
      << replay.divergence.value_or("(no divergence reported)");

  // The replayed run reproduces the recorded outcome exactly.
  EXPECT_EQ(replay.report.allDecided, recorded.report.allDecided);
  EXPECT_EQ(replay.report.decidedValue, recorded.report.decidedValue);
  EXPECT_EQ(replay.report.messages, recorded.report.messages);

  // And the re-derived trace counters match too.
  const RecordedRun again = recordRun(scenario);
  EXPECT_EQ(again.trace, recorded.trace);
}

TEST(Replay, BenOrRunReplaysBitIdentically) {
  expectBitIdenticalReplay(benOrScenario());
}

TEST(Replay, PhaseKingRunReplaysBitIdentically) {
  expectBitIdenticalReplay(phaseKingScenario());
}

TEST(Replay, RaftRunReplaysBitIdentically) {
  expectBitIdenticalReplay(raftScenario());
}

TEST(Replay, DecisionsAppearInTrace) {
  const RecordedRun recorded = recordRun(benOrScenario());
  std::size_t decisions = 0;
  for (const TraceEvent& event : recorded.trace.events)
    if (event.kind == TraceEvent::Kind::kDecision) ++decisions;
  // Process 2 crashes at tick 30; the other four must decide (2 itself may
  // or may not squeeze its decision in before the crash).
  EXPECT_GE(decisions, 4u);
  EXPECT_LE(decisions, 5u);
}

TEST(Replay, TamperedTraceReportsDivergence) {
  const Scenario scenario = benOrScenario();
  RecordedRun recorded = recordRun(scenario);
  ASSERT_GT(recorded.trace.events.size(), 10u);
  recorded.trace.events[10].a ^= 1;  // flip one participant id

  const ReplayResult replay = replayRun(scenario, recorded.trace);
  EXPECT_FALSE(replay.identical);
  ASSERT_TRUE(replay.divergence.has_value());
  EXPECT_NE(replay.divergence->find("event"), std::string::npos);
}

TEST(Replay, TruncatedTraceReportsDivergence) {
  const Scenario scenario = benOrScenario();
  RecordedRun recorded = recordRun(scenario);
  recorded.trace.events.resize(recorded.trace.events.size() / 2);

  const ReplayResult replay = replayRun(scenario, recorded.trace);
  EXPECT_FALSE(replay.identical);
  EXPECT_TRUE(replay.divergence.has_value());
}

TEST(Replay, TraceSerializationRoundTrips) {
  const RecordedRun recorded = recordRun(benOrScenario());
  std::ostringstream out;
  serializeTrace(recorded.trace, out);
  std::istringstream in(out.str());
  const Trace parsed = parseTrace(in);
  EXPECT_EQ(parsed, recorded.trace);
}

TEST(Replay, ScenarioSerializationRoundTrips) {
  for (const Scenario& scenario :
       {benOrScenario(), phaseKingScenario(), raftScenario()}) {
    const std::string text = serialize(scenario);
    const Scenario parsed = parseScenario(text);
    // Configs don't define operator==; equality via re-serialization.
    EXPECT_EQ(serialize(parsed), text);
    // A parsed config drives the exact same schedule.
    const RecordedRun original = recordRun(scenario);
    EXPECT_TRUE(replayRun(parsed, original.trace).identical);
  }
}

TEST(Replay, CounterexampleFileRoundTrips) {
  const Scenario scenario = raftScenario();
  CounterexampleFile file;
  file.scenario = scenario;
  file.invariant = "agreement";
  file.detail = "two correct processes decided different values";
  file.trace = recordRun(scenario).trace;

  const std::string text = serializeCounterexample(file);
  const CounterexampleFile parsed = parseCounterexample(text);
  EXPECT_EQ(parsed.invariant, file.invariant);
  EXPECT_EQ(parsed.detail, file.detail);
  EXPECT_EQ(parsed.trace, file.trace);
  EXPECT_EQ(serialize(parsed.scenario), serialize(file.scenario));
}

TEST(Replay, MalformedCounterexampleThrows) {
  EXPECT_THROW(parseCounterexample("nonsense"), std::runtime_error);
  EXPECT_THROW(parseCounterexample("ooc-counterexample v1\ninvariant=x\n"),
               std::runtime_error);
}

TEST(Replay, AdversaryScheduleIsPartOfTheConfig) {
  Scenario scenario = benOrScenario();
  scenario.benOr.adversary.extraDelayMax = 8;
  scenario.benOr.adversary.seed = 3;
  const RecordedRun recorded = recordRun(scenario);

  // Same adversary: bit-identical. Different adversary seed: diverges.
  EXPECT_TRUE(replayRun(scenario, recorded.trace).identical);
  Scenario other = scenario;
  other.benOr.adversary.seed = 4;
  EXPECT_FALSE(replayRun(other, recorded.trace).identical);
}

}  // namespace
}  // namespace ooc::check

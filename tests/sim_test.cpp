// Unit tests for the discrete-event simulator: ordering, delivery,
// timers, crashes, network models, lockstep barriers, determinism, and the
// decision monitor.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"

namespace ooc {
namespace {

struct Ping final : MessageBase<Ping> {
  explicit Ping(int payload = 0) : payload(payload) {}
  int payload;
  std::string describe() const override {
    return "ping(" + std::to_string(payload) + ")";
  }
};

/// Records everything that happens to it.
class Recorder : public Process {
 public:
  void onStart() override { started = true; }
  void onMessage(ProcessId from, const Message& message) override {
    const auto* ping = message.as<Ping>();
    ASSERT_NE(ping, nullptr);
    received.emplace_back(from, ping->payload);
    receiveTicks.push_back(ctx().now());
  }
  void onTimer(TimerId id) override { timersFired.push_back(id); }
  void onTick(Tick tick) override { ticks.push_back(tick); }

  bool started = false;
  std::vector<std::pair<ProcessId, int>> received;
  std::vector<Tick> receiveTicks;
  std::vector<TimerId> timersFired;
  std::vector<Tick> ticks;
};

/// Sends a configurable batch of messages / timers at start.
class Sender : public Process {
 public:
  explicit Sender(std::function<void(Context&)> onStartAction)
      : action_(std::move(onStartAction)) {}
  void onStart() override { action_(ctx()); }
  void onMessage(ProcessId, const Message&) override {}

 private:
  std::function<void(Context&)> action_;
};

std::unique_ptr<NetworkModel> sync() {
  return std::make_unique<SynchronousNetwork>();
}

TEST(Simulator, StartsEveryProcess) {
  Simulator sim(SimConfig{}, sync());
  auto* a = new Recorder;
  auto* b = new Recorder;
  sim.addProcess(std::unique_ptr<Process>(a));
  sim.addProcess(std::unique_ptr<Process>(b));
  sim.run();
  EXPECT_TRUE(a->started);
  EXPECT_TRUE(b->started);
}

TEST(Simulator, SynchronousDeliveryTakesOneTick) {
  Simulator sim(SimConfig{}, sync());
  sim.addProcess(std::make_unique<Sender>(
      [](Context& ctx) { ctx.send(1, std::make_unique<Ping>(7)); }));
  auto* receiver = new Recorder;
  sim.addProcess(std::unique_ptr<Process>(receiver));
  sim.run();
  ASSERT_EQ(receiver->received.size(), 1u);
  EXPECT_EQ(receiver->received[0], std::make_pair(ProcessId{0}, 7));
  EXPECT_EQ(receiver->receiveTicks[0], 1u);
}

TEST(Simulator, BroadcastReachesEveryoneIncludingSelf) {
  Simulator sim(SimConfig{}, sync());
  auto* a = new Recorder;
  class BroadcastOnStart : public Recorder {
   public:
    void onStart() override { ctx().broadcast(Ping(3)); }
  };
  auto* b = new BroadcastOnStart;
  sim.addProcess(std::unique_ptr<Process>(a));
  sim.addProcess(std::unique_ptr<Process>(b));
  sim.run();
  ASSERT_EQ(a->received.size(), 1u);
  ASSERT_EQ(b->received.size(), 1u);  // self-delivery
  EXPECT_EQ(b->received[0].first, 1u);
}

TEST(Simulator, FifoOrderPreservedAtSameTickBySequence) {
  Simulator sim(SimConfig{}, sync());
  sim.addProcess(std::make_unique<Sender>([](Context& ctx) {
    ctx.send(1, std::make_unique<Ping>(1));
    ctx.send(1, std::make_unique<Ping>(2));
    ctx.send(1, std::make_unique<Ping>(3));
  }));
  auto* receiver = new Recorder;
  sim.addProcess(std::unique_ptr<Process>(receiver));
  sim.run();
  ASSERT_EQ(receiver->received.size(), 3u);
  EXPECT_EQ(receiver->received[0].second, 1);
  EXPECT_EQ(receiver->received[1].second, 2);
  EXPECT_EQ(receiver->received[2].second, 3);
}

TEST(Simulator, TimerFiresAtRequestedDelay) {
  Simulator sim(SimConfig{}, sync());
  class TimerProcess : public Recorder {
   public:
    void onStart() override { id = ctx().setTimer(5); }
    void onTimer(TimerId timerId) override {
      fireTick = ctx().now();
      fired = (timerId == id);
    }
    TimerId id = 0;
    Tick fireTick = 0;
    bool fired = false;
  };
  auto* p = new TimerProcess;
  sim.addProcess(std::unique_ptr<Process>(p));
  sim.run();
  EXPECT_TRUE(p->fired);
  EXPECT_EQ(p->fireTick, 5u);
}

TEST(Simulator, CancelledTimerDoesNotFire) {
  Simulator sim(SimConfig{}, sync());
  class CancelProcess : public Recorder {
   public:
    void onStart() override {
      const TimerId id = ctx().setTimer(5);
      ctx().cancelTimer(id);
    }
  };
  auto* p = new CancelProcess;
  sim.addProcess(std::unique_ptr<Process>(p));
  sim.run();
  EXPECT_TRUE(p->timersFired.empty());
}

// Regression: arming and immediately disarming many timers must not
// accumulate per-timer bookkeeping (cancelled ids used to pile up in a
// tombstone set until their heap entries drained).
TEST(Simulator, MassTimerChurnLeavesNoPendingState) {
  Simulator sim(SimConfig{}, sync());
  class Churner : public Recorder {
   public:
    void onStart() override {
      for (int i = 0; i < 100000; ++i) {
        const TimerId id = ctx().setTimer(1000);
        ctx().cancelTimer(id);
      }
      keep = ctx().setTimer(3);
    }
    TimerId keep = 0;
  };
  auto* p = new Churner;
  sim.addProcess(std::unique_ptr<Process>(p));
  sim.run();
  ASSERT_EQ(p->timersFired.size(), 1u);
  EXPECT_EQ(p->timersFired.front(), p->keep);
  EXPECT_EQ(sim.pendingTimerCount(), 0u);
}

TEST(Simulator, CrashedProcessReceivesNothing) {
  Simulator sim(SimConfig{}, sync());
  sim.addProcess(std::make_unique<Sender>([](Context& ctx) {
    ctx.setTimer(10);  // keep the run alive
    ctx.send(1, std::make_unique<Ping>(1));
  }));
  auto* victim = new Recorder;
  sim.addProcess(std::unique_ptr<Process>(victim));
  sim.crashAt(1, 0);  // crash before delivery
  sim.run();
  EXPECT_TRUE(victim->received.empty());
  EXPECT_TRUE(sim.crashed(1));
}

TEST(Simulator, CrashedProcessCannotSend) {
  Simulator sim(SimConfig{}, sync());
  class LateSender : public Process {
   public:
    void onStart() override { ctx().setTimer(5); }
    void onTimer(TimerId) override {
      ctx().send(1, std::make_unique<Ping>(9));
    }
    void onMessage(ProcessId, const Message&) override {}
  };
  sim.addProcess(std::make_unique<LateSender>());
  auto* receiver = new Recorder;
  sim.addProcess(std::unique_ptr<Process>(receiver));
  sim.crashAt(0, 2);  // crash before its timer fires
  sim.run();
  EXPECT_TRUE(receiver->received.empty());
}

TEST(Simulator, DecisionMonitorChecksAgreement) {
  Simulator sim(SimConfig{}, sync());
  class Decider : public Process {
   public:
    explicit Decider(Value v) : v_(v) {}
    void onStart() override { ctx().decide(v_); }
    void onMessage(ProcessId, const Message&) override {}
    Value v_;
  };
  sim.addProcess(std::make_unique<Decider>(0));
  sim.addProcess(std::make_unique<Decider>(1));
  sim.run();
  EXPECT_TRUE(sim.agreementViolated());
  EXPECT_TRUE(sim.allCorrectDecided());
}

TEST(Simulator, DecisionMonitorChecksValidity) {
  Simulator sim(SimConfig{}, sync());
  class Decider : public Process {
   public:
    void onStart() override { ctx().decide(99); }
    void onMessage(ProcessId, const Message&) override {}
  };
  sim.addProcess(std::make_unique<Decider>());
  sim.setValidValues({0, 1});
  sim.run();
  EXPECT_TRUE(sim.validityViolated());
}

TEST(Simulator, FaultyProcessesExcludedFromChecks) {
  Simulator sim(SimConfig{}, sync());
  class Decider : public Process {
   public:
    explicit Decider(Value v) : v_(v) {}
    void onStart() override { ctx().decide(v_); }
    void onMessage(ProcessId, const Message&) override {}
    Value v_;
  };
  sim.addProcess(std::make_unique<Decider>(0));
  sim.addProcess(std::make_unique<Decider>(1), /*faulty=*/true);
  sim.setValidValues({0});
  sim.run();
  EXPECT_FALSE(sim.agreementViolated());
  EXPECT_FALSE(sim.validityViolated());
}

TEST(Simulator, RepeatDecisionsIgnored) {
  Simulator sim(SimConfig{}, sync());
  class DoubleDecider : public Process {
   public:
    void onStart() override {
      ctx().decide(0);
      ctx().decide(1);  // must be ignored
    }
    void onMessage(ProcessId, const Message&) override {}
  };
  sim.addProcess(std::make_unique<DoubleDecider>());
  sim.run();
  EXPECT_FALSE(sim.agreementViolated());
  EXPECT_EQ(sim.decision(0).value, 0);
}

TEST(Simulator, StopPredicateEndsRun) {
  SimConfig config;
  config.lockstep = true;  // barrier keeps the queue alive forever
  config.maxTicks = 1000;
  Simulator sim(config, sync());
  auto* p = new Recorder;
  sim.addProcess(std::unique_ptr<Process>(p));
  sim.setStopPredicate(
      [](const Simulator& s) { return s.now() >= 50; });
  sim.run();
  EXPECT_GE(sim.now(), 50u);
  EXPECT_LT(sim.now(), 60u);
  EXPECT_FALSE(sim.hitCap());
}

TEST(Simulator, LockstepBarrierStartsAtTickOne) {
  SimConfig config;
  config.lockstep = true;
  Simulator sim(config, sync());
  auto* p = new Recorder;
  sim.addProcess(std::unique_ptr<Process>(p));
  sim.setStopPredicate([](const Simulator& s) { return s.now() >= 5; });
  sim.run();
  ASSERT_FALSE(p->ticks.empty());
  EXPECT_EQ(p->ticks.front(), 1u);
  for (std::size_t i = 1; i < p->ticks.size(); ++i)
    EXPECT_EQ(p->ticks[i], p->ticks[i - 1] + 1);
}

TEST(Simulator, MaxTickCapReported) {
  SimConfig config;
  config.lockstep = true;
  config.maxTicks = 20;
  Simulator sim(config, sync());
  sim.addProcess(std::make_unique<Recorder>());
  sim.run();
  EXPECT_TRUE(sim.hitCap());
}

TEST(Simulator, ScheduledControlActionsRun) {
  Simulator sim(SimConfig{}, sync());
  sim.addProcess(std::make_unique<Recorder>());
  bool ran = false;
  Tick at = 0;
  sim.schedule(17, [&] {
    ran = true;
    at = sim.now();
  });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(at, 17u);
}

TEST(Simulator, MessageCountersTrackSends) {
  Simulator sim(SimConfig{}, sync());
  sim.addProcess(std::make_unique<Sender>([](Context& ctx) {
    ctx.send(1, std::make_unique<Ping>());
    ctx.send(1, std::make_unique<Ping>());
  }));
  sim.addProcess(std::make_unique<Recorder>(), /*faulty=*/true);
  sim.run();
  EXPECT_EQ(sim.messagesSent(), 2u);
  EXPECT_EQ(sim.messagesSentByCorrect(), 2u);
  EXPECT_EQ(sim.messagesDelivered(), 2u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  // Hash the full delivery schedule (who received what when): identical for
  // equal seeds, different for different seeds.
  auto run = [](std::uint64_t seed) {
    SimConfig config;
    config.seed = seed;
    UniformDelayNetwork::Options net;
    net.minDelay = 1;
    net.maxDelay = 20;
    Simulator sim(config, std::make_unique<UniformDelayNetwork>(net));
    class Chatter : public Process {
     public:
      explicit Chatter(std::uint64_t* hash) : hash_(hash) {}
      void onStart() override { ctx().broadcast(Ping(0)); }
      void onMessage(ProcessId from, const Message&) override {
        *hash_ = *hash_ * 1099511628211ull ^
                 (ctx().now() * 31 + from * 7 + ctx().self());
        if (++count_ < 20) ctx().broadcast(Ping(count_));
      }
      std::uint64_t* hash_;
      int count_ = 0;
    };
    std::uint64_t hash = 14695981039346656037ull;
    for (int i = 0; i < 4; ++i)
      sim.addProcess(std::make_unique<Chatter>(&hash));
    sim.run();
    return std::make_tuple(hash, sim.messagesSent(), sim.eventsProcessed());
  };
  EXPECT_EQ(run(123), run(123));
  EXPECT_NE(run(123), run(456));
}

TEST(UniformDelayNetwork, RespectsBounds) {
  UniformDelayNetwork::Options options;
  options.minDelay = 3;
  options.maxDelay = 9;
  UniformDelayNetwork net(options);
  Rng rng(1);
  std::vector<Tick> delays;
  for (int i = 0; i < 500; ++i) {
    delays.clear();
    net.plan(0, 1, 0, rng, delays);
    ASSERT_EQ(delays.size(), 1u);
    EXPECT_GE(delays[0], 3u);
    EXPECT_LE(delays[0], 9u);
  }
}

TEST(UniformDelayNetwork, DropsAtConfiguredRate) {
  UniformDelayNetwork::Options options;
  options.dropProbability = 0.5;
  UniformDelayNetwork net(options);
  Rng rng(2);
  int dropped = 0;
  std::vector<Tick> delays;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    delays.clear();
    net.plan(0, 1, 0, rng, delays);
    dropped += delays.empty() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / kTrials, 0.5, 0.03);
}

TEST(UniformDelayNetwork, DuplicatesAtConfiguredRate) {
  UniformDelayNetwork::Options options;
  options.duplicateProbability = 0.25;
  UniformDelayNetwork net(options);
  Rng rng(3);
  int duplicated = 0;
  std::vector<Tick> delays;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    delays.clear();
    net.plan(0, 1, 0, rng, delays);
    duplicated += delays.size() == 2 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(duplicated) / kTrials, 0.25, 0.02);
}

TEST(UniformDelayNetwork, RejectsBadOptions) {
  UniformDelayNetwork::Options zeroMin;
  zeroMin.minDelay = 0;
  EXPECT_THROW(UniformDelayNetwork{zeroMin}, std::invalid_argument);
  UniformDelayNetwork::Options inverted;
  inverted.minDelay = 5;
  inverted.maxDelay = 2;
  EXPECT_THROW(UniformDelayNetwork{inverted}, std::invalid_argument);
}

TEST(PartitionedNetwork, SeversCrossGroupLinks) {
  PartitionedNetwork net(std::make_unique<SynchronousNetwork>());
  Rng rng(4);
  std::vector<Tick> delays;

  net.setPartition({0, 0, 1, 1});
  net.plan(0, 2, 0, rng, delays);
  EXPECT_TRUE(delays.empty());  // cross-partition: dropped
  net.plan(0, 1, 0, rng, delays);
  EXPECT_EQ(delays.size(), 1u);  // same partition: delivered

  delays.clear();
  net.clearPartition();
  net.plan(0, 2, 0, rng, delays);
  EXPECT_EQ(delays.size(), 1u);  // healed
}

TEST(PartitionedNetwork, EndToEndPartitionAndHeal) {
  Simulator sim(SimConfig{},
                std::make_unique<PartitionedNetwork>(sync()));
  auto& net = dynamic_cast<PartitionedNetwork&>(sim.network());

  class PeriodicSender : public Process {
   public:
    void onStart() override { tickSend(); }
    void onTimer(TimerId) override { tickSend(); }
    void onMessage(ProcessId, const Message&) override {}
    void tickSend() {
      if (ctx().now() > 20) return;
      ctx().send(1, std::make_unique<Ping>(static_cast<int>(ctx().now())));
      ctx().setTimer(1);
    }
  };
  sim.addProcess(std::make_unique<PeriodicSender>());
  auto* receiver = new Recorder;
  sim.addProcess(std::unique_ptr<Process>(receiver));

  sim.schedule(5, [&net] { net.setPartition({0, 1}); });
  sim.schedule(15, [&net] { net.clearPartition(); });
  sim.run();

  // Messages sent in [5,15) were dropped; the rest arrived.
  for (Tick tick : receiver->receiveTicks) {
    EXPECT_TRUE(tick <= 5 || tick > 15) << "leaked through at " << tick;
  }
  EXPECT_GT(receiver->received.size(), 5u);
  EXPECT_LT(receiver->received.size(), 21u);
}

TEST(Message, CloneIsDeep) {
  Ping original(42);
  auto copy = original.clone();
  const auto* typed = copy->as<Ping>();
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->payload, 42);
  EXPECT_NE(typed, &original);
}

TEST(Message, AsReturnsNullForWrongType) {
  Ping ping(1);
  struct Other final : MessageBase<Other> {
    std::string describe() const override { return "other"; }
  };
  const Message& base = ping;
  EXPECT_EQ(base.as<Other>(), nullptr);
  EXPECT_NE(base.as<Ping>(), nullptr);
}

}  // namespace
}  // namespace ooc

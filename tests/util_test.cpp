// Unit tests for src/util: deterministic RNG, statistics, tables, logging.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ooc {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> buckets(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.below(10)];
  for (int count : buckets) {
    EXPECT_GT(count, kDraws / 10 * 0.9);
    EXPECT_LT(count, kDraws / 10 * 1.1);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.between(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, BetweenSingleton) {
  Rng rng(15);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.between(5, 5), 5);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(21);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, CoinIsFair) {
  Rng rng(23);
  int ones = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ones += rng.coin();
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, 0.5, 0.01);
}

TEST(Rng, SplitIsDeterministic) {
  Rng root(31);
  Rng a = root.split(5);
  Rng b = Rng(31).split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitChildrenAreIndependent) {
  Rng root(33);
  Rng a = root.split(1);
  Rng b = root.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(35), b(35);
  (void)a.split(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Summary, QuantileInterpolates) {
  Summary s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
}

TEST(Summary, EmptyStatisticsAreZero) {
  // Documented contract: every statistic of an empty Summary is 0.0 —
  // benches summarize filtered subsets that can legitimately be empty.
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.quantile(0.0), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.median(), 0.0);
  EXPECT_EQ(s.p95(), 0.0);
  EXPECT_EQ(s.p99(), 0.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.p95(), 7.5);
}

TEST(Summary, QuantileAfterInterleavedAdds) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(1.0);  // must re-sort internally
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.addRow({"x", "1"});
  t.addRow({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Every line has the same width apart from trailing spaces trimmed rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::cell(-7), "-7");
}

TEST(Logging, LevelGate) {
  setLogLevel(LogLevel::kOff);
  EXPECT_EQ(logLevel(), LogLevel::kOff);
  setLogLevel(LogLevel::kWarn);
  EXPECT_EQ(logLevel(), LogLevel::kWarn);
  setLogLevel(LogLevel::kOff);
}

}  // namespace
}  // namespace ooc

// Tier-1 coverage for the causal observability layer: the recorder builds
// a well-formed happens-before DAG (vector clocks, cause and program-order
// edges), recording perturbs nothing (the observed schedule is identical
// with and without the recorder), the structural audit accepts every real
// run and rejects corrupted DAGs, and the ooc.ctrace.v1 / ooc.explain.v1 /
// Perfetto exports are byte-deterministic.
#include <gtest/gtest.h>

#include <string>

#include "check/causal_run.hpp"
#include "check/replay.hpp"
#include "check/scenario.hpp"
#include "obs/causal/causal.hpp"
#include "obs/causal/perfetto.hpp"
#include "obs/causal/provenance.hpp"

namespace ooc {
namespace {

check::Scenario benorScenario() {
  check::Scenario scenario;
  scenario.family = check::Family::kBenOr;
  scenario.benOr.n = 4;
  scenario.benOr.t = 1;
  scenario.benOr.inputs = {0, 1, 1, 1};
  scenario.benOr.seed = 3;
  scenario.benOr.maxDelay = 2;
  return scenario;
}

check::Scenario fdScenario() {
  check::Scenario scenario;
  scenario.family = check::Family::kFd;
  auto& config = scenario.compose;
  config.detector = "benor-vac";
  config.driver = "ct-coordinator";
  config.oracle = "omega";
  config.oracleKnobs.completenessLag = 8;
  config.oracleKnobs.stabilizeAt = 40;
  config.oracleKnobs.noise = 0.25;
  config.n = 3;
  config.seed = 7;
  config.inputs = {0, 1, 0};
  return scenario;
}

causal::TraceMeta meta() { return {"test-run", "test scenario"}; }

TEST(CausalRecorder, RecordingDoesNotPerturbTheSchedule) {
  // The recorded schedule with the causal channel attached is the plain
  // recorded schedule — observation only, goldens stay byte-identical.
  const check::Scenario scenario = benorScenario();
  const check::RecordedRun bare = check::recordRun(scenario);
  const check::CausalRun causal =
      check::collectCausalRun(scenario, &bare.trace);
  EXPECT_TRUE(causal.replayIdentical)
      << causal.divergence.value_or("(no divergence detail)");
  EXPECT_EQ(causal.trace.nodes.size(), bare.trace.events.size());
}

TEST(CausalRecorder, BuildsAnAuditCleanDag) {
  const check::CausalRun run = check::collectCausalRun(benorScenario());
  const causal::CausalAudit audit = causal::audit(run.trace);
  EXPECT_TRUE(audit.ok()) << audit.problems.front();
  EXPECT_EQ(audit.decisions, 4u);
  // The run produced annotations (detector outcomes, driver values).
  EXPECT_FALSE(run.trace.annotations.empty());
}

TEST(CausalRecorder, DeliveriesAreCausedByTheirSends) {
  const check::CausalRun run = check::collectCausalRun(benorScenario());
  const causal::CausalTrace& trace = run.trace;
  std::size_t deliveries = 0;
  for (const causal::CausalNode& node : trace.nodes) {
    if (node.event.kind != TraceEvent::Kind::kDeliver) continue;
    ++deliveries;
    // A delivery's cause is the event during whose handler the message was
    // sent — dispatched on the sender's lane.
    ASSERT_NE(node.cause, kNoCausalParent);
    const causal::CausalNode& sender = trace.nodes[node.cause];
    EXPECT_EQ(sender.lane, static_cast<std::uint32_t>(node.event.b));
  }
  EXPECT_GT(deliveries, 0u);
}

TEST(CausalRecorder, VectorClocksAreStrictlyMonotoneAlongEdges) {
  const check::CausalRun run = check::collectCausalRun(benorScenario());
  const causal::CausalTrace& trace = run.trace;
  for (const causal::CausalNode& node : trace.nodes) {
    for (const std::uint64_t edge : {node.cause, node.prev}) {
      if (edge == kNoCausalParent) continue;
      const causal::CausalNode& parent = trace.nodes[edge];
      bool allLeq = true;
      bool someLess = false;
      for (std::size_t c = 0; c < node.clock.size(); ++c) {
        if (parent.clock[c] > node.clock[c]) allLeq = false;
        if (parent.clock[c] < node.clock[c]) someLess = true;
      }
      EXPECT_TRUE(allLeq && someLess) << "clock not strictly after parent";
    }
  }
}

TEST(CausalRecorder, OracleQueriesAnnotateTheDag) {
  const check::CausalRun run = check::collectCausalRun(fdScenario());
  std::size_t oracleQueries = 0;
  for (const causal::Annotation& a : run.trace.annotations)
    if (a.kind == causal::Annotation::Kind::kOracleQuery) ++oracleQueries;
  EXPECT_GT(oracleQueries, 0u);
  EXPECT_TRUE(causal::audit(run.trace).ok());
}

TEST(CausalAudit, RejectsForwardEdges) {
  check::CausalRun run = check::collectCausalRun(benorScenario());
  ASSERT_GE(run.trace.nodes.size(), 2u);
  run.trace.nodes[0].cause = 1;  // forward: would be a cycle
  const causal::CausalAudit audit = causal::audit(run.trace);
  EXPECT_FALSE(audit.ok());
  EXPECT_NE(audit.problems.front().find("does not point backward"),
            std::string::npos);
}

TEST(CausalAudit, RejectsTamperedClocks) {
  check::CausalRun run = check::collectCausalRun(benorScenario());
  ASSERT_FALSE(run.trace.nodes.empty());
  ++run.trace.nodes.back().clock[0];
  const causal::CausalAudit audit = causal::audit(run.trace);
  EXPECT_FALSE(audit.ok());
  EXPECT_NE(audit.problems.front().find("max-of-parents-plus-one"),
            std::string::npos);
}

TEST(CausalAudit, RejectsUnreachableDecisions) {
  check::CausalRun run = check::collectCausalRun(benorScenario());
  // Cut every decision's incoming edges: no backward path to a start.
  for (causal::CausalNode& node : run.trace.nodes) {
    if (node.event.kind != TraceEvent::Kind::kDecision) continue;
    node.cause = kNoCausalParent;
    node.prev = kNoCausalParent;
  }
  const causal::CausalAudit audit = causal::audit(run.trace);
  EXPECT_FALSE(audit.ok());
  bool sawReachability = false;
  for (const std::string& problem : audit.problems)
    if (problem.find("not reachable from any start") != std::string::npos)
      sawReachability = true;
  EXPECT_TRUE(sawReachability);
}

TEST(CausalExport, CtraceJsonIsDeterministic) {
  const check::CausalRun a = check::collectCausalRun(benorScenario());
  const check::CausalRun b = check::collectCausalRun(benorScenario());
  EXPECT_EQ(causal::toCtraceJson(a.trace, meta()),
            causal::toCtraceJson(b.trace, meta()));
  EXPECT_NE(causal::toCtraceJson(a.trace, meta()).find("ooc.ctrace.v1"),
            std::string::npos);
}

TEST(CausalExport, ExplainJsonIsDeterministicAndNamesEveryDecision) {
  const check::CausalRun a = check::collectCausalRun(benorScenario());
  const check::CausalRun b = check::collectCausalRun(benorScenario());
  const std::string json = causal::explainJson(a.trace, meta());
  EXPECT_EQ(json, causal::explainJson(b.trace, meta()));
  EXPECT_NE(json.find("ooc.explain.v1"), std::string::npos);
  // One "process" key per decision (4 decided processes in the fixture).
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"process\":"); pos != std::string::npos;
       pos = json.find("\"process\":", pos + 1))
    ++count;
  EXPECT_GE(count, 4u);
}

TEST(CausalExport, PerfettoJsonIsDeterministicAndCarriesLanes) {
  const check::CausalRun a = check::collectCausalRun(benorScenario());
  const check::CausalRun b = check::collectCausalRun(benorScenario());
  const std::string json = causal::toPerfettoJson(a.trace, meta());
  EXPECT_EQ(json, causal::toPerfettoJson(b.trace, meta()));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler\""), std::string::npos);
  // Flow arrows bind sends to deliveries.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST(CausalExport, PerfettoFlagsOverlappingRoundSpansUnderOooScheduling) {
  // The compose-ooo-skew-n5 golden's schedule: detached lottery drives
  // outlive the successor round's detector, so per-lane round spans
  // overlap and carry the "(overlaps)" marker. The lockstep run of the
  // same composition must not show any — under the barrier a round's
  // annotations never outlive the next round's first.
  check::Scenario skewed;
  skewed.family = check::Family::kCompose;
  skewed.compose.detector = "benor-vac";
  skewed.compose.driver = "lottery";
  skewed.compose.scheduler = SchedulingPolicy::kOooDriver;
  skewed.compose.n = 5;
  skewed.compose.inputs = {0, 1, 0, 1, 1};
  skewed.compose.maxDelay = 15;
  skewed.compose.seed = 14;

  const check::CausalRun a = check::collectCausalRun(skewed);
  const check::CausalRun b = check::collectCausalRun(skewed);
  const std::string json = causal::toPerfettoJson(a.trace, meta());
  EXPECT_EQ(json, causal::toPerfettoJson(b.trace, meta()));
  EXPECT_NE(json.find("(overlaps)"), std::string::npos);

  check::Scenario lockstep = skewed;
  lockstep.compose.scheduler = SchedulingPolicy::kLockstep;
  const check::CausalRun c = check::collectCausalRun(lockstep);
  EXPECT_EQ(causal::toPerfettoJson(c.trace, meta()).find("(overlaps)"),
            std::string::npos);
}

}  // namespace
}  // namespace ooc

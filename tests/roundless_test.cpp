// Roundless consensus — the pluggable round-scheduling policy across its
// layers (DESIGN.md §14):
//
//  * policy wire names and the RoundScheduler behavior matrix;
//  * structural signatures of real runs — lockstep pins overlap and
//    deferral to zero, event-driven defers without overlapping, the
//    ooo-driver overlaps without deferring;
//  * registry capability gating with the §5-citing diagnostics;
//  * wire purity — nothing serialized when lockstep, full kv/JSON
//    round-trips otherwise, for both compositions and service configs;
//  * the scheduler-coherence invariant, the round-skew exploration
//    strategy, and the shrinker's policy → lockstep reduction.
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "check/scenario.hpp"
#include "check/shrink.hpp"
#include "check/strategy.hpp"
#include "compose/composition.hpp"
#include "compose/registry.hpp"
#include "compose/run.hpp"
#include "core/scheduling.hpp"
#include "svc/run.hpp"

namespace ooc {
namespace {

// ---------------------------------------------------------------------------
// Policy names and scheduler behavior matrix

TEST(SchedulingPolicyNames, WireNamesRoundTrip) {
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kLockstep, SchedulingPolicy::kEventDriven,
        SchedulingPolicy::kOooDriver}) {
    const auto parsed = parseSchedulingPolicy(toString(policy));
    ASSERT_TRUE(parsed.has_value()) << toString(policy);
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parseSchedulingPolicy("roundless").has_value());
  EXPECT_FALSE(parseSchedulingPolicy("").has_value());
  EXPECT_FALSE(parseSchedulingPolicy("Lockstep").has_value());
}

TEST(SchedulingPolicyNames, SchedulerBehaviorMatrix) {
  const auto lockstep = makeRoundScheduler(SchedulingPolicy::kLockstep);
  EXPECT_TRUE(lockstep->advancesInline());
  EXPECT_FALSE(lockstep->detachesCourtesyDrives());
  EXPECT_TRUE(lockstep->forwardsTickBarrier());

  const auto eventDriven = makeRoundScheduler(SchedulingPolicy::kEventDriven);
  EXPECT_FALSE(eventDriven->advancesInline());
  EXPECT_FALSE(eventDriven->detachesCourtesyDrives());
  EXPECT_FALSE(eventDriven->forwardsTickBarrier());

  // Ooo-driver keeps the lockstep frontier (inline advance, barrier
  // forwarded — async objects ignore it) and only detaches the drives.
  const auto ooo = makeRoundScheduler(SchedulingPolicy::kOooDriver);
  EXPECT_TRUE(ooo->advancesInline());
  EXPECT_TRUE(ooo->detachesCourtesyDrives());
  EXPECT_TRUE(ooo->forwardsTickBarrier());

  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kLockstep, SchedulingPolicy::kEventDriven,
        SchedulingPolicy::kOooDriver}) {
    EXPECT_EQ(makeRoundScheduler(policy)->policy(), policy);
  }
}

// ---------------------------------------------------------------------------
// Structural signatures of real runs

compose::Composition skewBase(const std::string& driver,
                              SchedulingPolicy policy) {
  compose::Composition c;
  c.detector = "benor-vac";
  c.driver = driver;
  c.scheduler = policy;
  c.n = 5;
  c.inputs = {0, 1, 0, 1, 1};
  c.maxDelay = 15;
  c.maxRounds = 200;
  c.maxTicks = 200'000;
  return c;
}

TEST(RoundlessRuns, LockstepPinsBothCountersToZero) {
  const auto result = compose::runComposition(
      skewBase("lottery", SchedulingPolicy::kLockstep));
  ASSERT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_TRUE(result.allAuditsOk);
  EXPECT_EQ(result.overlapWitnesses, 0u);
  EXPECT_EQ(result.deferredActivations, 0u);
}

TEST(RoundlessRuns, EventDrivenDefersWithoutOverlapping) {
  // Several seeds: deferral is structural (every successor activation goes
  // through a wakeup), so each decided run must show it; overlap would
  // need detached drives, which this policy never creates.
  bool sawDeferral = false;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    auto c = skewBase("local-coin", SchedulingPolicy::kEventDriven);
    c.seed = seed;
    const auto result = compose::runComposition(c);
    ASSERT_TRUE(result.allDecided) << "seed " << seed;
    EXPECT_FALSE(result.agreementViolated);
    EXPECT_TRUE(result.allAuditsOk);
    EXPECT_EQ(result.overlapWitnesses, 0u) << "seed " << seed;
    sawDeferral |= result.deferredActivations > 0;
  }
  EXPECT_TRUE(sawDeferral);
}

TEST(RoundlessRuns, OooDriverOverlapsWithoutDeferring) {
  // The lottery driver's drive wave needs a message from every process, so
  // detached courtesy drives genuinely outlive the successor detector —
  // seed 14 is the pinned golden's schedule (compose-ooo-skew-n5).
  auto c = skewBase("lottery", SchedulingPolicy::kOooDriver);
  c.seed = 14;
  const auto result = compose::runComposition(c);
  ASSERT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_TRUE(result.allAuditsOk);
  EXPECT_GT(result.overlapWitnesses, 0u);
  EXPECT_EQ(result.deferredActivations, 0u);
  EXPECT_GE(result.maxRoundSkew, 1u);
}

TEST(RoundlessRuns, PoliciesAgreeOnTheDecidedValueSafetyHolds) {
  // Different policies may decide in different rounds (the schedule
  // changes), but every one must decide safely on the same inputs.
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kLockstep, SchedulingPolicy::kEventDriven,
        SchedulingPolicy::kOooDriver}) {
    const auto result =
        compose::runComposition(skewBase("lottery", policy));
    ASSERT_TRUE(result.allDecided) << toString(policy);
    EXPECT_FALSE(result.agreementViolated) << toString(policy);
    EXPECT_FALSE(result.validityViolated) << toString(policy);
  }
}

// ---------------------------------------------------------------------------
// Registry capability gating

TEST(SchedulingGate, LockstepIsAlwaysCoherent) {
  auto& reg = compose::registry();
  for (const std::string& detector : reg.detectorNames()) {
    for (const std::string& driver : reg.driverNames()) {
      if (reg.validatePairing(detector, driver)) continue;
      EXPECT_FALSE(reg.validateScheduling(detector, driver,
                                          SchedulingPolicy::kLockstep))
          << detector << "+" << driver;
    }
  }
}

TEST(SchedulingGate, TimerDriverRejectedUnderSkewWithDiagnostic) {
  const auto diagnostic = compose::registry().validateScheduling(
      "benor-vac", "timer", SchedulingPolicy::kEventDriven);
  ASSERT_TRUE(diagnostic.has_value());
  EXPECT_NE(diagnostic->find("does not tolerate per-process round skew"),
            std::string::npos);
  EXPECT_NE(diagnostic->find("DESIGN.md"), std::string::npos);
}

TEST(SchedulingGate, LockstepObjectsRejectedCitingTheBarrier) {
  const auto diagnostic = compose::registry().validateScheduling(
      "phaseking-ac", "king-conciliator", SchedulingPolicy::kOooDriver);
  ASSERT_TRUE(diagnostic.has_value());
  EXPECT_NE(diagnostic->find("lockstep object"), std::string::npos);
}

TEST(SchedulingGate, RejectedPolicyThrowsFromTheRunner) {
  auto c = skewBase("timer", SchedulingPolicy::kOooDriver);
  EXPECT_THROW(compose::runComposition(c), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Wire purity and round-trips (composition)

TEST(SchedulerWire, NothingSerializedWhenLockstep) {
  auto c = skewBase("lottery", SchedulingPolicy::kLockstep);
  EXPECT_EQ(compose::serialize(c).find("scheduler"), std::string::npos);
  EXPECT_EQ(compose::toJson(c).find("scheduler"), std::string::npos);
}

TEST(SchedulerWire, CompositionKvRoundTripsEveryPolicy) {
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kLockstep, SchedulingPolicy::kEventDriven,
        SchedulingPolicy::kOooDriver}) {
    const auto c = skewBase("lottery", policy);
    const std::string text = compose::serialize(c);
    const auto parsed = compose::parseComposition(text);
    EXPECT_EQ(parsed.scheduler, policy) << toString(policy);
    // A full round-trip re-serializes byte-identically (run-id stability).
    EXPECT_EQ(compose::serialize(parsed), text) << toString(policy);
  }
}

TEST(SchedulerWire, CompositionJsonRoundTripsEveryPolicy) {
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kLockstep, SchedulingPolicy::kEventDriven,
        SchedulingPolicy::kOooDriver}) {
    const auto c = skewBase("lottery", policy);
    const std::string json = compose::toJson(c);
    const auto parsed = compose::fromJson(json);
    EXPECT_EQ(parsed.scheduler, policy) << toString(policy);
    EXPECT_EQ(compose::toJson(parsed), json) << toString(policy);
  }
}

TEST(SchedulerWire, UnknownPolicyNameThrowsOnParse) {
  auto c = skewBase("lottery", SchedulingPolicy::kEventDriven);
  std::string text = compose::serialize(c);
  const auto at = text.find("event-driven");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, std::string("event-driven").size(), "roundless");
  EXPECT_THROW(compose::parseComposition(text), std::runtime_error);
}

TEST(SchedulerWire, ScenarioSerializationCarriesThePolicy) {
  check::Scenario scenario;
  scenario.family = check::Family::kCompose;
  scenario.compose = skewBase("lottery", SchedulingPolicy::kOooDriver);
  const std::string text = check::serialize(scenario);
  const check::Scenario parsed = check::parseScenario(text);
  EXPECT_EQ(parsed.compose.scheduler, SchedulingPolicy::kOooDriver);
  EXPECT_EQ(check::serialize(parsed), text);
}

// ---------------------------------------------------------------------------
// Wire purity and round-trips (service)

svc::SvcConfig svcBase(SchedulingPolicy policy) {
  svc::SvcConfig config;
  config.engine = "compose";
  config.detector = "benor-vac";
  config.driver = "lottery";
  config.scheduler = policy;
  config.n = 5;
  config.seed = 4242;
  config.maxDelay = 6;
  config.service.window = 2;
  config.service.batchMax = 4;
  config.workload.clients = 1000;
  config.workload.commandsPerNode = 8;
  config.workload.closedLoop = true;
  config.workload.thinkMin = 5;
  config.workload.thinkMax = 40;
  config.workload.startSpread = 16;
  return config;
}

TEST(SvcScheduler, NothingSerializedWhenLockstepAndRoundTripsOtherwise) {
  EXPECT_EQ(serializeSvcConfig(svcBase(SchedulingPolicy::kLockstep))
                .find("scheduler"),
            std::string::npos);
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kEventDriven, SchedulingPolicy::kOooDriver}) {
    const std::string text = serializeSvcConfig(svcBase(policy));
    EXPECT_NE(text.find(std::string("scheduler=") + toString(policy)),
              std::string::npos);
    const svc::SvcConfig parsed = svc::parseSvcConfig(text);
    EXPECT_EQ(parsed.scheduler, policy);
    EXPECT_EQ(serializeSvcConfig(parsed), text);
  }
}

TEST(SvcScheduler, EnginesWithoutARoundSchedulerRejectTheKnob) {
  for (const std::string engine : {"paxos", "raft"}) {
    auto config = svcBase(SchedulingPolicy::kEventDriven);
    config.engine = engine;
    const auto diagnostic = svc::validateEngine(config);
    ASSERT_TRUE(diagnostic.has_value()) << engine;
    EXPECT_NE(diagnostic->find("no round scheduler"), std::string::npos)
        << engine;
    // Lockstep (the do-nothing default) stays admissible.
    config.scheduler = SchedulingPolicy::kLockstep;
    EXPECT_FALSE(svc::validateEngine(config).has_value()) << engine;
  }
}

TEST(SvcScheduler, ComposedEngineAdmitsEveryPolicyForSkewTolerantPairings) {
  // The composed engine delegates scheduling admission to the registry's
  // validateScheduling() — today every svc-admissible pairing (async VAC
  // detector + multivalued oracle-free reconciliator) happens to tolerate
  // skew, so the delegation shows up as acceptance; the rejection side of
  // the same gate is pinned by the SchedulingGate tests above. The timer
  // driver is rejected before scheduling is even considered (it is not
  // multivalued), whatever the policy.
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kLockstep, SchedulingPolicy::kEventDriven,
        SchedulingPolicy::kOooDriver}) {
    for (const std::string driver : {"lottery", "keep-value"}) {
      auto config = svcBase(policy);
      config.driver = driver;
      EXPECT_FALSE(svc::validateEngine(config).has_value())
          << driver << " under " << toString(policy);
    }
    auto rejected = svcBase(policy);
    rejected.driver = "timer";
    const auto diagnostic = svc::validateEngine(rejected);
    ASSERT_TRUE(diagnostic.has_value()) << toString(policy);
    EXPECT_NE(diagnostic->find("not multivalued"), std::string::npos)
        << toString(policy);
  }
}

TEST(SvcScheduler, ComposedServiceRunsUnderEventDrivenScheduling) {
  const svc::SvcResult result =
      svc::runSvc(svcBase(SchedulingPolicy::kEventDriven));
  EXPECT_TRUE(result.prefixOk);
  EXPECT_TRUE(result.exactlyOnce);
  EXPECT_TRUE(result.allApplied);
  EXPECT_EQ(result.commandsCommitted, 40u);
}

// ---------------------------------------------------------------------------
// Scheduler-coherence invariant

check::RunReport skewReport(std::uint64_t overlaps, std::uint64_t deferrals) {
  check::RunReport report;
  report.allDecided = true;
  report.overlapWitnesses = overlaps;
  report.deferredActivations = deferrals;
  return report;
}

TEST(SchedulerCoherence, FiresOnStructurallyImpossibleCounters) {
  const check::SchedulerCoherenceInvariant invariant;
  check::Scenario scenario;
  scenario.family = check::Family::kCompose;
  scenario.compose = skewBase("lottery", SchedulingPolicy::kLockstep);

  // Lockstep: any overlap or deferral is a RoundScheduler regression.
  EXPECT_TRUE(invariant.check(scenario, skewReport(1, 0)).has_value());
  EXPECT_TRUE(invariant.check(scenario, skewReport(0, 1)).has_value());
  EXPECT_FALSE(invariant.check(scenario, skewReport(0, 0)).has_value());

  // Event-driven never detaches drives: overlap fires, deferral is fine.
  scenario.compose.scheduler = SchedulingPolicy::kEventDriven;
  EXPECT_TRUE(invariant.check(scenario, skewReport(1, 5)).has_value());
  EXPECT_FALSE(invariant.check(scenario, skewReport(0, 5)).has_value());

  // Ooo-driver advances inline: deferral fires, overlap is the point.
  scenario.compose.scheduler = SchedulingPolicy::kOooDriver;
  EXPECT_TRUE(invariant.check(scenario, skewReport(5, 1)).has_value());
  EXPECT_FALSE(invariant.check(scenario, skewReport(5, 0)).has_value());
}

TEST(SchedulerCoherence, OtherFamiliesAreOutOfScope) {
  const check::SchedulerCoherenceInvariant invariant;
  check::Scenario scenario;
  scenario.family = check::Family::kBenOr;
  // Even nonsense counters cannot fire outside compose/fd — the legacy
  // families have no scheduler to be incoherent about.
  EXPECT_FALSE(invariant.check(scenario, skewReport(7, 7)).has_value());
}

TEST(SchedulerCoherence, IsPartOfTheSafetySuite) {
  const auto suite = check::safetySuite();
  bool present = false;
  for (const auto& invariant : suite)
    present |= std::string(invariant->name()) == "scheduler-coherence";
  EXPECT_TRUE(present);
}

// ---------------------------------------------------------------------------
// Round-skew exploration strategy

check::Scenario skewScenario(const std::string& driver) {
  check::Scenario scenario;
  scenario.family = check::Family::kCompose;
  scenario.compose = skewBase(driver, SchedulingPolicy::kLockstep);
  return scenario;
}

TEST(RoundSkewStrategy, EnumeratesTheFullGridForASkewTolerantPairing) {
  check::RoundSkewStrategy::Options options;
  const check::RoundSkewStrategy strategy(skewScenario("lottery"), options);
  // 3 policies x 3 delay bounds x 2 adversary budgets x 4 seeds.
  EXPECT_EQ(strategy.size(), 3u * 3u * 2u * 4u);

  const check::Scenario first = strategy.generate(0);
  EXPECT_EQ(first.compose.scheduler, SchedulingPolicy::kLockstep);
  EXPECT_EQ(first.compose.maxDelay, 4u);
  EXPECT_EQ(first.compose.adversary.extraDelayMax, 0u);

  const check::Scenario last = strategy.generate(strategy.size() - 1);
  EXPECT_EQ(last.compose.scheduler, SchedulingPolicy::kOooDriver);
  EXPECT_EQ(last.compose.maxDelay, 25u);
  EXPECT_GT(last.compose.adversary.extraDelayMax, 0u);
}

TEST(RoundSkewStrategy, RegistryRejectedPoliciesAreDroppedFromTheGrid) {
  check::RoundSkewStrategy::Options options;
  const check::RoundSkewStrategy strategy(skewScenario("timer"), options);
  // The timer reconciliator only tolerates lockstep: one policy survives.
  EXPECT_EQ(strategy.size(), 1u * 3u * 2u * 4u);
  for (std::size_t i = 0; i < strategy.size(); ++i) {
    EXPECT_EQ(strategy.generate(i).compose.scheduler,
              SchedulingPolicy::kLockstep);
  }
}

TEST(RoundSkewStrategy, EveryGeneratedScenarioRunsCleanly) {
  // The strategy's whole point: each index is a registry-valid scenario.
  // Spot-check one seed per cell against the safety suite.
  check::RoundSkewStrategy::Options options;
  options.seedsPerCell = 1;
  options.maxDelays = {4};
  const check::RoundSkewStrategy strategy(skewScenario("lottery"), options);
  const auto suite = check::safetySuite();
  for (std::size_t i = 0; i < strategy.size(); ++i) {
    const check::Scenario scenario = strategy.generate(i);
    const check::RunReport report = check::runScenario(scenario);
    for (const auto& invariant : suite) {
      EXPECT_FALSE(invariant->check(scenario, report).has_value())
          << invariant->name() << " at index " << i;
    }
  }
}

TEST(RoundSkewStrategy, RejectsForeignFamiliesAndUnknownPolicies) {
  check::Scenario raft;
  raft.family = check::Family::kRaft;
  EXPECT_THROW(check::RoundSkewStrategy(raft, {}), std::invalid_argument);

  check::RoundSkewStrategy::Options unknown;
  unknown.policies = {"roundless"};
  EXPECT_THROW(check::RoundSkewStrategy(skewScenario("lottery"), unknown),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Shrinking: the policy is a reduction dimension

TEST(RoundSkewShrink, PlantedBugShrinksBackToLockstep) {
  // The planted VAC-coherence bug violates the audit under every policy,
  // so the shrinker must take the scheduler → lockstep reduction (the
  // policy was never the cause).
  check::Scenario scenario = skewScenario("lottery");
  scenario.compose.scheduler = SchedulingPolicy::kOooDriver;
  scenario.compose.fault = compose::PlantedFault::kVacAdoptFlip;

  // Not every seed tickles the flip into a visible violation; walk seeds
  // until one does (the checker's random-walk strategy does the same).
  const auto suite = check::safetySuite();
  const check::Invariant* fired = nullptr;
  for (std::uint64_t seed = 1; seed <= 200 && fired == nullptr; ++seed) {
    scenario.setSeed(seed);
    const check::RunReport report = check::runScenario(scenario);
    for (const auto& invariant : suite) {
      if (invariant->check(scenario, report)) {
        fired = invariant.get();
        break;
      }
    }
  }
  ASSERT_NE(fired, nullptr) << "planted bug was not detected in 200 seeds";

  const check::ShrinkResult shrunk =
      check::shrinkCounterexample(scenario, *fired, {});
  EXPECT_EQ(shrunk.scenario.compose.scheduler, SchedulingPolicy::kLockstep);
  EXPECT_TRUE(fired
                  ->check(shrunk.scenario,
                          check::runScenario(shrunk.scenario))
                  .has_value());
}

}  // namespace
}  // namespace ooc

// Unit tests for the simulated stable-storage subsystem (src/store/): CRC
// integrity, the sync() durability barrier, crash fault injection (lost
// tails, torn tails, corrupted records) and recovery semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "store/wal.hpp"
#include "util/rng.hpp"

namespace ooc::store {
namespace {

TEST(Crc32, KnownVector) {
  // The CRC-32/IEEE check value: crc32("123456789") == 0xCBF43926.
  const char* text = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(text), 9),
            0xCBF43926u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint32_t clean = crc32(bytes.data(), bytes.size());
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[at] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(crc32(bytes.data(), bytes.size()), clean);
      bytes[at] ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
}

TEST(WriteAheadLog, SyncedRecordsRoundTrip) {
  WriteAheadLog wal;
  wal.append({1, 2, 3});
  wal.append({});
  wal.append({0xFFFF'FFFF'FFFF'FFFFull});
  wal.sync();

  RecoveryReport report;
  const auto records = wal.recover(&report);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(records[1].empty());
  EXPECT_EQ(records[2], (std::vector<std::uint64_t>{0xFFFF'FFFF'FFFF'FFFFull}));
  EXPECT_EQ(report.recordsRecovered, 3u);
  EXPECT_FALSE(report.tornTail);
  EXPECT_EQ(report.corruptRecords, 0u);
  EXPECT_EQ(report.bytesDiscarded, 0u);
}

TEST(WriteAheadLog, UnsyncedRecordsLostOnCrash) {
  WriteAheadLog wal;  // no fault injection: the whole tail vanishes
  wal.append({1});
  wal.sync();
  wal.append({2});
  wal.append({3});

  Rng rng(7);
  wal.crash(rng);
  const auto records = wal.recover();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], (std::vector<std::uint64_t>{1}));
}

TEST(WriteAheadLog, SyncIsADurabilityBarrier) {
  WriteAheadLog wal;
  wal.append({1});
  EXPECT_GT(wal.pendingBytes(), 0u);
  EXPECT_EQ(wal.durableBytes(), 0u);
  wal.sync();
  EXPECT_EQ(wal.pendingBytes(), 0u);
  EXPECT_GT(wal.durableBytes(), 0u);
}

TEST(WriteAheadLog, TornTailNeverYieldsAPartialRecord) {
  // With tornTailProbability = 1 a crash flushes a random prefix of the
  // pending tail. Whatever survives must parse as complete records whose
  // payloads match what was appended — never a half-written one.
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    FaultConfig faults;
    faults.tornTailProbability = 1.0;
    WriteAheadLog wal(faults);
    wal.append({10});
    wal.sync();
    wal.append({20, 21});
    wal.append({30, 31, 32});

    Rng rng(seed);
    wal.crash(rng);
    RecoveryReport report;
    const auto records = wal.recover(&report);
    ASSERT_GE(records.size(), 1u);
    ASSERT_LE(records.size(), 3u);
    EXPECT_EQ(records[0], (std::vector<std::uint64_t>{10}));
    if (records.size() >= 2)
      EXPECT_EQ(records[1], (std::vector<std::uint64_t>{20, 21}));
    if (records.size() == 3)
      EXPECT_EQ(records[2], (std::vector<std::uint64_t>{30, 31, 32}));
  }
}

TEST(WriteAheadLog, CorruptionTruncatesAtTheDamage) {
  // With corruptProbability = 1 a crash flips one bit somewhere in the
  // durable image. Recovery must never return a record at or past the
  // damage, and must flag the run as corrupt (or torn, if the flip hit a
  // length field and derailed framing).
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    FaultConfig faults;
    faults.corruptProbability = 1.0;
    WriteAheadLog wal(faults);
    wal.append({1, 11});
    wal.append({2, 22});
    wal.append({3, 33});
    wal.sync();

    Rng rng(seed);
    wal.crash(rng);
    RecoveryReport report;
    const auto records = wal.recover(&report);
    EXPECT_LT(records.size(), 3u);
    EXPECT_TRUE(report.corruptRecords > 0 || report.tornTail);
    EXPECT_GT(report.bytesDiscarded, 0u);
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i],
                (std::vector<std::uint64_t>{i + 1, (i + 1) * 11}));
    }
  }
}

TEST(WriteAheadLog, RecoverySelfHealsAndIsIdempotent) {
  FaultConfig faults;
  faults.corruptProbability = 1.0;
  WriteAheadLog wal(faults);
  wal.append({1});
  wal.append({2});
  wal.append({3});
  wal.sync();
  Rng rng(3);
  wal.crash(rng);

  RecoveryReport first;
  const auto once = wal.recover(&first);
  // The first recovery truncated the journal to its clean prefix; a second
  // recovery sees a healthy log with the same contents.
  RecoveryReport second;
  const auto twice = wal.recover(&second);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(second.corruptRecords, 0u);
  EXPECT_FALSE(second.tornTail);
  EXPECT_EQ(second.bytesDiscarded, 0u);
  EXPECT_EQ(second.recordsRecovered, first.recordsRecovered);
}

TEST(WriteAheadLog, CrashIsDeterministicInTheRng) {
  FaultConfig faults;
  faults.tornTailProbability = 0.5;
  faults.corruptProbability = 0.5;
  const auto run = [&faults](std::uint64_t seed) {
    WriteAheadLog wal(faults);
    for (std::uint64_t i = 0; i < 6; ++i) wal.append({i, i * 3});
    wal.sync();
    for (std::uint64_t i = 0; i < 3; ++i) wal.append({100 + i});
    Rng rng(seed);
    wal.crash(rng);
    RecoveryReport report;
    auto records = wal.recover(&report);
    return std::make_pair(std::move(records), report.bytesDiscarded);
  };
  for (std::uint64_t seed = 1; seed <= 16; ++seed)
    EXPECT_EQ(run(seed), run(seed)) << "seed " << seed;
}

TEST(WriteAheadLog, CountersTrackOperations) {
  WriteAheadLog wal;
  EXPECT_EQ(wal.appends(), 0u);
  EXPECT_EQ(wal.syncs(), 0u);
  EXPECT_EQ(wal.crashes(), 0u);
  wal.append({1});
  wal.append({2});
  wal.sync();
  Rng rng(1);
  wal.crash(rng);
  EXPECT_EQ(wal.appends(), 2u);
  EXPECT_EQ(wal.syncs(), 1u);
  EXPECT_EQ(wal.crashes(), 1u);
}

TEST(WriteAheadLog, EmptyLogRecoversToNothing) {
  WriteAheadLog wal;
  RecoveryReport report;
  EXPECT_TRUE(wal.recover(&report).empty());
  EXPECT_EQ(report.recordsRecovered, 0u);
  EXPECT_FALSE(report.tornTail);
  Rng rng(1);
  wal.crash(rng);  // crash with nothing buffered is a no-op
  EXPECT_TRUE(wal.recover().empty());
}

}  // namespace
}  // namespace ooc::store

// Raft tests: leader election, consensus via the D&S(v) command (paper
// Algorithms 7-9), safety under crashes / message loss / partitions, the
// VAC instrumentation (Algorithms 10-11), and the replicated KV store.
#include <gtest/gtest.h>

#include <memory>

#include "harness/scenarios.hpp"
#include "raft/kv_store.hpp"
#include "sim/simulator.hpp"

namespace ooc {
namespace {

using harness::RaftScenarioConfig;
using harness::RaftScenarioResult;
using harness::runRaft;

void expectClean(const RaftScenarioResult& result) {
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_FALSE(result.validityViolated);
  EXPECT_TRUE(result.confidenceOrderOk);
  EXPECT_TRUE(result.commitValuesAgree);
}

TEST(RaftConsensus, QuietNetworkDecides) {
  RaftScenarioConfig config;
  config.n = 5;
  config.seed = 1;
  const RaftScenarioResult result = runRaft(config);
  expectClean(result);
  EXPECT_GT(result.leaderships, 0u);
}

TEST(RaftConsensus, SingleNodeDecidesAlone) {
  RaftScenarioConfig config;
  config.n = 1;
  config.inputs = {7};
  const RaftScenarioResult result = runRaft(config);
  expectClean(result);
  EXPECT_EQ(result.decidedValue, 7);
}

TEST(RaftConsensus, ThreeNodeClusters) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RaftScenarioConfig config;
    config.n = 3;
    config.seed = seed;
    const RaftScenarioResult result = runRaft(config);
    expectClean(result);
  }
}

class RaftSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RaftSweep, FiveNodesWithLoss) {
  RaftScenarioConfig config;
  config.n = 5;
  config.seed = GetParam();
  config.dropProbability = 0.05;
  config.duplicateProbability = 0.05;
  const RaftScenarioResult result = runRaft(config);
  expectClean(result);
}

TEST_P(RaftSweep, MinorityCrashes) {
  RaftScenarioConfig config;
  config.n = 5;
  config.seed = GetParam();
  // Crash two nodes (minority) at awkward times, including a likely
  // early leader.
  config.crashes = {{0, 400}, {1, 800}};
  const RaftScenarioResult result = runRaft(config);
  expectClean(result);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaftSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(RaftConsensus, SurvivesPartitionAndHeal) {
  RaftScenarioConfig config;
  config.n = 5;
  config.seed = 3;
  // Partition a minority {3,4} away early, heal later; the majority side
  // must commit and, after healing, the minority must converge to the same
  // decision.
  config.partitions.push_back({50, {0, 0, 0, 1, 1}});
  config.partitions.push_back({4000, {}});
  const RaftScenarioResult result = runRaft(config);
  expectClean(result);
}

TEST(RaftConsensus, MajorityPartitionBlocksThenHeals) {
  RaftScenarioConfig config;
  config.n = 5;
  config.seed = 5;
  // No quorum anywhere: 2/2/1 split. Nothing may commit during the split;
  // after healing, consensus completes.
  config.partitions.push_back({50, {0, 0, 1, 1, 2}});
  config.partitions.push_back({6000, {}});
  config.maxTicks = 600000;
  const RaftScenarioResult result = runRaft(config);
  expectClean(result);
  EXPECT_GT(result.firstDecisionTick, 50u);
}

TEST(RaftConsensus, LeaderCrashTriggersReElection) {
  // Let a leader emerge, then kill whichever node decided first... since we
  // can't know the leader a priori, crash node 0 late and widen timeouts —
  // across seeds, sometimes node 0 is the leader, and the cluster must
  // recover regardless.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RaftScenarioConfig config;
    config.n = 5;
    config.seed = seed;
    config.crashes = {{0, 600}};
    const RaftScenarioResult result = runRaft(config);
    expectClean(result);
  }
}

TEST(RaftConsensus, HeavyLossStillLive) {
  RaftScenarioConfig config;
  config.n = 5;
  config.seed = 11;
  config.dropProbability = 0.25;
  config.maxTicks = 1'000'000;
  const RaftScenarioResult result = runRaft(config);
  expectClean(result);
}

TEST(RaftConsensus, TightTimeoutsCauseMoreElections) {
  // The paper's timing property ablation: squeezing the election timeout
  // towards the broadcast time produces contention (more elections) while
  // safety holds.
  RaftScenarioConfig relaxed;
  relaxed.n = 5;
  relaxed.seed = 13;
  relaxed.raft.electionTimeoutMin = 150;
  relaxed.raft.electionTimeoutMax = 300;

  RaftScenarioConfig tight = relaxed;
  tight.raft.electionTimeoutMin = 12;
  tight.raft.electionTimeoutMax = 18;
  tight.raft.heartbeatInterval = 6;
  tight.maxTicks = 1'000'000;

  const RaftScenarioResult relaxedResult = runRaft(relaxed);
  const RaftScenarioResult tightResult = runRaft(tight);
  expectClean(relaxedResult);
  EXPECT_FALSE(tightResult.agreementViolated);
  EXPECT_GE(tightResult.electionsStarted, relaxedResult.electionsStarted);
}

TEST(RaftConsensus, ValidityDecidedValueIsSomeInput) {
  for (std::uint64_t seed = 20; seed <= 30; ++seed) {
    RaftScenarioConfig config;
    config.n = 4;
    config.inputs = {10, 20, 30, 40};
    config.seed = seed;
    const RaftScenarioResult result = runRaft(config);
    expectClean(result);
    EXPECT_TRUE(result.decidedValue == 10 || result.decidedValue == 20 ||
                result.decidedValue == 30 || result.decidedValue == 40);
  }
}

TEST(RaftConsensus, ReconciliatorInvocationsAccounted) {
  RaftScenarioConfig config;
  config.n = 5;
  config.seed = 2;
  const RaftScenarioResult result = runRaft(config);
  expectClean(result);
  // At least the first election timeout of the first candidate.
  EXPECT_GE(result.reconciliatorInvocations, 1u);
  EXPECT_GT(result.confidenceTransitions, 0u);
}

TEST(RaftConsensus, DeterministicAcrossRuns) {
  RaftScenarioConfig config;
  config.n = 5;
  config.seed = 17;
  config.dropProbability = 0.1;
  const RaftScenarioResult a = runRaft(config);
  const RaftScenarioResult b = runRaft(config);
  EXPECT_EQ(a.decidedValue, b.decidedValue);
  EXPECT_EQ(a.firstDecisionTick, b.firstDecisionTick);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.electionsStarted, b.electionsStarted);
}

// ---------------------------------------------------------------------------
// Replicated KV store (log replication beyond the single D&S command)

class KvHarness {
 public:
  explicit KvHarness(std::size_t n, std::uint64_t seed) {
    SimConfig simConfig;
    simConfig.seed = seed;
    simConfig.maxTicks = 200000;
    UniformDelayNetwork::Options net;
    net.minDelay = 1;
    net.maxDelay = 5;
    sim = std::make_unique<Simulator>(
        simConfig, std::make_unique<UniformDelayNetwork>(net));
    for (std::size_t i = 0; i < n; ++i) {
      auto node = std::make_unique<raft::KvStoreNode>(raft::RaftConfig{});
      nodes.push_back(node.get());
      sim->addProcess(std::move(node));
    }
  }

  raft::KvStoreNode* leader() {
    for (auto* node : nodes)
      if (node->role() == raft::Role::kLeader) return node;
    return nullptr;
  }

  std::unique_ptr<Simulator> sim;
  std::vector<raft::KvStoreNode*> nodes;
};

TEST(RaftKvStore, ReplicatesCommands) {
  KvHarness h(5, 1);
  // Drive: once a leader exists, submit writes; stop when all nodes have
  // applied them all.
  h.sim->schedule(2000, [&h] {
    auto* leader = h.leader();
    ASSERT_NE(leader, nullptr) << "no leader by tick 2000";
    for (std::uint32_t k = 0; k < 10; ++k) EXPECT_TRUE(leader->set(k, k * k));
  });
  h.sim->setStopPredicate([&h](const Simulator&) {
    for (auto* node : h.nodes)
      if (node->appliedCount() < 10) return false;
    return true;
  });
  h.sim->run();

  for (auto* node : h.nodes) {
    ASSERT_EQ(node->appliedCount(), 10u);
    for (std::uint32_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(node->data().contains(k));
      EXPECT_EQ(node->data().at(k), k * k);
    }
  }
}

TEST(RaftKvStore, LogMatchingAcrossNodes) {
  KvHarness h(5, 2);
  h.sim->schedule(2000, [&h] {
    auto* leader = h.leader();
    ASSERT_NE(leader, nullptr);
    for (std::uint32_t k = 0; k < 5; ++k) leader->set(k, k + 100);
  });
  h.sim->setStopPredicate([&h](const Simulator&) {
    for (auto* node : h.nodes)
      if (node->appliedCount() < 5) return false;
    return true;
  });
  h.sim->run();

  // Log Matching: committed prefixes are identical everywhere.
  const auto& reference = h.nodes[0]->log();
  const auto commit = h.nodes[0]->commitIndex();
  for (auto* node : h.nodes) {
    ASSERT_GE(node->log().size(), commit);
    for (raft::LogIndex i = 0; i < commit; ++i)
      EXPECT_EQ(node->log()[i], reference[i]) << "log divergence at " << i;
  }
}

TEST(RaftKvStore, FollowerRejoinsAfterPartition) {
  SimConfig simConfig;
  simConfig.seed = 3;
  simConfig.maxTicks = 300000;
  UniformDelayNetwork::Options net;
  net.minDelay = 1;
  net.maxDelay = 5;
  auto partitioned = std::make_unique<PartitionedNetwork>(
      std::make_unique<UniformDelayNetwork>(net));
  auto* handle = partitioned.get();
  Simulator sim(simConfig, std::move(partitioned));
  std::vector<raft::KvStoreNode*> nodes;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<raft::KvStoreNode>(raft::RaftConfig{});
    nodes.push_back(node.get());
    sim.addProcess(std::move(node));
  }
  // Isolate node 2; write on the majority side; heal; node 2 must catch up.
  sim.schedule(1500, [handle] { handle->setPartition({0, 0, 1}); });
  sim.schedule(2500, [&nodes] {
    for (auto* node : nodes) {
      if (node->role() == raft::Role::kLeader) {
        for (std::uint32_t k = 0; k < 6; ++k) node->set(k, k);
      }
    }
  });
  sim.schedule(8000, [handle] { handle->clearPartition(); });
  sim.setStopPredicate([&nodes](const Simulator&) {
    for (auto* node : nodes)
      if (node->appliedCount() < 6) return false;
    return true;
  });
  sim.run();
  for (auto* node : nodes) EXPECT_EQ(node->appliedCount(), 6u);
}

}  // namespace
}  // namespace ooc

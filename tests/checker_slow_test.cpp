// Large-scale model-checking sweeps. Labeled `slow` in ctest and skipped
// unless OOC_RUN_SLOW=1, so tier-1 runs stay fast; CI's scheduled job and
// scripts/check.sh cover this ground. OOC_CHECK_SEEDS overrides the sweep
// size (default 10000 random-walk configurations per family).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "check/checker.hpp"
#include "check/invariant.hpp"
#include "check/scenario.hpp"
#include "check/strategy.hpp"

namespace ooc::check {
namespace {

std::size_t sweepSize() {
  if (const char* env = std::getenv("OOC_CHECK_SEEDS"))
    return static_cast<std::size_t>(std::stoull(env));
  return 10000;
}

#define OOC_REQUIRE_SLOW()                                       \
  do {                                                           \
    if (std::getenv("OOC_RUN_SLOW") == nullptr)                  \
      GTEST_SKIP() << "set OOC_RUN_SLOW=1 to run big sweeps";    \
  } while (0)

Scenario familyBase(Family family) {
  Scenario scenario;
  scenario.family = family;
  if (family == Family::kBenOr) {
    auto& config = scenario.benOr;
    config.inputs.resize(config.n);
    for (std::size_t i = 0; i < config.n; ++i)
      config.inputs[i] = static_cast<Value>(i % 2);
  }
  return scenario;
}

void sweep(Family family) {
  RandomWalkStrategy::Options options;
  options.runs = sweepSize();
  const RandomWalkStrategy strategy(familyBase(family), options);
  const auto suite = safetySuite();
  const CheckReport report = explore(strategy, view(suite), {});
  EXPECT_EQ(report.configsExplored, options.runs);
  EXPECT_TRUE(report.ok())
      << report.findings.front().violation.invariant << " at index "
      << report.findings.front().configIndex << ": "
      << report.findings.front().violation.detail;
}

TEST(SlowSweep, BenOrTenThousandSeedsClean) {
  OOC_REQUIRE_SLOW();
  sweep(Family::kBenOr);
}

TEST(SlowSweep, PhaseKingTenThousandSeedsClean) {
  OOC_REQUIRE_SLOW();
  sweep(Family::kPhaseKing);
}

TEST(SlowSweep, RaftTenThousandSeedsClean) {
  OOC_REQUIRE_SLOW();
  sweep(Family::kRaft);
}

}  // namespace
}  // namespace ooc::check

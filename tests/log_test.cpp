// Sequential replicated-log tests (src/log): the idle-quiescence
// regression, the prefix property under crashes, exactly-once commit, and
// the documented (weaker) contract of a non-durable crash-restart. The
// pipelined service generalization is covered by svc_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "benor/reconciliators.hpp"
#include "benor/vac.hpp"
#include "log/replicated_log.hpp"
#include "sim/simulator.hpp"

namespace ooc {
namespace {

struct LogRun {
  std::vector<log::ReplicatedLogNode*> nodes;
  Simulator sim;
};

struct LogRunResult {
  bool hitCap = false;
  Tick lastTick = 0;
  std::vector<std::vector<Value>> logs;       // full, no-ops included
  std::vector<std::vector<Value>> committed;  // no-ops excluded
};

/// Builds an n-node Ben-Or-VAC + lottery log cluster with the given
/// per-node workloads and runs it. No stop predicate: since idle
/// detection, a drained cluster quiesces by itself and run() returns when
/// the event queue empties.
LogRunResult runLog(const std::vector<std::vector<Value>>& workloads,
                    std::uint64_t seed,
                    std::vector<std::pair<ProcessId, Tick>> crashes = {},
                    std::vector<std::pair<ProcessId, Tick>> restarts = {},
                    Tick maxTicks = 2'000'000) {
  const std::size_t n = workloads.size();
  SimConfig simConfig;
  simConfig.seed = seed;
  simConfig.maxTicks = maxTicks;
  UniformDelayNetwork::Options net;
  net.minDelay = 1;
  net.maxDelay = 8;
  Simulator sim(simConfig, std::make_unique<UniformDelayNetwork>(net));

  const std::size_t t = (n - 1) / 2;
  std::vector<log::ReplicatedLogNode*> nodes;
  for (ProcessId id = 0; id < n; ++id) {
    auto node = std::make_unique<log::ReplicatedLogNode>(
        workloads[id],
        [t](std::uint64_t) { return benor::BenOrVac::factory(t); },
        [t, seed](std::uint64_t slot) {
          return benor::LotteryReconciliator::factory(
              t, seed ^ (slot * 0x9E3779B97F4A7C15ull));
        },
        log::ReplicatedLogNode::Options{});
    nodes.push_back(node.get());
    sim.addProcess(std::move(node));
  }
  for (const auto& [id, tick] : crashes) sim.crashAt(id, tick);
  for (const auto& [id, tick] : restarts) sim.restartAt(id, tick, 60);
  sim.run();

  LogRunResult result;
  result.hitCap = sim.hitCap();
  result.lastTick = sim.now();
  for (const auto* node : nodes) {
    result.logs.push_back(node->log());
    result.committed.push_back(node->committedCommands());
  }
  return result;
}

std::vector<std::vector<Value>> evenWorkloads(std::size_t n,
                                              std::uint32_t perNode) {
  std::vector<std::vector<Value>> workloads(n);
  for (ProcessId id = 0; id < n; ++id)
    for (std::uint32_t k = 0; k < perNode; ++k)
      workloads[id].push_back(log::makeCommand(id, k + 1));
  return workloads;
}

bool isPrefix(const std::vector<Value>& shorter,
              const std::vector<Value>& longer) {
  return shorter.size() <= longer.size() &&
         std::equal(shorter.begin(), shorter.end(), longer.begin());
}

// The no-op-forever regression: before idle detection, drained nodes kept
// opening slots (proposing no-ops) until Options::maxSlots, so a finite
// workload produced an unbounded no-op tail and the run never quiesced.
// With idle detection the cluster must stop on its own, promptly, with a
// bounded log.
TEST(ReplicatedLog, DrainedClusterQuiesces) {
  const auto workloads = evenWorkloads(3, 4);
  const LogRunResult result = runLog(workloads, /*seed=*/7);
  ASSERT_FALSE(result.hitCap);
  // Every command committed at every node...
  for (const auto& committed : result.committed)
    EXPECT_EQ(committed.size(), 12u);
  // ...and the log did not grow a no-op tail after draining: slots are
  // bounded by total commands plus the no-ops lost to races while work
  // was still pending.
  EXPECT_LE(result.logs[0].size(), 3 * 12u);
  // Quiescence happened promptly, not at the tick cap.
  EXPECT_LT(result.lastTick, 100'000u);
}

TEST(ReplicatedLog, LogsIdenticalAndExactlyOnceFaultFree) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto workloads = evenWorkloads(5, 3);
    const LogRunResult result = runLog(workloads, seed);
    ASSERT_FALSE(result.hitCap) << "seed " << seed;
    for (std::size_t id = 1; id < result.logs.size(); ++id)
      EXPECT_EQ(result.logs[id], result.logs[0]) << "seed " << seed;
    // Exactly once: each of the 15 commands appears exactly once.
    std::map<Value, int> count;
    for (Value cmd : result.committed[0]) ++count[cmd];
    EXPECT_EQ(count.size(), 15u) << "seed " << seed;
    for (const auto& [cmd, c] : count)
      EXPECT_EQ(c, 1) << "command " << cmd << " seed " << seed;
  }
}

// A node with no client commands of its own must not invent slots; it
// joins peers' slots reactively (proposing no-ops) and still learns the
// full log.
TEST(ReplicatedLog, IdleNodeJoinsReactively) {
  auto workloads = evenWorkloads(3, 4);
  workloads[2].clear();
  const LogRunResult result = runLog(workloads, /*seed=*/11);
  ASSERT_FALSE(result.hitCap);
  EXPECT_EQ(result.logs[2], result.logs[0]);
  EXPECT_EQ(result.committed[0].size(), 8u);
}

// Prefix property under a permanent crash: the crashed node's log is
// frozen at crash time but must remain a prefix of the survivors' logs
// (decided slots are final); survivors still commit all THEIR commands.
TEST(ReplicatedLog, CrashedNodeLogIsPrefixOfSurvivors) {
  for (std::uint64_t seed = 20; seed <= 24; ++seed) {
    const auto workloads = evenWorkloads(5, 3);
    const LogRunResult result =
        runLog(workloads, seed, /*crashes=*/{{1, 120}});
    ASSERT_FALSE(result.hitCap) << "seed " << seed;
    const auto& reference = result.logs[0];
    for (ProcessId id = 0; id < 5; ++id) {
      if (id == 1) {
        EXPECT_TRUE(isPrefix(result.logs[1], reference)) << "seed " << seed;
      } else {
        EXPECT_EQ(result.logs[id], reference) << "seed " << seed;
      }
    }
    // Survivors' commands all committed exactly once.
    std::map<Value, int> count;
    for (Value cmd : result.committed[0]) ++count[cmd];
    for (ProcessId id = 0; id < 5; ++id) {
      if (id == 1) continue;
      for (Value cmd : workloads[id])
        EXPECT_EQ(count[cmd], 1) << "seed " << seed;
    }
  }
}

// Crash-restart schedule: the sequential log is non-durable, so a restart
// is a fresh boot (re-queued workload, slot 0). The documented contract is
// prefix agreement only — the restarted node may re-commit a command into
// a later slot (no journal, no dedup) and may never re-learn pruned slots.
// The svc layer is where durability and exactly-once-across-restarts live;
// here we pin down exactly what the base layer does promise: surviving
// nodes' logs stay identical, and every node's log is a prefix of the
// longest.
TEST(ReplicatedLog, RestartPreservesPrefixAgreement) {
  for (std::uint64_t seed = 40; seed <= 43; ++seed) {
    const auto workloads = evenWorkloads(5, 3);
    const LogRunResult result =
        runLog(workloads, seed, /*crashes=*/{}, /*restarts=*/{{2, 100}});
    ASSERT_FALSE(result.hitCap) << "seed " << seed;
    const auto* longest = &result.logs[0];
    for (const auto& log : result.logs)
      if (log.size() > longest->size()) longest = &log;
    for (ProcessId id = 0; id < 5; ++id)
      EXPECT_TRUE(isPrefix(result.logs[id], *longest))
          << "node " << id << " seed " << seed;
    // Never-faulted nodes agree exactly.
    for (ProcessId id = 1; id < 5; ++id) {
      if (id == 2) continue;
      EXPECT_EQ(result.logs[id], result.logs[0]) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace ooc

// Multi-decree replicated-log service tests (src/svc): the three engines
// under the deterministic client workload, pipelining and batching,
// byte-identical determinism, durable restart + catch-up, the serialized
// config round-trip, and the registry capability gate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "svc/run.hpp"

namespace ooc::svc {
namespace {

SvcConfig smokeConfig(const std::string& engine) {
  SvcConfig config;
  config.engine = engine;
  config.detector = "benor-vac";
  config.driver = "lottery";
  config.n = 5;
  config.seed = 4242;
  config.minDelay = 1;
  config.maxDelay = 6;
  config.service.window = 2;
  config.service.batchMax = 4;
  config.workload.clients = 1000;
  config.workload.commandsPerNode = 8;
  config.workload.closedLoop = true;
  config.workload.thinkMin = 5;
  config.workload.thinkMax = 40;
  config.workload.startSpread = 16;
  return config;
}

TEST(Svc, ThreeEngineSmoke) {
  for (const std::string engine : {"compose", "paxos", "raft"}) {
    const SvcResult result = runSvc(smokeConfig(engine));
    EXPECT_TRUE(result.prefixOk) << engine;
    EXPECT_TRUE(result.exactlyOnce) << engine;
    EXPECT_TRUE(result.allApplied) << engine;
    EXPECT_FALSE(result.hitCap) << engine;
    EXPECT_EQ(result.commandsCommitted, 40u) << engine;
    EXPECT_EQ(result.commandsEmitted, 40u) << engine;
  }
}

// Pipelining: a window-4 run must stay correct and commit the same command
// set as the sequential window-1 discipline on the same workload.
TEST(Svc, PipelineWindowCorrectness) {
  SvcConfig sequential = smokeConfig("compose");
  sequential.service.window = 1;
  SvcConfig pipelined = smokeConfig("compose");
  pipelined.service.window = 4;
  const SvcResult a = runSvc(sequential);
  const SvcResult b = runSvc(pipelined);
  for (const SvcResult* r : {&a, &b}) {
    EXPECT_TRUE(r->prefixOk);
    EXPECT_TRUE(r->exactlyOnce);
    EXPECT_TRUE(r->allApplied);
    EXPECT_EQ(r->commandsCommitted, 40u);
  }
}

// Batching: under an open-loop burst the proposer packs more than one
// command per decree, and decrees committed < commands committed shows it.
TEST(Svc, BatchingPacksBursts) {
  SvcConfig config = smokeConfig("compose");
  config.workload.closedLoop = false;
  config.workload.arrivalsPerTick = 0.5;
  config.workload.burstEvery = 100;
  config.workload.burstLen = 20;
  config.workload.burstFactor = 4.0;
  config.service.batchMax = 8;
  const SvcResult result = runSvc(config);
  EXPECT_TRUE(result.prefixOk);
  EXPECT_TRUE(result.exactlyOnce);
  EXPECT_TRUE(result.allApplied);
  EXPECT_LT(result.decreesCommitted, result.commandsCommitted);
  bool sawRealBatch = false;
  for (std::uint32_t b : result.batchSizes) sawRealBatch |= b > 1;
  EXPECT_TRUE(sawRealBatch);
}

// Determinism: the pipelined service is a pure function of (config, seed)
// — repeated runs match field for field, including the pooled latency
// stream and the applied-command counts.
TEST(Svc, DeterministicAcrossRuns) {
  for (const std::string engine : {"compose", "paxos", "raft"}) {
    SvcConfig config = smokeConfig(engine);
    config.service.window = 4;
    const SvcResult a = runSvc(config);
    const SvcResult b = runSvc(config);
    EXPECT_EQ(a.commandsCommitted, b.commandsCommitted) << engine;
    EXPECT_EQ(a.decreesCommitted, b.decreesCommitted) << engine;
    EXPECT_EQ(a.lastCommitTick, b.lastCommitTick) << engine;
    EXPECT_EQ(a.latencies, b.latencies) << engine;
    EXPECT_EQ(a.batchSizes, b.batchSizes) << engine;
    EXPECT_EQ(a.messagesByCorrect, b.messagesByCorrect) << engine;
    EXPECT_EQ(a.eventsProcessed, b.eventsProcessed) << engine;
  }
}

// Durable restart: with journalling on, a crash-restarted node recovers
// its prefix from the journal, catches up the rest from peers, and the
// service-level invariants hold end to end.
TEST(Svc, DurableRestartCatchesUp) {
  for (const std::string engine : {"compose", "paxos", "raft"}) {
    SvcConfig config = smokeConfig(engine);
    config.service.durable = true;
    RestartEvent restart;
    restart.id = 1;
    restart.at = 80;
    restart.downtime = 60;
    config.restarts.push_back(restart);
    const SvcResult result = runSvc(config);
    EXPECT_TRUE(result.prefixOk) << engine;
    EXPECT_TRUE(result.exactlyOnce) << engine;
    EXPECT_FALSE(result.hitCap) << engine;
    EXPECT_GT(result.commandsCommitted, 0u) << engine;
  }
}

TEST(Svc, SerializeRoundTrip) {
  SvcConfig config = smokeConfig("compose");
  config.service.durable = true;
  config.crashes.push_back({2, 150});
  RestartEvent restart;
  restart.id = 3;
  restart.at = 90;
  restart.downtime = 75;
  config.restarts.push_back(restart);
  const std::string wire = serializeSvcConfig(config);
  const SvcConfig parsed = parseSvcConfig(wire);
  EXPECT_EQ(serializeSvcConfig(parsed), wire);
}

// The capability gate: admission is decided by the registry descriptor,
// not a name list, and each rejection names the failed capability.
TEST(Svc, EngineGateRejectsByCapability) {
  SvcConfig config = smokeConfig("compose");

  // Binary coin: not multivalued — it would decide values nobody proposed.
  config.driver = "local-coin";
  auto rejected = validateEngine(config);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_NE(rejected->find("not multivalued"), std::string::npos);

  // Adopt-commit detector: the log decides on commit under the VAC rule.
  config.driver = "lottery";
  config.detector = "phaseking-ac";
  rejected = validateEngine(config);
  ASSERT_TRUE(rejected.has_value());

  // Oracle-consuming driver: the service harness attaches no oracle.
  config.detector = "benor-vac";
  config.driver = "ct-coordinator";
  rejected = validateEngine(config);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_NE(rejected->find("oracle"), std::string::npos);

  // Admissible pairing and the native engines pass.
  config.driver = "lottery";
  EXPECT_FALSE(validateEngine(config).has_value());
  config.engine = "raft";
  EXPECT_FALSE(validateEngine(config).has_value());

  // Unknown registry names throw, listing the known ones.
  config.engine = "compose";
  config.driver = "no-such-driver";
  EXPECT_THROW((void)validateEngine(config), std::invalid_argument);

  // runSvc re-validates: an inadmissible config cannot be executed.
  SvcConfig bad = smokeConfig("compose");
  bad.driver = "local-coin";
  EXPECT_THROW((void)runSvc(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ooc::svc

// Message-routing unit tests for the ConsensusProcess engine: buffering of
// future rounds/stages, dropping of stale traffic, lockstep tick
// suppression, and the drive-stage plumbing — driven through a manual
// Context with scripted objects.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/consensus_process.hpp"
#include "core/tagged_message.hpp"
#include "sim/process.hpp"

namespace ooc {
namespace {

struct ProbeMsg final : MessageBase<ProbeMsg> {
  explicit ProbeMsg(int payload = 0) : payload(payload) {}
  int payload;
  std::string describe() const override { return "probe"; }
};

/// Detector completing once it has received `needed` probe messages;
/// records everything it sees.
class CountingDetector final : public AgreementDetector {
 public:
  CountingDetector(int needed, Confidence confidence,
                   std::vector<int>* seen)
      : needed_(needed), confidence_(confidence), seen_(seen) {}

  void invoke(ObjectContext& ctx, Value v) override {
    value_ = v;
    ctx.broadcast(ProbeMsg(0));
    if (needed_ == 0) done_ = true;
  }
  void onMessage(ObjectContext&, ProcessId, const Message& inner) override {
    const auto* probe = inner.as<ProbeMsg>();
    if (probe == nullptr) return;
    if (seen_) seen_->push_back(probe->payload);
    if (++count_ >= needed_) done_ = true;
  }
  std::optional<Outcome> result() const override {
    return done_ ? std::optional<Outcome>(Outcome{confidence_, value_})
                 : std::nullopt;
  }

 private:
  int needed_;
  Confidence confidence_;
  std::vector<int>* seen_;
  Value value_ = kNoValue;
  int count_ = 0;
  bool done_ = false;
};

/// Driver completing after one probe message.
class WaitingDriver final : public Driver {
 public:
  explicit WaitingDriver(std::vector<int>* seen) : seen_(seen) {}
  void invoke(ObjectContext&, const Outcome& detected) override {
    value_ = detected.value;
  }
  void onMessage(ObjectContext&, ProcessId, const Message& inner) override {
    const auto* probe = inner.as<ProbeMsg>();
    if (probe == nullptr) return;
    if (seen_) seen_->push_back(probe->payload);
    done_ = true;
  }
  std::optional<Value> result() const override {
    return done_ ? std::optional<Value>(value_) : std::nullopt;
  }

 private:
  std::vector<int>* seen_;
  Value value_ = kNoValue;
  bool done_ = false;
};

class ManualHostContext final : public Context {
 public:
  ProcessId self() const noexcept override { return 0; }
  std::size_t processCount() const noexcept override { return 3; }
  Tick now() const noexcept override { return now_; }
  Rng& rng() noexcept override { return rng_; }
  void send(ProcessId, std::unique_ptr<Message> msg) override {
    outbound.push_back(std::move(msg));
  }
  void broadcast(const Message& msg) override {
    outbound.push_back(msg.clone());
  }
  TimerId setTimer(Tick) override { return ++timers; }
  void cancelTimer(TimerId) noexcept override {}
  void decide(Value v) override { decisions.push_back(v); }

  std::vector<std::unique_ptr<Message>> outbound;
  std::vector<Value> decisions;
  Tick now_ = 0;
  TimerId timers = 0;

 private:
  Rng rng_{3};
};

struct Harness {
  explicit Harness(int detectorNeeds = 1,
                   Confidence confidence = Confidence::kVacillate) {
    ConsensusProcess::Options options;
    options.kind = TemplateKind::kVacReconciliator;
    options.maxRounds = 50;
    process = std::make_unique<ConsensusProcess>(
        7,
        [=, this](Round) {
          return std::make_unique<CountingDetector>(detectorNeeds,
                                                    confidence, &detectorSaw);
        },
        [this](Round) { return std::make_unique<WaitingDriver>(&driverSaw); },
        options);
    process->bind(ctx);
    process->onStart();
  }

  void deliver(Round round, Stage stage, int payload, ProcessId from = 1) {
    process->onMessage(from, TaggedMessage(round, stage,
                                           std::make_unique<ProbeMsg>(payload)));
  }

  ManualHostContext ctx;
  std::unique_ptr<ConsensusProcess> process;
  std::vector<int> detectorSaw;
  std::vector<int> driverSaw;
};

TEST(TemplateRouting, CurrentRoundDetectMessagesDispatchImmediately) {
  Harness h(/*detectorNeeds=*/2);
  h.deliver(1, Stage::kDetect, 11);
  EXPECT_EQ(h.detectorSaw, std::vector<int>({11}));
  EXPECT_EQ(h.process->currentRound(), 1u);
}

TEST(TemplateRouting, FutureRoundMessagesAreBufferedAndReplayedInOrder) {
  Harness h(/*detectorNeeds=*/2);
  h.deliver(2, Stage::kDetect, 21);  // future round: buffer
  h.deliver(2, Stage::kDetect, 22);
  EXPECT_TRUE(h.detectorSaw.empty());

  // Finish round 1 (detector needs 2, then vacillate -> driver needs 1).
  h.deliver(1, Stage::kDetect, 11);
  h.deliver(1, Stage::kDetect, 12);
  h.deliver(1, Stage::kDrive, 13);
  EXPECT_EQ(h.process->currentRound(), 2u);
  // The buffered round-2 messages must have replayed, in arrival order.
  EXPECT_EQ(h.detectorSaw, std::vector<int>({11, 12, 21, 22}));
}

TEST(TemplateRouting, StaleRoundMessagesAreDropped) {
  Harness h(/*detectorNeeds=*/1);
  h.deliver(1, Stage::kDetect, 11);
  h.deliver(1, Stage::kDrive, 12);
  ASSERT_EQ(h.process->currentRound(), 2u);
  h.deliver(1, Stage::kDetect, 99);  // stale
  h.deliver(1, Stage::kDrive, 98);   // stale
  EXPECT_EQ(h.detectorSaw, std::vector<int>({11}));
  EXPECT_EQ(h.driverSaw, std::vector<int>({12}));
}

TEST(TemplateRouting, DetectMessagesAfterStageAdvanceAreDropped) {
  Harness h(/*detectorNeeds=*/1);
  h.deliver(1, Stage::kDetect, 11);  // detector completes, stage -> drive
  h.deliver(1, Stage::kDetect, 99);  // stale within the same round
  h.deliver(1, Stage::kDrive, 12);
  EXPECT_EQ(h.detectorSaw, std::vector<int>({11}));
  EXPECT_EQ(h.process->currentRound(), 2u);
}

TEST(TemplateRouting, DriveMessagesBufferWhileDetecting) {
  Harness h(/*detectorNeeds=*/2);
  h.deliver(1, Stage::kDrive, 31);  // a faster peer is already driving
  EXPECT_TRUE(h.driverSaw.empty());
  h.deliver(1, Stage::kDetect, 11);
  h.deliver(1, Stage::kDetect, 12);
  // Detector done -> driver invoked -> buffered drive message replayed.
  EXPECT_EQ(h.driverSaw, std::vector<int>({31}));
  EXPECT_EQ(h.process->currentRound(), 2u);
}

TEST(TemplateRouting, ForeignMessagesIgnored) {
  Harness h(/*detectorNeeds=*/1);
  h.process->onMessage(1, ProbeMsg(55));  // untagged
  EXPECT_TRUE(h.detectorSaw.empty());
  EXPECT_EQ(h.process->currentRound(), 1u);
}

TEST(TemplateRouting, CommitDecidesAndContinues) {
  Harness h(/*detectorNeeds=*/1, Confidence::kCommit);
  h.deliver(1, Stage::kDetect, 11);
  ASSERT_EQ(h.ctx.decisions.size(), 1u);
  EXPECT_EQ(h.ctx.decisions[0], 7);
  EXPECT_TRUE(h.process->decided());
  EXPECT_EQ(h.process->decisionRound(), 1u);
  // Keeps participating: round 2 detector is live.
  EXPECT_EQ(h.process->currentRound(), 2u);
  h.deliver(2, Stage::kDetect, 21);
  EXPECT_EQ(h.detectorSaw.back(), 21);
  // Decision is single-shot.
  EXPECT_EQ(h.ctx.decisions.size(), 1u);
}

TEST(TemplateRouting, RetiresAfterConfiguredExtraRounds) {
  ConsensusProcess::Options options;
  options.kind = TemplateKind::kVacReconciliator;
  options.participateRoundsAfterDecide = 1;
  ManualHostContext ctx;
  ConsensusProcess process(
      7,
      [](Round) {
        return std::make_unique<CountingDetector>(1, Confidence::kCommit,
                                                  nullptr);
      },
      [](Round) { return std::make_unique<WaitingDriver>(nullptr); },
      options);
  process.bind(ctx);
  process.onStart();

  process.onMessage(1, TaggedMessage(1, Stage::kDetect,
                                     std::make_unique<ProbeMsg>(1)));
  EXPECT_TRUE(process.decided());
  EXPECT_EQ(process.currentRound(), 2u);  // one extra round
  process.onMessage(1, TaggedMessage(2, Stage::kDetect,
                                     std::make_unique<ProbeMsg>(2)));
  EXPECT_TRUE(process.exhaustedRounds());  // retired after round 2
  const auto sends = ctx.outbound.size();
  process.onMessage(1, TaggedMessage(3, Stage::kDetect,
                                     std::make_unique<ProbeMsg>(3)));
  EXPECT_EQ(ctx.outbound.size(), sends) << "retired process must stay quiet";
}

TEST(TemplateRouting, PostDecideBufferingIsBoundedByTheRetirementHorizon) {
  // With a retirement horizon configured, rounds beyond decisionRound +
  // participateRoundsAfterDecide can never be reached, so their messages
  // must not accumulate: already-buffered ones are pruned at decide time
  // and later arrivals are dropped on arrival. Without the bound a
  // decided-but-participating process (the svc per-decree engines) would
  // buffer every straggler until teardown.
  ConsensusProcess::Options options;
  options.kind = TemplateKind::kVacReconciliator;
  options.participateRoundsAfterDecide = 2;
  ManualHostContext ctx;
  ConsensusProcess process(
      7,
      [](Round) {
        return std::make_unique<CountingDetector>(1, Confidence::kCommit,
                                                  nullptr);
      },
      [](Round) { return std::make_unique<WaitingDriver>(nullptr); },
      options);
  process.bind(ctx);
  process.onStart();

  // Far-future message buffered while undecided (nothing is bounded yet).
  process.onMessage(1, TaggedMessage(9, Stage::kDetect,
                                     std::make_unique<ProbeMsg>(90)));
  EXPECT_EQ(process.bufferedCount(), 1u);
  EXPECT_EQ(process.bufferedDropped(), 0u);

  // Decide in round 1: horizon = 1 + 2 = 3, so the round-9 entry is
  // unreachable and pruned.
  process.onMessage(1, TaggedMessage(1, Stage::kDetect,
                                     std::make_unique<ProbeMsg>(1)));
  ASSERT_TRUE(process.decided());
  EXPECT_EQ(process.currentRound(), 2u);
  EXPECT_EQ(process.bufferedCount(), 0u);
  EXPECT_EQ(process.bufferedDropped(), 1u);

  // Beyond-horizon arrivals drop instead of buffering...
  process.onMessage(1, TaggedMessage(4, Stage::kDetect,
                                     std::make_unique<ProbeMsg>(40)));
  EXPECT_EQ(process.bufferedCount(), 0u);
  EXPECT_EQ(process.bufferedDropped(), 2u);

  // ...while rounds the process will still visit buffer as before.
  process.onMessage(1, TaggedMessage(3, Stage::kDetect,
                                     std::make_unique<ProbeMsg>(30)));
  EXPECT_EQ(process.bufferedCount(), 1u);
  EXPECT_EQ(process.bufferedPeak(), 1u);
}

TEST(TemplateRouting, AcTemplateRejectsNothingButRoutesAdoptToDriver) {
  ConsensusProcess::Options options;
  options.kind = TemplateKind::kAcConciliator;
  ManualHostContext ctx;
  std::vector<int> driverSaw;
  ConsensusProcess process(
      3,
      [](Round) {
        return std::make_unique<CountingDetector>(1, Confidence::kAdopt,
                                                  nullptr);
      },
      [&driverSaw](Round) {
        return std::make_unique<WaitingDriver>(&driverSaw);
      },
      options);
  process.bind(ctx);
  process.onStart();
  process.onMessage(1, TaggedMessage(1, Stage::kDetect,
                                     std::make_unique<ProbeMsg>(1)));
  // Adopt under the AC template: the driver is consulted.
  process.onMessage(1, TaggedMessage(1, Stage::kDrive,
                                     std::make_unique<ProbeMsg>(41)));
  EXPECT_EQ(driverSaw, std::vector<int>({41}));
  EXPECT_EQ(process.currentRound(), 2u);
}

TEST(TemplateRouting, FixedRoundDecisionRule) {
  ConsensusProcess::Options options;
  options.kind = TemplateKind::kAcConciliator;
  options.decideOnCommit = false;
  options.decideAfterRound = 2;
  ManualHostContext ctx;
  ConsensusProcess process(
      9,
      [](Round) {
        return std::make_unique<CountingDetector>(1, Confidence::kCommit,
                                                  nullptr);
      },
      [](Round) { return std::make_unique<WaitingDriver>(nullptr); },
      options);
  process.bind(ctx);
  process.onStart();

  process.onMessage(1, TaggedMessage(1, Stage::kDetect,
                                     std::make_unique<ProbeMsg>(1)));
  EXPECT_FALSE(process.decided()) << "commit must not decide under this rule";
  process.onMessage(1, TaggedMessage(2, Stage::kDetect,
                                     std::make_unique<ProbeMsg>(2)));
  EXPECT_TRUE(process.decided());
  EXPECT_EQ(process.decisionRound(), 2u);
  EXPECT_EQ(process.decisionValue(), 9);
}

}  // namespace
}  // namespace ooc

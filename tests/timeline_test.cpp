// Golden-output coverage for the trace_view timeline renderer: a recorded
// run renders to an exact, byte-stable per-process timeline with the
// protocol-level annotations (confidence transitions, driver values,
// decisions) merged into the schedule.
#include <gtest/gtest.h>

#include <string>

#include "check/replay.hpp"
#include "check/scenario.hpp"
#include "check/timeline.hpp"

namespace ooc {
namespace {

check::CounterexampleFile goldenFixture() {
  check::Scenario scenario;
  scenario.family = check::Family::kBenOr;
  scenario.benOr.n = 4;
  scenario.benOr.t = 1;
  scenario.benOr.inputs = {0, 1, 1, 1};
  scenario.benOr.seed = 3;
  scenario.benOr.maxDelay = 2;
  const check::RecordedRun run = check::recordRun(scenario);
  check::CounterexampleFile file;
  file.scenario = scenario;
  file.invariant = "agreement";
  file.detail = "golden rendering fixture";
  file.trace = run.trace;
  return file;
}

// The exact rendering of the fixture with scheduler noise hidden. If this
// changes, either the renderer's format changed (update deliberately) or
// run determinism broke (investigate: replay must be bit-identical).
constexpr const char* kGolden =
    "counterexample timeline  run-id=a1531b89d8b20b14\n"
    "scenario:  benor n=4 seed=3 mode=decomposed reconciliator=local-coin "
    "crashes=0 max-delay=2\n"
    "invariant: agreement\n"
    "detail:    golden rendering fixture\n"
    "replay:    bit-identical to recorded trace\n"
    "\n"
    "p0:\n"
    "  t=0\tstart\n"
    "  t=3\tdetect[1] -> vacillate(0)\n"
    "  t=3\tdrive[1] -> 1\n"
    "  t=6\tdetect[2] -> commit(1)\n"
    "  t=6\tDECIDED 1\n"
    "\n"
    "p1:\n"
    "  t=0\tstart\n"
    "  t=3\tdetect[1] -> vacillate(1)\n"
    "  t=3\tdrive[1] -> 1\n"
    "  t=6\tdetect[2] -> commit(1)\n"
    "  t=6\tDECIDED 1\n"
    "\n"
    "p2:\n"
    "  t=0\tstart\n"
    "  t=3\tdetect[1] -> vacillate(1)\n"
    "  t=3\tdrive[1] -> 1\n"
    "  t=6\tdetect[2] -> commit(1)\n"
    "  t=6\tDECIDED 1\n"
    "\n"
    "p3:\n"
    "  t=0\tstart\n"
    "  t=4\tdetect[1] -> vacillate(1)\n"
    "  t=4\tdrive[1] -> 1\n"
    "  t=6\tdetect[2] -> commit(1)\n"
    "  t=6\tDECIDED 1\n";

TEST(Timeline, GoldenRendering) {
  const check::CounterexampleFile file = goldenFixture();
  check::TimelineOptions options;
  options.showDeliveries = false;
  options.showTimers = false;
  EXPECT_EQ(check::renderTimeline(file, options), kGolden);
}

TEST(Timeline, RenderingIsDeterministic) {
  const check::CounterexampleFile file = goldenFixture();
  EXPECT_EQ(check::renderTimeline(file), check::renderTimeline(file));
}

TEST(Timeline, DefaultOptionsIncludeDeliveries) {
  const std::string text = check::renderTimeline(goldenFixture());
  EXPECT_NE(text.find("deliver from p"), std::string::npos);
  // Protocol annotations survive alongside the schedule.
  EXPECT_NE(text.find("detect[1] -> vacillate"), std::string::npos);
  EXPECT_NE(text.find("DECIDED 1"), std::string::npos);
}

TEST(Timeline, EventCapElidesSchedulerNoiseOnly) {
  check::TimelineOptions options;
  options.maxEventsPerProcess = 1;
  const std::string text =
      check::renderTimeline(goldenFixture(), options);
  EXPECT_NE(text.find("more scheduler events elided"), std::string::npos);
  // Protocol entries and decisions are never elided.
  EXPECT_NE(text.find("detect[2] -> commit(1)"), std::string::npos);
  EXPECT_NE(text.find("DECIDED 1"), std::string::npos);
}

check::CounterexampleFile oracleFixture() {
  check::Scenario scenario;
  scenario.family = check::Family::kFd;
  auto& config = scenario.compose;
  config.detector = "benor-vac";
  config.driver = "ct-coordinator";
  config.oracle = "omega";
  config.oracleKnobs.completenessLag = 8;
  config.oracleKnobs.stabilizeAt = 40;
  // Noisy enough (at this seed) for the oracle to falsely suspect the
  // coordinator once — the fixture must exercise a suspicion transition.
  config.oracleKnobs.noise = 0.6;
  config.n = 3;
  config.seed = 1;
  config.inputs = {0, 1, 0};
  const check::RecordedRun run = check::recordRun(scenario);
  check::CounterexampleFile file;
  file.scenario = scenario;
  file.invariant = "agreement";
  file.detail = "oracle rendering fixture";
  file.trace = run.trace;
  return file;
}

// Exact rendering of an oracle-driven run: coordinator queries appear as
// elidable `oracle?` entries, suspicion *transitions* as non-elidable
// ORACLE lines.
constexpr const char* kOracleGolden =
    "counterexample timeline  run-id=a785a1db33d596e3\n"
    "scenario:  fd n=3 seed=1 detector=benor-vac driver=ct-coordinator "
    "oracle=omega stabilize-at=40 noise=0.6 byzantine=0 crashes=0\n"
    "invariant: agreement\n"
    "detail:    oracle rendering fixture\n"
    "replay:    bit-identical to recorded trace\n"
    "\n"
    "p0:\n"
    "  t=0\tstart\n"
    "  t=5\tdetect[1] -> adopt(0)\n"
    "  t=5\tdrive[1] -> 0\n"
    "  t=21\tdetect[2] -> commit(0)\n"
    "  t=21\tDECIDED 0\n"
    "\n"
    "p1:\n"
    "  t=0\tstart\n"
    "  t=8\tdetect[1] -> adopt(0)\n"
    "  t=12\tdrive[1] -> 0\n"
    "  t=23\tdetect[2] -> commit(0)\n"
    "  t=23\tDECIDED 0\n"
    "  t=23\tdrive[2] -> 0\n"
    "\n"
    "p2:\n"
    "  t=0\tstart\n"
    "  t=4\tdetect[1] -> adopt(0)\n"
    "  t=12\toracle? p0 -> suspected\n"
    "  t=12\tORACLE suspects p0\n"
    "  t=12\tdrive[1] -> 0\n"
    "  t=20\tdetect[2] -> commit(0)\n"
    "  t=20\tDECIDED 0\n";

TEST(Timeline, OracleGoldenRendering) {
  const check::CounterexampleFile file = oracleFixture();
  check::TimelineOptions options;
  options.showDeliveries = false;
  options.showTimers = false;
  EXPECT_EQ(check::renderTimeline(file, options), kOracleGolden);
}

TEST(Timeline, SuspicionTransitionsSurviveTheEventCap) {
  check::TimelineOptions options;
  options.maxEventsPerProcess = 1;
  const std::string text =
      check::renderTimeline(oracleFixture(), options);
  // Per-query oracle entries are elidable; the transition is not.
  EXPECT_NE(text.find("ORACLE suspects p0"), std::string::npos);
}

TEST(Timeline, RoundTripThroughFileFormatRendersIdentically) {
  const check::CounterexampleFile file = goldenFixture();
  const check::CounterexampleFile reparsed =
      check::parseCounterexample(check::serializeCounterexample(file));
  EXPECT_EQ(check::renderTimeline(file), check::renderTimeline(reparsed));
}

}  // namespace
}  // namespace ooc

// Shared-memory substrate tests: the step scheduler, the register-based
// adopt-commit, the probabilistic-write conciliator, and the full Aspnes
// framework consensus loop — the model the paper's framework [2] lives in.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "core/properties.hpp"
#include "shmem/consensus.hpp"
#include "shmem/executor.hpp"
#include "shmem/vac_consensus.hpp"

namespace ooc {
namespace {

using shmem::SchedulePolicy;
using shmem::SharedArena;
using shmem::ShmemConsensus;
using shmem::StepProcess;
using shmem::StepScheduler;

class CountingProcess final : public StepProcess {
 public:
  explicit CountingProcess(int total) : remaining_(total) {}
  bool step() override {
    ++executed;
    return --remaining_ <= 0;
  }
  int executed = 0;

 private:
  int remaining_;
};

TEST(StepScheduler, RunsEveryProcessToCompletion) {
  StepScheduler scheduler(SchedulePolicy::kRoundRobin, 1);
  CountingProcess a(5), b(3), c(9);
  scheduler.add(a);
  scheduler.add(b);
  scheduler.add(c);
  const auto steps = scheduler.run();
  EXPECT_TRUE(scheduler.allDone());
  EXPECT_EQ(steps, 17u);
  EXPECT_EQ(a.executed, 5);
  EXPECT_EQ(b.executed, 3);
  EXPECT_EQ(c.executed, 9);
}

TEST(StepScheduler, RoundRobinIsFair) {
  StepScheduler scheduler(SchedulePolicy::kRoundRobin, 1);
  CountingProcess a(4), b(4);
  scheduler.add(a);
  scheduler.add(b);
  scheduler.run(6);
  EXPECT_EQ(a.executed, 3);
  EXPECT_EQ(b.executed, 3);
}

TEST(StepScheduler, StepCapStopsRun) {
  StepScheduler scheduler(SchedulePolicy::kRandom, 2);
  CountingProcess a(1000000);
  scheduler.add(a);
  const auto steps = scheduler.run(100);
  EXPECT_EQ(steps, 100u);
  EXPECT_FALSE(scheduler.allDone());
}

struct ShmemRun {
  bool allDecided = true;
  bool agreed = true;
  bool valid = true;
  bool acContractsOk = true;
  std::uint64_t steps = 0;
  Value decision = kNoValue;
};

ShmemRun runShmem(std::size_t n, SchedulePolicy policy, std::uint64_t seed,
                  std::vector<Value> inputs, double writeProb = 0.25) {
  SharedArena arena;
  std::vector<std::unique_ptr<ShmemConsensus>> processes;
  StepScheduler scheduler(policy, seed);
  for (std::size_t i = 0; i < n; ++i) {
    processes.push_back(std::make_unique<ShmemConsensus>(
        arena, inputs[i % inputs.size()], writeProb, seed * 1000 + i));
    scheduler.add(*processes.back());
  }
  ShmemRun result;
  result.steps = scheduler.run(5'000'000);

  for (const auto& p : processes) {
    if (!p->decided()) {
      result.allDecided = false;
      continue;
    }
    if (result.decision == kNoValue) result.decision = p->decisionValue();
    if (p->decisionValue() != result.decision) result.agreed = false;
    bool isInput = false;
    for (Value v : inputs) isInput = isInput || v == p->decisionValue();
    if (!isInput) result.valid = false;
  }

  // Audit the AC outcomes round by round (AC properties only).
  Round highest = 0;
  for (const auto& p : processes)
    if (!p->acOutcomes().empty())
      highest = std::max(highest, p->acOutcomes().rbegin()->first);
  for (Round m = 1; m <= highest; ++m) {
    std::vector<Value> roundInputs;
    std::vector<std::optional<Outcome>> outcomes;
    for (const auto& p : processes) {
      const auto it = p->acOutcomes().find(m);
      if (it == p->acOutcomes().end()) continue;
      outcomes.push_back(it->second);
      roundInputs.push_back(it->second.value);  // see below
    }
    // For validity we need the actual inputs to round m; the object's
    // returned values are a superset check is not possible here, so restrict
    // the audit to the coherence/convergence properties.
    AuditOptions options;
    options.requireAdoptValidity = false;
    options.requireVacillateValidity = false;
    options.checkVacillateAdoptCoherence = false;  // plain AC
    const RoundAudit audit = auditRound(roundInputs, outcomes, options);
    if (!audit.coherenceAdoptCommit) result.acContractsOk = false;
  }
  return result;
}

class ShmemSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, SchedulePolicy, std::uint64_t>> {};

TEST_P(ShmemSweep, ConsensusHoldsUnderEverySchedule) {
  const auto [n, policy, seed] = GetParam();
  const ShmemRun result = runShmem(n, policy, seed, {0, 1});
  EXPECT_TRUE(result.allDecided) << "did not terminate";
  EXPECT_TRUE(result.agreed);
  EXPECT_TRUE(result.valid);
  EXPECT_TRUE(result.acContractsOk);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ShmemSweep,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{8}, std::size_t{16}),
                       ::testing::Values(SchedulePolicy::kRoundRobin,
                                         SchedulePolicy::kRandom,
                                         SchedulePolicy::kSkewed),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

TEST(ShmemConsensus, UnanimousCommitsFirstRound) {
  for (Value v : {0, 1}) {
    const ShmemRun result =
        runShmem(5, SchedulePolicy::kRoundRobin, 7, {v});
    EXPECT_TRUE(result.allDecided);
    EXPECT_EQ(result.decision, v);
  }
}

TEST(ShmemConsensus, SoloProcessDecidesImmediately) {
  const ShmemRun result = runShmem(1, SchedulePolicy::kRoundRobin, 9, {1});
  EXPECT_TRUE(result.allDecided);
  EXPECT_EQ(result.decision, 1);
  // Solo run: announce, read direction, write direction, check = 4 steps.
  EXPECT_EQ(result.steps, 4u);
}

TEST(ShmemConsensus, RejectsNonBinaryInput) {
  SharedArena arena;
  EXPECT_THROW(ShmemConsensus(arena, 5, 0.5, 1), std::invalid_argument);
}

TEST(ShmemConsensus, LowWriteProbabilityStillTerminates) {
  const ShmemRun result =
      runShmem(4, SchedulePolicy::kRandom, 11, {0, 1}, /*writeProb=*/0.02);
  EXPECT_TRUE(result.allDecided);
  EXPECT_TRUE(result.agreed);
}

TEST(ShmemConsensus, StepsGrowWithContention) {
  // More processes => more steps (sanity of the E11 metric).
  const auto small = runShmem(2, SchedulePolicy::kRandom, 13, {0, 1});
  const auto large = runShmem(16, SchedulePolicy::kRandom, 13, {0, 1});
  EXPECT_GT(large.steps, small.steps);
}

// ---------------------------------------------------------------------------
// The VAC (two-AC construction) + reconciliator loop in shared memory.

struct ShmemVacRun {
  bool allDecided = true;
  bool agreed = true;
  bool valid = true;
  bool vacContractsOk = true;
  std::uint64_t steps = 0;
  Value decision = kNoValue;
};

ShmemVacRun runShmemVac(std::size_t n, SchedulePolicy policy,
                        std::uint64_t seed, std::vector<Value> inputs,
                        double writeProb = 0.25) {
  SharedArena arena;
  std::vector<std::unique_ptr<shmem::ShmemVacConsensus>> processes;
  StepScheduler scheduler(policy, seed);
  for (std::size_t i = 0; i < n; ++i) {
    processes.push_back(std::make_unique<shmem::ShmemVacConsensus>(
        arena, inputs[i % inputs.size()], writeProb, seed * 3000 + i));
    scheduler.add(*processes.back());
  }
  ShmemVacRun result;
  result.steps = scheduler.run(5'000'000);

  for (const auto& p : processes) {
    if (!p->decided()) {
      result.allDecided = false;
      continue;
    }
    if (result.decision == kNoValue) result.decision = p->decisionValue();
    if (p->decisionValue() != result.decision) result.agreed = false;
    bool isInput = false;
    for (Value v : inputs) isInput = isInput || v == p->decisionValue();
    if (!isInput) result.valid = false;
  }

  // Audit the full VAC contract per round (values checked for coherence
  // only — validity needs the true round inputs, covered by `valid`).
  Round highest = 0;
  for (const auto& p : processes)
    if (!p->vacOutcomes().empty())
      highest = std::max(highest, p->vacOutcomes().rbegin()->first);
  for (Round m = 1; m <= highest; ++m) {
    std::vector<Value> roundInputs;
    std::vector<std::optional<Outcome>> outcomes;
    for (const auto& p : processes) {
      const auto it = p->vacOutcomes().find(m);
      if (it == p->vacOutcomes().end()) continue;
      outcomes.push_back(it->second);
      roundInputs.push_back(it->second.value);
    }
    AuditOptions options;
    options.requireAdoptValidity = false;
    options.requireVacillateValidity = false;
    const RoundAudit audit = auditRound(roundInputs, outcomes, options);
    if (!audit.coherenceAdoptCommit || !audit.coherenceVacillateAdopt)
      result.vacContractsOk = false;
  }
  return result;
}

class ShmemVacSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, SchedulePolicy, std::uint64_t>> {};

TEST_P(ShmemVacSweep, VacLoopHoldsUnderEverySchedule) {
  const auto [n, policy, seed] = GetParam();
  const ShmemVacRun result = runShmemVac(n, policy, seed, {0, 1});
  EXPECT_TRUE(result.allDecided) << "did not terminate";
  EXPECT_TRUE(result.agreed);
  EXPECT_TRUE(result.valid);
  EXPECT_TRUE(result.vacContractsOk);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ShmemVacSweep,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{8}, std::size_t{16}),
                       ::testing::Values(SchedulePolicy::kRoundRobin,
                                         SchedulePolicy::kRandom,
                                         SchedulePolicy::kSkewed),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

TEST(ShmemVacConsensus, UnanimousCommitsFirstRound) {
  for (Value v : {0, 1}) {
    const ShmemVacRun result =
        runShmemVac(6, SchedulePolicy::kRoundRobin, 21, {v});
    EXPECT_TRUE(result.allDecided);
    EXPECT_EQ(result.decision, v);
  }
}

TEST(ShmemVacConsensus, CostsTwoAcExecutionsPerRound) {
  // Solo run, unanimous: one VAC = two AC executions. The AC loop commits
  // in 4 steps; the VAC loop needs 7 (second AC skips the direction write
  // branch read... exact count pinned here as a regression anchor).
  SharedArena arena;
  shmem::ShmemVacConsensus solo(arena, 1, 0.5, 1);
  StepScheduler scheduler(SchedulePolicy::kRoundRobin, 1);
  scheduler.add(solo);
  const auto steps = scheduler.run(100);
  EXPECT_TRUE(solo.decided());
  EXPECT_EQ(solo.decisionValue(), 1);
  EXPECT_EQ(steps, 8u);  // 4 steps per AC, two ACs
}

TEST(ShmemVacConsensus, RejectsNonBinaryInput) {
  SharedArena arena;
  EXPECT_THROW(shmem::ShmemVacConsensus(arena, 7, 0.5, 1),
               std::invalid_argument);
}

TEST(ShmemAdoptCommit, NeverTwoDifferentCommitsInOneRound) {
  // Focused stress on the AC: many runs, every round, at most one committed
  // value (the heart of the register-AC correctness argument).
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SharedArena arena;
    std::vector<std::unique_ptr<ShmemConsensus>> processes;
    StepScheduler scheduler(SchedulePolicy::kRandom, seed);
    for (std::size_t i = 0; i < 6; ++i) {
      processes.push_back(
          std::make_unique<ShmemConsensus>(arena, i % 2, 0.3, seed * 50 + i));
      scheduler.add(*processes.back());
    }
    scheduler.run(1'000'000);
    Round highest = 0;
    for (const auto& p : processes)
      if (!p->acOutcomes().empty())
        highest = std::max(highest, p->acOutcomes().rbegin()->first);
    for (Round m = 1; m <= highest; ++m) {
      std::set<Value> committed;
      for (const auto& p : processes) {
        const auto it = p->acOutcomes().find(m);
        if (it != p->acOutcomes().end() &&
            it->second.confidence == Confidence::kCommit) {
          committed.insert(it->second.value);
        }
      }
      EXPECT_LE(committed.size(), 1u)
          << "two values committed in round " << m << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace ooc

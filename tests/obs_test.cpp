// Unit tests for the telemetry layer (src/obs): metrics registry label
// handling, histogram bucket boundaries, disabled no-op behavior, JSON
// determinism, and the deterministic run-id stamping of serialized
// scenario and counterexample files.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "check/replay.hpp"
#include "harness/scenarios.hpp"
#include "harness/serialize.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_id.hpp"

namespace ooc {
namespace {

using obs::Labels;
using obs::Registry;

TEST(MetricsRegistry, DisabledMutatorsAreNoOps) {
  Registry reg;
  ASSERT_FALSE(reg.enabled());
  reg.addCounter("c", 3);
  reg.setGauge("g", 1.5);
  reg.observe("h", 7.0);
  EXPECT_EQ(reg.seriesCount(), 0u);
  EXPECT_EQ(reg.toJson(),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[],"
            "\"dropped_series\":0}");
}

TEST(MetricsRegistry, CountersAccumulate) {
  Registry reg;
  reg.enable(true);
  reg.addCounter("runs", 1);
  reg.addCounter("runs", 2);
  reg.addCounter("runs", 1, {{"family", "benor"}});
  EXPECT_EQ(reg.seriesCount(), 2u);
  const std::string json = reg.toJson();
  EXPECT_NE(json.find("\"runs\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitSeries) {
  Registry reg;
  reg.enable(true);
  reg.addCounter("c", 1, {{"a", "1"}, {"b", "2"}});
  reg.addCounter("c", 1, {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(reg.seriesCount(), 1u);
}

TEST(MetricsRegistry, TypeMismatchIsIgnoredNotFatal) {
  Registry reg;
  reg.enable(true);
  reg.addCounter("x", 1);
  reg.setGauge("x", 9.0);   // same name, different type: dropped
  reg.observe("x", 1.0);    // likewise
  EXPECT_EQ(reg.seriesCount(), 1u);
  EXPECT_NE(reg.toJson().find("\"value\":1"), std::string::npos);
}

TEST(MetricsRegistry, CardinalityCapDropsAndCounts) {
  Registry reg;
  reg.enable(true);
  for (std::size_t i = 0; i < Registry::kMaxSeries + 10; ++i)
    reg.addCounter("c", 1, {{"i", std::to_string(i)}});
  EXPECT_EQ(reg.seriesCount(), Registry::kMaxSeries);
  EXPECT_EQ(reg.droppedSeries(), 10u);
  EXPECT_NE(reg.toJson().find("\"dropped_series\":10"), std::string::npos);
}

TEST(MetricsRegistry, HistogramBucketBoundariesAreInclusive) {
  Registry reg;
  reg.enable(true);
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  // Exactly-on-bound samples land in that bound's bucket (le semantics);
  // above-all-bounds samples land in the overflow bucket.
  reg.observe("h", 1.0, {}, bounds);
  reg.observe("h", 2.0, {}, bounds);
  reg.observe("h", 2.5, {}, bounds);
  reg.observe("h", 4.0, {}, bounds);
  reg.observe("h", 100.0, {}, bounds);
  const std::string json = reg.toJson();
  EXPECT_NE(json.find("\"buckets\":[{\"le\":1,\"count\":1},"
                      "{\"le\":2,\"count\":1},{\"le\":4,\"count\":2}]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"overflow\":1"), std::string::npos);
  EXPECT_NE(json.find("\"count\":5"), std::string::npos);
  EXPECT_NE(json.find("\"min\":1"), std::string::npos);
  EXPECT_NE(json.find("\"max\":100"), std::string::npos);
}

TEST(MetricsRegistry, SnapshotIsByteIdenticalAcrossIdenticalRuns) {
  const auto fill = [](Registry& reg) {
    reg.enable(true);
    // Insertion order deliberately differs from sorted order.
    reg.addCounter("zeta", 5, {{"family", "raft"}});
    reg.addCounter("alpha", 2);
    reg.observe("rounds", 3.0, {{"family", "benor"}});
    reg.observe("rounds", 8.0, {{"family", "benor"}});
    reg.setGauge("temp", 0.25);
  };
  Registry a, b;
  fill(a);
  fill(b);
  EXPECT_EQ(a.toJson(), b.toJson());

  // Same series filled in a different call order: still identical.
  Registry c;
  c.enable(true);
  c.setGauge("temp", 0.25);
  c.observe("rounds", 3.0, {{"family", "benor"}});
  c.addCounter("alpha", 2);
  c.addCounter("zeta", 5, {{"family", "raft"}});
  c.observe("rounds", 8.0, {{"family", "benor"}});
  EXPECT_EQ(a.toJson(), c.toJson());
}

TEST(MetricsRegistry, ResetDropsSeriesKeepsEnabled) {
  Registry reg;
  reg.enable(true);
  reg.addCounter("c", 1);
  reg.reset();
  EXPECT_TRUE(reg.enabled());
  EXPECT_EQ(reg.seriesCount(), 0u);
}

TEST(MetricsRegistry, ResetAllowsReRegistrationUnderANewType) {
  // The first registration pins a name's type (later mismatched writes are
  // dropped); reset() forgets the pin along with the data.
  Registry reg;
  reg.enable(true);
  reg.addCounter("x", 1);
  reg.setGauge("x", 9.0);  // mismatched: dropped
  EXPECT_EQ(reg.seriesCount(), 1u);
  reg.reset();
  reg.setGauge("x", 9.0);  // now the first registration: a gauge
  EXPECT_EQ(reg.seriesCount(), 1u);
  EXPECT_NE(reg.toJson().find("\"gauges\":[{\"name\":\"x\""),
            std::string::npos)
      << reg.toJson();
}

TEST(MetricsRegistry, ResetClearsTheCardinalityCapAndDropCount) {
  Registry reg;
  reg.enable(true);
  for (std::size_t i = 0; i < Registry::kMaxSeries + 1; ++i)
    reg.addCounter("c", 1, {{"i", std::to_string(i)}});
  ASSERT_EQ(reg.droppedSeries(), 1u);
  reg.reset();
  EXPECT_EQ(reg.droppedSeries(), 0u);
  // Capacity is free again: a new series interns instead of dropping.
  reg.addCounter("fresh", 1);
  EXPECT_EQ(reg.seriesCount(), 1u);
  EXPECT_EQ(reg.droppedSeries(), 0u);
}

TEST(MetricsRegistry, DefaultBucketTopBoundaryIsInclusive) {
  // defaultBuckets() tops out at 65536; a sample exactly on the top bound
  // must land in that bucket, one past it in the overflow bucket.
  Registry reg;
  reg.enable(true);
  reg.observe("h", 65536.0);
  reg.observe("h", 65537.0);
  const std::string json = reg.toJson();
  EXPECT_NE(json.find("{\"le\":65536,\"count\":1}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"overflow\":1"), std::string::npos) << json;
}

TEST(JsonWriter, EscapesAndNestsDeterministically) {
  obs::JsonWriter w;
  w.beginObject();
  w.key("s").value("a\"b\\c\n\t");
  w.key("list").beginArray().value(1).value(true).value(2.5).endArray();
  w.key("null_like").value(std::nan(""));
  w.endObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\\t\",\"list\":[1,true,2.5],"
            "\"null_like\":null}");
}

TEST(JsonNumbers, IntegralAndRoundTripFormatting) {
  EXPECT_EQ(obs::formatJsonNumber(0.0), "0");
  EXPECT_EQ(obs::formatJsonNumber(42.0), "42");
  EXPECT_EQ(obs::formatJsonNumber(-3.0), "-3");
  EXPECT_EQ(obs::formatJsonNumber(2.5), "2.5");
  EXPECT_EQ(obs::formatJsonNumber(1.0 / 0.0), "null");
  // The chosen decimal form parses back to the same double.
  for (const double v : {0.1, 1.0 / 3.0, 1e-7, 12345.6789, 2e300}) {
    const std::string s = obs::formatJsonNumber(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

TEST(RunId, DeterministicAndSensitiveToInput) {
  EXPECT_EQ(obs::runId("abc"), obs::runId("abc"));
  EXPECT_NE(obs::runId("abc"), obs::runId("abd"));
  EXPECT_EQ(obs::runId("abc").size(), 16u);
}

TEST(RunId, SerializedConfigsCarryAStableStamp) {
  harness::BenOrConfig config;
  config.n = 4;
  config.inputs = {0, 1, 0, 1};
  config.seed = 99;
  const std::string text = harness::serialize(config);
  ASSERT_EQ(text.rfind("# run-id=", 0), 0u) << text;

  // The stamp is the hash of the payload, so re-serializing the parsed
  // config — and hashing the stamped text itself — reproduce it.
  const std::string stamp = text.substr(9, 16);
  EXPECT_EQ(harness::configRunId(text), stamp);
  const std::string again = harness::serialize(harness::parseBenOrConfig(text));
  EXPECT_EQ(again, text);

  // Different seed, different id.
  config.seed = 100;
  EXPECT_NE(harness::serialize(config).substr(9, 16), stamp);
}

TEST(RunId, CounterexampleRoundTripPreservesRunId) {
  check::Scenario scenario;
  scenario.family = check::Family::kBenOr;
  scenario.benOr.n = 4;
  scenario.benOr.inputs = {0, 1, 0, 1};
  scenario.benOr.seed = 7;
  scenario.benOr.maxDelay = 2;

  const check::RecordedRun run = check::recordRun(scenario);
  check::CounterexampleFile file;
  file.scenario = scenario;
  file.invariant = "example";
  file.detail = "round-trip test";
  file.trace = run.trace;

  const std::string text = check::serializeCounterexample(file);
  EXPECT_NE(text.find("runid="), std::string::npos);

  const check::CounterexampleFile parsed = check::parseCounterexample(text);
  EXPECT_FALSE(parsed.runId.empty());
  EXPECT_EQ(parsed.runId,
            harness::configRunId(check::serialize(parsed.scenario)));
  EXPECT_EQ(check::serializeCounterexample(parsed), text);

  // Pre-runid files (the v1 format before stamping) still parse, and the
  // id is recomputed from the scenario.
  std::string legacy = text;
  const auto pos = legacy.find("runid=");
  const auto eol = legacy.find('\n', pos);
  legacy.erase(pos, eol - pos + 1);
  const check::CounterexampleFile old = check::parseCounterexample(legacy);
  EXPECT_EQ(old.runId, parsed.runId);
}

}  // namespace
}  // namespace ooc

// Tests for the deterministic parallel experiment scheduler (src/sweep/)
// and the thread-local run arenas that make per-worker simulator reuse
// cheap:
//
//  * mechanics — every index runs exactly once at any thread count, stop
//    requests halt chunk issue, body exceptions propagate to the caller
//    and leave the persistent pool reusable;
//  * determinism contract — check::explore findings and the metrics
//    registry snapshot are byte-identical across --threads values on a
//    full sweep, and the bench trial fan-out (runCompositionTrials)
//    produces identical CellStats and registry JSON at 1, 2, and 16
//    workers;
//  * progress — the contention-free heartbeat emits strictly increasing
//    counts and exact multiples at one thread;
//  * arenas — thousands of tiny back-to-back runs keep the thread-local
//    pools bounded (no growth);
//  * telemetry — per-worker stats fold to the sweep totals, and the
//    steal-heavy schedule (exercised under tsan in CI) stays coverage-
//    exact.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "check/checker.hpp"
#include "check/invariant.hpp"
#include "check/strategy.hpp"
#include "compose/composition.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/run_arena.hpp"
#include "sim/simulator.hpp"
#include "sweep/scheduler.hpp"

namespace ooc {
namespace {

// ---------------------------------------------------------------------------
// Mechanics

TEST(Scheduler, CoversEveryIndexExactlyOnce) {
  for (const std::size_t total : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{100},
                                  std::size_t{1000}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{16}}) {
      std::vector<std::atomic<int>> hits(total);
      sweep::Options options;
      options.threads = threads;
      const sweep::SweepStats stats = sweep::parallelFor(
          total,
          [&](std::size_t index, sweep::Control&) {
            hits[index].fetch_add(1, std::memory_order_relaxed);
          },
          options);
      EXPECT_EQ(stats.configs, total);
      for (std::size_t i = 0; i < total; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                     << " threads, total " << total;
    }
  }
}

TEST(Scheduler, StopRequestHaltsChunkIssue) {
  // Single worker, chunk size 1: the stop lands after index 5 runs, so
  // exactly indices 0..5 execute — deterministic because one worker drains
  // its own queue in order.
  sweep::Options options;
  options.threads = 1;
  options.chunkSize = 1;
  const sweep::SweepStats stats = sweep::parallelFor(
      10'000,
      [&](std::size_t index, sweep::Control& control) {
        if (index == 5) control.requestStop();
      },
      options);
  EXPECT_EQ(stats.configs, 6u);

  // Multi-worker stop is racy by design (a worker finishes the chunk it
  // already started), but each worker re-checks the flag before its next
  // chunk — with every body requesting stop, nobody runs more than one
  // chunk regardless of how the OS schedules the workers.
  sweep::Options wide;
  wide.threads = 8;
  wide.chunkSize = 1;
  const sweep::SweepStats wideStats = sweep::parallelFor(
      100'000,
      [&](std::size_t, sweep::Control& control) { control.requestStop(); },
      wide);
  EXPECT_GE(wideStats.configs, 1u);
  EXPECT_LE(wideStats.configs, 8u);
}

TEST(Scheduler, BodyExceptionPropagatesAndPoolStaysUsable) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    sweep::Options options;
    options.threads = threads;
    EXPECT_THROW(
        sweep::parallelFor(
            64,
            [&](std::size_t index, sweep::Control&) {
              if (index == 17) throw std::runtime_error("planted");
            },
            options),
        std::runtime_error);

    // The persistent pool must come back clean for the next job.
    std::atomic<std::size_t> ran{0};
    const sweep::SweepStats stats = sweep::parallelFor(
        128,
        [&](std::size_t, sweep::Control&) {
          ran.fetch_add(1, std::memory_order_relaxed);
        },
        options);
    EXPECT_EQ(stats.configs, 128u);
    EXPECT_EQ(ran.load(), 128u);
  }
}

// ---------------------------------------------------------------------------
// Progress heartbeat

TEST(Scheduler, ProgressIsStrictlyIncreasingAndExactAtOneThread) {
  std::mutex mutex;
  std::vector<std::size_t> emitted;
  sweep::Options options;
  options.threads = 1;
  options.progressEvery = 100;
  options.onProgress = [&](std::size_t done, std::size_t total) {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(total, 1000u);
    emitted.push_back(done);
  };
  sweep::parallelFor(1000, [](std::size_t, sweep::Control&) {}, options);
  // One worker crosses each threshold exactly: 100, 200, ..., 1000.
  ASSERT_EQ(emitted.size(), 10u);
  for (std::size_t i = 0; i < emitted.size(); ++i)
    EXPECT_EQ(emitted[i], (i + 1) * 100);
}

TEST(Scheduler, ProgressIsMonotoneUnderConcurrency) {
  std::mutex mutex;
  std::vector<std::size_t> emitted;
  sweep::Options options;
  options.threads = 8;
  options.progressEvery = 50;
  options.onProgress = [&](std::size_t done, std::size_t) {
    std::lock_guard<std::mutex> lock(mutex);
    emitted.push_back(done);
  };
  sweep::parallelFor(2000, [](std::size_t, sweep::Control&) {}, options);
  ASSERT_FALSE(emitted.empty());
  for (std::size_t i = 1; i < emitted.size(); ++i)
    EXPECT_GT(emitted[i], emitted[i - 1])
        << "heartbeat emitted a stale count";
  EXPECT_LE(emitted.back(), 2000u);
}

// ---------------------------------------------------------------------------
// Determinism contract: checker sweeps

std::string findingsKey(const check::CheckReport& report) {
  std::string key;
  for (const check::Finding& finding : report.findings) {
    key += std::to_string(finding.configIndex);
    key += ':';
    key += finding.violation.invariant;
    key += ':';
    key += finding.violation.detail;
    key += '\n';
  }
  return key;
}

TEST(Determinism, ExploreIsByteIdenticalAcrossThreadCounts) {
  // Full sweep (maxFindings = 0): early-stop cutoffs are the one
  // intentionally thread-dependent behavior, so the byte-identity
  // guarantee is stated over complete sweeps.
  check::Scenario base;
  base.family = check::Family::kBenOr;
  base.benOr.n = 5;
  base.benOr.inputs = {0, 1, 0, 1, 1};
  base.benOr.mode = harness::BenOrConfig::Mode::kDecomposed;
  base.benOr.reconciliator = harness::BenOrConfig::Reconciliator::kLocalCoin;
  base.benOr.fault = harness::BenOrConfig::Fault::kVacAdoptFlip;
  check::RandomWalkStrategy::Options walk;
  walk.runs = 24;
  const check::RandomWalkStrategy strategy(base, walk);
  const auto suite = check::safetySuite();

  std::string baselineFindings;
  std::string baselineMetrics;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{16}}) {
    obs::metrics().reset();
    obs::metrics().enable(true);
    check::CheckerOptions options;
    options.threads = threads;
    options.maxFindings = 0;
    options.shrink = false;
    const check::CheckReport report =
        check::explore(strategy, check::view(suite), options);
    const std::string findings = findingsKey(report);
    const std::string metrics = obs::metrics().toJson();
    obs::metrics().enable(false);
    EXPECT_EQ(report.configsExplored, strategy.size());
    if (threads == 1) {
      baselineFindings = findings;
      baselineMetrics = metrics;
      EXPECT_FALSE(findings.empty()) << "planted bug not found";
    } else {
      EXPECT_EQ(findings, baselineFindings) << "at " << threads << " threads";
      EXPECT_EQ(metrics, baselineMetrics) << "at " << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism contract: bench trial fan-out

std::string summaryKey(const Summary& summary) {
  return std::to_string(summary.count()) + '/' +
         std::to_string(summary.sum()) + '/' +
         std::to_string(summary.empty() ? 0.0 : summary.min()) + '/' +
         std::to_string(summary.empty() ? 0.0 : summary.max()) + '/' +
         std::to_string(summary.empty() ? 0.0 : summary.quantile(0.5));
}

std::string cellKey(const bench::CellStats& cell) {
  return std::to_string(cell.runs) + '|' + std::to_string(cell.decided) +
         '|' + std::to_string(cell.decidedInFirstRound) + '|' +
         std::to_string(cell.agreementOk) + std::to_string(cell.validityOk) +
         std::to_string(cell.auditsOk) + '|' + summaryKey(cell.rounds) + '|' +
         summaryKey(cell.messages);
}

TEST(Determinism, CompositionTrialsAreByteIdenticalAcrossThreadCounts) {
  compose::Composition composition;
  composition.detector = "benor-vac";
  composition.driver = "lottery";
  composition.n = 5;
  composition.inputs = bench::alternatingInputs(5);
  composition.crashes = {{4, 40}};

  std::string baselineCell;
  std::string baselineMetrics;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{16}}) {
    obs::metrics().reset();
    obs::metrics().enable(true);
    bench::setTrialThreads(threads);
    const bench::CellStats cell =
        bench::runCompositionTrials(composition, 24, 910'000);
    const std::string key = cellKey(cell);
    const std::string metrics = obs::metrics().toJson();
    obs::metrics().enable(false);
    EXPECT_EQ(cell.runs, 24);
    if (threads == 1) {
      baselineCell = key;
      baselineMetrics = metrics;
    } else {
      EXPECT_EQ(key, baselineCell) << "at " << threads << " threads";
      EXPECT_EQ(metrics, baselineMetrics) << "at " << threads << " threads";
    }
  }
  bench::setTrialThreads(0);
}

// ---------------------------------------------------------------------------
// Run arenas: reuse without growth

class IdleProcess final : public Process {
 public:
  void onMessage(ProcessId, const Message&) override {}
};

TEST(RunArena, ThousandsOfTinyRunsStayBounded) {
  for (int i = 0; i < 2000; ++i) {
    Simulator sim(SimConfig{}, std::make_unique<SynchronousNetwork>());
    sim.addProcess(std::make_unique<IdleProcess>());
    sim.addProcess(std::make_unique<IdleProcess>());
    sim.run();
  }
  // Every pool is capped: back-to-back churn recycles, it never hoards.
  EXPECT_LE(run_arena::poolSize<std::function<void()>>(),
            run_arena::kPoolCap);
  EXPECT_LE(run_arena::poolSize<ProcessId>(), run_arena::kPoolCap);
  EXPECT_LE(run_arena::poolSize<Tick>(), run_arena::kPoolCap);
  EXPECT_LE(EventQueue::threadArenaSize(), std::size_t{4});
}

TEST(RunArena, CheckoutReusesRecycledCapacity) {
  run_arena::drain<int>();
  std::vector<int> scratch;
  scratch.reserve(128);
  run_arena::recycle(std::move(scratch));
  ASSERT_EQ(run_arena::poolSize<int>(), 1u);
  const std::vector<int> reused = run_arena::checkout<int>();
  EXPECT_TRUE(reused.empty());
  EXPECT_GE(reused.capacity(), 128u);
  EXPECT_EQ(run_arena::poolSize<int>(), 0u);

  // Capacity-0 vectors (moved-from buffers) are dropped, not pooled.
  run_arena::recycle(std::vector<int>{});
  EXPECT_EQ(run_arena::poolSize<int>(), 0u);
}

// ---------------------------------------------------------------------------
// Telemetry folds + steal-heavy schedule (tsan exercises the races in CI)

TEST(Scheduler, StealHeavyScheduleStaysCoverageExactAndFoldsStats) {
  std::vector<std::atomic<int>> hits(256);
  sweep::Options options;
  options.threads = 16;
  options.chunkSize = 1;  // maximal steal opportunity
  const sweep::SweepStats stats = sweep::parallelFor(
      hits.size(),
      [&](std::size_t index, sweep::Control&) {
        hits[index].fetch_add(1, std::memory_order_relaxed);
        // Uneven bodies: early indices are slow, so idle workers must
        // steal from the back of busy queues to finish.
        if (index % 16 == 0)
          std::this_thread::sleep_for(std::chrono::microseconds(300));
      },
      options);
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;

  EXPECT_EQ(stats.configs, hits.size());
  EXPECT_EQ(stats.chunksDealt, hits.size());
  std::size_t foldedConfigs = 0;
  std::size_t foldedOwned = 0;
  std::size_t foldedStolen = 0;
  for (const sweep::WorkerStats& worker : stats.perWorker) {
    foldedConfigs += worker.configs;
    foldedOwned += worker.chunksOwned;
    foldedStolen += worker.chunksStolen;
  }
  EXPECT_EQ(foldedConfigs, stats.configs);
  EXPECT_EQ(foldedOwned + foldedStolen, stats.chunksDealt);
  EXPECT_EQ(foldedStolen, stats.steals);
}

TEST(Scheduler, AccumulatorSumsSweepsAndRendersJson) {
  sweep::Options options;
  options.threads = 2;
  const sweep::SweepStats first =
      sweep::parallelFor(100, [](std::size_t, sweep::Control&) {}, options);
  const sweep::SweepStats second =
      sweep::parallelFor(50, [](std::size_t, sweep::Control&) {}, options);
  sweep::SweepAccumulator accumulator;
  EXPECT_TRUE(accumulator.empty());
  accumulator.add(first);
  accumulator.add(second);
  EXPECT_FALSE(accumulator.empty());
  EXPECT_EQ(accumulator.sweeps, 2u);
  EXPECT_EQ(accumulator.configs, 150u);

  const std::string json = sweep::toJson(accumulator);
  EXPECT_NE(json.find("\"sweeps\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"configs\":150"), std::string::npos) << json;
  EXPECT_NE(json.find("\"per_worker\""), std::string::npos) << json;

  const std::string single = sweep::toJson(first);
  EXPECT_NE(single.find("\"workers\""), std::string::npos) << single;
  EXPECT_NE(single.find("\"chunk_size\""), std::string::npos) << single;
}

}  // namespace
}  // namespace ooc

// Single-decree Paxos tests: safety/liveness sweeps, duelling proposers,
// crash faults, the choose-highest-accepted rule, and the framework
// instrumentation (vacillate/adopt/commit + retry-as-reconciliator).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "paxos/paxos_node.hpp"
#include "sim/simulator.hpp"

namespace ooc {
namespace {

struct PaxosRun {
  bool allDecided = false;
  bool agreementViolated = false;
  bool validityViolated = false;
  Value decidedValue = kNoValue;
  Tick lastDecisionTick = 0;
  std::uint64_t ballots = 0;
  std::uint64_t reconciliations = 0;
  bool confidenceOrderOk = true;
};

PaxosRun runPaxos(std::size_t n, std::uint64_t seed,
                  paxos::PaxosConfig config = {},
                  std::vector<std::pair<ProcessId, Tick>> crashes = {},
                  double drop = 0.0, Tick maxTicks = 1'000'000) {
  SimConfig simConfig;
  simConfig.seed = seed;
  simConfig.maxTicks = maxTicks;
  UniformDelayNetwork::Options net;
  net.minDelay = 1;
  net.maxDelay = 8;
  net.dropProbability = drop;
  Simulator sim(simConfig, std::make_unique<UniformDelayNetwork>(net));

  std::vector<paxos::PaxosNode*> nodes;
  std::vector<Value> inputs;
  for (ProcessId id = 0; id < n; ++id) {
    inputs.push_back(static_cast<Value>(100 + id));
    auto node = std::make_unique<paxos::PaxosNode>(inputs.back(), config);
    nodes.push_back(node.get());
    sim.addProcess(std::move(node));
  }
  sim.setValidValues(inputs);
  for (const auto& [id, tick] : crashes) sim.crashAt(id, tick);
  sim.stopWhenAllCorrectDecided();
  sim.run();

  PaxosRun run;
  run.allDecided = sim.allCorrectDecided();
  run.agreementViolated = sim.agreementViolated();
  run.validityViolated = sim.validityViolated();
  for (ProcessId id = 0; id < n; ++id) {
    const auto& decision = sim.decision(id);
    if (decision.decided) {
      run.decidedValue = decision.value;
      run.lastDecisionTick = std::max(run.lastDecisionTick, decision.at);
    }
    run.ballots += nodes[id]->ballotsStarted();
    run.reconciliations += nodes[id]->reconciliatorInvocations();
    // Instrumentation sanity: a commit must follow adopt-level evidence
    // unless it arrived via the decided-announcement short-circuit, in
    // which case the announcing peer held that evidence. Locally we check:
    // adopt never after commit.
    bool sawCommit = false;
    for (const auto& change : nodes[id]->confidenceLog()) {
      if (change.confidence == Confidence::kCommit) sawCommit = true;
      if (sawCommit && change.confidence == Confidence::kVacillate)
        run.confidenceOrderOk = false;
    }
  }
  return run;
}

TEST(Paxos, QuietClusterDecides) {
  const PaxosRun run = runPaxos(5, 1);
  EXPECT_TRUE(run.allDecided);
  EXPECT_FALSE(run.agreementViolated);
  EXPECT_FALSE(run.validityViolated);
  EXPECT_TRUE(run.confidenceOrderOk);
  EXPECT_GE(run.ballots, 1u);
}

class PaxosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaxosSweep, SafetyAndLivenessAcrossSeeds) {
  for (std::size_t n : {3, 5, 9}) {
    const PaxosRun run = runPaxos(n, GetParam());
    EXPECT_TRUE(run.allDecided) << "n=" << n;
    EXPECT_FALSE(run.agreementViolated) << "n=" << n;
    EXPECT_FALSE(run.validityViolated) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

TEST(Paxos, DuellingProposersEventuallyResolve) {
  // Aggressive identical retry windows maximize duels; the randomized
  // backoff must still converge in every seeded run.
  paxos::PaxosConfig config;
  config.retryMin = 20;
  config.retryMax = 30;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const PaxosRun run = runPaxos(5, 100 + seed, config);
    EXPECT_TRUE(run.allDecided) << "seed " << seed;
    EXPECT_FALSE(run.agreementViolated) << "seed " << seed;
  }
}

TEST(Paxos, SurvivesMinorityCrashes) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const PaxosRun run = runPaxos(
        5, 200 + seed, {},
        {{static_cast<ProcessId>(seed % 5), 50},
         {static_cast<ProcessId>((seed + 2) % 5), 300}});
    EXPECT_TRUE(run.allDecided) << "seed " << seed;
    EXPECT_FALSE(run.agreementViolated) << "seed " << seed;
  }
}

TEST(Paxos, SafeUnderMessageLoss) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const PaxosRun run =
        runPaxos(5, 300 + seed, {}, {}, /*drop=*/0.15, 3'000'000);
    EXPECT_FALSE(run.agreementViolated) << "seed " << seed;
    EXPECT_TRUE(run.allDecided) << "seed " << seed;
  }
}

TEST(Paxos, MoreContentionMeansMoreReconciliation) {
  paxos::PaxosConfig calm;
  calm.retryMin = 400;
  calm.retryMax = 800;
  paxos::PaxosConfig frantic;
  frantic.retryMin = 15;
  frantic.retryMax = 25;
  std::uint64_t calmRecon = 0, franticRecon = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    calmRecon += runPaxos(5, 400 + seed, calm).reconciliations;
    franticRecon += runPaxos(5, 400 + seed, frantic).reconciliations;
  }
  EXPECT_GT(franticRecon, calmRecon);
}

TEST(Paxos, SingleNodeDecidesImmediately) {
  const PaxosRun run = runPaxos(1, 7);
  EXPECT_TRUE(run.allDecided);
  EXPECT_EQ(run.decidedValue, 100);
}

TEST(Paxos, DeterministicAcrossRuns) {
  const PaxosRun a = runPaxos(5, 42);
  const PaxosRun b = runPaxos(5, 42);
  EXPECT_EQ(a.decidedValue, b.decidedValue);
  EXPECT_EQ(a.lastDecisionTick, b.lastDecisionTick);
  EXPECT_EQ(a.ballots, b.ballots);
}

// --- protocol-rule unit checks via a scripted cluster ----------------------

TEST(Paxos, ChoosesHighestAcceptedValueNotItsOwn) {
  // Force the scenario behind the choose-highest rule: node 0 gets its
  // value accepted by a minority+self, stalls, and a later proposer must
  // adopt node 0's value rather than its own. We engineer it with crashes:
  // node 0 proposes, reaches node 1, then both... simpler to verify the
  // emergent property across seeds: whenever any Accepted tally existed
  // for value v and the run later decided, deciding a DIFFERENT value
  // requires that v never reached a majority. Weak form: the decided
  // value equals the first value that ever reached majority acceptance.
  // Paxos's agreement theorem collapses this to: every run agrees and the
  // decided value is some proposer's input — already covered; here we
  // additionally pin that under heavy duels the decided value can be a
  // NON-first proposer's input (the rule actually engages).
  paxos::PaxosConfig config;
  config.retryMin = 20;
  config.retryMax = 28;
  std::set<Value> decisions;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const PaxosRun run = runPaxos(5, 500 + seed, config);
    ASSERT_TRUE(run.allDecided);
    decisions.insert(run.decidedValue);
  }
  EXPECT_GT(decisions.size(), 1u)
      << "winner never varied; contention machinery untested";
}

// ---------------------------------------------------------------------------
// Acceptor/proposer rule unit tests via a manual context.

class PaxosManualContext final : public Context {
 public:
  explicit PaxosManualContext(std::size_t n, ProcessId self = 0)
      : n_(n), self_(self) {}

  ProcessId self() const noexcept override { return self_; }
  std::size_t processCount() const noexcept override { return n_; }
  Tick now() const noexcept override { return 0; }
  Rng& rng() noexcept override { return rng_; }
  void send(ProcessId to, std::unique_ptr<Message> msg) override {
    sent.emplace_back(to, std::move(msg));
  }
  void broadcast(const Message& msg) override {
    for (ProcessId to = 0; to < n_; ++to) sent.emplace_back(to, msg.clone());
  }
  TimerId setTimer(Tick) override { return ++timers; }
  void cancelTimer(TimerId) noexcept override {}
  void decide(Value v) override { decisions.push_back(v); }

  template <typename T>
  const T* lastTo(ProcessId to) const {
    for (auto it = sent.rbegin(); it != sent.rend(); ++it) {
      if (it->first != to) continue;
      if (const T* typed = it->second->template as<T>()) return typed;
    }
    return nullptr;
  }

  std::vector<std::pair<ProcessId, std::unique_ptr<Message>>> sent;
  std::vector<Value> decisions;
  TimerId timers = 0;

 private:
  std::size_t n_;
  ProcessId self_;
  Rng rng_{11};
};

struct PaxosBench {
  PaxosBench() : ctx(5), node(500, paxos::PaxosConfig{}) {
    node.bind(ctx);
    node.onStart();
  }
  PaxosManualContext ctx;
  paxos::PaxosNode node;
};

TEST(PaxosUnit, AcceptorPromisesHigherAndNacksLower) {
  PaxosBench bench;
  bench.node.onMessage(1, paxos::Prepare(50));
  const auto* promise = bench.ctx.lastTo<paxos::Promise>(1);
  ASSERT_NE(promise, nullptr);
  EXPECT_EQ(promise->ballot, 50u);
  EXPECT_EQ(promise->acceptedBallot, 0u);

  bench.node.onMessage(2, paxos::Prepare(40));
  const auto* nack = bench.ctx.lastTo<paxos::Nack>(2);
  ASSERT_NE(nack, nullptr);
  EXPECT_EQ(nack->promised, 50u);
}

TEST(PaxosUnit, AcceptorIgnoresStaleAccept) {
  PaxosBench bench;
  bench.node.onMessage(1, paxos::Prepare(50));
  bench.ctx.sent.clear();
  bench.node.onMessage(1, paxos::Accept(40, 7));
  // No Accepted broadcast for a stale ballot.
  EXPECT_EQ(bench.ctx.lastTo<paxos::Accepted>(0), nullptr);

  bench.node.onMessage(1, paxos::Accept(50, 7));
  const auto* accepted = bench.ctx.lastTo<paxos::Accepted>(0);
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->value, 7);
}

TEST(PaxosUnit, PromiseCarriesAcceptedProposal) {
  PaxosBench bench;
  bench.node.onMessage(1, paxos::Prepare(50));
  bench.node.onMessage(1, paxos::Accept(50, 7));
  bench.node.onMessage(2, paxos::Prepare(60));
  const auto* promise = bench.ctx.lastTo<paxos::Promise>(2);
  ASSERT_NE(promise, nullptr);
  EXPECT_EQ(promise->acceptedBallot, 50u);
  EXPECT_EQ(promise->acceptedValue, 7);
}

TEST(PaxosUnit, ProposerHonoursHighestAcceptedValue) {
  PaxosBench bench;
  bench.node.onTimer(bench.ctx.timers);  // start a ballot
  bench.ctx.sent.clear();
  const paxos::Ballot b = 5 * 1 + 0 + 1;  // attempt 1, id 0
  // Majority of promises; peer 2 reports an older accepted proposal.
  bench.node.onMessage(1, paxos::Promise(b, 0, kNoValue));
  bench.node.onMessage(2, paxos::Promise(b, 3, 777));
  bench.node.onMessage(3, paxos::Promise(b, 0, kNoValue));
  const auto* accept = bench.ctx.lastTo<paxos::Accept>(0);
  ASSERT_NE(accept, nullptr);
  EXPECT_EQ(accept->value, 777) << "must adopt, not push its own input";
}

TEST(PaxosUnit, LearnerNeedsDistinctMajority) {
  PaxosBench bench;
  bench.node.onMessage(1, paxos::Accepted(9, 5));
  bench.node.onMessage(1, paxos::Accepted(9, 5));  // duplicate sender
  bench.node.onMessage(2, paxos::Accepted(9, 5));
  EXPECT_FALSE(bench.node.decided());
  bench.node.onMessage(3, paxos::Accepted(9, 5));
  EXPECT_TRUE(bench.node.decided());
  EXPECT_EQ(bench.node.decisionValue(), 5);
  EXPECT_EQ(bench.ctx.decisions.size(), 1u);
}

TEST(PaxosUnit, DecidedAnnounceShortCircuits) {
  PaxosBench bench;
  bench.node.onMessage(4, paxos::DecidedAnnounce(123));
  EXPECT_TRUE(bench.node.decided());
  EXPECT_EQ(bench.node.decisionValue(), 123);
  // Re-announce must not double-decide.
  bench.node.onMessage(3, paxos::DecidedAnnounce(123));
  EXPECT_EQ(bench.ctx.decisions.size(), 1u);
}

TEST(PaxosUnit, NackAbandonsBallotAndJumpsAttempt) {
  PaxosBench bench;
  bench.node.onTimer(bench.ctx.timers);
  ASSERT_EQ(bench.node.ballotsStarted(), 1u);
  const paxos::Ballot mine = 5 * 1 + 0 + 1;
  bench.node.onMessage(2, paxos::Nack(mine, /*promised=*/5 * 9 + 3));
  EXPECT_EQ(bench.node.nacksReceived(), 1u);
  // Next retry must leapfrog the competing ballot.
  bench.ctx.sent.clear();
  bench.node.onTimer(bench.ctx.timers);
  const auto* prepare = bench.ctx.lastTo<paxos::Prepare>(0);
  ASSERT_NE(prepare, nullptr);
  EXPECT_GT(prepare->ballot, static_cast<paxos::Ballot>(5 * 9 + 3));
}

}  // namespace
}  // namespace ooc

// Crash-restart recovery tests across the stack: simulator restart
// semantics (incarnations, purged timers, stale in-flight messages), Raft
// and Paxos journal recovery, the durability invariants and restart
// strategy of the model checker, and counterexample replay for schedules
// containing restarts.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "check/replay.hpp"
#include "check/scenario.hpp"
#include "check/strategy.hpp"
#include "check/timeline.hpp"
#include "harness/scenarios.hpp"
#include "harness/serialize.hpp"
#include "paxos/paxos_node.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"

namespace ooc {
namespace {

using harness::RaftScenarioConfig;

// The pinned vote-amnesia schedule: found by
//   check --family raft --strategy restart --crash-before-sync
// and shrunk by the checker. p1 grants its term-1 vote, crashes at tick 250
// before any sync, rejoins one tick later and grants the same term's vote
// to a different candidate.
RaftScenarioConfig amnesiaConfig() {
  RaftScenarioConfig config;
  config.n = 5;
  config.seed = 3;
  config.dropProbability = 0.1;
  config.raft.durable = true;
  config.raft.syncBeforeReply = false;  // the crash-before-sync fault
  config.restarts.push_back({1, 250, 1});
  return config;
}

TEST(SimulatorRestart, StaleTimersAndInFlightMessagesDropped) {
  struct Ping final : MessageBase<Ping> {
    std::string describe() const override { return "ping"; }
  };
  // p0 sends one ping to p1 at tick 2; the network delivers 14 ticks
  // later, straddling p1's crash (tick 5) and restart (tick 15).
  class Sender final : public Process {
   public:
    void onStart() override { timer_ = ctx().setTimer(2); }
    void onTimer(TimerId id) override {
      if (id == timer_) ctx().send(1, std::make_unique<Ping>());
    }
    void onMessage(ProcessId, const Message&) override {}

   private:
    TimerId timer_ = 0;
  };
  class Probe final : public Process {
   public:
    void onStart() override {
      incarnationsSeen.push_back(ctx().incarnation());
      ctx().setTimer(100);
    }
    void onMessage(ProcessId, const Message&) override { ++messages; }
    void onTimer(TimerId) override { ++timersFired; }

    std::vector<std::uint32_t> incarnationsSeen;
    int messages = 0;
    int timersFired = 0;
  };

  SimConfig simConfig;
  simConfig.maxTicks = 300;
  UniformDelayNetwork::Options net;
  net.minDelay = 14;
  net.maxDelay = 14;
  Simulator sim(simConfig, std::make_unique<UniformDelayNetwork>(net));
  sim.addProcess(std::make_unique<Sender>());
  auto probeOwner = std::make_unique<Probe>();
  Probe* probe = probeOwner.get();
  sim.addProcess(std::move(probeOwner));
  sim.restartAt(1, 5, 10);
  sim.run();

  // The ping was sent at tick 2 to incarnation 0 and arrived at tick 16,
  // after the restart bumped p1 to incarnation 1: dropped as stale.
  EXPECT_EQ(probe->messages, 0);
  EXPECT_EQ(sim.messagesDroppedStale(), 1u);
  // The boot-time timer (due at tick 100) died with the crash; only the
  // re-armed one (due at tick 115) fired.
  EXPECT_EQ(sim.timersPurgedOnCrash(), 1u);
  EXPECT_EQ(probe->timersFired, 1);
  // onStart ran once per incarnation, and the context exposes the bump.
  EXPECT_EQ(probe->incarnationsSeen,
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(sim.restarts(), 1u);
  EXPECT_EQ(sim.incarnation(1), 1u);
}

TEST(RaftRecovery, DurableSyncRestartsAreCleanAndLive) {
  bool sawRecovery = false;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RaftScenarioConfig config;
    config.n = 5;
    config.seed = seed;
    config.dropProbability = 0.1;
    config.raft.durable = true;
    config.raft.syncBeforeReply = true;
    config.restarts.push_back({0, 160, 5});
    config.restarts.push_back({1, 200, 5});
    config.maxTicks = 400'000;
    const auto result = harness::runRaft(config);
    EXPECT_TRUE(result.allDecided) << "seed " << seed;
    EXPECT_FALSE(result.agreementViolated) << "seed " << seed;
    EXPECT_FALSE(result.voteAmnesia) << "seed " << seed;
    EXPECT_FALSE(result.commitRegression) << "seed " << seed;
    EXPECT_EQ(result.recoveries, result.restarts) << "seed " << seed;
    if (result.recoveries > 0 && result.recoveredRecords > 0)
      sawRecovery = true;
  }
  // At least one schedule actually restarted a node that had journaled
  // state — otherwise this test proves nothing about recovery.
  EXPECT_TRUE(sawRecovery);
}

TEST(RaftRecovery, CrashBeforeSyncReachesVoteAmnesia) {
  const auto result = harness::runRaft(amnesiaConfig());
  EXPECT_TRUE(result.voteAmnesia);
  EXPECT_FALSE(result.voteAmnesiaDetail.empty());
  EXPECT_GE(result.restarts, 1u);
}

TEST(RaftRecovery, SyncDisciplinePreventsTheSameSchedule) {
  RaftScenarioConfig config = amnesiaConfig();
  config.raft.syncBeforeReply = true;
  const auto result = harness::runRaft(config);
  EXPECT_FALSE(result.voteAmnesia);
  EXPECT_FALSE(result.commitRegression);
  EXPECT_FALSE(result.agreementViolated);
}

TEST(RaftRecovery, VolatileRestartTracksNoJournal) {
  RaftScenarioConfig config = amnesiaConfig();
  config.raft.durable = false;
  const auto result = harness::runRaft(config);
  EXPECT_EQ(result.walAppends, 0u);
  EXPECT_EQ(result.walSyncs, 0u);
  EXPECT_EQ(result.recoveredRecords, 0u);
}

TEST(PaxosRecovery, DurableAcceptorsKeepAgreementAcrossRestarts) {
  bool sawRecovery = false;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SimConfig simConfig;
    simConfig.seed = seed;
    simConfig.maxTicks = 2'000'000;
    UniformDelayNetwork::Options net;
    net.minDelay = 1;
    net.maxDelay = 5;
    net.dropProbability = 0.1;
    Simulator sim(simConfig, std::make_unique<UniformDelayNetwork>(net));
    paxos::PaxosConfig config;
    config.durable = true;
    config.syncBeforeReply = true;
    std::vector<paxos::PaxosNode*> nodes;
    std::vector<Value> inputs;
    for (ProcessId id = 0; id < 5; ++id) {
      inputs.push_back(static_cast<Value>(id));
      auto node = std::make_unique<paxos::PaxosNode>(inputs.back(), config);
      nodes.push_back(node.get());
      sim.addProcess(std::move(node));
    }
    sim.setValidValues(inputs);
    // Proposers arm their first retry timer in [100, 200] and a round
    // completes within ~10-30 ticks, so the acceptor journals only have
    // content in a narrow window; these ticks land inside it.
    sim.restartAt(0, 118, 15);
    sim.restartAt(1, 126, 15);
    sim.stopWhenAllCorrectDecided();
    sim.run();

    EXPECT_TRUE(sim.allCorrectDecided()) << "seed " << seed;
    EXPECT_FALSE(sim.agreementViolated()) << "seed " << seed;
    for (const paxos::PaxosNode* node : nodes) {
      for (const Value v : node->decisionHistory())
        EXPECT_EQ(v, node->decisionHistory().front()) << "seed " << seed;
      if (node->recoveries() > 0 &&
          node->lastRecovery().recordsRecovered > 0)
        sawRecovery = true;
    }
  }
  EXPECT_TRUE(sawRecovery);
}

TEST(RecoverySerialize, RestartFieldsRoundTrip) {
  RaftScenarioConfig config;
  config.n = 4;
  config.seed = 9;
  config.restarts.push_back({1, 200, 30});
  config.restarts.push_back({3, 410, 7});
  config.raft.durable = true;
  config.raft.syncBeforeReply = false;
  config.raft.storage.tornTailProbability = 0.25;
  config.raft.storage.corruptProbability = 0.125;

  const std::string text = harness::serialize(config);
  EXPECT_NE(text.find("restart=1@200+30"), std::string::npos);
  EXPECT_NE(text.find("restart=3@410+7"), std::string::npos);
  const RaftScenarioConfig parsed = harness::parseRaftConfig(text);
  ASSERT_EQ(parsed.restarts.size(), 2u);
  EXPECT_EQ(parsed.restarts[0].id, 1u);
  EXPECT_EQ(parsed.restarts[0].at, 200u);
  EXPECT_EQ(parsed.restarts[0].downtime, 30u);
  EXPECT_EQ(parsed.restarts[1].id, 3u);
  EXPECT_TRUE(parsed.raft.durable);
  EXPECT_FALSE(parsed.raft.syncBeforeReply);
  EXPECT_DOUBLE_EQ(parsed.raft.storage.tornTailProbability, 0.25);
  EXPECT_DOUBLE_EQ(parsed.raft.storage.corruptProbability, 0.125);
  // The round trip is exact: re-serializing yields the same run-id.
  EXPECT_EQ(harness::configRunId(harness::serialize(parsed)),
            harness::configRunId(text));
}

TEST(RecoverySerialize, OldConfigsParseWithVolatileDefaults) {
  // A pre-durability config (no restart/durable/sync keys) must keep its
  // old meaning: no journal, no restarts.
  RaftScenarioConfig old;
  old.n = 5;
  old.seed = 12;
  std::string text = harness::serialize(old);
  // Strip the new keys to simulate a file written before they existed.
  std::string pruned;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("durable=", 0) == 0 ||
        line.rfind("sync-before-reply=", 0) == 0 ||
        line.rfind("torn-prob=", 0) == 0 ||
        line.rfind("corrupt-prob=", 0) == 0)
      continue;
    pruned += line + "\n";
  }
  const RaftScenarioConfig parsed = harness::parseRaftConfig(pruned);
  EXPECT_FALSE(parsed.raft.durable);
  EXPECT_TRUE(parsed.raft.syncBeforeReply);
  EXPECT_TRUE(parsed.restarts.empty());
  EXPECT_EQ(parsed.n, 5u);
}

TEST(RecoveryChecker, InvariantsFireOnlyOnRaftAmnesia) {
  check::Scenario scenario;
  scenario.family = check::Family::kRaft;
  scenario.raft = amnesiaConfig();

  const auto report = check::runScenario(scenario);
  const check::VoteAmnesiaInvariant amnesia;
  const auto violation = amnesia.check(scenario, report);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->invariant, std::string("no-vote-amnesia"));
  EXPECT_FALSE(violation->detail.empty());

  // The same report attached to a non-raft scenario is ignored (guard).
  check::Scenario benor;
  benor.family = check::Family::kBenOr;
  EXPECT_FALSE(amnesia.check(benor, report).has_value());

  const check::CommitRegressionInvariant regression;
  EXPECT_FALSE(regression.check(scenario, report).has_value());
}

TEST(RecoveryChecker, RestartStrategyIsDeterministicAndBounded) {
  check::Scenario base;
  base.family = check::Family::kRaft;
  base.raft.n = 5;
  base.raft.raft.durable = true;

  check::RestartScheduleStrategy::Options options;
  const check::RestartScheduleStrategy strategy(base, options);
  // Subsets of <= 1 process out of 5, each with |crashTicks| x |downtimes|
  // assignments, times seedsPerSchedule; plus the restart-free schedules.
  const std::size_t grid =
      options.crashTicks.size() * options.downtimes.size();
  EXPECT_EQ(strategy.size(),
            options.seedsPerSchedule * (1 + 5 * grid));
  for (const std::size_t index : {std::size_t{0}, strategy.size() / 2,
                                  strategy.size() - 1}) {
    const check::Scenario a = strategy.generate(index);
    const check::Scenario b = strategy.generate(index);
    EXPECT_EQ(check::serialize(a), check::serialize(b));
    EXPECT_LE(a.raft.restarts.size(), 1u);
  }
  EXPECT_THROW(
      check::RestartScheduleStrategy(check::Scenario{}, options),
      std::invalid_argument);
}

TEST(RecoveryReplay, CounterexampleWithRestartsReplaysBitIdentically) {
  check::Scenario scenario;
  scenario.family = check::Family::kRaft;
  scenario.raft = amnesiaConfig();

  const check::RecordedRun recorded = check::recordRun(scenario);
  ASSERT_TRUE(recorded.report.voteAmnesia);

  check::CounterexampleFile file;
  file.scenario = scenario;
  file.invariant = "no-vote-amnesia";
  file.detail = recorded.report.voteAmnesiaDetail;
  file.trace = recorded.trace;

  // The serialized form records the restart and survives a round trip.
  const std::string text = check::serializeCounterexample(file);
  EXPECT_NE(text.find("restart=1@250+1"), std::string::npos);
  const check::CounterexampleFile parsed =
      check::parseCounterexample(text);
  ASSERT_EQ(parsed.scenario.raft.restarts.size(), 1u);

  // Replaying the parsed file reproduces the exact schedule (restart
  // events included) and the violation.
  const check::ReplayResult replay =
      check::replayRun(parsed.scenario, parsed.trace);
  EXPECT_TRUE(replay.identical) << replay.divergence.value_or("");
  EXPECT_TRUE(replay.report.voteAmnesia);
  EXPECT_EQ(replay.report.voteAmnesiaDetail, file.detail);
}

TEST(RecoveryReplay, TimelineRendersRestartPoints) {
  check::Scenario scenario;
  scenario.family = check::Family::kRaft;
  scenario.raft = amnesiaConfig();
  const check::RecordedRun recorded = check::recordRun(scenario);

  check::CounterexampleFile file;
  file.scenario = scenario;
  file.invariant = "no-vote-amnesia";
  file.detail = recorded.report.voteAmnesiaDetail;
  file.trace = recorded.trace;

  const std::string timeline = check::renderTimeline(file, {});
  EXPECT_NE(timeline.find("CRASHED (incarnation 0 down"), std::string::npos);
  EXPECT_NE(timeline.find("RESTARTED (incarnation 1)"), std::string::npos);
  EXPECT_NE(timeline.find("bit-identical"), std::string::npos);
}

}  // namespace
}  // namespace ooc

// Guardrails for the simulator hot-path overhaul (zero-clone fan-out, tag
// dispatch, calendar event queue, lazy trace text):
//
//  * golden-trace determinism — the pinned scenarios must serialize
//    byte-identically to the artifacts in tests/golden/ (recorded before
//    the overhaul), proving the calendar queue and shared payloads did not
//    move a single event;
//  * payload aliasing — a fan-out constructs exactly one message instance
//    and every recipient sees the same object; duplication faults add
//    refs, not copies; the legacy broadcast clones exactly once per call;
//  * calendar ordering — timers beyond the queue's 1024-tick bucket window
//    fire in tick order through the overflow heap and cursor jumps;
//  * lazy rendering — Message::describe() runs only for observers that
//    opted in via ScheduleObserver::wantsMessageText().
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/golden.hpp"
#include "compose/registry.hpp"
#include "compose/run.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "sweep/scheduler.hpp"

namespace ooc {
namespace {

// ---------------------------------------------------------------------------
// Golden-trace determinism

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden artifact: " << path
                         << " (regenerate with tools/golden_gen)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(GoldenTrace, RecordedRunsAreByteIdentical) {
  const auto fixtures = check::goldenFixtures();
  // Six pre-policy fixtures (pinned under the lockstep scheduler) plus the
  // non-lockstep skew witness compose-ooo-skew-n5.
  ASSERT_GE(fixtures.size(), 7u);
  for (const auto& fixture : fixtures) {
    const std::string expected =
        readFile(std::string(OOC_GOLDEN_DIR "/") + fixture.name + ".golden");
    const std::string actual = check::renderGolden(fixture);
    // EQ on the whole string (not a line diff): the guarantee is bytes.
    EXPECT_EQ(actual, expected)
        << "schedule or serialization drift in fixture " << fixture.name;
  }
}

TEST(GoldenTrace, ParallelWorkersRenderByteIdenticalGoldens) {
  // Same artifacts, rendered through the experiment scheduler's worker
  // pool: per-worker arena reuse (bucket rings, timer tables, trace
  // buffers recycled across runs) must not move a single byte relative to
  // the sequential renders above.
  const auto fixtures = check::goldenFixtures();
  ASSERT_GE(fixtures.size(), 7u);
  std::vector<std::string> rendered(fixtures.size());
  sweep::Options options;
  options.threads = fixtures.size();
  sweep::parallelFor(
      fixtures.size(),
      [&](std::size_t index, sweep::Control&) {
        rendered[index] = check::renderGolden(fixtures[index]);
      },
      options);
  for (std::size_t i = 0; i < fixtures.size(); ++i) {
    const std::string expected =
        readFile(std::string(OOC_GOLDEN_DIR "/") + fixtures[i].name +
                 ".golden");
    EXPECT_EQ(rendered[i], expected)
        << "parallel render drift in fixture " << fixtures[i].name;
  }
}

// ---------------------------------------------------------------------------
// Payload aliasing

int countedConstructed = 0;
int countedDescribed = 0;

struct CountedMsg final : MessageBase<CountedMsg> {
  explicit CountedMsg(int v = 0) : v(v) { ++countedConstructed; }
  CountedMsg(const CountedMsg& other) : MessageBase(other), v(other.v) {
    ++countedConstructed;
  }
  int v;
  std::string describe() const override {
    ++countedDescribed;
    return "counted(" + std::to_string(v) + ")";
  }
};

/// Records the identity of every delivered payload.
class AddressRecorder : public Process {
 public:
  void onMessage(ProcessId, const Message& message) override {
    addresses.push_back(&message);
  }
  std::vector<const Message*> addresses;
};

class FanoutSender final : public AddressRecorder {
 public:
  void onStart() override { ctx().fanout(makeMessage<CountedMsg>(7)); }
};

TEST(PayloadSharing, FanoutConstructsOnceAndAliasesEveryDelivery) {
  countedConstructed = 0;
  constexpr std::size_t kN = 8;
  Simulator sim(SimConfig{}, std::make_unique<SynchronousNetwork>());
  std::vector<AddressRecorder*> procs;
  procs.push_back(new FanoutSender);
  sim.addProcess(std::unique_ptr<Process>(procs.back()));
  for (std::size_t i = 1; i < kN; ++i) {
    procs.push_back(new AddressRecorder);
    sim.addProcess(std::unique_ptr<Process>(procs.back()));
  }
  sim.run();

  EXPECT_EQ(countedConstructed, 1);  // one instance for the whole broadcast
  EXPECT_EQ(sim.messagesCloned(), 0u);
  EXPECT_EQ(sim.messagesSent(), kN);
  EXPECT_EQ(sim.messagesDelivered(), kN);
  const Message* shared = nullptr;
  for (AddressRecorder* proc : procs) {
    ASSERT_EQ(proc->addresses.size(), 1u);
    if (shared == nullptr) shared = proc->addresses.front();
    EXPECT_EQ(proc->addresses.front(), shared)
        << "a recipient saw a copy instead of the shared payload";
  }
}

class DuplicatedSender final : public AddressRecorder {
 public:
  void onStart() override {
    for (int i = 0; i < 10; ++i) ctx().post(1, makeMessage<CountedMsg>(i));
  }
};

TEST(PayloadSharing, DuplicationFaultsAddRefsNotCopies) {
  countedConstructed = 0;
  UniformDelayNetwork::Options network;
  network.minDelay = 1;
  network.maxDelay = 3;
  network.duplicateProbability = 1.0;  // every send is duplicated
  Simulator sim(SimConfig{},
                std::make_unique<UniformDelayNetwork>(network));
  sim.addProcess(std::make_unique<DuplicatedSender>());
  auto* receiver = new AddressRecorder;
  sim.addProcess(std::unique_ptr<Process>(receiver));
  sim.run();

  EXPECT_EQ(countedConstructed, 10);  // one instance per post, none per copy
  EXPECT_EQ(sim.messagesCloned(), 0u);
  EXPECT_GT(sim.messagesDuplicated(), 0u);
  EXPECT_EQ(receiver->addresses.size(),
            10u + static_cast<std::size_t>(sim.messagesDuplicated()));
}

class LegacyBroadcaster final : public AddressRecorder {
 public:
  void onStart() override {
    // The pre-overhaul API: caller keeps ownership, simulator must copy.
    const CountedMsg msg(3);
    ctx().broadcast(msg);
    ctx().broadcast(msg);
  }
};

TEST(PayloadSharing, LegacyBroadcastClonesExactlyOncePerCall) {
  countedConstructed = 0;
  Simulator sim(SimConfig{}, std::make_unique<SynchronousNetwork>());
  sim.addProcess(std::make_unique<LegacyBroadcaster>());
  sim.addProcess(std::make_unique<AddressRecorder>());
  sim.run();

  // One local instance + one clone shared across all recipients, per call.
  EXPECT_EQ(sim.messagesCloned(), 2u);
  EXPECT_EQ(countedConstructed, 3);
  EXPECT_EQ(sim.messagesDelivered(), 4u);
}

TEST(PayloadSharing, InTreeCompositionsNeverClonePayloads) {
  // Every registered in-tree object uses the shared-payload post/fanout
  // path, so the cloned-messages counter must stay zero across the whole
  // valid detector × driver cross-product. runComposition() starts each
  // run on a fresh Simulator, so the counter cannot carry over between
  // cells either.
  auto& reg = compose::registry();
  for (const std::string& detector : reg.detectorNames()) {
    for (const std::string& driver : reg.driverNames()) {
      if (reg.validatePairing(detector, driver)) continue;  // rejected
      compose::Composition composition;
      composition.detector = detector;
      composition.driver = driver;
      composition.maxRounds = 200;
      composition.maxTicks = 200'000;
      // Oracle-consuming drivers get the strongest oracle their
      // requirement admits — the oracle is a pure model consulted by the
      // driver, so it must not introduce clones either.
      const auto requirement = reg.driver(driver).capability.oracle;
      if (requirement != compose::OracleRequirement::kNone) {
        composition.oracle =
            requirement == compose::OracleRequirement::kPerfect ? "perfect-p"
                                                                : "omega";
        if (composition.oracle == "omega") {
          composition.oracleKnobs.stabilizeAt = 40;
          composition.oracleKnobs.noise = 0.25;
        }
      }
      const auto& capability = reg.detector(detector).capability;
      if (capability.faultModel == compose::FaultModel::kByzantine) {
        const bool lockstep =
            capability.mode == compose::InvocationMode::kLockstep;
        composition.n = lockstep ? (capability.tDivisor == 3 ? 7 : 9) : 11;
        composition.byzantineCount = 2;
      } else {
        composition.n = 5;
        composition.inputs = {0, 1, 0, 1, 1};
      }
      const auto result = compose::runComposition(composition);
      EXPECT_EQ(result.messagesCloned, 0u)
          << "payload copy regression in " << detector << "+" << driver;
    }
  }
}

TEST(PayloadSharing, NonLockstepSchedulersNeverClonePayloads) {
  // The roundless policies change WHO consumes a payload (buffered
  // replays, loose drivers, wakeup-deferred successors) but never copy it:
  // buffering shares the envelope's payload and a detached drive keeps the
  // original object. Zero clones must survive both skewed schedulers.
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kEventDriven, SchedulingPolicy::kOooDriver}) {
    compose::Composition composition;
    composition.detector = "benor-vac";
    composition.driver = "lottery";
    composition.scheduler = policy;
    composition.n = 5;
    composition.inputs = {0, 1, 0, 1, 1};
    composition.maxDelay = 15;
    composition.maxRounds = 200;
    composition.maxTicks = 200'000;
    const auto result = compose::runComposition(composition);
    EXPECT_TRUE(result.allDecided) << toString(policy);
    EXPECT_EQ(result.messagesCloned, 0u)
        << "payload copy regression under the " << toString(policy)
        << " scheduler";
  }
}

// ---------------------------------------------------------------------------
// Calendar-queue ordering beyond the bucket window

class LongTimerProcess final : public Process {
 public:
  void onStart() override {
    // Mix of in-window (< 1024 ticks ahead), boundary, and far-overflow
    // delays, armed out of order; several land beyond the ring so they
    // route through the overflow heap and cursor jumps across empty
    // stretches.
    for (const Tick delay : {Tick{2000}, Tick{1}, Tick{5000}, Tick{1024},
                             Tick{1500}, Tick{1023}, Tick{3000}}) {
      delayOf_[setTimerPublic(delay)] = delay;
    }
  }
  void onMessage(ProcessId, const Message&) override {}
  void onTimer(TimerId id) override {
    firedAt.emplace_back(ctx().now(), delayOf_.at(id));
  }

  std::vector<std::pair<Tick, Tick>> firedAt;  // (tick, armed delay)

 private:
  TimerId setTimerPublic(Tick delay) { return ctx().setTimer(delay); }
  std::map<TimerId, Tick> delayOf_;
};

TEST(CalendarQueue, OverflowTimersFireInTickOrder) {
  Simulator sim(SimConfig{}, std::make_unique<SynchronousNetwork>());
  auto* proc = new LongTimerProcess;
  sim.addProcess(std::unique_ptr<Process>(proc));
  sim.run();

  const std::vector<std::pair<Tick, Tick>> expected = {
      {1, 1},       {1023, 1023}, {1024, 1024}, {1500, 1500},
      {2000, 2000}, {3000, 3000}, {5000, 5000}};
  EXPECT_EQ(proc->firedAt, expected);
  EXPECT_EQ(sim.timersFired(), 7u);
  EXPECT_EQ(sim.pendingTimerCount(), 0u);
}

// ---------------------------------------------------------------------------
// Lazy trace text

class TextCollector final : public ScheduleObserver {
 public:
  explicit TextCollector(bool wants) : wants_(wants) {}
  void onEvent(const TraceEvent&) override {}
  bool wantsMessageText() const noexcept override { return wants_; }
  void onMessageText(const std::string& text) override {
    texts.push_back(text);
  }
  std::vector<std::string> texts;

 private:
  bool wants_;
};

TEST(LazyDescribe, SkippedUnlessAnObserverOptsIn) {
  countedDescribed = 0;
  {
    Simulator sim(SimConfig{}, std::make_unique<SynchronousNetwork>());
    sim.addProcess(std::make_unique<FanoutSender>());
    sim.addProcess(std::make_unique<AddressRecorder>());
    sim.run();  // no observer at all
    EXPECT_EQ(sim.messagesDelivered(), 2u);
  }
  EXPECT_EQ(countedDescribed, 0);

  {
    Simulator sim(SimConfig{}, std::make_unique<SynchronousNetwork>());
    sim.addProcess(std::make_unique<FanoutSender>());
    sim.addProcess(std::make_unique<AddressRecorder>());
    TraceRecorder recorder;  // records schedules but never wants text
    sim.setScheduleObserver(&recorder);
    sim.run();
    EXPECT_EQ(sim.messagesDelivered(), 2u);
  }
  EXPECT_EQ(countedDescribed, 0);

  Simulator sim(SimConfig{}, std::make_unique<SynchronousNetwork>());
  sim.addProcess(std::make_unique<FanoutSender>());
  sim.addProcess(std::make_unique<AddressRecorder>());
  TextCollector collector(/*wants=*/true);
  sim.setScheduleObserver(&collector);
  sim.run();
  EXPECT_EQ(countedDescribed, 2);  // once per delivery, shared payload or not
  ASSERT_EQ(collector.texts.size(), 2u);
  EXPECT_EQ(collector.texts.front(), "counted(7)");
}

// ---------------------------------------------------------------------------
// Tag dispatch sanity

struct OtherMsg final : MessageBase<OtherMsg> {
  std::string describe() const override { return "other"; }
};

TEST(TagDispatch, AsMatchesExactConcreteTypeOnly) {
  const CountedMsg counted(1);
  const OtherMsg other;
  const Message& asBaseCounted = counted;
  const Message& asBaseOther = other;
  EXPECT_NE(asBaseCounted.as<CountedMsg>(), nullptr);
  EXPECT_EQ(asBaseCounted.as<OtherMsg>(), nullptr);
  EXPECT_NE(asBaseOther.as<OtherMsg>(), nullptr);
  EXPECT_EQ(asBaseOther.as<CountedMsg>(), nullptr);
  EXPECT_NE(tagOf<CountedMsg>(), tagOf<OtherMsg>());
}

}  // namespace
}  // namespace ooc

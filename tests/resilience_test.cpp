// Partition-resilience tests for the leader-driven substrates: quorum
// availability governs liveness, healing restores it, safety is absolute.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "paxos/paxos_node.hpp"
#include "sim/simulator.hpp"

namespace ooc {
namespace {

struct PartitionedPaxos {
  explicit PartitionedPaxos(std::size_t n, std::uint64_t seed,
                            double duplicateProbability = 0.0) {
    SimConfig simConfig;
    simConfig.seed = seed;
    simConfig.maxTicks = 1'000'000;
    UniformDelayNetwork::Options net;
    net.minDelay = 1;
    net.maxDelay = 5;
    net.duplicateProbability = duplicateProbability;
    auto partitioned = std::make_unique<PartitionedNetwork>(
        std::make_unique<UniformDelayNetwork>(net));
    network = partitioned.get();
    sim = std::make_unique<Simulator>(simConfig, std::move(partitioned));
    for (ProcessId id = 0; id < n; ++id) {
      inputs.push_back(static_cast<Value>(10 + id));
      auto node =
          std::make_unique<paxos::PaxosNode>(inputs.back(), paxos::PaxosConfig{});
      nodes.push_back(node.get());
      sim->addProcess(std::move(node));
    }
    sim->setValidValues(inputs);
  }

  std::unique_ptr<Simulator> sim;
  PartitionedNetwork* network = nullptr;
  std::vector<paxos::PaxosNode*> nodes;
  std::vector<Value> inputs;
};

TEST(PaxosPartitions, NoQuorumNoDecisionThenHealDecides) {
  PartitionedPaxos cluster(5, 1);
  // 2/2/1 split from the start: no side has a quorum.
  cluster.network->setPartition({0, 0, 1, 1, 2});
  cluster.sim->schedule(5000, [&] {
    // Nothing may have been decided while split.
    for (const auto* node : cluster.nodes)
      ASSERT_FALSE(node->decided()) << "decided without a quorum";
    cluster.network->clearPartition();
  });
  cluster.sim->stopWhenAllCorrectDecided();
  cluster.sim->run();
  EXPECT_TRUE(cluster.sim->allCorrectDecided());
  EXPECT_FALSE(cluster.sim->agreementViolated());
  EXPECT_FALSE(cluster.sim->validityViolated());
}

TEST(PaxosPartitions, MajoritySideDecidesMinorityLearnsOnHeal) {
  PartitionedPaxos cluster(5, 2);
  cluster.network->setPartition({0, 0, 0, 1, 1});
  Tick majorityDecidedAt = 0;
  cluster.sim->schedule(6000, [&] {
    int decided = 0;
    for (ProcessId id = 0; id < 3; ++id)
      decided += cluster.nodes[id]->decided() ? 1 : 0;
    EXPECT_EQ(decided, 3) << "majority side failed to decide while split";
    EXPECT_FALSE(cluster.nodes[3]->decided());
    EXPECT_FALSE(cluster.nodes[4]->decided());
    majorityDecidedAt = cluster.sim->now();
    cluster.network->clearPartition();
  });
  cluster.sim->stopWhenAllCorrectDecided();
  cluster.sim->run();
  EXPECT_TRUE(cluster.sim->allCorrectDecided());
  EXPECT_FALSE(cluster.sim->agreementViolated());
  EXPECT_GT(majorityDecidedAt, 0u);
}

TEST(PaxosPartitions, RepeatedSplitsNeverBreakAgreement) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    PartitionedPaxos cluster(5, 700 + seed);
    Rng chaos(seed);
    Tick at = 50;
    for (int wave = 0; wave < 5; ++wave) {
      std::vector<int> groups(5);
      for (auto& g : groups) g = static_cast<int>(chaos.below(2));
      cluster.sim->schedule(at, [net = cluster.network, groups] {
        net->setPartition(groups);
      });
      at += 150 + chaos.below(300);
      cluster.sim->schedule(at, [net = cluster.network] {
        net->clearPartition();
      });
      at += 100 + chaos.below(150);
    }
    cluster.sim->stopWhenAllCorrectDecided();
    cluster.sim->run();
    EXPECT_TRUE(cluster.sim->allCorrectDecided()) << "seed " << seed;
    EXPECT_FALSE(cluster.sim->agreementViolated()) << "seed " << seed;
    EXPECT_FALSE(cluster.sim->validityViolated()) << "seed " << seed;
  }
}

TEST(PaxosPartitions, DuplicationIsHarmless) {
  // 30% duplicated messages: distinct-sender tallies must absorb it.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    PartitionedPaxos cluster(5, 800 + seed, /*duplicateProbability=*/0.3);
    cluster.sim->stopWhenAllCorrectDecided();
    cluster.sim->run();
    EXPECT_TRUE(cluster.sim->allCorrectDecided()) << "seed " << seed;
    EXPECT_FALSE(cluster.sim->agreementViolated()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ooc

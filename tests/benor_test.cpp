// Ben-Or tests: the decomposed algorithm (paper Algorithms 5-6 under the
// template), the monolithic baseline, object-contract property sweeps, crash
// tolerance, and the §5 decide-on-adopt witnesses.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/scenarios.hpp"

namespace ooc {
namespace {

using harness::BenOrConfig;
using harness::BenOrResult;
using harness::runBenOr;

std::vector<Value> splitInputs(std::size_t n) {
  std::vector<Value> inputs(n);
  for (std::size_t i = 0; i < n; ++i) inputs[i] = static_cast<Value>(i % 2);
  return inputs;
}

BenOrConfig baseConfig(std::size_t n, std::uint64_t seed,
                       BenOrConfig::Mode mode) {
  BenOrConfig config;
  config.n = n;
  config.inputs = splitInputs(n);
  config.seed = seed;
  config.mode = mode;
  return config;
}

void expectCleanRun(const BenOrResult& result) {
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_FALSE(result.validityViolated);
  EXPECT_TRUE(result.allAuditsOk);
}

TEST(BenOrDecomposed, UnanimousDecidesInOneRound) {
  for (Value v : {0, 1}) {
    BenOrConfig config = baseConfig(5, 11, BenOrConfig::Mode::kDecomposed);
    config.inputs.assign(5, v);
    const BenOrResult result = runBenOr(config);
    expectCleanRun(result);
    EXPECT_EQ(result.decidedValue, v);
    EXPECT_EQ(result.maxDecisionRound, 1u);
  }
}

TEST(BenOrDecomposed, SplitInputsTerminate) {
  const BenOrResult result =
      runBenOr(baseConfig(5, 12, BenOrConfig::Mode::kDecomposed));
  expectCleanRun(result);
  EXPECT_TRUE(result.decidedValue == 0 || result.decidedValue == 1);
}

TEST(BenOrMonolithic, SplitInputsTerminate) {
  const BenOrResult result =
      runBenOr(baseConfig(5, 12, BenOrConfig::Mode::kMonolithic));
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_FALSE(result.validityViolated);
}

// Property sweep: every (n, seed) run must satisfy every object contract in
// every round, decide, agree, and stay valid.
class BenOrSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(BenOrSweep, DecomposedContractsHold) {
  const auto [n, seed] = GetParam();
  const BenOrResult result =
      runBenOr(baseConfig(n, seed, BenOrConfig::Mode::kDecomposed));
  expectCleanRun(result);
}

TEST_P(BenOrSweep, MonolithicAgrees) {
  const auto [n, seed] = GetParam();
  const BenOrResult result =
      runBenOr(baseConfig(n, seed, BenOrConfig::Mode::kMonolithic));
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_FALSE(result.validityViolated);
}

TEST_P(BenOrSweep, VacFromTwoAcContractsHold) {
  const auto [n, seed] = GetParam();
  const BenOrResult result =
      runBenOr(baseConfig(n, seed, BenOrConfig::Mode::kVacFromTwoAc));
  expectCleanRun(result);
}

TEST_P(BenOrSweep, DecentralizedVacContractsHold) {
  const auto [n, seed] = GetParam();
  const BenOrResult result =
      runBenOr(baseConfig(n, seed, BenOrConfig::Mode::kDecentralizedVac));
  expectCleanRun(result);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BenOrSweep,
    ::testing::Combine(::testing::Values(std::size_t{3}, std::size_t{4},
                                         std::size_t{5}, std::size_t{8},
                                         std::size_t{13}),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)));

TEST(BenOrCrashes, ToleratesUpToTMinusOneCrashes) {
  // n = 7, t = 3: crash 3 processes at staggered times.
  BenOrConfig config = baseConfig(7, 21, BenOrConfig::Mode::kDecomposed);
  config.crashes = {{0, 5}, {3, 40}, {6, 100}};
  const BenOrResult result = runBenOr(config);
  expectCleanRun(result);
}

TEST(BenOrCrashes, CrashAtStartLooksLikeSmallerNetwork) {
  BenOrConfig config = baseConfig(5, 22, BenOrConfig::Mode::kDecomposed);
  config.crashes = {{1, 0}, {2, 0}};  // t = 2 crashes before sending anything
  const BenOrResult result = runBenOr(config);
  expectCleanRun(result);
}

TEST(BenOrCrashes, MonolithicToleratesCrashes) {
  BenOrConfig config = baseConfig(7, 23, BenOrConfig::Mode::kMonolithic);
  config.crashes = {{2, 10}, {5, 60}};
  const BenOrResult result = runBenOr(config);
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
}

TEST(BenOrCrashes, SweepCrashSchedules) {
  // Crash a full quorum minus one at varied ticks across seeds; everything
  // must still decide and agree.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    BenOrConfig config =
        baseConfig(5, 100 + seed, BenOrConfig::Mode::kDecomposed);
    config.crashes = {{static_cast<ProcessId>(seed % 5), seed * 7},
                      {static_cast<ProcessId>((seed + 2) % 5), seed * 13}};
    const BenOrResult result = runBenOr(config);
    expectCleanRun(result);
  }
}

TEST(BenOrReconciliators, CommonCoinDecidesFast) {
  // With a common coin the first vacillating round flips everyone to the
  // same preference: decision within a few rounds, across seeds.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    BenOrConfig config =
        baseConfig(8, 200 + seed, BenOrConfig::Mode::kDecomposed);
    config.reconciliator = BenOrConfig::Reconciliator::kCommonCoin;
    const BenOrResult result = runBenOr(config);
    expectCleanRun(result);
    // Expected ~2-3 rounds; each extra round needs another coin mismatch
    // (probability 1/2), so 8 gives a wide deterministic margin.
    EXPECT_LE(result.maxDecisionRound, 8u) << "seed " << seed;
  }
}

TEST(BenOrReconciliators, KeepValueStallsOnBalancedInputs) {
  // Negative control: without reconciliation a perfectly balanced network
  // can never commit. With deterministic keep-value drivers it provably
  // spins (preferences never change), hitting the round cap.
  BenOrConfig config = baseConfig(4, 31, BenOrConfig::Mode::kDecomposed);
  config.reconciliator = BenOrConfig::Reconciliator::kKeepValue;
  config.maxRounds = 30;
  config.maxTicks = 400000;
  const BenOrResult result = runBenOr(config);
  // The run must NOT decide (it may also simply run out of rounds).
  EXPECT_FALSE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
}

TEST(BenOrReconciliators, BiasedCoinStillCorrect) {
  for (double bias : {0.1, 0.9}) {
    BenOrConfig config = baseConfig(6, 41, BenOrConfig::Mode::kDecomposed);
    config.reconciliator = BenOrConfig::Reconciliator::kBiasedCoin;
    config.bias = bias;
    const BenOrResult result = runBenOr(config);
    expectCleanRun(result);
  }
}

TEST(BenOrSection5, AdoptWitnessesExistAcrossSeeds) {
  // The §5 argument: an adopt-level value can differ from the eventual
  // decision, so a framework that decides at that point (AC's commit in the
  // two-AC reading) is unsound. Witnesses are schedule-dependent; across a
  // seed batch at least one must appear, and each witness is by definition
  // an adopt outcome whose value lost.
  std::size_t witnesses = 0;
  std::size_t adoptOutcomes = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    BenOrConfig config =
        baseConfig(4, 300 + seed, BenOrConfig::Mode::kDecomposed);
    config.maxDelay = 25;  // heavy skew makes mixed rounds likelier
    const BenOrResult result = runBenOr(config);
    expectCleanRun(result);
    witnesses += result.adoptMismatchWitnesses;
    adoptOutcomes += result.adoptOutcomesTotal;
  }
  EXPECT_GT(adoptOutcomes, 0u);
  EXPECT_GT(witnesses, 0u) << "no decide-on-adopt counterexample found; "
                              "§5's insufficiency claim not exercised";
}

TEST(BenOrDeterminism, SameSeedSameResult) {
  const BenOrConfig config = baseConfig(6, 77, BenOrConfig::Mode::kDecomposed);
  const BenOrResult a = runBenOr(config);
  const BenOrResult b = runBenOr(config);
  EXPECT_EQ(a.decidedValue, b.decidedValue);
  EXPECT_EQ(a.maxDecisionRound, b.maxDecisionRound);
  EXPECT_EQ(a.lastDecisionTick, b.lastDecisionTick);
  EXPECT_EQ(a.messagesByCorrect, b.messagesByCorrect);
}

TEST(BenOrConfigValidation, RejectsBadInputSizes) {
  BenOrConfig config;
  config.n = 4;
  config.inputs = {0, 1};  // wrong size
  EXPECT_THROW(runBenOr(config), std::invalid_argument);
}

TEST(BenOrVacObject, RequiresMinorityFaults) {
  BenOrConfig config = baseConfig(4, 1, BenOrConfig::Mode::kDecomposed);
  config.t = 2;  // t >= n/2: illegal
  EXPECT_THROW(runBenOr(config), std::invalid_argument);
}

}  // namespace
}  // namespace ooc

// Unit tests for the core framework: the consensus template engine, message
// routing/buffering, the §5 constructions, and the property auditors.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/consensus_process.hpp"
#include "core/objects.hpp"
#include "core/properties.hpp"
#include "core/tagged_message.hpp"
#include "core/vac_from_ac.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace ooc {
namespace {

// ---------------------------------------------------------------------------
// Mock objects

struct EchoMsg final : MessageBase<EchoMsg> {
  explicit EchoMsg(Value v) : v(v) {}
  Value v;
  std::string describe() const override { return "echo"; }
};

/// Detector that completes after hearing from every process; commits when
/// all echoed values agree, vacillates otherwise (adopt on a scripted round).
class MockDetector final : public AgreementDetector {
 public:
  explicit MockDetector(Confidence onDisagree)
      : onDisagree_(onDisagree) {}

  void invoke(ObjectContext& ctx, Value v) override {
    mine_ = v;
    values_.assign(ctx.processCount(), kNoValue);
    ctx.broadcast(EchoMsg(v));
  }
  void onMessage(ObjectContext&, ProcessId from,
                 const Message& inner) override {
    const auto* echo = inner.as<EchoMsg>();
    if (echo == nullptr || outcome_) return;
    if (values_.at(from) == kNoValue) {
      values_[from] = echo->v;
      ++heard_;
    }
    if (heard_ == values_.size()) {
      bool unanimous = true;
      for (Value v : values_) unanimous = unanimous && v == values_[0];
      outcome_ = unanimous ? Outcome{Confidence::kCommit, values_[0]}
                           : Outcome{onDisagree_, mine_};
    }
  }
  std::optional<Outcome> result() const override { return outcome_; }

 private:
  Confidence onDisagree_;
  Value mine_ = kNoValue;
  std::vector<Value> values_;
  std::size_t heard_ = 0;
  std::optional<Outcome> outcome_;
};

/// Driver returning a fixed value immediately.
class FixedDriver final : public Driver {
 public:
  explicit FixedDriver(Value v) : v_(v) {}
  void invoke(ObjectContext&, const Outcome&) override { ready_ = true; }
  void onMessage(ObjectContext&, ProcessId, const Message&) override {}
  std::optional<Value> result() const override {
    return ready_ ? std::optional<Value>(v_) : std::nullopt;
  }

 private:
  Value v_;
  bool ready_ = false;
};

ConsensusProcess::Options vacOptions(Round maxRounds = 50) {
  ConsensusProcess::Options options;
  options.kind = TemplateKind::kVacReconciliator;
  options.maxRounds = maxRounds;
  return options;
}

// ---------------------------------------------------------------------------
// Template engine

TEST(ConsensusTemplate, UnanimousInputsDecideInRoundOne) {
  Simulator sim(SimConfig{}, std::make_unique<SynchronousNetwork>());
  std::vector<ConsensusProcess*> procs;
  for (int i = 0; i < 4; ++i) {
    auto p = std::make_unique<ConsensusProcess>(
        7,
        [](Round) {
          return std::make_unique<MockDetector>(Confidence::kVacillate);
        },
        [](Round) { return std::make_unique<FixedDriver>(0); },
        vacOptions());
    procs.push_back(p.get());
    sim.addProcess(std::move(p));
  }
  sim.stopWhenAllCorrectDecided();
  sim.run();
  ASSERT_TRUE(sim.allCorrectDecided());
  for (auto* p : procs) {
    EXPECT_EQ(p->decisionValue(), 7);
    EXPECT_EQ(p->decisionRound(), 1u);
  }
  EXPECT_FALSE(sim.agreementViolated());
}

TEST(ConsensusTemplate, VacillateRoutesThroughDriver) {
  // Mixed inputs; driver forces everyone to 5, so round 2 commits 5.
  Simulator sim(SimConfig{}, std::make_unique<SynchronousNetwork>());
  std::vector<ConsensusProcess*> procs;
  for (int i = 0; i < 4; ++i) {
    auto p = std::make_unique<ConsensusProcess>(
        i % 2,
        [](Round) {
          return std::make_unique<MockDetector>(Confidence::kVacillate);
        },
        [](Round) { return std::make_unique<FixedDriver>(5); },
        vacOptions());
    procs.push_back(p.get());
    sim.addProcess(std::move(p));
  }
  sim.stopWhenAllCorrectDecided();
  sim.run();
  ASSERT_TRUE(sim.allCorrectDecided());
  for (auto* p : procs) {
    EXPECT_EQ(p->decisionValue(), 5);
    EXPECT_EQ(p->decisionRound(), 2u);
    ASSERT_GE(p->rounds().size(), 2u);
    EXPECT_EQ(p->rounds()[0].driverValue, std::optional<Value>(5));
  }
}

TEST(ConsensusTemplate, AdoptKeepsDetectorValueInVacTemplate) {
  // VAC template: adopt must NOT consult the driver.
  Simulator sim(SimConfig{}, std::make_unique<SynchronousNetwork>());
  std::vector<ConsensusProcess*> procs;
  for (int i = 0; i < 4; ++i) {
    auto p = std::make_unique<ConsensusProcess>(
        i % 2,
        [](Round) {
          return std::make_unique<MockDetector>(Confidence::kAdopt);
        },
        [](Round) { return std::make_unique<FixedDriver>(99); },
        vacOptions(/*maxRounds=*/6));
    procs.push_back(p.get());
    sim.addProcess(std::move(p));
  }
  sim.run();
  // MockDetector adopts each processor's own value on disagreement, so
  // preferences never change and no one decides — but crucially the driver
  // must never have been consulted in the VAC template's adopt case.
  for (auto* p : procs) {
    EXPECT_TRUE(p->exhaustedRounds());
    EXPECT_FALSE(p->decided());
    for (const RoundRecord& record : p->rounds()) {
      EXPECT_FALSE(record.driverValue.has_value());
      ASSERT_TRUE(record.detectorOutcome.has_value());
      EXPECT_EQ(record.detectorOutcome->confidence, Confidence::kAdopt);
    }
  }
}

TEST(ConsensusTemplate, AcTemplateRoutesAdoptThroughConciliator) {
  Simulator sim(SimConfig{}, std::make_unique<SynchronousNetwork>());
  ConsensusProcess::Options options;
  options.kind = TemplateKind::kAcConciliator;
  options.maxRounds = 50;
  std::vector<ConsensusProcess*> procs;
  for (int i = 0; i < 4; ++i) {
    auto p = std::make_unique<ConsensusProcess>(
        i % 2,
        [](Round) {
          return std::make_unique<MockDetector>(Confidence::kAdopt);
        },
        [](Round) { return std::make_unique<FixedDriver>(1); }, options);
    procs.push_back(p.get());
    sim.addProcess(std::move(p));
  }
  sim.stopWhenAllCorrectDecided();
  sim.run();
  ASSERT_TRUE(sim.allCorrectDecided());
  for (auto* p : procs) {
    EXPECT_EQ(p->decisionValue(), 1);
    EXPECT_EQ(p->decisionRound(), 2u);  // round 1 conciliates, round 2 commits
    EXPECT_EQ(p->rounds()[0].driverValue, std::optional<Value>(1));
  }
}

TEST(ConsensusTemplate, MaxRoundsStopsParticipation) {
  Simulator sim(SimConfig{}, std::make_unique<SynchronousNetwork>());
  std::vector<ConsensusProcess*> procs;
  for (int i = 0; i < 2; ++i) {
    auto p = std::make_unique<ConsensusProcess>(
        i,  // split inputs
        [](Round) {
          return std::make_unique<MockDetector>(Confidence::kVacillate);
        },
        // Driver keeps values split forever.
        [i](Round) { return std::make_unique<FixedDriver>(i); },
        vacOptions(/*maxRounds=*/5));
    procs.push_back(p.get());
    sim.addProcess(std::move(p));
  }
  sim.run();  // runs until queue drains (processes give up)
  for (auto* p : procs) {
    EXPECT_TRUE(p->exhaustedRounds());
    EXPECT_FALSE(p->decided());
    EXPECT_EQ(p->rounds().size(), 5u);
  }
}

TEST(ConsensusTemplate, DecidersKeepParticipating) {
  // One slow link must not prevent the run from completing: deciders keep
  // answering later rounds (paper §4.1 note).
  SimConfig config;
  config.seed = 3;
  UniformDelayNetwork::Options net;
  net.minDelay = 1;
  net.maxDelay = 30;  // heavy skew so processes decide in different rounds
  Simulator sim(config, std::make_unique<UniformDelayNetwork>(net));
  std::vector<ConsensusProcess*> procs;
  for (int i = 0; i < 5; ++i) {
    auto p = std::make_unique<ConsensusProcess>(
        3,
        [](Round) {
          return std::make_unique<MockDetector>(Confidence::kVacillate);
        },
        [](Round) { return std::make_unique<FixedDriver>(3); }, vacOptions());
    procs.push_back(p.get());
    sim.addProcess(std::move(p));
  }
  sim.stopWhenAllCorrectDecided();
  sim.run();
  EXPECT_TRUE(sim.allCorrectDecided());
  EXPECT_FALSE(sim.agreementViolated());
}

TEST(TaggedMessage, CloneCopiesEnvelopeAndSharesImmutableInner) {
  TaggedMessage msg(3, Stage::kDrive, std::make_unique<EchoMsg>(9));
  auto copy = msg.clone();
  const auto* typed = copy->as<TaggedMessage>();
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->round(), 3u);
  EXPECT_EQ(typed->stage(), Stage::kDrive);
  EXPECT_EQ(typed->inner().as<EchoMsg>()->v, 9);
  // Payloads are immutable and refcounted: cloning the envelope shares the
  // inner message instead of deep-copying it (the zero-clone fan-out
  // invariant; see sim/message.hpp).
  EXPECT_EQ(&typed->inner(), &msg.inner());
  EXPECT_EQ(typed->innerPtr(), msg.innerPtr());
}

TEST(TaggedMessage, RejectsNullInner) {
  EXPECT_THROW(TaggedMessage(1, Stage::kDetect, nullptr),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// §5 constructions

/// Scripted AC for construction tests: completes immediately.
class ScriptedAc final : public AgreementDetector {
 public:
  explicit ScriptedAc(Outcome outcome) : outcome_(outcome) {}
  void invoke(ObjectContext&, Value) override { ready_ = true; }
  void onMessage(ObjectContext&, ProcessId, const Message&) override {}
  std::optional<Outcome> result() const override {
    return ready_ ? std::optional<Outcome>(outcome_) : std::nullopt;
  }

 private:
  Outcome outcome_;
  bool ready_ = false;
};

class NullObjectContext final : public ObjectContext {
 public:
  ProcessId self() const noexcept override { return 0; }
  std::size_t processCount() const noexcept override { return 1; }
  Tick now() const noexcept override { return 0; }
  Rng& rng() noexcept override { return rng_; }
  void send(ProcessId, std::unique_ptr<Message>) override {}
  void broadcast(const Message&) override {}
  TimerId setTimer(Tick) override { return 0; }
  void cancelTimer(TimerId) noexcept override {}

 private:
  Rng rng_{0};
};

Outcome runVacFromTwoAc(Outcome first, Outcome second) {
  VacFromTwoAc vac(std::make_unique<ScriptedAc>(first),
                   std::make_unique<ScriptedAc>(second));
  NullObjectContext ctx;
  vac.invoke(ctx, first.value);
  const auto result = vac.result();
  EXPECT_TRUE(result.has_value());
  return *result;
}

TEST(VacFromTwoAc, CommitCommitGivesCommit) {
  const Outcome out = runVacFromTwoAc({Confidence::kCommit, 1},
                                      {Confidence::kCommit, 1});
  EXPECT_EQ(out, (Outcome{Confidence::kCommit, 1}));
}

TEST(VacFromTwoAc, AdoptCommitGivesAdopt) {
  const Outcome out = runVacFromTwoAc({Confidence::kAdopt, 1},
                                      {Confidence::kCommit, 1});
  EXPECT_EQ(out, (Outcome{Confidence::kAdopt, 1}));
}

TEST(VacFromTwoAc, AnyAdoptSecondGivesVacillate) {
  EXPECT_EQ(runVacFromTwoAc({Confidence::kCommit, 0},
                            {Confidence::kAdopt, 0})
                .confidence,
            Confidence::kVacillate);
  EXPECT_EQ(runVacFromTwoAc({Confidence::kAdopt, 0},
                            {Confidence::kAdopt, 1})
                .confidence,
            Confidence::kVacillate);
}

TEST(VacFromTwoAc, ValueComesFromSecondAc) {
  const Outcome out = runVacFromTwoAc({Confidence::kAdopt, 0},
                                      {Confidence::kAdopt, 4});
  EXPECT_EQ(out.value, 4);
}

TEST(VacFromTwoAc, RejectsVacillatingSubObject) {
  VacFromTwoAc vac(
      std::make_unique<ScriptedAc>(Outcome{Confidence::kVacillate, 0}),
      std::make_unique<ScriptedAc>(Outcome{Confidence::kCommit, 0}));
  NullObjectContext ctx;
  EXPECT_THROW(vac.invoke(ctx, 0), std::logic_error);
}

TEST(AcFromVac, RelabelsVacillateAsAdopt) {
  AcFromVac ac(std::make_unique<ScriptedAc>(
      Outcome{Confidence::kVacillate, 3}));
  NullObjectContext ctx;
  ac.invoke(ctx, 3);
  ASSERT_TRUE(ac.result().has_value());
  EXPECT_EQ(*ac.result(), (Outcome{Confidence::kAdopt, 3}));
}

TEST(AcFromVac, PassesThroughAdoptAndCommit) {
  for (Confidence c : {Confidence::kAdopt, Confidence::kCommit}) {
    AcFromVac ac(std::make_unique<ScriptedAc>(Outcome{c, 1}));
    NullObjectContext ctx;
    ac.invoke(ctx, 1);
    ASSERT_TRUE(ac.result().has_value());
    EXPECT_EQ(ac.result()->confidence, c);
  }
}

// ---------------------------------------------------------------------------
// Property auditors

TEST(Audit, ValidityFlagsForeignValues) {
  const auto audit = auditRound(
      {0, 1}, {Outcome{Confidence::kAdopt, 5}, std::nullopt});
  EXPECT_FALSE(audit.validity);
}

TEST(Audit, ValidityOptionsSkipLevels) {
  AuditOptions options;
  options.requireAdoptValidity = false;
  const auto audit = auditRound(
      {0, 1}, {Outcome{Confidence::kAdopt, 5}, std::nullopt}, options);
  EXPECT_TRUE(audit.validity);
  // Commit-level validity is never skippable.
  const auto commitAudit = auditRound(
      {0, 1}, {Outcome{Confidence::kCommit, 5}, std::nullopt}, options);
  EXPECT_FALSE(commitAudit.validity);
}

TEST(Audit, ConvergenceRequiresCommitOnUnanimity) {
  const auto bad = auditRound(
      {1, 1}, {Outcome{Confidence::kCommit, 1}, Outcome{Confidence::kAdopt, 1}});
  EXPECT_FALSE(bad.convergence);
  const auto good = auditRound(
      {1, 1},
      {Outcome{Confidence::kCommit, 1}, Outcome{Confidence::kCommit, 1}});
  EXPECT_TRUE(good.convergence);
}

TEST(Audit, ConvergenceNotRequiredOnMixedInputs) {
  const auto audit = auditRound(
      {0, 1},
      {Outcome{Confidence::kVacillate, 0}, Outcome{Confidence::kVacillate, 1}});
  EXPECT_TRUE(audit.convergence);
}

TEST(Audit, CoherenceAdoptCommitViolations) {
  // Commit alongside vacillate: violation.
  EXPECT_FALSE(auditRound({0, 1}, {Outcome{Confidence::kCommit, 0},
                                   Outcome{Confidence::kVacillate, 1}})
                   .coherenceAdoptCommit);
  // Commit alongside adopt of a different value: violation.
  EXPECT_FALSE(auditRound({0, 1}, {Outcome{Confidence::kCommit, 0},
                                   Outcome{Confidence::kAdopt, 1}})
                   .coherenceAdoptCommit);
  // Two commits with different values: violation.
  EXPECT_FALSE(auditRound({0, 1}, {Outcome{Confidence::kCommit, 0},
                                   Outcome{Confidence::kCommit, 1}})
                   .coherenceAdoptCommit);
  // Commit + matching adopt: fine.
  EXPECT_TRUE(auditRound({0, 1}, {Outcome{Confidence::kCommit, 1},
                                  Outcome{Confidence::kAdopt, 1}})
                  .coherenceAdoptCommit);
}

TEST(Audit, CoherenceVacillateAdoptViolations) {
  // No commit; two adopts with different values: violation.
  EXPECT_FALSE(auditRound({0, 1}, {Outcome{Confidence::kAdopt, 0},
                                   Outcome{Confidence::kAdopt, 1}})
                   .coherenceVacillateAdopt);
  // Adopt + vacillate with any value: fine.
  EXPECT_TRUE(auditRound({0, 1}, {Outcome{Confidence::kAdopt, 0},
                                  Outcome{Confidence::kVacillate, 1}})
                  .coherenceVacillateAdopt);
  // With a commit present this check is vacuous (the other one applies).
  EXPECT_TRUE(auditRound({0, 1}, {Outcome{Confidence::kCommit, 0},
                                  Outcome{Confidence::kAdopt, 1}})
                  .coherenceVacillateAdopt);
}

TEST(Audit, IncompleteOutcomesAreSkipped) {
  const auto audit =
      auditRound({0, 1}, {std::nullopt, Outcome{Confidence::kAdopt, 1}});
  EXPECT_TRUE(audit.ok());
}

TEST(Audit, ClassificationFlags) {
  const auto audit = auditRound(
      {0, 1, 1}, {Outcome{Confidence::kVacillate, 0},
                  Outcome{Confidence::kAdopt, 1},
                  std::nullopt});
  EXPECT_FALSE(audit.anyCommit);
  EXPECT_TRUE(audit.anyAdopt);
  EXPECT_TRUE(audit.anyVacillate);
}

}  // namespace
}  // namespace ooc

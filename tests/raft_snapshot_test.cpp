// Log compaction + InstallSnapshot tests.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "raft/kv_store.hpp"
#include "sim/simulator.hpp"

namespace ooc {
namespace {

struct Cluster {
  explicit Cluster(std::size_t n, std::uint64_t seed,
                   raft::RaftConfig raftConfig = {}) {
    SimConfig simConfig;
    simConfig.seed = seed;
    simConfig.maxTicks = 2'000'000;
    UniformDelayNetwork::Options net;
    net.minDelay = 1;
    net.maxDelay = 5;
    net.duplicateProbability = 0.05;  // exercise duplicate snapshots too
    auto partitioned = std::make_unique<PartitionedNetwork>(
        std::make_unique<UniformDelayNetwork>(net));
    network = partitioned.get();
    sim = std::make_unique<Simulator>(simConfig, std::move(partitioned));
    for (std::size_t i = 0; i < n; ++i) {
      auto node = std::make_unique<raft::KvStoreNode>(raftConfig);
      nodes.push_back(node.get());
      sim->addProcess(std::move(node));
    }
  }

  raft::KvStoreNode* leader() {
    for (auto* node : nodes)
      if (node->role() == raft::Role::kLeader) return node;
    return nullptr;
  }

  std::unique_ptr<Simulator> sim;
  PartitionedNetwork* network = nullptr;
  std::vector<raft::KvStoreNode*> nodes;
};

TEST(RaftSnapshot, AutoCompactionShrinksTheLog) {
  raft::RaftConfig config;
  config.compactionThreshold = 5;
  Cluster cluster(3, 1, config);

  cluster.sim->schedule(2000, [&] {
    auto* leader = cluster.leader();
    ASSERT_NE(leader, nullptr);
    for (std::uint32_t k = 0; k < 20; ++k) leader->set(k, k);
  });
  cluster.sim->setStopPredicate([&](const Simulator&) {
    for (const auto* node : cluster.nodes)
      if (node->data().size() < 20) return false;
    return true;
  });
  cluster.sim->run();
  ASSERT_FALSE(cluster.sim->hitCap());

  for (const auto* node : cluster.nodes) {
    EXPECT_EQ(node->data().size(), 20u);
    EXPECT_GT(node->snapshotsTaken(), 0u) << "compaction never fired";
    EXPECT_LT(node->log().size(), 20u) << "log was not truncated";
    EXPECT_EQ(node->lastLogIndex(), 20u) << "indices must be preserved";
  }
}

TEST(RaftSnapshot, LaggingFollowerCatchesUpViaSnapshot) {
  raft::RaftConfig config;
  config.compactionThreshold = 4;
  Cluster cluster(3, 2, config);

  ProcessId isolated = 99;
  cluster.sim->schedule(2000, [&] {
    auto* leader = cluster.leader();
    ASSERT_NE(leader, nullptr);
    // Isolate a follower, then write enough to compact its entries away.
    for (ProcessId id = 0; id < 3; ++id) {
      if (cluster.nodes[id] != leader) {
        isolated = id;
        break;
      }
    }
    std::vector<int> groups(3, 0);
    groups[isolated] = 1;
    cluster.network->setPartition(groups);
  });
  cluster.sim->schedule(2200, [&] {
    auto* leader = cluster.leader();
    ASSERT_NE(leader, nullptr);
    for (std::uint32_t k = 0; k < 30; ++k) leader->set(k, k * 3);
  });
  cluster.sim->schedule(20000, [&] { cluster.network->clearPartition(); });
  cluster.sim->setStopPredicate([&](const Simulator&) {
    for (const auto* node : cluster.nodes)
      if (node->data().size() < 30) return false;
    return true;
  });
  cluster.sim->run();
  ASSERT_FALSE(cluster.sim->hitCap());

  ASSERT_LT(isolated, 3u);
  const auto* straggler = cluster.nodes[isolated];
  EXPECT_GT(straggler->snapshotsInstalled(), 0u)
      << "follower caught up without a snapshot — compaction too lazy?";
  for (std::uint32_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(straggler->data().contains(k));
    EXPECT_EQ(straggler->data().at(k), k * 3);
  }
  // Committed prefixes identical everywhere.
  for (const auto* node : cluster.nodes)
    EXPECT_EQ(node->data(), cluster.nodes[0]->data());
}

TEST(RaftSnapshot, CompactionDisabledByDefault) {
  Cluster cluster(3, 3);  // threshold = 0
  cluster.sim->schedule(2000, [&] {
    auto* leader = cluster.leader();
    ASSERT_NE(leader, nullptr);
    for (std::uint32_t k = 0; k < 15; ++k) leader->set(k, k);
  });
  cluster.sim->setStopPredicate([&](const Simulator&) {
    for (const auto* node : cluster.nodes)
      if (node->data().size() < 15) return false;
    return true;
  });
  cluster.sim->run();
  for (const auto* node : cluster.nodes) {
    EXPECT_EQ(node->snapshotsTaken(), 0u);
    EXPECT_EQ(node->log().size(), node->lastLogIndex());
  }
}

TEST(RaftSnapshot, HeavyChurnWithCompactionStaysConsistent) {
  // Compaction + loss + a crash: the ultimate log-repair workout.
  raft::RaftConfig config;
  config.compactionThreshold = 3;
  Cluster cluster(5, 4, config);
  cluster.sim->schedule(2000, [&] {
    auto* leader = cluster.leader();
    ASSERT_NE(leader, nullptr);
    for (std::uint32_t k = 0; k < 25; ++k) leader->set(k, k + 7);
  });
  cluster.sim->crashAt(4, 2500);
  cluster.sim->setStopPredicate([&](const Simulator& sim) {
    for (ProcessId id = 0; id < 5; ++id) {
      if (sim.crashed(id)) continue;
      if (cluster.nodes[id]->data().size() < 25) return false;
    }
    return true;
  });
  cluster.sim->run();
  ASSERT_FALSE(cluster.sim->hitCap());
  const raft::KvStoreNode* reference = nullptr;
  for (ProcessId id = 0; id < 5; ++id) {
    if (cluster.sim->crashed(id)) continue;
    if (!reference) {
      reference = cluster.nodes[id];
      continue;
    }
    EXPECT_EQ(cluster.nodes[id]->data(), reference->data());
  }
}

}  // namespace
}  // namespace ooc

// Cross-module integration tests: the "object oriented" payoff — detectors
// and drivers from different algorithms composed in one template — plus
// end-to-end invariants spanning simulator, template, objects and audits.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/scenarios.hpp"

namespace ooc {
namespace {

using harness::BenOrConfig;
using harness::runBenOr;

std::vector<Value> splitInputs(std::size_t n) {
  std::vector<Value> inputs(n);
  for (std::size_t i = 0; i < n; ++i) inputs[i] = static_cast<Value>(i % 2);
  return inputs;
}

// Every detector mode x every reconciliator: all 12 combinations must
// satisfy consensus and the object contracts. This is the paper's central
// engineering claim — the objects are interchangeable building blocks.
class MixAndMatch
    : public ::testing::TestWithParam<
          std::tuple<BenOrConfig::Mode, BenOrConfig::Reconciliator,
                     std::uint64_t>> {};

TEST_P(MixAndMatch, EveryCombinationReachesConsensus) {
  const auto [mode, reconciliator, seed] = GetParam();
  BenOrConfig config;
  config.n = 6;
  config.inputs = splitInputs(6);
  config.seed = seed;
  config.mode = mode;
  config.reconciliator = reconciliator;
  const auto result = runBenOr(config);
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_FALSE(result.validityViolated);
  EXPECT_TRUE(result.allAuditsOk);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, MixAndMatch,
    ::testing::Combine(
        ::testing::Values(BenOrConfig::Mode::kDecomposed,
                          BenOrConfig::Mode::kVacFromTwoAc,
                          BenOrConfig::Mode::kDecentralizedVac),
        ::testing::Values(BenOrConfig::Reconciliator::kLocalCoin,
                          BenOrConfig::Reconciliator::kCommonCoin,
                          BenOrConfig::Reconciliator::kBiasedCoin),
        ::testing::Values(1u, 2u)));

TEST(Integration, VacFromTwoAcUsesTwiceTheMessages) {
  // The §5 construction costs two AC invocations per round: roughly double
  // the per-round traffic of the native VAC. Compare unanimous runs (both
  // decide in round 1, so traffic is exactly one detector invocation each).
  BenOrConfig native;
  native.n = 6;
  native.inputs.assign(6, 1);
  native.seed = 5;
  native.mode = BenOrConfig::Mode::kDecomposed;
  BenOrConfig synthesized = native;
  synthesized.mode = BenOrConfig::Mode::kVacFromTwoAc;

  const auto nativeResult = runBenOr(native);
  const auto synthResult = runBenOr(synthesized);
  ASSERT_TRUE(nativeResult.allDecided);
  ASSERT_TRUE(synthResult.allDecided);
  EXPECT_EQ(nativeResult.maxDecisionRound, 1u);
  EXPECT_EQ(synthResult.maxDecisionRound, 1u);
  // Processes keep participating briefly after deciding (next round's
  // traffic until the run stops), so the factor is near 2, not exactly 2.
  const double ratio = static_cast<double>(synthResult.messagesByCorrect) /
                       static_cast<double>(nativeResult.messagesByCorrect);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.5);
}

TEST(Integration, DecentralizedRaftMatchesBenOrRoundShape) {
  // Paper §4.3: decentralizing Raft yields an algorithm that "highly
  // resembles Ben-Or's". Same template, same reconciliator, same seeds:
  // decision-round distributions should be statistically close. We assert
  // a coarse bound: mean decision rounds within 2x of each other over a
  // seed batch.
  double benorTotal = 0, decTotal = 0;
  constexpr int kRuns = 30;
  for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
    BenOrConfig config;
    config.n = 6;
    config.inputs = splitInputs(6);
    config.seed = 900 + seed;
    config.mode = BenOrConfig::Mode::kDecomposed;
    const auto benor = runBenOr(config);
    config.mode = BenOrConfig::Mode::kDecentralizedVac;
    const auto dec = runBenOr(config);
    EXPECT_TRUE(benor.allDecided);
    EXPECT_TRUE(dec.allDecided);
    benorTotal += benor.meanDecisionRound;
    decTotal += dec.meanDecisionRound;
  }
  EXPECT_LT(decTotal, 2.0 * benorTotal);
  EXPECT_LT(benorTotal, 2.0 * decTotal);
}

TEST(Integration, DecomposedAndMonolithicBenOrAgreeOnShape) {
  // E1's claim in test form: across seeds, mean rounds-to-decide of the
  // decomposed and monolithic implementations stay within 50% of each
  // other (identical algorithm, independent implementations).
  double decomposedTotal = 0, monolithicTotal = 0;
  constexpr int kRuns = 40;
  for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
    BenOrConfig config;
    config.n = 5;
    config.inputs = splitInputs(5);
    config.seed = 7000 + seed;
    config.mode = BenOrConfig::Mode::kDecomposed;
    decomposedTotal += runBenOr(config).meanDecisionRound;
    config.mode = BenOrConfig::Mode::kMonolithic;
    monolithicTotal += runBenOr(config).meanDecisionRound;
  }
  const double ratio = decomposedTotal / monolithicTotal;
  EXPECT_GT(ratio, 0.66) << decomposedTotal << " vs " << monolithicTotal;
  EXPECT_LT(ratio, 1.5) << decomposedTotal << " vs " << monolithicTotal;
}

TEST(Integration, CommonCoinBeatsLocalCoinAtScale) {
  // E10's headline: the common-coin reconciliator's rounds-to-decide does
  // not degrade with n, the local coin's does. At n = 12 the gap must be
  // visible in the mean over a seed batch.
  double localTotal = 0, commonTotal = 0;
  constexpr int kRuns = 25;
  for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
    BenOrConfig config;
    config.n = 12;
    config.inputs = splitInputs(12);
    config.seed = 4000 + seed;
    config.mode = BenOrConfig::Mode::kDecomposed;
    config.reconciliator = BenOrConfig::Reconciliator::kLocalCoin;
    localTotal += runBenOr(config).meanDecisionRound;
    config.reconciliator = BenOrConfig::Reconciliator::kCommonCoin;
    commonTotal += runBenOr(config).meanDecisionRound;
  }
  EXPECT_LT(commonTotal, localTotal);
}

TEST(Integration, CrashesDuringDriveStageAreHarmless) {
  // Crash processes at ticks chosen to land inside the reconciliator step
  // of early rounds; agreement and audits must hold in every run.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    BenOrConfig config;
    config.n = 7;
    config.inputs = splitInputs(7);
    config.seed = 500 + seed;
    config.mode = BenOrConfig::Mode::kDecomposed;
    config.crashes = {{static_cast<ProcessId>(seed % 7), 15 + seed * 3},
                      {static_cast<ProcessId>((seed * 3) % 7), 30 + seed},
                      {static_cast<ProcessId>((seed * 5 + 1) % 7), 2}};
    // Ensure distinct victims; duplicates just crash once, still <= t = 3.
    const auto result = runBenOr(config);
    EXPECT_TRUE(result.allDecided) << "seed " << seed;
    EXPECT_FALSE(result.agreementViolated);
    EXPECT_TRUE(result.allAuditsOk);
  }
}

}  // namespace
}  // namespace ooc

// Randomized robustness suite: determinism fuzzing, hostile-junk injection,
// chaotic fault schedules, and deep Raft log-divergence repair. Everything
// is seed-driven — failures reproduce exactly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "benor/messages.hpp"
#include "benor/reconciliators.hpp"
#include "benor/vac.hpp"
#include "core/consensus_process.hpp"
#include "core/vac_from_ac.hpp"
#include "core/properties.hpp"
#include "core/tagged_message.hpp"
#include "harness/scenarios.hpp"
#include "raft/kv_store.hpp"
#include "sim/simulator.hpp"

namespace ooc {
namespace {

using harness::BenOrConfig;
using harness::RaftScenarioConfig;

// ---------------------------------------------------------------------------
// Determinism fuzz: random configurations, run twice, compare everything.

TEST(Fuzz, BenOrRunsAreReproducibleAcrossRandomConfigs) {
  Rng meta(0xF00D);
  for (int trial = 0; trial < 25; ++trial) {
    BenOrConfig config;
    config.n = 3 + static_cast<std::size_t>(meta.below(10));
    config.inputs.resize(config.n);
    for (auto& v : config.inputs) v = meta.coin();
    config.seed = meta.next();
    config.maxDelay = 1 + meta.below(30);
    const std::size_t crashes = meta.below((config.n - 1) / 2 + 1);
    for (std::size_t k = 0; k < crashes; ++k) {
      config.crashes.emplace_back(
          static_cast<ProcessId>(meta.below(config.n)),
          static_cast<Tick>(meta.below(300)));
    }
    const auto a = runBenOr(config);
    const auto b = runBenOr(config);
    EXPECT_EQ(a.decidedValue, b.decidedValue) << "trial " << trial;
    EXPECT_EQ(a.lastDecisionTick, b.lastDecisionTick) << "trial " << trial;
    EXPECT_EQ(a.messagesByCorrect, b.messagesByCorrect) << "trial " << trial;
    EXPECT_EQ(a.maxDecisionRound, b.maxDecisionRound) << "trial " << trial;
    // And the run itself must be clean whatever the dice said.
    EXPECT_TRUE(a.allDecided) << "trial " << trial;
    EXPECT_FALSE(a.agreementViolated) << "trial " << trial;
    EXPECT_TRUE(a.allAuditsOk) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Junk injection: a process that sprays malformed and mis-addressed
// messages at consensus participants. Everything must be ignored
// gracefully — no crash, no property violation.

struct JunkMessage final : MessageBase<JunkMessage> {
  std::string describe() const override { return "junk"; }
};

class JunkSprayer final : public Process {
 public:
  void onStart() override { spray(); }
  void onTimer(TimerId) override { spray(); }
  void onMessage(ProcessId, const Message&) override {}

 private:
  void spray() {
    if (ctx().now() > 400) return;
    for (ProcessId dest = 0; dest < ctx().processCount(); ++dest) {
      switch (ctx().rng().below(4)) {
        case 0:
          ctx().send(dest, std::make_unique<JunkMessage>());
          break;
        case 1:  // tagged junk for a random round/stage
          ctx().send(dest,
                     std::make_unique<TaggedMessage>(
                         static_cast<Round>(ctx().rng().below(20)),
                         ctx().rng().coin() ? Stage::kDetect : Stage::kDrive,
                         std::make_unique<JunkMessage>()));
          break;
        case 2:  // plausible-looking benor payload at a random round
          ctx().send(dest, std::make_unique<TaggedMessage>(
                               static_cast<Round>(ctx().rng().below(20)),
                               Stage::kDetect,
                               std::make_unique<benor::ProposalMessage>(
                                   static_cast<Value>(ctx().rng().next()))));
          break;
        default:  // forged report
          ctx().send(dest, std::make_unique<TaggedMessage>(
                               static_cast<Round>(ctx().rng().below(20)),
                               Stage::kDetect,
                               std::make_unique<benor::ReportMessage>(
                                   true, ctx().rng().coin())));
          break;
      }
    }
    ctx().setTimer(1 + ctx().rng().below(10));
  }
};

TEST(Fuzz, TemplateSurvivesJunkTraffic) {
  // Ben-Or with t = 2 budgeted faults, one of which is the sprayer. The
  // sprayer's forged reports can inject ratify votes, but never more than
  // one per round (sender dedup), which the thresholds absorb.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SimConfig simConfig;
    simConfig.seed = seed;
    simConfig.maxTicks = 2'000'000;
    UniformDelayNetwork::Options net;
    net.maxDelay = 10;
    Simulator sim(simConfig, std::make_unique<UniformDelayNetwork>(net));

    std::vector<ConsensusProcess*> processes;
    const std::vector<Value> inputs = {0, 1, 0, 1, 0, 1};
    for (Value input : inputs) {
      ConsensusProcess::Options options;
      auto p = std::make_unique<ConsensusProcess>(
          input, benor::BenOrVac::factory(2),
          benor::CoinReconciliator::factory(), options);
      processes.push_back(p.get());
      sim.addProcess(std::move(p));
    }
    sim.addProcess(std::make_unique<JunkSprayer>(), /*faulty=*/true);

    sim.setValidValues(inputs);
    sim.stopWhenAllCorrectDecided();
    sim.run();
    EXPECT_TRUE(sim.allCorrectDecided()) << "seed " << seed;
    EXPECT_FALSE(sim.agreementViolated()) << "seed " << seed;
    EXPECT_FALSE(sim.validityViolated()) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Raft nemesis: random partition storms + crashes; safety must hold in
// every run, liveness once the nemesis retires.

TEST(Fuzz, RaftNemesisPartitionStorm) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    RaftScenarioConfig config;
    config.n = 5;
    config.seed = seed;
    config.dropProbability = 0.05;
    config.maxTicks = 3'000'000;

    Rng nemesis(seed * 77);
    Tick at = 100;
    for (int wave = 0; wave < 6; ++wave) {
      std::vector<int> groups(5);
      for (auto& g : groups) g = static_cast<int>(nemesis.below(2));
      config.partitions.push_back({at, groups});
      at += 200 + nemesis.below(400);
      config.partitions.push_back({at, {}});  // heal
      at += 100 + nemesis.below(200);
    }
    // Nemesis retires by `at`; allow generous convergence time after.
    const auto result = runRaft(config);
    EXPECT_FALSE(result.agreementViolated) << "seed " << seed;
    EXPECT_FALSE(result.validityViolated) << "seed " << seed;
    EXPECT_TRUE(result.commitValuesAgree) << "seed " << seed;
    EXPECT_TRUE(result.allDecided) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Deep log divergence: an isolated stale leader accumulates uncommitted
// entries that must be overwritten after healing (Raft's conflict-suffix
// deletion + NextIndex backtracking).

TEST(Fuzz, RaftStaleLeaderSuffixIsRepaired) {
  SimConfig simConfig;
  simConfig.seed = 9;
  simConfig.maxTicks = 1'000'000;
  UniformDelayNetwork::Options net;
  net.maxDelay = 5;
  auto partitioned = std::make_unique<PartitionedNetwork>(
      std::make_unique<UniformDelayNetwork>(net));
  auto* handle = partitioned.get();
  Simulator sim(simConfig, std::move(partitioned));

  std::vector<raft::KvStoreNode*> nodes;
  for (int i = 0; i < 5; ++i) {
    auto node = std::make_unique<raft::KvStoreNode>(raft::RaftConfig{});
    nodes.push_back(node.get());
    sim.addProcess(std::move(node));
  }
  auto leaderIndex = [&]() -> int {
    for (int i = 0; i < 5; ++i)
      if (nodes[i]->role() == raft::Role::kLeader) return i;
    return -1;
  };

  int staleLeader = -1;
  // Once a leader exists, trap it (and one follower) in a minority
  // partition, then immediately feed it uncommittable entries.
  sim.schedule(2000, [&] {
    staleLeader = leaderIndex();
    ASSERT_NE(staleLeader, -1) << "no leader by tick 2000";
    std::vector<int> groups(5, 0);
    groups[static_cast<std::size_t>(staleLeader)] = 1;
    groups[(staleLeader + 1) % 5] = 1;
    handle->setPartition(groups);
  });
  sim.schedule(2100, [&] {
    for (std::uint32_t k = 100; k < 106; ++k)
      nodes[static_cast<std::size_t>(staleLeader)]->set(k, k);
  });
  // Majority side elects a new leader and commits entries of its own.
  sim.schedule(5000, [&] {
    for (int i = 0; i < 5; ++i) {
      if (i == staleLeader || i == (staleLeader + 1) % 5) continue;
      if (nodes[i]->role() == raft::Role::kLeader) {
        for (std::uint32_t k = 0; k < 4; ++k) nodes[i]->set(k, k + 500);
      }
    }
  });
  sim.schedule(12000, [&] { handle->clearPartition(); });

  sim.setStopPredicate([&](const Simulator&) {
    for (const auto* node : nodes)
      if (node->appliedCount() < 4) return false;
    return true;
  });
  sim.run();
  ASSERT_FALSE(sim.hitCap());

  // All logs' committed prefixes agree, and nobody ever applied one of the
  // stale leader's uncommittable entries.
  for (const auto* node : nodes) {
    ASSERT_GE(node->appliedCount(), 4u);
    for (std::uint32_t k = 0; k < 4; ++k) {
      ASSERT_TRUE(node->data().contains(k));
      EXPECT_EQ(node->data().at(k), k + 500);
    }
    for (std::uint32_t k = 100; k < 106; ++k)
      EXPECT_FALSE(node->data().contains(k)) << "stale entry applied";
  }
  // The stale leader's conflicting suffix was physically replaced.
  const auto& reference = nodes[(staleLeader + 2) % 5]->log();
  const auto& repaired = nodes[static_cast<std::size_t>(staleLeader)]->log();
  const auto commit = nodes[(staleLeader + 2) % 5]->commitIndex();
  ASSERT_GE(repaired.size(), commit);
  for (raft::LogIndex i = 0; i < commit; ++i)
    EXPECT_EQ(repaired[i], reference[i]);
}

// ---------------------------------------------------------------------------
// Chaotic everything: random delays, duplications, crashes, junk — with
// the VacFromTwoAc stack (deepest object nesting) on top.

TEST(Fuzz, NestedObjectsUnderChaos) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SimConfig simConfig;
    simConfig.seed = seed;
    simConfig.maxTicks = 3'000'000;
    UniformDelayNetwork::Options net;
    net.maxDelay = 25;
    net.duplicateProbability = 0.2;  // duplication stresses sender dedup
    Simulator sim(simConfig, std::make_unique<UniformDelayNetwork>(net));

    std::vector<ConsensusProcess*> processes;
    const std::vector<Value> inputs = {0, 1, 0, 1, 0, 1, 0};
    for (Value input : inputs) {
      ConsensusProcess::Options options;
      auto p = std::make_unique<ConsensusProcess>(
          input,
          VacFromTwoAc::liftFactory(
              AcFromVac::liftFactory(benor::BenOrVac::factory(3))),
          benor::CoinReconciliator::factory(), options);
      processes.push_back(p.get());
      sim.addProcess(std::move(p));
    }
    sim.crashAt(static_cast<ProcessId>(seed % 7), 40);
    sim.crashAt(static_cast<ProcessId>((seed + 3) % 7), 150);

    sim.setValidValues(inputs);
    sim.stopWhenAllCorrectDecided();
    sim.run();
    EXPECT_TRUE(sim.allCorrectDecided()) << "seed " << seed;
    EXPECT_FALSE(sim.agreementViolated()) << "seed " << seed;

    std::vector<const ConsensusProcess*> all(processes.begin(),
                                             processes.end());
    for (const auto& audit : auditAllRounds(all))
      EXPECT_TRUE(audit.ok()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ooc

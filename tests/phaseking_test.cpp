// Phase-King tests: the decomposed AC + conciliator under the template
// (paper Algorithms 3-4), the monolithic baseline, Byzantine strategy
// sweeps up to the 3t < n bound, and the object-contract audits.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/scenarios.hpp"
#include "phaseking/conciliator.hpp"

namespace ooc {
namespace {

using harness::PhaseKingConfig;
using harness::PhaseKingResult;
using harness::runPhaseKing;
using phaseking::ByzantineStrategy;

void expectAgreementAndValidity(const PhaseKingResult& result) {
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_FALSE(result.validityViolated);
}

TEST(PhaseKing, NoFaultsUnanimousCommitsImmediately) {
  // Early-commit rule (the paper's Algorithm 2): unanimity decides in
  // round 1. Classic rule: same value, but decided after t+1 rounds.
  PhaseKingConfig config;
  config.n = 4;
  config.byzantineCount = 0;
  config.inputs = {1};
  config.earlyCommitDecision = true;
  const PhaseKingResult early = runPhaseKing(config);
  expectAgreementAndValidity(early);
  EXPECT_EQ(early.decidedValue, 1);
  EXPECT_EQ(early.maxDecisionRound, 1u);
  EXPECT_TRUE(early.allAuditsOk);

  config.earlyCommitDecision = false;
  const PhaseKingResult classic = runPhaseKing(config);
  expectAgreementAndValidity(classic);
  EXPECT_EQ(classic.decidedValue, 1);
  EXPECT_EQ(classic.maxDecisionRound, 2u);  // t + 1 = 2 completed rounds
}

TEST(PhaseKing, NoFaultsMixedInputsDecide) {
  PhaseKingConfig config;
  config.n = 5;
  config.byzantineCount = 0;
  config.inputs = {0, 1};
  const PhaseKingResult result = runPhaseKing(config);
  expectAgreementAndValidity(result);
  EXPECT_TRUE(result.allAuditsOk);
}

TEST(PhaseKing, DecidesWithinTPlusOneHonestKingRounds) {
  // With f Byzantine processes at the front, kings 1..f are hostile; a
  // correct king reigns by round f+1. The classic rule decides after
  // exactly t+1 completed rounds; early commit within f+2.
  PhaseKingConfig config;
  config.n = 7;
  config.byzantineCount = 2;
  config.placement = PhaseKingConfig::Placement::kFront;
  config.strategy = ByzantineStrategy::kEquivocate;
  const PhaseKingResult classic = runPhaseKing(config);
  expectAgreementAndValidity(classic);
  EXPECT_EQ(classic.maxDecisionRound, 3u);  // t + 1

  config.earlyCommitDecision = true;
  const PhaseKingResult early = runPhaseKing(config);
  expectAgreementAndValidity(early);
  EXPECT_LE(early.maxDecisionRound, 4u);
}

TEST(PhaseKing, EarlyCommitDecisionGapIsReal) {
  // Empirical §4.1 finding (detailed in EXPERIMENTS.md): the paper's
  // decide-on-commit rule is unsound for Phase-King. If a processor
  // commits v early and a Byzantine king reigns in that same round, the
  // conciliator hands every adopter the king's value — the paper's
  // conciliator validity (Lemma 3) silently assumes an honest king — and a
  // later round can commit differently. The random adversary finds this in
  // a 40-seed batch; the classic fixed-round rule never breaks.
  int earlyViolations = 0;
  for (std::uint64_t seed = 50'000; seed < 50'040; ++seed) {
    PhaseKingConfig config;
    config.n = 13;
    config.byzantineCount = 4;
    config.strategy = ByzantineStrategy::kRandom;
    config.placement = PhaseKingConfig::Placement::kFront;
    config.seed = seed;

    config.earlyCommitDecision = true;
    const PhaseKingResult early = runPhaseKing(config);
    earlyViolations += early.agreementViolated ? 1 : 0;

    config.earlyCommitDecision = false;
    const PhaseKingResult classic = runPhaseKing(config);
    EXPECT_FALSE(classic.agreementViolated) << "seed " << seed;
    EXPECT_TRUE(classic.allDecided) << "seed " << seed;
  }
  EXPECT_GT(earlyViolations, 0)
      << "expected the known decide-on-commit counterexample to reproduce";
}

// Full strategy x seed x placement sweep at the maximum tolerated f = t.
class PhaseKingSweep
    : public ::testing::TestWithParam<
          std::tuple<ByzantineStrategy, PhaseKingConfig::Placement,
                     std::uint64_t>> {};

TEST_P(PhaseKingSweep, DecomposedSurvivesMaxByzantine) {
  const auto [strategy, placement, seed] = GetParam();
  PhaseKingConfig config;
  config.n = 7;  // t = 2
  config.byzantineCount = 2;
  config.strategy = strategy;
  config.placement = placement;
  config.seed = seed;
  const PhaseKingResult result = runPhaseKing(config);
  expectAgreementAndValidity(result);
  EXPECT_TRUE(result.allAuditsOk);
}

TEST_P(PhaseKingSweep, MonolithicSurvivesMaxByzantine) {
  const auto [strategy, placement, seed] = GetParam();
  PhaseKingConfig config;
  config.n = 7;
  config.byzantineCount = 2;
  config.strategy = strategy;
  config.placement = placement;
  config.seed = seed;
  config.monolithic = true;
  const PhaseKingResult result = runPhaseKing(config);
  expectAgreementAndValidity(result);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PhaseKingSweep,
    ::testing::Combine(
        ::testing::Values(ByzantineStrategy::kSilent,
                          ByzantineStrategy::kRandom,
                          ByzantineStrategy::kEquivocate,
                          ByzantineStrategy::kLyingKing,
                          ByzantineStrategy::kAntiKing),
        ::testing::Values(PhaseKingConfig::Placement::kFront,
                          PhaseKingConfig::Placement::kBack,
                          PhaseKingConfig::Placement::kSpread),
        ::testing::Values(1u, 2u, 3u)));

// Scaling sweep: larger networks at their maximum t.
class PhaseKingScale : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PhaseKingScale, MaxToleranceAtEverySize) {
  const std::size_t n = GetParam();
  PhaseKingConfig config;
  config.n = n;
  config.byzantineCount = (n - 1) / 3;
  config.strategy = ByzantineStrategy::kEquivocate;
  config.placement = PhaseKingConfig::Placement::kFront;
  const PhaseKingResult result = runPhaseKing(config);
  expectAgreementAndValidity(result);
  EXPECT_TRUE(result.allAuditsOk);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PhaseKingScale,
                         ::testing::Values(std::size_t{4}, std::size_t{7},
                                           std::size_t{10}, std::size_t{13},
                                           std::size_t{16}, std::size_t{25}));

TEST(PhaseKing, UnanimousCorrectInputsSurviveByzantine) {
  // Validity under attack: all correct processes propose 1; the adversary
  // must not be able to change the outcome.
  for (auto strategy :
       {ByzantineStrategy::kEquivocate, ByzantineStrategy::kRandom,
        ByzantineStrategy::kAntiKing}) {
    PhaseKingConfig config;
    config.n = 7;
    config.byzantineCount = 2;
    config.strategy = strategy;
    config.inputs = {1};
    const PhaseKingResult result = runPhaseKing(config);
    expectAgreementAndValidity(result);
    EXPECT_EQ(result.decidedValue, 1);
  }
}

TEST(PhaseKing, RejectsTooManyDeclaredFaults) {
  PhaseKingConfig config;
  config.n = 6;
  config.byzantineCount = 0;
  config.t = 2;  // 3t = 6 >= n: illegal
  EXPECT_THROW(runPhaseKing(config), std::invalid_argument);
}

TEST(PhaseKing, BeyondBoundAdversaryCanBreakRuns) {
  // f > t: guarantees are void. We do not assert failure (the adversary
  // is not optimal), only that the harness detects violations when they
  // happen and that nothing crashes. At minimum, some run across the seed
  // batch should misbehave (disagree, adopt an invalid value, or fail to
  // decide within the round budget).
  int misbehaved = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    PhaseKingConfig config;
    config.n = 7;
    config.byzantineCount = 3;  // t = 2, f = 3
    config.strategy = ByzantineStrategy::kAntiKing;
    config.placement = PhaseKingConfig::Placement::kFront;
    config.seed = seed;
    config.maxRounds = 40;
    const PhaseKingResult result = runPhaseKing(config);
    if (!result.allDecided || result.agreementViolated ||
        result.validityViolated || !result.allAuditsOk) {
      ++misbehaved;
    }
  }
  EXPECT_GT(misbehaved, 0)
      << "f > t adversary never disturbed the protocol; attack too weak "
         "to exercise the resilience boundary";
}

TEST(PhaseKing, DeterministicAcrossRuns) {
  PhaseKingConfig config;
  config.n = 7;
  config.byzantineCount = 2;
  config.strategy = ByzantineStrategy::kRandom;
  config.seed = 9;
  const PhaseKingResult a = runPhaseKing(config);
  const PhaseKingResult b = runPhaseKing(config);
  EXPECT_EQ(a.decidedValue, b.decidedValue);
  EXPECT_EQ(a.maxDecisionRound, b.maxDecisionRound);
  EXPECT_EQ(a.messagesByCorrect, b.messagesByCorrect);
}

TEST(KingConciliator, KingRotationCoversEveryone) {
  EXPECT_EQ(phaseking::KingConciliator::kingOf(1, 5), 0u);
  EXPECT_EQ(phaseking::KingConciliator::kingOf(5, 5), 4u);
  EXPECT_EQ(phaseking::KingConciliator::kingOf(6, 5), 0u);
}

TEST(PhaseKing, MonolithicDecidesAfterExactlyTPlusOnePhases) {
  PhaseKingConfig config;
  config.n = 7;  // t = 2 -> 3 phases, 3 ticks each
  config.byzantineCount = 2;
  config.monolithic = true;
  const PhaseKingResult result = runPhaseKing(config);
  expectAgreementAndValidity(result);
  // Phases run 3 ticks each starting at tick 0; decision lands at the last
  // phase's king tick: 3 * (t+1) ticks total.
  EXPECT_EQ(result.lastDecisionTick, 9u);
}

}  // namespace
}  // namespace ooc

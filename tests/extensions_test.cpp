// Tests for the framework extensions beyond the paper's three case studies:
// Byzantine Ben-Or (async, n > 5t), Phase-Queen (sync, 4t < n), the
// multivalued lottery reconciliator, and the multi-slot replicated log
// built from template instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <tuple>

#include "benor/async_byzantine.hpp"
#include "benor/reconciliators.hpp"
#include "benor/vac.hpp"
#include "harness/scenarios.hpp"
#include "log/replicated_log.hpp"
#include "sim/simulator.hpp"

namespace ooc {
namespace {

using harness::BenOrConfig;
using harness::ByzantineBenOrConfig;
using harness::PhaseKingConfig;

// ---------------------------------------------------------------------------
// Byzantine Ben-Or

class ByzantineBenOrSweep
    : public ::testing::TestWithParam<
          std::tuple<benor::AsyncByzantineStrategy, std::uint64_t>> {};

TEST_P(ByzantineBenOrSweep, SurvivesMaxAttackersAtEveryStrategy) {
  const auto [strategy, seed] = GetParam();
  ByzantineBenOrConfig config;
  config.n = 11;  // t = 2
  config.byzantineCount = 2;
  config.strategy = static_cast<int>(strategy);
  config.seed = seed;
  const auto result = runByzantineBenOr(config);
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_FALSE(result.validityViolated);
  EXPECT_TRUE(result.allAuditsOk);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ByzantineBenOrSweep,
    ::testing::Combine(
        ::testing::Values(benor::AsyncByzantineStrategy::kSilent,
                          benor::AsyncByzantineStrategy::kEquivocate,
                          benor::AsyncByzantineStrategy::kRandom,
                          benor::AsyncByzantineStrategy::kContrarian),
        ::testing::Values(1u, 2u, 3u, 4u, 5u)));

TEST(ByzantineBenOr, UnanimousCorrectInputsCannotBeFlipped) {
  // Validity under attack: all correct processes propose 1; the committed
  // value must be 1 whatever the adversary does.
  for (auto strategy : {benor::AsyncByzantineStrategy::kEquivocate,
                        benor::AsyncByzantineStrategy::kRandom,
                        benor::AsyncByzantineStrategy::kContrarian}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      ByzantineBenOrConfig config;
      config.n = 11;
      config.byzantineCount = 2;
      config.strategy = static_cast<int>(strategy);
      config.inputs = {1};
      config.seed = seed;
      const auto result = runByzantineBenOr(config);
      ASSERT_TRUE(result.allDecided);
      EXPECT_EQ(result.decidedValue, 1)
          << toString(strategy) << " seed " << seed;
      // Convergence: with unanimous correct inputs the very first round
      // must commit despite the attackers.
      EXPECT_EQ(result.maxDecisionRound, 1u);
    }
  }
}

TEST(ByzantineBenOr, LargerNetworks) {
  for (std::size_t n : {6, 16, 26}) {
    ByzantineBenOrConfig config;
    config.n = n;
    config.byzantineCount = (n - 1) / 5;
    config.strategy =
        static_cast<int>(benor::AsyncByzantineStrategy::kEquivocate);
    config.seed = 7;
    const auto result = runByzantineBenOr(config);
    EXPECT_TRUE(result.allDecided) << "n=" << n;
    EXPECT_FALSE(result.agreementViolated);
    EXPECT_TRUE(result.allAuditsOk);
  }
}

TEST(ByzantineBenOr, RejectsTooManyDeclaredFaults) {
  ByzantineBenOrConfig config;
  config.n = 10;
  config.t = 2;  // 5t = 10 >= n
  config.byzantineCount = 0;
  EXPECT_THROW(runByzantineBenOr(config), std::invalid_argument);
}

TEST(ByzantineBenOr, CrashToleranceSubsumed) {
  // Silent Byzantine processes are crashes; the hardened thresholds must
  // still terminate without them.
  ByzantineBenOrConfig config;
  config.n = 11;
  config.byzantineCount = 2;
  config.strategy = static_cast<int>(benor::AsyncByzantineStrategy::kSilent);
  config.seed = 11;
  const auto result = runByzantineBenOr(config);
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
}

// ---------------------------------------------------------------------------
// Phase-Queen

class PhaseQueenSweep
    : public ::testing::TestWithParam<
          std::tuple<phaseking::ByzantineStrategy, std::uint64_t>> {};

TEST_P(PhaseQueenSweep, SurvivesMaxAttackers) {
  const auto [strategy, seed] = GetParam();
  PhaseKingConfig config;
  config.algorithm = PhaseKingConfig::Algorithm::kQueen;
  config.n = 9;  // queen: t = 2
  config.byzantineCount = 2;
  config.strategy = strategy;
  config.placement = PhaseKingConfig::Placement::kFront;
  config.seed = seed;
  const auto result = runPhaseKing(config);
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_FALSE(result.validityViolated);
  EXPECT_TRUE(result.allAuditsOk);
  EXPECT_EQ(result.maxDecisionRound, 3u);  // classic rule: t + 1 rounds
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PhaseQueenSweep,
    ::testing::Combine(
        ::testing::Values(phaseking::ByzantineStrategy::kSilent,
                          phaseking::ByzantineStrategy::kRandom,
                          phaseking::ByzantineStrategy::kEquivocate,
                          phaseking::ByzantineStrategy::kLyingKing,
                          phaseking::ByzantineStrategy::kAntiKing),
        ::testing::Values(1u, 2u, 3u)));

TEST(PhaseQueen, FasterThanKingPerRound) {
  // Same n, same adversary count within both bounds: queen rounds are 2
  // ticks vs the king's 3, so total ticks to decide are lower even though
  // the queen needs its own t+1 rounds.
  PhaseKingConfig king;
  king.n = 13;
  king.byzantineCount = 3;  // within both n/4 and n/3
  king.t = 3;
  king.strategy = phaseking::ByzantineStrategy::kEquivocate;
  PhaseKingConfig queen = king;
  queen.algorithm = PhaseKingConfig::Algorithm::kQueen;

  const auto kingResult = runPhaseKing(king);
  const auto queenResult = runPhaseKing(queen);
  ASSERT_TRUE(kingResult.allDecided);
  ASSERT_TRUE(queenResult.allDecided);
  EXPECT_LT(queenResult.lastDecisionTick, kingResult.lastDecisionTick);
}

TEST(PhaseQueen, ScaleSweepAtMaxTolerance) {
  for (std::size_t n : {5, 9, 13, 21}) {
    PhaseKingConfig config;
    config.algorithm = PhaseKingConfig::Algorithm::kQueen;
    config.n = n;
    config.byzantineCount = (n - 1) / 4;
    config.strategy = phaseking::ByzantineStrategy::kEquivocate;
    config.placement = PhaseKingConfig::Placement::kFront;
    const auto result = runPhaseKing(config);
    EXPECT_TRUE(result.allDecided) << "n=" << n;
    EXPECT_FALSE(result.agreementViolated) << "n=" << n;
    EXPECT_TRUE(result.allAuditsOk) << "n=" << n;
  }
}

TEST(PhaseQueen, RejectsKingToleranceLevels) {
  PhaseKingConfig config;
  config.algorithm = PhaseKingConfig::Algorithm::kQueen;
  config.n = 9;
  config.t = 3;  // fine for the king (3t < n fails: 9 !> 9) — also bad here
  config.byzantineCount = 0;
  EXPECT_THROW(runPhaseKing(config), std::invalid_argument);
}

TEST(PhaseQueen, NoMonolithicBaseline) {
  PhaseKingConfig config;
  config.algorithm = PhaseKingConfig::Algorithm::kQueen;
  config.monolithic = true;
  EXPECT_THROW(runPhaseKing(config), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Multivalued consensus with the lottery reconciliator

TEST(LotteryReconciliator, MultivaluedConsensus) {
  // Five processes, five distinct values: binary coins cannot express this
  // (their output 0/1 may be nobody's input); the lottery can.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    BenOrConfig config;
    config.n = 5;
    config.inputs = {10, 20, 30, 40, 50};
    config.seed = 600 + seed;
    config.reconciliator = BenOrConfig::Reconciliator::kLottery;
    const auto result = runBenOr(config);
    EXPECT_TRUE(result.allDecided) << "seed " << seed;
    EXPECT_FALSE(result.agreementViolated);
    EXPECT_FALSE(result.validityViolated);
    EXPECT_TRUE(result.allAuditsOk);
    EXPECT_EQ(result.decidedValue % 10, 0);
  }
}

TEST(LotteryReconciliator, BinaryStillWorks) {
  BenOrConfig config;
  config.n = 8;
  config.inputs = {0, 1, 0, 1, 0, 1, 0, 1};
  config.seed = 77;
  config.reconciliator = BenOrConfig::Reconciliator::kLottery;
  const auto result = runBenOr(config);
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_TRUE(result.allAuditsOk);
}

TEST(LotteryReconciliator, WithCrashes) {
  BenOrConfig config;
  config.n = 7;
  config.inputs = {11, 22, 33, 44, 55, 66, 77};
  config.seed = 5;
  config.reconciliator = BenOrConfig::Reconciliator::kLottery;
  config.crashes = {{1, 10}, {4, 50}, {6, 5}};
  const auto result = runBenOr(config);
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_FALSE(result.validityViolated);
}

// ---------------------------------------------------------------------------
// Replicated log (multi-slot consensus)

struct LogRun {
  std::vector<log::ReplicatedLogNode*> nodes;
  std::unique_ptr<Simulator> sim;
  std::size_t totalCommands = 0;
};

LogRun runLog(std::size_t n, std::size_t commandsPerNode,
              std::uint64_t seed,
              std::vector<std::pair<ProcessId, Tick>> crashes = {}) {
  LogRun run;
  SimConfig simConfig;
  simConfig.seed = seed;
  simConfig.maxTicks = 3'000'000;
  UniformDelayNetwork::Options net;
  net.minDelay = 1;
  net.maxDelay = 8;
  run.sim = std::make_unique<Simulator>(
      simConfig, std::make_unique<UniformDelayNetwork>(net));

  const std::size_t t = (n - 1) / 2;
  for (ProcessId id = 0; id < n; ++id) {
    std::vector<Value> commands;
    for (std::uint32_t k = 0; k < commandsPerNode; ++k)
      commands.push_back(log::makeCommand(id, k));
    run.totalCommands += commands.size();
    log::ReplicatedLogNode::Options options;
    auto node = std::make_unique<log::ReplicatedLogNode>(
        std::move(commands),
        [t](std::uint64_t) { return benor::BenOrVac::factory(t); },
        [t, seed](std::uint64_t slot) {
          // Mix the slot into the shared lottery seed (see
          // SlotDriverFactory's contract).
          return benor::LotteryReconciliator::factory(
              t, seed ^ (slot * 0x9E3779B97F4A7C15ull) ^ 0x10C);
        },
        options);
    run.nodes.push_back(node.get());
    run.sim->addProcess(std::move(node));
  }
  std::set<ProcessId> crashed;
  for (const auto& [id, tick] : crashes) {
    run.sim->crashAt(id, tick);
    crashed.insert(id);
  }
  run.sim->setStopPredicate([&run, crashed](const Simulator& sim) {
    // Done when every live node drained its queue and all live logs have
    // equal length (crashed nodes' unsubmitted commands are lost, as for
    // any crashed client).
    std::size_t length = 0;
    bool first = true;
    for (ProcessId id = 0; id < run.nodes.size(); ++id) {
      if (sim.crashed(id)) continue;
      const auto* node = run.nodes[id];
      if (!node->drained()) return false;
      if (first) {
        length = node->log().size();
        first = false;
      } else if (node->log().size() != length) {
        return false;
      }
    }
    return !first && length > 0;
  });
  run.sim->run();
  return run;
}

TEST(ReplicatedLog, AllCommandsCommittedExactlyOnceInSameOrder) {
  const LogRun run = runLog(4, 5, 1);
  ASSERT_FALSE(run.sim->hitCap());

  const auto reference = run.nodes[0]->committedCommands();
  EXPECT_EQ(reference.size(), run.totalCommands);
  std::set<Value> unique(reference.begin(), reference.end());
  EXPECT_EQ(unique.size(), reference.size()) << "duplicate commit";

  for (const auto* node : run.nodes) {
    EXPECT_EQ(node->log(), run.nodes[0]->log()) << "log divergence";
  }
}

TEST(ReplicatedLog, SeedSweepStaysConsistent) {
  for (std::uint64_t seed = 2; seed <= 8; ++seed) {
    const LogRun run = runLog(3, 3, seed);
    ASSERT_FALSE(run.sim->hitCap()) << "seed " << seed;
    for (const auto* node : run.nodes)
      EXPECT_EQ(node->log(), run.nodes[0]->log()) << "seed " << seed;
    EXPECT_EQ(run.nodes[0]->committedCommands().size(), run.totalCommands);
  }
}

TEST(ReplicatedLog, SurvivesMinorityCrashes) {
  // n = 5, t = 2: crash two nodes mid-stream. Live logs must stay
  // identical; commands of crashed nodes may be partially lost (their
  // client died) but committed prefixes never diverge.
  const LogRun run = runLog(5, 4, 3, {{0, 400}, {3, 900}});
  ASSERT_FALSE(run.sim->hitCap());
  const log::ReplicatedLogNode* reference = nullptr;
  for (ProcessId id = 0; id < run.nodes.size(); ++id) {
    if (run.sim->crashed(id)) continue;
    if (reference == nullptr) {
      reference = run.nodes[id];
      continue;
    }
    EXPECT_EQ(run.nodes[id]->log(), reference->log());
  }
  ASSERT_NE(reference, nullptr);
  // No command appears twice anywhere.
  const auto committed = reference->committedCommands();
  std::set<Value> unique(committed.begin(), committed.end());
  EXPECT_EQ(unique.size(), committed.size());
}

TEST(ReplicatedLog, RejectsReservedCommands) {
  EXPECT_THROW(
      log::ReplicatedLogNode(
          {log::kNoopCommand},
          [](std::uint64_t) { return benor::BenOrVac::factory(1); },
          [](std::uint64_t) { return benor::CoinReconciliator::factory(); },
          {}),
      std::invalid_argument);
}

TEST(ReplicatedLog, CommandPacking) {
  const Value command = log::makeCommand(3, 17);
  EXPECT_EQ(log::commandNode(command), 3u);
  EXPECT_GT(command, log::kNoopCommand);
}

}  // namespace
}  // namespace ooc

// Model-checker tests: strategy enumeration is deterministic and complete,
// healthy property sweeps over every Ben-Or mode x reconciliator find no
// violations, and a deliberately planted VAC coherence bug is caught,
// shrunk to a small configuration, serialized, and reproduced by replay.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <tuple>

#include "check/checker.hpp"
#include "check/invariant.hpp"
#include "check/replay.hpp"
#include "check/scenario.hpp"
#include "check/shrink.hpp"
#include "check/strategy.hpp"
#include "compose/registry.hpp"

namespace ooc::check {
namespace {

using harness::BenOrConfig;

Scenario benOrBase(BenOrConfig::Mode mode,
                   BenOrConfig::Reconciliator reconciliator) {
  Scenario scenario;
  scenario.family = Family::kBenOr;
  auto& config = scenario.benOr;
  config.n = 5;
  config.inputs = {0, 1, 0, 1, 1};
  config.mode = mode;
  config.reconciliator = reconciliator;
  return scenario;
}

// ---------------------------------------------------------------------------
// Property sweeps: every mode x reconciliator stays clean under random
// exploration. keep-value is the paper's negative control — it provably
// stalls on balanced inputs — so its sweep checks safety only.

class ModeReconciliatorSweep
    : public ::testing::TestWithParam<
          std::tuple<BenOrConfig::Mode, BenOrConfig::Reconciliator>> {};

TEST_P(ModeReconciliatorSweep, RandomWalkFindsNoViolation) {
  const auto [mode, reconciliator] = GetParam();
  Scenario base = benOrBase(mode, reconciliator);
  const bool keepValue =
      reconciliator == BenOrConfig::Reconciliator::kKeepValue;
  if (keepValue) {
    base.benOr.maxRounds = 30;
    base.benOr.maxTicks = 400000;
  }

  RandomWalkStrategy::Options options;
  options.runs = 20;
  options.seedBase = 7000;
  const RandomWalkStrategy strategy(base, options);

  const auto suite = safetySuite(/*requireTermination=*/!keepValue);
  const CheckReport report = explore(strategy, view(suite), {});
  EXPECT_EQ(report.configsExplored, 20u);
  EXPECT_TRUE(report.ok()) << report.findings.front().violation.invariant
                           << ": "
                           << report.findings.front().violation.detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ModeReconciliatorSweep,
    ::testing::Combine(
        ::testing::Values(BenOrConfig::Mode::kDecomposed,
                          BenOrConfig::Mode::kMonolithic,
                          BenOrConfig::Mode::kVacFromTwoAc,
                          BenOrConfig::Mode::kDecentralizedVac),
        ::testing::Values(BenOrConfig::Reconciliator::kLocalCoin,
                          BenOrConfig::Reconciliator::kCommonCoin,
                          BenOrConfig::Reconciliator::kBiasedCoin,
                          BenOrConfig::Reconciliator::kKeepValue,
                          BenOrConfig::Reconciliator::kLottery)));

TEST(CheckerSweep, DelayAdversaryKeepsBenOrSafe) {
  DelayBoundStrategy::Options options;
  options.budgets = {2, 8};
  options.adversarySeedsPerBudget = 10;
  const DelayBoundStrategy strategy(
      benOrBase(BenOrConfig::Mode::kDecomposed,
                BenOrConfig::Reconciliator::kLocalCoin),
      options);
  const auto suite = safetySuite();
  const CheckReport report = explore(strategy, view(suite), {});
  EXPECT_EQ(report.configsExplored, 20u);
  EXPECT_TRUE(report.ok());
}

TEST(CheckerSweep, CrashEnumerationKeepsBenOrSafe) {
  CrashScheduleStrategy::Options options;
  options.maxCrashes = 2;
  options.tickGrid = {1, 20};
  const CrashScheduleStrategy strategy(
      benOrBase(BenOrConfig::Mode::kDecomposed,
                BenOrConfig::Reconciliator::kLocalCoin),
      options);
  // n=5, <=2 crashes: 1 + 5*2 + 10*4 = 51 schedules.
  EXPECT_EQ(strategy.size(), 51u);
  const auto suite = safetySuite();
  const CheckReport report = explore(strategy, view(suite), {});
  EXPECT_EQ(report.configsExplored, 51u);
  EXPECT_TRUE(report.ok());
}

// ---------------------------------------------------------------------------
// Strategy mechanics

TEST(Strategies, GenerateIsDeterministic) {
  RandomWalkStrategy::Options options;
  options.runs = 10;
  const RandomWalkStrategy strategy(
      benOrBase(BenOrConfig::Mode::kDecomposed,
                BenOrConfig::Reconciliator::kLocalCoin),
      options);
  for (std::size_t i = 0; i < strategy.size(); ++i)
    EXPECT_EQ(serialize(strategy.generate(i)),
              serialize(strategy.generate(i)));
}

TEST(Strategies, DelayBoundCoversTheBudgetGrid) {
  DelayBoundStrategy::Options options;
  options.budgets = {1, 4, 16};
  options.adversarySeedsPerBudget = 5;
  const DelayBoundStrategy strategy(
      benOrBase(BenOrConfig::Mode::kDecomposed,
                BenOrConfig::Reconciliator::kLocalCoin),
      options);
  ASSERT_EQ(strategy.size(), 15u);
  std::set<std::pair<Tick, std::uint64_t>> seen;
  for (std::size_t i = 0; i < strategy.size(); ++i) {
    const Scenario scenario = strategy.generate(i);
    EXPECT_TRUE(scenario.benOr.adversary.enabled());
    seen.emplace(scenario.benOr.adversary.extraDelayMax,
                 scenario.benOr.adversary.seed);
  }
  EXPECT_EQ(seen.size(), 15u);  // every (budget, seed) pair, no duplicates
}

TEST(Strategies, CrashEnumerationCoversEverySchedule) {
  CrashScheduleStrategy::Options options;
  options.maxCrashes = 2;
  options.tickGrid = {1, 9};
  const CrashScheduleStrategy strategy(
      benOrBase(BenOrConfig::Mode::kDecomposed,
                BenOrConfig::Reconciliator::kLocalCoin),
      options);
  std::set<std::string> seen;
  for (std::size_t i = 0; i < strategy.size(); ++i) {
    const Scenario scenario = strategy.generate(i);
    EXPECT_LE(scenario.benOr.crashes.size(), 2u);
    std::set<ProcessId> ids;
    for (const auto& [id, tick] : scenario.benOr.crashes) {
      ids.insert(id);
      EXPECT_TRUE(tick == 1 || tick == 9);
    }
    EXPECT_EQ(ids.size(), scenario.benOr.crashes.size());  // distinct pids
    seen.insert(serialize(scenario));
  }
  EXPECT_EQ(seen.size(), strategy.size());  // exhaustive, no duplicates
}

TEST(Strategies, SynchronousFamilyRejectsScheduleAdversaries) {
  Scenario phaseKing;
  phaseKing.family = Family::kPhaseKing;
  EXPECT_THROW(DelayBoundStrategy(phaseKing, {}), std::invalid_argument);
  EXPECT_THROW(CrashScheduleStrategy(phaseKing, {}), std::invalid_argument);
}

TEST(Strategies, CompositeConcatenatesParts) {
  const Scenario base = benOrBase(BenOrConfig::Mode::kDecomposed,
                                  BenOrConfig::Reconciliator::kLocalCoin);
  RandomWalkStrategy::Options rw;
  rw.runs = 3;
  DelayBoundStrategy::Options db;
  db.budgets = {4};
  db.adversarySeedsPerBudget = 2;
  std::vector<std::unique_ptr<ExplorationStrategy>> parts;
  parts.push_back(std::make_unique<RandomWalkStrategy>(base, rw));
  parts.push_back(std::make_unique<DelayBoundStrategy>(base, db));
  const CompositeStrategy composite("combo", std::move(parts));
  ASSERT_EQ(composite.size(), 5u);
  EXPECT_FALSE(composite.generate(2).benOr.adversary.enabled());
  EXPECT_TRUE(composite.generate(3).benOr.adversary.enabled());
  EXPECT_THROW(composite.generate(5), std::out_of_range);
}

// ---------------------------------------------------------------------------
// The planted bug: a VAC whose odd-id processes flip their adopt-level
// outcome values violates coherence. The checker must find it, shrink it,
// and emit a counterexample that replays bit-identically.

Scenario plantedBugBase() {
  Scenario base = benOrBase(BenOrConfig::Mode::kDecomposed,
                            BenOrConfig::Reconciliator::kLocalCoin);
  base.benOr.fault = BenOrConfig::Fault::kVacAdoptFlip;
  return base;
}

TEST(PlantedBug, IsCaughtShrunkAndReplayable) {
  RandomWalkStrategy::Options options;
  options.runs = 50;
  const RandomWalkStrategy strategy(plantedBugBase(), options);

  const std::string traceDir =
      (std::filesystem::path(::testing::TempDir()) / "ooc-planted-bug")
          .string();
  CheckerOptions checker;
  checker.maxFindings = 1;
  checker.traceDir = traceDir;

  const auto suite = safetySuite();
  const CheckReport report = explore(strategy, view(suite), checker);
  ASSERT_FALSE(report.ok()) << "planted coherence bug was not detected";
  const Finding& finding = report.findings.front();

  // Shrinking ran and kept the violation on a no-larger configuration.
  ASSERT_TRUE(finding.shrunk.has_value());
  EXPECT_LE(finding.shrunk->benOr.n, finding.scenario.benOr.n);
  EXPECT_LE(finding.shrunk->benOr.crashes.size(),
            finding.scenario.benOr.crashes.size());
  EXPECT_EQ(finding.shrunk->benOr.fault, BenOrConfig::Fault::kVacAdoptFlip);

  // The counterexample file exists, parses, and replays bit-identically,
  // reproducing the violation from disk alone.
  ASSERT_FALSE(finding.tracePath.empty());
  const CounterexampleFile file = loadCounterexampleFile(finding.tracePath);
  EXPECT_EQ(file.invariant, finding.violation.invariant);
  const ReplayResult replay = replayRun(file.scenario, file.trace);
  EXPECT_TRUE(replay.identical)
      << replay.divergence.value_or("(no divergence)");
  bool reproduced = false;
  for (const auto& invariant : suite) {
    if (file.invariant != invariant->name()) continue;
    reproduced =
        invariant->check(file.scenario, replay.report).has_value();
  }
  EXPECT_TRUE(reproduced);
}

TEST(PlantedBug, ShrinkReachesASmallConfiguration) {
  // Find any violating configuration, then shrink it hard and check the
  // result is locally minimal-ish: few processes, no crashes left.
  RandomWalkStrategy::Options options;
  options.runs = 50;
  const RandomWalkStrategy strategy(plantedBugBase(), options);
  const auto suite = safetySuite();

  std::optional<Scenario> violating;
  const Invariant* fired = nullptr;
  for (std::size_t i = 0; i < strategy.size() && !violating; ++i) {
    const Scenario scenario = strategy.generate(i);
    const RunReport report = runScenario(scenario);
    for (const Invariant* invariant : view(suite)) {
      if (invariant->check(scenario, report)) {
        violating = scenario;
        fired = invariant;
        break;
      }
    }
  }
  ASSERT_TRUE(violating.has_value());

  const ShrinkResult shrunk = shrinkCounterexample(*violating, *fired, {});
  EXPECT_GT(shrunk.attempts, 0u);
  EXPECT_LE(shrunk.scenario.benOr.n, 6u);
  EXPECT_TRUE(shrunk.scenario.benOr.crashes.empty());
  // Still a genuine counterexample.
  EXPECT_TRUE(fired
                  ->check(shrunk.scenario, runScenario(shrunk.scenario))
                  .has_value());
}

TEST(PlantedBug, HealthySweepWithSameSeedsStaysClean) {
  // Identical exploration without the fault: no findings, proving the
  // detection above is attributable to the planted bug alone.
  RandomWalkStrategy::Options options;
  options.runs = 50;
  const RandomWalkStrategy strategy(
      benOrBase(BenOrConfig::Mode::kDecomposed,
                BenOrConfig::Reconciliator::kLocalCoin),
      options);
  const auto suite = safetySuite();
  const CheckReport report = explore(strategy, view(suite), {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.configsExplored, 50u);
}

// ---------------------------------------------------------------------------
// Witness hunting (§5): the checker can search for schedules where
// decide-on-adopt would have broken agreement.

TEST(WitnessHunt, FindsAdoptMismatchSchedules) {
  RandomWalkStrategy::Options options;
  options.runs = 200;
  const RandomWalkStrategy strategy(
      benOrBase(BenOrConfig::Mode::kDecomposed,
                BenOrConfig::Reconciliator::kLocalCoin),
      options);
  const AdoptWitnessInvariant witness;
  CheckerOptions checker;
  checker.maxFindings = 1;
  checker.shrink = false;
  const CheckReport report = explore(strategy, {&witness}, checker);
  EXPECT_FALSE(report.ok())
      << "no decide-on-adopt witness in 200 runs (statistically expected)";
}

// ---------------------------------------------------------------------------
// Compose-family scenarios: serialized pairings pass through the same
// registry gate as every other parse path.

TEST(ComposeScenario, SerializedRunRoundTrips) {
  Scenario scenario;
  scenario.family = Family::kCompose;
  scenario.compose.detector = "benor-vac";
  scenario.compose.driver = "timer";
  scenario.compose.n = 5;
  scenario.compose.inputs = {0, 1, 0, 1, 1};
  scenario.compose.seed = 23;

  const std::string text = serialize(scenario);
  const Scenario parsed = parseScenario(text);
  EXPECT_EQ(serialize(parsed), text);

  const auto recorded = recordRun(scenario);
  const auto replay = replayRun(parsed, recorded.trace);
  EXPECT_TRUE(replay.identical) << replay.divergence.value_or("");
}

TEST(ComposeScenario, RejectedPairingLoadsWithTheRegistryDiagnostic) {
  // A scenario file can spell any pairing; loading one the registry
  // rejects must fail with the exact diagnostic the CLI prints — the
  // parse path ends in the same resolve() gate, not a second opinion.
  Scenario scenario;
  scenario.family = Family::kCompose;
  scenario.compose.detector = "phaseking-ac";
  scenario.compose.driver = "local-coin";
  const std::string text = serialize(scenario);

  const std::string expected = *compose::registry().validatePairing(
      "phaseking-ac", "local-coin");
  try {
    parseScenario(text);
    FAIL() << "rejected pairing parsed without a diagnostic";
  } catch (const std::invalid_argument& error) {
    EXPECT_EQ(std::string(error.what()), expected);
  }

  // The same gate guards counterexample files.
  CounterexampleFile file;
  file.scenario = scenario;
  file.invariant = "agreement";
  file.detail = "hand-written";
  const std::string serialized = serializeCounterexample(file);
  try {
    parseCounterexample(serialized);
    FAIL() << "rejected pairing loaded from a counterexample file";
  } catch (const std::invalid_argument& error) {
    EXPECT_EQ(std::string(error.what()), expected);
  }
}

}  // namespace
}  // namespace ooc::check

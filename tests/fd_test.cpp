// The failure-detector oracle family (src/fd/): axiom conformance of the
// three oracles (P, ◇S, Ω) over randomized fault schedules including
// restart faults, oracle determinism (noise is a pure hash, never shared
// RNG state), the FD-axiom auditor's positive and negative verdicts, the
// Chandra–Toueg rotating coordinator through the generic composition
// runner, and the checker surface (oracle-quality strategy, FD invariants,
// liveness counterexample for a deliberately-weakened oracle).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "check/scenario.hpp"
#include "check/strategy.hpp"
#include "compose/composition.hpp"
#include "compose/registry.hpp"
#include "compose/run.hpp"
#include "fd/audit.hpp"
#include "fd/oracle.hpp"
#include "util/rng.hpp"

namespace ooc {
namespace {

using fd::FaultSchedule;
using fd::OracleClass;
using fd::OracleKnobs;

// ---------------------------------------------------------------------------
// FaultSchedule

TEST(FaultSchedule, CrashAndRestartIntervals) {
  FaultSchedule schedule(4);
  schedule.crash(1, 50);                    // terminal
  schedule.restart(2, 30, /*downFor=*/40);  // down [30, 70)

  EXPECT_TRUE(schedule.upAt(0, 0));
  EXPECT_TRUE(schedule.upAt(1, 49));
  EXPECT_FALSE(schedule.upAt(1, 50));
  EXPECT_FALSE(schedule.upAt(1, 100000));
  EXPECT_TRUE(schedule.upAt(2, 29));
  EXPECT_FALSE(schedule.upAt(2, 30));
  EXPECT_FALSE(schedule.upAt(2, 69));
  EXPECT_TRUE(schedule.upAt(2, 70));

  EXPECT_TRUE(schedule.correct(0));
  EXPECT_FALSE(schedule.correct(1));
  EXPECT_TRUE(schedule.correct(2));  // restarted: not terminally crashed
  EXPECT_FALSE(schedule.correct(7));  // out of range

  EXPECT_EQ(schedule.firstDownAt(1), Tick{50});
  EXPECT_EQ(schedule.firstDownAt(2), Tick{30});
  EXPECT_FALSE(schedule.firstDownAt(0).has_value());
  EXPECT_EQ(schedule.lastTransition(), Tick{70});
}

// ---------------------------------------------------------------------------
// Axiom conformance over randomized schedules (incl. restart faults)

FaultSchedule randomSchedule(std::size_t n, Rng& meta) {
  FaultSchedule schedule(n);
  const std::size_t crashes = meta.below(n / 2 + 1);
  for (std::size_t k = 0; k < crashes; ++k) {
    const auto id = static_cast<ProcessId>(meta.below(n));
    const auto at = static_cast<Tick>(1 + meta.below(200));
    if (meta.coin())
      schedule.crash(id, at);
    else
      schedule.restart(id, at, static_cast<Tick>(1 + meta.below(100)));
  }
  return schedule;
}

TEST(OracleAxioms, HonestOraclesPassTheAuditOnRandomSchedules) {
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    Rng meta = Rng(900 + trial).split(1);
    const std::size_t n = 3 + meta.below(6);
    const FaultSchedule schedule = randomSchedule(n, meta);

    OracleKnobs knobs;
    knobs.completenessLag = static_cast<Tick>(1 + meta.below(20));
    knobs.stabilizeAt = static_cast<Tick>(meta.below(200));
    knobs.noise = 0.1 * static_cast<double>(meta.below(6));
    for (const OracleClass oracleClass :
         {OracleClass::kPerfect, OracleClass::kEventuallyStrong,
          OracleClass::kOmega}) {
      OracleKnobs cellKnobs = knobs;
      if (oracleClass == OracleClass::kPerfect) cellKnobs.noise = 0.0;
      const auto oracle =
          fd::makeScheduleOracle(oracleClass, cellKnobs, schedule, trial);
      // Any horizon at or past the advertised bound must audit clean.
      const Tick horizon = oracle->stabilizationBound() + 100;
      const auto audit = fd::auditOracle(*oracle, schedule, horizon);
      EXPECT_TRUE(audit.ok())
          << toString(oracleClass) << " trial " << trial
          << "\n  completeness: " << audit.completenessDetail
          << "\n  accuracy: " << audit.accuracyDetail
          << "\n  convergence: " << audit.convergenceDetail;
    }
  }
}

TEST(OracleAxioms, RestartedProcessIsEventuallyUnsuspected) {
  // Crash-with-recovery: the process is down [40, 90). Completeness makes
  // every oracle suspect it while down (after the lag); a restarted process
  // is correct, so ◇S and P must stop suspecting it once it is back up.
  FaultSchedule schedule(4);
  schedule.restart(2, 40, /*downFor=*/50);
  OracleKnobs knobs;
  knobs.completenessLag = 5;
  for (const OracleClass oracleClass :
       {OracleClass::kPerfect, OracleClass::kEventuallyStrong,
        OracleClass::kOmega}) {
    const auto oracle =
        fd::makeScheduleOracle(oracleClass, knobs, schedule, 7);
    EXPECT_TRUE(oracle->suspects(0, 2, 60))
        << toString(oracleClass) << ": down process not suspected";
    const Tick settled = oracle->stabilizationBound() + 1;
    EXPECT_FALSE(oracle->suspects(0, 2, settled))
        << toString(oracleClass)
        << ": restarted process still suspected at tick " << settled;
    EXPECT_FALSE(oracle->suspects(0, 2, settled + 1000))
        << toString(oracleClass);
  }
}

TEST(OracleAxioms, PerfectOracleNeverSuspectsBeforeTheFirstCrash) {
  FaultSchedule schedule(5);
  schedule.crash(3, 120);
  OracleKnobs knobs;
  knobs.completenessLag = 10;
  const auto oracle =
      fd::makeScheduleOracle(OracleClass::kPerfect, knobs, schedule, 11);
  for (Tick at = 0; at < 120; ++at) {
    for (ProcessId viewer = 0; viewer < 5; ++viewer)
      EXPECT_FALSE(oracle->suspects(viewer, 3, at))
          << "strong accuracy broken at tick " << at;
  }
  EXPECT_TRUE(oracle->suspects(0, 3, 120 + knobs.completenessLag));
}

TEST(OracleAxioms, OmegaConvergesToACommonCorrectLeader) {
  FaultSchedule schedule(5);
  schedule.crash(0, 30);  // the initial lowest id fails
  OracleKnobs knobs;
  knobs.completenessLag = 4;
  knobs.stabilizeAt = 80;
  knobs.noise = 0.4;
  const auto oracle =
      fd::makeScheduleOracle(OracleClass::kOmega, knobs, schedule, 5);
  const Tick bound = oracle->stabilizationBound();
  std::set<ProcessId> leaders;
  for (ProcessId viewer = 1; viewer < 5; ++viewer)
    leaders.insert(oracle->leader(viewer, bound + 10));
  EXPECT_EQ(leaders.size(), 1u) << "correct viewers disagree on the leader";
  EXPECT_TRUE(schedule.correct(*leaders.begin()));
  EXPECT_NE(*leaders.begin(), 0u) << "crashed process elected";
}

TEST(OracleAxioms, SuspicionIsAPureFunctionOfScheduleKnobsAndSeed) {
  FaultSchedule schedule(4);
  schedule.crash(1, 60);
  OracleKnobs knobs;
  knobs.stabilizeAt = 100;
  knobs.noise = 0.5;
  const auto a =
      fd::makeScheduleOracle(OracleClass::kEventuallyStrong, knobs, schedule, 9);
  const auto b =
      fd::makeScheduleOracle(OracleClass::kEventuallyStrong, knobs, schedule, 9);
  const auto other =
      fd::makeScheduleOracle(OracleClass::kEventuallyStrong, knobs, schedule, 10);
  bool anyDifference = false;
  for (Tick at = 0; at < 100; at += 3) {
    for (ProcessId viewer = 0; viewer < 4; ++viewer) {
      for (ProcessId target = 0; target < 4; ++target) {
        // Query order must not matter: interleave repeated queries.
        const bool first = a->suspects(viewer, target, at);
        EXPECT_EQ(b->suspects(viewer, target, at), first);
        EXPECT_EQ(a->suspects(viewer, target, at), first);
        if (other->suspects(viewer, target, at) != first)
          anyDifference = true;
      }
    }
  }
  EXPECT_TRUE(anyDifference) << "noise ignores the seed";
}

// ---------------------------------------------------------------------------
// The auditor's negative verdicts

TEST(OracleAudit, LyingOracleFailsAccuracy) {
  // lieAboutBound advertises stabilization at tick 0 while the noise keeps
  // falsely suspecting until tick 500 — the auditor must catch the lie.
  FaultSchedule schedule(5);
  OracleKnobs knobs;
  knobs.stabilizeAt = 500;
  knobs.noise = 0.9;
  knobs.lieAboutBound = true;
  const auto oracle =
      fd::makeScheduleOracle(OracleClass::kOmega, knobs, schedule, 3);
  EXPECT_EQ(oracle->stabilizationBound(), Tick{0});
  const auto audit = fd::auditOracle(*oracle, schedule, 400);
  EXPECT_FALSE(audit.accuracyOk);
  EXPECT_NE(audit.accuracyDetail.find("falsely suspected"),
            std::string::npos)
      << audit.accuracyDetail;
}

TEST(OracleAudit, BoundPastTheHorizonFailsConvergence) {
  // The liveness counterexample: an oracle whose advertised stabilization
  // lands beyond the tick budget never has to deliver its promise inside
  // the run — the auditor reports that as a convergence failure.
  FaultSchedule schedule(5);
  OracleKnobs knobs;
  knobs.stabilizeAt = 10'000;
  knobs.noise = 0.5;
  const auto oracle =
      fd::makeScheduleOracle(OracleClass::kOmega, knobs, schedule, 3);
  const auto audit = fd::auditOracle(*oracle, schedule, 500);
  EXPECT_FALSE(audit.convergenceOk);
  EXPECT_NE(audit.convergenceDetail.find("does not stabilize"),
            std::string::npos)
      << audit.convergenceDetail;
}

// ---------------------------------------------------------------------------
// The rotating coordinator through the generic composition runner

compose::Composition coordinatorComposition(const std::string& driver,
                                            const std::string& oracle) {
  compose::Composition composition;
  composition.detector = "benor-vac";
  composition.driver = driver;
  composition.oracle = oracle;
  composition.n = 5;
  composition.inputs = {0, 1, 0, 1, 1};
  composition.crashes = {{4, 40}};
  return composition;
}

TEST(Coordinator, CtCoordinatorWithOmegaDecidesUnderACrash) {
  auto composition = coordinatorComposition("ct-coordinator", "omega");
  composition.oracleKnobs.stabilizeAt = 60;
  composition.oracleKnobs.noise = 0.3;
  const auto result = compose::runComposition(composition);
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_FALSE(result.validityViolated);
  EXPECT_TRUE(result.allAuditsOk);
  ASSERT_TRUE(result.oracleAudit.has_value());
  EXPECT_TRUE(result.oracleAudit->ok())
      << result.oracleAudit->completenessDetail << " / "
      << result.oracleAudit->accuracyDetail << " / "
      << result.oracleAudit->convergenceDetail;
}

TEST(Coordinator, PCoordinatorWithPerfectOracleDecidesUnderACrash) {
  const auto result = compose::runComposition(
      coordinatorComposition("p-coordinator", "perfect-p"));
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.agreementViolated);
  EXPECT_TRUE(result.allAuditsOk);
  ASSERT_TRUE(result.oracleAudit.has_value());
  EXPECT_TRUE(result.oracleAudit->ok());
}

TEST(Coordinator, OracleFreePairingsCarryNoAudit) {
  compose::Composition composition;  // benor-vac + local-coin defaults
  composition.inputs = {0, 1, 0, 1, 1};
  const auto result = compose::runComposition(composition);
  EXPECT_TRUE(result.allDecided);
  EXPECT_FALSE(result.oracleAudit.has_value());
}

// ---------------------------------------------------------------------------
// The checker surface: fd family, invariants, oracle-quality strategy

check::Scenario fdScenario() {
  check::Scenario scenario;
  scenario.family = check::Family::kFd;
  scenario.compose = coordinatorComposition("ct-coordinator", "omega");
  scenario.compose.oracleKnobs.stabilizeAt = 40;
  scenario.compose.oracleKnobs.noise = 0.25;
  return scenario;
}

TEST(FdFamily, RunScenarioFillsTheFdReportFields) {
  const auto report = check::runScenario(fdScenario());
  EXPECT_TRUE(report.hasOracle);
  EXPECT_TRUE(report.fdCompletenessOk);
  EXPECT_TRUE(report.fdAccuracyOk);
  EXPECT_TRUE(report.fdConvergenceOk);
  EXPECT_TRUE(report.allDecided);
}

TEST(FdFamily, ScenarioSerializationRoundTripsTheOracle) {
  const auto scenario = fdScenario();
  const std::string text = check::serialize(scenario);
  EXPECT_NE(text.find("family=fd"), std::string::npos);
  EXPECT_NE(text.find("oracle=omega"), std::string::npos);
  const auto parsed = check::parseScenario(text);
  EXPECT_EQ(parsed.family, check::Family::kFd);
  EXPECT_EQ(parsed.compose.oracle, "omega");
  EXPECT_EQ(parsed.compose.oracleKnobs.stabilizeAt, Tick{40});
  EXPECT_EQ(check::serialize(parsed), text);
  const std::string description = check::describe(parsed);
  EXPECT_NE(description.find("oracle=omega"), std::string::npos)
      << description;
}

TEST(FdInvariants, LyingOracleIsCaughtByFdAccuracy) {
  auto scenario = fdScenario();
  scenario.compose.oracleKnobs.stabilizeAt = 5'000;
  scenario.compose.oracleKnobs.noise = 0.6;
  scenario.compose.oracleKnobs.lieAboutBound = true;
  const auto report = check::runScenario(scenario);
  EXPECT_FALSE(report.fdAccuracyOk);
  const check::FdAccuracyInvariant invariant;
  const auto violation = invariant.check(scenario, report);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->invariant, "fd-accuracy");
}

TEST(FdInvariants, SlowOracleIsALivenessCounterexample) {
  // The negative test the issue asks for: a deliberately-weakened oracle
  // (stabilization promised only after the tick budget) must surface as a
  // caught fd-convergence violation, not as a silent pass.
  auto scenario = fdScenario();
  scenario.compose.oracleKnobs.stabilizeAt =
      scenario.compose.maxTicks + 1'000'000;
  scenario.compose.oracleKnobs.noise = 0.4;
  const auto report = check::runScenario(scenario);
  EXPECT_FALSE(report.fdConvergenceOk);
  const auto suite = check::safetySuite(/*requireTermination=*/true);
  bool caught = false;
  for (const auto& invariant : suite) {
    if (const auto violation = invariant->check(scenario, report)) {
      EXPECT_EQ(violation->invariant, "fd-convergence");
      caught = true;
    }
  }
  EXPECT_TRUE(caught);
}

TEST(FdInvariants, VacuousWithoutAnOracle) {
  check::RunReport report;  // hasOracle=false, axiom flags default-false ok
  report.fdAccuracyOk = false;
  report.fdCompletenessOk = false;
  report.fdConvergenceOk = false;
  const check::Scenario scenario;
  EXPECT_FALSE(check::FdAccuracyInvariant().check(scenario, report));
  EXPECT_FALSE(check::FdCompletenessInvariant().check(scenario, report));
  EXPECT_FALSE(check::FdConvergenceInvariant().check(scenario, report));
}

TEST(OracleQualityStrategy, EnumeratesOnlyRegistryValidCells) {
  check::OracleQualityStrategy::Options options;
  options.seedsPerCell = 1;
  const check::OracleQualityStrategy strategy(fdScenario(), options);
  ASSERT_GT(strategy.size(), 0u);
  std::set<std::string> oracles;
  for (std::size_t i = 0; i < strategy.size(); ++i) {
    const auto scenario = strategy.generate(i);
    EXPECT_EQ(scenario.family, check::Family::kFd);
    oracles.insert(scenario.compose.oracle);
    // Every enumerated cell must resolve — rejected quality points (noisy
    // perfect-p) were dropped at construction.
    EXPECT_NO_THROW(compose::resolve(scenario.compose)) << i;
    if (scenario.compose.oracle == "perfect-p")
      EXPECT_EQ(scenario.compose.oracleKnobs.noise, 0.0);
  }
  EXPECT_EQ(oracles.size(), 3u) << "all three oracles should appear";
}

TEST(OracleQualityStrategy, RejectsAnOracleFreeBase) {
  check::Scenario base;
  base.family = check::Family::kFd;
  base.compose.driver = "timer";
  EXPECT_THROW(
      check::OracleQualityStrategy(base, check::OracleQualityStrategy::Options{}),
      std::invalid_argument);
}

}  // namespace
}  // namespace ooc

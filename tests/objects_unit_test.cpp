// Object-level unit tests: each detector/driver driven directly through a
// manual ObjectContext with hand-crafted message sequences, pinning the
// exact thresholds and edge cases of every algorithm object.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "benor/byzantine_vac.hpp"
#include "benor/messages.hpp"
#include "benor/reconciliators.hpp"
#include "benor/vac.hpp"
#include "phaseking/adopt_commit.hpp"
#include "phaseking/conciliator.hpp"
#include "phaseking/messages.hpp"
#include "phaseking/queen.hpp"
#include "raft/decentralized.hpp"

namespace ooc {
namespace {

class ManualObjectContext final : public ObjectContext {
 public:
  explicit ManualObjectContext(std::size_t n, ProcessId self = 0)
      : n_(n), self_(self) {}

  ProcessId self() const noexcept override { return self_; }
  std::size_t processCount() const noexcept override { return n_; }
  Tick now() const noexcept override { return 0; }
  Rng& rng() noexcept override { return rng_; }

  void send(ProcessId to, std::unique_ptr<Message> inner) override {
    sent.emplace_back(to, std::move(inner));
  }
  void broadcast(const Message& inner) override {
    broadcasts.push_back(inner.clone());
  }
  TimerId setTimer(Tick) override { return 0; }
  void cancelTimer(TimerId) noexcept override {}

  template <typename T>
  const T* lastBroadcast() const {
    for (auto it = broadcasts.rbegin(); it != broadcasts.rend(); ++it)
      if (const T* typed = (*it)->template as<T>()) return typed;
    return nullptr;
  }

  std::vector<std::pair<ProcessId, std::unique_ptr<Message>>> sent;
  std::vector<std::unique_ptr<Message>> broadcasts;

 private:
  std::size_t n_;
  ProcessId self_;
  Rng rng_{5};
};

// ---------------------------------------------------------------------------
// Phase-King AC (Algorithm 3): n = 4, t = 1, quorum n - t = 3.

struct PkAcBench {
  PkAcBench() : ctx(4), ac(1) {}
  void feedExchange1(std::vector<Value> values) {
    for (ProcessId from = 0; from < values.size(); ++from)
      ac.onMessage(ctx, from, phaseking::ExchangeMessage(1, values[from]));
    ac.onTick(ctx, 1);
  }
  void feedExchange2(std::vector<Value> values) {
    for (ProcessId from = 0; from < values.size(); ++from)
      ac.onMessage(ctx, from, phaseking::ExchangeMessage(2, values[from]));
    ac.onTick(ctx, 2);
  }
  ManualObjectContext ctx;
  phaseking::PhaseKingAc ac;
};

TEST(PhaseKingAcUnit, UnanimousCommits) {
  PkAcBench bench;
  bench.ac.invoke(bench.ctx, 1);
  bench.feedExchange1({1, 1, 1, 1});
  const auto* relay = bench.ctx.lastBroadcast<phaseking::ExchangeMessage>();
  ASSERT_NE(relay, nullptr);
  EXPECT_EQ(relay->value, 1) << "C(1) = 4 >= 3 must select 1";
  bench.feedExchange2({1, 1, 1, 1});
  ASSERT_TRUE(bench.ac.result().has_value());
  EXPECT_EQ(*bench.ac.result(), (Outcome{Confidence::kCommit, 1}));
}

TEST(PhaseKingAcUnit, SplitFirstExchangeYieldsSentinel) {
  PkAcBench bench;
  bench.ac.invoke(bench.ctx, 0);
  bench.feedExchange1({0, 0, 1, 1});  // no value reaches n - t = 3
  const auto* relay = bench.ctx.lastBroadcast<phaseking::ExchangeMessage>();
  ASSERT_NE(relay, nullptr);
  EXPECT_EQ(relay->value, 2) << "sentinel expected on split";
  bench.feedExchange2({2, 2, 2, 2});
  ASSERT_TRUE(bench.ac.result().has_value());
  EXPECT_EQ(bench.ac.result()->confidence, Confidence::kAdopt);
  EXPECT_EQ(bench.ac.result()->value, 2) << "the documented validity gap";
}

TEST(PhaseKingAcUnit, DownToLoopPrefersSmallestThresholdValue) {
  PkAcBench bench;
  bench.ac.invoke(bench.ctx, 0);
  bench.feedExchange1({0, 0, 0, 1});
  // D(0) = 2 > t and D(2) = 2 > t: the 2-downto-0 loop must end at 0.
  bench.feedExchange2({0, 0, 2, 2});
  ASSERT_TRUE(bench.ac.result().has_value());
  EXPECT_EQ(bench.ac.result()->value, 0);
  EXPECT_EQ(bench.ac.result()->confidence, Confidence::kAdopt);
}

TEST(PhaseKingAcUnit, DuplicateSendersCountOnce) {
  PkAcBench bench;
  bench.ac.invoke(bench.ctx, 1);
  // Byzantine process 3 votes five times for 1; only the first counts, so
  // C(1) = 2 < 3 and the sentinel wins.
  for (int i = 0; i < 5; ++i)
    bench.ac.onMessage(bench.ctx, 3, phaseking::ExchangeMessage(1, 1));
  bench.ac.onMessage(bench.ctx, 0, phaseking::ExchangeMessage(1, 1));
  bench.ac.onMessage(bench.ctx, 1, phaseking::ExchangeMessage(1, 0));
  bench.ac.onMessage(bench.ctx, 2, phaseking::ExchangeMessage(1, 0));
  bench.ac.onTick(bench.ctx, 1);
  const auto* relay = bench.ctx.lastBroadcast<phaseking::ExchangeMessage>();
  ASSERT_NE(relay, nullptr);
  EXPECT_EQ(relay->value, 2);
}

TEST(PhaseKingAcUnit, OutOfDomainBallotsDiscarded) {
  PkAcBench bench;
  bench.ac.invoke(bench.ctx, 1);
  bench.feedExchange1({1, 1, 7, -3});  // two garbage ballots
  const auto* relay = bench.ctx.lastBroadcast<phaseking::ExchangeMessage>();
  ASSERT_NE(relay, nullptr);
  EXPECT_EQ(relay->value, 2) << "garbage must not reach a quorum";
}

TEST(PhaseKingAcUnit, RejectsBadTolerance) {
  ManualObjectContext ctx(3);
  phaseking::PhaseKingAc ac(1);  // 3t = 3 >= n
  EXPECT_THROW(ac.invoke(ctx, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// King conciliator (Algorithm 4). Round 1's king is process 0.

TEST(KingConciliatorUnit, TakesTheKingsValue) {
  ManualObjectContext ctx(4, /*self=*/2);
  phaseking::KingConciliator conciliator(1);
  conciliator.invoke(ctx, Outcome{Confidence::kAdopt, 0});
  EXPECT_TRUE(ctx.broadcasts.empty()) << "only the king broadcasts";
  conciliator.onMessage(ctx, 0, phaseking::KingMessage(1));
  ASSERT_TRUE(conciliator.result().has_value());
  EXPECT_EQ(*conciliator.result(), 1);
}

TEST(KingConciliatorUnit, KingBroadcastsMinOneOfValue) {
  ManualObjectContext ctx(4, /*self=*/0);  // we are the king
  phaseking::KingConciliator conciliator(1);
  conciliator.invoke(ctx, Outcome{Confidence::kAdopt, 2});  // sentinel in
  const auto* sent = ctx.lastBroadcast<phaseking::KingMessage>();
  ASSERT_NE(sent, nullptr);
  EXPECT_EQ(sent->value, 1) << "MIN(1, 2) = 1";
}

TEST(KingConciliatorUnit, ImposterIgnoredAndSilentKingFallsBack) {
  ManualObjectContext ctx(4, /*self=*/2);
  phaseking::KingConciliator conciliator(1);
  conciliator.invoke(ctx, Outcome{Confidence::kAdopt, 0});
  conciliator.onMessage(ctx, 3, phaseking::KingMessage(1));  // not the king
  EXPECT_FALSE(conciliator.result().has_value());
  conciliator.onTick(ctx, 3);  // end of exchange, king stayed silent
  ASSERT_TRUE(conciliator.result().has_value());
  EXPECT_EQ(*conciliator.result(), 0) << "fallback to own value";
}

TEST(KingConciliatorUnit, HostileKingPayloadClamped) {
  ManualObjectContext ctx(4, /*self=*/2);
  phaseking::KingConciliator conciliator(1);
  conciliator.invoke(ctx, Outcome{Confidence::kAdopt, 0});
  conciliator.onMessage(ctx, 0, phaseking::KingMessage(999));
  ASSERT_TRUE(conciliator.result().has_value());
  EXPECT_EQ(*conciliator.result(), 1) << "clamped into {0,1}";
}

// ---------------------------------------------------------------------------
// Phase-Queen AC: n = 5, t = 1, commit needs count >= n - t = 4.

TEST(PhaseQueenAcUnit, ThresholdTable) {
  struct Case {
    std::vector<Value> ballots;
    Confidence confidence;
    Value value;
  };
  const std::vector<Case> cases = {
      {{1, 1, 1, 1, 1}, Confidence::kCommit, 1},
      {{1, 1, 1, 1, 0}, Confidence::kCommit, 1},   // 4 >= 4
      {{1, 1, 1, 0, 0}, Confidence::kAdopt, 1},    // plurality only
      {{0, 0, 1, 1, 7}, Confidence::kAdopt, 0},    // tie -> 0, junk dropped
      {{0, 0, 0, 0, 0}, Confidence::kCommit, 0},
  };
  for (const Case& c : cases) {
    ManualObjectContext ctx(5);
    phaseking::PhaseQueenAc ac(1);
    ac.invoke(ctx, c.ballots[0]);
    for (ProcessId from = 0; from < 5; ++from)
      ac.onMessage(ctx, from, phaseking::ExchangeMessage(1, c.ballots[from]));
    ac.onTick(ctx, 1);
    ASSERT_TRUE(ac.result().has_value());
    EXPECT_EQ(ac.result()->confidence, c.confidence);
    EXPECT_EQ(ac.result()->value, c.value);
  }
}

TEST(PhaseQueenAcUnit, RejectsKingLevelTolerance) {
  ManualObjectContext ctx(8);
  phaseking::PhaseQueenAc ac(2);  // 4t = 8 >= n
  EXPECT_THROW(ac.invoke(ctx, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Ben-Or VAC (Algorithm 5): n = 5, t = 2, quorum 3.

struct BenOrBench {
  BenOrBench() : ctx(5), vac(2) { vac.invoke(ctx, 1); }
  ManualObjectContext ctx;
  benor::BenOrVac vac;
};

TEST(BenOrVacUnit, RatifiesOnMajorityOfAllN) {
  BenOrBench bench;
  for (ProcessId from = 0; from < 3; ++from)
    bench.vac.onMessage(bench.ctx, from, benor::ProposalMessage(1));
  const auto* report = bench.ctx.lastBroadcast<benor::ReportMessage>();
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->ratify) << "3 of 5 > n/2";
  EXPECT_EQ(report->value, 1);
}

TEST(BenOrVacUnit, AbstainsWithoutMajority) {
  BenOrBench bench;
  bench.vac.onMessage(bench.ctx, 0, benor::ProposalMessage(1));
  bench.vac.onMessage(bench.ctx, 1, benor::ProposalMessage(0));
  bench.vac.onMessage(bench.ctx, 2, benor::ProposalMessage(0));
  const auto* report = bench.ctx.lastBroadcast<benor::ReportMessage>();
  ASSERT_NE(report, nullptr);
  EXPECT_FALSE(report->ratify) << "2 of 5 is not > n/2";
}

TEST(BenOrVacUnit, OutcomeThresholds) {
  // commit: > t = 2 ratifies; adopt: >= 1; vacillate: none.
  struct Case {
    int ratifies;
    Confidence confidence;
  };
  for (const Case c : {Case{3, Confidence::kCommit},
                       Case{1, Confidence::kAdopt},
                       Case{0, Confidence::kVacillate}}) {
    BenOrBench bench;
    for (ProcessId from = 0; from < 3; ++from)
      bench.vac.onMessage(bench.ctx, from, benor::ProposalMessage(1));
    for (ProcessId from = 0; from < 3; ++from) {
      const bool ratify = from < c.ratifies;
      bench.vac.onMessage(
          bench.ctx, from,
          benor::ReportMessage(ratify, ratify ? 1 : kNoValue));
    }
    ASSERT_TRUE(bench.vac.result().has_value());
    EXPECT_EQ(bench.vac.result()->confidence, c.confidence);
  }
}

TEST(BenOrVacUnit, EarlyReportsBufferedUntilQuorum) {
  // Phase-2 reports arriving before our own report must tally but not
  // complete the object until phase 1 finishes.
  BenOrBench bench;
  for (ProcessId from = 0; from < 3; ++from)
    bench.vac.onMessage(bench.ctx, from, benor::ReportMessage(true, 1));
  EXPECT_FALSE(bench.vac.result().has_value());
  for (ProcessId from = 0; from < 3; ++from)
    bench.vac.onMessage(bench.ctx, from, benor::ProposalMessage(1));
  ASSERT_TRUE(bench.vac.result().has_value());
  EXPECT_EQ(bench.vac.result()->confidence, Confidence::kCommit);
}

// ---------------------------------------------------------------------------
// Byzantine Ben-Or VAC: n = 11, t = 2.

struct ByzBenOrBench {
  ByzBenOrBench() : ctx(11), vac(2) { vac.invoke(ctx, 1); }
  void finishPhaseOne(Value value, int count) {
    for (ProcessId from = 0; from < 9; ++from) {
      bench(from, from < static_cast<ProcessId>(count) ? value
                                                       : 1 - value);
    }
  }
  void bench(ProcessId from, Value v) {
    vac.onMessage(ctx, from, benor::ProposalMessage(v));
  }
  ManualObjectContext ctx;
  benor::ByzantineBenOrVac vac;
};

TEST(ByzantineBenOrVacUnit, SupermajorityThresholdIsNPlusTOverTwo) {
  // n + t = 13: ratify needs count > 6.5, i.e. >= 7 of the 9 received.
  {
    ByzBenOrBench bench;
    bench.finishPhaseOne(1, 7);
    const auto* report = bench.ctx.lastBroadcast<benor::ReportMessage>();
    ASSERT_NE(report, nullptr);
    EXPECT_TRUE(report->ratify);
  }
  {
    ByzBenOrBench bench;
    bench.finishPhaseOne(1, 6);
    const auto* report = bench.ctx.lastBroadcast<benor::ReportMessage>();
    ASSERT_NE(report, nullptr);
    EXPECT_FALSE(report->ratify);
  }
}

TEST(ByzantineBenOrVacUnit, ForgedRatifiesBelowThresholdsAreHarmless) {
  ByzBenOrBench bench;
  bench.finishPhaseOne(1, 9);
  // t = 2 forged ratifies of 0 (> t needed to adopt): must not flip.
  bench.vac.onMessage(bench.ctx, 9, benor::ReportMessage(true, 0));
  bench.vac.onMessage(bench.ctx, 10, benor::ReportMessage(true, 0));
  // 7 honest ratifies of 1 (> 3t = 6 commits).
  for (ProcessId from = 0; from < 7; ++from)
    bench.vac.onMessage(bench.ctx, from, benor::ReportMessage(true, 1));
  ASSERT_TRUE(bench.vac.result().has_value());
  EXPECT_EQ(*bench.vac.result(), (Outcome{Confidence::kCommit, 1}));
}

TEST(ByzantineBenOrVacUnit, CommitNeedsMoreThanThreeT) {
  ByzBenOrBench bench;
  bench.finishPhaseOne(1, 9);
  // Exactly 3t = 6 ratifies: adopt, not commit; plus 3 abstains to finish.
  for (ProcessId from = 0; from < 6; ++from)
    bench.vac.onMessage(bench.ctx, from, benor::ReportMessage(true, 1));
  for (ProcessId from = 6; from < 9; ++from)
    bench.vac.onMessage(bench.ctx, from,
                        benor::ReportMessage(false, kNoValue));
  ASSERT_TRUE(bench.vac.result().has_value());
  EXPECT_EQ(bench.vac.result()->confidence, Confidence::kAdopt);
}

TEST(ByzantineBenOrVacUnit, RejectsNonBinaryAndBadTolerance) {
  ManualObjectContext ctx(11);
  benor::ByzantineBenOrVac vac(2);
  EXPECT_THROW(vac.invoke(ctx, 5), std::invalid_argument);
  ManualObjectContext small(10);
  benor::ByzantineBenOrVac tooBig(2);  // 5t = 10 >= n
  EXPECT_THROW(tooBig.invoke(small, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Reconciliators

TEST(ReconciliatorUnit, CommonCoinIsCommonAndRoundDependent) {
  benor::CommonCoinReconciliator a(42, 3);
  benor::CommonCoinReconciliator b(42, 3);
  ManualObjectContext ctx(4);
  a.invoke(ctx, Outcome{});
  b.invoke(ctx, Outcome{});
  EXPECT_EQ(a.result(), b.result());

  bool differs = false;
  for (Round m = 1; m <= 64 && !differs; ++m) {
    benor::CommonCoinReconciliator c(42, m);
    c.invoke(ctx, Outcome{});
    differs = c.result() != a.result();
  }
  EXPECT_TRUE(differs) << "coin constant across rounds";
}

TEST(ReconciliatorUnit, BiasedCoinExtremes) {
  ManualObjectContext ctx(4);
  for (int i = 0; i < 20; ++i) {
    benor::BiasedCoinReconciliator zero(0.0);
    zero.invoke(ctx, Outcome{});
    EXPECT_EQ(*zero.result(), 0);
    benor::BiasedCoinReconciliator one(1.0);
    one.invoke(ctx, Outcome{});
    EXPECT_EQ(*one.result(), 1);
  }
}

TEST(ReconciliatorUnit, KeepValueReturnsDetectedValue) {
  ManualObjectContext ctx(4);
  benor::KeepValueReconciliator keep;
  keep.invoke(ctx, Outcome{Confidence::kVacillate, 37});
  EXPECT_EQ(*keep.result(), 37);
}

TEST(ReconciliatorUnit, LotteryPicksSharedMinimumTicket) {
  // Two processes with the same (seed, round) must agree on the winner
  // when they see the same tickets.
  const auto runOne = [](ProcessId self) {
    ManualObjectContext ctx(4, self);
    benor::LotteryReconciliator lottery(1, 99, 2);
    lottery.invoke(ctx, Outcome{Confidence::kVacillate, 10 + self});
    for (ProcessId from = 0; from < 3; ++from) {
      lottery.onMessage(ctx, from,
                        benor::LotteryTicketMessage(100 + from));
    }
    EXPECT_TRUE(lottery.result().has_value());
    return *lottery.result();
  };
  EXPECT_EQ(runOne(0), runOne(3));
}

TEST(ReconciliatorUnit, LotteryWaitsForQuorum) {
  ManualObjectContext ctx(4);
  benor::LotteryReconciliator lottery(1, 99, 1);  // quorum 3
  lottery.invoke(ctx, Outcome{Confidence::kVacillate, 0});
  lottery.onMessage(ctx, 1, benor::LotteryTicketMessage(5));
  lottery.onMessage(ctx, 1, benor::LotteryTicketMessage(5));  // duplicate
  EXPECT_FALSE(lottery.result().has_value());
  lottery.onMessage(ctx, 2, benor::LotteryTicketMessage(6));
  lottery.onMessage(ctx, 3, benor::LotteryTicketMessage(7));
  EXPECT_TRUE(lottery.result().has_value());
}

// ---------------------------------------------------------------------------
// Decentralized-Raft VAC mirrors Ben-Or's thresholds

TEST(DecentralizedVacUnit, MirrorsBenOrOutcomes) {
  ManualObjectContext ctx(5);
  raft::DecentralizedRaftVac vac(2);
  vac.invoke(ctx, 1);
  for (ProcessId from = 0; from < 3; ++from)
    vac.onMessage(ctx, from, raft::DecProposeMessage(1));
  const auto* commitMsg = ctx.lastBroadcast<raft::DecCommitMessage>();
  ASSERT_NE(commitMsg, nullptr);
  EXPECT_TRUE(commitMsg->commit);
  for (ProcessId from = 0; from < 3; ++from)
    vac.onMessage(ctx, from, raft::DecCommitMessage(true, 1));
  ASSERT_TRUE(vac.result().has_value());
  EXPECT_EQ(*vac.result(), (Outcome{Confidence::kCommit, 1}));
}

}  // namespace
}  // namespace ooc

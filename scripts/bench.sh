#!/usr/bin/env bash
# Bench driver: builds and runs every experiment binary, collecting one
# BENCH_<name>.json per bench (schema ooc.bench.v1; bench_template_overhead
# emits google-benchmark's schema since wall-clock timings have no
# reproducible form) plus an aggregate trajectory file BENCH_trajectory.json
# that maps each bench to its verdict and run id. Exits nonzero if any bench
# reported a correctness violation.
#
#   scripts/bench.sh                    # full trial counts, out/ directory
#   scripts/bench.sh --quick            # reduced trials (CI smoke mode)
#   scripts/bench.sh --out results/     # choose the output directory
#   scripts/bench.sh --no-json          # console tables only
#   scripts/bench.sh --jobs 4           # run up to 4 bench binaries at once
#   scripts/bench.sh --threads 8        # per-bench trial-sweep workers
#
# --jobs runs whole binaries concurrently (each to its own log, replayed in
# canonical order afterwards); --threads fans each binary's trials across
# the in-process experiment scheduler. Results are byte-identical either
# way — only the quarantined `sweep` telemetry block moves.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
OUT="bench-results"
JSON=1
JOBS=1
THREADS=""
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK="--quick" ;;
    --out) OUT="$2"; shift ;;
    --no-json) JSON=0 ;;
    --jobs) JOBS="$2"; shift ;;
    --threads) THREADS="$2"; shift ;;
    -h|--help)
      sed -n '2,19p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) echo "bench.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done
case "$JOBS" in (''|*[!0-9]*|0) echo "bench.sh: --jobs wants a positive integer" >&2; exit 2 ;; esac

BENCHES="
bench_benor_rounds
bench_benor_faults
bench_phaseking
bench_raft
bench_raft_decomposition
bench_vac_from_ac
bench_ac_insufficiency
bench_reconciliators
bench_shmem
bench_decentralized
bench_byzantine_benor
bench_fd
bench_royal_family
bench_replicated_log
bench_paxos
bench_recovery
bench_svc
bench_template_overhead
bench_simcore
"

cmake -B build -S . >/dev/null
# shellcheck disable=SC2086  # word-splitting the target list is intended
cmake --build build -j --target $BENCHES >/dev/null

mkdir -p "$OUT"

# Phase 1: run the binaries, up to $JOBS at a time. Each bench writes its
# console output to a log and its exit code to a status file so phase 2 can
# replay everything in canonical order regardless of completion order.
inflight=0
for bench in $BENCHES; do
  name="${bench#bench_}"
  json_flag=""
  json_path="$OUT/BENCH_${name}.json"
  [ "$JSON" = 1 ] && json_flag="--json $json_path"
  threads_flag=""
  # bench_template_overhead is the google-benchmark harness; it has no
  # trial sweep and no --threads flag.
  [ -n "$THREADS" ] && [ "$bench" != "bench_template_overhead" ] && \
    threads_flag="--threads $THREADS"
  # shellcheck disable=SC2086  # flags are intentionally word-split
  (
    set +e
    "build/bench/$bench" $QUICK $threads_flag $json_flag \
      > "$OUT/.${bench}.log" 2>&1
    echo $? > "$OUT/.${bench}.status"
  ) &
  inflight=$((inflight + 1))
  if [ "$inflight" -ge "$JOBS" ]; then
    wait -n 2>/dev/null || wait
    inflight=$((inflight - 1))
  fi
done
wait

# Phase 2: replay logs in canonical order, collect verdicts, and build the
# aggregate trajectory. Identical output to a sequential run.
failures=0
trajectory="$OUT/BENCH_trajectory.json"
[ "$JSON" = 1 ] && printf '{"schema":"ooc.bench-trajectory.v1","benches":[' > "$trajectory"
first=1
for bench in $BENCHES; do
  name="${bench#bench_}"
  echo "## $bench $QUICK"
  cat "$OUT/.${bench}.log"
  status=$(cat "$OUT/.${bench}.status")
  rm -f "$OUT/.${bench}.log" "$OUT/.${bench}.status"
  if [ "$status" -ne 0 ]; then
    failures=$((failures + 1))
    echo "!! $bench exited $status" >&2
  fi
  if [ "$JSON" = 1 ]; then
    [ "$first" = 1 ] || printf ',' >> "$trajectory"
    first=0
    json_path="$OUT/BENCH_${name}.json"
    run_id=$(sed -n 's/.*"run_id":"\([0-9a-f]*\)".*/\1/p' "$json_path" | head -1)
    printf '{"bench":"%s","file":"BENCH_%s.json","run_id":"%s","exit":%d}' \
      "$name" "$name" "${run_id:-}" "$status" >> "$trajectory"
  fi
done

if [ "$JSON" = 1 ]; then
  printf '],"failures":%d}\n' "$failures" >> "$trajectory"
  echo "wrote $(ls "$OUT" | wc -l) files to $OUT/ (trajectory: $trajectory)"
fi

# E20: the composition matrix. Every registered detector × driver pairing
# either runs clean under runComposition() or is rejected with a capability
# diagnostic; a safety violation in any valid cell fails the script, same
# as a bench verdict. Writes ooc.matrix.v1 next to the bench JSON.
cmake --build build -j --target compose >/dev/null
echo "## compose (E20 matrix) $QUICK"
matrix_flag=""
[ "$JSON" = 1 ] && matrix_flag="--json $OUT/BENCH_matrix.json"
threads_flag=""
[ -n "$THREADS" ] && threads_flag="--threads $THREADS"
status=0
# shellcheck disable=SC2086  # flags are intentionally word-split
build/tools/compose $QUICK $threads_flag $matrix_flag || status=$?
if [ "$status" -ne 0 ]; then
  failures=$((failures + 1))
  echo "!! compose matrix exited $status" >&2
fi

# E22: the oracle-quality matrix. Every oracle-consuming driver × registered
# oracle × quality grid point either runs clean (safety + FD axioms) or is
# rejected with the registry's oracle diagnostic; rejected cells land in the
# JSON like E20's. Writes ooc.fd-matrix.v1 next to the bench JSON.
echo "## compose --fd-matrix (E22 oracle matrix) $QUICK"
fd_matrix_flag=""
[ "$JSON" = 1 ] && fd_matrix_flag="--json $OUT/BENCH_fd_matrix.json"
status=0
# shellcheck disable=SC2086  # flags are intentionally word-split
build/tools/compose --fd-matrix $QUICK $threads_flag $fd_matrix_flag || status=$?
if [ "$status" -ne 0 ]; then
  failures=$((failures + 1))
  echo "!! compose fd-matrix exited $status" >&2
fi

# E24: the roundless scheduling-policy matrix. Every skew-relevant engine
# pairing runs under every round scheduling policy (lockstep, event-driven,
# ooo-driver — DESIGN.md §14); registry-rejected (engine, policy) cells
# carry the capability diagnostic, valid cells must decide with agreement,
# validity, the contract audits, and the scheduler-coherence counters
# intact. Writes ooc.roundless.v1 next to the bench JSON.
echo "## compose --roundless-matrix (E24 scheduling matrix) $QUICK"
roundless_flag=""
[ "$JSON" = 1 ] && roundless_flag="--json $OUT/BENCH_roundless.json"
status=0
# shellcheck disable=SC2086  # flags are intentionally word-split
build/tools/compose --roundless-matrix $QUICK $threads_flag $roundless_flag || status=$?
if [ "$status" -ne 0 ]; then
  failures=$((failures + 1))
  echo "!! compose roundless-matrix exited $status" >&2
fi

# Committed trajectory files: append this run's headline metric to the
# repo-root BENCH_<name>.json so the numbers are tracked commit over
# commit, and warn on a >10% regression against the previous entry of the
# same mode (see scripts/trajectory.py):
#   simcore   events/sec per scenario (hot-path throughput), plus the E23
#             aggregate events/sec and scaling efficiency per thread count
#   fd        mean rounds-to-decide per oracle-consuming pairing
#   recovery  mean ticks-to-decide under the crash/restart mixes
#   svc       committed commands per kilotick per service engine (E21)
#   roundless mean rounds-to-decide per valid E24 (engine, policy) cell
if [ "$JSON" = 1 ]; then
  COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
  for mode in simcore fd recovery svc roundless; do
    run_json="$OUT/BENCH_${mode}.json"
    [ -f "$run_json" ] || continue
    python3 scripts/trajectory.py \
      "$run_json" "BENCH_${mode}.json" "$COMMIT" "${QUICK:+quick}" "$mode"
  done
fi

if [ "$failures" -ne 0 ]; then
  echo "FAIL: $failures bench(es) reported violations" >&2
  exit 1
fi
echo "OK: all benches clean"

#!/usr/bin/env bash
# Documentation checks, run by the `docs` CI job:
#
#   1. Every relative markdown link in the repo's *.md files points at a
#      file (or directory) that exists. External links (http/https/mailto)
#      and pure in-page anchors are skipped; a `path#anchor` link is
#      checked for the path part only.
#   2. Every JSON field documented in EXPERIMENTS.md's "Machine-readable
#      output" section exists in the code that emits it (src/ tools/
#      bench/ scripts/). This keeps the schema reference honest: renaming
#      a field in the writer without updating the docs fails CI, and so
#      does documenting a field nothing emits.
#   3. The reverse direction for schema TAGS: every "ooc.<name>.vN" schema
#      identifier emitted anywhere in the source is documented in
#      EXPERIMENTS.md, so a new writer cannot ship an undocumented schema.
#
#   scripts/docs_check.sh            # exits nonzero on any failure
set -euo pipefail
cd "$(dirname "$0")/.."

failures=0

# --- 1. relative markdown links -------------------------------------------
# Extract [text](target) pairs; keep the target. Multiple links per line
# are handled by grep -o. Image links ![...](...) match the same pattern.
docs=$(find . -maxdepth 2 -name '*.md' -not -path './build/*' \
       -not -path './bench-results/*' | sort)
for doc in $docs; do
  dir=$(dirname "$doc")
  links=$(grep -o '\[[^][]*\]([^()]*)' "$doc" \
          | sed 's/^\[[^][]*\](\([^()]*\))$/\1/') || true
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    target="${link%%#*}"            # strip an in-page anchor, if any
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ]; then
      echo "docs_check: $doc: broken link -> $link" >&2
      failures=$((failures + 1))
    fi
  done
done

# --- 2. schema fields documented vs emitted -------------------------------
# Pull every `"field":` token out of the code fences in the
# "Machine-readable output" section of EXPERIMENTS.md and require each to
# appear as a quoted string somewhere in the emitting code. The section
# ends at the next top-level `## ` heading.
schema_doc=EXPERIMENTS.md
fields=$(awk '/^## Machine-readable output/{on=1; next}
              /^## /{on=0} on' "$schema_doc" \
         | grep -o '"[a-z_][a-z0-9_.-]*":' | tr -d '":' | sort -u)
if [ -z "$fields" ]; then
  echo "docs_check: no schema fields found in $schema_doc (section moved?)" >&2
  failures=$((failures + 1))
fi
for field in $fields; do
  if ! grep -rqF "\"$field\"" src tools bench scripts; then
    echo "docs_check: $schema_doc documents \"$field\" but nothing emits it" >&2
    failures=$((failures + 1))
  fi
done

# --- 3. schema tags emitted vs documented ---------------------------------
# Collect every literal ooc.<name>.vN schema tag the code emits and require
# EXPERIMENTS.md to mention it. Tags assembled from variables (e.g.
# trajectory.py's f-string "ooc.{mode}-trajectory.v1") are expanded by the
# emitting script's own mode whitelist, so only fully literal tags are
# collected here; the documented tag list must still cover the expansions,
# which appear literally in EXPERIMENTS.md.
tags=$(grep -rhoE '"ooc\.[a-z0-9_.-]+\.v[0-9]+"' src tools bench scripts \
       | tr -d '"' | sort -u)
for tag in $tags; do
  if ! grep -qF "$tag" "$schema_doc"; then
    echo "docs_check: source emits schema '$tag' but $schema_doc does not document it" >&2
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "FAIL: $failures docs problem(s)" >&2
  exit 1
fi
echo "OK: links resolve; documented schema fields exist in source;" \
     "emitted schema tags are documented"

#!/usr/bin/env bash
# Model-checking sweep: builds the `check` CLI and explores all consensus
# families with every strategy (random walks, delay-bounded reordering,
# crash-schedule enumeration, and — for raft — crash-restart schedules
# against durable storage). Exits nonzero if any invariant violation is
# found; counterexamples (config + trace) land in ./counterexamples/.
#
#   scripts/check.sh               # default 10k-seed sweep per family
#   SEEDS=100000 scripts/check.sh  # bigger sweep
#   EXTRA="--family benor" scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-10000}"
EXTRA="${EXTRA:-}"

cmake -B build -S . >/dev/null
cmake --build build --target check -j >/dev/null

# shellcheck disable=SC2086  # EXTRA is intentionally word-split
exec build/tools/check --seeds "$SEEDS" --trace-dir counterexamples $EXTRA

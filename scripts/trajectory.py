#!/usr/bin/env python3
"""Append one bench run to a committed trajectory file.

The trajectory files at the repo root (BENCH_simcore.json, BENCH_fd.json,
BENCH_recovery.json) track one headline metric per bench commit over
commit; bench.sh appends an entry after each run and prints a WARNING when
the metric regressed >10% against the previous entry of the same mode
(quick and full runs are compared separately — trial counts differ).

Usage: trajectory.py RUN_JSON TRAJ_JSON COMMIT QUICK MODE

MODE picks the metric(s) and their polarity:
  simcore   events/sec gauges per scenario        (higher is better)
            plus E23 aggregate_events_per_sec per thread count (higher is
            better) and scaling_efficiency per thread count (recorded,
            not regression-checked: it is a ratio of two wall-clock
            passes, so its noise floor is the product of both)
  fd        mean rounds_to_decide per pairing     (lower is better)
  recovery  mean ticks_to_decide per label set    (lower is better)
  svc       committed cmds/ktick per engine (E21) (higher is better)
  roundless mean rounds per valid E24 cell        (lower is better)
"""
import json
import sys


def label_key(labels):
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def gauge_series(metrics, name, label):
    return {
        g["labels"][label]: round(g["value"], 3 if name.endswith("efficiency")
                                  else 1)
        for g in metrics.get("gauges", [])
        if g.get("name") == name
    }


def extract(run, mode):
    """Return [(field, values, regression_checked), ...] for MODE."""
    metrics = run.get("metrics", {})
    if mode == "simcore":
        return [
            ("events_per_sec",
             gauge_series(metrics, "simcore_events_per_sec", "scenario"),
             True),
            ("aggregate_events_per_sec",
             gauge_series(metrics, "simcore_aggregate_events_per_sec",
                          "threads"),
             True),
            ("scaling_efficiency",
             gauge_series(metrics, "simcore_scaling_efficiency", "threads"),
             False),
        ]
    if mode == "svc":
        return [("committed_cmds_per_ktick",
                 gauge_series(metrics, "svc_mean_commands_per_ktick",
                              "engine"),
                 True)]
    if mode == "roundless":
        # ooc.roundless.v1 is a matrix document, not an ooc.bench.v1 run:
        # the headline series is mean rounds-to-decide per valid decided
        # (engine, policy) cell. Rejected cells have no number to track.
        return [("mean_rounds", {
            f"{c['detector']}+{c['driver']}@{c['policy']}":
                round(c["mean_rounds"], 2)
            for c in run.get("cells", [])
            if c.get("valid") and c.get("decided")
        }, True)]
    name = "rounds_to_decide" if mode == "fd" else "ticks_to_decide"
    return [(f"mean_{name}", {
        label_key(h.get("labels", {})): round(h["sum"] / h["count"], 2)
        for h in metrics.get("histograms", [])
        if h.get("name") == name and h.get("count")
    }, True)]


def main():
    run_path, traj_path, commit, quick, mode = (sys.argv + [""] * 6)[1:6]
    if mode not in ("simcore", "fd", "recovery", "svc", "roundless"):
        sys.exit(f"trajectory.py: unknown mode '{mode}'")
    higher_is_better = mode in ("simcore", "svc")

    run = json.load(open(run_path))
    fields = extract(run, mode)
    entry = {
        "run_id": run.get("run_id", ""),
        "commit": commit,
        "quick": bool(quick),
    }
    for field, values, _ in fields:
        if values:
            entry[field] = values
    try:
        trajectory = json.load(open(traj_path))
    except (OSError, ValueError):
        trajectory = {"schema": f"ooc.{mode}-trajectory.v1", "entries": []}

    previous = next((e for e in reversed(trajectory["entries"])
                     if e.get("quick") == entry["quick"]), None)
    regressed = []
    if previous:
        for field, values, checked in fields:
            if not checked:
                continue
            for key, now in values.items():
                before = previous.get(field, {}).get(key)
                if not before:
                    continue
                if higher_is_better and now < 0.9 * before:
                    regressed.append(
                        f"{field} {key}: {before:,.0f} -> {now:,.0f} "
                        f"({100 * (1 - now / before):.1f}% slower)")
                elif not higher_is_better and now > 1.1 * before:
                    regressed.append(
                        f"{field} {key}: {before:,.2f} -> {now:,.2f} "
                        f"({100 * (now / before - 1):.1f}% more)")
    trajectory["entries"].append(entry)
    with open(traj_path, "w") as out:
        json.dump(trajectory, out, indent=1)
        out.write("\n")
    print(f"{mode} trajectory: appended run {entry['run_id'][:12]} "
          f"(commit {commit}) to {traj_path}")
    for line in regressed:
        print(f"WARNING: {mode} regression — {line}", file=sys.stderr)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Append one bench run to a committed trajectory file.

The trajectory files at the repo root (BENCH_simcore.json, BENCH_fd.json,
BENCH_recovery.json) track one headline metric per bench commit over
commit; bench.sh appends an entry after each run and prints a WARNING when
the metric regressed >10% against the previous entry of the same mode
(quick and full runs are compared separately — trial counts differ).

Usage: trajectory.py RUN_JSON TRAJ_JSON COMMIT QUICK MODE

MODE picks the metric and its polarity:
  simcore   events/sec gauges per scenario        (higher is better)
  fd        mean rounds_to_decide per pairing     (lower is better)
  recovery  mean ticks_to_decide per label set    (lower is better)
  svc       committed cmds/ktick per engine (E21) (higher is better)
"""
import json
import sys


def label_key(labels):
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def extract(run, mode):
    metrics = run.get("metrics", {})
    if mode == "simcore":
        return "events_per_sec", {
            g["labels"]["scenario"]: round(g["value"], 1)
            for g in metrics.get("gauges", [])
            if g.get("name") == "simcore_events_per_sec"
        }
    if mode == "svc":
        return "committed_cmds_per_ktick", {
            g["labels"]["engine"]: round(g["value"], 1)
            for g in metrics.get("gauges", [])
            if g.get("name") == "svc_mean_commands_per_ktick"
        }
    name = "rounds_to_decide" if mode == "fd" else "ticks_to_decide"
    return f"mean_{name}", {
        label_key(h.get("labels", {})): round(h["sum"] / h["count"], 2)
        for h in metrics.get("histograms", [])
        if h.get("name") == name and h.get("count")
    }


def main():
    run_path, traj_path, commit, quick, mode = (sys.argv + [""] * 6)[1:6]
    if mode not in ("simcore", "fd", "recovery", "svc"):
        sys.exit(f"trajectory.py: unknown mode '{mode}'")
    higher_is_better = mode in ("simcore", "svc")

    run = json.load(open(run_path))
    field, values = extract(run, mode)
    entry = {
        "run_id": run.get("run_id", ""),
        "commit": commit,
        "quick": bool(quick),
        field: values,
    }
    try:
        trajectory = json.load(open(traj_path))
    except (OSError, ValueError):
        trajectory = {"schema": f"ooc.{mode}-trajectory.v1", "entries": []}

    previous = next((e for e in reversed(trajectory["entries"])
                     if e.get("quick") == entry["quick"]), None)
    regressed = []
    if previous:
        for key, now in values.items():
            before = previous.get(field, {}).get(key)
            if not before:
                continue
            if higher_is_better and now < 0.9 * before:
                regressed.append(
                    f"{key}: {before:,.0f} -> {now:,.0f} "
                    f"({100 * (1 - now / before):.1f}% slower)")
            elif not higher_is_better and now > 1.1 * before:
                regressed.append(
                    f"{key}: {before:,.2f} -> {now:,.2f} "
                    f"({100 * (now / before - 1):.1f}% more)")
    trajectory["entries"].append(entry)
    with open(traj_path, "w") as out:
        json.dump(trajectory, out, indent=1)
        out.write("\n")
    print(f"{mode} trajectory: appended run {entry['run_id'][:12]} "
          f"(commit {commit}) to {traj_path}")
    for line in regressed:
        print(f"WARNING: {mode} {field} regression — {line}",
              file=sys.stderr)


if __name__ == "__main__":
    main()

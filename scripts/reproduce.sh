#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite and regenerates every
# experiment table (EXPERIMENTS.md E1-E18). All runs are seeded and
# deterministic: outputs are identical across invocations on one platform.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo "=============================================================="
    echo "### $(basename "$b")"
    echo "=============================================================="
    "$b"
    echo "exit: $?"
    echo
  done
} 2>&1 | tee bench_output.txt

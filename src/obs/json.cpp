#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ooc::obs {

std::string jsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string formatJsonNumber(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  if (v == 0.0) return "0";  // normalizes -0.0 too
  const double rounded = std::nearbyint(v);
  if (rounded == v && std::fabs(v) <= 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonWriter::prefix() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;
  }
  if (!firstInScope_.back()) out_ += ',';
  firstInScope_.back() = false;
}

JsonWriter& JsonWriter::beginObject() {
  prefix();
  out_ += '{';
  firstInScope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  firstInScope_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  prefix();
  out_ += '[';
  firstInScope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  firstInScope_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!firstInScope_.back()) out_ += ',';
  firstInScope_.back() = false;
  out_ += '"';
  out_ += jsonEscape(k);
  out_ += "\":";
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prefix();
  out_ += '"';
  out_ += jsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prefix();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prefix();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prefix();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  prefix();
  out_ += formatJsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  prefix();
  out_ += json;
  return *this;
}

}  // namespace ooc::obs

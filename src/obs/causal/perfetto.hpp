// Chrome trace_event / Perfetto JSON export of a causal trace.
//
// The emitted document loads in ui.perfetto.dev or chrome://tracing: one
// track per process plus a scheduler track, every event as a small slice,
// flow arrows from each send to its delivery (the cause edge), round spans
// derived from the detector/driver annotations, crash→restart "down"
// intervals, and oracle-suspicion intervals as async spans per
// (viewer, target) pair. Timestamps are synthetic — tick * 1000 plus the
// event's rank within its tick — so the axis reads as simulated ticks with
// same-tick events spread in execution order. Byte-deterministic like
// every artifact in this repo.
#pragma once

#include <string>

#include "obs/causal/causal.hpp"

namespace ooc::causal {

std::string toPerfettoJson(const CausalTrace& trace, const TraceMeta& meta);

}  // namespace ooc::causal

// Causal event DAG: the happens-before structure of one simulated run.
//
// The flat schedule trace (sim/trace.hpp) records *what* executed in *what
// order*; this layer records *why*. Every observed event becomes a node
// with two incoming edges — the cause edge (the event whose handler
// scheduled it: a delivery points at the send, a timer fire at the arming
// event, a decision at the handler that called decide()) and the
// program-order edge (the previous event on the same lane) — plus a vector
// clock over n+1 lanes: one per process and a scheduler pseudo-lane for
// control actions, tick barriers and cancelled timers, none of which run
// process code. Protocol-level moments the schedule cannot see (detector
// outcomes, driver returns, oracle queries) attach as annotations to the
// node during whose handler they fired.
//
// Everything here is observation-only and a pure function of the schedule:
// recording the DAG perturbs nothing, so goldens stay byte-identical with
// the recorder attached or absent, and two recordings of one configuration
// are structurally identical. The `ooc.ctrace.v1` JSON artifact (see
// EXPERIMENTS.md) is the serialized form; audit() checks the structural
// invariants every exported DAG must satisfy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compose/hooks.hpp"
#include "core/confidence.hpp"
#include "sim/trace.hpp"
#include "util/types.hpp"

namespace ooc::causal {

/// One node of the DAG: the observed TraceEvent plus its incoming edges
/// and vector clock. Node indices are observed-stream positions, so every
/// edge points strictly backward (acyclicity by construction — audited
/// anyway).
struct CausalNode {
  TraceEvent event;
  /// Cause edge: index of the event whose handler scheduled this one;
  /// kNoCausalParent for roots (initial starts, pre-run injections).
  std::uint64_t cause = kNoCausalParent;
  /// Program-order edge: previous node on the same lane, or none.
  std::uint64_t prev = kNoCausalParent;
  /// Process id, or CausalTrace::schedulerLane() for events that run no
  /// process code (kControl, kBarrier, cancelled timers).
  std::uint32_t lane = 0;
  /// Vector clock over laneCount() components: componentwise max of the
  /// parents' clocks, then +1 at the own lane.
  std::vector<std::uint64_t> clock;
};

/// Protocol-level annotation, attached to the node during whose handler
/// dispatch it fired.
struct Annotation {
  enum class Kind : std::uint8_t { kDetector, kDriver, kOracleQuery };

  Kind kind = Kind::kDetector;
  std::uint64_t node = 0;  ///< index of the annotated CausalNode
  ProcessId process = 0;   ///< detector/driver owner, or oracle viewer
  ProcessId subject = 0;   ///< oracle target (kOracleQuery only)
  Round round = 0;         ///< detector/driver round (0 for oracle queries)
  Value value = kNoValue;  ///< detector/driver value; 1|0 = suspected flag
  Confidence confidence = Confidence::kVacillate;  ///< kDetector only
  Tick at = 0;
};

const char* toString(Annotation::Kind kind) noexcept;

/// Lane-name of a TraceEvent kind in artifacts ("start", "deliver", ...).
const char* kindName(TraceEvent::Kind kind) noexcept;

struct CausalTrace {
  std::size_t processCount = 0;
  std::vector<CausalNode> nodes;
  std::vector<Annotation> annotations;

  std::size_t laneCount() const noexcept { return processCount + 1; }
  std::uint32_t schedulerLane() const noexcept {
    return static_cast<std::uint32_t>(processCount);
  }
};

/// ScheduleObserver + TelemetrySink that assembles the DAG from the
/// simulator's causal channel. Attach as both hooks of one run (observer
/// for the event stream, telemetry for the annotations); the recorder
/// assumes the stamped stream the simulator emits — one onCausal right
/// after each onEvent — and throws std::logic_error if the streams
/// desynchronize.
class CausalRecorder final : public ScheduleObserver,
                             public compose::TelemetrySink {
 public:
  explicit CausalRecorder(std::size_t processCount);

  // ScheduleObserver
  void onEvent(const TraceEvent& event) override;
  bool wantsCausality() const noexcept override { return true; }
  void onCausal(const CausalStamp& stamp) override;

  // compose::TelemetrySink
  void onDetectorOutcome(ProcessId process, Round round,
                         const Outcome& outcome, Tick at) override;
  void onDriverValue(ProcessId process, Round round, Value value,
                     Tick at) override;
  void onOracleQuery(ProcessId viewer, ProcessId target, bool suspected,
                     Tick at) override;

  CausalTrace& trace() noexcept { return trace_; }
  const CausalTrace& trace() const noexcept { return trace_; }

 private:
  void annotate(Annotation annotation);

  CausalTrace trace_;
  std::vector<std::uint64_t> lastOnLane_;
  TraceEvent pending_;
  bool hasPending_ = false;
};

/// Structural invariants every exported DAG must satisfy. `problems` is
/// capped at 16 entries (the first failures are the informative ones).
struct CausalAudit {
  std::vector<std::string> problems;
  std::size_t decisions = 0;  ///< kDecision nodes checked for reachability

  bool ok() const noexcept { return problems.empty(); }
};

/// Audits: every edge points strictly backward (acyclic), lanes are in
/// range, every vector clock equals the recomputed max-of-parents-plus-one
/// (which implies strict monotonicity along both edge kinds), and every
/// kDecision node reaches a kStart node backward through the edges.
CausalAudit audit(const CausalTrace& trace);

/// Identification carried into the JSON artifacts.
struct TraceMeta {
  std::string runId;
  std::string scenario;
};

/// Serializes the DAG as an `ooc.ctrace.v1` JSON document (byte-
/// deterministic; see EXPERIMENTS.md for the schema).
std::string toCtraceJson(const CausalTrace& trace, const TraceMeta& meta);

}  // namespace ooc::causal

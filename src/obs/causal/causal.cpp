#include "obs/causal/causal.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/json.hpp"

namespace ooc::causal {
namespace {

constexpr std::size_t kMaxProblems = 16;

std::uint32_t laneOf(const TraceEvent& event, std::uint32_t schedulerLane) {
  switch (event.kind) {
    case TraceEvent::Kind::kStart:
    case TraceEvent::Kind::kDeliver:
    case TraceEvent::Kind::kDecision:
    case TraceEvent::Kind::kCrash:
    case TraceEvent::Kind::kRestart:
      return static_cast<std::uint32_t>(event.a);
    case TraceEvent::Kind::kTimer:
      // A cancelled timer's event has no owner anymore; it ran no process
      // code and belongs to the scheduler lane.
      return event.a == kNoTraceProcess ? schedulerLane
                                        : static_cast<std::uint32_t>(event.a);
    case TraceEvent::Kind::kControl:
    case TraceEvent::Kind::kBarrier:
      return schedulerLane;
  }
  return schedulerLane;
}

void problem(CausalAudit& result, std::string text) {
  if (result.problems.size() < kMaxProblems)
    result.problems.push_back(std::move(text));
}

void emitIndexOrNull(obs::JsonWriter& json, std::uint64_t index) {
  if (index == kNoCausalParent)
    json.raw("null");
  else
    json.value(index);
}

}  // namespace

const char* toString(Annotation::Kind kind) noexcept {
  switch (kind) {
    case Annotation::Kind::kDetector: return "detector";
    case Annotation::Kind::kDriver: return "driver";
    case Annotation::Kind::kOracleQuery: return "oracle-query";
  }
  return "?";
}

const char* kindName(TraceEvent::Kind kind) noexcept {
  switch (kind) {
    case TraceEvent::Kind::kStart: return "start";
    case TraceEvent::Kind::kDeliver: return "deliver";
    case TraceEvent::Kind::kTimer: return "timer";
    case TraceEvent::Kind::kControl: return "control";
    case TraceEvent::Kind::kBarrier: return "barrier";
    case TraceEvent::Kind::kDecision: return "decision";
    case TraceEvent::Kind::kCrash: return "crash";
    case TraceEvent::Kind::kRestart: return "restart";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// CausalRecorder

CausalRecorder::CausalRecorder(std::size_t processCount)
    : lastOnLane_(processCount + 1, kNoCausalParent) {
  trace_.processCount = processCount;
}

void CausalRecorder::onEvent(const TraceEvent& event) {
  if (hasPending_)
    throw std::logic_error(
        "CausalRecorder: onEvent without onCausal for the previous event "
        "(simulator too old for the causality channel?)");
  pending_ = event;
  hasPending_ = true;
}

void CausalRecorder::onCausal(const CausalStamp& stamp) {
  if (!hasPending_ || stamp.index != trace_.nodes.size())
    throw std::logic_error("CausalRecorder: causal stamp out of sync with "
                           "the observed event stream");
  CausalNode node;
  node.event = pending_;
  node.cause = stamp.cause;
  node.lane = laneOf(pending_, trace_.schedulerLane());
  node.prev = lastOnLane_[node.lane];
  // VC(e) = max(VC(prev), VC(cause)) + 1 at e's own lane.
  if (node.prev != kNoCausalParent)
    node.clock = trace_.nodes[node.prev].clock;
  else
    node.clock.assign(trace_.laneCount(), 0);
  if (node.cause != kNoCausalParent) {
    const std::vector<std::uint64_t>& parent = trace_.nodes[node.cause].clock;
    for (std::size_t i = 0; i < node.clock.size(); ++i)
      node.clock[i] = std::max(node.clock[i], parent[i]);
  }
  ++node.clock[node.lane];
  lastOnLane_[node.lane] = trace_.nodes.size();
  trace_.nodes.push_back(std::move(node));
  hasPending_ = false;
}

void CausalRecorder::annotate(Annotation annotation) {
  // Telemetry fires inside a handler, i.e. during the dispatch of the most
  // recently observed event — that event is the annotated node.
  if (trace_.nodes.empty()) return;
  annotation.node = trace_.nodes.size() - 1;
  trace_.annotations.push_back(annotation);
}

void CausalRecorder::onDetectorOutcome(ProcessId process, Round round,
                                       const Outcome& outcome, Tick at) {
  Annotation a;
  a.kind = Annotation::Kind::kDetector;
  a.process = process;
  a.round = round;
  a.value = outcome.value;
  a.confidence = outcome.confidence;
  a.at = at;
  annotate(a);
}

void CausalRecorder::onDriverValue(ProcessId process, Round round, Value value,
                                   Tick at) {
  Annotation a;
  a.kind = Annotation::Kind::kDriver;
  a.process = process;
  a.round = round;
  a.value = value;
  a.at = at;
  annotate(a);
}

void CausalRecorder::onOracleQuery(ProcessId viewer, ProcessId target,
                                   bool suspected, Tick at) {
  Annotation a;
  a.kind = Annotation::Kind::kOracleQuery;
  a.process = viewer;
  a.subject = target;
  a.value = suspected ? 1 : 0;
  a.at = at;
  annotate(a);
}

// ---------------------------------------------------------------------------
// audit

CausalAudit audit(const CausalTrace& trace) {
  CausalAudit result;
  const std::size_t lanes = trace.laneCount();
  std::vector<std::uint64_t> expected;

  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    const CausalNode& node = trace.nodes[i];
    const auto where = [&] {
      return "node " + std::to_string(i) + " (" + kindName(node.event.kind) +
             " @" + std::to_string(node.event.at) + ")";
    };
    if (node.lane >= lanes) {
      problem(result, where() + ": lane " + std::to_string(node.lane) +
                          " out of range");
      continue;
    }
    bool edgesOk = true;
    for (const auto& [edge, name] :
         {std::pair{node.cause, "cause"}, std::pair{node.prev, "prev"}}) {
      if (edge != kNoCausalParent && edge >= i) {
        problem(result, where() + ": " + name + " edge " +
                            std::to_string(edge) + " does not point backward");
        edgesOk = false;
      }
    }
    if (!edgesOk) continue;
    if (node.clock.size() != lanes) {
      problem(result, where() + ": vector clock has " +
                          std::to_string(node.clock.size()) +
                          " components, expected " + std::to_string(lanes));
      continue;
    }
    // Recompute the clock from the parents: equality implies both the
    // increment rule and strict monotonicity along every edge.
    if (node.prev != kNoCausalParent)
      expected = trace.nodes[node.prev].clock;
    else
      expected.assign(lanes, 0);
    if (node.cause != kNoCausalParent) {
      const std::vector<std::uint64_t>& parent = trace.nodes[node.cause].clock;
      for (std::size_t c = 0; c < lanes; ++c)
        expected[c] = std::max(expected[c], parent[c]);
    }
    ++expected[node.lane];
    if (node.clock != expected)
      problem(result, where() + ": vector clock violates the "
                          "max-of-parents-plus-one rule");
  }

  // Every decision must be backward-reachable from a start event: the
  // chain of causes/predecessors that explains it has to begin somewhere.
  std::vector<std::uint64_t> stack;
  std::vector<bool> seen;
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    if (trace.nodes[i].event.kind != TraceEvent::Kind::kDecision) continue;
    ++result.decisions;
    seen.assign(trace.nodes.size(), false);
    stack.assign(1, i);
    seen[i] = true;
    bool reachesStart = false;
    while (!stack.empty() && !reachesStart) {
      const CausalNode& node = trace.nodes[stack.back()];
      stack.pop_back();
      if (node.event.kind == TraceEvent::Kind::kStart) {
        reachesStart = true;
        break;
      }
      for (const std::uint64_t edge : {node.cause, node.prev}) {
        if (edge == kNoCausalParent || edge >= trace.nodes.size()) continue;
        if (!seen[edge]) {
          seen[edge] = true;
          stack.push_back(edge);
        }
      }
    }
    if (!reachesStart)
      problem(result, "decision node " + std::to_string(i) + " (p" +
                          std::to_string(trace.nodes[i].event.a) +
                          ") is not reachable from any start event");
  }
  return result;
}

// ---------------------------------------------------------------------------
// ooc.ctrace.v1

std::string toCtraceJson(const CausalTrace& trace, const TraceMeta& meta) {
  obs::JsonWriter json;
  json.beginObject();
  json.key("schema").value("ooc.ctrace.v1");
  json.key("run_id").value(meta.runId);
  json.key("scenario").value(meta.scenario);
  json.key("processes").value(static_cast<std::uint64_t>(trace.processCount));
  json.key("lanes").value(static_cast<std::uint64_t>(trace.laneCount()));

  json.key("events").beginArray();
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    const CausalNode& node = trace.nodes[i];
    json.beginObject();
    json.key("i").value(static_cast<std::uint64_t>(i));
    json.key("tick").value(static_cast<std::uint64_t>(node.event.at));
    json.key("kind").value(kindName(node.event.kind));
    json.key("lane").value(static_cast<std::uint64_t>(node.lane));
    json.key("a").value(static_cast<std::uint64_t>(node.event.a));
    json.key("b").value(static_cast<std::uint64_t>(node.event.b));
    json.key("aux").value(node.event.aux);
    json.key("cause");
    emitIndexOrNull(json, node.cause);
    json.key("prev");
    emitIndexOrNull(json, node.prev);
    json.key("vc").beginArray();
    for (const std::uint64_t component : node.clock) json.value(component);
    json.endArray();
    json.endObject();
  }
  json.endArray();

  json.key("annotations").beginArray();
  for (const Annotation& a : trace.annotations) {
    json.beginObject();
    json.key("node").value(a.node);
    json.key("kind").value(toString(a.kind));
    json.key("tick").value(static_cast<std::uint64_t>(a.at));
    switch (a.kind) {
      case Annotation::Kind::kDetector:
        json.key("process").value(static_cast<std::uint64_t>(a.process));
        json.key("round").value(static_cast<std::uint64_t>(a.round));
        json.key("confidence").value(ooc::toString(a.confidence));
        json.key("value").value(static_cast<std::int64_t>(a.value));
        break;
      case Annotation::Kind::kDriver:
        json.key("process").value(static_cast<std::uint64_t>(a.process));
        json.key("round").value(static_cast<std::uint64_t>(a.round));
        json.key("value").value(static_cast<std::int64_t>(a.value));
        break;
      case Annotation::Kind::kOracleQuery:
        json.key("viewer").value(static_cast<std::uint64_t>(a.process));
        json.key("target").value(static_cast<std::uint64_t>(a.subject));
        json.key("suspected").value(a.value != 0);
        break;
    }
    json.endObject();
  }
  json.endArray();
  json.endObject();
  return json.str();
}

}  // namespace ooc::causal

// Decision provenance: why did process p decide v at tick t?
//
// The answer is the decision node's cause chain — walking the cause edge
// backward from a kDecision node yields exactly the minimal message/timer
// chain that produced the decision (each hop is the one event whose
// handler scheduled the next), ending at a causal root (a start event or
// pre-run injection). explainJson() renders that critical path for every
// decision of a run, together with the protocol-level annotations on it
// (detector confidence transitions, driver returns, oracle queries), as a
// byte-deterministic `ooc.explain.v1` JSON document — the machine-readable
// "why that many rounds" companion to the rounds-to-decide benches.
#pragma once

#include <string>

#include "obs/causal/causal.hpp"

namespace ooc::causal {

/// Serializes every decision's critical path (see EXPERIMENTS.md for the
/// schema). Deterministic: two recordings of one configuration produce
/// byte-identical documents.
std::string explainJson(const CausalTrace& trace, const TraceMeta& meta);

}  // namespace ooc::causal

#include "obs/causal/provenance.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/json.hpp"

namespace ooc::causal {
namespace {

/// Cause chain of `decision`, root first (decision node last).
std::vector<std::uint64_t> criticalPath(const CausalTrace& trace,
                                        std::uint64_t decision) {
  std::vector<std::uint64_t> path;
  for (std::uint64_t node = decision; node != kNoCausalParent;
       node = trace.nodes[node].cause)
    path.push_back(node);
  std::reverse(path.begin(), path.end());
  return path;
}

void emitAnnotationBody(obs::JsonWriter& json, const Annotation& a) {
  json.key("node").value(a.node);
  json.key("tick").value(static_cast<std::uint64_t>(a.at));
  switch (a.kind) {
    case Annotation::Kind::kDetector:
      json.key("process").value(static_cast<std::uint64_t>(a.process));
      json.key("round").value(static_cast<std::uint64_t>(a.round));
      json.key("confidence").value(ooc::toString(a.confidence));
      json.key("value").value(static_cast<std::int64_t>(a.value));
      break;
    case Annotation::Kind::kDriver:
      json.key("process").value(static_cast<std::uint64_t>(a.process));
      json.key("round").value(static_cast<std::uint64_t>(a.round));
      json.key("value").value(static_cast<std::int64_t>(a.value));
      break;
    case Annotation::Kind::kOracleQuery:
      json.key("viewer").value(static_cast<std::uint64_t>(a.process));
      json.key("target").value(static_cast<std::uint64_t>(a.subject));
      json.key("suspected").value(a.value != 0);
      break;
  }
}

}  // namespace

std::string explainJson(const CausalTrace& trace, const TraceMeta& meta) {
  // Annotations grouped by node, preserving their recording order.
  std::vector<std::vector<std::uint32_t>> byNode(trace.nodes.size());
  for (std::uint32_t i = 0; i < trace.annotations.size(); ++i) {
    const std::uint64_t node = trace.annotations[i].node;
    if (node < byNode.size()) byNode[node].push_back(i);
  }

  obs::JsonWriter json;
  json.beginObject();
  json.key("schema").value("ooc.explain.v1");
  json.key("run_id").value(meta.runId);
  json.key("scenario").value(meta.scenario);
  json.key("processes").value(static_cast<std::uint64_t>(trace.processCount));

  json.key("decisions").beginArray();
  for (std::uint64_t i = 0; i < trace.nodes.size(); ++i) {
    if (trace.nodes[i].event.kind != TraceEvent::Kind::kDecision) continue;
    const CausalNode& decision = trace.nodes[i];
    const std::vector<std::uint64_t> path = criticalPath(trace, i);

    std::uint64_t deliveries = 0;
    std::uint64_t timers = 0;
    std::vector<Round> rounds;
    for (const std::uint64_t node : path) {
      const TraceEvent::Kind kind = trace.nodes[node].event.kind;
      if (kind == TraceEvent::Kind::kDeliver) ++deliveries;
      if (kind == TraceEvent::Kind::kTimer) ++timers;
      for (const std::uint32_t a : byNode[node]) {
        const Annotation& annotation = trace.annotations[a];
        if (annotation.kind != Annotation::Kind::kOracleQuery)
          rounds.push_back(annotation.round);
      }
    }
    std::sort(rounds.begin(), rounds.end());
    rounds.erase(std::unique(rounds.begin(), rounds.end()), rounds.end());

    json.beginObject();
    json.key("process").value(static_cast<std::uint64_t>(decision.event.a));
    json.key("value").value(static_cast<std::int64_t>(
        static_cast<Value>(decision.event.aux)));
    json.key("tick").value(static_cast<std::uint64_t>(decision.event.at));
    json.key("node").value(i);
    json.key("path_length").value(static_cast<std::uint64_t>(path.size()));
    json.key("deliveries_on_path").value(deliveries);
    json.key("timers_on_path").value(timers);
    json.key("first_tick")
        .value(static_cast<std::uint64_t>(trace.nodes[path.front()].event.at));
    json.key("rounds_on_path").beginArray();
    for (const Round round : rounds)
      json.value(static_cast<std::uint64_t>(round));
    json.endArray();

    json.key("path").beginArray();
    for (const std::uint64_t node : path) {
      const CausalNode& hop = trace.nodes[node];
      json.beginObject();
      json.key("i").value(node);
      json.key("tick").value(static_cast<std::uint64_t>(hop.event.at));
      json.key("kind").value(kindName(hop.event.kind));
      json.key("lane").value(static_cast<std::uint64_t>(hop.lane));
      json.key("from");
      if (hop.event.kind == TraceEvent::Kind::kDeliver)
        json.value(static_cast<std::uint64_t>(hop.event.b));
      else
        json.raw("null");
      json.endObject();
    }
    json.endArray();

    // The protocol-level story along the path: how confidence moved, what
    // the drivers returned, what the oracle was asked en route.
    const auto emitPathAnnotations = [&](const char* arrayKey,
                                         Annotation::Kind kind) {
      json.key(arrayKey).beginArray();
      for (const std::uint64_t node : path) {
        for (const std::uint32_t a : byNode[node]) {
          if (trace.annotations[a].kind != kind) continue;
          json.beginObject();
          emitAnnotationBody(json, trace.annotations[a]);
          json.endObject();
        }
      }
      json.endArray();
    };
    emitPathAnnotations("detector_transitions", Annotation::Kind::kDetector);
    emitPathAnnotations("driver_values", Annotation::Kind::kDriver);
    emitPathAnnotations("oracle_queries", Annotation::Kind::kOracleQuery);
    json.endObject();
  }
  json.endArray();
  json.endObject();
  return json.str();
}

}  // namespace ooc::causal

#include "obs/causal/perfetto.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace ooc::causal {
namespace {

/// Synthetic microsecond timestamps: tick * 1000 + execution rank within
/// the tick (capped so a pathological tick cannot bleed into the next).
std::vector<std::uint64_t> nodeTimestamps(const CausalTrace& trace) {
  std::vector<std::uint64_t> ts(trace.nodes.size(), 0);
  Tick currentTick = 0;
  std::uint64_t rank = 0;
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    const Tick at = trace.nodes[i].event.at;
    if (i == 0 || at != currentTick) {
      currentTick = at;
      rank = 0;
    }
    ts[i] = static_cast<std::uint64_t>(at) * 1000 + std::min<std::uint64_t>(rank, 999);
    ++rank;
  }
  return ts;
}

std::string sliceName(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEvent::Kind::kStart: return "start";
    case TraceEvent::Kind::kDeliver:
      return "recv<-p" + std::to_string(event.b);
    case TraceEvent::Kind::kTimer:
      return event.a == kNoTraceProcess
                 ? "timer " + std::to_string(event.aux) + " (cancelled)"
                 : "timer " + std::to_string(event.aux);
    case TraceEvent::Kind::kControl: return "control";
    case TraceEvent::Kind::kBarrier: return "tick barrier";
    case TraceEvent::Kind::kDecision:
      return "DECIDE " + std::to_string(static_cast<Value>(event.aux));
    case TraceEvent::Kind::kCrash:
      return "crash (inc " + std::to_string(event.aux) + ")";
    case TraceEvent::Kind::kRestart:
      return "restart (inc " + std::to_string(event.aux) + ")";
  }
  return "?";
}

class EventArray {
 public:
  explicit EventArray(obs::JsonWriter& json) : json_(json) {}

  obs::JsonWriter& begin(const char* name, const char* ph, std::uint64_t ts,
                         std::uint64_t tid) {
    json_.beginObject();
    json_.key("name").value(name);
    json_.key("ph").value(ph);
    json_.key("ts").value(ts);
    json_.key("pid").value(std::uint64_t{1});
    json_.key("tid").value(tid);
    return json_;
  }

  obs::JsonWriter& begin(const std::string& name, const char* ph,
                         std::uint64_t ts, std::uint64_t tid) {
    return begin(name.c_str(), ph, ts, tid);
  }

 private:
  obs::JsonWriter& json_;
};

}  // namespace

std::string toPerfettoJson(const CausalTrace& trace, const TraceMeta& meta) {
  const std::vector<std::uint64_t> ts = nodeTimestamps(trace);
  const std::uint64_t endTs =
      (ts.empty() ? 0 : ts.back()) + 1000;  // one tick of right margin

  obs::JsonWriter json;
  EventArray events(json);
  json.beginObject();
  json.key("displayTimeUnit").value("ms");
  json.key("otherData").beginObject();
  json.key("run_id").value(meta.runId);
  json.key("scenario").value(meta.scenario);
  json.endObject();
  json.key("traceEvents").beginArray();

  // Track names: p0..pN-1 and the scheduler pseudo-lane.
  for (std::size_t lane = 0; lane < trace.laneCount(); ++lane) {
    const std::string name =
        lane == trace.schedulerLane() ? "scheduler"
                                      : "p" + std::to_string(lane);
    events.begin("thread_name", "M", 0, lane);
    json.key("args").beginObject().key("name").value(name).endObject();
    json.endObject();
  }

  // Every node as a 1us slice, so flow arrows have something to bind to.
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    const CausalNode& node = trace.nodes[i];
    events.begin(sliceName(node.event), "X", ts[i], node.lane);
    json.key("dur").value(std::uint64_t{1});
    json.key("cat").value(kindName(node.event.kind));
    json.key("args").beginObject();
    json.key("i").value(static_cast<std::uint64_t>(i));
    json.key("tick").value(static_cast<std::uint64_t>(node.event.at));
    json.key("cause");
    if (node.cause == kNoCausalParent)
      json.raw("null");
    else
      json.value(node.cause);
    json.endObject();
    json.endObject();
  }

  // Message arrows: one flow per delivery, from the event whose handler
  // sent the message to the delivery itself.
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    const CausalNode& node = trace.nodes[i];
    if (node.event.kind != TraceEvent::Kind::kDeliver) continue;
    if (node.cause == kNoCausalParent) continue;
    const CausalNode& sender = trace.nodes[node.cause];
    const std::string name = "msg p" + std::to_string(sender.lane) + "->p" +
                             std::to_string(node.lane);
    events.begin(name, "s", ts[node.cause], sender.lane);
    json.key("cat").value("msg");
    json.key("id").value(static_cast<std::uint64_t>(i));
    json.endObject();
    events.begin(name, "f", ts[i], node.lane);
    json.key("cat").value("msg");
    json.key("id").value(static_cast<std::uint64_t>(i));
    json.key("bp").value("e");
    json.endObject();
  }

  // Crash→restart "down" intervals per process lane; a crash that never
  // restarts extends to the end of the visible range.
  std::map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> down;
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    const CausalNode& node = trace.nodes[i];
    if (node.event.kind == TraceEvent::Kind::kCrash) {
      down.emplace(node.lane, std::pair{ts[i], node.event.aux});
    } else if (node.event.kind == TraceEvent::Kind::kRestart) {
      const auto it = down.find(node.lane);
      if (it == down.end()) continue;
      events.begin("down (inc " + std::to_string(it->second.second) + ")",
                   "X", it->second.first, node.lane);
      json.key("dur").value(ts[i] - it->second.first);
      json.key("cat").value("down");
      json.endObject();
      down.erase(it);
    }
  }
  for (const auto& [lane, open] : down) {
    events.begin("down (inc " + std::to_string(open.second) + ", terminal)",
                 "X", open.first, lane);
    json.key("dur").value(endTs - open.first);
    json.key("cat").value("down");
    json.endObject();
  }

  // Round spans per process, derived from detector/driver annotations
  // grouped by (process, round) — NOT by contiguous runs: under
  // non-lockstep scheduling policies a round's detached driver keeps
  // annotating after the successor round is live, so a lane's spans may
  // overlap (named "round m (overlaps)"). Under lockstep the grouping
  // degenerates to the old contiguous rendering byte-for-byte. Async
  // spans with distinct ids keep overlapping rounds off slice nesting.
  std::map<std::pair<ProcessId, Round>,
           std::pair<std::uint64_t, std::uint64_t>>
      spans;  // (process, round) -> (first ts, last ts)
  for (const Annotation& a : trace.annotations) {
    if (a.kind == Annotation::Kind::kOracleQuery) continue;
    const std::pair<ProcessId, Round> key{a.process, a.round};
    const auto [it, inserted] =
        spans.emplace(key, std::pair{ts[a.node], ts[a.node]});
    if (!inserted) {
      it->second.first = std::min(it->second.first, ts[a.node]);
      it->second.second = std::max(it->second.second, ts[a.node]);
    }
  }
  for (auto it = spans.begin(); it != spans.end(); ++it) {
    const auto& [process, round] = it->first;
    const std::uint64_t from = it->second.first;
    // Successor round on the same lane (map order is (process, round)).
    const auto next = std::next(it);
    const bool hasNext =
        next != spans.end() && next->first.first == process;
    // The span reaches at least the successor's start (solid lockstep
    // bars, where a round's own annotations never outlive the next
    // round's first) and at most the round's own last annotation (a
    // skewed round's detached-driver tail).
    const std::uint64_t barrier = hasNext ? next->second.first : endTs;
    const std::uint64_t to = std::max(it->second.second, barrier);
    const bool overlaps = hasNext && it->second.second > barrier;
    const std::string name =
        "round " + std::to_string(round) + (overlaps ? " (overlaps)" : "");
    const std::uint64_t id =
        (static_cast<std::uint64_t>(process) << 32) | round;
    events.begin(name, "b", from, process);
    json.key("cat").value("round");
    json.key("id").value(id);
    json.endObject();
    events.begin(name, "e", to, process);
    json.key("cat").value("round");
    json.key("id").value(id);
    json.endObject();
  }

  // Oracle-suspicion intervals per (viewer, target): opened on the first
  // suspected answer, closed when the viewer is next told trusted.
  std::map<std::pair<ProcessId, ProcessId>, std::uint64_t> suspicion;
  const auto suspicionMark = [&](ProcessId viewer, ProcessId target,
                                 const char* ph, std::uint64_t atTs) {
    const std::uint64_t id = 0x5150000000000000ull |
                             (static_cast<std::uint64_t>(viewer) << 24) |
                             target;
    events.begin("suspects p" + std::to_string(target), ph, atTs, viewer);
    json.key("cat").value("suspicion");
    json.key("id").value(id);
    json.endObject();
  };
  for (const Annotation& a : trace.annotations) {
    if (a.kind != Annotation::Kind::kOracleQuery) continue;
    const std::pair<ProcessId, ProcessId> key{a.process, a.subject};
    const bool suspected = a.value != 0;
    const auto it = suspicion.find(key);
    if (suspected && it == suspicion.end()) {
      suspicion.emplace(key, ts[a.node]);
      suspicionMark(key.first, key.second, "b", ts[a.node]);
    } else if (!suspected && it != suspicion.end()) {
      suspicionMark(key.first, key.second, "e", ts[a.node]);
      suspicion.erase(it);
    }
  }
  for (const auto& [key, from] : suspicion) {
    (void)from;
    suspicionMark(key.first, key.second, "e", endTs);
  }

  json.endArray();
  json.endObject();
  return json.str();
}

}  // namespace ooc::causal

// Deterministic minimal JSON emission for the telemetry layer.
//
// The bench/check `--json` outputs are diffed byte-for-byte to detect
// nondeterminism (two runs with the same configuration and seed must
// produce identical files), so everything here is reproducible by
// construction: no locales, no pointer ordering, and number formatting
// that picks the shortest decimal form that round-trips.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ooc::obs {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included).
std::string jsonEscape(std::string_view text);

/// Deterministic rendering of a double: integral values (within exact
/// int64 range) print without decimal point or exponent; otherwise the
/// shortest of %.15g/%.16g/%.17g that parses back bit-identically.
/// NaN and infinities render as null — JSON has no spelling for them.
std::string formatJsonNumber(double v);

/// Streaming JSON writer with automatic comma placement. The writer
/// imposes no key order — deterministic output is the caller's job (emit
/// keys in a fixed, sorted order).
class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  /// Splices pre-rendered JSON (e.g. a registry snapshot) as one value.
  JsonWriter& raw(std::string_view json);

  const std::string& str() const noexcept { return out_; }

 private:
  void prefix();

  std::string out_;
  std::vector<bool> firstInScope_ = {true};
  bool pendingKey_ = false;
};

}  // namespace ooc::obs

// Deterministic run identifiers.
//
// A run id is the FNV-1a hash of a run's full serialized configuration
// (which includes the seed), rendered as 16 lowercase hex digits. Every
// artifact a run produces — the serialized scenario, the counterexample
// file, the bench/check JSON, the trace_view timeline — carries the same
// id, so artifacts from one run can be correlated across tools without
// any shared state or wall-clock timestamps.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ooc::obs {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ull;

constexpr std::uint64_t fnv1a(std::string_view data,
                              std::uint64_t hash = kFnvOffsetBasis) noexcept {
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// 16 lowercase hex digits of `hash`.
std::string toHex(std::uint64_t hash);

/// 16 lowercase hex digits of fnv1a(text).
std::string runId(std::string_view text);

}  // namespace ooc::obs

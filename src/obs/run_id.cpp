#include "obs/run_id.hpp"

#include <cstdio>

namespace ooc::obs {

std::string toHex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string runId(std::string_view text) { return toHex(fnv1a(text)); }

}  // namespace ooc::obs

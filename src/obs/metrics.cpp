#include "obs/metrics.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace ooc::obs {
namespace {

std::string labelKey(const Labels& sorted) {
  std::string key;
  for (const auto& [k, v] : sorted) {
    key += k;
    key += '\x1e';
    key += v;
    key += '\x1f';
  }
  return key;
}

Labels sortedLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

const std::vector<double>& defaultBuckets() {
  static const std::vector<double> kBuckets = {
      1,   2,   4,    8,    16,   32,   64,    128,  256,
      512, 1024, 2048, 4096, 8192, 16384, 32768, 65536};
  return kBuckets;
}

Registry& Registry::global() noexcept {
  static Registry instance;
  return instance;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  series_.clear();
  dropped_ = 0;
}

Registry::Series* Registry::intern(std::string_view name,
                                   const Labels& labels, Type type) {
  Labels sorted = sortedLabels(labels);
  std::string key(name);
  key += '\x1f';
  key += labelKey(sorted);
  const auto it = series_.find(key);
  if (it != series_.end()) {
    // Same key registered under a different type is a programming error;
    // keep the first registration rather than corrupting it.
    return it->second.type == type ? &it->second : nullptr;
  }
  if (series_.size() >= kMaxSeries) {
    ++dropped_;
    return nullptr;
  }
  Series& series = series_[std::move(key)];
  series.type = type;
  series.name = std::string(name);
  series.labels = std::move(sorted);
  return &series;
}

void Registry::addCounter(std::string_view name, std::uint64_t delta,
                          const Labels& labels) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Series* series = intern(name, labels, Type::kCounter))
    series->counter += delta;
}

void Registry::setGauge(std::string_view name, double value,
                        const Labels& labels) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Series* series = intern(name, labels, Type::kGauge))
    series->gauge = value;
}

void Registry::observe(std::string_view name, double sample,
                       const Labels& labels,
                       const std::vector<double>& bounds) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  Series* series = intern(name, labels, Type::kHistogram);
  if (series == nullptr) return;
  if (series->bucketCounts.empty()) {
    series->bounds = bounds;
    series->bucketCounts.assign(bounds.size() + 1, 0);
  }
  std::size_t bucket = series->bounds.size();  // overflow slot
  for (std::size_t i = 0; i < series->bounds.size(); ++i) {
    if (sample <= series->bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++series->bucketCounts[bucket];
  if (series->count == 0) {
    series->min = sample;
    series->max = sample;
  } else {
    series->min = std::min(series->min, sample);
    series->max = std::max(series->max, sample);
  }
  ++series->count;
  series->sum += sample;
}

std::size_t Registry::seriesCount() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

std::size_t Registry::droppedSeries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string Registry::toJson() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter json;
  json.beginObject();
  const auto emitLabels = [&](const Series& series) {
    json.key("labels").beginObject();
    for (const auto& [k, v] : series.labels) json.key(k).value(v);
    json.endObject();
  };
  const auto emitType = [&](const char* arrayKey, Type type,
                            auto&& emitBody) {
    json.key(arrayKey).beginArray();
    for (const auto& [key, series] : series_) {
      if (series.type != type) continue;
      json.beginObject().key("name").value(series.name);
      emitLabels(series);
      emitBody(series);
      json.endObject();
    }
    json.endArray();
  };
  emitType("counters", Type::kCounter, [&](const Series& series) {
    json.key("value").value(series.counter);
  });
  emitType("gauges", Type::kGauge, [&](const Series& series) {
    json.key("value").value(series.gauge);
  });
  emitType("histograms", Type::kHistogram, [&](const Series& series) {
    json.key("count").value(series.count);
    json.key("sum").value(series.sum);
    json.key("min").value(series.count > 0 ? series.min : 0.0);
    json.key("max").value(series.count > 0 ? series.max : 0.0);
    json.key("buckets").beginArray();
    for (std::size_t i = 0; i < series.bounds.size(); ++i) {
      json.beginObject()
          .key("le")
          .value(series.bounds[i])
          .key("count")
          .value(series.bucketCounts[i])
          .endObject();
    }
    json.endArray();
    json.key("overflow").value(
        series.bucketCounts.empty() ? std::uint64_t{0}
                                    : series.bucketCounts.back());
  });
  json.key("dropped_series").value(std::uint64_t{dropped_});
  json.endObject();
  return json.str();
}

}  // namespace ooc::obs

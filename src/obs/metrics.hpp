// Protocol telemetry: a process-wide metrics registry.
//
// Series are keyed by (name, labels) — e.g. confidence transition counts
// per family, confidence level and round — and come in three shapes:
// counters (monotonic uint64), gauges (last-written double) and histograms
// (fixed bucket bounds, plus count/sum/min/max).
//
// Design constraints, in priority order:
//  * Near-zero cost when disabled. The registry ships disabled; every
//    mutator first reads one relaxed atomic and returns. Hot paths (the
//    simulator event loop) never call the registry at all — they keep
//    plain member counters which the scenario runners flush here once per
//    run, so a disabled-telemetry model-checking sweep pays one atomic
//    load per *run*, not per event.
//  * Deterministic when enabled. Counter increments and histogram
//    observations are commutative, and snapshots render series sorted by
//    (name, labels) with reproducible number formatting, so the JSON
//    snapshot of a run is byte-identical across repetitions — even when
//    the model checker fills the registry from many worker threads.
//    (Gauges are last-write-wins and therefore only deterministic from
//    single-threaded contexts, i.e. the bench binaries.)
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ooc::obs {

/// Label set attached to a series. Order does not matter: the registry
/// sorts labels by key when interning the series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Default histogram bucket upper bounds (inclusive): powers of two
/// covering 1..65536, suitable for round and tick distributions.
const std::vector<double>& defaultBuckets();

class Registry {
 public:
  /// Series beyond this cap are dropped (and counted in droppedSeries())
  /// instead of growing without bound on a label-cardinality mistake.
  static constexpr std::size_t kMaxSeries = 1 << 16;

  void enable(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every series (the enabled flag is unchanged).
  void reset();

  /// Adds `delta` to the counter series, creating it at zero first.
  void addCounter(std::string_view name, std::uint64_t delta,
                  const Labels& labels = {});
  /// Sets the gauge series to `value` (last write wins).
  void setGauge(std::string_view name, double value,
                const Labels& labels = {});
  /// Records `sample` into the histogram series. Bucket bounds are fixed
  /// at series creation: the first observation's `bounds` win (pass the
  /// same bounds everywhere, or use the defaultBuckets() overload).
  void observe(std::string_view name, double sample, const Labels& labels,
               const std::vector<double>& bounds);
  void observe(std::string_view name, double sample,
               const Labels& labels = {}) {
    observe(name, sample, labels, defaultBuckets());
  }

  std::size_t seriesCount() const;
  std::size_t droppedSeries() const;

  /// Deterministic snapshot: {"counters":[...],"gauges":[...],
  /// "histograms":[...]}, each array sorted by (name, labels).
  std::string toJson() const;

  /// The process-wide registry used by all instrumentation call sites.
  static Registry& global() noexcept;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Series {
    Type type = Type::kCounter;
    std::string name;
    Labels labels;  // sorted by key
    std::uint64_t counter = 0;
    double gauge = 0.0;
    // Histogram state. bucketCounts has bounds.size() + 1 entries; the
    // last one counts samples above every bound.
    std::vector<double> bounds;
    std::vector<std::uint64_t> bucketCounts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  Series* intern(std::string_view name, const Labels& labels, Type type);

  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  /// Key is "name\x1f<label-key>" so map order IS (name, labels) order.
  std::map<std::string, Series> series_;
  std::size_t dropped_ = 0;
};

/// Shorthand for Registry::global().enabled() — the guard instrumentation
/// sites use before doing any work.
inline bool enabled() noexcept { return Registry::global().enabled(); }

/// Registry::global() accessors used by instrumentation call sites.
inline Registry& metrics() noexcept { return Registry::global(); }

}  // namespace ooc::obs

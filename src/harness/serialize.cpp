#include "harness/serialize.hpp"

#include <array>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "compose/kv.hpp"

namespace ooc::harness {
namespace {

// The key=value machinery (writer, reader, run-id stamping, crash/adversary
// entries) now lives in compose/kv.hpp, shared with Composition
// serialization; only the per-config field lists remain here.
using compose::KvReader;
using compose::KvWriter;
using compose::crashEntry;
using compose::getAdversary;
using compose::parseCrash;
using compose::putAdversary;
using compose::stampRunId;

template <typename Enum, std::size_t N>
Enum parseEnum(const std::string& name, const char* what,
               const std::array<std::pair<const char*, Enum>, N>& table) {
  for (const auto& [label, value] : table)
    if (name == label) return value;
  throw std::runtime_error(std::string("unknown ") + what + " '" + name + "'");
}

}  // namespace

// ---------------------------------------------------------------------------
// run identity

std::string configRunId(const std::string& serialized) {
  return compose::configRunId(serialized);
}

// ---------------------------------------------------------------------------
// enums

const char* toString(BenOrConfig::Mode mode) noexcept {
  switch (mode) {
    case BenOrConfig::Mode::kDecomposed: return "decomposed";
    case BenOrConfig::Mode::kMonolithic: return "monolithic";
    case BenOrConfig::Mode::kVacFromTwoAc: return "vac-from-two-ac";
    case BenOrConfig::Mode::kDecentralizedVac: return "decentralized-vac";
  }
  return "?";
}

const char* toString(BenOrConfig::Reconciliator reconciliator) noexcept {
  switch (reconciliator) {
    case BenOrConfig::Reconciliator::kLocalCoin: return "local-coin";
    case BenOrConfig::Reconciliator::kCommonCoin: return "common-coin";
    case BenOrConfig::Reconciliator::kBiasedCoin: return "biased-coin";
    case BenOrConfig::Reconciliator::kKeepValue: return "keep-value";
    case BenOrConfig::Reconciliator::kLottery: return "lottery";
  }
  return "?";
}

const char* toString(BenOrConfig::Fault fault) noexcept {
  switch (fault) {
    case BenOrConfig::Fault::kNone: return "none";
    case BenOrConfig::Fault::kVacAdoptFlip: return "vac-adopt-flip";
  }
  return "?";
}

const char* toString(PhaseKingConfig::Algorithm algorithm) noexcept {
  switch (algorithm) {
    case PhaseKingConfig::Algorithm::kKing: return "king";
    case PhaseKingConfig::Algorithm::kQueen: return "queen";
  }
  return "?";
}

BenOrConfig::Mode parseBenOrMode(const std::string& name) {
  return parseEnum(
      name, "mode",
      std::array<std::pair<const char*, BenOrConfig::Mode>, 4>{{
          {"decomposed", BenOrConfig::Mode::kDecomposed},
          {"monolithic", BenOrConfig::Mode::kMonolithic},
          {"vac-from-two-ac", BenOrConfig::Mode::kVacFromTwoAc},
          {"decentralized-vac", BenOrConfig::Mode::kDecentralizedVac},
      }});
}

BenOrConfig::Reconciliator parseReconciliator(const std::string& name) {
  return parseEnum(
      name, "reconciliator",
      std::array<std::pair<const char*, BenOrConfig::Reconciliator>, 5>{{
          {"local-coin", BenOrConfig::Reconciliator::kLocalCoin},
          {"common-coin", BenOrConfig::Reconciliator::kCommonCoin},
          {"biased-coin", BenOrConfig::Reconciliator::kBiasedCoin},
          {"keep-value", BenOrConfig::Reconciliator::kKeepValue},
          {"lottery", BenOrConfig::Reconciliator::kLottery},
      }});
}

BenOrConfig::Fault parseFault(const std::string& name) {
  return parseEnum(name, "fault",
                   std::array<std::pair<const char*, BenOrConfig::Fault>, 2>{{
                       {"none", BenOrConfig::Fault::kNone},
                       {"vac-adopt-flip", BenOrConfig::Fault::kVacAdoptFlip},
                   }});
}

PhaseKingConfig::Algorithm parseAlgorithm(const std::string& name) {
  return parseEnum(
      name, "algorithm",
      std::array<std::pair<const char*, PhaseKingConfig::Algorithm>, 2>{{
          {"king", PhaseKingConfig::Algorithm::kKing},
          {"queen", PhaseKingConfig::Algorithm::kQueen},
      }});
}

phaseking::ByzantineStrategy parseByzantineStrategy(const std::string& name) {
  using S = phaseking::ByzantineStrategy;
  return parseEnum(name, "byzantine strategy",
                   std::array<std::pair<const char*, S>, 5>{{
                       {"silent", S::kSilent},
                       {"random", S::kRandom},
                       {"equivocate", S::kEquivocate},
                       {"lying-king", S::kLyingKing},
                       {"anti-king", S::kAntiKing},
                   }});
}

// ---------------------------------------------------------------------------
// BenOrConfig

std::string serialize(const BenOrConfig& config) {
  KvWriter kv;
  kv.put("n", config.n);
  if (config.t) kv.put("t", *config.t);
  kv.putValues("inputs", config.inputs);
  kv.put("seed", config.seed);
  kv.put("mode", toString(config.mode));
  kv.put("reconciliator", toString(config.reconciliator));
  kv.put("bias", config.bias);
  for (const auto& crash : config.crashes) kv.put("crash", crashEntry(crash));
  kv.put("min-delay", config.minDelay);
  kv.put("max-delay", config.maxDelay);
  kv.put("max-rounds", static_cast<std::uint64_t>(config.maxRounds));
  kv.put("max-ticks", config.maxTicks);
  putAdversary(kv, config.adversary);
  kv.put("fault", toString(config.fault));
  return stampRunId(kv.str());
}

BenOrConfig parseBenOrConfig(const std::string& text) {
  const KvReader kv(text);
  BenOrConfig config;
  config.n = kv.getU64("n", config.n);
  if (kv.has("t")) config.t = kv.getU64("t", 0);
  config.inputs = kv.getValues("inputs");
  config.seed = kv.getU64("seed", config.seed);
  config.mode = parseBenOrMode(kv.get("mode", "decomposed"));
  config.reconciliator =
      parseReconciliator(kv.get("reconciliator", "local-coin"));
  config.bias = kv.getDouble("bias", config.bias);
  for (const std::string& entry : kv.getAll("crash"))
    config.crashes.push_back(parseCrash(entry));
  config.minDelay = kv.getU64("min-delay", config.minDelay);
  config.maxDelay = kv.getU64("max-delay", config.maxDelay);
  config.maxRounds = static_cast<Round>(kv.getU64("max-rounds", config.maxRounds));
  config.maxTicks = kv.getU64("max-ticks", config.maxTicks);
  config.adversary = getAdversary(kv);
  config.fault = parseFault(kv.get("fault", "none"));
  return config;
}

// ---------------------------------------------------------------------------
// PhaseKingConfig

std::string serialize(const PhaseKingConfig& config) {
  KvWriter kv;
  kv.put("algorithm", toString(config.algorithm));
  kv.put("n", config.n);
  kv.put("byzantine", config.byzantineCount);
  if (config.t) kv.put("t", *config.t);
  kv.put("strategy", phaseking::toString(config.strategy));
  kv.put("placement", toString(config.placement));
  kv.putValues("inputs", config.inputs);
  kv.put("monolithic", static_cast<std::uint64_t>(config.monolithic));
  kv.put("early-commit",
         static_cast<std::uint64_t>(config.earlyCommitDecision));
  kv.put("seed", config.seed);
  kv.put("max-rounds", static_cast<std::uint64_t>(config.maxRounds));
  kv.put("max-ticks", config.maxTicks);
  return stampRunId(kv.str());
}

PhaseKingConfig parsePhaseKingConfig(const std::string& text) {
  const KvReader kv(text);
  PhaseKingConfig config;
  config.algorithm = parseAlgorithm(kv.get("algorithm", "king"));
  config.n = kv.getU64("n", config.n);
  config.byzantineCount = kv.getU64("byzantine", config.byzantineCount);
  if (kv.has("t")) config.t = kv.getU64("t", 0);
  config.strategy = parseByzantineStrategy(kv.get("strategy", "equivocate"));
  config.placement = parsePlacement(kv.get("placement", "front"));
  config.inputs = kv.getValues("inputs");
  config.monolithic = kv.getU64("monolithic", 0) != 0;
  config.earlyCommitDecision = kv.getU64("early-commit", 0) != 0;
  config.seed = kv.getU64("seed", config.seed);
  config.maxRounds = static_cast<Round>(kv.getU64("max-rounds", config.maxRounds));
  config.maxTicks = kv.getU64("max-ticks", config.maxTicks);
  return config;
}

// ---------------------------------------------------------------------------
// RaftScenarioConfig

std::string serialize(const RaftScenarioConfig& config) {
  KvWriter kv;
  kv.put("n", config.n);
  kv.putValues("inputs", config.inputs);
  kv.put("seed", config.seed);
  kv.put("min-delay", config.minDelay);
  kv.put("max-delay", config.maxDelay);
  kv.put("drop-prob", config.dropProbability);
  kv.put("dup-prob", config.duplicateProbability);
  for (const auto& crash : config.crashes) kv.put("crash", crashEntry(crash));
  for (const auto& event : config.partitions) {
    std::ostringstream os;
    os << event.at << ':';
    for (std::size_t i = 0; i < event.groups.size(); ++i) {
      if (i > 0) os << ',';
      os << event.groups[i];
    }
    kv.put("partition", os.str());
  }
  // Restart entries: "pid@tick+downtime".
  for (const auto& event : config.restarts) {
    kv.put("restart", std::to_string(event.id) + "@" +
                          std::to_string(event.at) + "+" +
                          std::to_string(event.downtime));
  }
  kv.put("election-min", config.raft.electionTimeoutMin);
  kv.put("election-max", config.raft.electionTimeoutMax);
  kv.put("heartbeat", config.raft.heartbeatInterval);
  kv.put("max-append", config.raft.maxEntriesPerAppend);
  kv.put("compaction", config.raft.compactionThreshold);
  kv.put("durable", static_cast<std::uint64_t>(config.raft.durable));
  kv.put("sync-before-reply",
         static_cast<std::uint64_t>(config.raft.syncBeforeReply));
  kv.put("torn-prob", config.raft.storage.tornTailProbability);
  kv.put("corrupt-prob", config.raft.storage.corruptProbability);
  putAdversary(kv, config.adversary);
  kv.put("max-ticks", config.maxTicks);
  return stampRunId(kv.str());
}

RaftScenarioConfig parseRaftConfig(const std::string& text) {
  const KvReader kv(text);
  RaftScenarioConfig config;
  config.n = kv.getU64("n", config.n);
  config.inputs = kv.getValues("inputs");
  config.seed = kv.getU64("seed", config.seed);
  config.minDelay = kv.getU64("min-delay", config.minDelay);
  config.maxDelay = kv.getU64("max-delay", config.maxDelay);
  config.dropProbability = kv.getDouble("drop-prob", config.dropProbability);
  config.duplicateProbability =
      kv.getDouble("dup-prob", config.duplicateProbability);
  for (const std::string& entry : kv.getAll("crash"))
    config.crashes.push_back(parseCrash(entry));
  for (const std::string& entry : kv.getAll("partition")) {
    const auto colon = entry.find(':');
    if (colon == std::string::npos)
      throw std::runtime_error("config: malformed partition '" + entry + "'");
    RaftScenarioConfig::PartitionEvent event;
    event.at = std::stoull(entry.substr(0, colon));
    std::istringstream groups(entry.substr(colon + 1));
    std::string token;
    while (std::getline(groups, token, ','))
      if (!token.empty()) event.groups.push_back(std::stoi(token));
    config.partitions.push_back(std::move(event));
  }
  config.raft.electionTimeoutMin =
      kv.getU64("election-min", config.raft.electionTimeoutMin);
  config.raft.electionTimeoutMax =
      kv.getU64("election-max", config.raft.electionTimeoutMax);
  config.raft.heartbeatInterval =
      kv.getU64("heartbeat", config.raft.heartbeatInterval);
  config.raft.maxEntriesPerAppend =
      kv.getU64("max-append", config.raft.maxEntriesPerAppend);
  config.raft.compactionThreshold =
      kv.getU64("compaction", config.raft.compactionThreshold);
  // Durability keys are absent from configs predating crash-recovery; the
  // fallbacks reproduce the old semantics (no journal, restarts are fresh
  // boots).
  for (const std::string& entry : kv.getAll("restart")) {
    const auto at = entry.find('@');
    const auto plus = entry.find('+', at == std::string::npos ? 0 : at);
    if (at == std::string::npos || plus == std::string::npos)
      throw std::runtime_error("config: malformed restart '" + entry + "'");
    RaftScenarioConfig::RestartEvent event;
    event.id = static_cast<ProcessId>(std::stoul(entry.substr(0, at)));
    event.at = std::stoull(entry.substr(at + 1, plus - at - 1));
    event.downtime = std::stoull(entry.substr(plus + 1));
    config.restarts.push_back(event);
  }
  config.raft.durable =
      kv.getU64("durable", config.raft.durable ? 1 : 0) != 0;
  config.raft.syncBeforeReply =
      kv.getU64("sync-before-reply", config.raft.syncBeforeReply ? 1 : 0) !=
      0;
  config.raft.storage.tornTailProbability =
      kv.getDouble("torn-prob", config.raft.storage.tornTailProbability);
  config.raft.storage.corruptProbability =
      kv.getDouble("corrupt-prob", config.raft.storage.corruptProbability);
  config.adversary = getAdversary(kv);
  config.maxTicks = kv.getU64("max-ticks", config.maxTicks);
  return config;
}

}  // namespace ooc::harness

#include "harness/fault_injection.hpp"

#include <utility>

#include "compose/fault.hpp"

namespace ooc::harness {

DetectorFactory injectFault(DetectorFactory inner, BenOrConfig::Fault fault) {
  // The fault wrappers themselves live with the composition engine
  // (compose/fault.cpp); this shim just maps the legacy enum.
  switch (fault) {
    case BenOrConfig::Fault::kNone:
      return compose::plantFault(std::move(inner),
                                 compose::PlantedFault::kNone);
    case BenOrConfig::Fault::kVacAdoptFlip:
      return compose::plantFault(std::move(inner),
                                 compose::PlantedFault::kVacAdoptFlip);
  }
  return inner;
}

}  // namespace ooc::harness

// Text (de)serialization of the scenario configurations, so that a hostile
// schedule found by the model checker travels as a standalone file: one
// `key=value` pair per line, repeated keys for lists of structured entries
// (crash=pid@tick, partition=tick:g0,g1,...). Parsing is strict — unknown
// keys or malformed values throw — because a counterexample that silently
// loses a field reproduces nothing.
#pragma once

#include <string>

#include "harness/scenarios.hpp"

namespace ooc::harness {

/// Deterministic run identifier for a serialized configuration: a 64-bit
/// FNV-1a hash of the key=value body (which includes the seed), rendered as
/// 16 lowercase hex characters. The same (config, seed) always maps to the
/// same id, so counterexample files, BENCH_*.json metrics and trace_view
/// output can be correlated. Stamp lines (`# run-id=...`) are excluded from
/// the hash, making the id stable under re-serialization.
std::string configRunId(const std::string& serialized);

/// Serialized configs open with a `# run-id=<hex>` stamp line; parsers
/// (old and new) skip `#` comments, so stamped files remain backward and
/// forward compatible.
std::string serialize(const BenOrConfig& config);
std::string serialize(const PhaseKingConfig& config);
std::string serialize(const RaftScenarioConfig& config);

/// All parsers throw std::runtime_error with a line-level message on
/// malformed input.
BenOrConfig parseBenOrConfig(const std::string& text);
PhaseKingConfig parsePhaseKingConfig(const std::string& text);
RaftScenarioConfig parseRaftConfig(const std::string& text);

// Enum <-> string helpers (shared with the check CLI's flag parsing).
// PhaseKingConfig::Placement now aliases compose::Placement, whose
// (to|parse)String helpers live in compose/hooks.hpp; the using-declarations
// keep harness::toString/harness::parsePlacement spelling working.
using compose::toString;
using compose::parsePlacement;
const char* toString(BenOrConfig::Mode mode) noexcept;
const char* toString(BenOrConfig::Reconciliator reconciliator) noexcept;
const char* toString(BenOrConfig::Fault fault) noexcept;
const char* toString(PhaseKingConfig::Algorithm algorithm) noexcept;
BenOrConfig::Mode parseBenOrMode(const std::string& name);
BenOrConfig::Reconciliator parseReconciliator(const std::string& name);
BenOrConfig::Fault parseFault(const std::string& name);
PhaseKingConfig::Algorithm parseAlgorithm(const std::string& name);
phaseking::ByzantineStrategy parseByzantineStrategy(const std::string& name);

}  // namespace ooc::harness

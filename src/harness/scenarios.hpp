// Scenario runners shared by the test suite, the bench binaries and the
// examples: each configures a simulation, runs it to the stop condition and
// distills the observations every consumer wants (decisions, rounds,
// messages, audits).
//
// Everything is deterministic in (config, seed).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "compose/composition.hpp"
#include "compose/hooks.hpp"
#include "core/properties.hpp"
#include "phaseking/byzantine.hpp"
#include "raft/types.hpp"
#include "util/types.hpp"

namespace ooc::harness {

// The instrumentation vocabulary (telemetry sink, run hooks, adversary
// options) moved down into src/compose/ with the generic composition
// runner; these aliases keep every existing harness consumer compiling
// against the same types.
using TelemetrySink = compose::TelemetrySink;
using RunHooks = compose::RunHooks;
using AdversaryOptions = compose::AdversaryOptions;

// ---------------------------------------------------------------------------
// Ben-Or family (asynchronous, crash faults, t < n/2)

struct BenOrConfig {
  std::size_t n = 5;
  /// Protocol parameter t (quorums of n - t). Defaults to floor((n-1)/2).
  std::optional<std::size_t> t;
  /// Inputs per process id; must have size n.
  std::vector<Value> inputs;
  std::uint64_t seed = 1;

  enum class Mode {
    /// BenOrVac + reconciliator under the consensus template (Alg. 1).
    kDecomposed,
    /// Classic monolithic Ben-Or (baseline).
    kMonolithic,
    /// VAC synthesized from two ACs (paper §5 construction) + reconciliator.
    kVacFromTwoAc,
    /// Decentralized-Raft VAC (paper §4.3 remark) + reconciliator.
    kDecentralizedVac,
  };
  Mode mode = Mode::kDecomposed;

  enum class Reconciliator {
    kLocalCoin,
    kCommonCoin,
    kBiasedCoin,
    kKeepValue,
    /// Multivalued: shared per-round lottery over the invokers' values.
    kLottery,
  };
  Reconciliator reconciliator = Reconciliator::kLocalCoin;
  double bias = 0.5;  // for kBiasedCoin

  /// (process, tick) crash schedule.
  std::vector<std::pair<ProcessId, Tick>> crashes;

  Tick minDelay = 1;
  Tick maxDelay = 10;
  Round maxRounds = 5000;
  Tick maxTicks = 5'000'000;

  /// Message-reordering adversary (model checker strategies).
  AdversaryOptions adversary;

  /// Deliberately planted bugs, behind a test-only hook: the model checker
  /// must be able to prove it catches real violations. Template modes only
  /// (the monolithic baseline has no detector to corrupt).
  enum class Fault {
    kNone,
    /// Odd-id processes flip the value of every adopt-level detector
    /// outcome, violating VAC coherence over vacillate & adopt.
    kVacAdoptFlip,
  };
  Fault fault = Fault::kNone;
};

struct BenOrResult {
  bool allDecided = false;
  bool agreementViolated = false;
  bool validityViolated = false;
  Value decidedValue = kNoValue;
  /// Highest decision round among deciders; 0 if nobody decided.
  Round maxDecisionRound = 0;
  double meanDecisionRound = 0.0;
  Tick lastDecisionTick = 0;
  std::uint64_t messagesByCorrect = 0;
  /// Scheduler events executed by the run (bench_simcore's work unit).
  std::uint64_t eventsProcessed = 0;

  /// Per-round object audits (template modes only; empty for monolithic).
  std::vector<RoundAudit> audits;
  bool allAuditsOk = true;

  /// §5 witnesses: completed adopt outcomes whose value differs from the
  /// run's decided value (decide-on-adopt would have broken agreement).
  std::size_t adoptOutcomesTotal = 0;
  std::size_t adoptMismatchWitnesses = 0;
};

BenOrResult runBenOr(const BenOrConfig& config, const RunHooks& hooks = {});

/// Byzantine Ben-Or (extension): asynchronous binary consensus with f
/// planted Byzantine processes, n > 5t detector thresholds.
struct ByzantineBenOrConfig {
  std::size_t n = 11;
  /// Planted attackers (ids at the back).
  std::size_t byzantineCount = 2;
  /// Protocol parameter t; defaults to floor((n-1)/5).
  std::optional<std::size_t> t;
  int strategy = 1;  // benor::AsyncByzantineStrategy as int (header cycle)
  /// Inputs for correct processes (pattern repeats).
  std::vector<Value> inputs = {0, 1};
  std::uint64_t seed = 1;
  Tick minDelay = 1;
  Tick maxDelay = 10;
  Round maxRounds = 4000;
  Tick maxTicks = 5'000'000;
};

BenOrResult runByzantineBenOr(const ByzantineBenOrConfig& config);

// ---------------------------------------------------------------------------
// Phase-King (synchronous lockstep, Byzantine faults, 3t < n)

struct PhaseKingConfig {
  /// Which royal algorithm: Phase-King (3t < n, 3 ticks/round) or the
  /// Phase-Queen extension (4t < n, 2 ticks/round). Queen runs have no
  /// monolithic baseline.
  enum class Algorithm { kKing, kQueen };
  Algorithm algorithm = Algorithm::kKing;

  std::size_t n = 7;
  /// Actual number of Byzantine processes planted.
  std::size_t byzantineCount = 2;
  /// Protocol parameter t. Defaults to floor((n-1)/3) for the king,
  /// floor((n-1)/4) for the queen.
  std::optional<std::size_t> t;
  phaseking::ByzantineStrategy strategy =
      phaseking::ByzantineStrategy::kEquivocate;

  /// Where the Byzantine ids sit. Kings rotate from id 0, so front
  /// placement gives the adversary the first reigns (the hard case).
  using Placement = compose::Placement;
  Placement placement = Placement::kFront;

  /// Inputs for correct processes, by their order among correct ids; if
  /// smaller than the correct count, the pattern repeats.
  std::vector<Value> inputs = {0, 1};
  bool monolithic = false;
  /// Decision rule for the decomposed variant. The paper's template decides
  /// on commit (Algorithm 2); that rule is UNSOUND for Phase-King when a
  /// Byzantine king reigns right after an early commit (the conciliator
  /// lacks validity under a hostile king — see EXPERIMENTS.md). The sound
  /// default decides after t+1 completed rounds, like classic Phase-King.
  bool earlyCommitDecision = false;
  std::uint64_t seed = 1;
  Round maxRounds = 300;
  Tick maxTicks = 100000;
};

struct PhaseKingResult {
  bool allDecided = false;
  bool agreementViolated = false;
  bool validityViolated = false;
  Value decidedValue = kNoValue;
  Round maxDecisionRound = 0;
  Tick lastDecisionTick = 0;
  std::uint64_t messagesByCorrect = 0;
  /// Scheduler events executed by the run (bench_simcore's work unit).
  std::uint64_t eventsProcessed = 0;
  std::vector<RoundAudit> audits;  // decomposed runs only
  bool allAuditsOk = true;
};

PhaseKingResult runPhaseKing(const PhaseKingConfig& config,
                             const RunHooks& hooks = {});

// ---------------------------------------------------------------------------
// Legacy-config lowering. Each template-mode config maps onto a registry
// Composition; the run* entry points above are thin adapters over
// compose::runComposition() and reproduce the historical schedules
// byte-for-byte. Monolithic modes have no detector/driver decomposition
// and throw std::invalid_argument here (they keep bespoke run loops).

compose::Composition toComposition(const BenOrConfig& config);
compose::Composition toComposition(const ByzantineBenOrConfig& config);
compose::Composition toComposition(const PhaseKingConfig& config);

// ---------------------------------------------------------------------------
// Raft (asynchronous with timeouts; crashes, loss, partitions)

struct RaftScenarioConfig {
  std::size_t n = 5;
  std::vector<Value> inputs;  // size n; defaults to id % 2 when empty
  raft::RaftConfig raft;
  std::uint64_t seed = 1;

  Tick minDelay = 1;
  Tick maxDelay = 5;
  double dropProbability = 0.0;
  double duplicateProbability = 0.0;
  std::vector<std::pair<ProcessId, Tick>> crashes;

  /// Crash-restart timeline: process `id` crashes at `at` (losing volatile
  /// state and any unsynced journal writes) and rejoins after `downtime`
  /// ticks with a fresh incarnation. Whether anything survives the restart
  /// is governed by `raft.durable` / `raft.syncBeforeReply`.
  struct RestartEvent {
    ProcessId id = 0;
    Tick at = 0;
    Tick downtime = 50;
  };
  std::vector<RestartEvent> restarts;

  /// Partition timeline: at `at`, impose `groups` (one id per process);
  /// an empty vector heals the network.
  struct PartitionEvent {
    Tick at;
    std::vector<int> groups;
  };
  std::vector<PartitionEvent> partitions;

  /// Message-reordering adversary (model checker strategies).
  AdversaryOptions adversary;

  Tick maxTicks = 300000;
};

struct RaftScenarioResult {
  bool allDecided = false;
  bool agreementViolated = false;
  bool validityViolated = false;
  Value decidedValue = kNoValue;
  Tick firstDecisionTick = 0;
  Tick lastDecisionTick = 0;
  std::uint64_t messages = 0;
  /// Scheduler events executed by the run (bench_simcore's work unit).
  std::uint64_t eventsProcessed = 0;
  std::uint64_t electionsStarted = 0;
  std::uint64_t leaderships = 0;
  std::uint64_t reconciliatorInvocations = 0;

  /// VAC instrumentation (paper Algorithms 10-11): every process's
  /// confidence history must be consistent — commit never precedes adopt,
  /// and all commit-level values agree.
  bool confidenceOrderOk = true;
  bool commitValuesAgree = true;
  std::size_t confidenceTransitions = 0;

  /// Crash-recovery observations (all zero/false without restart events).
  std::uint64_t restarts = 0;
  std::uint64_t messagesDroppedStale = 0;
  std::uint64_t timersPurged = 0;
  std::uint64_t walAppends = 0;
  std::uint64_t walSyncs = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t recoveredRecords = 0;
  std::uint64_t tornTails = 0;
  std::uint64_t corruptRecords = 0;

  /// Durability-violation witnesses, from ground-truth audit trails that
  /// survive restarts (not from any recovered state):
  /// voteAmnesia — some process granted its term-T vote to two different
  /// candidates (across incarnations); the split-brain seed.
  bool voteAmnesia = false;
  std::string voteAmnesiaDetail;
  /// commitRegression — some process applied/learned two different
  /// committed values across incarnations.
  bool commitRegression = false;
  std::string commitRegressionDetail;
};

RaftScenarioResult runRaft(const RaftScenarioConfig& config,
                           const RunHooks& hooks = {});

}  // namespace ooc::harness

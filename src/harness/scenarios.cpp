#include "harness/scenarios.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "benor/async_byzantine.hpp"
#include "harness/fault_injection.hpp"
#include "benor/byzantine_vac.hpp"
#include "benor/monolithic.hpp"
#include "benor/reconciliators.hpp"
#include "benor/vac.hpp"
#include "core/consensus_process.hpp"
#include "core/vac_from_ac.hpp"
#include "harness/serialize.hpp"
#include "obs/metrics.hpp"
#include "phaseking/adopt_commit.hpp"
#include "phaseking/conciliator.hpp"
#include "phaseking/monolithic.hpp"
#include "phaseking/queen.hpp"
#include "raft/consensus.hpp"
#include "raft/decentralized.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace ooc::harness {
namespace {

DriverFactory makeReconciliator(const BenOrConfig& config) {
  switch (config.reconciliator) {
    case BenOrConfig::Reconciliator::kLocalCoin:
      return benor::CoinReconciliator::factory();
    case BenOrConfig::Reconciliator::kCommonCoin:
      // The shared coin is derived from the run seed: common to all
      // processes, independent across rounds and across runs.
      return benor::CommonCoinReconciliator::factory(config.seed ^
                                                     0x5EEDC01Dull);
    case BenOrConfig::Reconciliator::kBiasedCoin:
      return benor::BiasedCoinReconciliator::factory(config.bias);
    case BenOrConfig::Reconciliator::kKeepValue:
      return benor::KeepValueReconciliator::factory();
    case BenOrConfig::Reconciliator::kLottery: {
      const std::size_t t =
          config.t.value_or(config.n == 0 ? 0 : (config.n - 1) / 2);
      return benor::LotteryReconciliator::factory(t,
                                                  config.seed ^ 0x107734ull);
    }
  }
  throw std::logic_error("unknown reconciliator");
}

DetectorFactory makeBenOrDetector(const BenOrConfig& config, std::size_t t) {
  switch (config.mode) {
    case BenOrConfig::Mode::kDecomposed:
      return benor::BenOrVac::factory(t);
    case BenOrConfig::Mode::kVacFromTwoAc:
      // AC obtained by downgrading Ben-Or's VAC (vacillate -> adopt), then
      // VAC re-synthesized from two such ACs: the §5 constructions stacked.
      return VacFromTwoAc::liftFactory(
          AcFromVac::liftFactory(benor::BenOrVac::factory(t)));
    case BenOrConfig::Mode::kDecentralizedVac:
      return raft::DecentralizedRaftVac::factory(t);
    case BenOrConfig::Mode::kMonolithic:
      throw std::logic_error("monolithic mode has no detector");
  }
  throw std::logic_error("unknown mode");
}

// ---------------------------------------------------------------------------
// Telemetry publication (src/obs/): one flush per run, guarded by
// obs::enabled() so a disabled-telemetry sweep pays one relaxed atomic
// load per run.

/// Bounds the `round` label cardinality: long runs (Ben-Or can take
/// hundreds of rounds on adversarial seeds) collapse into one tail label.
std::string roundLabel(Round m) {
  return m <= 32 ? std::to_string(m) : std::string("33+");
}

obs::Labels withLabel(obs::Labels base, const char* key, std::string value) {
  base.emplace_back(key, std::move(value));
  return base;
}

/// Simulator/network counters, flushed once per run under `base` labels.
void publishSimMetrics(const Simulator& sim, const obs::Labels& base) {
  auto& registry = obs::metrics();
  registry.addCounter("runs", 1, base);
  registry.addCounter("events_executed", sim.eventsProcessed(), base);
  registry.addCounter("messages_sent", sim.messagesSent(), base);
  registry.addCounter("messages_delivered", sim.messagesDelivered(), base);
  registry.addCounter("messages_dropped", sim.messagesDropped(), base);
  registry.addCounter("messages_duplicated", sim.messagesDuplicated(), base);
  // Deep payload copies made by the simulator; 0 on the post()/fanout()
  // path, so any growth here is a copy regression on the hot path.
  registry.addCounter("messages_cloned", sim.messagesCloned(), base);
  registry.addCounter("timers_armed", sim.timersArmed(), base);
  registry.addCounter("timers_cancelled", sim.timersCancelled(), base);
  registry.addCounter("timers_fired", sim.timersFired(), base);
  registry.addCounter("restarts", sim.restarts(), base);
  registry.addCounter("messages_dropped_stale", sim.messagesDroppedStale(),
                      base);
  registry.addCounter("timers_purged_on_crash", sim.timersPurgedOnCrash(),
                      base);
}

/// Decision latency in simulated ticks, one sample per decided process.
void publishDecisionTicks(const Simulator& sim, const obs::Labels& base) {
  auto& registry = obs::metrics();
  for (ProcessId id = 0; id < sim.processCount(); ++id) {
    if (sim.faulty(id)) continue;
    const auto& decision = sim.decision(id);
    if (decision.decided)
      registry.observe("ticks_to_decide", static_cast<double>(decision.at),
                       base);
  }
}

/// Per-round object telemetry of template processes: VAC/AC confidence
/// transition counts keyed by (confidence, round), driver invocation
/// counts, and the rounds-to-decide distribution. Null entries (Byzantine
/// slots) are skipped.
void publishTemplateMetrics(const std::vector<ConsensusProcess*>& processes,
                            const obs::Labels& base) {
  auto& registry = obs::metrics();
  for (const ConsensusProcess* process : processes) {
    if (process == nullptr) continue;
    Round m = 0;
    for (const RoundRecord& record : process->rounds()) {
      ++m;
      if (record.detectorOutcome) {
        registry.addCounter(
            "confidence_transitions", 1,
            withLabel(withLabel(base, "confidence",
                                toString(record.detectorOutcome->confidence)),
                      "round", roundLabel(m)));
      }
      if (record.driverValue)
        registry.addCounter("driver_invocations", 1,
                            withLabel(base, "round", roundLabel(m)));
    }
    if (process->decided())
      registry.observe("rounds_to_decide",
                       static_cast<double>(process->decisionRound()), base);
  }
}

/// Wires a TelemetrySink (when present) into a template process's options,
/// binding the process id the simulator will assign next.
void wireTelemetry(ConsensusProcess::Options& options, TelemetrySink* sink,
                   ProcessId id) {
  if (sink == nullptr) return;
  options.onDetectorOutcome = [sink, id](Round m, const Outcome& outcome,
                                         Tick at) {
    sink->onDetectorOutcome(id, m, outcome, at);
  };
  options.onDriverValue = [sink, id](Round m, Value value, Tick at) {
    sink->onDriverValue(id, m, value, at);
  };
}

/// Applies the configured message-reordering adversary, if any.
std::unique_ptr<NetworkModel> wrapAdversary(std::unique_ptr<NetworkModel> net,
                                            const AdversaryOptions& options) {
  if (!options.enabled()) return net;
  DelayAdversaryNetwork::Options adv;
  adv.seed = options.seed;
  adv.extraDelayMax = options.extraDelayMax;
  adv.perturbProbability = options.perturbProbability;
  return std::make_unique<DelayAdversaryNetwork>(std::move(net), adv);
}

}  // namespace

BenOrResult runBenOr(const BenOrConfig& config, const RunHooks& hooks) {
  if (config.inputs.size() != config.n)
    throw std::invalid_argument("inputs must have size n");
  const std::size_t t =
      config.t.value_or(config.n == 0 ? 0 : (config.n - 1) / 2);

  SimConfig simConfig;
  simConfig.seed = config.seed;
  simConfig.maxTicks = config.maxTicks;
  UniformDelayNetwork::Options net;
  net.minDelay = config.minDelay;
  net.maxDelay = config.maxDelay;
  Simulator sim(simConfig,
                wrapAdversary(std::make_unique<UniformDelayNetwork>(net),
                              config.adversary));
  if (hooks.observer) sim.setScheduleObserver(hooks.observer);

  std::vector<ConsensusProcess*> templated;
  std::vector<benor::MonolithicBenOr*> classic;

  for (ProcessId id = 0; id < config.n; ++id) {
    if (config.mode == BenOrConfig::Mode::kMonolithic) {
      auto process = std::make_unique<benor::MonolithicBenOr>(
          config.inputs[id], t, config.maxRounds);
      classic.push_back(process.get());
      sim.addProcess(std::move(process));
    } else {
      ConsensusProcess::Options options;
      options.kind = TemplateKind::kVacReconciliator;
      options.maxRounds = config.maxRounds;
      // The lottery is a quorum-waiting driver: everyone must join the
      // drive wave each round (see LotteryReconciliator).
      options.alwaysRunDriver =
          config.reconciliator == BenOrConfig::Reconciliator::kLottery;
      wireTelemetry(options, hooks.telemetry, id);
      auto process = std::make_unique<ConsensusProcess>(
          config.inputs[id],
          injectFault(makeBenOrDetector(config, t), config.fault),
          makeReconciliator(config), options);
      templated.push_back(process.get());
      sim.addProcess(std::move(process));
    }
  }

  sim.setValidValues(config.inputs);
  for (const auto& [id, tick] : config.crashes) sim.crashAt(id, tick);
  sim.stopWhenAllCorrectDecided();
  sim.run();

  BenOrResult result;
  result.allDecided = sim.allCorrectDecided();
  result.agreementViolated = sim.agreementViolated();
  result.validityViolated = sim.validityViolated();
  result.messagesByCorrect = sim.messagesSentByCorrect();
  result.eventsProcessed = sim.eventsProcessed();

  Summary decisionRounds;
  for (ProcessId id = 0; id < config.n; ++id) {
    const auto& decision = sim.decision(id);
    if (!decision.decided) continue;
    result.decidedValue = decision.value;
    result.lastDecisionTick = std::max(result.lastDecisionTick, decision.at);
    const Round round =
        config.mode == BenOrConfig::Mode::kMonolithic
            ? classic[id]->decisionRound()
            : templated[id]->decisionRound();
    result.maxDecisionRound = std::max(result.maxDecisionRound, round);
    decisionRounds.add(static_cast<double>(round));
  }
  if (!decisionRounds.empty())
    result.meanDecisionRound = decisionRounds.mean();

  if (obs::enabled()) {
    const obs::Labels base = {{"family", "benor"},
                              {"mode", toString(config.mode)}};
    publishSimMetrics(sim, base);
    publishDecisionTicks(sim, base);
    publishTemplateMetrics(templated, base);
    if (config.mode == BenOrConfig::Mode::kMonolithic) {
      for (const benor::MonolithicBenOr* process : classic)
        if (process->decided())
          obs::metrics().observe(
              "rounds_to_decide",
              static_cast<double>(process->decisionRound()), base);
    }
  }

  if (config.mode != BenOrConfig::Mode::kMonolithic) {
    // Crashed processes participated in the rounds they started (they
    // invoked the objects with their inputs), so they belong in the audit;
    // their unfinished rounds contribute inputs but no outcome.
    std::vector<const ConsensusProcess*> correct(templated.begin(),
                                                 templated.end());
    result.audits = auditAllRounds(correct);
    result.allAuditsOk =
        std::all_of(result.audits.begin(), result.audits.end(),
                    [](const RoundAudit& a) { return a.ok(); });

    // §5 witnesses (E9): adopt-level outcomes whose value disagrees with
    // the final decision.
    if (result.allDecided) {
      for (const ConsensusProcess* process : correct) {
        for (const RoundRecord& record : process->rounds()) {
          if (!record.detectorOutcome ||
              record.detectorOutcome->confidence != Confidence::kAdopt) {
            continue;
          }
          ++result.adoptOutcomesTotal;
          if (record.detectorOutcome->value != result.decidedValue)
            ++result.adoptMismatchWitnesses;
        }
      }
    }
  }
  return result;
}

BenOrResult runByzantineBenOr(const ByzantineBenOrConfig& config) {
  const std::size_t n = config.n;
  const std::size_t f = config.byzantineCount;
  if (f > n) throw std::invalid_argument("more Byzantine than processes");
  const std::size_t t = config.t.value_or(n == 0 ? 0 : (n - 1) / 5);

  SimConfig simConfig;
  simConfig.seed = config.seed;
  simConfig.maxTicks = config.maxTicks;
  UniformDelayNetwork::Options net;
  net.minDelay = config.minDelay;
  net.maxDelay = config.maxDelay;
  Simulator sim(simConfig, std::make_unique<UniformDelayNetwork>(net));

  std::vector<ConsensusProcess*> templated;
  std::vector<Value> validInputs;
  std::size_t correctSeen = 0;
  for (ProcessId id = 0; id < n; ++id) {
    if (id >= n - f) {  // attackers at the back
      sim.addProcess(
          std::make_unique<benor::AsyncByzantine>(
              static_cast<benor::AsyncByzantineStrategy>(config.strategy)),
          /*faulty=*/true);
      continue;
    }
    const Value input =
        config.inputs[correctSeen++ % config.inputs.size()];
    validInputs.push_back(input);
    ConsensusProcess::Options options;
    options.kind = TemplateKind::kVacReconciliator;
    options.maxRounds = config.maxRounds;
    auto process = std::make_unique<ConsensusProcess>(
        input, benor::ByzantineBenOrVac::factory(t),
        benor::CoinReconciliator::factory(), options);
    templated.push_back(process.get());
    sim.addProcess(std::move(process));
  }

  sim.setValidValues(validInputs);
  sim.stopWhenAllCorrectDecided();
  sim.run();

  BenOrResult result;
  result.allDecided = sim.allCorrectDecided();
  result.agreementViolated = sim.agreementViolated();
  result.validityViolated = sim.validityViolated();
  result.messagesByCorrect = sim.messagesSentByCorrect();
  result.eventsProcessed = sim.eventsProcessed();
  Summary decisionRounds;
  for (std::size_t i = 0; i < templated.size(); ++i) {
    if (!templated[i]->decided()) continue;
    result.decidedValue = templated[i]->decisionValue();
    result.maxDecisionRound =
        std::max(result.maxDecisionRound, templated[i]->decisionRound());
    decisionRounds.add(static_cast<double>(templated[i]->decisionRound()));
  }
  if (!decisionRounds.empty())
    result.meanDecisionRound = decisionRounds.mean();

  if (obs::enabled()) {
    const obs::Labels base = {{"family", "benor-byzantine"}};
    publishSimMetrics(sim, base);
    publishDecisionTicks(sim, base);
    publishTemplateMetrics(templated, base);
  }

  std::vector<const ConsensusProcess*> correct(templated.begin(),
                                               templated.end());
  result.audits = auditAllRounds(correct);
  result.allAuditsOk =
      std::all_of(result.audits.begin(), result.audits.end(),
                  [](const RoundAudit& a) { return a.ok(); });
  return result;
}

// ---------------------------------------------------------------------------

PhaseKingResult runPhaseKing(const PhaseKingConfig& config,
                             const RunHooks& hooks) {
  const bool queen = config.algorithm == PhaseKingConfig::Algorithm::kQueen;
  const std::size_t n = config.n;
  const std::size_t f = config.byzantineCount;
  const std::size_t t =
      config.t.value_or(n == 0 ? 0 : (n - 1) / (queen ? 4 : 3));
  if (f > n) throw std::invalid_argument("more Byzantine than processes");
  if (queen && config.monolithic)
    throw std::invalid_argument("Phase-Queen has no monolithic baseline");

  // Choose Byzantine ids per placement.
  std::vector<bool> isByz(n, false);
  switch (config.placement) {
    case PhaseKingConfig::Placement::kFront:
      for (std::size_t i = 0; i < f; ++i) isByz[i] = true;
      break;
    case PhaseKingConfig::Placement::kBack:
      for (std::size_t i = 0; i < f; ++i) isByz[n - 1 - i] = true;
      break;
    case PhaseKingConfig::Placement::kSpread:
      for (std::size_t i = 0; i < f; ++i) isByz[(i * n) / f] = true;
      break;
  }

  SimConfig simConfig;
  simConfig.seed = config.seed;
  simConfig.lockstep = true;
  simConfig.maxTicks = config.maxTicks;
  Simulator sim(simConfig, std::make_unique<SynchronousNetwork>());
  if (hooks.observer) sim.setScheduleObserver(hooks.observer);

  std::vector<ConsensusProcess*> templated(n, nullptr);
  std::vector<Value> validInputs;
  std::size_t correctSeen = 0;

  for (ProcessId id = 0; id < n; ++id) {
    if (isByz[id]) {
      if (queen) {
        sim.addProcess(
            std::make_unique<phaseking::PhaseQueenByzantine>(config.strategy),
            /*faulty=*/true);
      } else {
        const auto wire =
            config.monolithic ? phaseking::PhaseKingByzantine::Wire::kClassic
                              : phaseking::PhaseKingByzantine::Wire::kTemplate;
        sim.addProcess(std::make_unique<phaseking::PhaseKingByzantine>(
                           config.strategy, wire),
                       /*faulty=*/true);
      }
      continue;
    }
    const Value input =
        config.inputs.empty()
            ? static_cast<Value>(correctSeen % 2)
            : config.inputs[correctSeen % config.inputs.size()];
    ++correctSeen;
    validInputs.push_back(input);

    if (config.monolithic) {
      sim.addProcess(
          std::make_unique<phaseking::MonolithicPhaseKing>(input, t));
    } else {
      ConsensusProcess::Options options;
      options.kind = TemplateKind::kAcConciliator;
      options.alwaysRunDriver = true;  // lockstep: king phase every round
      options.maxRounds = config.maxRounds;
      if (config.earlyCommitDecision) {
        options.decideOnCommit = true;  // paper-faithful, unsound corner
      } else {
        options.decideOnCommit = false;  // classic: fixed t+1 phases
        options.decideAfterRound = static_cast<Round>(t + 1);
      }
      wireTelemetry(options, hooks.telemetry, id);
      auto process = std::make_unique<ConsensusProcess>(
          input,
          queen ? phaseking::PhaseQueenAc::factory(t)
                : phaseking::PhaseKingAc::factory(t),
          queen ? phaseking::QueenConciliator::factory()
                : phaseking::KingConciliator::factory(),
          options);
      templated[id] = process.get();
      sim.addProcess(std::move(process));
    }
  }

  sim.setValidValues(validInputs);
  sim.stopWhenAllCorrectDecided();
  sim.run();

  PhaseKingResult result;
  result.allDecided = sim.allCorrectDecided();
  result.agreementViolated = sim.agreementViolated();
  result.validityViolated = sim.validityViolated();
  result.messagesByCorrect = sim.messagesSentByCorrect();
  result.eventsProcessed = sim.eventsProcessed();

  for (ProcessId id = 0; id < n; ++id) {
    if (isByz[id]) continue;
    const auto& decision = sim.decision(id);
    if (!decision.decided) continue;
    result.decidedValue = decision.value;
    result.lastDecisionTick = std::max(result.lastDecisionTick, decision.at);
    if (!config.monolithic) {
      result.maxDecisionRound =
          std::max(result.maxDecisionRound, templated[id]->decisionRound());
    }
  }

  if (obs::enabled()) {
    const obs::Labels base = {
        {"family", "phaseking"},
        {"algorithm", queen ? "queen" : "king"},
        {"mode", config.monolithic ? "monolithic" : "decomposed"}};
    publishSimMetrics(sim, base);
    publishDecisionTicks(sim, base);
    publishTemplateMetrics(templated, base);
  }

  if (!config.monolithic) {
    std::vector<const ConsensusProcess*> correct;
    for (ProcessId id = 0; id < n; ++id)
      if (!isByz[id]) correct.push_back(templated[id]);
    AuditOptions auditOptions;
    auditOptions.requireAdoptValidity = false;  // the documented sentinel gap
    // Phase-King's detector is an adopt-commit object: adopt values may
    // disagree in commit-free rounds (VAC-only property does not apply).
    auditOptions.checkVacillateAdoptCoherence = false;
    result.audits = auditAllRounds(correct, auditOptions);
    result.allAuditsOk =
        std::all_of(result.audits.begin(), result.audits.end(),
                    [](const RoundAudit& a) { return a.ok(); });
  }
  return result;
}

// ---------------------------------------------------------------------------

RaftScenarioResult runRaft(const RaftScenarioConfig& config,
                           const RunHooks& hooks) {
  SimConfig simConfig;
  simConfig.seed = config.seed;
  simConfig.maxTicks = config.maxTicks;

  UniformDelayNetwork::Options net;
  net.minDelay = config.minDelay;
  net.maxDelay = config.maxDelay;
  net.dropProbability = config.dropProbability;
  net.duplicateProbability = config.duplicateProbability;
  auto partitioned = std::make_unique<PartitionedNetwork>(wrapAdversary(
      std::make_unique<UniformDelayNetwork>(net), config.adversary));
  PartitionedNetwork* networkHandle = partitioned.get();
  Simulator sim(simConfig, std::move(partitioned));
  if (hooks.observer) sim.setScheduleObserver(hooks.observer);

  std::vector<Value> inputs = config.inputs;
  if (inputs.empty()) {
    inputs.resize(config.n);
    for (ProcessId id = 0; id < config.n; ++id)
      inputs[id] = static_cast<Value>(id % 2);
  }

  std::vector<raft::RaftConsensus*> nodes;
  for (ProcessId id = 0; id < config.n; ++id) {
    auto node =
        std::make_unique<raft::RaftConsensus>(inputs[id], config.raft);
    nodes.push_back(node.get());
    sim.addProcess(std::move(node));
  }

  sim.setValidValues(inputs);
  for (const auto& [id, tick] : config.crashes) sim.crashAt(id, tick);
  for (const auto& event : config.restarts)
    sim.restartAt(event.id, event.at, event.downtime);
  for (const auto& event : config.partitions) {
    sim.schedule(event.at, [networkHandle, groups = event.groups] {
      if (groups.empty()) {
        networkHandle->clearPartition();
      } else {
        networkHandle->setPartition(groups);
      }
    });
  }
  sim.stopWhenAllCorrectDecided();
  sim.run();

  RaftScenarioResult result;
  result.allDecided = sim.allCorrectDecided();
  result.agreementViolated = sim.agreementViolated();
  result.validityViolated = sim.validityViolated();
  result.messages = sim.messagesSent();
  result.eventsProcessed = sim.eventsProcessed();

  result.firstDecisionTick = 0;
  bool first = true;
  for (ProcessId id = 0; id < config.n; ++id) {
    const auto& decision = sim.decision(id);
    if (decision.decided) {
      result.decidedValue = decision.value;
      result.lastDecisionTick =
          std::max(result.lastDecisionTick, decision.at);
      if (first || decision.at < result.firstDecisionTick)
        result.firstDecisionTick = decision.at;
      first = false;
    }
    result.electionsStarted += nodes[id]->electionsStarted();
    result.leaderships += nodes[id]->timesElectedLeader();
    result.reconciliatorInvocations += nodes[id]->reconciliatorInvocations();

    // VAC instrumentation checks (Algorithms 10-11): within each term the
    // order must be vacillate <= adopt <= commit, and commit values agree.
    const auto& log = nodes[id]->confidenceLog();
    result.confidenceTransitions += log.size();
    bool sawAdoptThisTerm = false;
    raft::Term term = 0;
    for (const auto& change : log) {
      if (change.term != term) {
        term = change.term;
        sawAdoptThisTerm = false;
      }
      if (change.confidence == Confidence::kAdopt) sawAdoptThisTerm = true;
      if (change.confidence == Confidence::kCommit && !sawAdoptThisTerm) {
        // A follower may learn of a commit without having accepted the
        // entry in the same term — that is adopt-level knowledge arriving
        // fused with commit-level knowledge. It still must never happen
        // before ANY adopt-level evidence exists at this process.
        bool sawAdoptEver = false;
        for (const auto& earlier : log) {
          if (&earlier == &change) break;
          if (earlier.confidence != Confidence::kVacillate)
            sawAdoptEver = true;
        }
        if (!sawAdoptEver) result.confidenceOrderOk = false;
      }
    }
  }

  // Commit-level values must agree across processes.
  Value committed = kNoValue;
  for (const raft::RaftConsensus* node : nodes) {
    for (const auto& change : node->confidenceLog()) {
      if (change.confidence != Confidence::kCommit) continue;
      if (committed == kNoValue) {
        committed = change.value;
      } else if (change.value != committed) {
        result.commitValuesAgree = false;
      }
    }
  }

  // Crash-recovery observations: simulator-side restart counters plus
  // per-node journal statistics.
  result.restarts = sim.restarts();
  result.messagesDroppedStale = sim.messagesDroppedStale();
  result.timersPurged = sim.timersPurgedOnCrash();
  for (const raft::RaftConsensus* node : nodes) {
    if (const store::WriteAheadLog* wal = node->wal()) {
      result.walAppends += wal->appends();
      result.walSyncs += wal->syncs();
    }
    result.recoveries += node->recoveries();
    result.recoveredRecords += node->lastRecovery().recordsRecovered;
    result.tornTails += node->lastRecovery().tornTail ? 1 : 0;
    result.corruptRecords += node->lastRecovery().corruptRecords;
  }

  // Durability-violation audits over the ground-truth histories (which
  // survive restarts by construction — they model an outside observer).
  // Vote amnesia: one process, one term, two candidates.
  for (ProcessId id = 0; id < config.n && !result.voteAmnesia; ++id) {
    std::unordered_map<raft::Term, ProcessId> granted;
    for (const auto& vote : nodes[id]->voteHistory()) {
      auto [it, inserted] = granted.emplace(vote.term, vote.candidate);
      if (!inserted && it->second != vote.candidate) {
        result.voteAmnesia = true;
        result.voteAmnesiaDetail =
            "p" + std::to_string(id) + " voted for p" +
            std::to_string(it->second) + " and p" +
            std::to_string(vote.candidate) + " in term " +
            std::to_string(vote.term);
        break;
      }
    }
  }
  // Committed-entry regression: one process observed two different
  // committed values across its incarnations.
  for (ProcessId id = 0; id < config.n && !result.commitRegression; ++id) {
    const auto& history = nodes[id]->decisionHistory();
    for (std::size_t i = 1; i < history.size(); ++i) {
      if (history[i] != history.front()) {
        result.commitRegression = true;
        result.commitRegressionDetail =
            "p" + std::to_string(id) + " committed value " +
            std::to_string(history.front()) + " then value " +
            std::to_string(history[i]);
        break;
      }
    }
  }

  // Replay the recorded confidence transitions (they carry their tick) to
  // the telemetry sink; the timeline renderer orders them by tick.
  if (hooks.telemetry) {
    for (ProcessId id = 0; id < config.n; ++id) {
      for (const auto& change : nodes[id]->confidenceLog()) {
        hooks.telemetry->onDetectorOutcome(
            id, static_cast<Round>(change.term),
            Outcome{change.confidence, change.value}, change.at);
      }
    }
  }

  if (obs::enabled()) {
    auto& registry = obs::metrics();
    const obs::Labels base = {{"family", "raft"}};
    publishSimMetrics(sim, base);
    publishDecisionTicks(sim, base);
    registry.addCounter("elections_started", result.electionsStarted, base);
    registry.addCounter("leaderships", result.leaderships, base);
    registry.addCounter("driver_invocations",
                        result.reconciliatorInvocations, base);
    if (config.raft.durable) {
      registry.addCounter("wal_appends", result.walAppends, base);
      registry.addCounter("wal_syncs", result.walSyncs, base);
      registry.addCounter("recoveries", result.recoveries, base);
      registry.addCounter("wal_records_recovered", result.recoveredRecords,
                          base);
      registry.addCounter("wal_torn_tails", result.tornTails, base);
      registry.addCounter("wal_corrupt_records", result.corruptRecords,
                          base);
    }
    for (ProcessId id = 0; id < config.n; ++id) {
      const auto& log = nodes[id]->confidenceLog();
      for (const auto& change : log) {
        registry.addCounter(
            "confidence_transitions", 1,
            withLabel(withLabel(base, "confidence",
                                toString(change.confidence)),
                      "round",
                      roundLabel(static_cast<Round>(change.term))));
      }
      // Rounds-to-decide analogue: the term in which this node first saw
      // commit-level confidence.
      if (sim.decision(id).decided) {
        for (const auto& change : log) {
          if (change.confidence == Confidence::kCommit) {
            registry.observe("rounds_to_decide",
                             static_cast<double>(change.term), base);
            break;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace ooc::harness

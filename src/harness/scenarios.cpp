#include "harness/scenarios.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "benor/async_byzantine.hpp"
#include "benor/monolithic.hpp"
#include "compose/run.hpp"
#include "compose/telemetry.hpp"
#include "harness/serialize.hpp"
#include "obs/metrics.hpp"
#include "phaseking/monolithic.hpp"
#include "raft/consensus.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace ooc::harness {
namespace {

// The per-protocol run loops that used to live here merged into
// compose::runComposition(); the entry points below lower their configs
// into a Composition and delegate. Only the monolithic baselines (no
// detector/driver split to compose) and Raft (leader-driven, with
// restarts/partitions/WAL instrumentation) keep bespoke loops, built on
// the shared telemetry helpers re-exported by compose/telemetry.hpp.
using compose::publishDecisionTicks;
using compose::publishSimMetrics;
using compose::publishTemplateMetrics;
using compose::roundLabel;
using compose::withLabel;
using compose::wrapAdversary;

const char* detectorName(BenOrConfig::Mode mode) {
  switch (mode) {
    case BenOrConfig::Mode::kDecomposed: return "benor-vac";
    case BenOrConfig::Mode::kVacFromTwoAc: return "vac-from-two-ac";
    case BenOrConfig::Mode::kDecentralizedVac: return "decentralized-vac";
    case BenOrConfig::Mode::kMonolithic:
      throw std::logic_error("monolithic mode has no detector");
  }
  throw std::logic_error("unknown mode");
}

const char* driverName(BenOrConfig::Reconciliator reconciliator) {
  switch (reconciliator) {
    case BenOrConfig::Reconciliator::kLocalCoin: return "local-coin";
    case BenOrConfig::Reconciliator::kCommonCoin: return "common-coin";
    case BenOrConfig::Reconciliator::kBiasedCoin: return "biased-coin";
    case BenOrConfig::Reconciliator::kKeepValue: return "keep-value";
    case BenOrConfig::Reconciliator::kLottery: return "lottery";
  }
  throw std::logic_error("unknown reconciliator");
}

compose::PlantedFault lowerFault(BenOrConfig::Fault fault) {
  return fault == BenOrConfig::Fault::kVacAdoptFlip
             ? compose::PlantedFault::kVacAdoptFlip
             : compose::PlantedFault::kNone;
}

BenOrResult fromComposition(const compose::CompositionResult& run) {
  BenOrResult result;
  result.allDecided = run.allDecided;
  result.agreementViolated = run.agreementViolated;
  result.validityViolated = run.validityViolated;
  result.decidedValue = run.decidedValue;
  result.maxDecisionRound = run.maxDecisionRound;
  result.meanDecisionRound = run.meanDecisionRound;
  result.lastDecisionTick = run.lastDecisionTick;
  result.messagesByCorrect = run.messagesByCorrect;
  result.eventsProcessed = run.eventsProcessed;
  result.audits = run.audits;
  result.allAuditsOk = run.allAuditsOk;
  result.adoptOutcomesTotal = run.adoptOutcomesTotal;
  result.adoptMismatchWitnesses = run.adoptMismatchWitnesses;
  return result;
}

/// Classic monolithic Ben-Or: no detector/driver split, so no Composition —
/// the baseline keeps its own loop.
BenOrResult runMonolithicBenOr(const BenOrConfig& config,
                               const RunHooks& hooks) {
  const std::size_t t =
      config.t.value_or(config.n == 0 ? 0 : (config.n - 1) / 2);

  SimConfig simConfig;
  simConfig.seed = config.seed;
  simConfig.maxTicks = config.maxTicks;
  UniformDelayNetwork::Options net;
  net.minDelay = config.minDelay;
  net.maxDelay = config.maxDelay;
  Simulator sim(simConfig,
                wrapAdversary(std::make_unique<UniformDelayNetwork>(net),
                              config.adversary));
  if (hooks.observer) sim.setScheduleObserver(hooks.observer);

  std::vector<benor::MonolithicBenOr*> classic;
  for (ProcessId id = 0; id < config.n; ++id) {
    auto process = std::make_unique<benor::MonolithicBenOr>(
        config.inputs[id], t, config.maxRounds);
    classic.push_back(process.get());
    sim.addProcess(std::move(process));
  }

  sim.setValidValues(config.inputs);
  for (const auto& [id, tick] : config.crashes) sim.crashAt(id, tick);
  sim.stopWhenAllCorrectDecided();
  sim.run();

  BenOrResult result;
  result.allDecided = sim.allCorrectDecided();
  result.agreementViolated = sim.agreementViolated();
  result.validityViolated = sim.validityViolated();
  result.messagesByCorrect = sim.messagesSentByCorrect();
  result.eventsProcessed = sim.eventsProcessed();

  Summary decisionRounds;
  for (ProcessId id = 0; id < config.n; ++id) {
    const auto& decision = sim.decision(id);
    if (!decision.decided) continue;
    result.decidedValue = decision.value;
    result.lastDecisionTick = std::max(result.lastDecisionTick, decision.at);
    const Round round = classic[id]->decisionRound();
    result.maxDecisionRound = std::max(result.maxDecisionRound, round);
    decisionRounds.add(static_cast<double>(round));
  }
  if (!decisionRounds.empty())
    result.meanDecisionRound = decisionRounds.mean();

  if (obs::enabled()) {
    const obs::Labels base = {{"family", "benor"},
                              {"mode", toString(config.mode)}};
    publishSimMetrics(sim, base);
    publishDecisionTicks(sim, base);
    for (const benor::MonolithicBenOr* process : classic)
      if (process->decided())
        obs::metrics().observe("rounds_to_decide",
                               static_cast<double>(process->decisionRound()),
                               base);
  }
  return result;
}

/// Classic monolithic Phase-King baseline (Byzantine peers speak the
/// classic wire format).
PhaseKingResult runMonolithicPhaseKing(const PhaseKingConfig& config,
                                       const RunHooks& hooks) {
  const std::size_t n = config.n;
  const std::size_t f = config.byzantineCount;
  const std::size_t t = config.t.value_or(n == 0 ? 0 : (n - 1) / 3);
  if (f > n) throw std::invalid_argument("more Byzantine than processes");

  std::vector<bool> isByz(n, false);
  switch (config.placement) {
    case PhaseKingConfig::Placement::kFront:
      for (std::size_t i = 0; i < f; ++i) isByz[i] = true;
      break;
    case PhaseKingConfig::Placement::kBack:
      for (std::size_t i = 0; i < f; ++i) isByz[n - 1 - i] = true;
      break;
    case PhaseKingConfig::Placement::kSpread:
      for (std::size_t i = 0; i < f; ++i) isByz[(i * n) / f] = true;
      break;
  }

  SimConfig simConfig;
  simConfig.seed = config.seed;
  simConfig.lockstep = true;
  simConfig.maxTicks = config.maxTicks;
  Simulator sim(simConfig, std::make_unique<SynchronousNetwork>());
  if (hooks.observer) sim.setScheduleObserver(hooks.observer);

  std::vector<Value> validInputs;
  std::size_t correctSeen = 0;
  for (ProcessId id = 0; id < n; ++id) {
    if (isByz[id]) {
      sim.addProcess(std::make_unique<phaseking::PhaseKingByzantine>(
                         config.strategy,
                         phaseking::PhaseKingByzantine::Wire::kClassic),
                     /*faulty=*/true);
      continue;
    }
    const Value input =
        config.inputs.empty()
            ? static_cast<Value>(correctSeen % 2)
            : config.inputs[correctSeen % config.inputs.size()];
    ++correctSeen;
    validInputs.push_back(input);
    sim.addProcess(std::make_unique<phaseking::MonolithicPhaseKing>(input, t));
  }

  sim.setValidValues(validInputs);
  sim.stopWhenAllCorrectDecided();
  sim.run();

  PhaseKingResult result;
  result.allDecided = sim.allCorrectDecided();
  result.agreementViolated = sim.agreementViolated();
  result.validityViolated = sim.validityViolated();
  result.messagesByCorrect = sim.messagesSentByCorrect();
  result.eventsProcessed = sim.eventsProcessed();
  for (ProcessId id = 0; id < n; ++id) {
    if (isByz[id]) continue;
    const auto& decision = sim.decision(id);
    if (!decision.decided) continue;
    result.decidedValue = decision.value;
    result.lastDecisionTick = std::max(result.lastDecisionTick, decision.at);
  }

  if (obs::enabled()) {
    const obs::Labels base = {{"family", "phaseking"},
                              {"algorithm", "king"},
                              {"mode", "monolithic"}};
    publishSimMetrics(sim, base);
    publishDecisionTicks(sim, base);
  }
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// Legacy-config lowering

compose::Composition toComposition(const BenOrConfig& config) {
  if (config.inputs.size() != config.n)
    throw std::invalid_argument("inputs must have size n");
  compose::Composition composition;
  composition.detector = detectorName(config.mode);
  composition.driver = driverName(config.reconciliator);
  composition.n = config.n;
  composition.t = config.t;
  composition.inputs = config.inputs;
  composition.seed = config.seed;
  composition.bias = config.bias;
  composition.crashes = config.crashes;
  composition.minDelay = config.minDelay;
  composition.maxDelay = config.maxDelay;
  composition.maxRounds = config.maxRounds;
  composition.maxTicks = config.maxTicks;
  composition.adversary = config.adversary;
  composition.fault = lowerFault(config.fault);
  return composition;
}

compose::Composition toComposition(const ByzantineBenOrConfig& config) {
  compose::Composition composition;
  composition.detector = "byzantine-benor-vac";
  composition.driver = "local-coin";
  composition.n = config.n;
  composition.t = config.t;
  composition.byzantineCount = config.byzantineCount;
  composition.byzantineStrategy = benor::toString(
      static_cast<benor::AsyncByzantineStrategy>(config.strategy));
  composition.placement = compose::Placement::kBack;
  composition.inputs = config.inputs;
  composition.seed = config.seed;
  composition.minDelay = config.minDelay;
  composition.maxDelay = config.maxDelay;
  composition.maxRounds = config.maxRounds;
  composition.maxTicks = config.maxTicks;
  return composition;
}

compose::Composition toComposition(const PhaseKingConfig& config) {
  const bool queen = config.algorithm == PhaseKingConfig::Algorithm::kQueen;
  if (config.monolithic)
    throw std::invalid_argument(
        "monolithic Phase-King has no detector/driver decomposition");
  compose::Composition composition;
  composition.detector = queen ? "phasequeen-ac" : "phaseking-ac";
  composition.driver = queen ? "queen-conciliator" : "king-conciliator";
  composition.n = config.n;
  composition.t = config.t;
  composition.byzantineCount = config.byzantineCount;
  composition.byzantineStrategy = phaseking::toString(config.strategy);
  composition.placement = config.placement;
  composition.inputs = config.inputs;
  composition.earlyCommitDecision = config.earlyCommitDecision;
  composition.seed = config.seed;
  composition.maxRounds = config.maxRounds;
  composition.maxTicks = config.maxTicks;
  return composition;
}

// ---------------------------------------------------------------------------

BenOrResult runBenOr(const BenOrConfig& config, const RunHooks& hooks) {
  if (config.mode == BenOrConfig::Mode::kMonolithic) {
    if (config.inputs.size() != config.n)
      throw std::invalid_argument("inputs must have size n");
    return runMonolithicBenOr(config, hooks);
  }
  const compose::Composition composition = toComposition(config);
  RunHooks lowered = hooks;
  if (lowered.telemetryLabels.empty())
    lowered.telemetryLabels = {{"family", "benor"},
                               {"mode", toString(config.mode)}};
  return fromComposition(compose::runComposition(composition, lowered));
}

BenOrResult runByzantineBenOr(const ByzantineBenOrConfig& config) {
  RunHooks hooks;
  hooks.telemetryLabels = {{"family", "benor-byzantine"}};
  return fromComposition(
      compose::runComposition(toComposition(config), hooks));
}

// ---------------------------------------------------------------------------

PhaseKingResult runPhaseKing(const PhaseKingConfig& config,
                             const RunHooks& hooks) {
  const bool queen = config.algorithm == PhaseKingConfig::Algorithm::kQueen;
  if (queen && config.monolithic)
    throw std::invalid_argument("Phase-Queen has no monolithic baseline");
  if (config.monolithic) return runMonolithicPhaseKing(config, hooks);

  const compose::Composition composition = toComposition(config);
  RunHooks lowered = hooks;
  if (lowered.telemetryLabels.empty())
    lowered.telemetryLabels = {{"family", "phaseking"},
                               {"algorithm", queen ? "queen" : "king"},
                               {"mode", "decomposed"}};
  const compose::CompositionResult run =
      compose::runComposition(composition, lowered);

  PhaseKingResult result;
  result.allDecided = run.allDecided;
  result.agreementViolated = run.agreementViolated;
  result.validityViolated = run.validityViolated;
  result.decidedValue = run.decidedValue;
  result.maxDecisionRound = run.maxDecisionRound;
  result.lastDecisionTick = run.lastDecisionTick;
  result.messagesByCorrect = run.messagesByCorrect;
  result.eventsProcessed = run.eventsProcessed;
  result.audits = run.audits;
  result.allAuditsOk = run.allAuditsOk;
  return result;
}

// ---------------------------------------------------------------------------

RaftScenarioResult runRaft(const RaftScenarioConfig& config,
                           const RunHooks& hooks) {
  SimConfig simConfig;
  simConfig.seed = config.seed;
  simConfig.maxTicks = config.maxTicks;

  UniformDelayNetwork::Options net;
  net.minDelay = config.minDelay;
  net.maxDelay = config.maxDelay;
  net.dropProbability = config.dropProbability;
  net.duplicateProbability = config.duplicateProbability;
  auto partitioned = std::make_unique<PartitionedNetwork>(wrapAdversary(
      std::make_unique<UniformDelayNetwork>(net), config.adversary));
  PartitionedNetwork* networkHandle = partitioned.get();
  Simulator sim(simConfig, std::move(partitioned));
  if (hooks.observer) sim.setScheduleObserver(hooks.observer);

  std::vector<Value> inputs = config.inputs;
  if (inputs.empty()) {
    inputs.resize(config.n);
    for (ProcessId id = 0; id < config.n; ++id)
      inputs[id] = static_cast<Value>(id % 2);
  }

  std::vector<raft::RaftConsensus*> nodes;
  for (ProcessId id = 0; id < config.n; ++id) {
    auto node =
        std::make_unique<raft::RaftConsensus>(inputs[id], config.raft);
    nodes.push_back(node.get());
    sim.addProcess(std::move(node));
  }

  sim.setValidValues(inputs);
  for (const auto& [id, tick] : config.crashes) sim.crashAt(id, tick);
  for (const auto& event : config.restarts)
    sim.restartAt(event.id, event.at, event.downtime);
  for (const auto& event : config.partitions) {
    sim.schedule(event.at, [networkHandle, groups = event.groups] {
      if (groups.empty()) {
        networkHandle->clearPartition();
      } else {
        networkHandle->setPartition(groups);
      }
    });
  }
  sim.stopWhenAllCorrectDecided();
  sim.run();

  RaftScenarioResult result;
  result.allDecided = sim.allCorrectDecided();
  result.agreementViolated = sim.agreementViolated();
  result.validityViolated = sim.validityViolated();
  result.messages = sim.messagesSent();
  result.eventsProcessed = sim.eventsProcessed();

  result.firstDecisionTick = 0;
  bool first = true;
  for (ProcessId id = 0; id < config.n; ++id) {
    const auto& decision = sim.decision(id);
    if (decision.decided) {
      result.decidedValue = decision.value;
      result.lastDecisionTick =
          std::max(result.lastDecisionTick, decision.at);
      if (first || decision.at < result.firstDecisionTick)
        result.firstDecisionTick = decision.at;
      first = false;
    }
    result.electionsStarted += nodes[id]->electionsStarted();
    result.leaderships += nodes[id]->timesElectedLeader();
    result.reconciliatorInvocations += nodes[id]->reconciliatorInvocations();

    // VAC instrumentation checks (Algorithms 10-11): within each term the
    // order must be vacillate <= adopt <= commit, and commit values agree.
    const auto& log = nodes[id]->confidenceLog();
    result.confidenceTransitions += log.size();
    bool sawAdoptThisTerm = false;
    raft::Term term = 0;
    for (const auto& change : log) {
      if (change.term != term) {
        term = change.term;
        sawAdoptThisTerm = false;
      }
      if (change.confidence == Confidence::kAdopt) sawAdoptThisTerm = true;
      if (change.confidence == Confidence::kCommit && !sawAdoptThisTerm) {
        // A follower may learn of a commit without having accepted the
        // entry in the same term — that is adopt-level knowledge arriving
        // fused with commit-level knowledge. It still must never happen
        // before ANY adopt-level evidence exists at this process.
        bool sawAdoptEver = false;
        for (const auto& earlier : log) {
          if (&earlier == &change) break;
          if (earlier.confidence != Confidence::kVacillate)
            sawAdoptEver = true;
        }
        if (!sawAdoptEver) result.confidenceOrderOk = false;
      }
    }
  }

  // Commit-level values must agree across processes.
  Value committed = kNoValue;
  for (const raft::RaftConsensus* node : nodes) {
    for (const auto& change : node->confidenceLog()) {
      if (change.confidence != Confidence::kCommit) continue;
      if (committed == kNoValue) {
        committed = change.value;
      } else if (change.value != committed) {
        result.commitValuesAgree = false;
      }
    }
  }

  // Crash-recovery observations: simulator-side restart counters plus
  // per-node journal statistics.
  result.restarts = sim.restarts();
  result.messagesDroppedStale = sim.messagesDroppedStale();
  result.timersPurged = sim.timersPurgedOnCrash();
  for (const raft::RaftConsensus* node : nodes) {
    if (const store::WriteAheadLog* wal = node->wal()) {
      result.walAppends += wal->appends();
      result.walSyncs += wal->syncs();
    }
    result.recoveries += node->recoveries();
    result.recoveredRecords += node->lastRecovery().recordsRecovered;
    result.tornTails += node->lastRecovery().tornTail ? 1 : 0;
    result.corruptRecords += node->lastRecovery().corruptRecords;
  }

  // Durability-violation audits over the ground-truth histories (which
  // survive restarts by construction — they model an outside observer).
  // Vote amnesia: one process, one term, two candidates.
  for (ProcessId id = 0; id < config.n && !result.voteAmnesia; ++id) {
    std::unordered_map<raft::Term, ProcessId> granted;
    for (const auto& vote : nodes[id]->voteHistory()) {
      auto [it, inserted] = granted.emplace(vote.term, vote.candidate);
      if (!inserted && it->second != vote.candidate) {
        result.voteAmnesia = true;
        result.voteAmnesiaDetail =
            "p" + std::to_string(id) + " voted for p" +
            std::to_string(it->second) + " and p" +
            std::to_string(vote.candidate) + " in term " +
            std::to_string(vote.term);
        break;
      }
    }
  }
  // Committed-entry regression: one process observed two different
  // committed values across its incarnations.
  for (ProcessId id = 0; id < config.n && !result.commitRegression; ++id) {
    const auto& history = nodes[id]->decisionHistory();
    for (std::size_t i = 1; i < history.size(); ++i) {
      if (history[i] != history.front()) {
        result.commitRegression = true;
        result.commitRegressionDetail =
            "p" + std::to_string(id) + " committed value " +
            std::to_string(history.front()) + " then value " +
            std::to_string(history[i]);
        break;
      }
    }
  }

  // Replay the recorded confidence transitions (they carry their tick) to
  // the telemetry sink; the timeline renderer orders them by tick.
  if (hooks.telemetry) {
    for (ProcessId id = 0; id < config.n; ++id) {
      for (const auto& change : nodes[id]->confidenceLog()) {
        hooks.telemetry->onDetectorOutcome(
            id, static_cast<Round>(change.term),
            Outcome{change.confidence, change.value}, change.at);
      }
    }
  }

  if (obs::enabled()) {
    auto& registry = obs::metrics();
    const obs::Labels base = {{"family", "raft"}};
    publishSimMetrics(sim, base);
    publishDecisionTicks(sim, base);
    registry.addCounter("elections_started", result.electionsStarted, base);
    registry.addCounter("leaderships", result.leaderships, base);
    registry.addCounter("driver_invocations",
                        result.reconciliatorInvocations, base);
    if (config.raft.durable) {
      registry.addCounter("wal_appends", result.walAppends, base);
      registry.addCounter("wal_syncs", result.walSyncs, base);
      registry.addCounter("recoveries", result.recoveries, base);
      registry.addCounter("wal_records_recovered", result.recoveredRecords,
                          base);
      registry.addCounter("wal_torn_tails", result.tornTails, base);
      registry.addCounter("wal_corrupt_records", result.corruptRecords,
                          base);
    }
    for (ProcessId id = 0; id < config.n; ++id) {
      const auto& log = nodes[id]->confidenceLog();
      for (const auto& change : log) {
        registry.addCounter(
            "confidence_transitions", 1,
            withLabel(withLabel(base, "confidence",
                                toString(change.confidence)),
                      "round",
                      roundLabel(static_cast<Round>(change.term))));
      }
      // Rounds-to-decide analogue: the term in which this node first saw
      // commit-level confidence.
      if (sim.decision(id).decided) {
        for (const auto& change : log) {
          if (change.confidence == Confidence::kCommit) {
            registry.observe("rounds_to_decide",
                             static_cast<double>(change.term), base);
            break;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace ooc::harness

// Minimal leveled logger.
//
// Simulations can emit very high event volumes, so logging is off by default
// and is enabled per-run (examples turn it on to show traces; tests and
// benches leave it off). The logger is intentionally a single global sink:
// simulations are single-threaded and deterministic.
#pragma once

#include <sstream>
#include <string>

namespace ooc {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global threshold; records at a lower level are discarded.
void setLogLevel(LogLevel level) noexcept;
LogLevel logLevel() noexcept;

/// Writes one record to stderr (used via the OOC_LOG macro).
void logWrite(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

}  // namespace ooc

/// Streams `...` (operator<< chain) at `level` if enabled. The level
/// expression is evaluated exactly once (callers may pass expressions with
/// side effects or non-trivial cost).
#define OOC_LOG(level, ...)                                        \
  do {                                                             \
    const ::ooc::LogLevel oocLogLevel_ = (level);                  \
    if (static_cast<int>(oocLogLevel_) >=                          \
        static_cast<int>(::ooc::logLevel())) {                     \
      ::ooc::logWrite(oocLogLevel_,                                \
                      ::ooc::detail::concat(__VA_ARGS__));         \
    }                                                              \
  } while (0)

#define OOC_TRACE(...) OOC_LOG(::ooc::LogLevel::kTrace, __VA_ARGS__)
#define OOC_DEBUG(...) OOC_LOG(::ooc::LogLevel::kDebug, __VA_ARGS__)
#define OOC_INFO(...) OOC_LOG(::ooc::LogLevel::kInfo, __VA_ARGS__)
#define OOC_WARN(...) OOC_LOG(::ooc::LogLevel::kWarn, __VA_ARGS__)
#define OOC_ERROR(...) OOC_LOG(::ooc::LogLevel::kError, __VA_ARGS__)

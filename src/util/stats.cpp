#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ooc {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_ = false;
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::cell(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::cell(std::uint64_t v) { return std::to_string(v); }
std::string Table::cell(std::int64_t v) { return std::to_string(v); }
std::string Table::cell(int v) { return std::to_string(v); }

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string{};
      os << text << std::string(width[c] - text.size(), ' ');
      os << (c + 1 < width.size() ? "  " : "");
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace ooc

// Summary statistics and fixed-width table rendering for experiment output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ooc {

/// Accumulates samples and reports summary statistics. Samples are retained
/// so exact quantiles can be computed; experiment sample counts are small
/// (thousands), so this is cheap.
///
/// Empty-set contract: every statistic of an empty Summary is 0.0 — never a
/// throw. Benches routinely build summaries from filtered subsets (e.g.
/// "rounds among deciders") that can legitimately come up empty; callers
/// that need to distinguish "no samples" from "all zeros" check empty().
class Summary {
 public:
  void add(double x);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  double sum() const noexcept { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  /// Exact quantile by linear interpolation, q in [0,1]; 0 when empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// Renders rows of strings as an aligned ASCII table with a header rule —
/// the uniform output format of every bench binary.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> row);

  /// Convenience: formats arithmetic cells with fixed precision.
  static std::string cell(double v, int precision = 2);
  static std::string cell(std::uint64_t v);
  static std::string cell(std::int64_t v);
  static std::string cell(int v);

  /// Renders the whole table, each line terminated by '\n'.
  std::string render() const;

  // Raw cells, for structured (JSON) re-emission of the rendered tables.
  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ooc

// Deterministic, splittable random number generation.
//
// Every stochastic component of a simulation (network delays, coin flips,
// Byzantine behaviour, schedulers) draws from an Rng derived from one root
// seed, so a run is a pure function of (configuration, seed). We use
// xoshiro256** seeded via SplitMix64 — fast, high quality, and trivially
// reproducible across platforms (no reliance on unspecified standard-library
// distribution algorithms).
#pragma once

#include <array>
#include <cstdint>

namespace ooc {

/// xoshiro256** PRNG with SplitMix64 seeding and deterministic helpers.
///
/// Not a C++ UniformRandomBitGenerator on purpose: std::uniform_*_distribution
/// output is implementation-defined, which would break cross-platform
/// reproducibility of simulations. All helpers here are fully specified.
class Rng {
 public:
  /// Seeds the generator state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Fair coin flip returning 0 or 1.
  int coin() noexcept;

  /// Derives an independent child generator. The child stream is a pure
  /// function of this generator's seed lineage and `tag`, so components can
  /// be given stable streams regardless of the order in which other
  /// components consume randomness.
  Rng split(std::uint64_t tag) const noexcept;

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t lineage_ = 0;  // for split(); mixes seed + tags
};

}  // namespace ooc

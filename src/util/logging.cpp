#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace ooc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* levelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void setLogLevel(LogLevel level) noexcept { g_level.store(level); }
LogLevel logLevel() noexcept { return g_level.load(); }

void logWrite(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", levelName(level), message.c_str());
}

}  // namespace ooc

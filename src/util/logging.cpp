#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace ooc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* levelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void setLogLevel(LogLevel level) noexcept { g_level.store(level); }
LogLevel logLevel() noexcept { return g_level.load(); }

void logWrite(LogLevel level, const std::string& message) {
  // Assemble the record first and emit it with a single flushed write, so
  // records from interleaved writers (e.g. the threaded model-checker sweep)
  // never shear mid-line.
  std::string record;
  record.reserve(message.size() + 10);
  record += '[';
  record += levelName(level);
  record += "] ";
  record += message;
  record += '\n';
  std::fwrite(record.data(), 1, record.size(), stderr);
  std::fflush(stderr);
}

}  // namespace ooc

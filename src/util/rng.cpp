#include "util/rng.hpp"

namespace ooc {
namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : lineage_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

int Rng::coin() noexcept { return static_cast<int>(next() >> 63); }

Rng Rng::split(std::uint64_t tag) const noexcept {
  // Mix lineage and tag through SplitMix64 twice for decorrelation.
  std::uint64_t s = lineage_ ^ (0xA0761D6478BD642FULL * (tag + 1));
  const std::uint64_t mixed = splitmix64(s) ^ splitmix64(s);
  Rng child(mixed);
  child.lineage_ = mixed;
  return child;
}

}  // namespace ooc

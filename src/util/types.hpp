// Common strong types shared across the Object Oriented Consensus library.
//
// Everything in the simulator and the consensus framework is expressed in
// terms of these aliases so that the representation can be changed in one
// place (e.g. widening ProcessId for very large simulated networks).
#pragma once

#include <cstdint>
#include <limits>

namespace ooc {

/// Identifier of a simulated processor, in [0, n).
using ProcessId = std::uint32_t;

/// Simulated time, in abstract ticks. In lockstep (synchronous) protocols a
/// tick is one communication exchange; in asynchronous runs it is simply a
/// totally ordered clock with no semantic step meaning.
using Tick = std::uint64_t;

/// Identifier of an armed timer within one process.
using TimerId = std::uint64_t;

/// A consensus proposal/decision value.
///
/// The paper's algorithms are presented over binary values ({0,1}); the
/// library supports any 64-bit value. Phase-King additionally uses the
/// sentinel "2" internally, exactly as in the paper's Algorithm 3.
using Value = std::int64_t;

/// Sentinel for "no value" (distinct from any legal proposal in this
/// library; proposals must be >= 0).
inline constexpr Value kNoValue = std::numeric_limits<Value>::min();

/// Round (phase) number of the consensus template, `m` in the paper.
using Round = std::uint32_t;

}  // namespace ooc

// Single-decree Paxos wire messages.
#pragma once

#include <string>

#include "sim/message.hpp"
#include "util/types.hpp"

namespace ooc::paxos {

/// Globally unique, totally ordered proposal number: attempt * n + id + 1.
using Ballot = std::uint64_t;

struct Prepare final : MessageBase<Prepare> {
  explicit Prepare(Ballot ballot) : ballot(ballot) {}
  Ballot ballot;
  std::string describe() const override {
    return "Prepare{" + std::to_string(ballot) + "}";
  }
};

/// Phase-1b: the acceptor's promise, carrying its previously accepted
/// proposal (ballot 0 = none) so the proposer can honour it.
struct Promise final : MessageBase<Promise> {
  Promise(Ballot ballot, Ballot acceptedBallot, Value acceptedValue)
      : ballot(ballot),
        acceptedBallot(acceptedBallot),
        acceptedValue(acceptedValue) {}
  Ballot ballot;
  Ballot acceptedBallot;
  Value acceptedValue;
  std::string describe() const override {
    return "Promise{" + std::to_string(ballot) + ",acc=" +
           std::to_string(acceptedBallot) + "}";
  }
};

struct Accept final : MessageBase<Accept> {
  Accept(Ballot ballot, Value value) : ballot(ballot), value(value) {}
  Ballot ballot;
  Value value;
  std::string describe() const override {
    return "Accept{" + std::to_string(ballot) + "," +
           std::to_string(value) + "}";
  }
};

/// Phase-2b: broadcast to every node so all learners tally it.
struct Accepted final : MessageBase<Accepted> {
  Accepted(Ballot ballot, Value value) : ballot(ballot), value(value) {}
  Ballot ballot;
  Value value;
  std::string describe() const override {
    return "Accepted{" + std::to_string(ballot) + "," +
           std::to_string(value) + "}";
  }
};

/// Rejection carrying the acceptor's current promise, so a losing proposer
/// can jump past it instead of probing.
struct Nack final : MessageBase<Nack> {
  Nack(Ballot ballot, Ballot promised) : ballot(ballot), promised(promised) {}
  Ballot ballot;
  Ballot promised;
  std::string describe() const override {
    return "Nack{" + std::to_string(ballot) + ",promised=" +
           std::to_string(promised) + "}";
  }
};

/// Decision short-circuit: a node that learned the chosen value announces
/// it, letting laggards decide without replaying a ballot.
struct DecidedAnnounce final : MessageBase<DecidedAnnounce> {
  explicit DecidedAnnounce(Value value) : value(value) {}
  Value value;
  std::string describe() const override {
    return "Decided{" + std::to_string(value) + "}";
  }
};

}  // namespace ooc::paxos

// Single-decree Paxos (Lamport) — the second leader-driven substrate, the
// canonical peer of Raft. Asynchronous message passing, t < n/2 crash
// faults. Every node is proposer + acceptor + learner and proposes its own
// input, so the cluster is a consensus object in the paper's sense.
//
// Framework instrumentation mirrors the Raft decomposition (paper
// Algorithms 10-11): the paper's three knowledge states appear verbatim —
//   vacillate — no accepted proposal heard (start / retry timeout);
//   adopt     — this acceptor accepted a proposal (majority-backed
//               proposer exists; value may still be superseded);
//   commit    — a majority accepted one ballot (value learned / chosen).
// The retry timer (randomized backoff) is the reconciliator: it shakes
// dueling-proposer stalemates exactly as Raft's election timer does.
//
// Liveness: classic Paxos can livelock under duelling proposers; the
// randomized, exponentially backed-off retry timer makes termination
// probability-1 — the timing property again.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/confidence.hpp"
#include "paxos/messages.hpp"
#include "sim/process.hpp"
#include "store/wal.hpp"

namespace ooc::paxos {

struct PaxosConfig {
  /// Randomized retry delay for an undecided proposer.
  Tick retryMin = 100;
  Tick retryMax = 200;
  /// Multiplier applied per consecutive failed ballot (capped).
  double backoffFactor = 1.5;
  Tick backoffCap = 2000;
  /// Whether this node drives ballots for its input. A passive node is
  /// acceptor + learner only: it answers Prepare/Accept and learns the
  /// decision from Accepted broadcasts, but never arms the retry timer.
  /// The multi-decree service (src/svc/) runs one proposer per decree this
  /// way, giving Multi-Paxos-style contention-free decrees.
  bool propose = true;
  /// Crash-recovery durability: journal the acceptor state
  /// (promised/accepted) and the learned decision to a simulated
  /// write-ahead log, recovered on restart. Paxos' safety argument REQUIRES
  /// this — an acceptor that forgets a promise can let two ballots choose
  /// different values.
  bool durable = false;
  /// true = sync the journal before every Promise/Accepted reply (safe);
  /// false = never sync (the crash-before-sync fault).
  bool syncBeforeReply = true;
  /// Storage fault injection applied when a crash hits the journal.
  store::FaultConfig storage;
};

class PaxosNode final : public Process {
 public:
  PaxosNode(Value input, PaxosConfig config);

  void onStart() override;
  void onMessage(ProcessId from, const Message& message) override;
  void onTimer(TimerId id) override;
  void onCrash() override;
  void onRestart() override;

  bool decided() const noexcept { return decided_; }
  Value decisionValue() const noexcept { return decision_; }
  std::uint64_t ballotsStarted() const noexcept { return ballotsStarted_; }
  std::uint64_t nacksReceived() const noexcept { return nacksReceived_; }
  /// Reconciliator invocations (retry timeouts), per the instrumentation.
  std::uint64_t reconciliatorInvocations() const noexcept {
    return reconciliatorInvocations_;
  }

  struct ConfidenceChange {
    Confidence confidence;
    Value value;
    Tick at;
  };
  const std::vector<ConfidenceChange>& confidenceLog() const noexcept {
    return confidenceLog_;
  }

  /// Every decision this node learned, across incarnations — differing
  /// entries are committed-value regression (see RaftConsensus).
  const std::vector<Value>& decisionHistory() const noexcept {
    return decisionHistory_;
  }

  /// Durability introspection (null / zero when !durable).
  const store::WriteAheadLog* wal() const noexcept { return wal_.get(); }
  std::uint64_t recoveries() const noexcept { return recoveries_; }
  const store::RecoveryReport& lastRecovery() const noexcept {
    return lastRecovery_;
  }

 private:
  void record(Confidence confidence, Value value);
  void armRetryTimer();
  void startBallot();
  void learn(Value value);
  void persist(std::vector<std::uint64_t> record);

  void handlePrepare(ProcessId from, const Prepare& msg);
  void handlePromise(ProcessId from, const Promise& msg);
  void handleAccept(ProcessId from, const Accept& msg);
  void handleAccepted(ProcessId from, const Accepted& msg);
  void handleNack(ProcessId from, const Nack& msg);

  Value input_;
  PaxosConfig config_;

  // Acceptor state.
  Ballot promised_ = 0;
  Ballot acceptedBallot_ = 0;
  Value acceptedValue_ = kNoValue;

  // Proposer state.
  Ballot currentBallot_ = 0;
  std::uint64_t attempt_ = 0;
  bool proposing_ = false;       // between Prepare and majority promises
  bool acceptRequested_ = false; // Accept round in flight
  std::vector<bool> promiseFrom_;
  std::size_t promiseCount_ = 0;
  Ballot highestAcceptedSeen_ = 0;
  Value valueToPropose_ = kNoValue;

  // Learner state: per-ballot distinct-sender Accepted tallies.
  struct BallotTally {
    std::vector<bool> seen;
    std::size_t count = 0;
    Value value = kNoValue;
  };
  std::unordered_map<Ballot, BallotTally> acceptedTallies_;

  bool decided_ = false;
  Value decision_ = kNoValue;
  TimerId retryTimer_ = 0;
  double backoff_ = 1.0;

  std::uint64_t ballotsStarted_ = 0;
  std::uint64_t nacksReceived_ = 0;
  std::uint64_t reconciliatorInvocations_ = 0;
  std::vector<ConfidenceChange> confidenceLog_;
  std::vector<Value> decisionHistory_;

  // Simulated stable storage (null unless config_.durable).
  std::unique_ptr<store::WriteAheadLog> wal_;
  std::uint64_t recoveries_ = 0;
  store::RecoveryReport lastRecovery_;
};

}  // namespace ooc::paxos

#include "paxos/paxos_node.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace ooc::paxos {

PaxosNode::PaxosNode(Value input, PaxosConfig config)
    : input_(input), config_(config) {}

void PaxosNode::record(Confidence confidence, Value value) {
  if (!confidenceLog_.empty() &&
      confidenceLog_.back().confidence == confidence &&
      confidenceLog_.back().value == value) {
    return;
  }
  confidenceLog_.push_back(ConfidenceChange{confidence, value, ctx().now()});
}

void PaxosNode::onStart() {
  promiseFrom_.assign(ctx().processCount(), false);
  record(Confidence::kVacillate, input_);
  armRetryTimer();
}

void PaxosNode::armRetryTimer() {
  if (retryTimer_ != 0) ctx().cancelTimer(retryTimer_);
  const auto span = static_cast<double>(ctx().rng().between(
      static_cast<std::int64_t>(config_.retryMin),
      static_cast<std::int64_t>(config_.retryMax)));
  const Tick delay = std::min<Tick>(
      config_.backoffCap, static_cast<Tick>(span * backoff_));
  retryTimer_ = ctx().setTimer(std::max<Tick>(1, delay));
}

void PaxosNode::onTimer(TimerId id) {
  if (id != retryTimer_ || decided_) return;
  // The reconciliator moment: no decision was learned in time; raise a
  // fresh ballot and back off harder for the next stalemate.
  ++reconciliatorInvocations_;
  record(Confidence::kVacillate,
         acceptedBallot_ != 0 ? acceptedValue_ : input_);
  startBallot();
  backoff_ = std::min(backoff_ * config_.backoffFactor,
                      static_cast<double>(config_.backoffCap));
  armRetryTimer();
}

void PaxosNode::startBallot() {
  ++attempt_;
  ++ballotsStarted_;
  currentBallot_ =
      attempt_ * ctx().processCount() + ctx().self() + 1;
  proposing_ = true;
  acceptRequested_ = false;
  promiseFrom_.assign(ctx().processCount(), false);
  promiseCount_ = 0;
  highestAcceptedSeen_ = 0;
  valueToPropose_ = input_;
  OOC_TRACE("paxos p", ctx().self(), " ballot ", currentBallot_);
  ctx().broadcast(Prepare(currentBallot_));
}

void PaxosNode::onMessage(ProcessId from, const Message& message) {
  if (const auto* msg = message.as<Prepare>()) {
    handlePrepare(from, *msg);
  } else if (const auto* msg = message.as<Promise>()) {
    handlePromise(from, *msg);
  } else if (const auto* msg = message.as<Accept>()) {
    handleAccept(from, *msg);
  } else if (const auto* msg = message.as<Accepted>()) {
    handleAccepted(from, *msg);
  } else if (const auto* msg = message.as<Nack>()) {
    handleNack(from, *msg);
  } else if (const auto* msg = message.as<DecidedAnnounce>()) {
    learn(msg->value);
  }
}

void PaxosNode::handlePrepare(ProcessId from, const Prepare& msg) {
  if (msg.ballot > promised_) {
    promised_ = msg.ballot;
    ctx().send(from,
               std::make_unique<Promise>(msg.ballot, acceptedBallot_,
                                         acceptedValue_));
  } else {
    ctx().send(from, std::make_unique<Nack>(msg.ballot, promised_));
  }
}

void PaxosNode::handlePromise(ProcessId from, const Promise& msg) {
  if (!proposing_ || acceptRequested_ || msg.ballot != currentBallot_)
    return;
  if (from >= promiseFrom_.size() || promiseFrom_[from]) return;
  promiseFrom_[from] = true;
  ++promiseCount_;
  // Honour the highest already-accepted proposal among the promises —
  // the rule that makes chosen values stable.
  if (msg.acceptedBallot > highestAcceptedSeen_) {
    highestAcceptedSeen_ = msg.acceptedBallot;
    valueToPropose_ = msg.acceptedValue;
  }
  if (2 * promiseCount_ > ctx().processCount()) {
    acceptRequested_ = true;
    ctx().broadcast(Accept(currentBallot_, valueToPropose_));
  }
}

void PaxosNode::handleAccept(ProcessId, const Accept& msg) {
  if (msg.ballot < promised_) {
    // A stale proposer; no reply needed beyond its own Nacks from Prepare.
    return;
  }
  promised_ = msg.ballot;
  acceptedBallot_ = msg.ballot;
  acceptedValue_ = msg.value;
  // Adopt-level knowledge: a majority-backed proposer pushed this value.
  record(Confidence::kAdopt, msg.value);
  ctx().broadcast(Accepted(msg.ballot, msg.value));
}

void PaxosNode::handleAccepted(ProcessId from, const Accepted& msg) {
  if (decided_) return;
  BallotTally& tally = acceptedTallies_[msg.ballot];
  if (tally.seen.empty()) {
    tally.seen.assign(ctx().processCount(), false);
    tally.value = msg.value;
  }
  if (from >= tally.seen.size() || tally.seen[from]) return;
  tally.seen[from] = true;
  ++tally.count;
  if (2 * tally.count > ctx().processCount()) learn(tally.value);
}

void PaxosNode::handleNack(ProcessId, const Nack& msg) {
  if (msg.ballot != currentBallot_ || !proposing_) return;
  ++nacksReceived_;
  // Jump past the competing ballot on the next attempt.
  const std::uint64_t neededAttempt = msg.promised / ctx().processCount();
  attempt_ = std::max(attempt_, neededAttempt);
  proposing_ = false;
}

void PaxosNode::learn(Value value) {
  if (decided_) return;
  decided_ = true;
  decision_ = value;
  record(Confidence::kCommit, value);
  ctx().decide(value);
  if (retryTimer_ != 0) ctx().cancelTimer(retryTimer_);
  // Short-circuit for laggards; acceptor duties continue regardless.
  ctx().broadcast(DecidedAnnounce(value));
}

}  // namespace ooc::paxos

#include "paxos/paxos_node.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace ooc::paxos {
namespace {

// Journal record tags.
constexpr std::uint64_t kRecPromise = 1;  // {tag, promised ballot}
constexpr std::uint64_t kRecAccept = 2;   // {tag, ballot, value}
constexpr std::uint64_t kRecDecide = 3;   // {tag, value}

std::uint64_t encodeValue(Value v) noexcept {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
}

Value decodeValue(std::uint64_t w) noexcept {
  return static_cast<Value>(static_cast<std::int64_t>(w));
}

}  // namespace

PaxosNode::PaxosNode(Value input, PaxosConfig config)
    : input_(input), config_(config) {
  if (config_.durable)
    wal_ = std::make_unique<store::WriteAheadLog>(config_.storage);
}

void PaxosNode::persist(std::vector<std::uint64_t> record) {
  if (!wal_) return;
  wal_->append(record);
  if (config_.syncBeforeReply) wal_->sync();
}

void PaxosNode::onCrash() {
  if (wal_) wal_->crash(ctx().rng());
}

void PaxosNode::onRestart() {
  // Drop every volatile field; the journal replay below rebuilds the
  // acceptor state (the part Paxos' safety proof requires to be stable).
  promised_ = 0;
  acceptedBallot_ = 0;
  acceptedValue_ = kNoValue;
  currentBallot_ = 0;
  attempt_ = 0;
  proposing_ = false;
  acceptRequested_ = false;
  promiseFrom_.assign(ctx().processCount(), false);
  promiseCount_ = 0;
  highestAcceptedSeen_ = 0;
  valueToPropose_ = kNoValue;
  acceptedTallies_.clear();
  decided_ = false;
  decision_ = kNoValue;
  retryTimer_ = 0;  // the simulator purged our timers at the crash
  backoff_ = 1.0;
  ++recoveries_;
  if (wal_) {
    for (const std::vector<std::uint64_t>& rec :
         wal_->recover(&lastRecovery_)) {
      if (rec.empty()) continue;
      switch (rec[0]) {
        case kRecPromise:
          if (rec.size() == 2) promised_ = rec[1];
          break;
        case kRecAccept:
          if (rec.size() == 3) {
            promised_ = std::max(promised_, rec[1]);
            acceptedBallot_ = rec[1];
            acceptedValue_ = decodeValue(rec[2]);
          }
          break;
        case kRecDecide:
          if (rec.size() == 2) {
            decided_ = true;
            decision_ = decodeValue(rec[1]);
          }
          break;
        default:
          break;  // unknown tag: ignore (forward compatibility)
      }
    }
  }
  // Proposer bookkeeping is volatile; restart ballots past everything we
  // ever promised so our own proposals are not dead on arrival.
  attempt_ = promised_ / ctx().processCount() + 1;
  record(Confidence::kVacillate,
         acceptedBallot_ != 0 ? acceptedValue_ : input_);
  if (!decided_ && config_.propose) armRetryTimer();
}

void PaxosNode::record(Confidence confidence, Value value) {
  if (!confidenceLog_.empty() &&
      confidenceLog_.back().confidence == confidence &&
      confidenceLog_.back().value == value) {
    return;
  }
  confidenceLog_.push_back(ConfidenceChange{confidence, value, ctx().now()});
}

void PaxosNode::onStart() {
  promiseFrom_.assign(ctx().processCount(), false);
  record(Confidence::kVacillate, input_);
  if (config_.propose) armRetryTimer();
}

void PaxosNode::armRetryTimer() {
  if (retryTimer_ != 0) ctx().cancelTimer(retryTimer_);
  const auto span = static_cast<double>(ctx().rng().between(
      static_cast<std::int64_t>(config_.retryMin),
      static_cast<std::int64_t>(config_.retryMax)));
  const Tick delay = std::min<Tick>(
      config_.backoffCap, static_cast<Tick>(span * backoff_));
  retryTimer_ = ctx().setTimer(std::max<Tick>(1, delay));
}

void PaxosNode::onTimer(TimerId id) {
  if (id != retryTimer_ || decided_) return;
  // The reconciliator moment: no decision was learned in time; raise a
  // fresh ballot and back off harder for the next stalemate.
  ++reconciliatorInvocations_;
  record(Confidence::kVacillate,
         acceptedBallot_ != 0 ? acceptedValue_ : input_);
  startBallot();
  backoff_ = std::min(backoff_ * config_.backoffFactor,
                      static_cast<double>(config_.backoffCap));
  armRetryTimer();
}

void PaxosNode::startBallot() {
  ++attempt_;
  ++ballotsStarted_;
  currentBallot_ =
      attempt_ * ctx().processCount() + ctx().self() + 1;
  proposing_ = true;
  acceptRequested_ = false;
  promiseFrom_.assign(ctx().processCount(), false);
  promiseCount_ = 0;
  highestAcceptedSeen_ = 0;
  valueToPropose_ = input_;
  OOC_TRACE("paxos p", ctx().self(), " ballot ", currentBallot_);
  ctx().fanout(makeMessage<Prepare>(currentBallot_));
}

void PaxosNode::onMessage(ProcessId from, const Message& message) {
  if (const auto* msg = message.as<Prepare>()) {
    handlePrepare(from, *msg);
  } else if (const auto* msg = message.as<Promise>()) {
    handlePromise(from, *msg);
  } else if (const auto* msg = message.as<Accept>()) {
    handleAccept(from, *msg);
  } else if (const auto* msg = message.as<Accepted>()) {
    handleAccepted(from, *msg);
  } else if (const auto* msg = message.as<Nack>()) {
    handleNack(from, *msg);
  } else if (const auto* msg = message.as<DecidedAnnounce>()) {
    learn(msg->value);
  }
}

void PaxosNode::handlePrepare(ProcessId from, const Prepare& msg) {
  if (msg.ballot > promised_) {
    promised_ = msg.ballot;
    // The promise must hit stable storage before the reply leaves — a
    // forgotten promise lets a lower ballot slip through after a restart.
    persist({kRecPromise, promised_});
    ctx().send(from,
               std::make_unique<Promise>(msg.ballot, acceptedBallot_,
                                         acceptedValue_));
  } else {
    ctx().send(from, std::make_unique<Nack>(msg.ballot, promised_));
  }
}

void PaxosNode::handlePromise(ProcessId from, const Promise& msg) {
  if (!proposing_ || acceptRequested_ || msg.ballot != currentBallot_)
    return;
  if (from >= promiseFrom_.size() || promiseFrom_[from]) return;
  promiseFrom_[from] = true;
  ++promiseCount_;
  // Honour the highest already-accepted proposal among the promises —
  // the rule that makes chosen values stable.
  if (msg.acceptedBallot > highestAcceptedSeen_) {
    highestAcceptedSeen_ = msg.acceptedBallot;
    valueToPropose_ = msg.acceptedValue;
  }
  if (2 * promiseCount_ > ctx().processCount()) {
    acceptRequested_ = true;
    ctx().fanout(makeMessage<Accept>(currentBallot_, valueToPropose_));
  }
}

void PaxosNode::handleAccept(ProcessId, const Accept& msg) {
  if (msg.ballot < promised_) {
    // A stale proposer; no reply needed beyond its own Nacks from Prepare.
    return;
  }
  promised_ = msg.ballot;
  acceptedBallot_ = msg.ballot;
  acceptedValue_ = msg.value;
  persist({kRecAccept, acceptedBallot_, encodeValue(acceptedValue_)});
  // Adopt-level knowledge: a majority-backed proposer pushed this value.
  record(Confidence::kAdopt, msg.value);
  ctx().fanout(makeMessage<Accepted>(msg.ballot, msg.value));
}

void PaxosNode::handleAccepted(ProcessId from, const Accepted& msg) {
  if (decided_) return;
  BallotTally& tally = acceptedTallies_[msg.ballot];
  if (tally.seen.empty()) {
    tally.seen.assign(ctx().processCount(), false);
    tally.value = msg.value;
  }
  if (from >= tally.seen.size() || tally.seen[from]) return;
  tally.seen[from] = true;
  ++tally.count;
  if (2 * tally.count > ctx().processCount()) learn(tally.value);
}

void PaxosNode::handleNack(ProcessId, const Nack& msg) {
  if (msg.ballot != currentBallot_ || !proposing_) return;
  ++nacksReceived_;
  // Jump past the competing ballot on the next attempt.
  const std::uint64_t neededAttempt = msg.promised / ctx().processCount();
  attempt_ = std::max(attempt_, neededAttempt);
  proposing_ = false;
}

void PaxosNode::learn(Value value) {
  if (decided_) return;
  decided_ = true;
  decision_ = value;
  decisionHistory_.push_back(value);
  persist({kRecDecide, encodeValue(value)});
  record(Confidence::kCommit, value);
  ctx().decide(value);
  if (retryTimer_ != 0) ctx().cancelTimer(retryTimer_);
  // Short-circuit for laggards; acceptor duties continue regardless.
  ctx().fanout(makeMessage<DecidedAnnounce>(value));
}

}  // namespace ooc::paxos

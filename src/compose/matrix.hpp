// Experiment E20: the full detector × driver cross-product. Every pairing
// the registry knows is either run under runComposition() — collecting
// agreement/validity/termination and rounds-to-decide — or rejected with
// its capability diagnostic; both outcomes land in the ooc.matrix.v1 JSON,
// so the matrix is a machine-checkable statement of which compositions are
// algorithms (and why the rest are not).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace ooc::compose {

struct MatrixOptions {
  /// Runs per valid cell (seeds seedBase, seedBase+1, ...).
  int runsPerCell = 20;
  std::uint64_t seedBase = 9000;
  bool quick = false;  // drops runsPerCell to 5
  /// Worker threads for the cell sweep (0 = hardware). Cells land in the
  /// report in enumeration order regardless, so the JSON is byte-identical
  /// at any thread count.
  std::size_t threads = 0;
};

struct MatrixCell {
  std::string detector;
  std::string driver;
  /// Oracle auto-attached when the driver consumes one; empty otherwise.
  std::string oracle;
  bool valid = false;
  /// Capability diagnostic for rejected pairings; empty when valid.
  std::string diagnostic;

  int runs = 0;
  int decided = 0;  // runs where every correct process decided
  bool agreementOk = true;
  bool validityOk = true;
  bool auditsOk = true;
  /// FD-axiom audit verdict over the cell's runs (oracle cells only;
  /// vacuously true elsewhere).
  bool fdAxiomsOk = true;
  /// Mean/max decision round over decided runs (0 when none decided —
  /// e.g. keep-value on a split start, the paper's termination
  /// counterexample).
  double meanRounds = 0;
  Round maxRound = 0;
  double meanMessages = 0;
};

struct MatrixReport {
  std::vector<std::string> detectors;
  std::vector<std::string> drivers;
  std::vector<MatrixCell> cells;  // row-major: detectors × drivers
  std::size_t validCells = 0;
  std::size_t rejectedCells = 0;
  /// False if any valid cell violated agreement/validity or failed audits.
  bool safetyOk = true;
};

MatrixReport runMatrix(const MatrixOptions& options);

/// Renders the report as ooc.matrix.v1 JSON (deterministic byte-for-byte
/// for a fixed registry and options).
std::string matrixToJson(const MatrixReport& report,
                         const MatrixOptions& options);

// ---------------------------------------------------------------------------
// Experiment E22: oracle quality vs. rounds-to-decide. For each
// oracle-consuming driver, every registered oracle is swept across a
// quality grid (stabilization time × false-suspicion noise, fixed
// completeness lag) under a crash schedule; incoherent cells — missing
// oracle, ◇S/Ω under the P-requiring driver, noisy perfect-p, oracle on
// an oracle-free driver — land in the report as rejected cells with the
// registry's diagnostic, like E20's.

struct OracleMatrixOptions {
  int runsPerCell = 10;
  std::uint64_t seedBase = 11000;
  bool quick = false;  // drops runsPerCell to 3
  /// Worker threads for the cell sweep (0 = hardware); see MatrixOptions.
  std::size_t threads = 0;
};

struct OracleMatrixCell {
  std::string driver;
  std::string oracle;  // "" for the missing-oracle rejection row
  Tick stabilizeAt = 0;
  double noise = 0;
  Tick completenessLag = 0;
  bool valid = false;
  std::string diagnostic;

  int runs = 0;
  int decided = 0;
  bool agreementOk = true;
  bool validityOk = true;
  bool auditsOk = true;
  bool fdAxiomsOk = true;
  double meanRounds = 0;
  Round maxRound = 0;
};

struct OracleMatrixReport {
  std::vector<std::string> drivers;  // oracle-consuming drivers swept
  std::vector<std::string> oracles;
  std::vector<OracleMatrixCell> cells;
  std::size_t validCells = 0;
  std::size_t rejectedCells = 0;
  /// False if any valid cell violated agreement/validity, failed the
  /// object audits, or broke an FD axiom.
  bool safetyOk = true;
};

OracleMatrixReport runOracleMatrix(const OracleMatrixOptions& options);

/// Renders the report as ooc.fd-matrix.v1 JSON.
std::string oracleMatrixToJson(const OracleMatrixReport& report,
                               const OracleMatrixOptions& options);

// ---------------------------------------------------------------------------
// Experiment E24: scheduling policy × engine family. A fixed roster of
// engine pairings — the async coin engine, the Ω-backed coordinator, the
// layered VAC-from-AC stack, the timer reconciliator and a lockstep
// phase protocol — is swept under every RoundScheduler policy. Cells the
// registry's validateScheduling() rejects (lockstep-mode objects and
// skew-intolerant reconciliators under non-lockstep policies) land in the
// report with their capability diagnostic; valid cells record the skew
// observations (overlap witnesses, deferred activations, max round skew)
// that separate the three policies behaviourally (DESIGN.md §14).

struct RoundlessMatrixOptions {
  int runsPerCell = 10;
  std::uint64_t seedBase = 13000;
  bool quick = false;  // drops runsPerCell to 3
  /// Worker threads for the cell sweep (0 = hardware); see MatrixOptions.
  std::size_t threads = 0;
};

struct RoundlessMatrixCell {
  std::string detector;
  std::string driver;
  /// Oracle auto-attached when the driver consumes one; empty otherwise.
  std::string oracle;
  /// Wire name of the scheduling policy this cell ran under.
  std::string policy;
  bool valid = false;
  std::string diagnostic;

  int runs = 0;
  int decided = 0;
  bool agreementOk = true;
  bool validityOk = true;
  bool auditsOk = true;
  bool fdAxiomsOk = true;
  double meanRounds = 0;
  Round maxRound = 0;
  double meanMessages = 0;

  /// Skew observations summed (witness/activation counts) or maxed (skew)
  /// over the cell's runs. Lockstep cells are structurally pinned to
  /// zero on all three; event-driven shows deferred activations, the
  /// ooo-driver policy shows overlap witnesses.
  std::uint64_t overlapWitnesses = 0;
  std::uint64_t deferredActivations = 0;
  Round maxRoundSkew = 0;
};

struct RoundlessMatrixReport {
  std::vector<std::string> policies;
  /// "detector+driver" spec strings of the engine roster, in sweep order.
  std::vector<std::string> engines;
  std::vector<RoundlessMatrixCell> cells;  // row-major: engines × policies
  std::size_t validCells = 0;
  std::size_t rejectedCells = 0;
  bool safetyOk = true;
};

RoundlessMatrixReport runRoundlessMatrix(const RoundlessMatrixOptions& options);

/// Renders the report as ooc.roundless.v1 JSON.
std::string roundlessMatrixToJson(const RoundlessMatrixReport& report,
                                  const RoundlessMatrixOptions& options);

}  // namespace ooc::compose

// Experiment E20: the full detector × driver cross-product. Every pairing
// the registry knows is either run under runComposition() — collecting
// agreement/validity/termination and rounds-to-decide — or rejected with
// its capability diagnostic; both outcomes land in the ooc.matrix.v1 JSON,
// so the matrix is a machine-checkable statement of which compositions are
// algorithms (and why the rest are not).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace ooc::compose {

struct MatrixOptions {
  /// Runs per valid cell (seeds seedBase, seedBase+1, ...).
  int runsPerCell = 20;
  std::uint64_t seedBase = 9000;
  bool quick = false;  // drops runsPerCell to 5
};

struct MatrixCell {
  std::string detector;
  std::string driver;
  bool valid = false;
  /// Capability diagnostic for rejected pairings; empty when valid.
  std::string diagnostic;

  int runs = 0;
  int decided = 0;  // runs where every correct process decided
  bool agreementOk = true;
  bool validityOk = true;
  bool auditsOk = true;
  /// Mean/max decision round over decided runs (0 when none decided —
  /// e.g. keep-value on a split start, the paper's termination
  /// counterexample).
  double meanRounds = 0;
  Round maxRound = 0;
  double meanMessages = 0;
};

struct MatrixReport {
  std::vector<std::string> detectors;
  std::vector<std::string> drivers;
  std::vector<MatrixCell> cells;  // row-major: detectors × drivers
  std::size_t validCells = 0;
  std::size_t rejectedCells = 0;
  /// False if any valid cell violated agreement/validity or failed audits.
  bool safetyOk = true;
};

MatrixReport runMatrix(const MatrixOptions& options);

/// Renders the report as ooc.matrix.v1 JSON (deterministic byte-for-byte
/// for a fixed registry and options).
std::string matrixToJson(const MatrixReport& report,
                         const MatrixOptions& options);

}  // namespace ooc::compose

// Experiment E20: the full detector × driver cross-product. Every pairing
// the registry knows is either run under runComposition() — collecting
// agreement/validity/termination and rounds-to-decide — or rejected with
// its capability diagnostic; both outcomes land in the ooc.matrix.v1 JSON,
// so the matrix is a machine-checkable statement of which compositions are
// algorithms (and why the rest are not).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace ooc::compose {

struct MatrixOptions {
  /// Runs per valid cell (seeds seedBase, seedBase+1, ...).
  int runsPerCell = 20;
  std::uint64_t seedBase = 9000;
  bool quick = false;  // drops runsPerCell to 5
  /// Worker threads for the cell sweep (0 = hardware). Cells land in the
  /// report in enumeration order regardless, so the JSON is byte-identical
  /// at any thread count.
  std::size_t threads = 0;
};

struct MatrixCell {
  std::string detector;
  std::string driver;
  /// Oracle auto-attached when the driver consumes one; empty otherwise.
  std::string oracle;
  bool valid = false;
  /// Capability diagnostic for rejected pairings; empty when valid.
  std::string diagnostic;

  int runs = 0;
  int decided = 0;  // runs where every correct process decided
  bool agreementOk = true;
  bool validityOk = true;
  bool auditsOk = true;
  /// FD-axiom audit verdict over the cell's runs (oracle cells only;
  /// vacuously true elsewhere).
  bool fdAxiomsOk = true;
  /// Mean/max decision round over decided runs (0 when none decided —
  /// e.g. keep-value on a split start, the paper's termination
  /// counterexample).
  double meanRounds = 0;
  Round maxRound = 0;
  double meanMessages = 0;
};

struct MatrixReport {
  std::vector<std::string> detectors;
  std::vector<std::string> drivers;
  std::vector<MatrixCell> cells;  // row-major: detectors × drivers
  std::size_t validCells = 0;
  std::size_t rejectedCells = 0;
  /// False if any valid cell violated agreement/validity or failed audits.
  bool safetyOk = true;
};

MatrixReport runMatrix(const MatrixOptions& options);

/// Renders the report as ooc.matrix.v1 JSON (deterministic byte-for-byte
/// for a fixed registry and options).
std::string matrixToJson(const MatrixReport& report,
                         const MatrixOptions& options);

// ---------------------------------------------------------------------------
// Experiment E22: oracle quality vs. rounds-to-decide. For each
// oracle-consuming driver, every registered oracle is swept across a
// quality grid (stabilization time × false-suspicion noise, fixed
// completeness lag) under a crash schedule; incoherent cells — missing
// oracle, ◇S/Ω under the P-requiring driver, noisy perfect-p, oracle on
// an oracle-free driver — land in the report as rejected cells with the
// registry's diagnostic, like E20's.

struct OracleMatrixOptions {
  int runsPerCell = 10;
  std::uint64_t seedBase = 11000;
  bool quick = false;  // drops runsPerCell to 3
  /// Worker threads for the cell sweep (0 = hardware); see MatrixOptions.
  std::size_t threads = 0;
};

struct OracleMatrixCell {
  std::string driver;
  std::string oracle;  // "" for the missing-oracle rejection row
  Tick stabilizeAt = 0;
  double noise = 0;
  Tick completenessLag = 0;
  bool valid = false;
  std::string diagnostic;

  int runs = 0;
  int decided = 0;
  bool agreementOk = true;
  bool validityOk = true;
  bool auditsOk = true;
  bool fdAxiomsOk = true;
  double meanRounds = 0;
  Round maxRound = 0;
};

struct OracleMatrixReport {
  std::vector<std::string> drivers;  // oracle-consuming drivers swept
  std::vector<std::string> oracles;
  std::vector<OracleMatrixCell> cells;
  std::size_t validCells = 0;
  std::size_t rejectedCells = 0;
  /// False if any valid cell violated agreement/validity, failed the
  /// object audits, or broke an FD axiom.
  bool safetyOk = true;
};

OracleMatrixReport runOracleMatrix(const OracleMatrixOptions& options);

/// Renders the report as ooc.fd-matrix.v1 JSON.
std::string oracleMatrixToJson(const OracleMatrixReport& report,
                               const OracleMatrixOptions& options);

}  // namespace ooc::compose

#include "compose/timer_reconciliator.hpp"

#include <memory>

namespace ooc::compose {
namespace {

/// A firing invoker's spokesman claim, trusted verbatim by every peer.
struct TimerClaim final : MessageBase<TimerClaim> {
  explicit TimerClaim(Value value = kNoValue) : value(value) {}
  Value value;
  std::string describe() const override {
    return "timer-claim(" + std::to_string(value) + ")";
  }
};

}  // namespace

TimerReconciliator::TimerReconciliator(Tick timeoutMin, Tick timeoutSpread)
    : timeoutMin_(timeoutMin), timeoutSpread_(timeoutSpread) {}

void TimerReconciliator::invoke(ObjectContext& ctx, const Outcome& detected) {
  invoked_ = true;
  own_ = detected.value;
  if (claimed_) {  // a claim raced ahead of our invocation
    value_ = *claimed_;
    return;
  }
  const Tick spread = timeoutSpread_ == 0 ? 1 : timeoutSpread_;
  timer_ = ctx.setTimer(timeoutMin_ + ctx.rng().below(spread));
}

void TimerReconciliator::onMessage(ObjectContext& ctx, ProcessId /*from*/,
                                   const Message& inner) {
  const auto* claim = inner.as<TimerClaim>();
  if (claim == nullptr || claimed_) return;
  claimed_ = claim->value;
  if (invoked_ && !value_) {
    if (timer_) ctx.cancelTimer(*timer_);
    timer_.reset();
    value_ = *claimed_;
  }
}

void TimerReconciliator::onTimer(ObjectContext& ctx, TimerId id) {
  if (!timer_ || *timer_ != id || value_) return;
  timer_.reset();
  ctx.fanout(makeMessage<TimerClaim>(own_));
  value_ = own_;
}

DriverFactory TimerReconciliator::factory(Tick timeoutMin, Tick timeoutSpread) {
  return [timeoutMin, timeoutSpread](Round) {
    return std::make_unique<TimerReconciliator>(timeoutMin, timeoutSpread);
  };
}

}  // namespace ooc::compose

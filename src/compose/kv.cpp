#include "compose/kv.hpp"

#include <stdexcept>

#include "obs/run_id.hpp"

namespace ooc::compose {

std::string configRunId(const std::string& serialized) {
  // Hash only the key=value payload: `#` comment lines (including a prior
  // stamp) are skipped, so hashing a stamped file reproduces the stamp.
  std::uint64_t hash = obs::kFnvOffsetBasis;
  std::istringstream in(serialized);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    hash = obs::fnv1a(line, hash);
    hash = obs::fnv1a("\n", hash);
  }
  return obs::toHex(hash);
}

std::string stampRunId(const std::string& body) {
  return "# run-id=" + configRunId(body) + "\n" + body;
}

KvReader::KvReader(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("config: malformed line '" + line + "'");
    entries_[line.substr(0, eq)].push_back(line.substr(eq + 1));
  }
}

std::string KvReader::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end())
    throw std::runtime_error("config: missing key '" + key + "'");
  return it->second.front();
}

const std::vector<std::string>& KvReader::getAll(const std::string& key) const {
  static const std::vector<std::string> kEmpty;
  const auto it = entries_.find(key);
  return it == entries_.end() ? kEmpty : it->second;
}

std::vector<Value> KvReader::getValues(const std::string& key) const {
  std::vector<Value> values;
  const std::string joined = get(key, "");
  std::istringstream in(joined);
  std::string token;
  while (std::getline(in, token, ','))
    if (!token.empty()) values.push_back(std::stoll(token));
  return values;
}

std::string crashEntry(const std::pair<ProcessId, Tick>& crash) {
  return std::to_string(crash.first) + "@" + std::to_string(crash.second);
}

std::pair<ProcessId, Tick> parseCrash(const std::string& entry) {
  const auto at = entry.find('@');
  if (at == std::string::npos)
    throw std::runtime_error("config: malformed crash '" + entry + "'");
  return {static_cast<ProcessId>(std::stoul(entry.substr(0, at))),
          static_cast<Tick>(std::stoull(entry.substr(at + 1)))};
}

void putAdversary(KvWriter& kv, const AdversaryOptions& adversary) {
  kv.put("adversary-budget", adversary.extraDelayMax);
  kv.put("adversary-prob", adversary.perturbProbability);
  kv.put("adversary-seed", adversary.seed);
}

AdversaryOptions getAdversary(const KvReader& kv) {
  AdversaryOptions adversary;
  adversary.extraDelayMax = kv.getU64("adversary-budget", 0);
  adversary.perturbProbability = kv.getDouble("adversary-prob", 1.0);
  adversary.seed = kv.getU64("adversary-seed", 1);
  return adversary;
}

}  // namespace ooc::compose

// The generic composition runner: one harness for every registered
// detector × driver pairing. This replaces the per-protocol run loops that
// used to be copy-pasted across src/harness/scenarios.cpp — the legacy
// runBenOr/runByzantineBenOr/runPhaseKing entry points are now thin
// adapters that lower their config structs into a Composition and call
// runComposition(), reproducing the old schedules byte-for-byte.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "compose/composition.hpp"
#include "compose/hooks.hpp"
#include "core/properties.hpp"
#include "fd/audit.hpp"
#include "util/types.hpp"

namespace ooc::compose {

struct CompositionResult {
  bool allDecided = false;
  bool agreementViolated = false;
  bool validityViolated = false;
  Value decidedValue = kNoValue;
  /// Highest decision round among deciders; 0 if nobody decided.
  Round maxDecisionRound = 0;
  double meanDecisionRound = 0.0;
  Tick lastDecisionTick = 0;
  std::uint64_t messagesByCorrect = 0;
  /// Scheduler events executed by the run (bench_simcore's work unit).
  std::uint64_t eventsProcessed = 0;
  /// Deep payload copies made by the simulator. Zero for every in-tree
  /// object (they all use the shared-payload post/fanout path); growth
  /// here is a copy regression, asserted by tests/simcore_perf_test.cpp.
  std::uint64_t messagesCloned = 0;

  /// Per-round object audits over the template processes.
  std::vector<RoundAudit> audits;
  bool allAuditsOk = true;

  /// §5 witnesses (VAC detectors, decided runs only): completed
  /// adopt-level outcomes whose value differs from the run's decided value
  /// (decide-on-adopt would have broken agreement).
  std::size_t adoptOutcomesTotal = 0;
  std::size_t adoptMismatchWitnesses = 0;

  /// Scheduling-policy observations (DESIGN.md §14). Overlap witnesses
  /// count rounds whose detector went live while an earlier round's loose
  /// driver was still exchanging — structurally impossible under lockstep
  /// (always 0 there). Deferred activations count successor invocations
  /// handed to a fresh wakeup event (event-driven only). maxRoundSkew is
  /// the widest spread of completed detector rounds observed across
  /// correct processes at any single point of the run.
  std::uint64_t overlapWitnesses = 0;
  std::uint64_t deferredActivations = 0;
  Round maxRoundSkew = 0;

  /// FD-axiom audit of the run's oracle (oracle-guided pairings only):
  /// completeness, accuracy and leader convergence checked against the
  /// fault schedule, independent of whether the run decided.
  std::optional<fd::OracleAudit> oracleAudit;
};

/// Runs one composition to the stop condition. Deterministic in
/// (composition, seed); throws std::invalid_argument on an invalid
/// composition (unknown names, rejected pairing, bad parameters).
CompositionResult runComposition(const Composition& composition,
                                 const RunHooks& hooks = {});

}  // namespace ooc::compose

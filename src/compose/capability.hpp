// Capability descriptors for registered consensus objects (paper §3-§5).
//
// The paper's thesis is that a consensus algorithm is a *composition*: an
// agreement detector (AC or VAC) paired with a driver (conciliator or
// reconciliator) under the generic template. Not every pairing is an
// algorithm, though — §5 proves the two directions are asymmetric:
//
//  * An AC detector under the reconciliator template (Algorithm 1) is
//    UNSOUND: the template decides on adopt-level confidence, and adopt
//    values may disagree across processes, so "deciding on adopt" breaks
//    agreement. The registry rejects this pairing outright.
//  * A VAC detector under the conciliator template (Algorithm 2) is
//    type-incoherent: the template has no vacillate arm (and asserts it
//    never sees one). The sound route is to downgrade the detector first
//    (AcFromVac merges vacillate into adopt), which the registry suggests
//    in its diagnostic.
//
// Beyond the confidence-level argument, descriptors capture two orthogonal
// execution constraints: the invocation mode (lockstep exchanges vs
// asynchronous message passing) and the fault model the object's quorum
// arithmetic assumes. A Byzantine-model detector paired with a driver
// whose waits trust every sender would silently lose its tolerance, so
// those pairings are rejected too.
// A third orthogonal constraint is the *round-scheduling policy*
// (core/scheduling.hpp): objects declare whether their exchanges survive
// per-process round skew. Lockstep-mode objects never do (the tick barrier
// IS their calendar), and some async objects also bake round alignment
// into their waits — the timer reconciliator's timeout race assumes the
// claim wave of a round is in flight while its timers run. The registry's
// validateScheduling() gate rejects a non-lockstep policy over any
// skew-intolerant object, with a diagnostic citing DESIGN.md §14.
#pragma once

#include <cstddef>

namespace ooc::compose {

/// Confidence levels the detector can return (paper §3): an adopt-commit
/// object never vacillates; a vacillate-adopt-commit object may.
enum class DetectorClass { kAdoptCommit, kVacillateAdoptCommit };

/// Which template arm the driver implements. A conciliator (Algorithm 2)
/// supplies the value used on adopt; a reconciliator (Algorithm 1) supplies
/// the value used on vacillate.
enum class DriverClass { kConciliator, kReconciliator };

/// Fault model the object's thresholds are engineered for.
enum class FaultModel { kCrash, kByzantine };

/// How the object exchanges messages: synchronous lockstep barriers, plain
/// asynchronous delivery, or either (drivers that never touch the network).
enum class InvocationMode { kLockstep, kAsync, kAny };

/// Which failure-detector oracle class a driver consumes, if any. Oracle
/// drivers (the rotating coordinators) are parameterized by an oracle
/// resolved from the registry's third object family; the requirement
/// gates which classes are sound — a skip-ahead coordinator trusts the
/// suspicion list absolutely, so only P's strong accuracy qualifies.
enum class OracleRequirement { kNone, kEventualLeader, kPerfect };

const char* toString(DetectorClass detectorClass) noexcept;
const char* toString(DriverClass driverClass) noexcept;
const char* toString(FaultModel model) noexcept;
const char* toString(InvocationMode mode) noexcept;
const char* toString(OracleRequirement requirement) noexcept;

/// What a registered detector is, independent of any run configuration.
struct DetectorCapability {
  DetectorClass detectorClass = DetectorClass::kVacillateAdoptCommit;
  FaultModel faultModel = FaultModel::kCrash;
  InvocationMode mode = InvocationMode::kAsync;
  /// Default protocol parameter t = floor((n-1)/tDivisor) when the
  /// composition leaves t unset (2 for crash quorums, 3 for Phase-King,
  /// 4 for Phase-Queen, 5 for Byzantine Ben-Or).
  std::size_t tDivisor = 2;
  /// Whether the detector's exchanges stay correct when processes run
  /// skewed rounds (non-lockstep scheduling policies). Quorum-counting
  /// async detectors qualify; lockstep detectors never do.
  bool toleratesSkew = true;
};

/// What a registered driver is.
struct DriverCapability {
  DriverClass driverClass = DriverClass::kReconciliator;
  InvocationMode mode = InvocationMode::kAny;
  /// Whether the driver's waits stay correct when some invokers are
  /// Byzantine (purely local drivers trivially qualify; quorum- or
  /// timer-waiting drivers that count every sender do not).
  bool toleratesByzantine = true;
  /// Whether every process must join the drive wave each round (quorum
  /// drivers such as the lottery); lowered to alwaysRunDriver.
  bool requiresEveryProcess = false;
  /// Oracle class the driver consumes (kNone for the oracle-free
  /// majority). resolve() rejects a mismatch in either direction.
  OracleRequirement oracle = OracleRequirement::kNone;
  /// Whether the driver's returned value ranges over the invokers'
  /// proposals (any 64-bit command) rather than a fixed binary coin
  /// domain. The multi-decree replicated-log service (src/svc/) gates on
  /// this: a binary coin can never return a client command, so a
  /// coin-driven log would decide values nobody proposed. The lottery
  /// (uniform choice among invoker values) and keep-value qualify; the
  /// coins do not.
  bool multivalued = false;
  /// Whether the driver's waits stay correct under per-process round skew
  /// (non-lockstep scheduling). Purely local and quorum-counting drivers
  /// qualify; the timer reconciliator does not (its timeout race presumes
  /// the round's claim wave is in flight while its timers run), and
  /// lockstep drivers never do.
  bool toleratesSkew = true;
};

}  // namespace ooc::compose

#include "compose/composition.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "compose/kv.hpp"
#include "obs/json.hpp"

namespace ooc::compose {

const char* toString(Placement placement) noexcept {
  switch (placement) {
    case Placement::kFront: return "front";
    case Placement::kBack: return "back";
    case Placement::kSpread: return "spread";
  }
  return "?";
}

Placement parsePlacement(const std::string& name) {
  if (name == "front") return Placement::kFront;
  if (name == "back") return Placement::kBack;
  if (name == "spread") return Placement::kSpread;
  throw std::runtime_error("unknown placement '" + name + "'");
}

const char* toString(PlantedFault fault) noexcept {
  switch (fault) {
    case PlantedFault::kNone: return "none";
    case PlantedFault::kVacAdoptFlip: return "vac-adopt-flip";
  }
  return "?";
}

PlantedFault parsePlantedFault(const std::string& name) {
  if (name == "none") return PlantedFault::kNone;
  if (name == "vac-adopt-flip") return PlantedFault::kVacAdoptFlip;
  throw std::runtime_error("unknown fault '" + name + "'");
}

// ---------------------------------------------------------------------------
// resolution

ResolvedComposition resolve(const Composition& composition) {
  Registry& reg = registry();
  if (const auto diagnostic =
          reg.validatePairing(composition.detector, composition.driver)) {
    throw std::invalid_argument(*diagnostic);
  }
  if (const auto diagnostic = reg.validateOracle(
          composition.driver, composition.oracle, composition.oracleKnobs)) {
    throw std::invalid_argument(*diagnostic);
  }
  if (const auto diagnostic = reg.validateScheduling(
          composition.detector, composition.driver, composition.scheduler)) {
    throw std::invalid_argument(*diagnostic);
  }
  ResolvedComposition resolved;
  resolved.detector = &reg.detector(composition.detector);
  resolved.driver = &reg.driver(composition.driver);
  if (!composition.oracle.empty())
    resolved.oracle = &reg.oracle(composition.oracle);
  const std::size_t divisor = resolved.detector->capability.tDivisor;
  resolved.t = composition.t.value_or(
      composition.n == 0 ? 0 : (composition.n - 1) / divisor);
  resolved.lockstep =
      resolved.detector->capability.mode == InvocationMode::kLockstep;
  resolved.scheduling = composition.scheduler;
  // ooo-driver detaches the courtesy drive of every round — which only
  // exists when every process drives every round.
  resolved.alwaysRunDriver =
      resolved.lockstep || resolved.driver->capability.requiresEveryProcess ||
      composition.scheduler == SchedulingPolicy::kOooDriver;

  if (composition.byzantineCount > composition.n)
    throw std::invalid_argument("more Byzantine than processes");
  if (composition.byzantineCount > 0 &&
      resolved.detector->capability.faultModel != FaultModel::kByzantine) {
    throw std::invalid_argument(
        "detector '" + composition.detector +
        "' is crash-model: it cannot host planted Byzantine processes");
  }
  if (!composition.crashes.empty() && resolved.lockstep)
    throw std::invalid_argument(
        "lockstep compositions take Byzantine plants, not crash schedules");
  return resolved;
}

Composition parseSpec(const std::string& spec, const std::string& oracle,
                      const fd::OracleKnobs& oracleKnobs) {
  const auto trim = [](std::string s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
      s.erase(s.begin());
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
      s.pop_back();
    return s;
  };
  const auto plus = spec.find('+');
  if (plus == std::string::npos)
    throw std::invalid_argument("composition spec '" + spec +
                                "' must be detector+driver");
  Composition composition;
  composition.detector = trim(spec.substr(0, plus));
  composition.driver = trim(spec.substr(plus + 1));
  if (composition.detector.empty() || composition.driver.empty())
    throw std::invalid_argument("composition spec '" + spec +
                                "' must be detector+driver");
  composition.oracle = oracle;
  composition.oracleKnobs = oracleKnobs;
  resolve(composition);  // surfaces unknown names / invalid pairings now
  return composition;
}

// ---------------------------------------------------------------------------
// key=value wire format

std::string serialize(const Composition& composition) {
  KvWriter kv;
  kv.put("detector", composition.detector);
  kv.put("driver", composition.driver);
  kv.put("n", composition.n);
  if (composition.t) kv.put("t", *composition.t);
  kv.put("byzantine", composition.byzantineCount);
  kv.put("byz-strategy", composition.byzantineStrategy);
  kv.put("placement", toString(composition.placement));
  kv.putValues("inputs", composition.inputs);
  kv.put("seed", composition.seed);
  kv.put("bias", composition.bias);
  for (const auto& crash : composition.crashes)
    kv.put("crash", crashEntry(crash));
  kv.put("min-delay", composition.minDelay);
  kv.put("max-delay", composition.maxDelay);
  putAdversary(kv, composition.adversary);
  kv.put("early-commit",
         static_cast<std::uint64_t>(composition.earlyCommitDecision));
  kv.put("max-rounds", static_cast<std::uint64_t>(composition.maxRounds));
  kv.put("max-ticks", composition.maxTicks);
  kv.put("fault", toString(composition.fault));
  // Same wire-purity rule as the oracle role below: the scheduler key
  // appears only for non-default policies, so every pre-policy golden and
  // counterexample stays byte-identical.
  if (composition.scheduler != SchedulingPolicy::kLockstep)
    kv.put("scheduler", toString(composition.scheduler));
  // Zero-cost for oracle-free pairings: not a byte changes unless an
  // oracle is attached (the pre-oracle goldens stay byte-identical).
  if (!composition.oracle.empty()) {
    kv.put("oracle", composition.oracle);
    kv.put("oracle-completeness-lag", composition.oracleKnobs.completenessLag);
    kv.put("oracle-stabilize-at", composition.oracleKnobs.stabilizeAt);
    kv.put("oracle-noise", composition.oracleKnobs.noise);
    kv.put("oracle-noise-epoch", composition.oracleKnobs.noiseEpoch);
    kv.put("oracle-lie",
           static_cast<std::uint64_t>(composition.oracleKnobs.lieAboutBound));
  }
  return stampRunId(kv.str());
}

Composition parseComposition(const std::string& text) {
  const KvReader kv(text);
  Composition composition;
  composition.detector = kv.get("detector", composition.detector);
  composition.driver = kv.get("driver", composition.driver);
  composition.n = kv.getU64("n", composition.n);
  if (kv.has("t")) composition.t = kv.getU64("t", 0);
  composition.byzantineCount =
      kv.getU64("byzantine", composition.byzantineCount);
  composition.byzantineStrategy =
      kv.get("byz-strategy", composition.byzantineStrategy);
  composition.placement = parsePlacement(kv.get("placement", "front"));
  composition.inputs = kv.getValues("inputs");
  composition.seed = kv.getU64("seed", composition.seed);
  composition.bias = kv.getDouble("bias", composition.bias);
  for (const std::string& entry : kv.getAll("crash"))
    composition.crashes.push_back(parseCrash(entry));
  composition.minDelay = kv.getU64("min-delay", composition.minDelay);
  composition.maxDelay = kv.getU64("max-delay", composition.maxDelay);
  composition.adversary = getAdversary(kv);
  composition.earlyCommitDecision = kv.getU64("early-commit", 0) != 0;
  composition.maxRounds =
      static_cast<Round>(kv.getU64("max-rounds", composition.maxRounds));
  composition.maxTicks = kv.getU64("max-ticks", composition.maxTicks);
  composition.fault = parsePlantedFault(kv.get("fault", "none"));
  {
    const std::string name = kv.get("scheduler", "lockstep");
    const auto policy = parseSchedulingPolicy(name);
    if (!policy)
      throw std::runtime_error("unknown scheduler '" + name +
                               "'; known: lockstep, event-driven, "
                               "ooo-driver");
    composition.scheduler = *policy;
  }
  composition.oracle = kv.get("oracle", composition.oracle);
  composition.oracleKnobs.completenessLag = kv.getU64(
      "oracle-completeness-lag", composition.oracleKnobs.completenessLag);
  composition.oracleKnobs.stabilizeAt =
      kv.getU64("oracle-stabilize-at", composition.oracleKnobs.stabilizeAt);
  composition.oracleKnobs.noise =
      kv.getDouble("oracle-noise", composition.oracleKnobs.noise);
  composition.oracleKnobs.noiseEpoch =
      kv.getU64("oracle-noise-epoch", composition.oracleKnobs.noiseEpoch);
  composition.oracleKnobs.lieAboutBound = kv.getU64("oracle-lie", 0) != 0;
  // Same gate as the CLI: a pairing the registry rejects must not load
  // from a file either, and with the identical diagnostic.
  resolve(composition);
  return composition;
}

// ---------------------------------------------------------------------------
// JSON form
//
// The library's obs::JsonWriter is emission-only (the telemetry layer never
// reads JSON back), so the composition layer carries its own minimal strict
// parser: single document, objects/arrays/strings/numbers/bools/null,
// no trailing garbage.

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parseDocument() {
    JsonValue value = parseValue();
    skipSpace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skipSpace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parseValue() {
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parseString();
        return v;
      }
      case 't':
      case 'f': return parseLiteralBool();
      case 'n': parseLiteral("null"); return JsonValue{};
      default: return parseNumber();
    }
  }

  void parseLiteral(const char* literal) {
    for (const char* c = literal; *c != '\0'; ++c) {
      if (pos_ >= text_.size() || text_[pos_] != *c)
        fail(std::string("malformed literal (expected ") + literal + ")");
      ++pos_;
    }
  }

  JsonValue parseLiteralBool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_[pos_] == 't') {
      parseLiteral("true");
      v.boolean = true;
    } else {
      parseLiteral("false");
    }
    return v;
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    char* end = nullptr;
    v.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + token + "'");
    return v;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        default: fail("unsupported escape");  // \uXXXX never emitted here
      }
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parseValue());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = parseString();
      expect(':');
      v.object.emplace_back(std::move(key), parseValue());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::uint64_t asU64(const JsonValue& v, const char* key) {
  if (v.kind != JsonValue::Kind::kNumber)
    throw std::runtime_error(std::string("json: '") + key +
                             "' must be a number");
  return static_cast<std::uint64_t>(v.number);
}

double asDouble(const JsonValue& v, const char* key) {
  if (v.kind != JsonValue::Kind::kNumber)
    throw std::runtime_error(std::string("json: '") + key +
                             "' must be a number");
  return v.number;
}

const std::string& asString(const JsonValue& v, const char* key) {
  if (v.kind != JsonValue::Kind::kString)
    throw std::runtime_error(std::string("json: '") + key +
                             "' must be a string");
  return v.string;
}

bool asBool(const JsonValue& v, const char* key) {
  if (v.kind != JsonValue::Kind::kBool)
    throw std::runtime_error(std::string("json: '") + key +
                             "' must be a boolean");
  return v.boolean;
}

}  // namespace

std::string toJson(const Composition& composition) {
  obs::JsonWriter json;
  json.beginObject();
  json.key("schema").value("ooc.composition.v1");
  json.key("detector").value(composition.detector);
  json.key("driver").value(composition.driver);
  json.key("n").value(static_cast<std::uint64_t>(composition.n));
  json.key("t");
  if (composition.t) {
    json.value(static_cast<std::uint64_t>(*composition.t));
  } else {
    json.raw("null");
  }
  json.key("byzantine")
      .value(static_cast<std::uint64_t>(composition.byzantineCount));
  json.key("byz_strategy").value(composition.byzantineStrategy);
  json.key("placement").value(toString(composition.placement));
  json.key("inputs").beginArray();
  for (const Value input : composition.inputs)
    json.value(static_cast<std::int64_t>(input));
  json.endArray();
  json.key("seed").value(composition.seed);
  json.key("bias").value(composition.bias);
  json.key("crashes").beginArray();
  for (const auto& crash : composition.crashes) json.value(crashEntry(crash));
  json.endArray();
  json.key("min_delay").value(composition.minDelay);
  json.key("max_delay").value(composition.maxDelay);
  json.key("adversary_budget").value(composition.adversary.extraDelayMax);
  json.key("adversary_prob").value(composition.adversary.perturbProbability);
  json.key("adversary_seed").value(composition.adversary.seed);
  json.key("early_commit").value(composition.earlyCommitDecision);
  json.key("max_rounds")
      .value(static_cast<std::uint64_t>(composition.maxRounds));
  json.key("max_ticks").value(composition.maxTicks);
  json.key("fault").value(toString(composition.fault));
  if (composition.scheduler != SchedulingPolicy::kLockstep)  // wire purity
    json.key("scheduler").value(toString(composition.scheduler));
  if (!composition.oracle.empty()) {  // zero-cost when no oracle attached
    json.key("oracle").value(composition.oracle);
    json.key("oracle_completeness_lag")
        .value(composition.oracleKnobs.completenessLag);
    json.key("oracle_stabilize_at").value(composition.oracleKnobs.stabilizeAt);
    json.key("oracle_noise").value(composition.oracleKnobs.noise);
    json.key("oracle_noise_epoch").value(composition.oracleKnobs.noiseEpoch);
    json.key("oracle_lie").value(composition.oracleKnobs.lieAboutBound);
  }
  json.endObject();
  return json.str();
}

Composition fromJson(const std::string& text) {
  const JsonValue doc = JsonParser(text).parseDocument();
  if (doc.kind != JsonValue::Kind::kObject)
    throw std::runtime_error("json: composition must be an object");
  Composition composition;
  for (const auto& [key, value] : doc.object) {
    if (key == "schema") {
      if (asString(value, "schema") != "ooc.composition.v1")
        throw std::runtime_error("json: unsupported schema '" + value.string +
                                 "'");
    } else if (key == "detector") {
      composition.detector = asString(value, "detector");
    } else if (key == "driver") {
      composition.driver = asString(value, "driver");
    } else if (key == "n") {
      composition.n = asU64(value, "n");
    } else if (key == "t") {
      if (value.kind != JsonValue::Kind::kNull)
        composition.t = asU64(value, "t");
    } else if (key == "byzantine") {
      composition.byzantineCount = asU64(value, "byzantine");
    } else if (key == "byz_strategy") {
      composition.byzantineStrategy = asString(value, "byz_strategy");
    } else if (key == "placement") {
      composition.placement = parsePlacement(asString(value, "placement"));
    } else if (key == "inputs") {
      if (value.kind != JsonValue::Kind::kArray)
        throw std::runtime_error("json: 'inputs' must be an array");
      composition.inputs.clear();
      for (const JsonValue& input : value.array)
        composition.inputs.push_back(
            static_cast<Value>(asDouble(input, "inputs[]")));
    } else if (key == "seed") {
      composition.seed = asU64(value, "seed");
    } else if (key == "bias") {
      composition.bias = asDouble(value, "bias");
    } else if (key == "crashes") {
      if (value.kind != JsonValue::Kind::kArray)
        throw std::runtime_error("json: 'crashes' must be an array");
      composition.crashes.clear();
      for (const JsonValue& crash : value.array)
        composition.crashes.push_back(parseCrash(asString(crash, "crashes[]")));
    } else if (key == "min_delay") {
      composition.minDelay = asU64(value, "min_delay");
    } else if (key == "max_delay") {
      composition.maxDelay = asU64(value, "max_delay");
    } else if (key == "adversary_budget") {
      composition.adversary.extraDelayMax = asU64(value, "adversary_budget");
    } else if (key == "adversary_prob") {
      composition.adversary.perturbProbability =
          asDouble(value, "adversary_prob");
    } else if (key == "adversary_seed") {
      composition.adversary.seed = asU64(value, "adversary_seed");
    } else if (key == "early_commit") {
      composition.earlyCommitDecision = asBool(value, "early_commit");
    } else if (key == "max_rounds") {
      composition.maxRounds = static_cast<Round>(asU64(value, "max_rounds"));
    } else if (key == "max_ticks") {
      composition.maxTicks = asU64(value, "max_ticks");
    } else if (key == "fault") {
      composition.fault = parsePlantedFault(asString(value, "fault"));
    } else if (key == "scheduler") {
      const std::string& name = asString(value, "scheduler");
      const auto policy = parseSchedulingPolicy(name);
      if (!policy)
        throw std::runtime_error("json: unknown scheduler '" + name +
                                 "'; known: lockstep, event-driven, "
                                 "ooo-driver");
      composition.scheduler = *policy;
    } else if (key == "oracle") {
      composition.oracle = asString(value, "oracle");
    } else if (key == "oracle_completeness_lag") {
      composition.oracleKnobs.completenessLag =
          asU64(value, "oracle_completeness_lag");
    } else if (key == "oracle_stabilize_at") {
      composition.oracleKnobs.stabilizeAt =
          asU64(value, "oracle_stabilize_at");
    } else if (key == "oracle_noise") {
      composition.oracleKnobs.noise = asDouble(value, "oracle_noise");
    } else if (key == "oracle_noise_epoch") {
      composition.oracleKnobs.noiseEpoch =
          asU64(value, "oracle_noise_epoch");
    } else if (key == "oracle_lie") {
      composition.oracleKnobs.lieAboutBound = asBool(value, "oracle_lie");
    } else {
      throw std::runtime_error("json: unknown composition key '" + key + "'");
    }
  }
  resolve(composition);  // identical diagnostic to every other parse path
  return composition;
}

}  // namespace ooc::compose

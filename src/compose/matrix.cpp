#include "compose/matrix.hpp"

#include <algorithm>

#include "compose/run.hpp"
#include "obs/json.hpp"
#include "util/stats.hpp"

namespace ooc::compose {
namespace {

/// Per-detector base configuration: modest sizes so the full matrix stays
/// CI-cheap, split inputs so termination is earned by the driver (unanimous
/// starts commit in round 1 and would test nothing), and caps tight enough
/// that the keep-value control (which may legitimately never decide) exits
/// by bound rather than by wall clock.
Composition cellBase(const std::string& detectorName,
                     const std::string& driverName) {
  Composition composition;
  composition.detector = detectorName;
  composition.driver = driverName;
  composition.maxRounds = 200;
  composition.maxTicks = 200'000;
  const auto& capability = registry().detector(detectorName).capability;
  if (capability.faultModel == FaultModel::kByzantine) {
    composition.byzantineStrategy = "equivocate";
    if (capability.mode == InvocationMode::kLockstep) {
      // Phase-King wants 3t < n, Phase-Queen 4t < n; f = t = 2 exercises
      // the full tolerance. Front placement: hostile first reigns.
      composition.n = capability.tDivisor == 3 ? 7 : 9;
      composition.byzantineCount = 2;
      composition.placement = Placement::kFront;
    } else {
      // Byzantine Ben-Or: n > 5t with t = f = 2 attackers at the back,
      // like the legacy ByzantineBenOrConfig default.
      composition.n = 11;
      composition.byzantineCount = 2;
      composition.placement = Placement::kBack;
    }
  } else {
    composition.n = 5;
    composition.inputs = {0, 1, 0, 1, 1};
  }
  return composition;
}

}  // namespace

MatrixReport runMatrix(const MatrixOptions& options) {
  const int runsPerCell = options.quick ? 5 : options.runsPerCell;
  Registry& reg = registry();
  MatrixReport report;
  report.detectors = reg.detectorNames();
  report.drivers = reg.driverNames();

  for (const std::string& detectorName : report.detectors) {
    for (const std::string& driverName : report.drivers) {
      MatrixCell cell;
      cell.detector = detectorName;
      cell.driver = driverName;
      if (const auto diagnostic =
              reg.validatePairing(detectorName, driverName)) {
        cell.diagnostic = *diagnostic;
        ++report.rejectedCells;
        report.cells.push_back(std::move(cell));
        continue;
      }
      cell.valid = true;
      ++report.validCells;

      Summary rounds;
      Summary messages;
      for (int run = 0; run < runsPerCell; ++run) {
        Composition composition = cellBase(detectorName, driverName);
        composition.seed = options.seedBase + static_cast<std::uint64_t>(run);
        const CompositionResult result = runComposition(composition);
        ++cell.runs;
        if (result.allDecided) {
          ++cell.decided;
          rounds.add(static_cast<double>(result.maxDecisionRound));
          cell.maxRound = std::max(cell.maxRound, result.maxDecisionRound);
        }
        messages.add(static_cast<double>(result.messagesByCorrect));
        if (result.agreementViolated) cell.agreementOk = false;
        if (result.validityViolated) cell.validityOk = false;
        if (!result.allAuditsOk) cell.auditsOk = false;
      }
      if (!rounds.empty()) cell.meanRounds = rounds.mean();
      if (!messages.empty()) cell.meanMessages = messages.mean();
      if (!cell.agreementOk || !cell.validityOk || !cell.auditsOk)
        report.safetyOk = false;
      report.cells.push_back(std::move(cell));
    }
  }
  return report;
}

std::string matrixToJson(const MatrixReport& report,
                         const MatrixOptions& options) {
  obs::JsonWriter json;
  json.beginObject();
  json.key("schema").value("ooc.matrix.v1");
  json.key("quick").value(options.quick);
  json.key("runs_per_cell")
      .value(static_cast<std::int64_t>(options.quick ? 5
                                                     : options.runsPerCell));
  json.key("seed_base").value(options.seedBase);
  json.key("detectors").beginArray();
  for (const std::string& name : report.detectors) json.value(name);
  json.endArray();
  json.key("drivers").beginArray();
  for (const std::string& name : report.drivers) json.value(name);
  json.endArray();
  json.key("cells").beginArray();
  for (const MatrixCell& cell : report.cells) {
    json.beginObject();
    json.key("detector").value(cell.detector);
    json.key("driver").value(cell.driver);
    json.key("valid").value(cell.valid);
    json.key("diagnostic").value(cell.diagnostic);
    json.key("runs").value(static_cast<std::int64_t>(cell.runs));
    json.key("decided").value(static_cast<std::int64_t>(cell.decided));
    json.key("agreement_ok").value(cell.agreementOk);
    json.key("validity_ok").value(cell.validityOk);
    json.key("audits_ok").value(cell.auditsOk);
    json.key("mean_rounds").value(cell.meanRounds);
    json.key("max_round").value(static_cast<std::uint64_t>(cell.maxRound));
    json.key("mean_messages").value(cell.meanMessages);
    json.endObject();
  }
  json.endArray();
  json.key("valid_cells")
      .value(static_cast<std::uint64_t>(report.validCells));
  json.key("rejected_cells")
      .value(static_cast<std::uint64_t>(report.rejectedCells));
  json.key("safety_ok").value(report.safetyOk);
  json.endObject();
  return json.str();
}

}  // namespace ooc::compose

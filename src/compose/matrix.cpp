#include "compose/matrix.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "compose/run.hpp"
#include "obs/json.hpp"
#include "sweep/scheduler.hpp"
#include "util/stats.hpp"

namespace ooc::compose {
namespace {

/// Per-detector base configuration: modest sizes so the full matrix stays
/// CI-cheap, split inputs so termination is earned by the driver (unanimous
/// starts commit in round 1 and would test nothing), and caps tight enough
/// that the keep-value control (which may legitimately never decide) exits
/// by bound rather than by wall clock.
Composition cellBase(const std::string& detectorName,
                     const std::string& driverName) {
  Composition composition;
  composition.detector = detectorName;
  composition.driver = driverName;
  composition.maxRounds = 200;
  composition.maxTicks = 200'000;
  const auto& capability = registry().detector(detectorName).capability;
  if (capability.faultModel == FaultModel::kByzantine) {
    composition.byzantineStrategy = "equivocate";
    if (capability.mode == InvocationMode::kLockstep) {
      // Phase-King wants 3t < n, Phase-Queen 4t < n; f = t = 2 exercises
      // the full tolerance. Front placement: hostile first reigns.
      composition.n = capability.tDivisor == 3 ? 7 : 9;
      composition.byzantineCount = 2;
      composition.placement = Placement::kFront;
    } else {
      // Byzantine Ben-Or: n > 5t with t = f = 2 attackers at the back,
      // like the legacy ByzantineBenOrConfig default.
      composition.n = 11;
      composition.byzantineCount = 2;
      composition.placement = Placement::kBack;
    }
  } else {
    composition.n = 5;
    composition.inputs = {0, 1, 0, 1, 1};
  }
  // Oracle-consuming drivers get a default oracle of the class they
  // require, with modest-but-honest quality knobs; every other pairing
  // keeps the oracle role detached (zero-cost).
  switch (registry().driver(driverName).capability.oracle) {
    case OracleRequirement::kNone: break;
    case OracleRequirement::kEventualLeader:
      composition.oracle = "omega";
      composition.oracleKnobs.stabilizeAt = 40;
      composition.oracleKnobs.noise = 0.25;
      break;
    case OracleRequirement::kPerfect:
      composition.oracle = "perfect-p";
      break;
  }
  return composition;
}

}  // namespace

MatrixReport runMatrix(const MatrixOptions& options) {
  const int runsPerCell = options.quick ? 5 : options.runsPerCell;
  Registry& reg = registry();
  MatrixReport report;
  report.detectors = reg.detectorNames();
  report.drivers = reg.driverNames();

  // Cells are enumerated row-major up front and fanned across the
  // experiment scheduler (each cell is runsPerCell independent seeded
  // simulations); the report fold below walks the pre-sized cell vector in
  // enumeration order, so counts, safety verdicts, and the JSON downstream
  // are byte-identical at any thread count.
  struct CellKey {
    std::string detector;
    std::string driver;
  };
  std::vector<CellKey> keys;
  keys.reserve(report.detectors.size() * report.drivers.size());
  for (const std::string& detectorName : report.detectors)
    for (const std::string& driverName : report.drivers)
      keys.push_back(CellKey{detectorName, driverName});

  std::vector<MatrixCell> cells(keys.size());
  sweep::Options pool;
  pool.threads = options.threads;
  sweep::parallelFor(
      keys.size(),
      [&](std::size_t index, sweep::Control&) {
        const CellKey& key = keys[index];
        MatrixCell cell;
        cell.detector = key.detector;
        cell.driver = key.driver;
        if (const auto diagnostic =
                reg.validatePairing(key.detector, key.driver)) {
          cell.diagnostic = *diagnostic;
          cells[index] = std::move(cell);
          return;
        }
        cell.valid = true;
        Summary rounds;
        Summary messages;
        for (int run = 0; run < runsPerCell; ++run) {
          Composition composition = cellBase(key.detector, key.driver);
          cell.oracle = composition.oracle;
          composition.seed =
              options.seedBase + static_cast<std::uint64_t>(run);
          const CompositionResult result = runComposition(composition);
          ++cell.runs;
          if (result.allDecided) {
            ++cell.decided;
            rounds.add(static_cast<double>(result.maxDecisionRound));
            cell.maxRound = std::max(cell.maxRound, result.maxDecisionRound);
          }
          messages.add(static_cast<double>(result.messagesByCorrect));
          if (result.agreementViolated) cell.agreementOk = false;
          if (result.validityViolated) cell.validityOk = false;
          if (!result.allAuditsOk) cell.auditsOk = false;
          if (result.oracleAudit && !result.oracleAudit->ok())
            cell.fdAxiomsOk = false;
        }
        if (!rounds.empty()) cell.meanRounds = rounds.mean();
        if (!messages.empty()) cell.meanMessages = messages.mean();
        cells[index] = std::move(cell);
      },
      pool);

  for (MatrixCell& cell : cells) {
    if (cell.valid) {
      ++report.validCells;
      if (!cell.agreementOk || !cell.validityOk || !cell.auditsOk ||
          !cell.fdAxiomsOk)
        report.safetyOk = false;
    } else {
      ++report.rejectedCells;
    }
    report.cells.push_back(std::move(cell));
  }
  return report;
}

std::string matrixToJson(const MatrixReport& report,
                         const MatrixOptions& options) {
  obs::JsonWriter json;
  json.beginObject();
  json.key("schema").value("ooc.matrix.v1");
  json.key("quick").value(options.quick);
  json.key("runs_per_cell")
      .value(static_cast<std::int64_t>(options.quick ? 5
                                                     : options.runsPerCell));
  json.key("seed_base").value(options.seedBase);
  json.key("detectors").beginArray();
  for (const std::string& name : report.detectors) json.value(name);
  json.endArray();
  json.key("drivers").beginArray();
  for (const std::string& name : report.drivers) json.value(name);
  json.endArray();
  json.key("cells").beginArray();
  for (const MatrixCell& cell : report.cells) {
    json.beginObject();
    json.key("detector").value(cell.detector);
    json.key("driver").value(cell.driver);
    json.key("oracle").value(cell.oracle);
    json.key("valid").value(cell.valid);
    json.key("diagnostic").value(cell.diagnostic);
    json.key("runs").value(static_cast<std::int64_t>(cell.runs));
    json.key("decided").value(static_cast<std::int64_t>(cell.decided));
    json.key("agreement_ok").value(cell.agreementOk);
    json.key("validity_ok").value(cell.validityOk);
    json.key("audits_ok").value(cell.auditsOk);
    json.key("fd_axioms_ok").value(cell.fdAxiomsOk);
    json.key("mean_rounds").value(cell.meanRounds);
    json.key("max_round").value(static_cast<std::uint64_t>(cell.maxRound));
    json.key("mean_messages").value(cell.meanMessages);
    json.endObject();
  }
  json.endArray();
  json.key("valid_cells")
      .value(static_cast<std::uint64_t>(report.validCells));
  json.key("rejected_cells")
      .value(static_cast<std::uint64_t>(report.rejectedCells));
  json.key("safety_ok").value(report.safetyOk);
  json.endObject();
  return json.str();
}

// ---------------------------------------------------------------------------
// E22

namespace {

/// The quality grid: an ideal oracle, a modestly-late noisy one, and a
/// slow noisy one. perfect-p only admits the noise-free points (its
/// strong accuracy forbids noise — the rejected cells document that).
struct QualityPoint {
  Tick stabilizeAt;
  double noise;
};
constexpr QualityPoint kQualityGrid[] = {
    {0, 0.0}, {60, 0.25}, {250, 0.5}};
constexpr Tick kOracleLag = 8;

Composition oracleCellBase(const std::string& driverName,
                           const std::string& oracleName,
                           const QualityPoint& quality) {
  Composition composition;
  composition.detector = "benor-vac";
  composition.driver = driverName;
  composition.oracle = oracleName;
  composition.oracleKnobs.completenessLag = kOracleLag;
  composition.oracleKnobs.stabilizeAt = quality.stabilizeAt;
  composition.oracleKnobs.noise = quality.noise;
  composition.n = 5;
  composition.inputs = {0, 1, 0, 1, 1};
  // One crash mid-stabilization: the coordinator rotation must both ride
  // out false suspicion and eventually suspect the genuinely dead.
  composition.crashes = {{4, 40}};
  composition.maxRounds = 300;
  composition.maxTicks = 300'000;
  return composition;
}

}  // namespace

OracleMatrixReport runOracleMatrix(const OracleMatrixOptions& options) {
  const int runsPerCell = options.quick ? 3 : options.runsPerCell;
  Registry& reg = registry();
  OracleMatrixReport report;
  report.oracles = reg.oracleNames();
  for (const std::string& name : reg.driverNames())
    if (reg.driver(name).capability.oracle != OracleRequirement::kNone)
      report.drivers.push_back(name);

  // Every cell — rejection rows included — becomes one task enumerated in
  // the report's canonical order, fanned across the experiment scheduler,
  // and folded back sequentially: ooc.fd-matrix.v1 stays byte-identical at
  // any thread count.
  std::vector<std::function<OracleMatrixCell()>> tasks;

  const auto rejectTask = [&reg](OracleMatrixCell cell,
                                 const std::string& driverName,
                                 const std::string& oracleName) {
    return [&reg, cell = std::move(cell), driverName, oracleName]() {
      OracleMatrixCell out = cell;
      out.diagnostic =
          *reg.validateOracle(driverName, oracleName, fd::OracleKnobs{});
      return out;
    };
  };

  for (const std::string& driverName : report.drivers) {
    // The missing-oracle row: a coordinator with nothing to consult.
    {
      OracleMatrixCell cell;
      cell.driver = driverName;
      cell.completenessLag = kOracleLag;
      tasks.push_back(rejectTask(std::move(cell), driverName, ""));
    }
    for (const std::string& oracleName : report.oracles) {
      for (const QualityPoint& quality : kQualityGrid) {
        OracleMatrixCell cell;
        cell.driver = driverName;
        cell.oracle = oracleName;
        cell.stabilizeAt = quality.stabilizeAt;
        cell.noise = quality.noise;
        cell.completenessLag = kOracleLag;
        tasks.push_back([&reg, &options, runsPerCell, cell = std::move(cell),
                         driverName, oracleName, quality]() {
          OracleMatrixCell out = cell;
          const Composition base =
              oracleCellBase(driverName, oracleName, quality);
          if (const auto diagnostic = reg.validateOracle(
                  driverName, oracleName, base.oracleKnobs)) {
            out.diagnostic = *diagnostic;
            return out;
          }
          out.valid = true;
          Summary rounds;
          for (int run = 0; run < runsPerCell; ++run) {
            Composition composition = base;
            composition.seed =
                options.seedBase + static_cast<std::uint64_t>(run);
            const CompositionResult result = runComposition(composition);
            ++out.runs;
            if (result.allDecided) {
              ++out.decided;
              rounds.add(static_cast<double>(result.maxDecisionRound));
              out.maxRound = std::max(out.maxRound, result.maxDecisionRound);
            }
            if (result.agreementViolated) out.agreementOk = false;
            if (result.validityViolated) out.validityOk = false;
            if (!result.allAuditsOk) out.auditsOk = false;
            if (result.oracleAudit && !result.oracleAudit->ok())
              out.fdAxiomsOk = false;
          }
          if (!rounds.empty()) out.meanRounds = rounds.mean();
          return out;
        });
      }
    }
  }

  // The unconsumed-oracle rows: attaching any oracle to an oracle-free
  // driver is rejected, not silently ignored.
  for (const std::string& oracleName : report.oracles) {
    OracleMatrixCell cell;
    cell.driver = "timer";
    cell.oracle = oracleName;
    cell.completenessLag = kOracleLag;
    tasks.push_back(rejectTask(std::move(cell), "timer", oracleName));
  }

  std::vector<OracleMatrixCell> cells(tasks.size());
  sweep::Options pool;
  pool.threads = options.threads;
  sweep::parallelFor(
      tasks.size(),
      [&](std::size_t index, sweep::Control&) { cells[index] = tasks[index](); },
      pool);

  for (OracleMatrixCell& cell : cells) {
    if (cell.valid) {
      ++report.validCells;
      if (!cell.agreementOk || !cell.validityOk || !cell.auditsOk ||
          !cell.fdAxiomsOk)
        report.safetyOk = false;
    } else {
      ++report.rejectedCells;
    }
    report.cells.push_back(std::move(cell));
  }
  return report;
}

std::string oracleMatrixToJson(const OracleMatrixReport& report,
                               const OracleMatrixOptions& options) {
  obs::JsonWriter json;
  json.beginObject();
  json.key("schema").value("ooc.fd-matrix.v1");
  json.key("quick").value(options.quick);
  json.key("runs_per_cell")
      .value(static_cast<std::int64_t>(options.quick ? 3
                                                     : options.runsPerCell));
  json.key("seed_base").value(options.seedBase);
  json.key("drivers").beginArray();
  for (const std::string& name : report.drivers) json.value(name);
  json.endArray();
  json.key("oracles").beginArray();
  for (const std::string& name : report.oracles) json.value(name);
  json.endArray();
  json.key("cells").beginArray();
  for (const OracleMatrixCell& cell : report.cells) {
    json.beginObject();
    json.key("driver").value(cell.driver);
    json.key("oracle").value(cell.oracle);
    json.key("stabilize_at").value(cell.stabilizeAt);
    json.key("noise").value(cell.noise);
    json.key("completeness_lag").value(cell.completenessLag);
    json.key("valid").value(cell.valid);
    json.key("diagnostic").value(cell.diagnostic);
    json.key("runs").value(static_cast<std::int64_t>(cell.runs));
    json.key("decided").value(static_cast<std::int64_t>(cell.decided));
    json.key("agreement_ok").value(cell.agreementOk);
    json.key("validity_ok").value(cell.validityOk);
    json.key("audits_ok").value(cell.auditsOk);
    json.key("fd_axioms_ok").value(cell.fdAxiomsOk);
    json.key("mean_rounds").value(cell.meanRounds);
    json.key("max_round").value(static_cast<std::uint64_t>(cell.maxRound));
    json.endObject();
  }
  json.endArray();
  json.key("valid_cells")
      .value(static_cast<std::uint64_t>(report.validCells));
  json.key("rejected_cells")
      .value(static_cast<std::uint64_t>(report.rejectedCells));
  json.key("safety_ok").value(report.safetyOk);
  json.endObject();
  return json.str();
}

// ---------------------------------------------------------------------------
// E24

namespace {

/// The engine roster: one pairing per engine family. The first three are
/// async and skew-tolerant (valid under every policy); the timer
/// reconciliator and the phase protocol exist to pin the rejection
/// diagnostics — their non-lockstep cells must fail validateScheduling
/// deterministically, not crash or silently fall back.
struct EngineRow {
  const char* detector;
  const char* driver;
  const char* oracle;  // "" = detached oracle role
};
constexpr EngineRow kEngineRoster[] = {
    {"benor-vac", "local-coin", ""},
    {"benor-vac", "ct-coordinator", "omega"},
    {"vac-from-two-ac", "local-coin", ""},
    {"benor-vac", "timer", ""},
    {"phaseking-ac", "king-conciliator", ""},
};
constexpr SchedulingPolicy kPolicyRoster[] = {
    SchedulingPolicy::kLockstep,
    SchedulingPolicy::kEventDriven,
    SchedulingPolicy::kOooDriver,
};

Composition roundlessCellBase(const EngineRow& row, SchedulingPolicy policy) {
  Composition composition;
  composition.detector = row.detector;
  composition.driver = row.driver;
  composition.scheduler = policy;
  composition.n = 5;
  composition.inputs = {0, 1, 0, 1, 1};
  composition.maxRounds = 200;
  composition.maxTicks = 200'000;
  if (row.oracle[0] != '\0') {
    composition.oracle = row.oracle;
    composition.oracleKnobs.stabilizeAt = 40;
    composition.oracleKnobs.noise = 0.25;
  }
  return composition;
}

}  // namespace

RoundlessMatrixReport runRoundlessMatrix(
    const RoundlessMatrixOptions& options) {
  const int runsPerCell = options.quick ? 3 : options.runsPerCell;
  Registry& reg = registry();
  RoundlessMatrixReport report;
  for (const SchedulingPolicy policy : kPolicyRoster)
    report.policies.push_back(toString(policy));
  for (const EngineRow& row : kEngineRoster)
    report.engines.push_back(std::string(row.detector) + "+" + row.driver);

  // Row-major enumeration (engines × policies) fanned across the
  // experiment scheduler; the fold walks the pre-sized vector in order, so
  // ooc.roundless.v1 is byte-identical at any thread count.
  struct CellKey {
    EngineRow row;
    SchedulingPolicy policy;
  };
  std::vector<CellKey> keys;
  for (const EngineRow& row : kEngineRoster)
    for (const SchedulingPolicy policy : kPolicyRoster)
      keys.push_back(CellKey{row, policy});

  std::vector<RoundlessMatrixCell> cells(keys.size());
  sweep::Options pool;
  pool.threads = options.threads;
  sweep::parallelFor(
      keys.size(),
      [&](std::size_t index, sweep::Control&) {
        const CellKey& key = keys[index];
        RoundlessMatrixCell cell;
        cell.detector = key.row.detector;
        cell.driver = key.row.driver;
        cell.oracle = key.row.oracle;
        cell.policy = toString(key.policy);
        if (const auto diagnostic =
                reg.validatePairing(key.row.detector, key.row.driver)) {
          cell.diagnostic = *diagnostic;
          cells[index] = std::move(cell);
          return;
        }
        if (const auto diagnostic = reg.validateScheduling(
                key.row.detector, key.row.driver, key.policy)) {
          cell.diagnostic = *diagnostic;
          cells[index] = std::move(cell);
          return;
        }
        cell.valid = true;
        Summary rounds;
        Summary messages;
        for (int run = 0; run < runsPerCell; ++run) {
          Composition composition = roundlessCellBase(key.row, key.policy);
          composition.seed =
              options.seedBase + static_cast<std::uint64_t>(run);
          const CompositionResult result = runComposition(composition);
          ++cell.runs;
          if (result.allDecided) {
            ++cell.decided;
            rounds.add(static_cast<double>(result.maxDecisionRound));
            cell.maxRound = std::max(cell.maxRound, result.maxDecisionRound);
          }
          messages.add(static_cast<double>(result.messagesByCorrect));
          if (result.agreementViolated) cell.agreementOk = false;
          if (result.validityViolated) cell.validityOk = false;
          if (!result.allAuditsOk) cell.auditsOk = false;
          if (result.oracleAudit && !result.oracleAudit->ok())
            cell.fdAxiomsOk = false;
          cell.overlapWitnesses += result.overlapWitnesses;
          cell.deferredActivations += result.deferredActivations;
          cell.maxRoundSkew =
              std::max(cell.maxRoundSkew, result.maxRoundSkew);
        }
        if (!rounds.empty()) cell.meanRounds = rounds.mean();
        if (!messages.empty()) cell.meanMessages = messages.mean();
        cells[index] = std::move(cell);
      },
      pool);

  for (RoundlessMatrixCell& cell : cells) {
    if (cell.valid) {
      ++report.validCells;
      if (!cell.agreementOk || !cell.validityOk || !cell.auditsOk ||
          !cell.fdAxiomsOk)
        report.safetyOk = false;
      // The lockstep column must be structurally skew-free: no overlap
      // witnesses, no deferred activations. (maxRoundSkew is NOT pinned —
      // the probe samples per-process completions sequentially within a
      // tick, so a transient spread of 1 is inherent to observation
      // granularity, not a schedule property.) A nonzero counter here is
      // a scheduler regression, flagged so CI trips on it.
      if (cell.policy == std::string("lockstep") &&
          (cell.overlapWitnesses != 0 || cell.deferredActivations != 0))
        report.safetyOk = false;
    } else {
      ++report.rejectedCells;
    }
    report.cells.push_back(std::move(cell));
  }
  return report;
}

std::string roundlessMatrixToJson(const RoundlessMatrixReport& report,
                                  const RoundlessMatrixOptions& options) {
  obs::JsonWriter json;
  json.beginObject();
  json.key("schema").value("ooc.roundless.v1");
  json.key("quick").value(options.quick);
  json.key("runs_per_cell")
      .value(static_cast<std::int64_t>(options.quick ? 3
                                                     : options.runsPerCell));
  json.key("seed_base").value(options.seedBase);
  json.key("policies").beginArray();
  for (const std::string& name : report.policies) json.value(name);
  json.endArray();
  json.key("engines").beginArray();
  for (const std::string& name : report.engines) json.value(name);
  json.endArray();
  json.key("cells").beginArray();
  for (const RoundlessMatrixCell& cell : report.cells) {
    json.beginObject();
    json.key("detector").value(cell.detector);
    json.key("driver").value(cell.driver);
    json.key("oracle").value(cell.oracle);
    json.key("policy").value(cell.policy);
    json.key("valid").value(cell.valid);
    json.key("diagnostic").value(cell.diagnostic);
    json.key("runs").value(static_cast<std::int64_t>(cell.runs));
    json.key("decided").value(static_cast<std::int64_t>(cell.decided));
    json.key("agreement_ok").value(cell.agreementOk);
    json.key("validity_ok").value(cell.validityOk);
    json.key("audits_ok").value(cell.auditsOk);
    json.key("fd_axioms_ok").value(cell.fdAxiomsOk);
    json.key("mean_rounds").value(cell.meanRounds);
    json.key("max_round").value(static_cast<std::uint64_t>(cell.maxRound));
    json.key("mean_messages").value(cell.meanMessages);
    json.key("overlap_witnesses").value(cell.overlapWitnesses);
    json.key("deferred_activations").value(cell.deferredActivations);
    json.key("max_round_skew")
        .value(static_cast<std::uint64_t>(cell.maxRoundSkew));
    json.endObject();
  }
  json.endArray();
  json.key("valid_cells")
      .value(static_cast<std::uint64_t>(report.validCells));
  json.key("rejected_cells")
      .value(static_cast<std::uint64_t>(report.rejectedCells));
  json.key("safety_ok").value(report.safetyOk);
  json.endObject();
  return json.str();
}

}  // namespace ooc::compose

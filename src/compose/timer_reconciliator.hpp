// Timer-based reconciliator: the Raft idea (randomized timeouts elect a
// spokesman) packaged as a standalone driver object, slot-compatible with
// the coin reconciliators of the Ben-Or family (paper §4.3's remark that
// Raft's leader election is "just another" agreement-shaking gadget).
//
// Each invoker arms a timer with an independent pseudo-random timeout. The
// first process whose timer fires claims its own value with a fanout; any
// invoker that hears a claim before its own timer fires cancels the timer
// and returns the claimant's value. Validity holds (every returned value is
// an invoker's input); weak agreement holds with probability 1: whenever
// the uniquely minimal timeout undercuts every peer's by more than the
// network's delay bound — which has constant probability per round — every
// invoker returns the same claim.
//
// Crash-model only: a Byzantine process could claim a fabricated value (the
// claim is trusted verbatim), so the registry refuses to pair this driver
// with Byzantine-model detectors. Asynchronous only: lockstep runs have no
// delay spread for the timeouts to race against.
#pragma once

#include <optional>
#include <string>

#include "core/objects.hpp"

namespace ooc::compose {

class TimerReconciliator final : public Driver {
 public:
  /// Timeouts are drawn uniformly from [timeoutMin, timeoutMin + spread).
  TimerReconciliator(Tick timeoutMin, Tick timeoutSpread);

  void invoke(ObjectContext& ctx, const Outcome& detected) override;
  void onMessage(ObjectContext& ctx, ProcessId from,
                 const Message& inner) override;
  void onTimer(ObjectContext& ctx, TimerId id) override;
  std::optional<Value> result() const override { return value_; }

  static DriverFactory factory(Tick timeoutMin, Tick timeoutSpread);

 private:
  Tick timeoutMin_;
  Tick timeoutSpread_;
  Value own_ = kNoValue;
  bool invoked_ = false;
  std::optional<TimerId> timer_;
  std::optional<Value> claimed_;  // first claim heard (possibly pre-invoke)
  std::optional<Value> value_;
};

}  // namespace ooc::compose

// Test-only fault injection: deliberately broken object implementations
// planted behind Composition::fault so the model checker (src/check/) can
// prove it detects, shrinks, and replays real contract violations. Nothing
// here is reachable unless a configuration explicitly asks for a fault.
#pragma once

#include "compose/hooks.hpp"
#include "core/objects.hpp"

namespace ooc::compose {

/// Wraps a detector factory according to the configured fault. kNone
/// returns the factory unchanged; kVacAdoptFlip makes odd-id processes flip
/// the value of every adopt-level outcome (0 <-> 1), which breaks VAC
/// coherence over vacillate & adopt and, downstream, can break agreement.
DetectorFactory plantFault(DetectorFactory inner, PlantedFault fault);

}  // namespace ooc::compose

#include "compose/registry.hpp"

#include <sstream>
#include <stdexcept>

#include "benor/async_byzantine.hpp"
#include "benor/byzantine_vac.hpp"
#include "benor/reconciliators.hpp"
#include "benor/vac.hpp"
#include "compose/timer_reconciliator.hpp"
#include "core/vac_from_ac.hpp"
#include "fd/coordinator.hpp"
#include "phaseking/adopt_commit.hpp"
#include "phaseking/byzantine.hpp"
#include "phaseking/conciliator.hpp"
#include "phaseking/queen.hpp"
#include "raft/decentralized.hpp"

namespace ooc::compose {

const char* toString(DetectorClass detectorClass) noexcept {
  switch (detectorClass) {
    case DetectorClass::kAdoptCommit: return "adopt-commit";
    case DetectorClass::kVacillateAdoptCommit: return "vacillate-adopt-commit";
  }
  return "?";
}

const char* toString(DriverClass driverClass) noexcept {
  switch (driverClass) {
    case DriverClass::kConciliator: return "conciliator";
    case DriverClass::kReconciliator: return "reconciliator";
  }
  return "?";
}

const char* toString(FaultModel model) noexcept {
  switch (model) {
    case FaultModel::kCrash: return "crash";
    case FaultModel::kByzantine: return "byzantine";
  }
  return "?";
}

const char* toString(InvocationMode mode) noexcept {
  switch (mode) {
    case InvocationMode::kLockstep: return "lockstep";
    case InvocationMode::kAsync: return "async";
    case InvocationMode::kAny: return "any";
  }
  return "?";
}

const char* toString(OracleRequirement requirement) noexcept {
  switch (requirement) {
    case OracleRequirement::kNone: return "none";
    case OracleRequirement::kEventualLeader: return "eventual-leader";
    case OracleRequirement::kPerfect: return "perfect";
  }
  return "?";
}

namespace {

std::string joinNames(const std::vector<std::string>& names) {
  std::ostringstream os;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) os << ", ";
    os << names[i];
  }
  return os.str();
}

benor::AsyncByzantineStrategy parseAsyncStrategy(const std::string& name) {
  using S = benor::AsyncByzantineStrategy;
  if (name == "silent") return S::kSilent;
  if (name == "equivocate") return S::kEquivocate;
  if (name == "random") return S::kRandom;
  if (name == "contrarian") return S::kContrarian;
  throw std::invalid_argument("unknown async byzantine strategy '" + name +
                              "'; known: silent, equivocate, random, "
                              "contrarian");
}

phaseking::ByzantineStrategy parseRoyalStrategy(const std::string& name) {
  using S = phaseking::ByzantineStrategy;
  if (name == "silent") return S::kSilent;
  if (name == "random") return S::kRandom;
  if (name == "equivocate") return S::kEquivocate;
  if (name == "lying-king") return S::kLyingKing;
  if (name == "anti-king") return S::kAntiKing;
  throw std::invalid_argument("unknown byzantine strategy '" + name +
                              "'; known: silent, random, equivocate, "
                              "lying-king, anti-king");
}

void registerBuiltins(Registry& reg) {
  // --- detectors -----------------------------------------------------------
  {
    DetectorEntry e;
    e.name = "benor-vac";
    e.capability = {DetectorClass::kVacillateAdoptCommit, FaultModel::kCrash,
                    InvocationMode::kAsync, /*tDivisor=*/2};
    e.make = [](const ObjectParams& p) { return benor::BenOrVac::factory(p.t); };
    reg.registerDetector(std::move(e));
  }
  {
    DetectorEntry e;
    e.name = "byzantine-benor-vac";
    e.capability = {DetectorClass::kVacillateAdoptCommit,
                    FaultModel::kByzantine, InvocationMode::kAsync,
                    /*tDivisor=*/5};
    e.make = [](const ObjectParams& p) {
      return benor::ByzantineBenOrVac::factory(p.t);
    };
    e.makeFaulty = [](const ObjectParams&, const std::string& strategy) {
      return std::make_unique<benor::AsyncByzantine>(
          parseAsyncStrategy(strategy));
    };
    reg.registerDetector(std::move(e));
  }
  {
    DetectorEntry e;
    e.name = "vac-from-two-ac";
    // The §5 constructions stacked: AC obtained by downgrading Ben-Or's
    // VAC (vacillate -> adopt), then VAC re-synthesized from two such ACs.
    e.capability = {DetectorClass::kVacillateAdoptCommit, FaultModel::kCrash,
                    InvocationMode::kAsync, /*tDivisor=*/2};
    e.make = [](const ObjectParams& p) {
      return VacFromTwoAc::liftFactory(
          AcFromVac::liftFactory(benor::BenOrVac::factory(p.t)));
    };
    reg.registerDetector(std::move(e));
  }
  {
    DetectorEntry e;
    e.name = "decentralized-vac";
    e.capability = {DetectorClass::kVacillateAdoptCommit, FaultModel::kCrash,
                    InvocationMode::kAsync, /*tDivisor=*/2};
    e.make = [](const ObjectParams& p) {
      return raft::DecentralizedRaftVac::factory(p.t);
    };
    reg.registerDetector(std::move(e));
  }
  {
    DetectorEntry e;
    e.name = "phaseking-ac";
    e.capability = {DetectorClass::kAdoptCommit, FaultModel::kByzantine,
                    InvocationMode::kLockstep, /*tDivisor=*/3};
    e.capability.toleratesSkew = false;  // the tick barrier IS its calendar
    e.make = [](const ObjectParams& p) {
      return phaseking::PhaseKingAc::factory(p.t);
    };
    e.makeFaulty = [](const ObjectParams&, const std::string& strategy) {
      return std::make_unique<phaseking::PhaseKingByzantine>(
          parseRoyalStrategy(strategy),
          phaseking::PhaseKingByzantine::Wire::kTemplate);
    };
    reg.registerDetector(std::move(e));
  }
  {
    DetectorEntry e;
    e.name = "phasequeen-ac";
    e.capability = {DetectorClass::kAdoptCommit, FaultModel::kByzantine,
                    InvocationMode::kLockstep, /*tDivisor=*/4};
    e.capability.toleratesSkew = false;
    e.make = [](const ObjectParams& p) {
      return phaseking::PhaseQueenAc::factory(p.t);
    };
    e.makeFaulty = [](const ObjectParams&, const std::string& strategy) {
      return std::make_unique<phaseking::PhaseQueenByzantine>(
          parseRoyalStrategy(strategy));
    };
    reg.registerDetector(std::move(e));
  }

  // --- drivers -------------------------------------------------------------
  {
    DriverEntry e;
    e.name = "local-coin";
    e.capability = {DriverClass::kReconciliator, InvocationMode::kAny,
                    /*toleratesByzantine=*/true, /*requiresEveryProcess=*/false};
    e.make = [](const ObjectParams&) {
      return benor::CoinReconciliator::factory();
    };
    reg.registerDriver(std::move(e));
  }
  {
    DriverEntry e;
    e.name = "common-coin";
    e.capability = {DriverClass::kReconciliator, InvocationMode::kAny,
                    /*toleratesByzantine=*/true, /*requiresEveryProcess=*/false};
    e.make = [](const ObjectParams& p) {
      // The shared coin is derived from the run seed: common to all
      // processes, independent across rounds and across runs.
      return benor::CommonCoinReconciliator::factory(p.seed ^ 0x5EEDC01Dull);
    };
    reg.registerDriver(std::move(e));
  }
  {
    DriverEntry e;
    e.name = "biased-coin";
    e.capability = {DriverClass::kReconciliator, InvocationMode::kAny,
                    /*toleratesByzantine=*/true, /*requiresEveryProcess=*/false};
    e.make = [](const ObjectParams& p) {
      return benor::BiasedCoinReconciliator::factory(p.bias);
    };
    reg.registerDriver(std::move(e));
  }
  {
    DriverEntry e;
    e.name = "keep-value";
    e.capability = {DriverClass::kReconciliator, InvocationMode::kAny,
                    /*toleratesByzantine=*/true, /*requiresEveryProcess=*/false};
    // Returns whatever value the invoker holds — domain-agnostic, so it is
    // multivalued-capable (though it breaks no symmetry: a contended
    // multivalued instance may exhaust its round cap).
    e.capability.multivalued = true;
    e.make = [](const ObjectParams&) {
      return benor::KeepValueReconciliator::factory();
    };
    reg.registerDriver(std::move(e));
  }
  {
    DriverEntry e;
    e.name = "lottery";
    // Waits for n-t tickets counted over every sender, so a Byzantine
    // invoker could stuff the draw; crash model only.
    e.capability = {DriverClass::kReconciliator, InvocationMode::kAny,
                    /*toleratesByzantine=*/false, /*requiresEveryProcess=*/true};
    // Uniform choice among the invokers' tickets: the returned value is one
    // of the proposals, whatever their domain — the fair multivalued
    // driver the replicated-log layers build on (E16, src/svc/).
    e.capability.multivalued = true;
    e.make = [](const ObjectParams& p) {
      return benor::LotteryReconciliator::factory(p.t, p.seed ^ 0x107734ull);
    };
    reg.registerDriver(std::move(e));
  }
  {
    DriverEntry e;
    e.name = "timer";
    // Claims are trusted verbatim, and the timeout race needs a delay
    // spread: crash-model, asynchronous runs only.
    e.capability = {DriverClass::kReconciliator, InvocationMode::kAsync,
                    /*toleratesByzantine=*/false, /*requiresEveryProcess=*/false};
    // The timeout race measures the round's claim wave against armed
    // timers; under round skew a slow process's wave arrives after the
    // timeout already fired, so the driver requires lockstep scheduling.
    e.capability.toleratesSkew = false;
    e.make = [](const ObjectParams&) {
      return TimerReconciliator::factory(/*timeoutMin=*/5,
                                         /*timeoutSpread=*/40);
    };
    reg.registerDriver(std::move(e));
  }
  {
    DriverEntry e;
    e.name = "king-conciliator";
    e.capability = {DriverClass::kConciliator, InvocationMode::kLockstep,
                    /*toleratesByzantine=*/true, /*requiresEveryProcess=*/false};
    e.capability.toleratesSkew = false;
    e.make = [](const ObjectParams&) {
      return phaseking::KingConciliator::factory();
    };
    reg.registerDriver(std::move(e));
  }
  {
    DriverEntry e;
    e.name = "queen-conciliator";
    e.capability = {DriverClass::kConciliator, InvocationMode::kLockstep,
                    /*toleratesByzantine=*/true, /*requiresEveryProcess=*/false};
    e.capability.toleratesSkew = false;
    e.make = [](const ObjectParams&) {
      return phaseking::QueenConciliator::factory();
    };
    reg.registerDriver(std::move(e));
  }
  {
    DriverEntry e;
    e.name = "ct-coordinator";
    // Chandra–Toueg rotating coordinator under Ω-style trust: suspected
    // coordinators are abandoned for the invoker's own value. Claims are
    // trusted verbatim and the probe races message delay: crash-model,
    // asynchronous runs only. Every process must join the drive wave —
    // the round's coordinator has to fanout its claim even when its own
    // detector outcome was adopt/commit, or the vacillating waiters
    // deadlock probing a correct (never-suspected) coordinator.
    e.capability = {DriverClass::kReconciliator, InvocationMode::kAsync,
                    /*toleratesByzantine=*/false,
                    /*requiresEveryProcess=*/true,
                    OracleRequirement::kEventualLeader};
    e.capability.multivalued = true;  // adopts the coordinator's value
    e.makeWithOracle = [](const ObjectParams&,
                          std::shared_ptr<const fd::Oracle> oracle) {
      return fd::CoordinatorReconciliator::factory(
          std::move(oracle), fd::CoordinatorReconciliator::Trust::kEventualLeader);
    };
    reg.registerDriver(std::move(e));
  }
  {
    DriverEntry e;
    e.name = "p-coordinator";
    // Skip-ahead rotation: suspected coordinators are rotated past, which
    // is sound only under strong accuracy — validateOracle() rejects this
    // driver under the eventual-accuracy oracles. Every process drives for
    // the same reason as ct-coordinator: the claim must be fanned out even
    // on an adopt/commit outcome.
    e.capability = {DriverClass::kReconciliator, InvocationMode::kAsync,
                    /*toleratesByzantine=*/false,
                    /*requiresEveryProcess=*/true,
                    OracleRequirement::kPerfect};
    e.capability.multivalued = true;  // adopts the coordinator's value
    e.makeWithOracle = [](const ObjectParams&,
                          std::shared_ptr<const fd::Oracle> oracle) {
      return fd::CoordinatorReconciliator::factory(
          std::move(oracle), fd::CoordinatorReconciliator::Trust::kPerfect);
    };
    reg.registerDriver(std::move(e));
  }

  // --- oracles -------------------------------------------------------------
  const auto scheduleOracle = [](fd::OracleClass oracleClass) {
    return [oracleClass](const ObjectParams& p, const fd::OracleKnobs& knobs,
                         const fd::FaultSchedule& schedule) {
      return fd::makeScheduleOracle(oracleClass, knobs, schedule, p.seed);
    };
  };
  {
    OracleEntry e;
    e.name = "omega";
    e.capability = {fd::OracleClass::kOmega};
    e.make = scheduleOracle(fd::OracleClass::kOmega);
    reg.registerOracle(std::move(e));
  }
  {
    OracleEntry e;
    e.name = "diamond-s";
    e.capability = {fd::OracleClass::kEventuallyStrong};
    e.make = scheduleOracle(fd::OracleClass::kEventuallyStrong);
    reg.registerOracle(std::move(e));
  }
  {
    OracleEntry e;
    e.name = "perfect-p";
    e.capability = {fd::OracleClass::kPerfect};
    e.make = scheduleOracle(fd::OracleClass::kPerfect);
    reg.registerOracle(std::move(e));
  }
}

}  // namespace

void Registry::registerDetector(DetectorEntry entry) {
  if (hasDetector(entry.name))
    throw std::invalid_argument("detector '" + entry.name +
                                "' is already registered");
  detectors_.push_back(std::move(entry));
}

void Registry::registerDriver(DriverEntry entry) {
  if (hasDriver(entry.name))
    throw std::invalid_argument("driver '" + entry.name +
                                "' is already registered");
  drivers_.push_back(std::move(entry));
}

void Registry::registerOracle(OracleEntry entry) {
  if (hasOracle(entry.name))
    throw std::invalid_argument("oracle '" + entry.name +
                                "' is already registered");
  oracles_.push_back(std::move(entry));
}

const DetectorEntry& Registry::detector(const std::string& name) const {
  for (const DetectorEntry& entry : detectors_)
    if (entry.name == name) return entry;
  throw std::invalid_argument("unknown detector '" + name +
                              "'; known: " + joinNames(detectorNames()));
}

const DriverEntry& Registry::driver(const std::string& name) const {
  for (const DriverEntry& entry : drivers_)
    if (entry.name == name) return entry;
  throw std::invalid_argument("unknown driver '" + name +
                              "'; known: " + joinNames(driverNames()));
}

const OracleEntry& Registry::oracle(const std::string& name) const {
  for (const OracleEntry& entry : oracles_)
    if (entry.name == name) return entry;
  throw std::invalid_argument("unknown oracle '" + name +
                              "'; known: " + joinNames(oracleNames()));
}

bool Registry::hasDetector(const std::string& name) const noexcept {
  for (const DetectorEntry& entry : detectors_)
    if (entry.name == name) return true;
  return false;
}

bool Registry::hasDriver(const std::string& name) const noexcept {
  for (const DriverEntry& entry : drivers_)
    if (entry.name == name) return true;
  return false;
}

bool Registry::hasOracle(const std::string& name) const noexcept {
  for (const OracleEntry& entry : oracles_)
    if (entry.name == name) return true;
  return false;
}

std::vector<std::string> Registry::detectorNames() const {
  std::vector<std::string> names;
  names.reserve(detectors_.size());
  for (const DetectorEntry& entry : detectors_) names.push_back(entry.name);
  return names;
}

std::vector<std::string> Registry::driverNames() const {
  std::vector<std::string> names;
  names.reserve(drivers_.size());
  for (const DriverEntry& entry : drivers_) names.push_back(entry.name);
  return names;
}

std::vector<std::string> Registry::oracleNames() const {
  std::vector<std::string> names;
  names.reserve(oracles_.size());
  for (const OracleEntry& entry : oracles_) names.push_back(entry.name);
  return names;
}

std::optional<std::string> Registry::validatePairing(
    const std::string& detectorName, const std::string& driverName) const {
  const DetectorEntry& det = detector(detectorName);
  const DriverEntry& drv = driver(driverName);
  const std::string pair =
      "invalid pairing '" + detectorName + "+" + driverName + "': ";

  // Confidence-level rules — the paper's §5 asymmetry.
  if (det.capability.detectorClass == DetectorClass::kAdoptCommit &&
      drv.capability.driverClass == DriverClass::kReconciliator) {
    return pair +
           "an adopt-commit detector under the reconciliator template "
           "(Algorithm 1) would decide on adopt-level confidence, which the "
           "paper's §5 insufficiency argument shows can break "
           "agreement; pair '" +
           detectorName +
           "' with a conciliator, or lift it to VAC first (the "
           "vac-from-two-ac construction)";
  }
  if (det.capability.detectorClass == DetectorClass::kVacillateAdoptCommit &&
      drv.capability.driverClass == DriverClass::kConciliator) {
    return pair +
           "a vacillate-adopt-commit detector under the conciliator "
           "template (Algorithm 2) can return vacillate, which that "
           "template has no arm for; downgrade the detector to adopt-commit "
           "first (§5's AcFromVac direction)";
  }

  // Invocation mode: a kAny driver composes with either side.
  if (drv.capability.mode != InvocationMode::kAny &&
      drv.capability.mode != det.capability.mode) {
    return pair + "detector runs " + toString(det.capability.mode) +
           " but driver '" + driverName + "' requires " +
           toString(drv.capability.mode) + " invocation";
  }

  // Fault model: a Byzantine-tolerant detector must not be drained through
  // a driver whose waits trust every sender.
  if (det.capability.faultModel == FaultModel::kByzantine &&
      !drv.capability.toleratesByzantine) {
    return pair + "detector assumes Byzantine faults but driver '" +
           driverName + "' is crash-only (its waits trust every sender)";
  }
  return std::nullopt;
}

std::optional<std::string> Registry::validateOracle(
    const std::string& driverName, const std::string& oracleName,
    const fd::OracleKnobs& knobs) const {
  const DriverEntry& drv = driver(driverName);
  const OracleRequirement required = drv.capability.oracle;
  if (oracleName.empty()) {
    if (required == OracleRequirement::kNone) return std::nullopt;
    return "invalid oracle pairing '" + driverName + "+(none)': driver '" +
           driverName +
           "' is a rotating coordinator and consumes a failure-detector "
           "oracle (its probe asks which coordinators to trust), but the "
           "composition names none; add oracle=omega, diamond-s or "
           "perfect-p";
  }
  const OracleEntry& orc = oracle(oracleName);  // unknown names throw here
  const std::string pair =
      "invalid oracle pairing '" + driverName + "+" + oracleName + "': ";
  if (required == OracleRequirement::kNone) {
    return pair + "driver '" + driverName +
           "' consumes no oracle, so the attachment would silently change "
           "nothing — the oracle role is zero-cost for oracle-free "
           "pairings; drop the oracle or pick an oracle-guided driver "
           "(ct-coordinator, p-coordinator)";
  }
  if (required == OracleRequirement::kPerfect &&
      orc.capability.oracleClass != fd::OracleClass::kPerfect) {
    return pair + "driver '" + driverName +
           "' rotates past suspected coordinators, which is sound only "
           "under a perfect oracle's strong accuracy; under '" + oracleName +
           "' (eventual accuracy only) a falsely-suspected live coordinator "
           "would be skipped and two claimants could race — the "
           "failure-detector analogue of the paper's §5 insufficiency "
           "argument; use perfect-p";
  }
  if (orc.capability.oracleClass == fd::OracleClass::kPerfect &&
      knobs.noise > 0) {
    return pair + "a perfect oracle has strong accuracy (it never falsely "
           "suspects a live process), so oracle-noise must be 0; drop the "
           "noise or model a noisy detector with diamond-s";
  }
  return std::nullopt;
}

std::optional<std::string> Registry::validateScheduling(
    const std::string& detectorName, const std::string& driverName,
    SchedulingPolicy policy) const {
  const DetectorEntry& det = detector(detectorName);
  const DriverEntry& drv = driver(driverName);
  // Lockstep is the engine every registered object was written against:
  // always coherent.
  if (policy == SchedulingPolicy::kLockstep) return std::nullopt;

  const std::string pair = std::string("invalid scheduling '") +
                           toString(policy) + "' for pairing '" +
                           detectorName + "+" + driverName + "': ";
  // Lockstep-mode objects have no calendar without the tick barrier; the
  // skew question does not even arise for them.
  if (det.capability.mode == InvocationMode::kLockstep) {
    return pair + "detector '" + detectorName +
           "' is a lockstep object — its exchange calendar is the tick "
           "barrier that non-lockstep policies remove; the paper's §5 "
           "insufficiency argument for its class is itself stated over "
           "synchronized rounds (DESIGN.md §14)";
  }
  if (drv.capability.mode == InvocationMode::kLockstep) {
    return pair + "driver '" + driverName +
           "' is a lockstep object — its exchange calendar is the tick "
           "barrier that non-lockstep policies remove (DESIGN.md §14)";
  }
  // Async objects may still bake round alignment into their waits.
  if (!det.capability.toleratesSkew) {
    return pair + "detector '" + detectorName +
           "' does not tolerate per-process round skew (DESIGN.md §14)";
  }
  if (!drv.capability.toleratesSkew) {
    return pair + "driver '" + driverName +
           "' does not tolerate per-process round skew: its waits presume "
           "the round's exchange wave is in flight on every process at "
           "once (the timer reconciliator's timeout race is the canonical "
           "case); keep the lockstep policy, or pick a quorum-counting "
           "driver — the Ω-backed coordinators tolerate skew (DESIGN.md "
           "§14)";
  }
  return std::nullopt;
}

Registry& registry() {
  static Registry* instance = [] {
    auto* reg = new Registry;
    registerBuiltins(*reg);
    return reg;
  }();
  return *instance;
}

}  // namespace ooc::compose

// Per-run telemetry publication, shared by runComposition() and the
// bespoke runners that remain in src/harness/ (monolithic baselines,
// Raft): one flush per run, guarded by obs::enabled() so a
// disabled-telemetry sweep pays one relaxed atomic load per run.
#pragma once

#include <string>
#include <vector>

#include "core/consensus_process.hpp"
#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace ooc {
class Simulator;
}

namespace ooc::compose {

/// Bounds the `round` label cardinality: long runs (Ben-Or can take
/// hundreds of rounds on adversarial seeds) collapse into one tail label.
std::string roundLabel(Round m);

obs::Labels withLabel(obs::Labels base, const char* key, std::string value);

/// Simulator/network counters, flushed once per run under `base` labels.
void publishSimMetrics(const Simulator& sim, const obs::Labels& base);

/// Decision latency in simulated ticks, one sample per decided process.
void publishDecisionTicks(const Simulator& sim, const obs::Labels& base);

/// Per-round object telemetry of template processes: VAC/AC confidence
/// transition counts keyed by (confidence, round), driver invocation
/// counts, and the rounds-to-decide distribution. Null entries (Byzantine
/// slots) are skipped.
void publishTemplateMetrics(const std::vector<ConsensusProcess*>& processes,
                            const obs::Labels& base);

}  // namespace ooc::compose

// The Composition spec: one detector × driver pairing plus the run
// parameters, as a plain value type. This is what the paper calls an
// algorithm — "a consensus algorithm is obtained by composing objects" —
// made literal: the pairing is data, resolved against the registry at run
// time, not a code path.
//
// Three interchange forms, all strict (malformed input throws):
//   * CLI spec strings:  "benor-vac+local-coin"
//   * key=value blocks:  the scenario/counterexample wire format
//     (family=compose in src/check/), sharing compose/kv.hpp with the
//     legacy config serializers
//   * JSON objects:      for tooling that already speaks ooc.*.v1 schemas
//
// Every parse path re-validates the pairing against the registry, so a
// rejected composition carries the same capability diagnostic whether it
// arrives from a flag, a counterexample file, or a JSON document.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "compose/hooks.hpp"
#include "compose/registry.hpp"
#include "util/types.hpp"

namespace ooc::compose {

struct Composition {
  /// Registry names of the paired objects.
  std::string detector = "benor-vac";
  std::string driver = "local-coin";

  std::size_t n = 5;
  /// Protocol parameter t; defaults to floor((n-1)/tDivisor) of the
  /// detector's capability descriptor.
  std::optional<std::size_t> t;
  /// Number of planted faulty processes (Byzantine-model detectors only).
  std::size_t byzantineCount = 0;
  /// Attacker strategy name, interpreted by the detector's makeFaulty hook.
  std::string byzantineStrategy = "equivocate";
  Placement placement = Placement::kFront;

  /// Inputs for correct processes, by their order among correct ids; the
  /// pattern repeats when shorter than the correct count, and an empty
  /// vector means alternating 0,1.
  std::vector<Value> inputs;
  std::uint64_t seed = 1;
  double bias = 0.5;  // biased-coin probability of 1

  /// (process, tick) crash schedule (asynchronous runs).
  std::vector<std::pair<ProcessId, Tick>> crashes;
  Tick minDelay = 1;
  Tick maxDelay = 10;
  /// Message-reordering adversary (model checker strategies; async only).
  AdversaryOptions adversary;

  /// Decision rule for adopt-commit detectors: the template's
  /// decide-on-commit rule is unsound for Phase-King under a hostile king
  /// (see EXPERIMENTS.md, "the early-decision gap"), so the default
  /// decides after t+1 completed rounds; set earlyCommitDecision for the
  /// paper-faithful corner. Ignored for VAC detectors (Algorithm 1 always
  /// decides on commit).
  bool earlyCommitDecision = false;

  Round maxRounds = 5000;
  Tick maxTicks = 5'000'000;

  /// Test-only planted detector bug (model-checker self-test).
  PlantedFault fault = PlantedFault::kNone;

  /// Round-scheduling policy (core/scheduling.hpp). The role is zero-cost
  /// on the wire for the default: nothing is serialized when lockstep, so
  /// every pre-policy golden and counterexample stays byte-identical.
  /// Non-lockstep policies are capability-gated by the registry's
  /// validateScheduling() (async-mode, skew-tolerant objects only).
  SchedulingPolicy scheduler = SchedulingPolicy::kLockstep;

  /// Failure-detector oracle (registry name) for oracle-guided drivers;
  /// empty for everything else. The role is zero-cost for oracle-free
  /// pairings: nothing is serialized and nothing runs when empty.
  std::string oracle;
  /// Oracle quality knobs (serialized only when an oracle is attached).
  fd::OracleKnobs oracleKnobs;
};

/// A Composition with its registry entries and derived run shape resolved.
/// Obtained via resolve(); holding one implies the pairing is valid.
struct ResolvedComposition {
  const DetectorEntry* detector = nullptr;
  const DriverEntry* driver = nullptr;
  /// Non-null exactly when the composition attaches an oracle.
  const OracleEntry* oracle = nullptr;
  std::size_t t = 0;
  bool lockstep = false;
  /// Every process joins the drive wave each round (lockstep algorithms,
  /// quorum-waiting drivers such as the lottery, and the ooo-driver
  /// policy, whose whole point is a detached drive wave every round).
  bool alwaysRunDriver = false;
  SchedulingPolicy scheduling = SchedulingPolicy::kLockstep;
};

/// Resolves the names against the registry and validates the pairing plus
/// the run parameters; throws std::invalid_argument with the capability
/// diagnostic on an invalid composition.
ResolvedComposition resolve(const Composition& composition);

/// "detector+driver" CLI spec, e.g. "benor-vac+timer". Whitespace around
/// either name is trimmed; a missing '+' or empty side throws. The oracle
/// (with its quality knobs) joins the composition before the validating
/// resolve, so an oracle-consuming driver paired via --oracle is accepted
/// and an incoherent attachment throws the registry diagnostic here.
Composition parseSpec(const std::string& spec, const std::string& oracle = "",
                      const fd::OracleKnobs& oracleKnobs = {});

/// key=value wire format (stamped with `# run-id=`), the family=compose
/// payload of serialized scenarios and counterexamples. parseComposition
/// re-validates the pairing: a rejected pairing loaded from a file throws
/// the same diagnostic the CLI prints.
std::string serialize(const Composition& composition);
Composition parseComposition(const std::string& text);

/// JSON object form (strict single-document parse; unknown keys throw).
std::string toJson(const Composition& composition);
Composition fromJson(const std::string& json);

}  // namespace ooc::compose

// The key=value wire format shared by every serializable configuration
// (compositions, legacy scenario configs, counterexample files): one
// `key=value` pair per line, repeated keys for lists of structured entries
// (crash=pid@tick). Parsing is strict — malformed lines throw — because a
// counterexample that silently loses a field reproduces nothing.
//
// Hoisted out of src/harness/serialize.cpp so the composition layer and the
// legacy config serializers share one writer/reader and one run-id rule.
#pragma once

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "compose/hooks.hpp"
#include "util/types.hpp"

namespace ooc::compose {

/// Deterministic run identifier for a serialized configuration: a 64-bit
/// FNV-1a hash of the key=value body (which includes the seed), rendered as
/// 16 lowercase hex characters. The same (config, seed) always maps to the
/// same id, so counterexample files, BENCH_*.json metrics and trace_view
/// output can be correlated. Stamp lines (`# run-id=...`) are excluded from
/// the hash, making the id stable under re-serialization.
std::string configRunId(const std::string& serialized);

/// Prepends the deterministic `# run-id=<hex>` stamp line to a serialized
/// config body; parsers (old and new) skip `#` comments, so stamped files
/// remain backward and forward compatible.
std::string stampRunId(const std::string& body);

class KvWriter {
 public:
  void put(const std::string& key, const std::string& value) {
    os_ << key << '=' << value << '\n';
  }
  void put(const std::string& key, std::uint64_t value) {
    put(key, std::to_string(value));
  }
  void put(const std::string& key, double value) {
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << value;
    put(key, os.str());
  }
  void putValues(const std::string& key, const std::vector<Value>& values) {
    std::ostringstream os;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) os << ',';
      os << values[i];
    }
    put(key, os.str());
  }

  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

class KvReader {
 public:
  explicit KvReader(const std::string& text);

  bool has(const std::string& key) const { return entries_.contains(key); }

  std::string get(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const {
    return has(key) ? get(key) : fallback;
  }
  std::uint64_t getU64(const std::string& key, std::uint64_t fallback) const {
    return has(key) ? std::stoull(get(key)) : fallback;
  }
  double getDouble(const std::string& key, double fallback) const {
    return has(key) ? std::stod(get(key)) : fallback;
  }
  const std::vector<std::string>& getAll(const std::string& key) const;
  std::vector<Value> getValues(const std::string& key) const;

 private:
  std::unordered_map<std::string, std::vector<std::string>> entries_;
};

/// `pid@tick` crash-schedule entries.
std::string crashEntry(const std::pair<ProcessId, Tick>& crash);
std::pair<ProcessId, Tick> parseCrash(const std::string& entry);

/// Delay-adversary triple (`adversary-budget/-prob/-seed`), shared by every
/// asynchronous family's serializer.
void putAdversary(KvWriter& kv, const AdversaryOptions& adversary);
AdversaryOptions getAdversary(const KvReader& kv);

}  // namespace ooc::compose

// Run instrumentation shared by every composition runner: the telemetry
// sink and schedule-observer hooks, the delay adversary options, and the
// Byzantine placement policy. These used to live in src/harness/ next to
// the per-protocol runners; they sit here now because the generic
// runComposition() engine is the lower layer — the harness adapters alias
// them back for source compatibility.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace ooc {
class ScheduleObserver;
class NetworkModel;
struct Outcome;
}  // namespace ooc

namespace ooc::compose {

/// Rich protocol-event tap: receives the object-level moments the schedule
/// trace cannot see — detector outcomes (confidence transitions) and driver
/// returns, with their simulated tick. Implemented by the trace_view
/// timeline renderer and metric collectors. Observation only: sinks must
/// not influence the run.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  /// Round `round`'s detector invocation returned `outcome` at `process`.
  /// For Raft the "round" is the term of the confidence transition.
  virtual void onDetectorOutcome(ProcessId process, Round round,
                                 const Outcome& outcome, Tick at) = 0;
  /// Round `round`'s driver (reconciliator/conciliator) returned `value`.
  virtual void onDriverValue(ProcessId process, Round round, Value value,
                             Tick at) = 0;
  /// An oracle-guided driver queried the failure-detector oracle: `viewer`
  /// asked about `target` at tick `at` and was answered suspected (true)
  /// or trusted (false). Default no-op so existing sinks opt in lazily;
  /// fires only when a sink is attached (the tap decorator costs the bare
  /// run nothing — see runComposition()).
  virtual void onOracleQuery(ProcessId viewer, ProcessId target,
                             bool suspected, Tick at) {
    (void)viewer;
    (void)target;
    (void)suspected;
    (void)at;
  }
};

/// Optional instrumentation threaded through a scenario run. Not part of
/// the serializable configuration: hooks are attached by the caller (the
/// model checker's trace recorder/verifier, the timeline renderer) and
/// never affect the schedule.
struct RunHooks {
  ScheduleObserver* observer = nullptr;
  TelemetrySink* telemetry = nullptr;
  /// Base label set for the run's metric flush. Legacy adapters set this to
  /// keep their historical series names ({family=benor, mode=...}); when
  /// empty, runComposition() labels by {family=compose, detector, driver}.
  obs::Labels telemetryLabels;
};

/// Delay-bounded adversarial rescheduling for asynchronous scenarios: when
/// extraDelayMax > 0 the run's network is wrapped in a DelayAdversaryNetwork
/// that stretches each delivery by up to extraDelayMax extra ticks with
/// probability perturbProbability. The adversary draws from its own seed so
/// schedules can be swept while the protocol's randomness stays fixed.
struct AdversaryOptions {
  Tick extraDelayMax = 0;
  double perturbProbability = 1.0;
  std::uint64_t seed = 1;

  bool enabled() const noexcept { return extraDelayMax > 0; }
};

/// Where planted faulty (Byzantine) ids sit among [0, n). Kings rotate
/// from id 0, so front placement gives the adversary the first reigns.
enum class Placement { kFront, kBack, kSpread };

const char* toString(Placement placement) noexcept;
Placement parsePlacement(const std::string& name);

/// Deliberately planted detector bugs, behind a test-only hook: the model
/// checker must be able to prove it catches real violations.
enum class PlantedFault {
  kNone,
  /// Odd-id processes flip the value of every adopt-level detector
  /// outcome, violating VAC coherence over vacillate & adopt.
  kVacAdoptFlip,
};

const char* toString(PlantedFault fault) noexcept;
PlantedFault parsePlantedFault(const std::string& name);

/// Applies the configured message-reordering adversary, if any.
std::unique_ptr<NetworkModel> wrapAdversary(std::unique_ptr<NetworkModel> net,
                                            const AdversaryOptions& options);

}  // namespace ooc::compose

#include "compose/fault.hpp"

#include <memory>
#include <utility>

namespace ooc::compose {
namespace {

/// Forwards everything to the wrapped detector, but flips the value of
/// adopt-level outcomes on odd-id processes. The flipped value feeds both
/// the round audit (via RoundRecord) and the consensus template itself
/// (v <- sigma on adopt), so the planted bug propagates like a real one.
class AdoptFlipDetector final : public AgreementDetector {
 public:
  explicit AdoptFlipDetector(std::unique_ptr<AgreementDetector> inner)
      : inner_(std::move(inner)) {}

  void invoke(ObjectContext& ctx, Value v) override {
    active_ = ctx.self() % 2 == 1;
    inner_->invoke(ctx, v);
  }

  void onMessage(ObjectContext& ctx, ProcessId from,
                 const Message& inner) override {
    inner_->onMessage(ctx, from, inner);
  }

  void onTick(ObjectContext& ctx, Tick tick) override {
    inner_->onTick(ctx, tick);
  }

  void onTimer(ObjectContext& ctx, TimerId id) override {
    inner_->onTimer(ctx, id);
  }

  std::optional<Outcome> result() const override {
    auto outcome = inner_->result();
    if (outcome && active_ && outcome->confidence == Confidence::kAdopt)
      outcome->value = outcome->value == 0 ? 1 : 0;
    return outcome;
  }

 private:
  std::unique_ptr<AgreementDetector> inner_;
  bool active_ = false;
};

}  // namespace

DetectorFactory plantFault(DetectorFactory inner, PlantedFault fault) {
  switch (fault) {
    case PlantedFault::kNone:
      return inner;
    case PlantedFault::kVacAdoptFlip:
      return [inner = std::move(inner)](Round m) {
        return std::make_unique<AdoptFlipDetector>(inner(m));
      };
  }
  return inner;
}

}  // namespace ooc::compose

// The central object registry (the composition engine's name service).
//
// Every agreement detector, driver, and failure-detector oracle in the
// library registers here under a stable string name — the same names the
// legacy config serializers already put on the wire ("local-coin",
// "vac-from-two-ac", ...) — together with a capability descriptor
// (capability.hpp; OracleCapability below for the oracle family). A
// Composition references objects purely by name; the registry resolves the
// names, validates the pairing against the capability rules, and hands
// runComposition() the factories.
//
// Registration is open: extensions can add objects at startup (tests
// exercise this), and duplicate names are rejected so two objects can
// never silently shadow each other.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compose/capability.hpp"
#include "core/objects.hpp"
#include "core/scheduling.hpp"
#include "fd/oracle.hpp"
#include "sim/process.hpp"

namespace ooc::compose {

/// Everything a factory may depend on, resolved from the Composition:
/// n, the protocol parameter t, the run seed (shared-coin derivation) and
/// the biased-coin probability.
struct ObjectParams {
  std::size_t n = 0;
  std::size_t t = 0;
  std::uint64_t seed = 1;
  double bias = 0.5;
};

struct DetectorEntry {
  std::string name;
  DetectorCapability capability;
  /// Builds the per-round detector factory for one correct process.
  std::function<DetectorFactory(const ObjectParams&)> make;
  /// Builds a planted attacker for one faulty slot (Byzantine-model
  /// detectors only; null otherwise). `strategy` is the serialized
  /// strategy name; unknown names throw.
  std::function<std::unique_ptr<Process>(const ObjectParams&,
                                         const std::string& strategy)>
      makeFaulty;
};

struct DriverEntry {
  std::string name;
  DriverCapability capability;
  std::function<DriverFactory(const ObjectParams&)> make;
  /// Oracle-consuming drivers (capability.oracle != kNone) build their
  /// factory with the resolved oracle bound; `make` is null for them and
  /// `makeWithOracle` is null for everyone else.
  std::function<DriverFactory(const ObjectParams&,
                              std::shared_ptr<const fd::Oracle>)>
      makeWithOracle;
};

/// What a registered oracle is: which Chandra–Toueg class it models. The
/// knobs (lag, noise, stabilization) are run parameters, not capability —
/// the same registered oracle serves every quality point of the sweep.
struct OracleCapability {
  fd::OracleClass oracleClass = fd::OracleClass::kOmega;
};

struct OracleEntry {
  std::string name;
  OracleCapability capability;
  /// Builds the run's oracle instance from the resolved parameters, the
  /// quality knobs, and the run's fault schedule.
  std::function<std::shared_ptr<const fd::Oracle>(
      const ObjectParams&, const fd::OracleKnobs&, const fd::FaultSchedule&)>
      make;
};

class Registry {
 public:
  /// All three throw std::invalid_argument on a duplicate name.
  void registerDetector(DetectorEntry entry);
  void registerDriver(DriverEntry entry);
  void registerOracle(OracleEntry entry);

  /// Lookup by name; throws std::invalid_argument listing the known names
  /// when `name` is not registered.
  const DetectorEntry& detector(const std::string& name) const;
  const DriverEntry& driver(const std::string& name) const;
  const OracleEntry& oracle(const std::string& name) const;

  bool hasDetector(const std::string& name) const noexcept;
  bool hasDriver(const std::string& name) const noexcept;
  bool hasOracle(const std::string& name) const noexcept;

  /// Registration order (stable across runs: builtins register in one
  /// deterministic sequence).
  std::vector<std::string> detectorNames() const;
  std::vector<std::string> driverNames() const;
  std::vector<std::string> oracleNames() const;

  /// Capability check for a resolved pairing: nullopt when the composition
  /// is an algorithm, otherwise the human-readable diagnostic (citing the
  /// paper's §5 argument where it applies). Unknown names throw, as in
  /// detector()/driver().
  std::optional<std::string> validatePairing(
      const std::string& detectorName, const std::string& driverName) const;

  /// Capability check for the driver × oracle side of a composition:
  /// nullopt when coherent, otherwise the diagnostic. `oracleName` empty
  /// means no oracle attached (valid exactly when the driver consumes
  /// none). Unknown names throw, as in oracle().
  std::optional<std::string> validateOracle(
      const std::string& driverName, const std::string& oracleName,
      const fd::OracleKnobs& knobs) const;

  /// Scheduling-policy coherence gate: nullopt when both objects of the
  /// pairing run correctly under `policy`, otherwise the diagnostic.
  /// Lockstep is always coherent (it is the engine every object was built
  /// against); non-lockstep policies require async-mode, skew-tolerant
  /// objects on both sides (see DESIGN.md §14). Unknown names throw, as in
  /// detector()/driver().
  std::optional<std::string> validateScheduling(
      const std::string& detectorName, const std::string& driverName,
      SchedulingPolicy policy) const;

 private:
  std::vector<DetectorEntry> detectors_;
  std::vector<DriverEntry> drivers_;
  std::vector<OracleEntry> oracles_;
};

/// The process-wide registry, with the library's builtin objects
/// registered on first use (lazily, so static initialization order and
/// static-library dead stripping cannot lose them).
Registry& registry();

}  // namespace ooc::compose

// The central object registry (the composition engine's name service).
//
// Every agreement detector and every driver in the library registers here
// under a stable string name — the same names the legacy config
// serializers already put on the wire ("local-coin", "vac-from-two-ac",
// ...) — together with a capability descriptor (capability.hpp). A
// Composition references objects purely by name; the registry resolves the
// names, validates the pairing against the capability rules, and hands
// runComposition() the factories.
//
// Registration is open: extensions can add objects at startup (tests
// exercise this), and duplicate names are rejected so two objects can
// never silently shadow each other.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compose/capability.hpp"
#include "core/objects.hpp"
#include "sim/process.hpp"

namespace ooc::compose {

/// Everything a factory may depend on, resolved from the Composition:
/// n, the protocol parameter t, the run seed (shared-coin derivation) and
/// the biased-coin probability.
struct ObjectParams {
  std::size_t n = 0;
  std::size_t t = 0;
  std::uint64_t seed = 1;
  double bias = 0.5;
};

struct DetectorEntry {
  std::string name;
  DetectorCapability capability;
  /// Builds the per-round detector factory for one correct process.
  std::function<DetectorFactory(const ObjectParams&)> make;
  /// Builds a planted attacker for one faulty slot (Byzantine-model
  /// detectors only; null otherwise). `strategy` is the serialized
  /// strategy name; unknown names throw.
  std::function<std::unique_ptr<Process>(const ObjectParams&,
                                         const std::string& strategy)>
      makeFaulty;
};

struct DriverEntry {
  std::string name;
  DriverCapability capability;
  std::function<DriverFactory(const ObjectParams&)> make;
};

class Registry {
 public:
  /// Both throw std::invalid_argument on a duplicate name.
  void registerDetector(DetectorEntry entry);
  void registerDriver(DriverEntry entry);

  /// Lookup by name; throws std::invalid_argument listing the known names
  /// when `name` is not registered.
  const DetectorEntry& detector(const std::string& name) const;
  const DriverEntry& driver(const std::string& name) const;

  bool hasDetector(const std::string& name) const noexcept;
  bool hasDriver(const std::string& name) const noexcept;

  /// Registration order (stable across runs: builtins register in one
  /// deterministic sequence).
  std::vector<std::string> detectorNames() const;
  std::vector<std::string> driverNames() const;

  /// Capability check for a resolved pairing: nullopt when the composition
  /// is an algorithm, otherwise the human-readable diagnostic (citing the
  /// paper's §5 argument where it applies). Unknown names throw, as in
  /// detector()/driver().
  std::optional<std::string> validatePairing(
      const std::string& detectorName, const std::string& driverName) const;

 private:
  std::vector<DetectorEntry> detectors_;
  std::vector<DriverEntry> drivers_;
};

/// The process-wide registry, with the library's builtin objects
/// registered on first use (lazily, so static initialization order and
/// static-library dead stripping cannot lose them).
Registry& registry();

}  // namespace ooc::compose

#include "compose/run.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "compose/fault.hpp"
#include "compose/telemetry.hpp"
#include "core/consensus_process.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace ooc::compose {
namespace {

/// Live round-skew tracker, fed from the detector-outcome tap: records the
/// widest spread of completed detector rounds across correct processes at
/// any single point of the run. Observation only — it never touches the
/// schedule, so wiring it costs no golden a byte.
struct SkewProbe {
  explicit SkewProbe(std::size_t n) : completed(n, 0) {}
  std::vector<Round> completed;
  Round maxSkew = 0;

  void note(ProcessId id, Round m) {
    completed[id] = m;
    Round lo = 0, hi = 0;
    bool first = true;
    for (const Round r : completed) {
      if (r == 0) continue;  // not started (or a Byzantine slot)
      if (first) {
        lo = hi = r;
        first = false;
        continue;
      }
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
    if (!first) maxSkew = std::max(maxSkew, static_cast<Round>(hi - lo));
  }
};

/// Wires the skew probe and a TelemetrySink (when present) into a template
/// process's options, binding the process id the simulator will assign
/// next.
void wireTelemetry(ConsensusProcess::Options& options, TelemetrySink* sink,
                   SkewProbe* probe, ProcessId id) {
  options.onDetectorOutcome = [sink, probe, id](Round m,
                                                const Outcome& outcome,
                                                Tick at) {
    probe->note(id, m);
    if (sink != nullptr) sink->onDetectorOutcome(id, m, outcome, at);
  };
  if (sink == nullptr) return;
  options.onDriverValue = [sink, id](Round m, Value value, Tick at) {
    sink->onDriverValue(id, m, value, at);
  };
}

/// Observation-only oracle decorator: forwards every suspicion query
/// verbatim and mirrors it to the telemetry sink. Answers are untouched,
/// so the schedule (and every golden) is identical with or without a sink
/// attached; the bare-run path never constructs one.
class TappedOracle final : public fd::Oracle {
 public:
  TappedOracle(std::shared_ptr<const fd::Oracle> inner,
               TelemetrySink* sink) noexcept
      : inner_(std::move(inner)), sink_(sink) {}

  fd::OracleClass oracleClass() const noexcept override {
    return inner_->oracleClass();
  }
  bool suspects(ProcessId viewer, ProcessId target, Tick at) const override {
    const bool suspected = inner_->suspects(viewer, target, at);
    sink_->onOracleQuery(viewer, target, suspected, at);
    return suspected;
  }
  ProcessId leader(ProcessId viewer, Tick at) const override {
    return inner_->leader(viewer, at);
  }
  Tick stabilizationBound() const noexcept override {
    return inner_->stabilizationBound();
  }

 private:
  std::shared_ptr<const fd::Oracle> inner_;
  TelemetrySink* sink_;
};

}  // namespace

std::unique_ptr<NetworkModel> wrapAdversary(std::unique_ptr<NetworkModel> net,
                                            const AdversaryOptions& options) {
  if (!options.enabled()) return net;
  DelayAdversaryNetwork::Options adv;
  adv.seed = options.seed;
  adv.extraDelayMax = options.extraDelayMax;
  adv.perturbProbability = options.perturbProbability;
  return std::make_unique<DelayAdversaryNetwork>(std::move(net), adv);
}

CompositionResult runComposition(const Composition& composition,
                                 const RunHooks& hooks) {
  const ResolvedComposition resolved = resolve(composition);
  const std::size_t n = composition.n;
  const std::size_t f = composition.byzantineCount;
  const bool vacDetector = resolved.detector->capability.detectorClass ==
                           DetectorClass::kVacillateAdoptCommit;

  // Byzantine slots per placement. Kings rotate from id 0, so front
  // placement gives the adversary the first reigns (the hard case).
  std::vector<bool> isByz(n, false);
  switch (composition.placement) {
    case Placement::kFront:
      for (std::size_t i = 0; i < f; ++i) isByz[i] = true;
      break;
    case Placement::kBack:
      for (std::size_t i = 0; i < f; ++i) isByz[n - 1 - i] = true;
      break;
    case Placement::kSpread:
      for (std::size_t i = 0; i < f; ++i) isByz[(i * n) / f] = true;
      break;
  }

  SimConfig simConfig;
  simConfig.seed = composition.seed;
  simConfig.maxTicks = composition.maxTicks;
  simConfig.lockstep = resolved.lockstep;
  std::unique_ptr<NetworkModel> network;
  if (resolved.lockstep) {
    network = std::make_unique<SynchronousNetwork>();
  } else {
    UniformDelayNetwork::Options net;
    net.minDelay = composition.minDelay;
    net.maxDelay = composition.maxDelay;
    network = wrapAdversary(std::make_unique<UniformDelayNetwork>(net),
                            composition.adversary);
  }
  // A fresh Simulator per run: every counter (messagesCloned included)
  // starts at zero, so results never inherit a previous run's tallies.
  Simulator sim(simConfig, std::move(network));
  if (hooks.observer) sim.setScheduleObserver(hooks.observer);

  const ObjectParams params{n, resolved.t, composition.seed, composition.bias};
  const DetectorFactory detectorFactory =
      plantFault(resolved.detector->make(params), composition.fault);
  // Oracle-guided drivers get the run's oracle bound into their factory;
  // for everyone else the oracle role costs nothing (no schedule build,
  // no oracle instance, the plain make() path).
  std::shared_ptr<const fd::Oracle> oracle;
  fd::FaultSchedule oracleSchedule;
  if (resolved.oracle != nullptr) {
    oracleSchedule = fd::FaultSchedule::fromCrashList(n, composition.crashes);
    oracle = resolved.oracle->make(params, composition.oracleKnobs,
                                   oracleSchedule);
  }
  // Drivers query through the tap when a sink wants to see oracle traffic;
  // the end-of-run FD-axiom audit below keeps the untapped instance so its
  // own sampling never floods the sink.
  std::shared_ptr<const fd::Oracle> driverOracle = oracle;
  if (oracle && hooks.telemetry != nullptr)
    driverOracle = std::make_shared<TappedOracle>(oracle, hooks.telemetry);
  const DriverFactory driverFactory =
      oracle ? resolved.driver->makeWithOracle(params, driverOracle)
             : resolved.driver->make(params);

  std::vector<ConsensusProcess*> templated(n, nullptr);
  std::vector<Value> validInputs;
  auto skewProbe = std::make_unique<SkewProbe>(n);
  std::size_t correctSeen = 0;
  for (ProcessId id = 0; id < n; ++id) {
    if (isByz[id]) {
      sim.addProcess(resolved.detector->makeFaulty(
                         params, composition.byzantineStrategy),
                     /*faulty=*/true);
      continue;
    }
    const Value input =
        composition.inputs.empty()
            ? static_cast<Value>(correctSeen % 2)
            : composition.inputs[correctSeen % composition.inputs.size()];
    ++correctSeen;
    validInputs.push_back(input);

    ConsensusProcess::Options options;
    options.kind = vacDetector ? TemplateKind::kVacReconciliator
                               : TemplateKind::kAcConciliator;
    options.scheduling = resolved.scheduling;
    options.alwaysRunDriver = resolved.alwaysRunDriver;
    options.maxRounds = composition.maxRounds;
    if (!vacDetector) {
      if (composition.earlyCommitDecision) {
        options.decideOnCommit = true;  // paper-faithful, unsound corner
      } else {
        options.decideOnCommit = false;  // classic: fixed t+1 phases
        options.decideAfterRound = static_cast<Round>(resolved.t + 1);
      }
    }
    wireTelemetry(options, hooks.telemetry, skewProbe.get(), id);
    auto process = std::make_unique<ConsensusProcess>(
        input, detectorFactory, driverFactory, options);
    templated[id] = process.get();
    sim.addProcess(std::move(process));
  }

  sim.setValidValues(validInputs);
  for (const auto& [id, tick] : composition.crashes) sim.crashAt(id, tick);
  sim.stopWhenAllCorrectDecided();
  sim.run();

  CompositionResult result;
  result.allDecided = sim.allCorrectDecided();
  result.agreementViolated = sim.agreementViolated();
  result.validityViolated = sim.validityViolated();
  result.messagesByCorrect = sim.messagesSentByCorrect();
  result.eventsProcessed = sim.eventsProcessed();
  result.messagesCloned = sim.messagesCloned();
  result.maxRoundSkew = skewProbe->maxSkew;
  for (const ConsensusProcess* process : templated) {
    if (process == nullptr) continue;
    result.overlapWitnesses += process->overlapWitnesses();
    result.deferredActivations += process->deferredActivations();
  }

  Summary decisionRounds;
  for (ProcessId id = 0; id < n; ++id) {
    if (templated[id] == nullptr) continue;
    const auto& decision = sim.decision(id);
    if (!decision.decided) continue;
    result.decidedValue = decision.value;
    result.lastDecisionTick = std::max(result.lastDecisionTick, decision.at);
    const Round round = templated[id]->decisionRound();
    result.maxDecisionRound = std::max(result.maxDecisionRound, round);
    decisionRounds.add(static_cast<double>(round));
  }
  if (!decisionRounds.empty())
    result.meanDecisionRound = decisionRounds.mean();

  if (obs::enabled()) {
    const obs::Labels base =
        hooks.telemetryLabels.empty()
            ? obs::Labels{{"family", "compose"},
                          {"detector", composition.detector},
                          {"driver", composition.driver}}
            : hooks.telemetryLabels;
    publishSimMetrics(sim, base);
    publishDecisionTicks(sim, base);
    publishTemplateMetrics(templated, base);
  }

  // Crashed processes participated in the rounds they started (they
  // invoked the objects with their inputs), so they belong in the audit;
  // their unfinished rounds contribute inputs but no outcome.
  std::vector<const ConsensusProcess*> correct;
  for (ConsensusProcess* process : templated)
    if (process != nullptr) correct.push_back(process);
  AuditOptions auditOptions;
  if (!vacDetector) {
    auditOptions.requireAdoptValidity = false;  // the documented sentinel gap
    // An adopt-commit detector's adopt values may disagree in commit-free
    // rounds (the VAC-only coherence property does not apply).
    auditOptions.checkVacillateAdoptCoherence = false;
  }
  result.audits = auditAllRounds(correct, auditOptions);
  result.allAuditsOk =
      std::all_of(result.audits.begin(), result.audits.end(),
                  [](const RoundAudit& a) { return a.ok(); });

  // §5 witnesses (E9): adopt-level outcomes whose value disagrees with
  // the final decision.
  if (vacDetector && result.allDecided) {
    for (const ConsensusProcess* process : correct) {
      for (const RoundRecord& record : process->rounds()) {
        if (!record.detectorOutcome ||
            record.detectorOutcome->confidence != Confidence::kAdopt) {
          continue;
        }
        ++result.adoptOutcomesTotal;
        if (record.detectorOutcome->value != result.decidedValue)
          ++result.adoptMismatchWitnesses;
      }
    }
  }

  // FD-axiom audit. The horizon reaches past the decision, the advertised
  // stabilization and every lag window — but never past the run's tick
  // budget: an oracle whose "eventually" lands beyond maxTicks is exactly
  // the liveness failure the convergence check reports.
  if (oracle) {
    const fd::OracleKnobs& knobs = composition.oracleKnobs;
    const Tick settle = oracleSchedule.lastTransition() +
                        knobs.completenessLag + 4 * knobs.noiseEpoch + 64;
    const Tick wanted =
        std::max({result.lastDecisionTick, oracle->stabilizationBound(),
                  settle});
    result.oracleAudit = fd::auditOracle(
        *oracle, oracleSchedule, std::min(composition.maxTicks, wanted));
  }
  return result;
}

}  // namespace ooc::compose

#include "compose/telemetry.hpp"

#include <utility>

#include "sim/simulator.hpp"

namespace ooc::compose {

std::string roundLabel(Round m) {
  return m <= 32 ? std::to_string(m) : std::string("33+");
}

obs::Labels withLabel(obs::Labels base, const char* key, std::string value) {
  base.emplace_back(key, std::move(value));
  return base;
}

void publishSimMetrics(const Simulator& sim, const obs::Labels& base) {
  auto& registry = obs::metrics();
  registry.addCounter("runs", 1, base);
  registry.addCounter("events_executed", sim.eventsProcessed(), base);
  registry.addCounter("messages_sent", sim.messagesSent(), base);
  registry.addCounter("messages_delivered", sim.messagesDelivered(), base);
  registry.addCounter("messages_dropped", sim.messagesDropped(), base);
  registry.addCounter("messages_duplicated", sim.messagesDuplicated(), base);
  // Deep payload copies made by the simulator; 0 on the post()/fanout()
  // path, so any growth here is a copy regression on the hot path.
  registry.addCounter("messages_cloned", sim.messagesCloned(), base);
  registry.addCounter("timers_armed", sim.timersArmed(), base);
  registry.addCounter("timers_cancelled", sim.timersCancelled(), base);
  registry.addCounter("timers_fired", sim.timersFired(), base);
  registry.addCounter("restarts", sim.restarts(), base);
  registry.addCounter("messages_dropped_stale", sim.messagesDroppedStale(),
                      base);
  registry.addCounter("timers_purged_on_crash", sim.timersPurgedOnCrash(),
                      base);
}

void publishDecisionTicks(const Simulator& sim, const obs::Labels& base) {
  auto& registry = obs::metrics();
  for (ProcessId id = 0; id < sim.processCount(); ++id) {
    if (sim.faulty(id)) continue;
    const auto& decision = sim.decision(id);
    if (decision.decided)
      registry.observe("ticks_to_decide", static_cast<double>(decision.at),
                       base);
  }
}

void publishTemplateMetrics(const std::vector<ConsensusProcess*>& processes,
                            const obs::Labels& base) {
  auto& registry = obs::metrics();
  for (const ConsensusProcess* process : processes) {
    if (process == nullptr) continue;
    Round m = 0;
    for (const RoundRecord& record : process->rounds()) {
      ++m;
      if (record.detectorOutcome) {
        registry.addCounter(
            "confidence_transitions", 1,
            withLabel(withLabel(base, "confidence",
                                toString(record.detectorOutcome->confidence)),
                      "round", roundLabel(m)));
      }
      if (record.driverValue)
        registry.addCounter("driver_invocations", 1,
                            withLabel(base, "round", roundLabel(m)));
    }
    if (process->decided())
      registry.observe("rounds_to_decide",
                       static_cast<double>(process->decisionRound()), base);
  }
}

}  // namespace ooc::compose

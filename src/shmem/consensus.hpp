// Aspnes' framework in its native shared-memory model (paper [2], the
// framework this paper extends): binary consensus as rounds of a
// register-based adopt-commit followed by a probabilistic-write conciliator
// (Algorithm 2's loop), with each register operation one atomic step.
//
// Adopt-commit (multi-writer registers announce[2], direction):
//   AC_m(v):
//     announce[v] <- true                       (one step)
//     d <- direction                            (one step)
//     if d = bot: direction <- v; d <- v        (one step, skipped if set)
//     if announce[1-d] = false: return (commit, d)   (one step)
//     else:                     return (adopt,  d)
//
// Correctness sketch (full argument in tests/shmem_test.cpp): if P commits
// d it read announce[1-d] = false at a time when direction was already
// non-bot; any process that could return 1-d must have announced 1-d before
// reading direction as bot, which would have been visible to P — so every
// returned value is d. Unanimous inputs never set announce[1-v], giving
// convergence.
//
// Conciliator (register race, Aspnes 2012 probabilistic-write):
//   C_m(v):
//     loop: r <- race (one step); if r != bot: return r
//           with probability p: race <- v (one step); (re-read next loop)
//
// With probability > 0 exactly one write lands before any read, in which
// case all processes return the same value — probabilistic agreement.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>

#include "core/confidence.hpp"
#include "shmem/executor.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ooc::shmem {

/// Registers of one adopt-commit instance.
struct AcRegisters {
  std::array<bool, 2> announce{false, false};
  std::optional<Value> direction;
};

/// Per-round shared registers. The simulator is single-threaded, so plain
/// members model atomic registers exactly (each access happens inside one
/// scheduler step). The AC consensus loop uses `first` + `race`; the VAC
/// loop (vac_consensus.hpp) chains `first` and `second` per the paper's
/// §5 two-AC construction.
struct RoundRegisters {
  AcRegisters first;
  AcRegisters second;
  std::optional<Value> race;
};

/// The shared memory: lazily materialized per-round register banks.
class SharedArena {
 public:
  RoundRegisters& round(Round m) { return rounds_[m]; }
  const std::map<Round, RoundRegisters>& all() const noexcept {
    return rounds_;
  }

 private:
  std::map<Round, RoundRegisters> rounds_;
};

/// One processor running the AC + conciliator consensus loop. Binary
/// values only ({0,1}), as in the framework's presentation.
class ShmemConsensus final : public StepProcess {
 public:
  /// `writeProbability` is the conciliator's per-iteration write chance
  /// (Aspnes suggests Theta(1/n); experiments sweep it).
  ShmemConsensus(SharedArena& arena, Value input, double writeProbability,
                 std::uint64_t seed, Round maxRounds = 100000);

  bool step() override;

  bool decided() const noexcept { return decided_; }
  Value decisionValue() const noexcept { return decision_; }
  Round currentRound() const noexcept { return round_; }
  std::uint64_t stepsTaken() const noexcept { return steps_; }
  /// Outcomes observed from each round's AC, for property auditing.
  const std::map<Round, Outcome>& acOutcomes() const noexcept {
    return acOutcomes_;
  }

 private:
  enum class Pc {
    kAcAnnounce,
    kAcReadDirection,
    kAcWriteDirection,
    kAcCheckConflict,
    kConcRead,
    kConcMaybeWrite,
    kDone,
  };

  SharedArena& arena_;
  Value value_;
  double writeProbability_;
  Rng rng_;
  Round maxRounds_;

  Pc pc_ = Pc::kAcAnnounce;
  Round round_ = 1;
  Value direction_ = kNoValue;
  bool decided_ = false;
  Value decision_ = kNoValue;
  std::uint64_t steps_ = 0;
  std::map<Round, Outcome> acOutcomes_;
};

}  // namespace ooc::shmem

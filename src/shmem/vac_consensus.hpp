// The paper's NEW framework (Algorithm 1: VAC + reconciliator) in the
// shared-memory model — closing the loop: the paper extends Aspnes'
// shared-memory framework [2] with message-passing examples; here the
// extension is carried back into the original model.
//
// The VAC is the §5 construction executed over registers: two chained
// register adopt-commit instances per round,
//
//   (c1, u1) <- AC_first(v);  (c2, u2) <- AC_second(u1)
//   commit    if c1 = commit and c2 = commit
//   adopt     if c2 = commit
//   vacillate otherwise                                  (value u2)
//
// and the reconciliator is the probabilistic-write race register. Per
// Algorithm 1: commit decides (halting is wait-free safe in shared memory —
// a decider's register writes keep serving others), adopt keeps u2,
// vacillate takes the reconciliator's value.
//
// Every register access costs exactly one scheduler step, so the step
// counts are directly comparable with the AC + conciliator loop
// (ShmemConsensus): the VAC round costs two AC executions — the
// shared-memory measurement of §5's "slightly weaker" (experiment E11c).
#pragma once

#include <cstdint>
#include <map>

#include "core/confidence.hpp"
#include "shmem/consensus.hpp"
#include "shmem/executor.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ooc::shmem {

class ShmemVacConsensus final : public StepProcess {
 public:
  ShmemVacConsensus(SharedArena& arena, Value input,
                    double writeProbability, std::uint64_t seed,
                    Round maxRounds = 100000);

  bool step() override;

  bool decided() const noexcept { return decided_; }
  Value decisionValue() const noexcept { return decision_; }
  Round currentRound() const noexcept { return round_; }
  std::uint64_t stepsTaken() const noexcept { return steps_; }
  /// Per-round VAC outcomes, for contract audits.
  const std::map<Round, Outcome>& vacOutcomes() const noexcept {
    return vacOutcomes_;
  }

 private:
  enum class Pc {
    kAnnounce,
    kReadDirection,
    kWriteDirection,
    kCheckConflict,
    kConcRead,
    kConcMaybeWrite,
    kDone,
  };

  AcRegisters& bank();
  void finishVac(Confidence c1, Confidence c2);

  SharedArena& arena_;
  Value value_;
  double writeProbability_;
  Rng rng_;
  Round maxRounds_;

  Pc pc_ = Pc::kAnnounce;
  int acIndex_ = 0;  // 0 = first AC of the round, 1 = second
  Confidence firstConfidence_ = Confidence::kAdopt;
  Value direction_ = kNoValue;
  Round round_ = 1;
  bool decided_ = false;
  Value decision_ = kNoValue;
  std::uint64_t steps_ = 0;
  std::map<Round, Outcome> vacOutcomes_;
};

}  // namespace ooc::shmem

#include "shmem/consensus.hpp"

#include <stdexcept>

namespace ooc::shmem {

ShmemConsensus::ShmemConsensus(SharedArena& arena, Value input,
                               double writeProbability, std::uint64_t seed,
                               Round maxRounds)
    : arena_(arena),
      value_(input),
      writeProbability_(writeProbability),
      rng_(seed),
      maxRounds_(maxRounds) {
  if (input != 0 && input != 1)
    throw std::invalid_argument("shared-memory consensus is binary");
}

bool ShmemConsensus::step() {
  ++steps_;
  RoundRegisters& regs = arena_.round(round_);

  switch (pc_) {
    case Pc::kAcAnnounce:
      regs.first.announce[static_cast<std::size_t>(value_)] = true;
      pc_ = Pc::kAcReadDirection;
      return false;

    case Pc::kAcReadDirection:
      if (regs.first.direction) {
        direction_ = *regs.first.direction;
        pc_ = Pc::kAcCheckConflict;
      } else {
        pc_ = Pc::kAcWriteDirection;
      }
      return false;

    case Pc::kAcWriteDirection:
      regs.first.direction = value_;
      direction_ = value_;
      pc_ = Pc::kAcCheckConflict;
      return false;

    case Pc::kAcCheckConflict: {
      const bool conflict =
          regs.first.announce[static_cast<std::size_t>(1 - direction_)];
      const Outcome outcome{
          conflict ? Confidence::kAdopt : Confidence::kCommit, direction_};
      acOutcomes_.emplace(round_, outcome);
      value_ = direction_;
      if (!conflict) {
        decided_ = true;
        decision_ = direction_;
        pc_ = Pc::kDone;
        return true;
      }
      pc_ = Pc::kConcRead;
      return false;
    }

    case Pc::kConcRead:
      if (regs.race) {
        value_ = *regs.race;
        if (round_ >= maxRounds_) {
          pc_ = Pc::kDone;
          return true;
        }
        ++round_;
        pc_ = Pc::kAcAnnounce;
      } else {
        pc_ = Pc::kConcMaybeWrite;
      }
      return false;

    case Pc::kConcMaybeWrite:
      if (rng_.chance(writeProbability_)) regs.race = value_;
      pc_ = Pc::kConcRead;
      return false;

    case Pc::kDone:
      return true;
  }
  return true;
}

}  // namespace ooc::shmem

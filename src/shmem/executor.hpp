// Shared-memory execution model for Aspnes' original framework (paper [2]).
//
// Wait-free shared-memory algorithms are sequences of atomic register
// operations interleaved by an adversarial scheduler. The executor models
// exactly that: each StepProcess::step() performs ONE shared-memory
// operation, and the scheduler decides whose step runs next. Determinism
// comes from the seeded scheduler; adversarial behaviour from the policy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace ooc::shmem {

/// A process whose execution is divided into atomic shared-memory steps.
class StepProcess {
 public:
  StepProcess() = default;
  StepProcess(const StepProcess&) = delete;
  StepProcess& operator=(const StepProcess&) = delete;
  virtual ~StepProcess() = default;

  /// Executes one atomic step. Returns true when the process has finished
  /// (further calls are not made).
  virtual bool step() = 0;
};

/// Interleaving policies.
enum class SchedulePolicy {
  /// Fair round-robin over unfinished processes.
  kRoundRobin,
  /// Uniformly random unfinished process each step.
  kRandom,
  /// Adversarial flavour: with probability 1/2 runs the lowest-id
  /// unfinished process, otherwise a random one — starves high ids and
  /// creates long solo runs, the bad case for probabilistic protocols.
  kSkewed,
};

const char* toString(SchedulePolicy policy) noexcept;

/// Runs the processes to completion (or a step cap) under a policy.
class StepScheduler {
 public:
  StepScheduler(SchedulePolicy policy, std::uint64_t seed);

  void add(StepProcess& process);

  /// Runs until every process finished or `maxSteps` were executed.
  /// Returns the number of steps executed.
  std::uint64_t run(std::uint64_t maxSteps = 10'000'000);

  bool allDone() const noexcept;

 private:
  SchedulePolicy policy_;
  Rng rng_;
  std::vector<StepProcess*> processes_;
  std::vector<bool> done_;
};

}  // namespace ooc::shmem

#include "shmem/vac_consensus.hpp"

#include <stdexcept>

namespace ooc::shmem {

ShmemVacConsensus::ShmemVacConsensus(SharedArena& arena, Value input,
                                     double writeProbability,
                                     std::uint64_t seed, Round maxRounds)
    : arena_(arena),
      value_(input),
      writeProbability_(writeProbability),
      rng_(seed),
      maxRounds_(maxRounds) {
  if (input != 0 && input != 1)
    throw std::invalid_argument("shared-memory consensus is binary");
}

AcRegisters& ShmemVacConsensus::bank() {
  RoundRegisters& regs = arena_.round(round_);
  return acIndex_ == 0 ? regs.first : regs.second;
}

void ShmemVacConsensus::finishVac(Confidence c1, Confidence c2) {
  Confidence level = Confidence::kVacillate;
  if (c2 == Confidence::kCommit) {
    level = c1 == Confidence::kCommit ? Confidence::kCommit
                                      : Confidence::kAdopt;
  }
  vacOutcomes_.emplace(round_, Outcome{level, value_});

  if (level == Confidence::kCommit) {
    decided_ = true;
    decision_ = value_;
    pc_ = Pc::kDone;
    return;
  }
  if (level == Confidence::kAdopt) {
    // Keep u2 (already in value_) and start the next round.
    if (round_ >= maxRounds_) {
      pc_ = Pc::kDone;
      return;
    }
    ++round_;
    acIndex_ = 0;
    pc_ = Pc::kAnnounce;
    return;
  }
  pc_ = Pc::kConcRead;  // vacillate: reconcile
}

bool ShmemVacConsensus::step() {
  ++steps_;

  switch (pc_) {
    case Pc::kAnnounce:
      bank().announce[static_cast<std::size_t>(value_)] = true;
      pc_ = Pc::kReadDirection;
      return false;

    case Pc::kReadDirection:
      if (bank().direction) {
        direction_ = *bank().direction;
        pc_ = Pc::kCheckConflict;
      } else {
        pc_ = Pc::kWriteDirection;
      }
      return false;

    case Pc::kWriteDirection:
      bank().direction = value_;
      direction_ = value_;
      pc_ = Pc::kCheckConflict;
      return false;

    case Pc::kCheckConflict: {
      const bool conflict =
          bank().announce[static_cast<std::size_t>(1 - direction_)];
      const Confidence confidence =
          conflict ? Confidence::kAdopt : Confidence::kCommit;
      value_ = direction_;
      if (acIndex_ == 0) {
        // Chain into the round's second AC with u1 as input.
        firstConfidence_ = confidence;
        acIndex_ = 1;
        pc_ = Pc::kAnnounce;
      } else {
        finishVac(firstConfidence_, confidence);
      }
      return pc_ == Pc::kDone;
    }

    case Pc::kConcRead: {
      RoundRegisters& regs = arena_.round(round_);
      if (regs.race) {
        value_ = *regs.race;
        if (round_ >= maxRounds_) {
          pc_ = Pc::kDone;
          return true;
        }
        ++round_;
        acIndex_ = 0;
        pc_ = Pc::kAnnounce;
      } else {
        pc_ = Pc::kConcMaybeWrite;
      }
      return false;
    }

    case Pc::kConcMaybeWrite:
      if (rng_.chance(writeProbability_))
        arena_.round(round_).race = value_;
      pc_ = Pc::kConcRead;
      return false;

    case Pc::kDone:
      return true;
  }
  return true;
}

}  // namespace ooc::shmem

#include "shmem/executor.hpp"

#include <algorithm>

namespace ooc::shmem {

const char* toString(SchedulePolicy policy) noexcept {
  switch (policy) {
    case SchedulePolicy::kRoundRobin: return "round-robin";
    case SchedulePolicy::kRandom: return "random";
    case SchedulePolicy::kSkewed: return "skewed";
  }
  return "?";
}

StepScheduler::StepScheduler(SchedulePolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed) {}

void StepScheduler::add(StepProcess& process) {
  processes_.push_back(&process);
  done_.push_back(false);
}

bool StepScheduler::allDone() const noexcept {
  return std::all_of(done_.begin(), done_.end(), [](bool d) { return d; });
}

std::uint64_t StepScheduler::run(std::uint64_t maxSteps) {
  std::uint64_t steps = 0;
  std::size_t cursor = 0;

  auto pickRandomLive = [&]() -> std::size_t {
    // Count live processes, then select uniformly among them.
    std::size_t live = 0;
    for (bool d : done_) live += d ? 0 : 1;
    std::size_t target = static_cast<std::size_t>(rng_.below(live));
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      if (done_[i]) continue;
      if (target == 0) return i;
      --target;
    }
    return 0;  // unreachable while any process is live
  };

  while (!allDone() && steps < maxSteps) {
    std::size_t chosen = 0;
    switch (policy_) {
      case SchedulePolicy::kRoundRobin: {
        while (done_[cursor % processes_.size()]) ++cursor;
        chosen = cursor % processes_.size();
        ++cursor;
        break;
      }
      case SchedulePolicy::kRandom:
        chosen = pickRandomLive();
        break;
      case SchedulePolicy::kSkewed: {
        if (rng_.chance(0.5)) {
          chosen = 0;
          while (done_[chosen]) ++chosen;
        } else {
          chosen = pickRandomLive();
        }
        break;
      }
    }
    done_[chosen] = processes_[chosen]->step();
    ++steps;
  }
  return steps;
}

}  // namespace ooc::shmem

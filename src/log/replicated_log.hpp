// State-machine replication built from the paper's objects — the payoff the
// introduction motivates ("database transaction handling, ensuring storage
// replicas are mutually consistent"): a totally ordered replicated command
// log where EVERY slot is one instance of the generic consensus template
// (Algorithm 1), with whatever detector/driver pair the caller plugs in.
//
// Protocol. Each node owns a queue of client commands (globally unique).
// Slots are decided sequentially: a node proposes the head of its pending
// queue (or a no-op when drained) for the current slot, runs the consensus
// template for that slot, appends the winner to its log, pops its queue if
// its own command won, and moves to the next slot. Messages are enveloped
// with the slot number; traffic for slots a node has not reached yet is
// buffered. Agreement per slot gives identical logs (prefix property);
// validity per slot plus a fair multivalued reconciliator (e.g. the
// lottery) gives liveness: every pending command is eventually committed
// exactly once, with probability 1.
//
// Idle detection. A slot is opened only when there is work: the node has a
// pending command, or a peer's traffic for the slot has arrived (the node
// then joins reactively, proposing a no-op). A fully drained cluster
// therefore stops opening slots, its retired engines quiesce, and the
// simulator's event queue drains — no stop predicate needed. Without this,
// drained nodes would propose no-op decrees forever (capped only by
// Options::maxSlots).
//
// Implementation note: each slot hosts an unmodified ConsensusProcess; the
// node hands it a per-slot Context adapter that wraps sends in a
// SlotMessage envelope and captures decide() locally instead of reporting
// a (single-shot) consensus decision to the simulator monitor.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/consensus_process.hpp"
#include "sim/process.hpp"

namespace ooc::log {

/// Slot-number envelope around consensus-template traffic. The inner
/// payload is shared: cloning the envelope or buffering it adds a ref.
class SlotMessage final : public MessageBase<SlotMessage> {
 public:
  SlotMessage(std::uint64_t slot, MessagePtr inner)
      : slot_(slot), inner_(std::move(inner)) {}

  std::uint64_t slot() const noexcept { return slot_; }
  const Message& inner() const noexcept { return *inner_; }
  const MessagePtr& innerPtr() const noexcept { return inner_; }

  std::string describe() const override {
    return "[slot " + std::to_string(slot_) + "] " + inner_->describe();
  }

 private:
  std::uint64_t slot_;
  MessagePtr inner_;
};

/// The no-op command proposed by nodes whose queue is drained. Reserved:
/// client commands must be positive.
inline constexpr Value kNoopCommand = 0;

/// Packs (node, sequence) into a globally unique command id.
constexpr Value makeCommand(ProcessId node, std::uint32_t seq) noexcept {
  return static_cast<Value>(
      (static_cast<std::uint64_t>(node + 1) << 32) | seq);
}
constexpr ProcessId commandNode(Value command) noexcept {
  return static_cast<ProcessId>(
             static_cast<std::uint64_t>(command) >> 32) - 1;
}

/// Factories instantiated per slot. Randomized drivers that share a seed
/// across processes (e.g. the lottery) MUST mix the slot into that seed:
/// template rounds restart at 1 in every slot, so a slot-agnostic shared
/// draw would crown the same winner in every slot's round 1 — a drained
/// node's no-op could then win forever (livelock).
using SlotDetectorFactory = std::function<DetectorFactory(std::uint64_t)>;
using SlotDriverFactory = std::function<DriverFactory(std::uint64_t)>;

class ReplicatedLogNode final : public Process {
 public:
  struct Options {
    /// Per-slot template options (kind, decision rule, round cap).
    ConsensusProcess::Options slot;
    /// Upper bound on slots, as a runaway guard.
    std::uint64_t maxSlots = 10000;
  };

  /// `commands` is this node's client workload (each must be positive and
  /// globally unique — use makeCommand). The detector/driver factories are
  /// instantiated fresh for every slot and round.
  ReplicatedLogNode(std::vector<Value> commands,
                    SlotDetectorFactory detectorFactory,
                    SlotDriverFactory driverFactory, Options options);
  ~ReplicatedLogNode() override;

  void onStart() override;
  void onRestart() override;
  void onMessage(ProcessId from, const Message& message) override;
  void onTimer(TimerId id) override;
  void onTick(Tick tick) override;

  /// Committed commands in slot order, no-ops included.
  const std::vector<Value>& log() const noexcept { return log_; }
  /// Committed non-noop commands in slot order.
  std::vector<Value> committedCommands() const;
  bool drained() const noexcept { return pending_.empty(); }
  std::uint64_t currentSlot() const noexcept { return slot_; }

 private:
  class SlotContextImpl;
  struct ActiveSlot {
    std::unique_ptr<SlotContextImpl> context;
    std::unique_ptr<ConsensusProcess> engine;
  };

  void openCurrentSlot();
  void onSlotDecided(std::uint64_t slot, Value winner);
  void pruneOldSlots();

  SlotDetectorFactory detectorFactory_;
  SlotDriverFactory driverFactory_;
  Options options_;

  /// The constructor-supplied workload, kept verbatim so a (non-durable)
  /// crash-restart can re-queue it: a restart is a fresh boot.
  std::vector<Value> initialCommands_;
  std::deque<Value> pending_;
  std::vector<Value> log_;
  /// Lowest undecided slot at this node.
  std::uint64_t slot_ = 0;

  /// Slot engines still alive: the current slot plus recently decided ones
  /// that keep answering stragglers until they retire (see
  /// Options::participateRoundsAfterDecide in ConsensusProcess).
  std::map<std::uint64_t, ActiveSlot> active_;
  std::map<TimerId, std::uint64_t> timerSlot_;
  /// Buffered traffic for slots this node has not reached yet; payloads
  /// are shared with the in-flight envelopes, never copied.
  std::map<std::uint64_t, std::vector<std::pair<ProcessId, MessagePtr>>>
      buffered_;
};

}  // namespace ooc::log

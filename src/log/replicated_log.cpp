#include "log/replicated_log.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace ooc::log {

/// Per-slot view of the node's Context: wraps template traffic in a
/// SlotMessage envelope and redirects decide() to the slot bookkeeping.
class ReplicatedLogNode::SlotContextImpl final : public Context {
 public:
  SlotContextImpl(ReplicatedLogNode& host, std::uint64_t slot) noexcept
      : host_(host), slot_(slot) {}

  ProcessId self() const noexcept override { return host_.ctx().self(); }
  std::size_t processCount() const noexcept override {
    return host_.ctx().processCount();
  }
  Tick now() const noexcept override { return host_.ctx().now(); }
  Rng& rng() noexcept override { return host_.ctx().rng(); }

  void send(ProcessId to, std::unique_ptr<Message> msg) override {
    post(to, MessagePtr(std::move(msg)));
  }
  void broadcast(const Message& msg) override {
    fanout(MessagePtr(msg.clone()));
  }
  void post(ProcessId to, MessagePtr msg) override {
    host_.ctx().post(to, makeMessage<SlotMessage>(slot_, std::move(msg)));
  }
  void fanout(MessagePtr msg) override {
    host_.ctx().fanout(makeMessage<SlotMessage>(slot_, std::move(msg)));
  }
  TimerId setTimer(Tick delay) override {
    const TimerId id = host_.ctx().setTimer(delay);
    host_.timerSlot_[id] = slot_;
    return id;
  }
  void cancelTimer(TimerId id) noexcept override {
    host_.timerSlot_.erase(id);
    host_.ctx().cancelTimer(id);
  }
  void decide(Value v) override { host_.onSlotDecided(slot_, v); }

 private:
  ReplicatedLogNode& host_;
  std::uint64_t slot_;
};

ReplicatedLogNode::ReplicatedLogNode(std::vector<Value> commands,
                                     SlotDetectorFactory detectorFactory,
                                     SlotDriverFactory driverFactory,
                                     Options options)
    : detectorFactory_(std::move(detectorFactory)),
      driverFactory_(std::move(driverFactory)),
      options_(options),
      initialCommands_(std::move(commands)),
      pending_(initialCommands_.begin(), initialCommands_.end()) {
  for (Value command : initialCommands_) {
    if (command <= kNoopCommand)
      throw std::invalid_argument("client commands must be positive");
  }
  if (options_.slot.participateRoundsAfterDecide == 0) {
    // Instances must quiesce on their own; one extra round is the Ben-Or
    // family's bound (see ConsensusProcess::Options).
    options_.slot.participateRoundsAfterDecide = 1;
  }
  // Multivalued slots use quorum-waiting drivers (e.g. the lottery), which
  // need every process in the drive wave of every round.
  options_.slot.alwaysRunDriver = true;
}

ReplicatedLogNode::~ReplicatedLogNode() = default;

void ReplicatedLogNode::onStart() { openCurrentSlot(); }

void ReplicatedLogNode::onRestart() {
  // Non-durable fresh boot. Every volatile structure is rebuilt from
  // scratch and the constructor workload re-queued; the simulator already
  // purged this node's timers and will drop in-flight messages addressed
  // to the previous incarnation. Peers may be many slots ahead by now —
  // with no catch-up protocol this node may never re-decide pruned slots,
  // so only the prefix property is promised after a restart (the svc layer
  // adds durable recovery plus catch-up; see DESIGN.md §12). The default
  // onRestart -> onStart path would instead have re-opened slot_ on top of
  // a surviving engine; this override replaces it.
  active_.clear();
  timerSlot_.clear();
  buffered_.clear();
  log_.clear();
  pending_.assign(initialCommands_.begin(), initialCommands_.end());
  slot_ = 0;
  openCurrentSlot();
}

void ReplicatedLogNode::openCurrentSlot() {
  if (slot_ >= options_.maxSlots) return;
  if (active_.contains(slot_)) return;
  // Idle detection: open only when this node has work to propose or a peer
  // already opened the slot (buffered traffic). A drained, quiet cluster
  // opens nothing and the run quiesces.
  if (pending_.empty() && !buffered_.contains(slot_)) return;
  const Value proposal = pending_.empty() ? kNoopCommand : pending_.front();
  ActiveSlot active;
  active.context = std::make_unique<SlotContextImpl>(*this, slot_);
  active.engine = std::make_unique<ConsensusProcess>(
      proposal, detectorFactory_(slot_), driverFactory_(slot_),
      options_.slot);
  active.engine->bind(*active.context);
  ConsensusProcess* engine = active.engine.get();
  SlotContextImpl* context = active.context.get();
  active_.emplace(slot_, std::move(active));
  OOC_TRACE("log p", ctx().self(), " opens slot ", slot_, " proposing ",
            proposal);
  engine->onStart();

  // Replay traffic that arrived before we reached this slot.
  const auto held = buffered_.find(slot_);
  if (held != buffered_.end()) {
    auto messages = std::move(held->second);
    buffered_.erase(held);
    // The engine may decide mid-replay and open the NEXT slot reentrantly;
    // `engine`/`context` stay valid because active_ owns them.
    (void)context;
    for (auto& [from, message] : messages)
      engine->onMessage(from, *message);
  }
}

void ReplicatedLogNode::onSlotDecided(std::uint64_t slot, Value winner) {
  if (slot != slot_) return;  // stale/duplicate decide; slots are ordered
  log_.push_back(winner);
  if (!pending_.empty() && pending_.front() == winner) pending_.pop_front();
  OOC_TRACE("log p", ctx().self(), " slot ", slot, " -> ", winner);
  ++slot_;
  pruneOldSlots();
  openCurrentSlot();
}

void ReplicatedLogNode::pruneOldSlots() {
  // Retired engines quiesce by themselves; drop them once they are far
  // enough behind that no correct straggler can still need our traffic
  // (every node ships each slot's rounds before advancing past it).
  while (!active_.empty() && active_.begin()->first + 4 <= slot_)
    active_.erase(active_.begin());
}

void ReplicatedLogNode::onMessage(ProcessId from, const Message& message) {
  const auto* slotted = message.as<SlotMessage>();
  if (slotted == nullptr) return;
  const auto slot = slotted->slot();
  const auto engine = active_.find(slot);
  if (engine != active_.end()) {
    engine->second.engine->onMessage(from, slotted->inner());
    return;
  }
  if (slot >= slot_) {
    // Not reached (slot > slot_) or not yet opened (slot == slot_, idle
    // node): buffer, and join the current slot reactively — a no-op
    // proposal keeps the quorum whole without inventing work.
    buffered_[slot].emplace_back(from, slotted->innerPtr());
    if (slot == slot_) openCurrentSlot();
    return;
  }
  // slot < slot_ with no engine: pruned, drop.
}

void ReplicatedLogNode::onTimer(TimerId id) {
  const auto owner = timerSlot_.find(id);
  if (owner == timerSlot_.end()) return;
  const auto slot = owner->second;
  timerSlot_.erase(owner);
  const auto engine = active_.find(slot);
  if (engine != active_.end()) engine->second.engine->onTimer(id);
}

void ReplicatedLogNode::onTick(Tick tick) {
  // Iterate over a snapshot of keys: handlers may open/prune slots.
  std::vector<std::uint64_t> slots;
  slots.reserve(active_.size());
  for (const auto& [slot, unused] : active_) slots.push_back(slot);
  for (const auto slot : slots) {
    const auto engine = active_.find(slot);
    if (engine != active_.end()) engine->second.engine->onTick(tick);
  }
}

std::vector<Value> ReplicatedLogNode::committedCommands() const {
  std::vector<Value> commands;
  for (Value v : log_)
    if (v != kNoopCommand) commands.push_back(v);
  return commands;
}

}  // namespace ooc::log

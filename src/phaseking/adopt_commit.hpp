// Phase-King's adopt-commit object (paper §4.1, Algorithm 3).
//
// Synchronous model, t Byzantine processors, 3t < n. The object spans two
// lockstep exchanges:
//
//   AC(v, m):
//     broadcast <v>                               (exchange 1)
//     v <- 2; for k in {0,1}: if C(k) >= n-t: v <- k
//     broadcast <v>                               (exchange 2)
//     for k = 2 downto 0: if D(k) > t: v <- k
//     if v != 2 and D(v) >= n-t: return (commit, v) else return (adopt, v)
//
// Tick calendar: invoke() broadcasts exchange 1 at tick T; onTick(T+1)
// tallies exchange 1 and broadcasts exchange 2; onTick(T+2) tallies
// exchange 2 and returns. All correct processes invoke at the same tick
// (the template keeps them lockstep-aligned), so tallies are complete when
// read. Counts are per distinct sender and values outside the legal domain
// are discarded — a Byzantine processor can lie, but not vote twice or
// inject out-of-range ballots.
//
// Note (faithful to the paper): when no value reaches the D(k) > t
// threshold, the returned adopt value can be the sentinel 2, which is not
// any processor's input. The paper's Lemma 2 proves validity only for
// unanimous inputs; the conciliator's MIN(1, v) maps the sentinel back into
// {0,1} before the next round. EXPERIMENTS.md discusses this gap.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <vector>

#include "core/objects.hpp"

namespace ooc::phaseking {

class PhaseKingAc final : public AgreementDetector {
 public:
  /// `faultTolerance` is t, the tolerated number of Byzantine processors.
  /// Requires 3t < n (checked at invoke).
  explicit PhaseKingAc(std::size_t faultTolerance);

  void invoke(ObjectContext& ctx, Value v) override;
  void onMessage(ObjectContext& ctx, ProcessId from,
                 const Message& inner) override;
  void onTick(ObjectContext& ctx, Tick tick) override;
  std::optional<Outcome> result() const override { return outcome_; }

  static DetectorFactory factory(std::size_t faultTolerance);

 private:
  std::size_t t_;
  Value value_ = kNoValue;
  int ticksSeen_ = 0;
  std::optional<Outcome> outcome_;

  std::vector<bool> seenExchange1_;
  std::vector<bool> seenExchange2_;
  std::array<std::size_t, 2> countC_{};  // C(0), C(1)
  std::array<std::size_t, 3> countD_{};  // D(0), D(1), D(2)
};

}  // namespace ooc::phaseking

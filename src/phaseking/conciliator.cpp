#include "phaseking/conciliator.hpp"

#include "phaseking/messages.hpp"

namespace ooc::phaseking {
namespace {

/// MIN(1, v) with clamping of hostile payloads into the binary domain.
Value binarize(Value v) noexcept { return v == 0 ? 0 : 1; }

}  // namespace

KingConciliator::KingConciliator(Round round) : round_(round) {}

void KingConciliator::invoke(ObjectContext& ctx, const Outcome& detected) {
  fallback_ = binarize(detected.value);
  if (ctx.self() == kingOf(round_, ctx.processCount())) {
    ctx.fanout(makeMessage<KingMessage>(binarize(detected.value)));
  }
}

void KingConciliator::onMessage(ObjectContext& ctx, ProcessId from,
                                const Message& inner) {
  const auto* king = inner.as<KingMessage>();
  if (king == nullptr || value_) return;
  if (from != kingOf(round_, ctx.processCount())) return;  // imposter
  value_ = binarize(king->value);
}

void KingConciliator::onTick(ObjectContext&, Tick) {
  // End of the conciliator exchange: a silent (Byzantine) king yields no
  // message; fall back to the processor's own value so the round completes.
  if (!value_) value_ = fallback_;
}

DriverFactory KingConciliator::factory() {
  return [](Round m) { return std::make_unique<KingConciliator>(m); };
}

}  // namespace ooc::phaseking

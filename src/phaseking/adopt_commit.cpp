#include "phaseking/adopt_commit.hpp"

#include <stdexcept>

#include "phaseking/messages.hpp"

namespace ooc::phaseking {

PhaseKingAc::PhaseKingAc(std::size_t faultTolerance) : t_(faultTolerance) {}

void PhaseKingAc::invoke(ObjectContext& ctx, Value v) {
  if (3 * t_ >= ctx.processCount())
    throw std::invalid_argument("Phase-King requires 3t < n");
  value_ = v;
  seenExchange1_.assign(ctx.processCount(), false);
  seenExchange2_.assign(ctx.processCount(), false);
  ctx.fanout(makeMessage<ExchangeMessage>(1, v));
}

void PhaseKingAc::onMessage(ObjectContext&, ProcessId from,
                            const Message& inner) {
  const auto* exchange = inner.as<ExchangeMessage>();
  if (exchange == nullptr || outcome_) return;

  if (exchange->exchange == 1) {
    if (from >= seenExchange1_.size() || seenExchange1_[from]) return;
    seenExchange1_[from] = true;
    if (exchange->value == 0 || exchange->value == 1)
      ++countC_[static_cast<std::size_t>(exchange->value)];
  } else if (exchange->exchange == 2) {
    if (from >= seenExchange2_.size() || seenExchange2_[from]) return;
    seenExchange2_[from] = true;
    if (exchange->value >= 0 && exchange->value <= 2)
      ++countD_[static_cast<std::size_t>(exchange->value)];
  }
}

void PhaseKingAc::onTick(ObjectContext& ctx, Tick) {
  if (outcome_) return;
  const std::size_t n = ctx.processCount();
  ++ticksSeen_;

  if (ticksSeen_ == 1) {
    // End of exchange 1.
    value_ = 2;
    for (Value k = 0; k <= 1; ++k) {
      if (countC_[static_cast<std::size_t>(k)] >= n - t_) value_ = k;
    }
    ctx.fanout(makeMessage<ExchangeMessage>(2, value_));
    return;
  }

  if (ticksSeen_ == 2) {
    // End of exchange 2.
    for (Value k = 2; k >= 0; --k) {
      if (countD_[static_cast<std::size_t>(k)] > t_) value_ = k;
    }
    const bool strong =
        value_ != 2 &&
        countD_[static_cast<std::size_t>(value_)] >= n - t_;
    outcome_ = Outcome{strong ? Confidence::kCommit : Confidence::kAdopt,
                       value_};
  }
}

DetectorFactory PhaseKingAc::factory(std::size_t faultTolerance) {
  return [faultTolerance](Round) {
    return std::make_unique<PhaseKingAc>(faultTolerance);
  };
}

}  // namespace ooc::phaseking

// Phase-Queen (Berman & Garay 1989) decomposed into the framework — an
// extension beyond the paper's three case studies showing a fourth
// algorithm dropping into the same template.
//
// Synchronous model, t Byzantine processors, 4t < n. Each round is ONE
// value exchange plus a queen broadcast (vs Phase-King's two exchanges):
//
//   QueenAC(v, m):                      (one lockstep exchange)
//     broadcast <v>; tally C(0), C(1) over distinct senders
//     w <- plurality (ties -> 0)
//     if C(w) >= n - t: return (commit, w) else return (adopt, w)
//
//   QueenConciliator(X, sigma, m):      (one lockstep exchange)
//     if self = queen(m): broadcast MIN(1, sigma)
//     return queen's value (own value if the queen stays silent)
//
// Coherence over adopt & commit: if P commits w then at least n - 2t
// correct processors broadcast w; any correct Q therefore counts
// C_Q(w) >= n - 2t > n/2 (using 4t < n), making w Q's strict plurality —
// every outcome carries w. Convergence: unanimous correct inputs give
// C(w) >= n - t everywhere. The same argument makes an honest queen's
// round unifying: a committing processor's value IS the queen's plurality.
//
// Like Phase-King, the sound decision rule is classic (decide after t+1
// completed rounds); decide-on-commit has the same Byzantine-queen gap.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <vector>

#include "core/objects.hpp"
#include "phaseking/byzantine.hpp"
#include "sim/process.hpp"

namespace ooc::phaseking {

class PhaseQueenAc final : public AgreementDetector {
 public:
  explicit PhaseQueenAc(std::size_t faultTolerance);

  void invoke(ObjectContext& ctx, Value v) override;
  void onMessage(ObjectContext& ctx, ProcessId from,
                 const Message& inner) override;
  void onTick(ObjectContext& ctx, Tick tick) override;
  std::optional<Outcome> result() const override { return outcome_; }

  static DetectorFactory factory(std::size_t faultTolerance);

 private:
  std::size_t t_;
  std::optional<Outcome> outcome_;
  std::vector<bool> seen_;
  std::array<std::size_t, 2> tally_{};
};

class QueenConciliator final : public Driver {
 public:
  explicit QueenConciliator(Round round);

  void invoke(ObjectContext& ctx, const Outcome& detected) override;
  void onMessage(ObjectContext& ctx, ProcessId from,
                 const Message& inner) override;
  void onTick(ObjectContext& ctx, Tick tick) override;
  std::optional<Value> result() const override { return value_; }

  static DriverFactory factory();

  static ProcessId queenOf(Round round, std::size_t n) noexcept {
    return static_cast<ProcessId>((round - 1) % n);
  }

 private:
  Round round_;
  Value fallback_ = 1;
  std::optional<Value> value_;
};

/// Byzantine adversary for Phase-Queen runs: the 2-ticks-per-round
/// calendar analogue of PhaseKingByzantine, sharing its strategy set.
class PhaseQueenByzantine final : public Process {
 public:
  explicit PhaseQueenByzantine(ByzantineStrategy strategy);

  void onStart() override;
  void onMessage(ProcessId, const Message&) override {}
  void onTick(Tick tick) override;

 private:
  void act(Tick tick);

  ByzantineStrategy strategy_;
};

}  // namespace ooc::phaseking

// Byzantine adversaries for Phase-King runs (paper §4.1 model: t Byzantine
// processors, 3t < n).
//
// A Byzantine processor is a free agent: it knows the lockstep calendar
// (3 ticks per phase — exchange 1, exchange 2, king) and may send any
// message, or none, to any subset, with different contents per destination
// (equivocation). The strategies here cover the classic attack repertoire;
// property tests assert that every correct-process guarantee survives each
// of them as long as the attacker count stays within t.
#pragma once

#include "sim/process.hpp"
#include "util/types.hpp"

namespace ooc::phaseking {

enum class ByzantineStrategy {
  /// Sends nothing (crash-equivalent, the mildest attack).
  kSilent,
  /// Sends an independently random value in {0,1,2} per destination, slot.
  kRandom,
  /// Sends 0 to the lower half of ids and 1 to the upper half, everywhere —
  /// the canonical split attack.
  kEquivocate,
  /// Follows the protocol in the exchanges (broadcasts a fixed 0) but, when
  /// king, tells half the network 0 and the other half 1.
  kLyingKing,
  /// Sabotages convergence: splits exchange 1, floods exchange 2 with the
  /// sentinel 2, and equivocates when king.
  kAntiKing,
};

const char* toString(ByzantineStrategy strategy) noexcept;

class PhaseKingByzantine final : public Process {
 public:
  /// Which wire format to forge: the consensus-template envelope or the
  /// monolithic baseline's raw format.
  enum class Wire { kTemplate, kClassic };

  PhaseKingByzantine(ByzantineStrategy strategy, Wire wire);

  void onStart() override;
  void onMessage(ProcessId, const Message&) override {}
  void onTick(Tick tick) override;

 private:
  void act(Tick tick);
  void emit(ProcessId dest, Round round, int exchange, Value value);
  Value pick(ProcessId dest, int exchange);

  ByzantineStrategy strategy_;
  Wire wire_;
};

}  // namespace ooc::phaseking

#include "phaseking/monolithic.hpp"

#include <stdexcept>

#include "phaseking/messages.hpp"

namespace ooc::phaseking {
namespace {
Value binarize(Value v) noexcept { return v == 0 ? 0 : 1; }
}  // namespace

MonolithicPhaseKing::MonolithicPhaseKing(Value input,
                                         std::size_t faultTolerance)
    : t_(faultTolerance), value_(input) {}

void MonolithicPhaseKing::onStart() {
  if (3 * t_ >= ctx().processCount())
    throw std::invalid_argument("Phase-King requires 3t < n");
  phase_ = 1;
  beginPhase();
}

void MonolithicPhaseKing::beginPhase() {
  slot_ = 0;
  seenExchange1_.assign(ctx().processCount(), false);
  seenExchange2_.assign(ctx().processCount(), false);
  countC_ = {};
  countD_ = {};
  kingValueSeen_ = false;
  ctx().fanout(makeMessage<ClassicPkMessage>(phase_, 1, value_));
}

void MonolithicPhaseKing::onMessage(ProcessId from, const Message& message) {
  const auto* msg = message.as<ClassicPkMessage>();
  if (msg == nullptr || decided_ || msg->phase != phase_) return;

  switch (msg->exchange) {
    case 1:
      if (seenExchange1_[from]) return;
      seenExchange1_[from] = true;
      if (msg->value == 0 || msg->value == 1)
        ++countC_[static_cast<std::size_t>(msg->value)];
      break;
    case 2:
      if (seenExchange2_[from]) return;
      seenExchange2_[from] = true;
      if (msg->value >= 0 && msg->value <= 2)
        ++countD_[static_cast<std::size_t>(msg->value)];
      break;
    case 3:
      if (from != static_cast<ProcessId>((phase_ - 1) % ctx().processCount()))
        return;  // only the reigning king is believed
      if (!kingValueSeen_) {
        kingValueSeen_ = true;
        kingValue_ = binarize(msg->value);
      }
      break;
    default:
      break;
  }
}

void MonolithicPhaseKing::onTick(Tick) {
  if (decided_ || phase_ == 0) return;
  const std::size_t n = ctx().processCount();

  switch (slot_) {
    case 0: {  // end of exchange 1
      value_ = 2;
      for (Value k = 0; k <= 1; ++k)
        if (countC_[static_cast<std::size_t>(k)] >= n - t_) value_ = k;
      ctx().fanout(makeMessage<ClassicPkMessage>(phase_, 2, value_));
      slot_ = 1;
      return;
    }
    case 1: {  // end of exchange 2
      for (Value k = 2; k >= 0; --k)
        if (countD_[static_cast<std::size_t>(k)] > t_) value_ = k;
      if (ctx().self() == (phase_ - 1) % n)
        ctx().fanout(makeMessage<ClassicPkMessage>(phase_, 3, binarize(value_)));
      slot_ = 2;
      return;
    }
    case 2: {  // end of king broadcast
      const bool strong =
          value_ != 2 && countD_[static_cast<std::size_t>(value_)] >= n - t_;
      if (!strong) value_ = kingValueSeen_ ? kingValue_ : binarize(value_);
      if (phase_ == t_ + 1) {
        decided_ = true;
        ctx().decide(value_);
        return;
      }
      ++phase_;
      beginPhase();
      return;
    }
    default:
      return;
  }
}

}  // namespace ooc::phaseking

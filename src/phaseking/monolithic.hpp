// Classic Phase-King (Berman, Garay, Perry 1989), monolithic baseline.
//
// Runs exactly t+1 phases of (exchange 1, exchange 2, king broadcast) in
// lockstep — 3 ticks per phase — then decides the current value. Shares no
// code with the decomposed PhaseKingAc/KingConciliator; experiment E4
// compares the two.
//
// Unlike the decomposed version (which can detect commit and decide early),
// the classic algorithm always runs its full t+1 phases; both guarantee all
// correct processors hold the same value at the end because some phase has
// a correct king.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "sim/process.hpp"
#include "util/types.hpp"

namespace ooc::phaseking {

class MonolithicPhaseKing final : public Process {
 public:
  MonolithicPhaseKing(Value input, std::size_t faultTolerance);

  void onStart() override;
  void onMessage(ProcessId from, const Message& message) override;
  void onTick(Tick tick) override;

  bool decided() const noexcept { return decided_; }
  Value decisionValue() const noexcept { return value_; }
  Round currentPhase() const noexcept { return phase_; }

 private:
  void beginPhase();

  std::size_t t_;
  Value value_;
  Round phase_ = 0;      // 1-based; 0 before start
  int slot_ = 0;         // 0 after exchange-1 send, 1 after exchange-2, 2 king
  bool decided_ = false;

  std::vector<bool> seenExchange1_;
  std::vector<bool> seenExchange2_;
  std::array<std::size_t, 2> countC_{};
  std::array<std::size_t, 3> countD_{};
  bool kingValueSeen_ = false;
  Value kingValue_ = 1;
};

}  // namespace ooc::phaseking

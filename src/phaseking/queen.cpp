#include "phaseking/queen.hpp"

#include <memory>
#include <stdexcept>

#include "core/tagged_message.hpp"
#include "phaseking/messages.hpp"

namespace ooc::phaseking {
namespace {
Value binarize(Value v) noexcept { return v == 0 ? 0 : 1; }
}  // namespace

PhaseQueenAc::PhaseQueenAc(std::size_t faultTolerance)
    : t_(faultTolerance) {}

void PhaseQueenAc::invoke(ObjectContext& ctx, Value v) {
  if (4 * t_ >= ctx.processCount())
    throw std::invalid_argument("Phase-Queen requires 4t < n");
  seen_.assign(ctx.processCount(), false);
  ctx.fanout(makeMessage<ExchangeMessage>(1, binarize(v)));
}

void PhaseQueenAc::onMessage(ObjectContext&, ProcessId from,
                             const Message& inner) {
  const auto* exchange = inner.as<ExchangeMessage>();
  if (exchange == nullptr || outcome_ || exchange->exchange != 1) return;
  if (from >= seen_.size() || seen_[from]) return;
  seen_[from] = true;
  if (exchange->value == 0 || exchange->value == 1)
    ++tally_[static_cast<std::size_t>(exchange->value)];
}

void PhaseQueenAc::onTick(ObjectContext& ctx, Tick) {
  if (outcome_) return;
  const std::size_t n = ctx.processCount();
  const Value w = tally_[1] > tally_[0] ? 1 : 0;
  const bool strong = tally_[static_cast<std::size_t>(w)] >= n - t_;
  outcome_ =
      Outcome{strong ? Confidence::kCommit : Confidence::kAdopt, w};
}

DetectorFactory PhaseQueenAc::factory(std::size_t faultTolerance) {
  return [faultTolerance](Round) {
    return std::make_unique<PhaseQueenAc>(faultTolerance);
  };
}

QueenConciliator::QueenConciliator(Round round) : round_(round) {}

void QueenConciliator::invoke(ObjectContext& ctx, const Outcome& detected) {
  fallback_ = binarize(detected.value);
  if (ctx.self() == queenOf(round_, ctx.processCount()))
    ctx.fanout(makeMessage<KingMessage>(binarize(detected.value)));
}

void QueenConciliator::onMessage(ObjectContext& ctx, ProcessId from,
                                 const Message& inner) {
  const auto* queen = inner.as<KingMessage>();
  if (queen == nullptr || value_) return;
  if (from != queenOf(round_, ctx.processCount())) return;
  value_ = binarize(queen->value);
}

void QueenConciliator::onTick(ObjectContext&, Tick) {
  if (!value_) value_ = fallback_;
}

DriverFactory QueenConciliator::factory() {
  return [](Round m) { return std::make_unique<QueenConciliator>(m); };
}

PhaseQueenByzantine::PhaseQueenByzantine(ByzantineStrategy strategy)
    : strategy_(strategy) {}

void PhaseQueenByzantine::onStart() { act(0); }
void PhaseQueenByzantine::onTick(Tick tick) { act(tick); }

void PhaseQueenByzantine::act(Tick tick) {
  if (strategy_ == ByzantineStrategy::kSilent) return;
  const auto round = static_cast<Round>(tick / 2 + 1);
  const int slot = static_cast<int>(tick % 2);  // 0: exchange, 1: queen
  const std::size_t n = ctx().processCount();

  for (ProcessId dest = 0; dest < n; ++dest) {
    Value v;
    switch (strategy_) {
      case ByzantineStrategy::kSilent:
        return;
      case ByzantineStrategy::kRandom:
        v = static_cast<Value>(ctx().rng().below(3));
        break;
      case ByzantineStrategy::kLyingKing:
        if (slot == 0) {
          v = 0;  // protocol-abiding in the exchange
        } else {
          if (QueenConciliator::queenOf(round, n) != ctx().self()) return;
          v = dest < n / 2 ? 0 : 1;
        }
        break;
      default:  // equivocate / anti-king: split
        v = dest < n / 2 ? 0 : 1;
        break;
    }
    std::unique_ptr<Message> inner;
    Stage stage = Stage::kDetect;
    if (slot == 0) {
      inner = std::make_unique<ExchangeMessage>(1, v);
    } else {
      inner = std::make_unique<KingMessage>(v);
      stage = Stage::kDrive;
    }
    ctx().send(dest, std::make_unique<TaggedMessage>(round, stage,
                                                     std::move(inner)));
  }
}

}  // namespace ooc::phaseking

// Wire messages of the Phase-King algorithm (paper §4.1).
//
// The decomposed (template) variant sends these inside TaggedMessage
// envelopes; the monolithic baseline sends them raw with the phase included.
// Every field is untrusted: Byzantine senders forge arbitrary contents, and
// receivers only ever count values after validating their domain.
#pragma once

#include <string>

#include "sim/message.hpp"
#include "util/types.hpp"

namespace ooc::phaseking {

/// Value broadcast of AC exchange 1 or 2 (Algorithm 3).
struct ExchangeMessage final : MessageBase<ExchangeMessage> {
  ExchangeMessage(int exchange, Value value)
      : exchange(exchange), value(value) {}

  int exchange;  // 1 or 2
  Value value;   // legal domain: {0,1} in exchange 1, {0,1,2} in exchange 2

  std::string describe() const override {
    return "pk<e" + std::to_string(exchange) + "," + std::to_string(value) +
           ">";
  }
};

/// The king's broadcast (Algorithm 4).
struct KingMessage final : MessageBase<KingMessage> {
  explicit KingMessage(Value value) : value(value) {}
  Value value;

  std::string describe() const override {
    return "pk<king," + std::to_string(value) + ">";
  }
};

/// Monolithic baseline wire format: the same payloads with the phase number
/// attached (the template variant gets this from the envelope instead).
struct ClassicPkMessage final : MessageBase<ClassicPkMessage> {
  ClassicPkMessage(Round phase, int exchange, Value value)
      : phase(phase), exchange(exchange), value(value) {}

  Round phase;
  int exchange;  // 1, 2, or 3 (3 = king broadcast)
  Value value;

  std::string describe() const override {
    return "pkc<p" + std::to_string(phase) + ",e" +
           std::to_string(exchange) + "," + std::to_string(value) + ">";
  }
};

}  // namespace ooc::phaseking

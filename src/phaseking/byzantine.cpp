#include "phaseking/byzantine.hpp"

#include <memory>

#include "core/tagged_message.hpp"
#include "phaseking/conciliator.hpp"
#include "phaseking/messages.hpp"

namespace ooc::phaseking {

const char* toString(ByzantineStrategy strategy) noexcept {
  switch (strategy) {
    case ByzantineStrategy::kSilent: return "silent";
    case ByzantineStrategy::kRandom: return "random";
    case ByzantineStrategy::kEquivocate: return "equivocate";
    case ByzantineStrategy::kLyingKing: return "lying-king";
    case ByzantineStrategy::kAntiKing: return "anti-king";
  }
  return "?";
}

PhaseKingByzantine::PhaseKingByzantine(ByzantineStrategy strategy, Wire wire)
    : strategy_(strategy), wire_(wire) {}

void PhaseKingByzantine::onStart() { act(0); }
void PhaseKingByzantine::onTick(Tick tick) { act(tick); }

void PhaseKingByzantine::act(Tick tick) {
  if (strategy_ == ByzantineStrategy::kSilent) return;
  const auto round = static_cast<Round>(tick / 3 + 1);
  const int slot = static_cast<int>(tick % 3);  // 0: ex1, 1: ex2, 2: king
  const std::size_t n = ctx().processCount();

  if (slot == 2) {
    // King slot. Sending a forged king message is only effective when this
    // processor actually reigns (receivers verify the sender id), but
    // strategies send regardless — hostile traffic must be harmless.
    const bool reigning = KingConciliator::kingOf(round, n) == ctx().self();
    for (ProcessId dest = 0; dest < n; ++dest) {
      Value v;
      switch (strategy_) {
        case ByzantineStrategy::kRandom:
          v = ctx().rng().coin();
          break;
        case ByzantineStrategy::kLyingKing:
          if (!reigning) return;  // behaves honestly unless it reigns
          v = dest < n / 2 ? 0 : 1;
          break;
        default:
          v = dest < n / 2 ? 0 : 1;
          break;
      }
      emit(dest, round, /*exchange=*/3, v);
    }
    return;
  }

  const int exchange = slot + 1;
  for (ProcessId dest = 0; dest < n; ++dest)
    emit(dest, round, exchange, pick(dest, exchange));
}

Value PhaseKingByzantine::pick(ProcessId dest, int exchange) {
  const std::size_t n = ctx().processCount();
  switch (strategy_) {
    case ByzantineStrategy::kSilent:
      return 0;  // unreachable
    case ByzantineStrategy::kRandom:
      return static_cast<Value>(ctx().rng().below(3));
    case ByzantineStrategy::kEquivocate:
      return dest < n / 2 ? 0 : 1;
    case ByzantineStrategy::kLyingKing:
      return 0;  // protocol-abiding in the exchanges
    case ByzantineStrategy::kAntiKing:
      return exchange == 2 ? 2 : (dest < n / 2 ? 0 : 1);
  }
  return 0;
}

void PhaseKingByzantine::emit(ProcessId dest, Round round, int exchange,
                              Value value) {
  if (wire_ == Wire::kClassic) {
    ctx().send(dest,
               std::make_unique<ClassicPkMessage>(round, exchange, value));
    return;
  }
  std::unique_ptr<Message> inner;
  Stage stage = Stage::kDetect;
  if (exchange == 3) {
    inner = std::make_unique<KingMessage>(value);
    stage = Stage::kDrive;
  } else {
    inner = std::make_unique<ExchangeMessage>(exchange, value);
  }
  ctx().send(dest, std::make_unique<TaggedMessage>(round, stage,
                                                   std::move(inner)));
}

}  // namespace ooc::phaseking

// Phase-King's conciliator (paper §4.1, Algorithm 4): the round's king
// broadcasts MIN(1, v); everyone returns the king's value.
//
//   Conciliator(X, sigma, m):
//     if id = king(m): broadcast <MIN(1, v)>
//     sigma_m <- message received from king(m)
//     return (adopt, sigma_m)
//
// Kings rotate: king(m) = (m - 1) mod n, so across any n consecutive rounds
// every processor reigns once and, with at most t < n/3 Byzantine
// processors, a correct king occurs within any t+1 consecutive rounds.
// Deviations a Byzantine king can force are tolerated: if the king's
// message never arrives (silent king) the processor falls back to its own
// MIN(1, sigma) at the end of the conciliator tick, and received king
// values are clamped to the binary domain.
#pragma once

#include <cstddef>
#include <optional>

#include "core/objects.hpp"

namespace ooc::phaseking {

class KingConciliator final : public Driver {
 public:
  /// `round` is the template phase m (1-based); the king is (m-1) mod n.
  explicit KingConciliator(Round round);

  void invoke(ObjectContext& ctx, const Outcome& detected) override;
  void onMessage(ObjectContext& ctx, ProcessId from,
                 const Message& inner) override;
  void onTick(ObjectContext& ctx, Tick tick) override;
  std::optional<Value> result() const override { return value_; }

  static DriverFactory factory();

  static ProcessId kingOf(Round round, std::size_t n) noexcept {
    return static_cast<ProcessId>((round - 1) % n);
  }

 private:
  Round round_;
  Value fallback_ = 1;
  std::optional<Value> value_;
};

}  // namespace ooc::phaseking

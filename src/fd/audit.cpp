#include "fd/audit.hpp"

#include <algorithm>
#include <set>
#include <vector>

namespace ooc::fd {
namespace {

/// The ticks the audit examines: both ends of the window, every schedule
/// transition (±1, where suspicion flips), the advertised bound (±1), and
/// an even grid so long quiet stretches are not skipped entirely.
std::vector<Tick> sampleTicks(const FaultSchedule& schedule, Tick bound,
                              Tick horizon) {
  std::set<Tick> ticks{0, horizon};
  const auto add = [&](Tick at) {
    if (at <= horizon) ticks.insert(at);
  };
  const Tick last = schedule.lastTransition();
  add(last);
  if (last > 0) add(last - 1);
  add(last + 1);
  if (bound <= horizon) {
    add(bound);
    if (bound > 0) add(bound - 1);
    add(bound + 1);
  }
  constexpr Tick kGridPoints = 32;
  for (Tick i = 1; i < kGridPoints; ++i)
    add(horizon / kGridPoints * i);
  return {ticks.begin(), ticks.end()};
}

std::string where(ProcessId viewer, ProcessId target, Tick at) {
  return "viewer " + std::to_string(viewer) + ", target " +
         std::to_string(target) + ", tick " + std::to_string(at);
}

}  // namespace

OracleAudit auditOracle(const Oracle& oracle, const FaultSchedule& schedule,
                        Tick horizon) {
  OracleAudit audit;
  audit.horizon = horizon;
  const std::size_t n = schedule.processCount();
  const Tick bound = oracle.stabilizationBound();
  const std::vector<Tick> ticks = sampleTicks(schedule, bound, horizon);

  // Strong completeness, checked at the horizon (every lag window has
  // elapsed by then — runComposition sizes the horizon accordingly).
  for (ProcessId viewer = 0; viewer < n && audit.completenessOk; ++viewer) {
    if (!schedule.correct(viewer)) continue;
    for (ProcessId target = 0; target < n; ++target) {
      if (schedule.correct(target)) continue;
      if (!oracle.suspects(viewer, target, horizon)) {
        audit.completenessOk = false;
        audit.completenessDetail =
            "crashed process never suspected: " +
            where(viewer, target, horizon);
        break;
      }
    }
  }

  // Accuracy. P promises strong accuracy at every tick against every
  // not-yet-failed target; the eventual classes promise it from the
  // advertised bound on, against correct (finally-up) targets.
  const bool perfect = oracle.oracleClass() == OracleClass::kPerfect;
  for (const Tick at : ticks) {
    if (!audit.accuracyOk) break;
    if (!perfect && at < bound) continue;
    for (ProcessId viewer = 0; viewer < n && audit.accuracyOk; ++viewer) {
      if (!schedule.correct(viewer)) continue;
      for (ProcessId target = 0; target < n; ++target) {
        const bool protectedTarget =
            perfect ? schedule.firstDownAt(target).value_or(~Tick{0}) > at
                    : (schedule.correct(target) && at >= bound);
        if (!protectedTarget) continue;
        if (oracle.suspects(viewer, target, at)) {
          audit.accuracyOk = false;
          audit.accuracyDetail =
              std::string(perfect ? "live" : "correct") +
              " process falsely suspected" +
              (perfect ? "" : " after the advertised stabilization bound " +
                                  std::to_string(bound)) +
              ": " + where(viewer, target, at);
          break;
        }
      }
    }
  }

  // Leader convergence. "Eventually" has to land inside the horizon: an
  // oracle that stabilizes past the tick budget cannot carry a
  // rotating-coordinator round to termination, which is the liveness
  // counterexample the checker reports for deliberately-weakened knobs.
  if (bound > horizon) {
    audit.convergenceOk = false;
    audit.convergenceDetail =
        "oracle does not stabilize within the tick budget (advertised "
        "bound " +
        std::to_string(bound) + " > horizon " + std::to_string(horizon) + ")";
    return audit;
  }
  for (const Tick at : ticks) {
    if (!audit.convergenceOk || at < bound) continue;
    ProcessId agreed = 0;
    bool first = true;
    for (ProcessId viewer = 0; viewer < n; ++viewer) {
      if (!schedule.correct(viewer)) continue;
      const ProcessId led = oracle.leader(viewer, at);
      if (!schedule.correct(led)) {
        audit.convergenceOk = false;
        audit.convergenceDetail = "viewer " + std::to_string(viewer) +
                                  " trusts crashed leader " +
                                  std::to_string(led) + " at tick " +
                                  std::to_string(at);
        break;
      }
      if (first) {
        agreed = led;
        first = false;
      } else if (led != agreed) {
        audit.convergenceOk = false;
        audit.convergenceDetail =
            "correct viewers split between leaders " + std::to_string(agreed) +
            " and " + std::to_string(led) + " at tick " + std::to_string(at);
        break;
      }
    }
  }
  return audit;
}

}  // namespace ooc::fd

// Failure-detector oracles (Chandra–Toueg 1996), the third object family
// of the composition engine.
//
// The paper decomposes consensus into detector × driver; the
// failure-detector tradition supplies a third role orthogonal to both: an
// *oracle* each process can query about which peers it currently
// suspects of having crashed. Lynch–Sastry give the object contract
// (asynchronous failure detectors as I/O automata), Kuznetsov's "Simple
// CHT" the extraction of Ω (eventual leader) as the weakest oracle for
// consensus. Three classes are modeled here, ordered by strength:
//
//   P  (perfect)            strong accuracy  — no process is suspected
//                           before it crashes — plus strong completeness.
//   ◇S (eventually strong)  eventual accuracy — after some unknown
//                           stabilization time, no correct process is
//                           suspected — plus strong completeness.
//   Ω  (eventual leader)    eventually every correct process trusts the
//                           same correct leader (CHT extraction: the
//                           leader is the lowest unsuspected id).
//
// The oracles are *models*, not protocols: a ScheduleOracle is a pure
// function of the run's fault/restart schedule, the quality knobs, and
// the run seed. That keeps every query deterministic and replayable —
// the checker can re-ask the same question at the same tick and get the
// same answer, and golden traces stay byte-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace ooc::fd {

enum class OracleClass {
  kPerfect,           // P: strong accuracy + strong completeness
  kEventuallyStrong,  // ◇S: eventual accuracy + strong completeness
  kOmega,             // Ω: eventual agreement on one correct leader
};

const char* toString(OracleClass oracleClass) noexcept;

/// Quality knobs: how far the modeled oracle sits from the ideal one.
/// The defaults are a modest-but-honest detector; the checker's
/// oracle-quality strategy sweeps these against crash schedules.
struct OracleKnobs {
  /// Ticks between a crash (or a recovery) and the oracle reflecting it:
  /// a crashed process is suspected only completenessLag ticks after the
  /// crash, and a restarted one stays suspected for completenessLag
  /// ticks after coming back up.
  Tick completenessLag = 8;
  /// Accuracy stabilization time: before this tick the oracle may
  /// falsely suspect live processes (never after). 0 = accurate from the
  /// start. Ignored by P, whose strong accuracy forbids false suspicion.
  Tick stabilizeAt = 0;
  /// Probability of a false suspicion per (viewer, target, noise epoch)
  /// before stabilizeAt. Derived by pure hashing from the run seed, so
  /// the noise is deterministic and replayable.
  double noise = 0.0;
  /// Width of one noise epoch in ticks (a false suspicion persists for
  /// the whole epoch — real detectors flap slowly, not per-tick).
  Tick noiseEpoch = 16;
  /// Test-only planted bug: advertise stabilizationBound() = 0 while
  /// still noising until stabilizeAt. The fd-accuracy invariant must
  /// catch the lie (negative tests).
  bool lieAboutBound = false;
};

/// Per-process down intervals derived from the simulator's fault and
/// restart schedule. `crash` is terminal; `restart` models the PR-3
/// restart faults (down for a bounded window, then back up).
class FaultSchedule {
 public:
  explicit FaultSchedule(std::size_t n = 0) : downs_(n) {}

  /// Terminal crash at `at`.
  void crash(ProcessId id, Tick at);
  /// Down for [at, at + downFor), then recovered.
  void restart(ProcessId id, Tick at, Tick downFor);

  static FaultSchedule fromCrashList(
      std::size_t n, const std::vector<std::pair<ProcessId, Tick>>& crashes);

  std::size_t processCount() const noexcept { return downs_.size(); }
  bool upAt(ProcessId id, Tick at) const noexcept;
  /// Correct in the failure-detector sense: up from some point onward
  /// (never terminally crashed).
  bool correct(ProcessId id) const noexcept;
  /// First tick at which `id` is down, or nullopt if it never fails.
  std::optional<Tick> firstDownAt(ProcessId id) const noexcept;
  /// Latest schedule transition (crash, down, or recovery tick); 0 for a
  /// fault-free schedule.
  Tick lastTransition() const noexcept;

 private:
  struct DownInterval {
    Tick from = 0;
    Tick to = 0;  // exclusive; kForever for a terminal crash
  };
  static constexpr Tick kForever = ~Tick{0};
  std::vector<std::vector<DownInterval>> downs_;
};

/// The oracle role: a queryable suspicion module per process. Queries are
/// pure (const, deterministic in the arguments), so one shared instance
/// serves every process of a run.
class Oracle {
 public:
  virtual ~Oracle() = default;

  virtual OracleClass oracleClass() const noexcept = 0;

  /// Whether `viewer`'s detector module suspects `target` at tick `at`.
  /// A process never suspects itself.
  virtual bool suspects(ProcessId viewer, ProcessId target,
                        Tick at) const = 0;

  /// `viewer`'s trusted leader at `at`: the lowest unsuspected id (CHT
  /// extraction of Ω from the suspicion lists); falls back to `viewer`
  /// itself, which is never self-suspected.
  virtual ProcessId leader(ProcessId viewer, Tick at) const = 0;

  /// Advertised tick after which the eventual axioms hold (accuracy,
  /// leader agreement). The fd invariants audit the advertisement — a
  /// lying oracle (lieAboutBound) is caught, not trusted.
  virtual Tick stabilizationBound() const noexcept = 0;
};

/// Builds the schedule-backed model oracle for one run. `seed` feeds the
/// false-suspicion hash so different runs see different noise.
std::shared_ptr<const Oracle> makeScheduleOracle(OracleClass oracleClass,
                                                 const OracleKnobs& knobs,
                                                 FaultSchedule schedule,
                                                 std::uint64_t seed);

}  // namespace ooc::fd

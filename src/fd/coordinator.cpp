#include "fd/coordinator.hpp"

#include <string>

namespace ooc::fd {
namespace {

/// The acting coordinator's claim, trusted verbatim by every invoker.
struct CoordClaim final : MessageBase<CoordClaim> {
  explicit CoordClaim(Value value = kNoValue) : value(value) {}
  Value value;
  std::string describe() const override {
    return "coord-claim(" + std::to_string(value) + ")";
  }
};

}  // namespace

CoordinatorReconciliator::CoordinatorReconciliator(
    std::shared_ptr<const Oracle> oracle, Round round, Trust trust,
    Tick probePeriod)
    : oracle_(std::move(oracle)),
      round_(round),
      trust_(trust),
      probePeriod_(probePeriod == 0 ? 1 : probePeriod) {}

ProcessId CoordinatorReconciliator::candidate(ObjectContext& ctx) const {
  const std::size_t n = ctx.processCount();
  const ProcessId base = static_cast<ProcessId>((round_ - 1) % n);
  if (trust_ == Trust::kEventualLeader) return base;
  // kPerfect: rotate past suspected candidates. Strong accuracy makes the
  // skip sound — only genuinely-failed coordinators are passed over, so
  // every process that probes after the lag window lands on the same
  // first-unsuspected id.
  for (std::size_t step = 0; step < n; ++step) {
    const ProcessId id = static_cast<ProcessId>((base + step) % n);
    if (!oracle_->suspects(ctx.self(), id, ctx.now())) return id;
  }
  return base;  // unreachable: self is never suspected
}

void CoordinatorReconciliator::invoke(ObjectContext& ctx,
                                      const Outcome& detected) {
  invoked_ = true;
  own_ = detected.value;
  if (claimed_) {  // a claim raced ahead of our invocation
    value_ = *claimed_;
    return;
  }
  claimOrProbe(ctx);
}

void CoordinatorReconciliator::claimOrProbe(ObjectContext& ctx) {
  if (candidate(ctx) == ctx.self()) {
    ctx.fanout(makeMessage<CoordClaim>(own_));
    value_ = own_;
    return;
  }
  timer_ = ctx.setTimer(probePeriod_);
}

void CoordinatorReconciliator::onMessage(ObjectContext& ctx,
                                         ProcessId /*from*/,
                                         const Message& inner) {
  const auto* claim = inner.as<CoordClaim>();
  if (claim == nullptr || claimed_) return;
  claimed_ = claim->value;
  if (invoked_ && !value_) {
    if (timer_) ctx.cancelTimer(*timer_);
    timer_.reset();
    value_ = *claimed_;
  }
}

void CoordinatorReconciliator::onTimer(ObjectContext& ctx, TimerId id) {
  if (!timer_ || *timer_ != id || value_) return;
  timer_.reset();
  if (trust_ == Trust::kEventualLeader) {
    const std::size_t n = ctx.processCount();
    const ProcessId base = static_cast<ProcessId>((round_ - 1) % n);
    if (oracle_->suspects(ctx.self(), base, ctx.now())) {
      // CT fallback: give up on this round's coordinator and move on with
      // our own estimate. No fanout — agreement is owed only eventually,
      // by the round whose coordinator everyone trusts.
      value_ = own_;
      return;
    }
    timer_ = ctx.setTimer(probePeriod_);  // trusted: keep waiting
    return;
  }
  // kPerfect: the suspicion list may have shifted the rotation onto us.
  claimOrProbe(ctx);
}

DriverFactory CoordinatorReconciliator::factory(
    std::shared_ptr<const Oracle> oracle, Trust trust, Tick probePeriod) {
  return [oracle = std::move(oracle), trust, probePeriod](Round m) {
    return std::make_unique<CoordinatorReconciliator>(oracle, m, trust,
                                                      probePeriod);
  };
}

}  // namespace ooc::fd

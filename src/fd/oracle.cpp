#include "fd/oracle.hpp"

#include <algorithm>

namespace ooc::fd {

const char* toString(OracleClass oracleClass) noexcept {
  switch (oracleClass) {
    case OracleClass::kPerfect: return "perfect";
    case OracleClass::kEventuallyStrong: return "eventually-strong";
    case OracleClass::kOmega: return "omega";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// FaultSchedule

void FaultSchedule::crash(ProcessId id, Tick at) {
  downs_.at(id).push_back({at, kForever});
}

void FaultSchedule::restart(ProcessId id, Tick at, Tick downFor) {
  downs_.at(id).push_back({at, at + downFor});
}

FaultSchedule FaultSchedule::fromCrashList(
    std::size_t n, const std::vector<std::pair<ProcessId, Tick>>& crashes) {
  FaultSchedule schedule(n);
  for (const auto& [id, at] : crashes) schedule.crash(id, at);
  return schedule;
}

bool FaultSchedule::upAt(ProcessId id, Tick at) const noexcept {
  if (id >= downs_.size()) return false;
  for (const DownInterval& down : downs_[id])
    if (at >= down.from && at < down.to) return false;
  return true;
}

bool FaultSchedule::correct(ProcessId id) const noexcept {
  if (id >= downs_.size()) return false;
  for (const DownInterval& down : downs_[id])
    if (down.to == kForever) return false;
  return true;
}

std::optional<Tick> FaultSchedule::firstDownAt(ProcessId id) const noexcept {
  if (id >= downs_.size() || downs_[id].empty()) return std::nullopt;
  Tick first = kForever;
  for (const DownInterval& down : downs_[id])
    first = std::min(first, down.from);
  return first;
}

Tick FaultSchedule::lastTransition() const noexcept {
  Tick last = 0;
  for (const auto& intervals : downs_) {
    for (const DownInterval& down : intervals) {
      last = std::max(last, down.from);
      if (down.to != kForever) last = std::max(last, down.to);
    }
  }
  return last;
}

// ---------------------------------------------------------------------------
// ScheduleOracle

namespace {

/// SplitMix64 finalizer: the pure hash behind the false-suspicion noise.
/// Never a stateful Rng — a query must return the same answer no matter
/// how many times (or in what order) the run asks it.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double hash01(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
              std::uint64_t c) noexcept {
  const std::uint64_t h = mix64(mix64(mix64(seed ^ a) + b) + c);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

class ScheduleOracle final : public Oracle {
 public:
  ScheduleOracle(OracleClass oracleClass, const OracleKnobs& knobs,
                 FaultSchedule schedule, std::uint64_t seed)
      : class_(oracleClass),
        knobs_(knobs),
        schedule_(std::move(schedule)),
        seed_(seed ^ 0xFDFDFDFDull) {}

  OracleClass oracleClass() const noexcept override { return class_; }

  bool suspects(ProcessId viewer, ProcessId target, Tick at) const override {
    if (viewer == target) return false;
    // Completeness with lag: the viewer's module sees the schedule as it
    // was completenessLag ticks ago, so crashes are detected late and a
    // restarted process keeps being suspected for one lag window.
    const Tick viewAt =
        at > knobs_.completenessLag ? at - knobs_.completenessLag : 0;
    if (!schedule_.upAt(target, viewAt)) return true;
    // Pre-stabilization false suspicion (never for P: strong accuracy).
    if (class_ != OracleClass::kPerfect && at < knobs_.stabilizeAt &&
        knobs_.noise > 0) {
      const Tick epoch = knobs_.noiseEpoch == 0 ? 1 : knobs_.noiseEpoch;
      if (hash01(seed_, viewer, target, at / epoch) < knobs_.noise)
        return true;
    }
    return false;
  }

  ProcessId leader(ProcessId viewer, Tick at) const override {
    const std::size_t n = schedule_.processCount();
    for (ProcessId id = 0; id < n; ++id)
      if (!suspects(viewer, id, at)) return id;
    return viewer;  // unreachable: a viewer never suspects itself
  }

  Tick stabilizationBound() const noexcept override {
    if (knobs_.lieAboutBound) return 0;  // the planted bug: advertise early
    // Honest bound: past the noise window, and past the last schedule
    // transition plus one completeness-lag (a freshly restarted correct
    // process is legitimately suspected until its recovery propagates).
    const Tick lagged = schedule_.lastTransition() + knobs_.completenessLag;
    return std::max(knobs_.stabilizeAt, lagged);
  }

 private:
  OracleClass class_;
  OracleKnobs knobs_;
  FaultSchedule schedule_;
  std::uint64_t seed_;
};

}  // namespace

std::shared_ptr<const Oracle> makeScheduleOracle(OracleClass oracleClass,
                                                 const OracleKnobs& knobs,
                                                 FaultSchedule schedule,
                                                 std::uint64_t seed) {
  return std::make_shared<ScheduleOracle>(oracleClass, knobs,
                                          std::move(schedule), seed);
}

}  // namespace ooc::fd

// FD-axiom audit: checks an oracle instance against the Chandra–Toueg
// axioms over its own fault schedule, the way core/properties.hpp audits
// detector/driver contracts. The audit is a *model* check — it queries
// the oracle directly at a deterministic sample of ticks rather than
// replaying the run — so a lying oracle (one whose behaviour contradicts
// its advertised stabilization bound) is caught even if the consensus run
// happened to decide.
//
//   completeness — at the audit horizon, every correct viewer suspects
//                  every terminally-crashed target (strong completeness,
//                  checked after every lag window has elapsed).
//   accuracy     — P: no viewer ever suspects a target before the
//                  target's first failure (strong accuracy, all sampled
//                  ticks). ◇S/Ω: from the advertised stabilization bound
//                  on, no correct viewer suspects a correct target.
//   convergence  — from the bound on, all correct viewers trust the same
//                  correct leader (Ω's axiom; derived for ◇S/P via the
//                  CHT lowest-unsuspected extraction). An oracle whose
//                  bound exceeds the horizon fails this check outright:
//                  "eventually" must land inside the run's tick budget,
//                  which is exactly the liveness counterexample a
//                  too-slow oracle produces.
#pragma once

#include <string>

#include "fd/oracle.hpp"

namespace ooc::fd {

struct OracleAudit {
  bool completenessOk = true;
  std::string completenessDetail;
  bool accuracyOk = true;
  std::string accuracyDetail;
  bool convergenceOk = true;
  std::string convergenceDetail;
  /// Last tick the audit examined.
  Tick horizon = 0;

  bool ok() const noexcept {
    return completenessOk && accuracyOk && convergenceOk;
  }
};

/// Audits `oracle` against `schedule` up to `horizon` ticks. Deterministic
/// in the arguments: the sampled tick set is derived from the schedule's
/// transitions, the oracle's advertised bound, and an even grid — no
/// randomness.
OracleAudit auditOracle(const Oracle& oracle, const FaultSchedule& schedule,
                        Tick horizon);

}  // namespace ooc::fd

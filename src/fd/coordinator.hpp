// Rotating-coordinator reconciliator (Chandra–Toueg, consumed through the
// compose registry's oracle role). Slot-compatible with the coin and timer
// reconciliators: one instance per process per round, fed its round's
// messages by the hosting ConsensusProcess.
//
// Round m's coordinator is (m - 1) mod n. The coordinator fanouts a claim
// carrying its own detected value; every other invoker waits for the
// claim, periodically probing the oracle:
//
//   kEventualLeader (Ω / ◇S) — if the probe finds the coordinator
//     suspected, the invoker gives up on this round's coordinator and
//     returns its own value (the CT "move to the next round with your
//     current estimate" arm). Once the oracle stabilizes, the first round
//     whose coordinator is the commonly-trusted correct leader goes
//     unanimous, and the VAC detector commits in the next round — weak
//     agreement with probability 1, exactly the reconciliator contract.
//
//   kPerfect (P) — instead of falling back, the invoker *rotates past*
//     suspected candidates: the acting coordinator is the first
//     unsuspected id from (m-1) mod n onward, and whoever finds itself
//     acting claims. Sound only under strong accuracy (a live coordinator
//     is never skipped, so two claimants can never race); the registry
//     rejects this trust mode under ◇S/Ω with a §5-style diagnostic.
//
// Claims are trusted verbatim (crash model only) and fanned out through
// the shared-payload path — zero per-recipient clones, asserted by
// tests/simcore_perf_test.cpp.
#pragma once

#include <memory>
#include <optional>

#include "core/objects.hpp"
#include "fd/oracle.hpp"

namespace ooc::fd {

class CoordinatorReconciliator final : public Driver {
 public:
  enum class Trust {
    kEventualLeader,  // suspect => fall back to own value (CT)
    kPerfect,         // suspect => rotate to the next candidate
  };

  CoordinatorReconciliator(std::shared_ptr<const Oracle> oracle, Round round,
                           Trust trust, Tick probePeriod);

  void invoke(ObjectContext& ctx, const Outcome& detected) override;
  void onMessage(ObjectContext& ctx, ProcessId from,
                 const Message& inner) override;
  void onTimer(ObjectContext& ctx, TimerId id) override;
  std::optional<Value> result() const override { return value_; }

  static DriverFactory factory(std::shared_ptr<const Oracle> oracle,
                               Trust trust, Tick probePeriod = 8);

 private:
  /// The acting coordinator as this process sees it now: round-robin base
  /// for kEventualLeader; first unsuspected candidate for kPerfect.
  ProcessId candidate(ObjectContext& ctx) const;
  void claimOrProbe(ObjectContext& ctx);

  std::shared_ptr<const Oracle> oracle_;
  Round round_;
  Trust trust_;
  Tick probePeriod_;
  Value own_ = kNoValue;
  bool invoked_ = false;
  std::optional<TimerId> timer_;
  std::optional<Value> claimed_;  // first claim heard (possibly pre-invoke)
  std::optional<Value> value_;
};

}  // namespace ooc::fd

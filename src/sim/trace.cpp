#include "sim/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ooc {
namespace {

char kindCode(TraceEvent::Kind kind) noexcept {
  switch (kind) {
    case TraceEvent::Kind::kStart: return 'S';
    case TraceEvent::Kind::kDeliver: return 'D';
    case TraceEvent::Kind::kTimer: return 'T';
    case TraceEvent::Kind::kControl: return 'C';
    case TraceEvent::Kind::kBarrier: return 'B';
    case TraceEvent::Kind::kDecision: return 'V';
    case TraceEvent::Kind::kCrash: return 'X';
    case TraceEvent::Kind::kRestart: return 'R';
  }
  return '?';
}

TraceEvent::Kind parseKind(char code) {
  switch (code) {
    case 'S': return TraceEvent::Kind::kStart;
    case 'D': return TraceEvent::Kind::kDeliver;
    case 'T': return TraceEvent::Kind::kTimer;
    case 'C': return TraceEvent::Kind::kControl;
    case 'B': return TraceEvent::Kind::kBarrier;
    case 'V': return TraceEvent::Kind::kDecision;
    case 'X': return TraceEvent::Kind::kCrash;
    case 'R': return TraceEvent::Kind::kRestart;
  }
  throw std::runtime_error(std::string("trace: unknown event kind '") + code +
                           "'");
}

}  // namespace

void TraceVerifier::onEvent(const TraceEvent& event) {
  if (divergence_) return;
  if (position_ >= expected_.events.size()) {
    divergence_ = "replay produced extra event #" +
                  std::to_string(position_) + ": " + toString(event);
    ++position_;
    return;
  }
  const TraceEvent& want = expected_.events[position_];
  if (!(event == want)) {
    divergence_ = "divergence at event #" + std::to_string(position_) +
                  ": expected " + toString(want) + ", got " + toString(event);
  }
  ++position_;
}

std::string toString(const TraceEvent& event) {
  std::ostringstream os;
  os << kindCode(event.kind) << " @" << event.at << " a=" << event.a
     << " b=" << event.b << " aux=" << event.aux;
  return os.str();
}

void serializeTrace(const Trace& trace, std::ostream& out) {
  out << "events " << trace.events.size() << "\n";
  for (const TraceEvent& event : trace.events) {
    out << "e " << event.at << ' ' << kindCode(event.kind) << ' ' << event.a
        << ' ' << event.b << ' ' << event.aux << "\n";
  }
  out << "stats sent=" << trace.messagesSent
      << " delivered=" << trace.messagesDelivered
      << " executed=" << trace.eventsProcessed << " end=" << trace.endTick
      << "\n";
}

Trace parseTrace(std::istream& in) {
  Trace trace;
  std::string word;
  if (!(in >> word) || word != "events")
    throw std::runtime_error("trace: expected 'events' header");
  std::size_t count = 0;
  if (!(in >> count)) throw std::runtime_error("trace: bad event count");
  trace.events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    char code = 0;
    TraceEvent event;
    if (!(in >> word) || word != "e" || !(in >> event.at >> code >> event.a >>
                                          event.b >> event.aux)) {
      throw std::runtime_error("trace: bad event line #" + std::to_string(i));
    }
    event.kind = parseKind(code);
    trace.events.push_back(event);
  }
  if (!(in >> word) || word != "stats")
    throw std::runtime_error("trace: expected 'stats' line");
  auto field = [&](const char* name) {
    std::string token;
    if (!(in >> token))
      throw std::runtime_error("trace: truncated stats line");
    const auto eq = token.find('=');
    if (eq == std::string::npos || token.substr(0, eq) != name)
      throw std::runtime_error("trace: expected stats field " +
                               std::string(name));
    return std::stoull(token.substr(eq + 1));
  };
  trace.messagesSent = field("sent");
  trace.messagesDelivered = field("delivered");
  trace.eventsProcessed = field("executed");
  trace.endTick = field("end");
  return trace;
}

}  // namespace ooc

// The simulator's event queue: a tick-bucketed calendar queue replacing the
// former global binary heap.
//
// Events execute in (tick, phase, seq) order — phase 1 holds the lockstep
// barrier, which sorts after every normal event of its tick; seq is the
// push order. The queue exploits that almost every push targets a tick
// within a small horizon of the cursor (network delays are short and
// timers modest): a ring of kWindow buckets covers ticks
// [cursor, cursor + kWindow), each bucket holding its events as two
// append-only lanes (normal, barrier) drained in order. Same-tick pushes
// made *while* the tick drains land behind the drain index and are
// consumed in seq order, exactly like the heap. Events beyond the window
// go to a min-heap overflow that refills the ring as the cursor advances;
// when the ring is empty the cursor jumps straight to the overflow's
// minimum tick, so sparse schedules never scan empty buckets for long.
//
// Total order is identical to the heap's, so recorded traces are
// byte-identical across the swap (asserted by tests/golden/).
//
// Per-event allocation is avoided twice over: events live by value in the
// bucket lanes (which retain capacity across ticks), and the bucket
// storage itself is checked out of a thread-local arena on construction
// and returned cleared on destruction — a model-checker worker thread
// reuses one warm arena across every configuration it sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/message.hpp"
#include "sim/trace.hpp"
#include "util/types.hpp"

namespace ooc {

/// One scheduled simulator event. Plain value type; `message` is a shared
/// immutable payload (broadcast fan-out and duplication faults alias it).
struct SimEvent {
  enum class Kind : std::uint8_t {
    kStart,
    kDeliver,
    kTimer,
    kControl,
    kBarrier,
    kCrash,
    kRestart,
  };

  Tick at = 0;
  /// Push order; assigned by EventQueue::push.
  std::uint64_t seq = 0;
  /// Observed-stream index of the event whose handler scheduled this one
  /// (kNoCausalParent for roots: initial starts, pre-run injections). Pure
  /// bookkeeping — never consulted by the scheduler, only surfaced through
  /// ScheduleObserver::onCausal, so it cannot perturb the schedule.
  std::uint64_t cause = kNoCausalParent;
  MessagePtr message;
  /// kTimer: the timer id. kControl: index into the simulator's action
  /// table (keeping std::function out of the hot event layout).
  TimerId timer = 0;
  ProcessId target = 0;
  ProcessId from = 0;
  /// For kDeliver: the target's incarnation at send time. A mismatch at
  /// delivery means the target restarted in between — the message belongs
  /// to its previous life and is discarded as stale.
  std::uint32_t targetIncarnation = 0;
  /// 0 = normal; 1 = barrier (sorts after all normal events of the tick).
  std::uint8_t phase = 0;
  Kind kind = Kind::kControl;
};

class EventQueue {
 public:
  /// Ring window: events within kWindow ticks of the cursor are bucketed.
  static constexpr std::size_t kWindowBits = 10;
  static constexpr std::size_t kWindow = std::size_t{1} << kWindowBits;

  EventQueue();   // checks bucket storage out of the thread-local arena
  ~EventQueue();  // returns it, cleared but with capacity retained
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues `event`, assigning its seq. Ticks earlier than the cursor
  /// (never produced by the simulator: every delay is >= 1) are clamped to
  /// the cursor, i.e. executed as soon as possible.
  void push(SimEvent event);

  /// Moves the earliest event (by tick, then phase, then seq) into `out`.
  /// Returns false when the queue is empty.
  bool pop(SimEvent& out);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Drops every queued arena so the next EventQueue on this thread starts
  /// cold (test hook for memory accounting; never needed in normal use).
  static void drainThreadArena() noexcept;

  /// Bucket rings currently pooled in this thread's arena (test hook: the
  /// arena-reuse stress asserts the pool stays bounded by its cap).
  static std::size_t threadArenaSize() noexcept;

  /// Internal bucket layout; public only so the thread-local arena can
  /// store rings of them.
  struct Bucket {
    std::vector<SimEvent> lanes[2];  // [0] normal, [1] barrier
    std::size_t next[2] = {0, 0};    // drain positions

    bool drained() const noexcept {
      return next[0] >= lanes[0].size() && next[1] >= lanes[1].size();
    }
    void reset() noexcept {
      lanes[0].clear();
      lanes[1].clear();
      next[0] = next[1] = 0;
    }
  };

 private:
  static constexpr std::size_t kMask = kWindow - 1;

  /// Pulls every overflow event that now falls inside the window into its
  /// bucket. Overflow pops come out in (at, phase, seq) order and the
  /// window slides monotonically, so lane append order stays seq order.
  void refill();

  std::vector<Bucket> ring_;       // kWindow buckets, index = tick & kMask
  std::vector<SimEvent> overflow_;  // min-heap on (at, phase, seq)
  Tick cursor_ = 0;                // lowest possibly-populated tick
  std::size_t ringCount_ = 0;      // undrained events in the ring
  std::size_t size_ = 0;
  std::uint64_t nextSeq_ = 0;
};

}  // namespace ooc

// Network models: they decide, per message, when (and whether, and how many
// times) it is delivered. Synchrony is a network model here, not a separate
// engine — the synchronous protocols additionally use the simulator's
// lockstep tick barriers.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace ooc {

/// Strategy deciding message fate. plan() appends one delay per delivery of
/// the message (zero entries = dropped, two or more = duplicated). Delays
/// must be >= 1 tick so causality within a tick is never violated.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;
  virtual void plan(ProcessId from, ProcessId to, Tick now, Rng& rng,
                    std::vector<Tick>& delaysOut) = 0;
};

/// Reliable unit-delay network: the synchronous model of the Phase-King
/// sections of the paper. Every message sent at tick T arrives at T+1.
class SynchronousNetwork final : public NetworkModel {
 public:
  void plan(ProcessId, ProcessId, Tick, Rng&,
            std::vector<Tick>& delaysOut) override {
    delaysOut.push_back(1);
  }
};

/// Asynchronous network with uniformly random per-message delays and
/// optional loss and duplication. With dropProbability = 0 it models the
/// reliable asynchronous network assumed by Ben-Or.
class UniformDelayNetwork final : public NetworkModel {
 public:
  struct Options {
    Tick minDelay = 1;
    Tick maxDelay = 10;
    double dropProbability = 0.0;
    double duplicateProbability = 0.0;
  };

  explicit UniformDelayNetwork(Options options);

  void plan(ProcessId from, ProcessId to, Tick now, Rng& rng,
            std::vector<Tick>& delaysOut) override;

 private:
  Options options_;
};

/// Delay-bounded adversarial scheduler: wraps a base model and stretches
/// each planned delivery by an extra delay in [0, extraDelayMax], drawn from
/// a dedicated stream seeded independently of the run seed. This is the
/// model checker's message-reordering adversary: its power is bounded by the
/// delay budget, and sweeping (seed, budget) pairs explores bounded
/// reorderings of the same underlying run (delay-bounded exploration).
/// Dropped messages stay dropped; duplicates are perturbed independently.
class DelayAdversaryNetwork final : public NetworkModel {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// Upper bound on the extra delay added per delivery, in ticks.
    Tick extraDelayMax = 0;
    /// Probability that a given delivery is perturbed at all.
    double perturbProbability = 1.0;
  };

  DelayAdversaryNetwork(std::unique_ptr<NetworkModel> base, Options options);

  void plan(ProcessId from, ProcessId to, Tick now, Rng& rng,
            std::vector<Tick>& delaysOut) override;

 private:
  std::unique_ptr<NetworkModel> base_;
  Options options_;
  Rng adversaryRng_;
};

/// Wraps a base model with a mutable process partition: messages crossing
/// group boundaries are dropped. Groups are changed at runtime through
/// setPartition/clearPartition (typically from Simulator::schedule hooks),
/// which is how the Raft experiments create and heal network splits.
class PartitionedNetwork final : public NetworkModel {
 public:
  explicit PartitionedNetwork(std::unique_ptr<NetworkModel> base);

  /// groupOf[p] = partition id of process p. Sizes the network to
  /// groupOf.size() processes.
  void setPartition(std::vector<int> groupOf);
  void clearPartition() noexcept;
  bool partitioned() const noexcept { return !groupOf_.empty(); }

  void plan(ProcessId from, ProcessId to, Tick now, Rng& rng,
            std::vector<Tick>& delaysOut) override;

 private:
  std::unique_ptr<NetworkModel> base_;
  std::vector<int> groupOf_;  // empty = fully connected
};

}  // namespace ooc

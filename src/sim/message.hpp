// Message abstraction for the simulated message-passing network.
//
// Protocol messages are ordinary structs deriving from Message via the CRTP
// helper MessageBase, which supplies cloning and a static type tag.
// Receivers downcast with Message::as<T>() — an exact-type tag compare, not
// a dynamic_cast — and must treat every field as untrusted, since a
// Byzantine sender can put anything in them.
//
// Payload ownership: in-flight messages are refcounted and immutable
// (MessagePtr = shared_ptr<const Message>), so a broadcast or a network
// duplication fault shares one payload across every delivery instead of
// deep-copying per recipient. clone() remains the copy-on-write escape
// hatch for anything that needs to derive a mutated payload (e.g. a
// corruption fault): copy, mutate the copy, share the copy.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace ooc {

class Message;

/// Refcounted immutable payload: how messages travel through the
/// simulator. A std::unique_ptr<Derived> converts implicitly, so
/// `post(to, std::make_unique<T>(...))` works unchanged.
using MessagePtr = std::shared_ptr<const Message>;

/// A message type's identity, assigned on first use (see tagOf).
using MessageTag = std::uint32_t;

namespace detail {
/// Hands out process-unique tags; thread-safe (the checker's sweep workers
/// run simulations concurrently). Assignment order depends on which type is
/// seen first and is never serialized or compared across runs, so it cannot
/// affect determinism.
MessageTag nextMessageTag() noexcept;
}  // namespace detail

/// The tag of concrete message type T (stable for the process lifetime).
template <typename T>
MessageTag tagOf() noexcept {
  static const MessageTag tag = detail::nextMessageTag();
  return tag;
}

class Message {
 public:
  Message(const Message&) = default;
  Message& operator=(const Message&) = default;
  virtual ~Message() = default;

  /// Deep copy — the copy-on-write escape hatch; the delivery fan-out no
  /// longer calls this (payloads are shared).
  virtual std::unique_ptr<Message> clone() const = 0;

  /// Human-readable rendering for traces and logs. Built lazily: the
  /// simulator only calls this when a log sink or an observer opted in
  /// (ScheduleObserver::wantsMessageText).
  virtual std::string describe() const = 0;

  MessageTag tag() const noexcept { return tag_; }

  /// Checked downcast; returns nullptr when the payload is another type.
  /// Matches the exact concrete type only (every protocol message is a
  /// final class), via a tag compare instead of a dynamic_cast.
  template <typename T>
  const T* as() const noexcept {
    return tag_ == tagOf<T>() ? static_cast<const T*>(this) : nullptr;
  }

 protected:
  /// Concrete types get their tag through MessageBase.
  explicit Message(MessageTag tag) noexcept : tag_(tag) {}

 private:
  MessageTag tag_;
};

/// CRTP base implementing clone() and the type tag for a concrete message
/// type. Every concrete message must derive from this (directly or via
/// `class M final : public MessageBase<M>`), so that as<M>() can resolve by
/// tag.
template <typename Derived>
class MessageBase : public Message {
 public:
  MessageBase() noexcept : Message(tagOf<Derived>()) {}

  std::unique_ptr<Message> clone() const override {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

/// Builds a shared, immutable payload in place — the zero-copy counterpart
/// of std::make_unique for fan-out call sites:
///   ctx.fanout(makeMessage<ProposalMessage>(round, value));
template <typename T, typename... Args>
std::shared_ptr<const T> makeMessage(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

}  // namespace ooc

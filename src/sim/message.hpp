// Message abstraction for the simulated message-passing network.
//
// Protocol messages are ordinary structs deriving from Message via the CRTP
// helper MessageBase, which supplies cloning (needed for broadcast fan-out
// and duplication faults). Receivers downcast with Message::as<T>() — a
// checked dynamic_cast — and must treat every field as untrusted, since a
// Byzantine sender can put anything in them.
#pragma once

#include <memory>
#include <string>

namespace ooc {

class Message {
 public:
  Message() = default;
  Message(const Message&) = default;
  Message& operator=(const Message&) = default;
  virtual ~Message() = default;

  /// Deep copy; used by broadcast and by duplication faults.
  virtual std::unique_ptr<Message> clone() const = 0;

  /// Human-readable rendering for traces and logs.
  virtual std::string describe() const = 0;

  /// Checked downcast; returns nullptr when the payload is another type.
  template <typename T>
  const T* as() const noexcept {
    return dynamic_cast<const T*>(this);
  }
};

/// CRTP base implementing clone() for a concrete message type.
template <typename Derived>
class MessageBase : public Message {
 public:
  std::unique_ptr<Message> clone() const override {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

}  // namespace ooc

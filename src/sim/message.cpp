#include "sim/message.hpp"

#include <atomic>

namespace ooc::detail {

MessageTag nextMessageTag() noexcept {
  static std::atomic<MessageTag> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ooc::detail

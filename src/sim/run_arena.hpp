// Thread-local scratch-vector arenas for per-run simulation state.
//
// A Simulator is confined to one thread for its lifetime, and a sweep
// worker thread creates and destroys thousands of short-lived simulators
// back to back. The EventQueue already recycles its bucket ring through a
// thread-local pool (sim/event_queue.cpp); this header generalizes the
// pattern to the other per-run vectors — timer-owner tables, network
// scratch delays, control-action tables, trace event buffers — so a tiny
// run stops paying vector regrowth on every construction.
//
// checkout() hands back a cleared vector with warm capacity (or a fresh
// empty one); recycle() returns it, cleared but with capacity retained.
// No locking: the pools are thread_local, matching the one-thread-per-
// simulator confinement. Pools are capped at a handful of entries so
// pathological use cannot hoard memory, and vectors whose capacity is 0
// (e.g. moved-from trace buffers) are dropped instead of pooled.
//
// Pool occupancy is a pure function of construction/destruction order on
// one thread, so arena reuse cannot perturb schedules or recorded traces.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace ooc::run_arena {

/// Max pooled vectors per (thread, element type): a handful of live
/// simulators per thread is the realistic maximum.
inline constexpr std::size_t kPoolCap = 4;

namespace detail {
template <typename T>
std::vector<std::vector<T>>& pool() noexcept {
  thread_local std::vector<std::vector<T>> instance;
  return instance;
}
}  // namespace detail

/// A cleared vector with warm capacity when the pool has one, else empty.
template <typename T>
std::vector<T> checkout() {
  auto& pool = detail::pool<T>();
  if (pool.empty()) return {};
  std::vector<T> out = std::move(pool.back());
  pool.pop_back();
  return out;
}

/// Returns `scratch` to this thread's pool (cleared, capacity retained).
/// Capacity-0 vectors are dropped: pooling them would evict warm ones.
template <typename T>
void recycle(std::vector<T>&& scratch) {
  if (scratch.capacity() == 0) return;
  auto& pool = detail::pool<T>();
  if (pool.size() >= kPoolCap) return;
  scratch.clear();
  pool.push_back(std::move(scratch));
}

/// Pooled vectors for element type T on this thread (test hook).
template <typename T>
std::size_t poolSize() noexcept {
  return detail::pool<T>().size();
}

/// Drops this thread's pool for T (test hook for memory accounting).
template <typename T>
void drain() noexcept {
  detail::pool<T>().clear();
}

}  // namespace ooc::run_arena

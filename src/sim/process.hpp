// Process and Context: the API every simulated protocol is written against.
#pragma once

#include <memory>

#include "sim/message.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ooc {

/// Per-process view of the simulation, provided by the Simulator when the
/// process is bound. All side effects of a protocol flow through it.
class Context {
 public:
  virtual ~Context() = default;

  virtual ProcessId self() const noexcept = 0;
  virtual std::size_t processCount() const noexcept = 0;
  virtual Tick now() const noexcept = 0;

  /// Per-process deterministic random stream (split from the run seed).
  virtual Rng& rng() noexcept = 0;

  /// Sends `msg` to `to` (which may be self()). Delivery is decided by the
  /// run's NetworkModel, except self-sends which are always delivered after
  /// one tick (a process can always talk to itself).
  virtual void send(ProcessId to, std::unique_ptr<Message> msg) = 0;

  /// Sends a copy of `msg` to every process, including the sender — the
  /// paper's "send <v> to all".
  virtual void broadcast(const Message& msg) = 0;

  /// Shared-payload unicast: the simulator enqueues `msg` without copying
  /// (a unique_ptr<Derived> converts to MessagePtr implicitly, so existing
  /// make_unique call sites work here too). The default shim clones and
  /// forwards to send() so hand-written test contexts that only implement
  /// the legacy pair keep working; real contexts override it.
  virtual void post(ProcessId to, MessagePtr msg) { send(to, msg->clone()); }

  /// Shared-payload broadcast: one refcounted payload reaches every
  /// process, including the sender — zero per-recipient copies on the
  /// non-fault path. Default shim forwards to the cloning broadcast() for
  /// legacy contexts; real contexts override.
  virtual void fanout(MessagePtr msg) { broadcast(*msg); }

  /// Arms a one-shot timer firing after `delay` ticks (>= 1).
  virtual TimerId setTimer(Tick delay) = 0;
  virtual void cancelTimer(TimerId id) noexcept = 0;

  /// Reports this process's irrevocable consensus decision to the run's
  /// monitor. Per the paper (§4.1) processes keep participating after
  /// deciding; the monitor uses these reports for agreement/validity checks
  /// and for the all-decided stop condition.
  virtual void decide(Value v) = 0;

  /// This process's incarnation: 0 until its first crash-restart, then +1
  /// per restart. Messages addressed to a previous incarnation are dropped
  /// by the simulator before delivery.
  virtual std::uint32_t incarnation() const noexcept { return 0; }
};

/// Base class of every simulated processor. Handlers run atomically: the
/// simulator never interleaves two handler invocations of any processes
/// (single-threaded discrete-event execution), so protocols need no locks.
class Process {
 public:
  Process() = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  virtual ~Process() = default;

  /// Called by the simulator before the run starts.
  void bind(Context& context) noexcept { context_ = &context; }

  /// Invoked once at tick 0, before any message can arrive.
  virtual void onStart() {}

  /// Invoked for every delivered message.
  virtual void onMessage(ProcessId from, const Message& message) = 0;

  /// Invoked when a timer armed via Context::setTimer fires.
  virtual void onTimer(TimerId /*id*/) {}

  /// Lockstep barrier: in synchronous runs, invoked at every tick after all
  /// of that tick's messages were delivered. Synchronous protocols do their
  /// per-exchange computation here.
  virtual void onTick(Tick /*tick*/) {}

  /// Invoked at the crash tick of a crash-restart (Simulator::restartAt),
  /// after the simulator purged this process's timers and before any
  /// further handler runs. This is where simulated stable storage applies
  /// its loss model (unsynced writes vanish, fault injection may tear the
  /// tail or corrupt a record). Volatile protocol state need not be touched
  /// here — onRestart() resets it.
  virtual void onCrash() {}

  /// Invoked at the restart tick, under the new incarnation. The process
  /// must discard all volatile state and re-initialize from whatever its
  /// stable storage recovers. The default treats a restart as a fresh boot
  /// (correct for stateless or non-durable processes).
  virtual void onRestart() { onStart(); }

 protected:
  Context& ctx() noexcept { return *context_; }
  const Context& ctx() const noexcept { return *context_; }

 private:
  Context* context_ = nullptr;
};

}  // namespace ooc

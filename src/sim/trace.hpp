// Schedule traces: a compact record of every event the simulator's
// scheduler executed, plus every decision reported to the run monitor.
//
// Because a run is a pure function of (configuration, seed), a trace is not
// needed to *steer* a replay — re-executing the same configuration
// regenerates the same schedule. The trace's job is verification and
// diagnosis: a TraceVerifier attached to the replay proves, event for
// event, that the re-execution is bit-identical to the recorded run (and
// pinpoints the first divergence if a platform or code change broke
// determinism). The model checker (src/check/) serializes traces of
// violating runs next to their configurations so counterexamples travel as
// standalone files.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/run_arena.hpp"
#include "util/types.hpp"

namespace ooc {

/// One executed scheduler event (or reported decision), in execution order.
/// Field meaning by kind:
///   kStart    — a: started process
///   kDeliver  — a: receiver, b: sender
///   kTimer    — a: owner (kNoTraceProcess if the timer was cancelled),
///               aux: timer id
///   kControl  — (none)
///   kBarrier  — lockstep tick barrier
///   kDecision — a: decider, aux: decided value (bit-copied)
///   kCrash    — a: process crashing with a scheduled restart,
///               aux: the incarnation that dies with it
///   kRestart  — a: restarting process, aux: its new incarnation number
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kStart,
    kDeliver,
    kTimer,
    kControl,
    kBarrier,
    kDecision,
    kCrash,
    kRestart,
  };

  Tick at = 0;
  Kind kind = Kind::kControl;
  ProcessId a = 0;
  ProcessId b = 0;
  std::uint64_t aux = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Sentinel owner for timer events whose timer had been cancelled.
inline constexpr ProcessId kNoTraceProcess = static_cast<ProcessId>(-1);

/// Sentinel causal parent for root events (initial starts, pre-run fault
/// and control injections): nothing the scheduler executed caused them.
inline constexpr std::uint64_t kNoCausalParent = ~std::uint64_t{0};

/// Causal annotation for one observed event. `index` is the event's
/// position in the observed stream (identical to its index in a recorded
/// Trace's events vector, decisions included); `cause` is the index of the
/// event whose handler scheduled it: a delivery points at the event whose
/// handler sent the message, a timer fire at the event whose handler armed
/// the timer, a decision at the event whose handler called decide(), a
/// barrier at the previous barrier. Stamps are a pure function of the
/// schedule, so they are as deterministic as the trace itself.
struct CausalStamp {
  std::uint64_t index = 0;
  std::uint64_t cause = kNoCausalParent;

  friend bool operator==(const CausalStamp&, const CausalStamp&) = default;
};

/// A full run trace: the executed event sequence plus the run's end-of-run
/// counters (filled in by whoever drove the run; see sim/simulator.hpp).
struct Trace {
  std::vector<TraceEvent> events;
  std::uint64_t messagesSent = 0;
  std::uint64_t messagesDelivered = 0;
  std::uint64_t eventsProcessed = 0;
  Tick endTick = 0;

  friend bool operator==(const Trace&, const Trace&) = default;
};

/// Scheduler hook: the simulator reports every executed event (and every
/// decision) to an attached observer, in deterministic execution order.
class ScheduleObserver {
 public:
  virtual ~ScheduleObserver() = default;
  virtual void onEvent(const TraceEvent& event) = 0;

  /// Opt-in to human-readable payload text. Message::describe() builds a
  /// string per delivery, which the hot path cannot afford — so the
  /// simulator renders it only when an attached observer returns true here
  /// (it is queried once per delivery, before describe() is called).
  virtual bool wantsMessageText() const noexcept { return false; }

  /// Delivered right after the kDeliver onEvent() it annotates, only when
  /// wantsMessageText() — carries Message::describe() of the payload.
  virtual void onMessageText(const std::string& /*text*/) {}

  /// Opt-in to causal stamps. When true, every onEvent() is followed by an
  /// onCausal() carrying the event's stream index and scheduling parent.
  /// The stamping bookkeeping runs whether or not any observer opts in (a
  /// single integer copy per push), so the schedule — and therefore every
  /// recorded trace — is byte-identical with the channel on or off.
  virtual bool wantsCausality() const noexcept { return false; }

  /// Delivered right after the onEvent() it annotates, only when
  /// wantsCausality().
  virtual void onCausal(const CausalStamp& /*stamp*/) {}
};

/// Observer that appends every event to a Trace. The event buffer is
/// checked out of the thread-local run arena (sim/run_arena.hpp) and
/// recycled on destruction, so back-to-back recorded runs on one sweep
/// worker reuse a warm buffer; a trace moved out of the recorder leaves a
/// capacity-0 vector behind, which recycle() drops.
class TraceRecorder final : public ScheduleObserver {
 public:
  TraceRecorder() { trace_.events = run_arena::checkout<TraceEvent>(); }
  ~TraceRecorder() override { run_arena::recycle(std::move(trace_.events)); }

  void onEvent(const TraceEvent& event) override {
    trace_.events.push_back(event);
  }

  Trace& trace() noexcept { return trace_; }
  const Trace& trace() const noexcept { return trace_; }

 private:
  Trace trace_;
};

/// Observer that checks a live run against a recorded trace. The run is
/// bit-identical iff ok() after the run: every event matched and exactly
/// the recorded number of events occurred.
class TraceVerifier final : public ScheduleObserver {
 public:
  explicit TraceVerifier(const Trace& expected) noexcept
      : expected_(expected) {}

  void onEvent(const TraceEvent& event) override;

  /// Events seen so far.
  std::size_t position() const noexcept { return position_; }
  /// True when every event matched and the full trace was consumed.
  bool ok() const noexcept {
    return !divergence_ && position_ == expected_.events.size();
  }
  /// Human-readable description of the first mismatch (if any).
  const std::optional<std::string>& divergence() const noexcept {
    return divergence_;
  }

 private:
  const Trace& expected_;
  std::size_t position_ = 0;
  std::optional<std::string> divergence_;
};

/// One-line rendering of an event, e.g. "D @12 a=3 b=1" (diagnostics).
std::string toString(const TraceEvent& event);

/// Text (de)serialization of the trace section used inside counterexample
/// files: an `events N` header, one `e <at> <kind> <a> <b> <aux>` line per
/// event, then a `stats` line. parseTrace consumes exactly that section.
void serializeTrace(const Trace& trace, std::ostream& out);
Trace parseTrace(std::istream& in);  // throws std::runtime_error on bad input

}  // namespace ooc

#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace ooc {
namespace {

/// std::push_heap builds a max-heap; invert to get earliest-first.
struct OverflowOrder {
  bool operator()(const SimEvent& a, const SimEvent& b) const noexcept {
    if (a.at != b.at) return a.at > b.at;
    if (a.phase != b.phase) return a.phase > b.phase;
    return a.seq > b.seq;
  }
};

/// Thread-local pool of warm bucket rings. A Simulator (and therefore an
/// EventQueue) is confined to one thread for its lifetime, so checkout
/// needs no locking; a checker worker thread hands one ring from run to
/// run and keeps the lane capacities hot across the whole sweep.
struct Arena {
  std::vector<std::vector<EventQueue::Bucket>> rings;
};

Arena& arena() noexcept {
  thread_local Arena instance;
  return instance;
}

}  // namespace

EventQueue::EventQueue() {
  auto& pool = arena().rings;
  if (!pool.empty()) {
    ring_ = std::move(pool.back());
    pool.pop_back();
  } else {
    ring_.resize(kWindow);
  }
}

EventQueue::~EventQueue() {
  for (Bucket& bucket : ring_) bucket.reset();  // keeps lane capacity
  auto& pool = arena().rings;
  // A handful of live queues per thread is the realistic maximum (nested
  // simulations do not exist); cap the pool so pathological use cannot
  // hoard memory.
  if (pool.size() < 4) pool.push_back(std::move(ring_));
}

void EventQueue::drainThreadArena() noexcept { arena().rings.clear(); }

std::size_t EventQueue::threadArenaSize() noexcept {
  return arena().rings.size();
}

void EventQueue::push(SimEvent event) {
  event.seq = nextSeq_++;
  if (event.at < cursor_) event.at = cursor_;
  if (event.at - cursor_ < kWindow) {
    Bucket& bucket = ring_[event.at & kMask];
    bucket.lanes[event.phase].push_back(std::move(event));
    ++ringCount_;
  } else {
    overflow_.push_back(std::move(event));
    std::push_heap(overflow_.begin(), overflow_.end(), OverflowOrder{});
  }
  ++size_;
}

bool EventQueue::pop(SimEvent& out) {
  if (size_ == 0) return false;
  for (;;) {
    if (ringCount_ == 0) {
      // Everything left is beyond the window: jump the cursor to the
      // overflow's minimum tick instead of walking empty buckets. The
      // current bucket is drained but not yet reset (its last event was
      // popped on the previous call); reset it before the jump so no
      // stale drain positions survive.
      ring_[cursor_ & kMask].reset();
      cursor_ = overflow_.front().at;
      refill();
      continue;
    }
    Bucket& bucket = ring_[cursor_ & kMask];
    // Normal lane strictly before the barrier lane — and re-checked after
    // every pop, so normal events appended while the barrier of the same
    // tick executes (onTick handlers sending with delay 0 clamped to the
    // cursor) are drained before any later barrier entry, exactly like
    // the old heap's (tick, phase, seq) order.
    for (int lane = 0; lane < 2; ++lane) {
      if (bucket.next[lane] < bucket.lanes[lane].size()) {
        out = std::move(bucket.lanes[lane][bucket.next[lane]++]);
        --ringCount_;
        --size_;
        return true;
      }
    }
    bucket.reset();
    ++cursor_;
    refill();
  }
}

void EventQueue::refill() {
  while (!overflow_.empty() && overflow_.front().at - cursor_ < kWindow) {
    std::pop_heap(overflow_.begin(), overflow_.end(), OverflowOrder{});
    SimEvent event = std::move(overflow_.back());
    overflow_.pop_back();
    Bucket& bucket = ring_[event.at & kMask];
    bucket.lanes[event.phase].push_back(std::move(event));
    ++ringCount_;
  }
}

}  // namespace ooc

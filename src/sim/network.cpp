#include "sim/network.hpp"

#include <stdexcept>
#include <utility>

namespace ooc {

UniformDelayNetwork::UniformDelayNetwork(Options options)
    : options_(options) {
  if (options_.minDelay < 1)
    throw std::invalid_argument("minDelay must be >= 1 tick");
  if (options_.maxDelay < options_.minDelay)
    throw std::invalid_argument("maxDelay must be >= minDelay");
}

void UniformDelayNetwork::plan(ProcessId, ProcessId, Tick, Rng& rng,
                               std::vector<Tick>& delaysOut) {
  if (rng.chance(options_.dropProbability)) return;
  auto draw = [&] {
    return static_cast<Tick>(
        rng.between(static_cast<std::int64_t>(options_.minDelay),
                    static_cast<std::int64_t>(options_.maxDelay)));
  };
  delaysOut.push_back(draw());
  if (rng.chance(options_.duplicateProbability)) delaysOut.push_back(draw());
}

DelayAdversaryNetwork::DelayAdversaryNetwork(
    std::unique_ptr<NetworkModel> base, Options options)
    : base_(std::move(base)),
      options_(options),
      adversaryRng_(Rng(options.seed).split(0xADD5)) {
  if (!base_) throw std::invalid_argument("base network model is required");
}

void DelayAdversaryNetwork::plan(ProcessId from, ProcessId to, Tick now,
                                 Rng& rng, std::vector<Tick>& delaysOut) {
  const std::size_t before = delaysOut.size();
  base_->plan(from, to, now, rng, delaysOut);
  for (std::size_t i = before; i < delaysOut.size(); ++i) {
    // Draw from the adversary stream for every delivery, even unperturbed
    // ones, so the stream's alignment is a function of the message sequence
    // alone (replays stay bit-identical across probability sweeps).
    const Tick extra = options_.extraDelayMax == 0
                           ? 0
                           : static_cast<Tick>(adversaryRng_.below(
                                 options_.extraDelayMax + 1));
    if (adversaryRng_.chance(options_.perturbProbability))
      delaysOut[i] += extra;
  }
}

PartitionedNetwork::PartitionedNetwork(std::unique_ptr<NetworkModel> base)
    : base_(std::move(base)) {
  if (!base_) throw std::invalid_argument("base network model is required");
}

void PartitionedNetwork::setPartition(std::vector<int> groupOf) {
  groupOf_ = std::move(groupOf);
}

void PartitionedNetwork::clearPartition() noexcept { groupOf_.clear(); }

void PartitionedNetwork::plan(ProcessId from, ProcessId to, Tick now,
                              Rng& rng, std::vector<Tick>& delaysOut) {
  if (!groupOf_.empty() && from < groupOf_.size() && to < groupOf_.size() &&
      groupOf_[from] != groupOf_[to]) {
    return;  // severed link
  }
  base_->plan(from, to, now, rng, delaysOut);
}

}  // namespace ooc

#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

namespace ooc {

// ---------------------------------------------------------------------------
// Events

struct Simulator::Event {
  enum class Kind { kStart, kDeliver, kTimer, kControl, kBarrier, kCrash,
                    kRestart };

  Tick at = 0;
  // Barriers sort after all normal events of the same tick.
  int phase = 0;
  std::uint64_t seq = 0;
  Kind kind = Kind::kControl;

  ProcessId target = 0;
  ProcessId from = 0;
  std::unique_ptr<Message> message;
  TimerId timer = 0;
  std::function<void()> action;
  /// For kDeliver: the target's incarnation at send time. A mismatch at
  /// delivery means the target restarted in between — the message belongs
  /// to its previous life and is discarded as stale.
  std::uint32_t targetIncarnation = 0;
};

struct Simulator::EventOrder {
  // std::push_heap builds a max-heap; invert to get earliest-first.
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.at != b.at) return a.at > b.at;
    if (a.phase != b.phase) return a.phase > b.phase;
    return a.seq > b.seq;
  }
};

void Simulator::pushEvent(Event event) {
  event.seq = nextSeq_++;
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), EventOrder{});
}

Simulator::Event Simulator::popEvent() {
  std::pop_heap(heap_.begin(), heap_.end(), EventOrder{});
  Event event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

// ---------------------------------------------------------------------------
// Context implementation

class Simulator::ContextImpl final : public Context {
 public:
  ContextImpl(Simulator& sim, ProcessId id) noexcept : sim_(sim), id_(id) {}

  ProcessId self() const noexcept override { return id_; }
  std::size_t processCount() const noexcept override {
    return sim_.processes_.size();
  }
  Tick now() const noexcept override { return sim_.now_; }
  Rng& rng() noexcept override { return sim_.processes_[id_].rng; }

  void send(ProcessId to, std::unique_ptr<Message> msg) override {
    sim_.deliverSend(id_, to, std::move(msg));
  }

  void broadcast(const Message& msg) override {
    for (ProcessId to = 0; to < sim_.processes_.size(); ++to)
      sim_.deliverSend(id_, to, msg.clone());
  }

  TimerId setTimer(Tick delay) override { return sim_.armTimer(id_, delay); }
  void cancelTimer(TimerId id) noexcept override { sim_.disarmTimer(id); }

  void decide(Value v) override { sim_.recordDecision(id_, v); }

  std::uint32_t incarnation() const noexcept override {
    return sim_.processes_[id_].incarnation;
  }

 private:
  Simulator& sim_;
  ProcessId id_;
};

// ---------------------------------------------------------------------------
// Simulator

Simulator::Simulator(SimConfig config, std::unique_ptr<NetworkModel> network)
    : config_(config),
      network_(std::move(network)),
      networkRng_(Rng(config.seed).split(0xBEEF)),
      harnessRng_(Rng(config.seed).split(0xCAFE)) {
  if (!network_) throw std::invalid_argument("network model is required");
}

Simulator::~Simulator() = default;

ProcessId Simulator::addProcess(std::unique_ptr<Process> process,
                                bool faulty) {
  if (started_)
    throw std::logic_error("cannot add processes after run() started");
  if (!process) throw std::invalid_argument("process must not be null");
  const auto id = static_cast<ProcessId>(processes_.size());
  Slot slot;
  slot.process = std::move(process);
  slot.context = std::make_unique<ContextImpl>(*this, id);
  slot.rng = Rng(config_.seed).split(0x1000 + id);
  slot.faulty = faulty;
  slot.process->bind(*slot.context);
  processes_.push_back(std::move(slot));
  decisions_.emplace_back();
  return id;
}

void Simulator::setValidValues(std::vector<Value> values) {
  validValues_ = std::move(values);
}

void Simulator::crashAt(ProcessId id, Tick tick) {
  schedule(tick, [this, id] {
    if (id < processes_.size() && !processes_[id].crashed) {
      processes_[id].crashed = true;
      OOC_DEBUG("p", id, " crashed at tick ", now_);
    }
  });
}

void Simulator::restartAt(ProcessId id, Tick crashTick, Tick downtime) {
  if (id >= processes_.size())
    throw std::out_of_range("restartAt: unknown process");
  Event crash;
  crash.at = crashTick;
  crash.kind = Event::Kind::kCrash;
  crash.target = id;
  pushEvent(std::move(crash));
  Event restart;
  restart.at = crashTick + std::max<Tick>(1, downtime);
  restart.kind = Event::Kind::kRestart;
  restart.target = id;
  pushEvent(std::move(restart));
}

void Simulator::schedule(Tick tick, std::function<void()> action) {
  Event event;
  event.at = tick;
  event.kind = Event::Kind::kControl;
  event.action = std::move(action);
  pushEvent(std::move(event));
}

void Simulator::setStopPredicate(
    std::function<bool(const Simulator&)> predicate) {
  stopPredicate_ = std::move(predicate);
}

void Simulator::stopWhenAllCorrectDecided() {
  setStopPredicate(
      [](const Simulator& sim) { return sim.allCorrectDecided(); });
}

bool Simulator::shouldStop() const {
  return stopPredicate_ && stopPredicate_(*this);
}

void Simulator::run() {
  if (started_) throw std::logic_error("run() may be called once");
  started_ = true;

  for (ProcessId id = 0; id < processes_.size(); ++id) {
    Event event;
    event.at = 0;
    event.kind = Event::Kind::kStart;
    event.target = id;
    pushEvent(std::move(event));
  }
  if (config_.lockstep) {
    // First barrier fires at tick 1: no message can arrive at tick 0, and
    // objects invoked during onStart must not see a barrier before their
    // first messages (their exchange calendar starts at the next tick).
    Event barrier;
    barrier.at = 1;
    barrier.phase = 1;
    barrier.kind = Event::Kind::kBarrier;
    pushEvent(std::move(barrier));
  }

  while (!heap_.empty()) {
    if (shouldStop()) return;
    if (eventsProcessed_ >= config_.maxEvents) {
      hitCap_ = true;
      return;
    }
    Event event = popEvent();
    if (event.at > config_.maxTicks) {
      hitCap_ = true;
      return;
    }
    now_ = event.at;
    ++eventsProcessed_;
    if (observer_) observe(event);

    switch (event.kind) {
      case Event::Kind::kStart: {
        Slot& slot = processes_[event.target];
        if (!slot.crashed) slot.process->onStart();
        break;
      }
      case Event::Kind::kDeliver: {
        Slot& slot = processes_[event.target];
        if (!slot.crashed) {
          if (event.targetIncarnation != slot.incarnation) {
            // The target restarted after this message was sent: it belongs
            // to the previous incarnation and must not leak into the new
            // one (it could carry replies to requests the reborn process
            // never made).
            ++messagesDroppedStale_;
            break;
          }
          ++messagesDelivered_;
          slot.process->onMessage(event.from, *event.message);
        }
        break;
      }
      case Event::Kind::kTimer: {
        // An id absent from timerOwner_ means the timer was cancelled (ids
        // are never reused); the heap entry is simply dropped here, so no
        // tombstone bookkeeping can accumulate.
        const auto owner = timerOwner_.find(event.timer);
        if (owner == timerOwner_.end()) break;
        const ProcessId id = owner->second;
        timerOwner_.erase(owner);
        ++timersFired_;
        Slot& slot = processes_[id];
        if (!slot.crashed) slot.process->onTimer(event.timer);
        break;
      }
      case Event::Kind::kControl:
        event.action();
        break;
      case Event::Kind::kCrash: {
        Slot& slot = processes_[event.target];
        if (!slot.crashed) {
          slot.crashed = true;
          // Stale timers must not survive into the next incarnation: purge
          // every armed timer this process owns (its heap entries become
          // inert, exactly like cancellation).
          purgeTimersOf(event.target);
          slot.process->onCrash();
          OOC_DEBUG("p", event.target, " crashed (restarting) at tick ", now_);
        }
        break;
      }
      case Event::Kind::kRestart: {
        Slot& slot = processes_[event.target];
        if (slot.crashed) {
          slot.crashed = false;
          ++slot.incarnation;
          ++restarts_;
          slot.process->onRestart();
          OOC_DEBUG("p", event.target, " restarted at tick ", now_,
                    " (incarnation ", slot.incarnation, ")");
        }
        break;
      }
      case Event::Kind::kBarrier: {
        for (Slot& slot : processes_)
          if (!slot.crashed) slot.process->onTick(now_);
        Event barrier;
        barrier.at = now_ + 1;
        barrier.phase = 1;
        barrier.kind = Event::Kind::kBarrier;
        pushEvent(std::move(barrier));
        break;
      }
    }
  }
}

void Simulator::deliverSend(ProcessId from, ProcessId to,
                            std::unique_ptr<Message> msg) {
  if (to >= processes_.size())
    throw std::out_of_range("send to unknown process");
  if (processes_[from].crashed) return;

  ++messagesSent_;
  if (!processes_[from].faulty) ++messagesSentByCorrect_;

  scratchDelays_.clear();
  if (from == to) {
    // Self-delivery is always reliable and prompt.
    scratchDelays_.push_back(1);
  } else {
    network_->plan(from, to, now_, networkRng_, scratchDelays_);
  }
  if (scratchDelays_.empty()) {
    ++messagesDropped_;
    return;
  }
  messagesDuplicated_ += scratchDelays_.size() - 1;

  for (std::size_t i = 0; i < scratchDelays_.size(); ++i) {
    Event event;
    event.at = now_ + std::max<Tick>(1, scratchDelays_[i]);
    event.kind = Event::Kind::kDeliver;
    event.target = to;
    event.from = from;
    event.targetIncarnation = processes_[to].incarnation;
    event.message =
        i + 1 < scratchDelays_.size() ? msg->clone() : std::move(msg);
    pushEvent(std::move(event));
  }
}

void Simulator::observe(const Event& event) {
  TraceEvent out;
  out.at = event.at;
  switch (event.kind) {
    case Event::Kind::kStart:
      out.kind = TraceEvent::Kind::kStart;
      out.a = event.target;
      break;
    case Event::Kind::kDeliver:
      out.kind = TraceEvent::Kind::kDeliver;
      out.a = event.target;
      out.b = event.from;
      break;
    case Event::Kind::kTimer: {
      out.kind = TraceEvent::Kind::kTimer;
      const auto owner = timerOwner_.find(event.timer);
      out.a = owner == timerOwner_.end() ? kNoTraceProcess : owner->second;
      out.aux = event.timer;
      break;
    }
    case Event::Kind::kControl:
      out.kind = TraceEvent::Kind::kControl;
      break;
    case Event::Kind::kCrash:
      out.kind = TraceEvent::Kind::kCrash;
      out.a = event.target;
      break;
    case Event::Kind::kRestart:
      out.kind = TraceEvent::Kind::kRestart;
      out.a = event.target;
      // The incarnation the process is about to enter (bumped when the
      // event executes, right after this observation).
      out.aux = processes_[event.target].incarnation + 1;
      break;
    case Event::Kind::kBarrier:
      out.kind = TraceEvent::Kind::kBarrier;
      break;
  }
  observer_->onEvent(out);
}

TimerId Simulator::armTimer(ProcessId id, Tick delay) {
  const TimerId timer = nextTimer_++;
  ++timersArmed_;
  timerOwner_.emplace(timer, id);
  Event event;
  event.at = now_ + std::max<Tick>(1, delay);
  event.kind = Event::Kind::kTimer;
  event.timer = timer;
  pushEvent(std::move(event));
  return timer;
}

void Simulator::disarmTimer(TimerId id) noexcept {
  timersCancelled_ += timerOwner_.erase(id);
}

void Simulator::purgeTimersOf(ProcessId id) noexcept {
  for (auto it = timerOwner_.begin(); it != timerOwner_.end();) {
    if (it->second == id) {
      it = timerOwner_.erase(it);
      ++timersPurgedOnCrash_;
    } else {
      ++it;
    }
  }
}

void Simulator::recordDecision(ProcessId id, Value v) {
  Decision& decision = decisions_[id];
  // Decisions are irrevocable: repeats are ignored here. A restarted
  // process re-deciding a DIFFERENT value (committed-entry regression) is
  // caught by the harness-level decision-history monitors, which see every
  // incarnation's announcement (see RaftConsensus::decisionHistory).
  if (decision.decided) return;
  decision.decided = true;
  decision.value = v;
  decision.at = now_;
  OOC_DEBUG("p", id, " decided ", v, " at tick ", now_);
  if (observer_) {
    TraceEvent out;
    out.at = now_;
    out.kind = TraceEvent::Kind::kDecision;
    out.a = id;
    out.aux = static_cast<std::uint64_t>(v);
    observer_->onEvent(out);
  }

  if (processes_[id].faulty) return;  // Byzantine claims are not checked

  if (!validValues_.empty() &&
      std::find(validValues_.begin(), validValues_.end(), v) ==
          validValues_.end()) {
    validityViolated_ = true;
  }
  for (ProcessId other = 0; other < processes_.size(); ++other) {
    if (other == id || processes_[other].faulty) continue;
    if (decisions_[other].decided && decisions_[other].value != v) {
      agreementViolated_ = true;
    }
  }
}

bool Simulator::crashed(ProcessId id) const { return processes_.at(id).crashed; }

std::uint32_t Simulator::incarnation(ProcessId id) const {
  return processes_.at(id).incarnation;
}
bool Simulator::faulty(ProcessId id) const { return processes_.at(id).faulty; }

const Simulator::Decision& Simulator::decision(ProcessId id) const {
  return decisions_.at(id);
}

bool Simulator::allCorrectDecided() const {
  for (ProcessId id = 0; id < processes_.size(); ++id) {
    const Slot& slot = processes_[id];
    if (slot.faulty || slot.crashed) continue;
    if (!decisions_[id].decided) return false;
  }
  return true;
}

std::size_t Simulator::correctDecisionCount() const {
  std::size_t count = 0;
  for (ProcessId id = 0; id < processes_.size(); ++id)
    if (!processes_[id].faulty && decisions_[id].decided) ++count;
  return count;
}

Process& Simulator::process(ProcessId id) { return *processes_.at(id).process; }

}  // namespace ooc

#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/run_arena.hpp"
#include "util/logging.hpp"

namespace ooc {

// ---------------------------------------------------------------------------
// Context implementation

class Simulator::ContextImpl final : public Context {
 public:
  ContextImpl(Simulator& sim, ProcessId id) noexcept : sim_(sim), id_(id) {}

  ProcessId self() const noexcept override { return id_; }
  std::size_t processCount() const noexcept override {
    return sim_.processes_.size();
  }
  Tick now() const noexcept override { return sim_.now_; }
  Rng& rng() noexcept override { return sim_.processes_[id_].rng; }

  void send(ProcessId to, std::unique_ptr<Message> msg) override {
    // Ownership transfer, no copy: the unique payload becomes the shared
    // in-flight payload.
    sim_.deliverSend(id_, to, MessagePtr(std::move(msg)));
  }

  void post(ProcessId to, MessagePtr msg) override {
    sim_.deliverSend(id_, to, std::move(msg));
  }

  void broadcast(const Message& msg) override {
    // Legacy copy-in broadcast: the caller kept ownership, so exactly one
    // clone is taken (counted) and then shared across all recipients. The
    // fanout() path does zero.
    ++sim_.messagesCloned_;
    fanout(MessagePtr(msg.clone()));
  }

  void fanout(MessagePtr msg) override {
    for (ProcessId to = 0; to < sim_.processes_.size(); ++to)
      sim_.deliverSend(id_, to, msg);
  }

  TimerId setTimer(Tick delay) override { return sim_.armTimer(id_, delay); }
  void cancelTimer(TimerId id) noexcept override { sim_.disarmTimer(id); }

  void decide(Value v) override { sim_.recordDecision(id_, v); }

  std::uint32_t incarnation() const noexcept override {
    return sim_.processes_[id_].incarnation;
  }

 private:
  Simulator& sim_;
  ProcessId id_;
};

// ---------------------------------------------------------------------------
// Simulator

Simulator::Simulator(SimConfig config, std::unique_ptr<NetworkModel> network)
    : config_(config),
      network_(std::move(network)),
      networkRng_(Rng(config.seed).split(0xBEEF)),
      harnessRng_(Rng(config.seed).split(0xCAFE)) {
  if (!network_) throw std::invalid_argument("network model is required");
  // Per-run scratch vectors come from the thread-local run arena (see
  // sim/run_arena.hpp): a sweep worker hands the same warm buffers from
  // simulator to simulator, like the EventQueue's bucket ring.
  controlActions_ = run_arena::checkout<std::function<void()>>();
  timerOwner_ = run_arena::checkout<ProcessId>();
  scratchDelays_ = run_arena::checkout<Tick>();
}

Simulator::~Simulator() {
  run_arena::recycle(std::move(controlActions_));
  run_arena::recycle(std::move(timerOwner_));
  run_arena::recycle(std::move(scratchDelays_));
}

ProcessId Simulator::addProcess(std::unique_ptr<Process> process,
                                bool faulty) {
  if (started_)
    throw std::logic_error("cannot add processes after run() started");
  if (!process) throw std::invalid_argument("process must not be null");
  const auto id = static_cast<ProcessId>(processes_.size());
  Slot slot;
  slot.process = std::move(process);
  slot.context = std::make_unique<ContextImpl>(*this, id);
  slot.rng = Rng(config_.seed).split(0x1000 + id);
  slot.faulty = faulty;
  slot.process->bind(*slot.context);
  processes_.push_back(std::move(slot));
  decisions_.emplace_back();
  return id;
}

void Simulator::setValidValues(std::vector<Value> values) {
  validValues_ = std::move(values);
}

void Simulator::crashAt(ProcessId id, Tick tick) {
  schedule(tick, [this, id] {
    if (id < processes_.size() && !processes_[id].crashed) {
      processes_[id].crashed = true;
      OOC_DEBUG("p", id, " crashed at tick ", now_);
    }
  });
}

void Simulator::restartAt(ProcessId id, Tick crashTick, Tick downtime) {
  if (id >= processes_.size())
    throw std::out_of_range("restartAt: unknown process");
  SimEvent crash;
  crash.at = crashTick;
  crash.kind = SimEvent::Kind::kCrash;
  crash.target = id;
  queue_.push(std::move(crash));
  SimEvent restart;
  restart.at = crashTick + std::max<Tick>(1, downtime);
  restart.kind = SimEvent::Kind::kRestart;
  restart.target = id;
  queue_.push(std::move(restart));
}

void Simulator::schedule(Tick tick, std::function<void()> action) {
  SimEvent event;
  event.at = tick;
  event.kind = SimEvent::Kind::kControl;
  event.cause = currentCause_;
  // The action body lives in controlActions_; the event just carries its
  // index (in the timer field) so SimEvent stays a flat value type.
  event.timer = static_cast<TimerId>(controlActions_.size());
  controlActions_.push_back(std::move(action));
  queue_.push(std::move(event));
}

void Simulator::setStopPredicate(
    std::function<bool(const Simulator&)> predicate) {
  stopPredicate_ = std::move(predicate);
}

void Simulator::stopWhenAllCorrectDecided() {
  setStopPredicate(
      [](const Simulator& sim) { return sim.allCorrectDecided(); });
}

bool Simulator::shouldStop() const {
  return stopPredicate_ && stopPredicate_(*this);
}

void Simulator::run() {
  if (started_) throw std::logic_error("run() may be called once");
  started_ = true;

  for (ProcessId id = 0; id < processes_.size(); ++id) {
    SimEvent event;
    event.at = 0;
    event.kind = SimEvent::Kind::kStart;
    event.target = id;
    queue_.push(std::move(event));
  }
  if (config_.lockstep) {
    // First barrier fires at tick 1: no message can arrive at tick 0, and
    // objects invoked during onStart must not see a barrier before their
    // first messages (their exchange calendar starts at the next tick).
    SimEvent barrier;
    barrier.at = 1;
    barrier.phase = 1;
    barrier.kind = SimEvent::Kind::kBarrier;
    queue_.push(std::move(barrier));
  }

  SimEvent event;
  while (!queue_.empty()) {
    if (shouldStop()) return;
    if (eventsProcessed_ >= config_.maxEvents) {
      hitCap_ = true;
      return;
    }
    queue_.pop(event);
    if (event.at > config_.maxTicks) {
      hitCap_ = true;
      return;
    }
    now_ = event.at;
    ++eventsProcessed_;
    if (observer_) observe(event);

    switch (event.kind) {
      case SimEvent::Kind::kStart: {
        Slot& slot = processes_[event.target];
        if (!slot.crashed) slot.process->onStart();
        break;
      }
      case SimEvent::Kind::kDeliver: {
        Slot& slot = processes_[event.target];
        if (!slot.crashed) {
          if (event.targetIncarnation != slot.incarnation) {
            // The target restarted after this message was sent: it belongs
            // to the previous incarnation and must not leak into the new
            // one (it could carry replies to requests the reborn process
            // never made).
            ++messagesDroppedStale_;
            break;
          }
          ++messagesDelivered_;
          slot.process->onMessage(event.from, *event.message);
        }
        break;
      }
      case SimEvent::Kind::kTimer: {
        // A released slot (kNoTimerOwner) means the timer was cancelled —
        // ids are never reused; the queue entry is simply dropped here, so
        // no tombstone bookkeeping can accumulate.
        const ProcessId owner = timerOwnerOf(event.timer);
        if (owner == kNoTimerOwner) break;
        releaseTimer(event.timer);
        ++timersFired_;
        Slot& slot = processes_[owner];
        if (!slot.crashed) slot.process->onTimer(event.timer);
        break;
      }
      case SimEvent::Kind::kControl:
        controlActions_[static_cast<std::size_t>(event.timer)]();
        break;
      case SimEvent::Kind::kCrash: {
        Slot& slot = processes_[event.target];
        if (!slot.crashed) {
          slot.crashed = true;
          // Stale timers must not survive into the next incarnation: purge
          // every armed timer this process owns (its queue entries become
          // inert, exactly like cancellation).
          purgeTimersOf(event.target);
          slot.process->onCrash();
          OOC_DEBUG("p", event.target, " crashed (restarting) at tick ", now_);
        }
        break;
      }
      case SimEvent::Kind::kRestart: {
        Slot& slot = processes_[event.target];
        if (slot.crashed) {
          slot.crashed = false;
          ++slot.incarnation;
          ++restarts_;
          slot.process->onRestart();
          OOC_DEBUG("p", event.target, " restarted at tick ", now_,
                    " (incarnation ", slot.incarnation, ")");
        }
        break;
      }
      case SimEvent::Kind::kBarrier: {
        for (Slot& slot : processes_)
          if (!slot.crashed) slot.process->onTick(now_);
        SimEvent barrier;
        barrier.at = now_ + 1;
        barrier.phase = 1;
        barrier.kind = SimEvent::Kind::kBarrier;
        barrier.cause = currentCause_;
        queue_.push(std::move(barrier));
        break;
      }
    }
    // Drop the payload ref before the next pop so a delivered message whose
    // last alias this was is freed now, not at the next delivery.
    event.message.reset();
  }
}

void Simulator::deliverSend(ProcessId from, ProcessId to, MessagePtr msg) {
  if (to >= processes_.size())
    throw std::out_of_range("send to unknown process");
  if (processes_[from].crashed) return;

  ++messagesSent_;
  if (!processes_[from].faulty) ++messagesSentByCorrect_;

  scratchDelays_.clear();
  if (from == to) {
    // Self-delivery is always reliable and prompt.
    scratchDelays_.push_back(1);
  } else {
    network_->plan(from, to, now_, networkRng_, scratchDelays_);
  }
  if (scratchDelays_.empty()) {
    ++messagesDropped_;
    return;
  }
  messagesDuplicated_ += scratchDelays_.size() - 1;

  for (std::size_t i = 0; i < scratchDelays_.size(); ++i) {
    SimEvent event;
    event.at = now_ + std::max<Tick>(1, scratchDelays_[i]);
    event.kind = SimEvent::Kind::kDeliver;
    event.cause = currentCause_;
    event.target = to;
    event.from = from;
    event.targetIncarnation = processes_[to].incarnation;
    // Duplication-fault copies alias the payload: an extra delivery is an
    // extra ref, never a deep copy.
    event.message = i + 1 < scratchDelays_.size() ? msg : std::move(msg);
    queue_.push(std::move(event));
  }
}

void Simulator::observe(const SimEvent& event) {
  // The observed-stream index doubles as the causal parent for everything
  // this event's handler schedules (the handler runs right after this
  // observation, see run()).
  const std::uint64_t index = observedSeq_++;
  currentCause_ = index;
  TraceEvent out;
  out.at = event.at;
  switch (event.kind) {
    case SimEvent::Kind::kStart:
      out.kind = TraceEvent::Kind::kStart;
      out.a = event.target;
      break;
    case SimEvent::Kind::kDeliver:
      out.kind = TraceEvent::Kind::kDeliver;
      out.a = event.target;
      out.b = event.from;
      break;
    case SimEvent::Kind::kTimer:
      out.kind = TraceEvent::Kind::kTimer;
      // kNoTimerOwner and kNoTraceProcess are the same sentinel value, so a
      // cancelled timer maps straight through.
      out.a = timerOwnerOf(event.timer);
      out.aux = event.timer;
      break;
    case SimEvent::Kind::kControl:
      out.kind = TraceEvent::Kind::kControl;
      break;
    case SimEvent::Kind::kCrash:
      out.kind = TraceEvent::Kind::kCrash;
      out.a = event.target;
      // The incarnation that is dying. Every committed golden crashes at
      // incarnation 0, so stamping this stays byte-compatible with them.
      out.aux = processes_[event.target].incarnation;
      break;
    case SimEvent::Kind::kRestart:
      out.kind = TraceEvent::Kind::kRestart;
      out.a = event.target;
      // The incarnation the process is about to enter (bumped when the
      // event executes, right after this observation).
      out.aux = processes_[event.target].incarnation + 1;
      break;
    case SimEvent::Kind::kBarrier:
      out.kind = TraceEvent::Kind::kBarrier;
      break;
  }
  observer_->onEvent(out);
  // Payload text is rendered only on demand: describe() allocates and
  // formats, which the hot path skips entirely unless this observer opted
  // in (trace recording and the checker do not).
  if (event.kind == SimEvent::Kind::kDeliver && observer_->wantsMessageText())
    observer_->onMessageText(event.message->describe());
  if (observer_->wantsCausality())
    observer_->onCausal(CausalStamp{index, event.cause});
}

TimerId Simulator::armTimer(ProcessId id, Tick delay) {
  const TimerId timer = nextTimer_++;
  ++timersArmed_;
  // Invariant: timerBase_ + timerOwner_.size() == nextTimer_ - 1 held on
  // entry, so the new timer's slot is exactly the back of the table.
  timerOwner_.push_back(id);
  ++pendingTimers_;
  SimEvent event;
  event.at = now_ + std::max<Tick>(1, delay);
  event.kind = SimEvent::Kind::kTimer;
  event.cause = currentCause_;
  event.timer = timer;
  queue_.push(std::move(event));
  return timer;
}

ProcessId Simulator::timerOwnerOf(TimerId id) const noexcept {
  if (id < timerBase_) return kNoTimerOwner;
  const auto index = static_cast<std::size_t>(id - timerBase_);
  return index < timerOwner_.size() ? timerOwner_[index] : kNoTimerOwner;
}

void Simulator::releaseTimer(TimerId id) noexcept {
  const auto index = static_cast<std::size_t>(id - timerBase_);
  timerOwner_[index] = kNoTimerOwner;
  --pendingTimers_;
  if (pendingTimers_ == 0) {
    // Whole window dead: restart it empty at the next id.
    timerBase_ += timerOwner_.size();
    timerOwner_.clear();
    deadPrefix_ = 0;
    return;
  }
  if (index == deadPrefix_) {
    do {
      ++deadPrefix_;
    } while (deadPrefix_ < timerOwner_.size() &&
             timerOwner_[deadPrefix_] == kNoTimerOwner);
    // Trim in batches once the dead prefix dominates, so the trim's O(live)
    // move amortizes to O(1) per release and the table tracks the live id
    // span instead of the run's total timer churn.
    if (deadPrefix_ >= 512 && deadPrefix_ >= timerOwner_.size() / 2) {
      timerOwner_.erase(timerOwner_.begin(),
                        timerOwner_.begin() +
                            static_cast<std::ptrdiff_t>(deadPrefix_));
      timerBase_ += deadPrefix_;
      deadPrefix_ = 0;
    }
  }
}

void Simulator::disarmTimer(TimerId id) noexcept {
  if (timerOwnerOf(id) == kNoTimerOwner) return;
  releaseTimer(id);
  ++timersCancelled_;
}

void Simulator::purgeTimersOf(ProcessId id) noexcept {
  // Cold path (crash handling): mark in place, compact once at the end to
  // keep this loop safe against releaseTimer's batched trims.
  for (std::size_t i = deadPrefix_; i < timerOwner_.size(); ++i) {
    if (timerOwner_[i] == id) {
      timerOwner_[i] = kNoTimerOwner;
      --pendingTimers_;
      ++timersPurgedOnCrash_;
    }
  }
  if (pendingTimers_ == 0) {
    timerBase_ += timerOwner_.size();
    timerOwner_.clear();
    deadPrefix_ = 0;
  } else {
    while (deadPrefix_ < timerOwner_.size() &&
           timerOwner_[deadPrefix_] == kNoTimerOwner)
      ++deadPrefix_;
  }
}

void Simulator::recordDecision(ProcessId id, Value v) {
  Decision& decision = decisions_[id];
  // Decisions are irrevocable: repeats are ignored here. A restarted
  // process re-deciding a DIFFERENT value (committed-entry regression) is
  // caught by the harness-level decision-history monitors, which see every
  // incarnation's announcement (see RaftConsensus::decisionHistory).
  if (decision.decided) return;
  decision.decided = true;
  decision.value = v;
  decision.at = now_;
  OOC_DEBUG("p", id, " decided ", v, " at tick ", now_);
  if (observer_) {
    TraceEvent out;
    out.at = now_;
    out.kind = TraceEvent::Kind::kDecision;
    out.a = id;
    out.aux = static_cast<std::uint64_t>(v);
    observer_->onEvent(out);
    // The decision occupies its own slot in the observed stream, caused by
    // the event whose handler called decide(). currentCause_ is left
    // pointing at that handler event: anything else the handler schedules
    // is caused by the event, not by the decision announcement.
    if (observer_->wantsCausality())
      observer_->onCausal(CausalStamp{observedSeq_++, currentCause_});
    else
      ++observedSeq_;
  }

  if (processes_[id].faulty) return;  // Byzantine claims are not checked

  if (!validValues_.empty() &&
      std::find(validValues_.begin(), validValues_.end(), v) ==
          validValues_.end()) {
    validityViolated_ = true;
  }
  for (ProcessId other = 0; other < processes_.size(); ++other) {
    if (other == id || processes_[other].faulty) continue;
    if (decisions_[other].decided && decisions_[other].value != v) {
      agreementViolated_ = true;
    }
  }
}

bool Simulator::crashed(ProcessId id) const { return processes_.at(id).crashed; }

std::uint32_t Simulator::incarnation(ProcessId id) const {
  return processes_.at(id).incarnation;
}
bool Simulator::faulty(ProcessId id) const { return processes_.at(id).faulty; }

const Simulator::Decision& Simulator::decision(ProcessId id) const {
  return decisions_.at(id);
}

bool Simulator::allCorrectDecided() const {
  for (ProcessId id = 0; id < processes_.size(); ++id) {
    const Slot& slot = processes_[id];
    if (slot.faulty || slot.crashed) continue;
    if (!decisions_[id].decided) return false;
  }
  return true;
}

std::size_t Simulator::correctDecisionCount() const {
  std::size_t count = 0;
  for (ProcessId id = 0; id < processes_.size(); ++id)
    if (!processes_[id].faulty && decisions_[id].decided) ++count;
  return count;
}

Process& Simulator::process(ProcessId id) { return *processes_.at(id).process; }

}  // namespace ooc

#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

namespace ooc {

// ---------------------------------------------------------------------------
// Events

struct Simulator::Event {
  enum class Kind { kStart, kDeliver, kTimer, kControl, kBarrier };

  Tick at = 0;
  // Barriers sort after all normal events of the same tick.
  int phase = 0;
  std::uint64_t seq = 0;
  Kind kind = Kind::kControl;

  ProcessId target = 0;
  ProcessId from = 0;
  std::unique_ptr<Message> message;
  TimerId timer = 0;
  std::function<void()> action;
};

struct Simulator::EventOrder {
  // std::push_heap builds a max-heap; invert to get earliest-first.
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.at != b.at) return a.at > b.at;
    if (a.phase != b.phase) return a.phase > b.phase;
    return a.seq > b.seq;
  }
};

void Simulator::pushEvent(Event event) {
  event.seq = nextSeq_++;
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), EventOrder{});
}

Simulator::Event Simulator::popEvent() {
  std::pop_heap(heap_.begin(), heap_.end(), EventOrder{});
  Event event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

// ---------------------------------------------------------------------------
// Context implementation

class Simulator::ContextImpl final : public Context {
 public:
  ContextImpl(Simulator& sim, ProcessId id) noexcept : sim_(sim), id_(id) {}

  ProcessId self() const noexcept override { return id_; }
  std::size_t processCount() const noexcept override {
    return sim_.processes_.size();
  }
  Tick now() const noexcept override { return sim_.now_; }
  Rng& rng() noexcept override { return sim_.processes_[id_].rng; }

  void send(ProcessId to, std::unique_ptr<Message> msg) override {
    sim_.deliverSend(id_, to, std::move(msg));
  }

  void broadcast(const Message& msg) override {
    for (ProcessId to = 0; to < sim_.processes_.size(); ++to)
      sim_.deliverSend(id_, to, msg.clone());
  }

  TimerId setTimer(Tick delay) override { return sim_.armTimer(id_, delay); }
  void cancelTimer(TimerId id) noexcept override { sim_.disarmTimer(id); }

  void decide(Value v) override { sim_.recordDecision(id_, v); }

 private:
  Simulator& sim_;
  ProcessId id_;
};

// ---------------------------------------------------------------------------
// Simulator

Simulator::Simulator(SimConfig config, std::unique_ptr<NetworkModel> network)
    : config_(config),
      network_(std::move(network)),
      networkRng_(Rng(config.seed).split(0xBEEF)),
      harnessRng_(Rng(config.seed).split(0xCAFE)) {
  if (!network_) throw std::invalid_argument("network model is required");
}

Simulator::~Simulator() = default;

ProcessId Simulator::addProcess(std::unique_ptr<Process> process,
                                bool faulty) {
  if (started_)
    throw std::logic_error("cannot add processes after run() started");
  if (!process) throw std::invalid_argument("process must not be null");
  const auto id = static_cast<ProcessId>(processes_.size());
  Slot slot;
  slot.process = std::move(process);
  slot.context = std::make_unique<ContextImpl>(*this, id);
  slot.rng = Rng(config_.seed).split(0x1000 + id);
  slot.faulty = faulty;
  slot.process->bind(*slot.context);
  processes_.push_back(std::move(slot));
  decisions_.emplace_back();
  return id;
}

void Simulator::setValidValues(std::vector<Value> values) {
  validValues_ = std::move(values);
}

void Simulator::crashAt(ProcessId id, Tick tick) {
  schedule(tick, [this, id] {
    if (id < processes_.size() && !processes_[id].crashed) {
      processes_[id].crashed = true;
      OOC_DEBUG("p", id, " crashed at tick ", now_);
    }
  });
}

void Simulator::schedule(Tick tick, std::function<void()> action) {
  Event event;
  event.at = tick;
  event.kind = Event::Kind::kControl;
  event.action = std::move(action);
  pushEvent(std::move(event));
}

void Simulator::setStopPredicate(
    std::function<bool(const Simulator&)> predicate) {
  stopPredicate_ = std::move(predicate);
}

void Simulator::stopWhenAllCorrectDecided() {
  setStopPredicate(
      [](const Simulator& sim) { return sim.allCorrectDecided(); });
}

bool Simulator::shouldStop() const {
  return stopPredicate_ && stopPredicate_(*this);
}

void Simulator::run() {
  if (started_) throw std::logic_error("run() may be called once");
  started_ = true;

  for (ProcessId id = 0; id < processes_.size(); ++id) {
    Event event;
    event.at = 0;
    event.kind = Event::Kind::kStart;
    event.target = id;
    pushEvent(std::move(event));
  }
  if (config_.lockstep) {
    // First barrier fires at tick 1: no message can arrive at tick 0, and
    // objects invoked during onStart must not see a barrier before their
    // first messages (their exchange calendar starts at the next tick).
    Event barrier;
    barrier.at = 1;
    barrier.phase = 1;
    barrier.kind = Event::Kind::kBarrier;
    pushEvent(std::move(barrier));
  }

  while (!heap_.empty()) {
    if (shouldStop()) return;
    if (eventsProcessed_ >= config_.maxEvents) {
      hitCap_ = true;
      return;
    }
    Event event = popEvent();
    if (event.at > config_.maxTicks) {
      hitCap_ = true;
      return;
    }
    now_ = event.at;
    ++eventsProcessed_;
    if (observer_) observe(event);

    switch (event.kind) {
      case Event::Kind::kStart: {
        Slot& slot = processes_[event.target];
        if (!slot.crashed) slot.process->onStart();
        break;
      }
      case Event::Kind::kDeliver: {
        Slot& slot = processes_[event.target];
        if (!slot.crashed) {
          ++messagesDelivered_;
          slot.process->onMessage(event.from, *event.message);
        }
        break;
      }
      case Event::Kind::kTimer: {
        // An id absent from timerOwner_ means the timer was cancelled (ids
        // are never reused); the heap entry is simply dropped here, so no
        // tombstone bookkeeping can accumulate.
        const auto owner = timerOwner_.find(event.timer);
        if (owner == timerOwner_.end()) break;
        const ProcessId id = owner->second;
        timerOwner_.erase(owner);
        ++timersFired_;
        Slot& slot = processes_[id];
        if (!slot.crashed) slot.process->onTimer(event.timer);
        break;
      }
      case Event::Kind::kControl:
        event.action();
        break;
      case Event::Kind::kBarrier: {
        for (Slot& slot : processes_)
          if (!slot.crashed) slot.process->onTick(now_);
        Event barrier;
        barrier.at = now_ + 1;
        barrier.phase = 1;
        barrier.kind = Event::Kind::kBarrier;
        pushEvent(std::move(barrier));
        break;
      }
    }
  }
}

void Simulator::deliverSend(ProcessId from, ProcessId to,
                            std::unique_ptr<Message> msg) {
  if (to >= processes_.size())
    throw std::out_of_range("send to unknown process");
  if (processes_[from].crashed) return;

  ++messagesSent_;
  if (!processes_[from].faulty) ++messagesSentByCorrect_;

  scratchDelays_.clear();
  if (from == to) {
    // Self-delivery is always reliable and prompt.
    scratchDelays_.push_back(1);
  } else {
    network_->plan(from, to, now_, networkRng_, scratchDelays_);
  }
  if (scratchDelays_.empty()) {
    ++messagesDropped_;
    return;
  }
  messagesDuplicated_ += scratchDelays_.size() - 1;

  for (std::size_t i = 0; i < scratchDelays_.size(); ++i) {
    Event event;
    event.at = now_ + std::max<Tick>(1, scratchDelays_[i]);
    event.kind = Event::Kind::kDeliver;
    event.target = to;
    event.from = from;
    event.message =
        i + 1 < scratchDelays_.size() ? msg->clone() : std::move(msg);
    pushEvent(std::move(event));
  }
}

void Simulator::observe(const Event& event) {
  TraceEvent out;
  out.at = event.at;
  switch (event.kind) {
    case Event::Kind::kStart:
      out.kind = TraceEvent::Kind::kStart;
      out.a = event.target;
      break;
    case Event::Kind::kDeliver:
      out.kind = TraceEvent::Kind::kDeliver;
      out.a = event.target;
      out.b = event.from;
      break;
    case Event::Kind::kTimer: {
      out.kind = TraceEvent::Kind::kTimer;
      const auto owner = timerOwner_.find(event.timer);
      out.a = owner == timerOwner_.end() ? kNoTraceProcess : owner->second;
      out.aux = event.timer;
      break;
    }
    case Event::Kind::kControl:
      out.kind = TraceEvent::Kind::kControl;
      break;
    case Event::Kind::kBarrier:
      out.kind = TraceEvent::Kind::kBarrier;
      break;
  }
  observer_->onEvent(out);
}

TimerId Simulator::armTimer(ProcessId id, Tick delay) {
  const TimerId timer = nextTimer_++;
  ++timersArmed_;
  timerOwner_.emplace(timer, id);
  Event event;
  event.at = now_ + std::max<Tick>(1, delay);
  event.kind = Event::Kind::kTimer;
  event.timer = timer;
  pushEvent(std::move(event));
  return timer;
}

void Simulator::disarmTimer(TimerId id) noexcept {
  timersCancelled_ += timerOwner_.erase(id);
}

void Simulator::recordDecision(ProcessId id, Value v) {
  Decision& decision = decisions_[id];
  if (decision.decided) return;  // decisions are irrevocable; ignore repeats
  decision.decided = true;
  decision.value = v;
  decision.at = now_;
  OOC_DEBUG("p", id, " decided ", v, " at tick ", now_);
  if (observer_) {
    TraceEvent out;
    out.at = now_;
    out.kind = TraceEvent::Kind::kDecision;
    out.a = id;
    out.aux = static_cast<std::uint64_t>(v);
    observer_->onEvent(out);
  }

  if (processes_[id].faulty) return;  // Byzantine claims are not checked

  if (!validValues_.empty() &&
      std::find(validValues_.begin(), validValues_.end(), v) ==
          validValues_.end()) {
    validityViolated_ = true;
  }
  for (ProcessId other = 0; other < processes_.size(); ++other) {
    if (other == id || processes_[other].faulty) continue;
    if (decisions_[other].decided && decisions_[other].value != v) {
      agreementViolated_ = true;
    }
  }
}

bool Simulator::crashed(ProcessId id) const { return processes_.at(id).crashed; }
bool Simulator::faulty(ProcessId id) const { return processes_.at(id).faulty; }

const Simulator::Decision& Simulator::decision(ProcessId id) const {
  return decisions_.at(id);
}

bool Simulator::allCorrectDecided() const {
  for (ProcessId id = 0; id < processes_.size(); ++id) {
    const Slot& slot = processes_[id];
    if (slot.faulty || slot.crashed) continue;
    if (!decisions_[id].decided) return false;
  }
  return true;
}

std::size_t Simulator::correctDecisionCount() const {
  std::size_t count = 0;
  for (ProcessId id = 0; id < processes_.size(); ++id)
    if (!processes_[id].faulty && decisions_[id].decided) ++count;
  return count;
}

Process& Simulator::process(ProcessId id) { return *processes_.at(id).process; }

}  // namespace ooc

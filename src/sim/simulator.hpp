// Deterministic discrete-event simulator for message-passing protocols.
//
// A run is a pure function of (configuration, seed): events are ordered by
// (tick, phase, sequence-number), all randomness derives from the run seed,
// and handler execution is single-threaded. Synchronous (lockstep) protocols
// enable tick barriers: after all messages of a tick are delivered, every
// alive process receives onTick, which is where per-exchange computation of
// algorithms like Phase-King happens.
//
// The simulator doubles as the consensus run monitor: processes report
// decisions through Context::decide, and the simulator checks agreement and
// validity online and provides the customary "all correct processes have
// decided" stop condition.
//
// Hot-path layout (see DESIGN.md §8): events live in a tick-bucketed
// calendar queue (sim/event_queue.hpp) instead of a binary heap, payloads
// are refcounted and shared across fan-out and duplication (sim/message.hpp)
// so the non-fault delivery path performs zero message copies, timer
// ownership is a dense windowed table instead of a hash map, and trace text
// (Message::describe) is rendered only for observers that opted in.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ooc {

struct SimConfig {
  std::uint64_t seed = 1;
  /// Enables per-tick barriers (synchronous model).
  bool lockstep = false;
  /// Hard caps; exceeding either aborts the run and sets hitCap().
  Tick maxTicks = 1'000'000;
  std::uint64_t maxEvents = 50'000'000;
};

class Simulator final {
 public:
  struct Decision {
    bool decided = false;
    Value value = kNoValue;
    Tick at = 0;
  };

  Simulator(SimConfig config, std::unique_ptr<NetworkModel> network);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a processor; returns its id (assigned densely from 0).
  /// `faulty` marks a Byzantine processor: its decisions and inputs are
  /// excluded from agreement/validity checks and from allCorrectDecided().
  ProcessId addProcess(std::unique_ptr<Process> process, bool faulty = false);

  /// Declares the set of legal decision values (the correct processes'
  /// inputs). When set, any decision outside it flags validityViolated().
  void setValidValues(std::vector<Value> values);

  /// Schedules a crash: from `tick` on, the process executes no handlers,
  /// receives no messages, and sends nothing.
  void crashAt(ProcessId id, Tick tick);

  /// Schedules a crash at `crashTick` followed by a restart `downtime` ticks
  /// later. At the crash the process gets onCrash() (where durable storage
  /// applies its loss model), every timer it owns is purged, and all handlers
  /// stop. At the restart its incarnation number is bumped, onRestart() runs
  /// (volatile state reset + recovery from stable storage), and messages sent
  /// to the previous incarnation that are still in flight are discarded as
  /// stale at delivery time. Both transitions appear in recorded traces.
  void restartAt(ProcessId id, Tick crashTick, Tick downtime);

  /// Schedules an arbitrary control action (e.g. partition changes).
  void schedule(Tick tick, std::function<void()> action);

  /// Stops the run when `predicate(*this)` is true (checked after every
  /// event). Without a predicate the run ends when the event queue drains
  /// or a cap is hit.
  void setStopPredicate(std::function<bool(const Simulator&)> predicate);

  /// Convenience: stop once every correct (non-faulty, non-crashed) process
  /// has decided.
  void stopWhenAllCorrectDecided();

  /// Attaches a scheduler observer (non-owning; must outlive the run): every
  /// executed event and every reported decision is mirrored to it in
  /// deterministic execution order. Used for trace record/replay. Observers
  /// wanting rendered payload text opt in via wantsMessageText().
  void setScheduleObserver(ScheduleObserver* observer) noexcept {
    observer_ = observer;
  }

  /// Executes the run. May be called once.
  void run();

  // --- queries (valid during and after run) -------------------------------
  Tick now() const noexcept { return now_; }
  std::size_t processCount() const noexcept { return processes_.size(); }
  bool crashed(ProcessId id) const;
  bool faulty(ProcessId id) const;
  const Decision& decision(ProcessId id) const;
  /// True when every non-faulty, non-crashed process has decided.
  bool allCorrectDecided() const;
  /// Count of correct (non-faulty) processes that have decided (crashed
  /// processes' pre-crash decisions count).
  std::size_t correctDecisionCount() const;
  bool agreementViolated() const noexcept { return agreementViolated_; }
  bool validityViolated() const noexcept { return validityViolated_; }
  bool hitCap() const noexcept { return hitCap_; }
  std::uint64_t messagesSent() const noexcept { return messagesSent_; }
  std::uint64_t messagesSentByCorrect() const noexcept {
    return messagesSentByCorrect_;
  }
  std::uint64_t messagesDelivered() const noexcept {
    return messagesDelivered_;
  }
  /// Sends whose network plan produced no delivery (loss or partition).
  std::uint64_t messagesDropped() const noexcept { return messagesDropped_; }
  /// Extra delivery copies beyond the first (network duplication). The
  /// copies share one payload — duplication adds refs, not clones.
  std::uint64_t messagesDuplicated() const noexcept {
    return messagesDuplicated_;
  }
  /// Deep payload copies performed by the simulator. Zero on the modern
  /// post()/fanout() path; the legacy Context::broadcast(const Message&)
  /// shim clones its argument exactly once per call. A regression that
  /// reintroduces per-recipient copying shows up here first (asserted by
  /// tests/simcore_perf_test.cpp).
  std::uint64_t messagesCloned() const noexcept { return messagesCloned_; }
  std::uint64_t eventsProcessed() const noexcept { return eventsProcessed_; }
  // Timer churn: armed counts every setTimer, cancelled every disarm of a
  // still-armed timer, fired every timer event that reached its owner.
  std::uint64_t timersArmed() const noexcept { return timersArmed_; }
  std::uint64_t timersCancelled() const noexcept { return timersCancelled_; }
  std::uint64_t timersFired() const noexcept { return timersFired_; }
  /// Restart bookkeeping: executed restart events, deliveries discarded
  /// because the target restarted after the send (stale incarnation), and
  /// armed timers purged at a crash.
  std::uint64_t restarts() const noexcept { return restarts_; }
  std::uint64_t messagesDroppedStale() const noexcept {
    return messagesDroppedStale_;
  }
  std::uint64_t timersPurgedOnCrash() const noexcept {
    return timersPurgedOnCrash_;
  }
  /// Incarnation number of a process: 0 until its first restart, then +1
  /// per restart.
  std::uint32_t incarnation(ProcessId id) const;
  /// Number of currently armed (not yet fired or cancelled) timers. Must
  /// stay bounded on long runs: disarming releases the bookkeeping
  /// immediately (the queue entry is dropped lazily when its tick arrives).
  std::size_t pendingTimerCount() const noexcept { return pendingTimers_; }

  /// The network model, for runtime reconfiguration from schedule() hooks.
  NetworkModel& network() noexcept { return *network_; }

  /// Randomness stream for harness-level choices (e.g. which process to
  /// crash), derived from the run seed.
  Rng& harnessRng() noexcept { return harnessRng_; }

  Process& process(ProcessId id);

 private:
  class ContextImpl;

  void observe(const SimEvent& event);
  void deliverSend(ProcessId from, ProcessId to, MessagePtr msg);
  void recordDecision(ProcessId id, Value v);
  TimerId armTimer(ProcessId id, Tick delay);
  void disarmTimer(TimerId id) noexcept;
  void purgeTimersOf(ProcessId id) noexcept;
  /// Owner of an armed timer, or kNoTimerOwner if fired/cancelled/unknown.
  ProcessId timerOwnerOf(TimerId id) const noexcept;
  /// Releases a timer slot (fire or cancel) and compacts the table when the
  /// window has gone fully or mostly dead.
  void releaseTimer(TimerId id) noexcept;
  bool shouldStop() const;

  SimConfig config_;
  std::unique_ptr<NetworkModel> network_;
  Rng networkRng_;
  Rng harnessRng_;

  struct Slot {
    std::unique_ptr<Process> process;
    std::unique_ptr<ContextImpl> context;
    Rng rng{0};
    bool faulty = false;
    bool crashed = false;
    std::uint32_t incarnation = 0;
  };
  std::vector<Slot> processes_;

  EventQueue queue_;
  /// Control-action bodies, referenced by index from kControl events so the
  /// event layout stays a flat value type (no std::function per event).
  /// Append-only for the run's duration; runs are finite.
  std::vector<std::function<void()>> controlActions_;

  std::uint64_t nextTimer_ = 1;
  /// Sentinel in timerOwner_ for slots whose timer fired or was cancelled.
  static constexpr ProcessId kNoTimerOwner = static_cast<ProcessId>(-1);
  /// Owner of every armed timer, as a dense window over timer ids: slot
  /// `id - timerBase_` holds the owner, kNoTimerOwner once released. Timer
  /// ids are never reused and each id gets exactly one queue event, so a
  /// released slot doubles as the cancellation tombstone. The window is
  /// compacted as leading slots die (releaseTimer), so it stays bounded by
  /// the armed-timer churn, like the hash map it replaces — minus the
  /// hashing on the hot path.
  std::vector<ProcessId> timerOwner_;
  TimerId timerBase_ = 1;
  /// Slots [0, deadPrefix_) of timerOwner_ are all released; advanced as
  /// front timers die and trimmed off in batches (amortized O(1)).
  std::size_t deadPrefix_ = 0;
  std::size_t pendingTimers_ = 0;

  Tick now_ = 0;
  bool started_ = false;
  bool hitCap_ = false;

  /// Causal bookkeeping: index the next observed event will get in the
  /// observed stream, and the index of the event currently dispatching
  /// (the causal parent stamped onto every push its handler makes).
  /// Outside any dispatch — i.e. during pre-run setup — currentCause_ is
  /// kNoCausalParent, making pre-run injections causal roots.
  std::uint64_t observedSeq_ = 0;
  std::uint64_t currentCause_ = kNoCausalParent;

  std::vector<Decision> decisions_;
  std::vector<Value> validValues_;
  bool agreementViolated_ = false;
  bool validityViolated_ = false;

  std::uint64_t messagesSent_ = 0;
  std::uint64_t messagesSentByCorrect_ = 0;
  std::uint64_t messagesDelivered_ = 0;
  std::uint64_t messagesDropped_ = 0;
  std::uint64_t messagesDuplicated_ = 0;
  std::uint64_t messagesCloned_ = 0;
  std::uint64_t eventsProcessed_ = 0;
  std::uint64_t timersArmed_ = 0;
  std::uint64_t timersCancelled_ = 0;
  std::uint64_t timersFired_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t messagesDroppedStale_ = 0;
  std::uint64_t timersPurgedOnCrash_ = 0;

  std::function<bool(const Simulator&)> stopPredicate_;
  std::vector<Tick> scratchDelays_;
  ScheduleObserver* observer_ = nullptr;
};

}  // namespace ooc

#include "core/consensus_process.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

namespace ooc {

// Object-facing context: wraps the host process context, tagging every
// outbound message with the coordinates of the object being called into
// (the host's activeRound_/activeStage_) so it reaches the peer instance
// of the same object. Under lockstep the active object is always the
// frontier; a loose driver keeps tagging with its own, older round.
class ConsensusProcess::ObjectContextImpl final : public ObjectContext {
 public:
  explicit ObjectContextImpl(ConsensusProcess& host) noexcept : host_(host) {}

  ProcessId self() const noexcept override { return host_.ctx().self(); }
  std::size_t processCount() const noexcept override {
    return host_.ctx().processCount();
  }
  Tick now() const noexcept override { return host_.ctx().now(); }
  Rng& rng() noexcept override { return host_.ctx().rng(); }

  void send(ProcessId to, std::unique_ptr<Message> inner) override {
    post(to, MessagePtr(std::move(inner)));
  }

  void broadcast(const Message& inner) override {
    fanout(MessagePtr(inner.clone()));
  }

  void post(ProcessId to, MessagePtr inner) override {
    host_.ctx().post(to, makeMessage<TaggedMessage>(host_.activeRound_,
                                                    host_.activeStage_,
                                                    std::move(inner)));
  }

  void fanout(MessagePtr inner) override {
    // One envelope, one shared inner payload, n recipients — the whole
    // broadcast allocates exactly one TaggedMessage and zero clones.
    host_.ctx().fanout(makeMessage<TaggedMessage>(host_.activeRound_,
                                                  host_.activeStage_,
                                                  std::move(inner)));
  }

  TimerId setTimer(Tick delay) override {
    const TimerId id = host_.ctx().setTimer(delay);
    host_.noteTimerOwner(id);
    return id;
  }
  void cancelTimer(TimerId id) noexcept override {
    host_.dropTimerOwner(id);
    host_.ctx().cancelTimer(id);
  }

 private:
  ConsensusProcess& host_;
};

ConsensusProcess::ConsensusProcess(Value input,
                                   DetectorFactory detectorFactory,
                                   DriverFactory driverFactory,
                                   Options options)
    : value_(input),
      detectorFactory_(std::move(detectorFactory)),
      driverFactory_(std::move(driverFactory)),
      options_(options),
      scheduler_(makeRoundScheduler(options.scheduling)) {
  if (!detectorFactory_)
    throw std::invalid_argument("detector factory is required");
  if (!driverFactory_)
    throw std::invalid_argument("driver factory is required");
  objectContext_ = std::make_unique<ObjectContextImpl>(*this);
}

ConsensusProcess::~ConsensusProcess() = default;

void ConsensusProcess::onStart() {
  beginRound();
  pump();
}

void ConsensusProcess::beginRound() {
  if (options_.decideAfterRound > 0 && round_ >= options_.decideAfterRound &&
      !decided_) {
    // Fixed-round decision rule (classic Phase-King): the value held after
    // the configured number of completed rounds is final.
    decided_ = true;
    decisionValue_ = value_;
    decisionRound_ = round_;
    ctx().decide(value_);
    pruneBufferedAfterDecide();
  }
  const bool retired =
      decided_ && options_.participateRoundsAfterDecide > 0 &&
      round_ >= decisionRound_ + options_.participateRoundsAfterDecide;
  if (round_ >= options_.maxRounds || retired) {
    exhausted_ = true;
    detector_.reset();
    driver_.reset();
    // loose_ is intentionally kept: detached courtesy drives of earlier
    // rounds finish their exchanges so peers still waiting on the drive
    // wave are not starved by this process's retirement.
    return;
  }
  ++round_;
  stage_ = Stage::kDetect;
  driver_.reset();
  useDriverValue_ = false;
  if (!loose_.empty()) ++overlapWitnesses_;
  rounds_.emplace_back();
  rounds_.back().detectorInput = value_;
  detector_ = detectorFactory_(round_);
  detectorInvokedAt_ = ctx().now();
  OOC_TRACE("p", ctx().self(), " round ", round_, " detect(", value_, ")");
  activeRound_ = round_;
  activeStage_ = Stage::kDetect;
  detector_->invoke(*objectContext_, value_);
  replayBuffered();
}

void ConsensusProcess::invokeFrontierDriver(const Outcome& outcome) {
  stage_ = Stage::kDrive;
  driver_ = driverFactory_(round_);
  driverInvokedAt_ = ctx().now();
  activeRound_ = round_;
  activeStage_ = Stage::kDrive;
  driver_->invoke(*objectContext_, outcome);
  replayBuffered();
}

void ConsensusProcess::launchLooseDriver(const Outcome& outcome) {
  loose_.push_back(LooseDriver{round_, ctx().now(), driverFactory_(round_)});
  OOC_TRACE("p", ctx().self(), " round ", round_, " loose drive");
  activeRound_ = round_;
  activeStage_ = Stage::kDrive;
  loose_.back().driver->invoke(*objectContext_, outcome);
  replayBuffered();
}

void ConsensusProcess::pollLooseDrivers() {
  if (loose_.empty()) return;
  std::size_t kept = 0;
  for (auto& entry : loose_) {
    const auto driven = entry.driver->result();
    if (!driven) {
      loose_[kept++] = std::move(entry);
      continue;
    }
    rounds_[entry.round - 1].driverValue = *driven;
    OOC_TRACE("p", ctx().self(), " round ", entry.round, " loose driver -> ",
              *driven);
    if (options_.onDriverValue)
      options_.onDriverValue(entry.round, *driven, ctx().now());
    // The value is discarded: only courtesy drives detach.
  }
  loose_.resize(kept);
}

void ConsensusProcess::scheduleWakeup(PendingWake pending) {
  pending_ = pending;
  ++deferredActivations_;
  // Armed on the raw process context, not the object context: wakeups
  // belong to the host, never to an object's timer-ownership table.
  wakeTimer_ = ctx().setTimer(1);
}

void ConsensusProcess::onWakeup() {
  const PendingWake pending = pending_;
  pending_ = PendingWake::kNone;
  switch (pending) {
    case PendingWake::kNone:
      break;
    case PendingWake::kBeginRound:
      beginRound();
      break;
    case PendingWake::kInvokeDriver: {
      assert(pendingOutcome_.has_value());
      const Outcome outcome = *pendingOutcome_;
      pendingOutcome_.reset();
      invokeFrontierDriver(outcome);
      break;
    }
  }
  pump();
}

void ConsensusProcess::pump() {
  pollLooseDrivers();
  if (pending_ != PendingWake::kNone) return;  // successor already scheduled
  while (!exhausted_) {
    if (stage_ == Stage::kDetect) {
      if (!detector_) return;
      const auto outcome = detector_->result();
      if (!outcome) return;
      rounds_.back().detectorOutcome = *outcome;
      OOC_TRACE("p", ctx().self(), " round ", round_, " detector -> ",
                toString(*outcome));
      if (options_.onDetectorOutcome)
        options_.onDetectorOutcome(round_, *outcome, ctx().now());

      bool runDriver = options_.alwaysRunDriver;
      useDriverValue_ = false;
      switch (outcome->confidence) {
        case Confidence::kCommit:
          value_ = outcome->value;
          if (options_.decideOnCommit && !decided_) {
            decided_ = true;
            decisionValue_ = outcome->value;
            decisionRound_ = round_;
            ctx().decide(outcome->value);
            pruneBufferedAfterDecide();
          }
          break;
        case Confidence::kAdopt:
          if (options_.kind == TemplateKind::kAcConciliator) {
            runDriver = true;
            useDriverValue_ = true;
          } else {
            value_ = outcome->value;
          }
          break;
        case Confidence::kVacillate:
          assert(options_.kind == TemplateKind::kVacReconciliator &&
                 "AC detectors must not return vacillate");
          runDriver = true;
          useDriverValue_ = true;
          break;
      }

      detector_.reset();
      if (runDriver) {
        if (!useDriverValue_ && scheduler_->detachesCourtesyDrives()) {
          // ooo-driver: the drive wave of this round proceeds loose while
          // the next round's detector goes live immediately.
          launchLooseDriver(*outcome);
          beginRound();
          continue;
        }
        if (!scheduler_->advancesInline()) {
          pendingOutcome_ = *outcome;
          scheduleWakeup(PendingWake::kInvokeDriver);
          return;
        }
        invokeFrontierDriver(*outcome);
        continue;
      }
      if (!scheduler_->advancesInline()) {
        scheduleWakeup(PendingWake::kBeginRound);
        return;
      }
      beginRound();
      continue;
    }

    // Stage::kDrive
    if (!driver_) return;
    const auto driven = driver_->result();
    if (!driven) return;
    rounds_.back().driverValue = *driven;
    OOC_TRACE("p", ctx().self(), " round ", round_, " driver -> ", *driven);
    if (options_.onDriverValue)
      options_.onDriverValue(round_, *driven, ctx().now());
    if (useDriverValue_) value_ = *driven;
    if (!scheduler_->advancesInline()) {
      driver_.reset();  // completed: late drive messages are stale
      scheduleWakeup(PendingWake::kBeginRound);
      return;
    }
    beginRound();
  }
}

void ConsensusProcess::onMessage(ProcessId from, const Message& message) {
  const auto* tagged = message.as<TaggedMessage>();
  if (tagged == nullptr) return;  // not a template message; ignore
  dispatch(from, *tagged);
  pump();
}

void ConsensusProcess::dispatch(ProcessId from, const TaggedMessage& tagged) {
  // A live loose driver owns its round's drive traffic even after the
  // frontier moved past it (and even after the frontier retired).
  if (tagged.stage() == Stage::kDrive) {
    for (auto& entry : loose_) {
      if (entry.round == tagged.round()) {
        activeRound_ = entry.round;
        activeStage_ = Stage::kDrive;
        entry.driver->onMessage(*objectContext_, from, tagged.inner());
        return;
      }
    }
  }
  if (exhausted_) return;
  if (tagged.round() < round_) return;  // stale: round already finished
  const bool current =
      tagged.round() == round_ && tagged.stage() == stage_;
  if (current) {
    if (stage_ == Stage::kDetect && detector_) {
      activeRound_ = round_;
      activeStage_ = Stage::kDetect;
      detector_->onMessage(*objectContext_, from, tagged.inner());
    } else if (stage_ == Stage::kDrive && driver_) {
      activeRound_ = round_;
      activeStage_ = Stage::kDrive;
      driver_->onMessage(*objectContext_, from, tagged.inner());
    }
    return;
  }
  // Same round but a stage we already passed: stale, drop.
  if (tagged.round() == round_ && tagged.stage() == Stage::kDetect &&
      stage_ == Stage::kDrive) {
    return;
  }
  // Bounded buffering after decide: with a retirement horizon configured,
  // rounds beyond decisionRound_ + participateRoundsAfterDecide can never
  // be reached (beginRound retires first), so buffering their messages
  // would only grow the queue until teardown. Drop them instead.
  if (decided_ && options_.participateRoundsAfterDecide > 0 &&
      tagged.round() >
          decisionRound_ + options_.participateRoundsAfterDecide) {
    ++bufferedDropped_;
    return;
  }
  // Future round/stage: buffer until this process gets there. The payload
  // is shared with the envelope (and with every other recipient buffering
  // the same broadcast) — no copy.
  buffered_.push_back(BufferedMessage{tagged.round(), tagged.stage(), from,
                                      tagged.innerPtr()});
  bufferedPeak_ = std::max(bufferedPeak_, buffered_.size());
}

void ConsensusProcess::replayBuffered() {
  // Deliver buffered messages now addressed to a live object, in arrival
  // order. New messages are never added during replay (objects only
  // consume here), so a single compaction pass suffices.
  std::vector<BufferedMessage> keep;
  keep.reserve(buffered_.size());
  for (auto& entry : buffered_) {
    Driver* looseTarget = nullptr;
    if (entry.stage == Stage::kDrive) {
      for (auto& loose : loose_) {
        if (loose.round == entry.round) {
          looseTarget = loose.driver.get();
          break;
        }
      }
    }
    if (looseTarget != nullptr) {
      activeRound_ = entry.round;
      activeStage_ = Stage::kDrive;
      looseTarget->onMessage(*objectContext_, entry.from, *entry.inner);
    } else if (entry.round == round_ && entry.stage == stage_) {
      if (stage_ == Stage::kDetect && detector_) {
        activeRound_ = round_;
        activeStage_ = Stage::kDetect;
        detector_->onMessage(*objectContext_, entry.from, *entry.inner);
      } else if (stage_ == Stage::kDrive && driver_) {
        activeRound_ = round_;
        activeStage_ = Stage::kDrive;
        driver_->onMessage(*objectContext_, entry.from, *entry.inner);
      }
    } else if (entry.round > round_ ||
               (entry.round == round_ && stage_ == Stage::kDetect &&
                entry.stage == Stage::kDrive)) {
      keep.push_back(std::move(entry));
    }
    // else: stale, drop
  }
  buffered_ = std::move(keep);
}

void ConsensusProcess::pruneBufferedAfterDecide() {
  if (options_.participateRoundsAfterDecide == 0) return;
  const Round horizon = decisionRound_ + options_.participateRoundsAfterDecide;
  const auto unreachable = [horizon](const BufferedMessage& entry) {
    return entry.round > horizon;
  };
  const auto removed =
      std::count_if(buffered_.begin(), buffered_.end(), unreachable);
  if (removed == 0) return;
  bufferedDropped_ += static_cast<std::uint64_t>(removed);
  buffered_.erase(
      std::remove_if(buffered_.begin(), buffered_.end(), unreachable),
      buffered_.end());
}

void ConsensusProcess::noteTimerOwner(TimerId id) {
  // Lockstep keeps the legacy routing (all timers go to the frontier
  // object), so no ownership table is needed there.
  if (scheduler_->policy() == SchedulingPolicy::kLockstep) return;
  timerOwners_.emplace_back(id, activeRound_, activeStage_);
}

void ConsensusProcess::dropTimerOwner(TimerId id) noexcept {
  for (std::size_t i = 0; i < timerOwners_.size(); ++i) {
    if (std::get<0>(timerOwners_[i]) == id) {
      timerOwners_.erase(timerOwners_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

bool ConsensusProcess::takeTimerOwner(TimerId id, Round& round,
                                      Stage& stage) noexcept {
  for (std::size_t i = 0; i < timerOwners_.size(); ++i) {
    if (std::get<0>(timerOwners_[i]) == id) {
      round = std::get<1>(timerOwners_[i]);
      stage = std::get<2>(timerOwners_[i]);
      timerOwners_.erase(timerOwners_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

void ConsensusProcess::onTimer(TimerId id) {
  if (scheduler_->policy() == SchedulingPolicy::kLockstep) {
    // Legacy routing: the frontier object owns every timer.
    if (stage_ == Stage::kDetect && detector_) {
      activeRound_ = round_;
      activeStage_ = Stage::kDetect;
      detector_->onTimer(*objectContext_, id);
    } else if (stage_ == Stage::kDrive && driver_) {
      activeRound_ = round_;
      activeStage_ = Stage::kDrive;
      driver_->onTimer(*objectContext_, id);
    }
    pump();
    return;
  }
  if (wakeTimer_ && *wakeTimer_ == id) {
    wakeTimer_.reset();
    onWakeup();
    return;
  }
  Round ownerRound = 0;
  Stage ownerStage = Stage::kDetect;
  if (takeTimerOwner(id, ownerRound, ownerStage)) {
    if (ownerStage == Stage::kDrive) {
      for (auto& entry : loose_) {
        if (entry.round == ownerRound) {
          activeRound_ = entry.round;
          activeStage_ = Stage::kDrive;
          entry.driver->onTimer(*objectContext_, id);
          pump();
          return;
        }
      }
    }
    if (!exhausted_ && ownerRound == round_ && ownerStage == stage_) {
      if (stage_ == Stage::kDetect && detector_) {
        activeRound_ = round_;
        activeStage_ = Stage::kDetect;
        detector_->onTimer(*objectContext_, id);
      } else if (stage_ == Stage::kDrive && driver_) {
        activeRound_ = round_;
        activeStage_ = Stage::kDrive;
        driver_->onTimer(*objectContext_, id);
      }
    }
    // Owner object already completed/retired: the timer is stale.
  }
  pump();
}

void ConsensusProcess::onTick(Tick tick) {
  // An object invoked earlier in this same tick (e.g. a round begun while
  // processing this tick's messages) must not see this barrier: its first
  // exchange closes at the NEXT barrier, keeping all lockstep processes on
  // the same calendar regardless of whether they advanced via a message or
  // via the barrier itself. Policies without a tick barrier (event-driven)
  // drop the forwarding entirely — their objects are async-mode and advance
  // on arrivals alone (registry-gated).
  if (scheduler_->forwardsTickBarrier()) {
    if (stage_ == Stage::kDetect && detector_ && tick > detectorInvokedAt_) {
      activeRound_ = round_;
      activeStage_ = Stage::kDetect;
      detector_->onTick(*objectContext_, tick);
    } else if (stage_ == Stage::kDrive && driver_ &&
               tick > driverInvokedAt_) {
      activeRound_ = round_;
      activeStage_ = Stage::kDrive;
      driver_->onTick(*objectContext_, tick);
    }
    for (auto& entry : loose_) {
      if (tick > entry.invokedAt) {
        activeRound_ = entry.round;
        activeStage_ = Stage::kDrive;
        entry.driver->onTick(*objectContext_, tick);
      }
    }
  }
  pump();
}

}  // namespace ooc
